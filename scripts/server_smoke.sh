#!/usr/bin/env sh
# Server smoke: boot the fdrserve daemon, check the OTA corpus through
# the HTTP API (verdicts diffed against the in-process library oracle by
# serveload -smoke), then SIGTERM it and require a clean drain (exit 0).
# Then the crash leg: boot a durable daemon, submit the corpus as jobs,
# SIGKILL it mid-run, restart over the same data dir and require every
# resumed job to finish with oracle-identical verdicts.
# Referenced from .github/workflows/ci.yml.
set -eu

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18462"

go build -o /tmp/fdrserve ./cmd/fdrserve
go build -o /tmp/serveload ./cmd/serveload

/tmp/fdrserve -addr "$ADDR" -drain-timeout 30s > /tmp/fdrserve.log 2>&1 &
SRV_PID=$!
trap 'kill "$SRV_PID" 2>/dev/null || true' EXIT

# Wait for readiness.
i=0
until curl -fsS "http://$ADDR/readyz" > /dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "fdrserve never became ready" >&2
        cat /tmp/fdrserve.log >&2
        exit 1
    fi
    sleep 0.1
done

echo "==> serveload -smoke (OTA corpus verdicts vs in-process oracle)"
/tmp/serveload -smoke -addr "http://$ADDR"

echo "==> metrics endpoint"
curl -fsS "http://$ADDR/metrics" | grep -q "serve.accepted"

echo "==> SIGTERM drain"
kill -TERM "$SRV_PID"
DRAIN_STATUS=0
wait "$SRV_PID" || DRAIN_STATUS=$?
trap - EXIT
if [ "$DRAIN_STATUS" -ne 0 ]; then
    echo "fdrserve exited $DRAIN_STATUS after SIGTERM, want 0" >&2
    cat /tmp/fdrserve.log >&2
    exit 1
fi
grep -q "drained, exiting" /tmp/fdrserve.log

echo "==> serveload chaos soak (fixed seed)"
/tmp/serveload -seed 42 -requests 16

echo "==> SIGKILL / restart / resume (durable jobs, verdicts must not change)"
DATA_DIR="$(mktemp -d /tmp/fdrserve-data.XXXXXX)"
/tmp/fdrserve -addr "$ADDR" -data-dir "$DATA_DIR" -checkpoint-levels 1 \
    > /tmp/fdrserve-crash.log 2>&1 &
SRV_PID=$!
trap 'kill -9 "$SRV_PID" 2>/dev/null || true; rm -rf "$DATA_DIR"' EXIT
i=0
until curl -fsS "http://$ADDR/readyz" > /dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "fdrserve (durable) never became ready" >&2
        cat /tmp/fdrserve-crash.log >&2
        exit 1
    fi
    sleep 0.1
done
/tmp/serveload -submit -addr "http://$ADDR"
# Kill the daemon outright while the jobs run — no drain, no warning.
sleep 0.2
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true

/tmp/fdrserve -addr "$ADDR" -data-dir "$DATA_DIR" -checkpoint-levels 1 \
    >> /tmp/fdrserve-crash.log 2>&1 &
SRV_PID=$!
i=0
until curl -fsS "http://$ADDR/readyz" > /dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "fdrserve never came back after SIGKILL" >&2
        cat /tmp/fdrserve-crash.log >&2
        exit 1
    fi
    sleep 0.1
done
/tmp/serveload -collect -addr "http://$ADDR"
kill -TERM "$SRV_PID"
wait "$SRV_PID" || {
    echo "fdrserve exited non-zero after the resume leg" >&2
    cat /tmp/fdrserve-crash.log >&2
    exit 1
}
trap - EXIT
rm -rf "$DATA_DIR"

echo "==> serveload crash schedule (in-process kill/restart/resume)"
/tmp/serveload -crash -seed 42 -kills 4

echo "server smoke OK"
