#!/usr/bin/env sh
# Tier-1 verification: vet + the full test suite under the race
# detector. CI-style, make-free; referenced from ROADMAP.md.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "OK"
