#!/usr/bin/env sh
# Tier-1 verification: vet + the full test suite under the race
# detector. CI-style, make-free; referenced from ROADMAP.md.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

# Custom analyzer passes (internal/analyzers): mustrecover, seededrand,
# unrecoveredgo, closecheck and diagreg (the caplint CAPLnnnn code
# registry must stay unique, cataloged and emitted). The environment is
# offline, so this is a go/parser driver instead of `go vet -vettool`.
echo "==> repolint ./..."
go run ./cmd/repolint ./...

echo "==> caplcheck (CAPL corpus must be lint-clean)"
go run ./cmd/caplcheck -severity warning -dbc testdata/ota.dbc \
    testdata/ecu.can testdata/flawed_ecu.can testdata/vmg.can testdata/vmg_timer.can

echo "==> caplcheck (seeded defects must trip the gate)"
if go run ./cmd/caplcheck -dbc testdata/ota.dbc examples/caplcheck/flawed_gateway.can >/dev/null; then
    echo "caplcheck failed to reject examples/caplcheck/flawed_gateway.can" >&2
    exit 1
fi
if go run ./cmd/caplcheck -dbc testdata/ota.dbc examples/caplcheck/ill_typed.can >/dev/null; then
    echo "caplcheck failed to reject examples/caplcheck/ill_typed.can" >&2
    exit 1
fi

echo "==> learncheck (fixed seed, byte-identical vs committed baseline)"
LEARNCHECK_OUT=$(mktemp)
go run ./cmd/learncheck -seed 1 -format json > "$LEARNCHECK_OUT"
cmp "$LEARNCHECK_OUT" testdata/learncheck_baseline.json
rm -f "$LEARNCHECK_OUT"

echo "==> go test -race ./..."
go test -race ./...

echo "OK"
