package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Attr is one span attribute or progress field.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// SpanRecord is a finished span as kept in the ring and written to the
// JSONL sink.
type SpanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Start is the wall-clock start time in RFC3339Nano.
	Start time.Time `json:"start"`
	// DurationNs is the span length in nanoseconds.
	DurationNs int64          `json:"durationNs"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// Span is an in-flight timed operation. A nil *Span (what a nil
// Observer starts) ignores every call.
type Span struct {
	o      *Observer
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// StartSpan opens a root span. A nil Observer returns a nil span.
func (o *Observer) StartSpan(name string, attrs ...Attr) *Span {
	return o.startSpan(name, 0, attrs)
}

func (o *Observer) startSpan(name string, parent uint64, attrs []Attr) *Span {
	if o == nil {
		return nil
	}
	o.spanMu.Lock()
	o.nextSpan++
	id := o.nextSpan
	o.spanMu.Unlock()
	sp := &Span{o: o, id: id, parent: parent, name: name, start: time.Now()}
	if len(attrs) > 0 {
		sp.attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			sp.attrs[a.Key] = a.Value
		}
	}
	return sp
}

// Child opens a span parented on s. A nil span yields a nil child.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.o.startSpan(name, s.id, attrs)
}

// SetAttr attaches attributes to the span (last write per key wins).
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, len(attrs))
	}
	for _, a := range attrs {
		s.attrs[a.Key] = a.Value
	}
}

// End closes the span, stamps its duration, and publishes the record to
// the observer's ring and sink. Extra attributes are merged first.
// Ending a span twice publishes only the first End.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	if len(attrs) > 0 {
		if s.attrs == nil {
			s.attrs = make(map[string]any, len(attrs))
		}
		for _, a := range attrs {
			s.attrs[a.Key] = a.Value
		}
	}
	rec := SpanRecord{
		ID:         s.id,
		Parent:     s.parent,
		Name:       s.name,
		Start:      s.start,
		DurationNs: int64(time.Since(s.start)),
		Attrs:      s.attrs,
	}
	s.mu.Unlock()
	s.o.publish(rec)
}

// publish appends a finished span to the ring and streams it to the
// sink.
func (o *Observer) publish(rec SpanRecord) {
	o.spanMu.Lock()
	if len(o.ring) > 0 {
		o.ring[o.ringNext] = rec
		o.ringNext++
		if o.ringNext == len(o.ring) {
			o.ringNext = 0
			o.ringFull = true
		}
	}
	sink := o.sink
	o.spanMu.Unlock()
	if sink != nil {
		sink.WriteSpan(rec)
	}
}

// Spans returns the finished spans currently held by the ring, oldest
// first. A nil Observer returns nil.
func (o *Observer) Spans() []SpanRecord {
	if o == nil {
		return nil
	}
	o.spanMu.Lock()
	defer o.spanMu.Unlock()
	if !o.ringFull {
		out := make([]SpanRecord, o.ringNext)
		copy(out, o.ring[:o.ringNext])
		return out
	}
	out := make([]SpanRecord, 0, len(o.ring))
	out = append(out, o.ring[o.ringNext:]...)
	out = append(out, o.ring[:o.ringNext]...)
	return out
}

// SpanSink consumes finished spans. Implementations must be safe for
// concurrent use.
type SpanSink interface {
	WriteSpan(SpanRecord)
}

// JSONLSink writes one JSON object per finished span to an io.Writer —
// the -tracefile format. Write errors are latched and reported by Err,
// so a full disk never panics the instrumented run.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLSink wraps the writer.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// WriteSpan marshals the record onto one line.
func (s *JSONLSink) WriteSpan(rec SpanRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		s.err = err
	}
}

// Err returns the first write or marshal error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
