// Package obs is a zero-dependency observability layer for the checking
// pipeline: named counters, gauges and histograms with atomic updates, a
// lightweight span tracer (start/end, parent links, attributes) feeding
// an in-memory ring and an optional JSONL sink, and rate-limited
// progress heartbeats for long-running explorations.
//
// The design constraint is that instrumentation must be free when
// disabled: a nil *Observer is a valid, fully disabled observer, every
// method on it (and on the nil metric handles it returns) is a no-op
// behind a single nil check, and nothing in the instrumented packages
// allocates or locks on the disabled path. Instrumentation must also
// never influence results — observers carry measurements out of a run,
// they feed nothing back in, so reports stay byte-identical whether
// metrics are enabled or not.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing named metric. The nil handle
// (what a nil Observer hands out) ignores updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on the nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a named last-value metric. The nil handle ignores updates.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add shifts the gauge by d — for gauges tracking a running total that
// can both grow and shrink (resident bytes, open jobs).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Max raises the gauge to v if v is larger — a high-water mark.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the last recorded value (0 on the nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram summarises a distribution of int64 observations (typically
// durations in nanoseconds or sizes in states): count, sum, min, max.
// The nil handle ignores observations.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	min   atomic.Int64 // valid once count > 0
	max   atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if h.count.Add(1) == 1 {
		h.min.Store(v)
		h.max.Store(v)
	} else {
		for {
			cur := h.min.Load()
			if v >= cur || h.min.CompareAndSwap(cur, v) {
				break
			}
		}
		for {
			cur := h.max.Load()
			if v <= cur || h.max.CompareAndSwap(cur, v) {
				break
			}
		}
	}
	h.sum.Add(v)
}

// ObserveSince records the elapsed time since start in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(start)))
}

// HistogramStat is the exported summary of a histogram.
type HistogramStat struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
}

// Mean returns the average observation, or 0 with no samples.
func (s HistogramStat) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Observer is the hub of the layer: a metric registry plus the span
// tracer and progress reporter. A nil *Observer is the disabled state —
// it hands out nil metric handles and nil spans whose methods all no-op
// — so instrumented code threads one pointer and never branches on an
// "enabled" flag. All methods are safe for concurrent use.
type Observer struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spanMu   sync.Mutex
	nextSpan uint64
	ring     []SpanRecord // circular buffer of finished spans
	ringNext int
	ringFull bool
	sink     SpanSink

	progressFn    func(ProgressEvent)
	progressEvery time.Duration
}

// Option configures an Observer.
type Option func(*Observer)

// defaultRingSize bounds the in-memory record of finished spans.
const defaultRingSize = 1024

// WithSpanRing sets how many finished spans the in-memory ring keeps
// (default 1024; 0 disables the ring, useful with a sink).
func WithSpanRing(n int) Option {
	return func(o *Observer) {
		if n >= 0 {
			o.ring = make([]SpanRecord, n)
		}
	}
}

// WithSpanSink streams every finished span to the sink (typically a
// JSONL file) in addition to the ring.
func WithSpanSink(s SpanSink) Option {
	return func(o *Observer) { o.sink = s }
}

// WithProgress installs a heartbeat reporter invoked at most once per
// interval per Progress handle (interval <= 0 selects 1s).
func WithProgress(fn func(ProgressEvent), interval time.Duration) Option {
	return func(o *Observer) {
		if interval <= 0 {
			interval = time.Second
		}
		o.progressFn = fn
		o.progressEvery = interval
	}
}

// New builds an enabled Observer.
func New(opts ...Option) *Observer {
	o := &Observer{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		ring:     make([]SpanRecord, defaultRingSize),
	}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// Counter returns the named counter handle, creating it on first use.
// A nil Observer returns the nil handle.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	c, ok := o.counters[name]
	if !ok {
		c = &Counter{}
		o.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge handle, creating it on first use.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	g, ok := o.gauges[name]
	if !ok {
		g = &Gauge{}
		o.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram handle, creating it on first
// use.
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	h, ok := o.hists[name]
	if !ok {
		h = &Histogram{}
		o.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every registered metric. Maps
// render with sorted keys under encoding/json, so marshalled snapshots
// are deterministic for deterministic workloads.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]int64         `json:"gauges,omitempty"`
	Histograms map[string]HistogramStat `json:"histograms,omitempty"`
}

// Snapshot copies the current metric values. A nil Observer yields the
// zero Snapshot.
func (o *Observer) Snapshot() Snapshot {
	var s Snapshot
	if o == nil {
		return s
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.counters) > 0 {
		s.Counters = make(map[string]int64, len(o.counters))
		for name, c := range o.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(o.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(o.gauges))
		for name, g := range o.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(o.hists) > 0 {
		s.Histograms = make(map[string]HistogramStat, len(o.hists))
		for name, h := range o.hists {
			s.Histograms[name] = HistogramStat{
				Count: h.count.Load(),
				Sum:   h.sum.Load(),
				Min:   h.min.Load(),
				Max:   h.max.Load(),
			}
		}
	}
	return s
}

// WriteText renders the snapshot as sorted fixed-form lines — the
// -metrics output of the CLIs.
func (s Snapshot) WriteText(w io.Writer) error {
	var names []string
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "counter   %-40s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "gauge     %-40s %d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "histogram %-40s count=%d sum=%d min=%d max=%d mean=%d\n",
			name, h.Count, h.Sum, h.Min, h.Max, h.Mean()); err != nil {
			return err
		}
	}
	return nil
}
