package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// Flags is the common -metrics / -tracefile / -progress flag triple the
// checking CLIs share. Register with AddFlags, then Build once parsing
// is done.
type Flags struct {
	// Metrics prints the metric snapshot to the diagnostic writer after
	// the run.
	Metrics bool
	// TraceFile streams finished spans as JSONL to this path.
	TraceFile string
	// Progress prints heartbeat lines to the diagnostic writer during
	// long-running phases.
	Progress bool
	// ProgressEvery is the minimum interval between heartbeats
	// (default 1s).
	ProgressEvery time.Duration
}

// AddFlags registers the flag triple on the set.
func (f *Flags) AddFlags(fs *flag.FlagSet) {
	fs.BoolVar(&f.Metrics, "metrics", false,
		"print the observability metric snapshot to stderr after the run")
	fs.StringVar(&f.TraceFile, "tracefile", "",
		"write finished spans as JSONL to this file")
	fs.BoolVar(&f.Progress, "progress", false,
		"print progress heartbeats to stderr during long-running phases")
}

// Enabled reports whether any observability output was requested.
func (f Flags) Enabled() bool {
	return f.Metrics || f.TraceFile != "" || f.Progress
}

// Build constructs the Observer the flags select and a finish function
// to defer: it flushes the metric snapshot to diag (when -metrics),
// closes the trace file, and surfaces any sink write error. With every
// flag off it returns a nil Observer — the zero-overhead disabled path
// — and a no-op finish. diag is the diagnostic stream (conventionally
// os.Stderr): observability output must stay off stdout so reports
// remain byte-identical with metrics enabled or disabled.
func (f Flags) Build(diag io.Writer) (*Observer, func() error, error) {
	if !f.Enabled() {
		return nil, func() error { return nil }, nil
	}
	if diag == nil {
		diag = os.Stderr
	}
	var opts []Option
	var sink *JSONLSink
	var traceFile *os.File
	if f.TraceFile != "" {
		tf, err := os.Create(f.TraceFile)
		if err != nil {
			return nil, nil, fmt.Errorf("tracefile: %w", err)
		}
		traceFile = tf
		sink = NewJSONLSink(tf)
		opts = append(opts, WithSpanSink(sink))
	}
	if f.Progress {
		opts = append(opts, WithProgress(TextProgress(diag), f.ProgressEvery))
	}
	o := New(opts...)
	finish := func() error {
		var firstErr error
		if f.Metrics {
			if err := o.Snapshot().WriteText(diag); err != nil {
				firstErr = err
			}
		}
		if sink != nil && firstErr == nil {
			firstErr = sink.Err()
		}
		if traceFile != nil {
			if err := traceFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return o, finish, nil
}
