package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ProgressEvent is one heartbeat from a long-running phase.
type ProgressEvent struct {
	// Name identifies the phase ("lts.explore", "faultcampaign.run", …).
	Name string
	// Done is the monotone work counter the phase reports (states
	// explored, scenarios finished, …).
	Done int64
	// Elapsed is the time since the Progress handle was created.
	Elapsed time.Duration
	// Rate is Done per second over the whole phase.
	Rate float64
	// Attrs carries phase-specific fields (frontier size, workers, …).
	Attrs []Attr
}

// Progress is a rate-limited heartbeat reporter for one phase. Handles
// come from Observer.Progress; the nil handle (no observer, or no
// reporter configured) ignores every Tick, so hot loops can tick
// unconditionally.
type Progress struct {
	o     *Observer
	name  string
	start time.Time

	mu   sync.Mutex
	last time.Time
}

// Progress opens a heartbeat handle for the named phase. It returns nil
// when no progress reporter is configured, keeping Tick a single nil
// check on the disabled path.
func (o *Observer) Progress(name string) *Progress {
	if o == nil || o.progressFn == nil {
		return nil
	}
	now := time.Now()
	return &Progress{o: o, name: name, start: now, last: now}
}

// Tick reports the phase's current work counter. Events are delivered
// at most once per the observer's progress interval; excess ticks are
// dropped, so callers may tick every loop iteration.
func (p *Progress) Tick(done int64, attrs ...Attr) {
	if p == nil {
		return
	}
	now := time.Now()
	p.mu.Lock()
	if now.Sub(p.last) < p.o.progressEvery {
		p.mu.Unlock()
		return
	}
	p.last = now
	p.mu.Unlock()
	p.emit(now, done, attrs)
}

// Flush reports unconditionally — the final heartbeat of a phase.
func (p *Progress) Flush(done int64, attrs ...Attr) {
	if p == nil {
		return
	}
	p.emit(time.Now(), done, attrs)
}

func (p *Progress) emit(now time.Time, done int64, attrs []Attr) {
	elapsed := now.Sub(p.start)
	rate := 0.0
	if secs := elapsed.Seconds(); secs > 0 {
		rate = float64(done) / secs
	}
	p.o.progressFn(ProgressEvent{
		Name:    p.name,
		Done:    done,
		Elapsed: elapsed,
		Rate:    rate,
		Attrs:   attrs,
	})
}

// TextProgress returns a reporter rendering heartbeats as single lines
// on w — the -progress output of the CLIs:
//
//	progress lts.explore: 5120 done, 2560.0/s, frontier=84 (2.0s)
func TextProgress(w io.Writer) func(ProgressEvent) {
	var mu sync.Mutex
	return func(ev ProgressEvent) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(w, "progress %s: %d done, %.1f/s", ev.Name, ev.Done, ev.Rate)
		for _, a := range ev.Attrs {
			fmt.Fprintf(w, ", %s=%v", a.Key, a.Value)
		}
		fmt.Fprintf(w, " (%.1fs)\n", ev.Elapsed.Seconds())
	}
}
