package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilObserverIsSafe exercises the entire API surface on the disabled
// (nil) observer: every call must no-op without panicking.
func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer

	c := o.Counter("c")
	c.Inc()
	c.Add(10)
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}

	g := o.Gauge("g")
	g.Set(5)
	g.Max(9)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge value = %d, want 0", got)
	}

	h := o.Histogram("h")
	h.Observe(3)
	h.ObserveSince(time.Now())

	sp := o.StartSpan("root", String("k", "v"))
	child := sp.Child("child")
	child.SetAttr(Int("n", 1))
	child.End()
	sp.End(Bool("ok", true))

	p := o.Progress("phase")
	p.Tick(1)
	p.Flush(2)

	if spans := o.Spans(); spans != nil {
		t.Fatalf("nil observer spans = %v, want nil", spans)
	}
	snap := o.Snapshot()
	if snap.Counters != nil || snap.Gauges != nil || snap.Histograms != nil {
		t.Fatalf("nil observer snapshot not zero: %+v", snap)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	o := New()
	c := o.Counter("frames")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if o.Counter("frames") != c {
		t.Fatal("counter handle not stable across lookups")
	}

	g := o.Gauge("frontier")
	g.Set(10)
	g.Max(7) // lower: ignored
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge after Max(7) = %d, want 10", got)
	}
	g.Max(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("gauge after Max(42) = %d, want 42", got)
	}

	h := o.Histogram("check.ns")
	for _, v := range []int64{5, 1, 9} {
		h.Observe(v)
	}
	st := o.Snapshot().Histograms["check.ns"]
	if st.Count != 3 || st.Sum != 15 || st.Min != 1 || st.Max != 9 || st.Mean() != 5 {
		t.Fatalf("histogram stat = %+v (mean %d), want count=3 sum=15 min=1 max=9 mean=5", st, st.Mean())
	}
}

func TestMetricsConcurrent(t *testing.T) {
	o := New()
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := o.Counter("n")
			h := o.Histogram("h")
			g := o.Gauge("g")
			for j := 0; j < per; j++ {
				c.Inc()
				h.Observe(int64(j))
				g.Max(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := o.Counter("n").Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	st := o.Snapshot().Histograms["h"]
	if st.Count != goroutines*per || st.Min != 0 || st.Max != per-1 {
		t.Fatalf("histogram stat = %+v", st)
	}
	if got := o.Gauge("g").Value(); got != per-1 {
		t.Fatalf("gauge = %d, want %d", got, per-1)
	}
}

func TestSpanRingAndParentLinks(t *testing.T) {
	o := New()
	root := o.StartSpan("root", String("model", "ota"))
	child := root.Child("phase")
	child.End(Int("states", 12))
	root.End()

	spans := o.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Children end first, so the ring holds [child, root].
	if spans[0].Name != "phase" || spans[1].Name != "root" {
		t.Fatalf("span order = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent = %d, want root id %d", spans[0].Parent, spans[1].ID)
	}
	if spans[1].Parent != 0 {
		t.Fatalf("root parent = %d, want 0", spans[1].Parent)
	}
	if spans[0].Attrs["states"] != int64(12) {
		t.Fatalf("child attrs = %v", spans[0].Attrs)
	}
	if spans[0].DurationNs < 0 {
		t.Fatalf("negative duration %d", spans[0].DurationNs)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	o := New()
	sp := o.StartSpan("once")
	sp.End()
	sp.End()
	if got := len(o.Spans()); got != 1 {
		t.Fatalf("double End published %d spans, want 1", got)
	}
}

func TestSpanRingWraps(t *testing.T) {
	o := New(WithSpanRing(4))
	for i := 0; i < 6; i++ {
		o.StartSpan("s").End(Int("i", int64(i)))
	}
	spans := o.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	// Oldest-first: spans 2..5 survive.
	for i, sp := range spans {
		if want := int64(i + 2); sp.Attrs["i"] != want {
			t.Fatalf("span %d attr i = %v, want %d", i, sp.Attrs["i"], want)
		}
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	o := New(WithSpanSink(sink))
	sp := o.StartSpan("refine.refines", String("model", "ota"))
	sp.End(String("verdict", "holds"))
	if err := sink.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}

	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		lines++
		var rec struct {
			ID         uint64         `json:"id"`
			Name       string         `json:"name"`
			DurationNs int64          `json:"durationNs"`
			Attrs      map[string]any `json:"attrs"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if rec.Name != "refine.refines" || rec.Attrs["verdict"] != "holds" {
			t.Fatalf("record = %+v", rec)
		}
	}
	if lines != 1 {
		t.Fatalf("got %d JSONL lines, want 1", lines)
	}
}

type failWriter struct{ err error }

func (f failWriter) Write([]byte) (int, error) { return 0, f.err }

func TestJSONLSinkLatchesError(t *testing.T) {
	wantErr := errors.New("disk full")
	sink := NewJSONLSink(failWriter{err: wantErr})
	sink.WriteSpan(SpanRecord{Name: "a"})
	sink.WriteSpan(SpanRecord{Name: "b"})
	if !errors.Is(sink.Err(), wantErr) {
		t.Fatalf("sink.Err() = %v, want %v", sink.Err(), wantErr)
	}
}

func TestProgressRateLimitAndFlush(t *testing.T) {
	var mu sync.Mutex
	var events []ProgressEvent
	o := New(WithProgress(func(ev ProgressEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}, time.Hour))

	p := o.Progress("lts.explore")
	if p == nil {
		t.Fatal("enabled observer returned nil progress")
	}
	for i := 0; i < 100; i++ {
		p.Tick(int64(i)) // all inside the interval: dropped
	}
	p.Flush(100, Int("frontier", 7))

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1 (flush only)", len(events))
	}
	ev := events[0]
	if ev.Name != "lts.explore" || ev.Done != 100 {
		t.Fatalf("event = %+v", ev)
	}
	if len(ev.Attrs) != 1 || ev.Attrs[0].Key != "frontier" {
		t.Fatalf("event attrs = %+v", ev.Attrs)
	}
}

func TestProgressNilWithoutReporter(t *testing.T) {
	o := New()
	if p := o.Progress("x"); p != nil {
		t.Fatal("observer without reporter should hand out nil progress")
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() Snapshot {
		o := New()
		o.Counter("b").Add(2)
		o.Counter("a").Inc()
		o.Gauge("z").Set(9)
		o.Histogram("h").Observe(4)
		return o.Snapshot()
	}
	j1, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n%s", j1, j2)
	}
}

func TestSnapshotWriteText(t *testing.T) {
	o := New()
	o.Counter("lts.cache.hits").Add(12)
	o.Gauge("lts.explore.frontier").Set(84)
	o.Histogram("refine.check.ns").Observe(1000)
	var buf bytes.Buffer
	if err := o.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"counter   lts.cache.hits",
		"gauge     lts.explore.frontier",
		"histogram refine.check.ns",
		"count=1 sum=1000 min=1000 max=1000 mean=1000",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestFlagsBuildDisabled(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f.AddFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	o, finish, err := f.Build(os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Fatal("all-off flags must yield a nil observer")
	}
	if err := finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
}

func TestFlagsBuildTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	f := Flags{Metrics: true, TraceFile: trace}
	var diag bytes.Buffer
	o, finish, err := f.Build(&diag)
	if err != nil {
		t.Fatal(err)
	}
	if o == nil {
		t.Fatal("enabled flags yielded nil observer")
	}
	o.Counter("frames").Add(3)
	o.StartSpan("run").End()
	if err := finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if !strings.Contains(diag.String(), "counter   frames") {
		t.Fatalf("metrics snapshot missing from diag:\n%s", diag.String())
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"name":"run"`) {
		t.Fatalf("trace file missing span: %s", data)
	}
}

// Disabled-path benchmarks: the cost of instrumentation with a nil
// observer must be a nil check, nothing more.

func BenchmarkDisabledCounter(b *testing.B) {
	var o *Observer
	c := o.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.StartSpan("x")
		sp.End()
	}
}

func BenchmarkDisabledProgressTick(b *testing.B) {
	var o *Observer
	p := o.Progress("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Tick(int64(i))
	}
}

func BenchmarkEnabledCounter(b *testing.B) {
	o := New()
	c := o.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
