// Checkpoint/resume and spill-store acceptance tests. The invariant
// under test is the PR's headline guarantee: an exploration interrupted
// at an arbitrary point and resumed from its checkpoint produces a
// byte-identical LTS to an uninterrupted run, and a disk-spilling
// visited store never changes the result, only where it lives.
package lts_test

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/csp"
	"repro/internal/lts"
	"repro/internal/obs"
	"repro/internal/ota"
	"repro/internal/statestore"
)

// cancelStore wraps a Store and cancels a context after the Nth insert,
// simulating a crash at a deterministic point mid-exploration. Inserts
// now count interned term nodes (states and their subterms), so a given
// budget cuts even earlier in the exploration than the same number of
// states would.
type cancelStore struct {
	statestore.Store
	remaining int
	cancel    context.CancelFunc
}

func (s *cancelStore) Insert(hash uint64, key []byte, id int) {
	s.Store.Insert(hash, key, id)
	s.remaining--
	if s.remaining == 0 {
		s.cancel()
	}
}

// corpusRoots returns every assertion process term of the system.
func corpusRoots(sys *ota.System) []csp.Process {
	var roots []csp.Process
	for _, a := range sys.Model.Asserts {
		roots = append(roots, a.Impl)
		if a.Spec != nil {
			roots = append(roots, a.Spec)
		}
	}
	return roots
}

func TestCheckpointResumeByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, cs := range otaCorpus(t) {
		sem := csp.NewSemantics(cs.sys.Model.Env, cs.sys.Model.Ctx)
		for ri, root := range corpusRoots(cs.sys) {
			ref, err := lts.Explore(sem, root, lts.Options{})
			if err != nil {
				t.Fatalf("%s root %d: reference explore: %v", cs.name, ri, err)
			}
			// Interrupt at a randomized number of interner inserts, at
			// least 1 (immediately) and at most the state count — node
			// inserts outnumber states, so this always cancels somewhere
			// inside the run.
			cut := 1 + rng.Intn(ref.NumStates())
			dir := t.TempDir()
			ctx, cancel := context.WithCancel(context.Background())
			st := &cancelStore{Store: statestore.NewMem(), remaining: cut, cancel: cancel}
			part, err := lts.Explore(sem, root, lts.Options{
				Ctx:        ctx,
				Store:      st,
				Checkpoint: &lts.CheckpointOptions{Dir: dir},
			})
			cancel()
			if err == nil {
				// The cut landed after the last stop probe; the completed
				// result must already match.
				requireSameLTS(t, cs.name+"-completed", ref, part)
			} else if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s root %d: interrupted explore: %v", cs.name, ri, err)
			}

			_, statErr := os.Stat(filepath.Join(dir, "checkpoint.json"))
			o := obs.New()
			got, err := lts.Explore(sem, root, lts.Options{
				Checkpoint: &lts.CheckpointOptions{Dir: dir},
				Obs:        o,
			})
			if err != nil {
				t.Fatalf("%s root %d: resumed explore: %v", cs.name, ri, err)
			}
			requireSameLTS(t, cs.name, ref, got)
			resumes := o.Counter("lts.checkpoint.resumes").Value()
			if statErr == nil {
				// A very early cut may cancel before the first level
				// completes, legitimately leaving no checkpoint; whenever
				// one was written, the second run must use it.
				if resumes != 1 {
					t.Fatalf("%s root %d (cut %d): resumes = %d, want 1", cs.name, ri, cut, resumes)
				}
			}
		}
	}
}

func TestCheckpointFinalSnapshotResumesInstantly(t *testing.T) {
	sys, err := ota.Build()
	if err != nil {
		t.Fatal(err)
	}
	sem := csp.NewSemantics(sys.Model.Env, sys.Model.Ctx)
	root := sys.Model.Asserts[0].Impl
	dir := t.TempDir()
	ref, err := lts.Explore(sem, root, lts.Options{Checkpoint: &lts.CheckpointOptions{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	got, err := lts.Explore(sem, root, lts.Options{
		Checkpoint: &lts.CheckpointOptions{Dir: dir},
		Obs:        o,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameLTS(t, "final-snapshot", ref, got)
	if o.Counter("lts.checkpoint.resumes").Value() != 1 {
		t.Fatal("completed exploration was not resumed from its final snapshot")
	}
	// The resumed run had nothing to expand, so no fresh levels.
	if o.Counter("lts.explore.levels").Value() != 0 {
		t.Fatalf("resume from final snapshot expanded %d levels, want 0",
			o.Counter("lts.explore.levels").Value())
	}
}

func TestCheckpointIgnoresCorruptAndMismatched(t *testing.T) {
	sys, err := ota.Build()
	if err != nil {
		t.Fatal(err)
	}
	sem := csp.NewSemantics(sys.Model.Env, sys.Model.Ctx)
	roots := corpusRoots(sys)
	ref, err := lts.Explore(sem, roots[0], lts.Options{})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("corrupt", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "checkpoint.json"), []byte(`{"version":1,"rootKey":`), 0o644); err != nil {
			t.Fatal(err)
		}
		o := obs.New()
		got, err := lts.Explore(sem, roots[0], lts.Options{
			Checkpoint: &lts.CheckpointOptions{Dir: dir},
			Obs:        o,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireSameLTS(t, "corrupt-ignored", ref, got)
		if o.Counter("lts.checkpoint.ignored").Value() != 1 {
			t.Fatal("corrupt snapshot was not counted as ignored")
		}
	})

	t.Run("truncated-digest", func(t *testing.T) {
		// A structurally valid JSON document whose digest doesn't match
		// (simulating a torn write that still parses).
		dir := t.TempDir()
		if _, err := lts.Explore(sem, roots[0], lts.Options{
			Checkpoint: &lts.CheckpointOptions{Dir: dir},
		}); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "checkpoint.json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a byte inside the document body.
		data[len(data)/2]++
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		o := obs.New()
		got, err := lts.Explore(sem, roots[0], lts.Options{
			Checkpoint: &lts.CheckpointOptions{Dir: dir},
			Obs:        o,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireSameLTS(t, "digest-ignored", ref, got)
		if o.Counter("lts.checkpoint.ignored").Value() != 1 {
			t.Fatal("digest-mismatched snapshot was not counted as ignored")
		}
	})

	t.Run("old-version", func(t *testing.T) {
		// A well-formed document from a previous snapshot schema must be
		// ignored (version mismatch), never misread into a resume.
		dir := t.TempDir()
		v1 := `{"version":1,"rootKey":"X","maxStates":1048576,"levels":1,"elapsedNs":0,` +
			`"init":0,"keys":["X"],"events":[],"edges":[[]],"frontier":[],"frontierProcs":[],"digest":0}`
		if err := os.WriteFile(filepath.Join(dir, "checkpoint.json"), []byte(v1), 0o644); err != nil {
			t.Fatal(err)
		}
		o := obs.New()
		got, err := lts.Explore(sem, roots[0], lts.Options{
			Checkpoint: &lts.CheckpointOptions{Dir: dir},
			Obs:        o,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireSameLTS(t, "v1-ignored", ref, got)
		if o.Counter("lts.checkpoint.ignored").Value() != 1 {
			t.Fatal("v1 snapshot was not counted as ignored")
		}
	})

	t.Run("different-root", func(t *testing.T) {
		dir := t.TempDir()
		if _, err := lts.Explore(sem, roots[1], lts.Options{
			Checkpoint: &lts.CheckpointOptions{Dir: dir},
		}); err != nil {
			t.Fatal(err)
		}
		o := obs.New()
		got, err := lts.Explore(sem, roots[0], lts.Options{
			Checkpoint: &lts.CheckpointOptions{Dir: dir},
			Obs:        o,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireSameLTS(t, "other-root-ignored", ref, got)
		if o.Counter("lts.checkpoint.resumes").Value() != 0 {
			t.Fatal("snapshot of a different root was resumed")
		}
	})
}

// TestSpillStoreExploreIdentical pins the spill acceptance criterion: an
// Explore whose visited set exceeds the soft watermark (forced to 0 here
// so even small corpus models spill) completes on the disk store with a
// byte-identical LTS and visible spill counters.
func TestSpillStoreExploreIdentical(t *testing.T) {
	for _, cs := range otaCorpus(t) {
		sem := csp.NewSemantics(cs.sys.Model.Env, cs.sys.Model.Ctx)
		root := corpusRoots(cs.sys)[0]
		ref, err := lts.Explore(sem, root, lts.Options{})
		if err != nil {
			t.Fatalf("%s: reference explore: %v", cs.name, err)
		}
		o := obs.New()
		st := statestore.NewSpill(statestore.SpillConfig{Dir: t.TempDir(), SoftMemBytes: 0, Obs: o})
		got, err := lts.Explore(sem, root, lts.Options{Store: st})
		if err != nil {
			t.Fatalf("%s: spill explore: %v", cs.name, err)
		}
		requireSameLTS(t, cs.name+"-spill", ref, got)
		if !st.Spilled() {
			t.Fatalf("%s: store never spilled at watermark 0", cs.name)
		}
		// The store interns every term node, not just states, so the
		// spilled-key count is at least the state count.
		if o.Counter("statestore.spill.keys").Value() < int64(ref.NumStates()) {
			t.Fatalf("%s: spilled %d keys, want >= %d", cs.name,
				o.Counter("statestore.spill.keys").Value(), ref.NumStates())
		}
		if err := st.Close(); err != nil {
			t.Fatalf("%s: close spill store: %v", cs.name, err)
		}
	}
}

func TestMemoryWatermarkReturnsStructuredError(t *testing.T) {
	sys, err := ota.Build()
	if err != nil {
		t.Fatal(err)
	}
	sem := csp.NewSemantics(sys.Model.Env, sys.Model.Ctx)
	root := corpusRoots(sys)[0]
	_, err = lts.Explore(sem, root, lts.Options{MaxMemBytes: 1})
	if !errors.Is(err, lts.ErrMemoryLimit) {
		t.Fatalf("explore under 1-byte watermark: %v, want ErrMemoryLimit", err)
	}
	var me *lts.MemoryError
	if !errors.As(err, &me) {
		t.Fatalf("error %T does not expose *MemoryError", err)
	}
	if me.Explored <= 0 || me.EstimatedBytes <= me.Limit-1 {
		t.Fatalf("MemoryError fields implausible: %+v", me)
	}
}
