package lts

import (
	"encoding/json"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"repro/internal/csp"
	"repro/internal/obs"
	"repro/internal/statestore"
)

// CheckpointOptions configures level-granular checkpointing of an
// exploration. After every EveryLevels completed BFS levels (and once
// more on completion), Explore writes an atomic snapshot of the partial
// LTS — state terms, edges, event table, merge position, elapsed budget
// — to Dir. A later Explore with the same root and bound finds the
// snapshot, restores it and continues from the saved position; the
// sequential interning merge makes the resumed result byte-identical to
// an uninterrupted run.
type CheckpointOptions struct {
	// Dir is the checkpoint directory (created if missing). One
	// exploration per directory: the snapshot is keyed by root term and
	// state bound, and a mismatched snapshot is ignored, not merged.
	Dir string
	// EveryLevels is the checkpoint cadence in completed BFS levels;
	// <= 0 means 1 (checkpoint after every level).
	EveryLevels int
}

// checkpointFile is the snapshot name inside CheckpointOptions.Dir.
const checkpointFile = "checkpoint.json"

// snapshotVersion guards the snapshot schema; a version bump makes old
// snapshots invalid (ignored, re-explored) instead of misread. Version
// 2 replaced the canonical-key-string state table of version 1 with
// codec-encoded terms for every state (the interned engine re-derives
// identity from the terms themselves) and the explicit frontier list
// with the merge position: states [Merged, N) are exactly the
// unexpanded tail of the BFS order.
const snapshotVersion = 2

// snapshot is the on-disk checkpoint document. The digest covers the
// JSON encoding of every other field, so a torn or hand-edited file is
// detected and ignored rather than resumed into a corrupt LTS.
type snapshot struct {
	Version   int    `json:"version"`
	RootKey   string `json:"rootKey"`
	MaxStates int    `json:"maxStates"`
	// Levels is the number of completed BFS levels.
	Levels int `json:"levels"`
	// ElapsedNs is exploration wall-clock already spent, restored into
	// the MaxDuration budget so a crash cannot extend a deadline.
	ElapsedNs int64 `json:"elapsedNs"`

	Init int `json:"init"`
	// Merged is the number of leading states whose edges are final;
	// states [Merged, len(Terms)) are the unexpanded frontier.
	Merged int `json:"merged"`
	// Terms holds the codec-encoded process term of every state, in
	// state-ID order.
	Terms []json.RawMessage `json:"terms"`
	// Events holds codec-encoded visible events (IDs >= 2; tau and tick
	// are implicit).
	Events []json.RawMessage `json:"events"`
	Edges  [][]Edge          `json:"edges"`

	Digest uint64 `json:"digest"`
}

// digest computes the FNV-64a digest of the snapshot's JSON encoding
// with the Digest field zeroed. Struct encoding is deterministic (no
// maps), so write and load sides agree byte-for-byte.
func (s *snapshot) digest() (uint64, error) {
	saved := s.Digest
	s.Digest = 0
	data, err := json.Marshal(s)
	s.Digest = saved
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64(), nil
}

// resumeState is a validated snapshot, decoded and ready for the engine
// to register into its live interner. Validation happens entirely
// against a throwaway interner inside load, so a snapshot rejected
// halfway leaves no residue in the exploration.
type resumeState struct {
	init    int
	procs   []csp.Process
	events  []csp.Event
	edges   [][]Edge
	merged  int
	levels  int
	elapsed time.Duration
}

// checkpointer writes and restores exploration snapshots. All failure
// modes are soft: a checkpoint that cannot be written or parsed costs
// re-exploration, never a wrong result.
type checkpointer struct {
	dir   string
	every int

	writesC  *obs.Counter
	resumesC *obs.Counter
	ignoredC *obs.Counter
	errorsC  *obs.Counter
}

func newCheckpointer(opts *CheckpointOptions, o *obs.Observer) *checkpointer {
	every := opts.EveryLevels
	if every <= 0 {
		every = 1
	}
	return &checkpointer{
		dir:      opts.Dir,
		every:    every,
		writesC:  o.Counter("lts.checkpoint.writes"),
		resumesC: o.Counter("lts.checkpoint.resumes"),
		ignoredC: o.Counter("lts.checkpoint.ignored"),
		errorsC:  o.Counter("lts.checkpoint.errors"),
	}
}

// write snapshots the partial LTS after a completed level. Errors are
// counted and swallowed: a failed checkpoint must not fail the check.
func (c *checkpointer) write(l *LTS, merged, levels int, elapsed time.Duration, rootKey string, maxStates int) {
	snap := snapshot{
		Version:   snapshotVersion,
		RootKey:   rootKey,
		MaxStates: maxStates,
		Levels:    levels,
		ElapsedNs: int64(elapsed),
		Init:      l.Init,
		Merged:    merged,
		Edges:     l.Edges,
	}
	snap.Terms = make([]json.RawMessage, 0, len(l.Procs))
	for _, p := range l.Procs {
		data, err := csp.EncodeProcess(p)
		if err != nil {
			c.errorsC.Inc()
			return
		}
		snap.Terms = append(snap.Terms, data)
	}
	snap.Events = make([]json.RawMessage, 0, len(l.Events)-2)
	for _, e := range l.Events[2:] {
		data, err := csp.EncodeEvent(e)
		if err != nil {
			c.errorsC.Inc()
			return
		}
		snap.Events = append(snap.Events, data)
	}
	d, err := snap.digest()
	if err != nil {
		c.errorsC.Inc()
		return
	}
	snap.Digest = d
	data, err := json.Marshal(&snap)
	if err != nil {
		c.errorsC.Inc()
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		c.errorsC.Inc()
		return
	}
	if err := statestore.WriteFileAtomic(filepath.Join(c.dir, checkpointFile), data, 0o644); err != nil {
		c.errorsC.Inc()
		return
	}
	c.writesC.Inc()
}

// load restores and fully validates a snapshot matching the
// exploration's root and bound, or returns ok=false when no valid
// matching snapshot exists (missing, torn, wrong version, different
// root or bound — all of which simply mean "explore from scratch").
// Terms are decoded and checked for duplicates against a throwaway
// interner, so the engine can register the result into its own interner
// without re-validating.
func (c *checkpointer) load(rootKey string, maxStates int) (*resumeState, bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, checkpointFile))
	if err != nil {
		if !os.IsNotExist(err) {
			c.ignoredC.Inc()
		}
		return nil, false
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		c.ignoredC.Inc()
		return nil, false
	}
	if snap.Version != snapshotVersion || snap.RootKey != rootKey || snap.MaxStates != maxStates {
		c.ignoredC.Inc()
		return nil, false
	}
	d, err := snap.digest()
	if err != nil || d != snap.Digest {
		c.ignoredC.Inc()
		return nil, false
	}
	n := len(snap.Terms)
	if n == 0 || n > maxStates || len(snap.Edges) != n ||
		snap.Init < 0 || snap.Init >= n ||
		snap.Merged < 0 || snap.Merged > n {
		c.ignoredC.Inc()
		return nil, false
	}
	rs := &resumeState{
		init:    snap.Init,
		procs:   make([]csp.Process, 0, n),
		edges:   snap.Edges,
		merged:  snap.Merged,
		levels:  snap.Levels,
		elapsed: time.Duration(snap.ElapsedNs),
	}
	check := csp.NewInterner(nil)
	seen := make(map[csp.TermID]bool, n)
	for _, raw := range snap.Terms {
		p, err := csp.DecodeProcess(raw)
		if err != nil {
			c.ignoredC.Inc()
			return nil, false
		}
		tid := check.Process(p)
		if seen[tid] {
			// Two states with one term would corrupt interned identity.
			c.ignoredC.Inc()
			return nil, false
		}
		seen[tid] = true
		rs.procs = append(rs.procs, p)
	}
	if rs.procs[snap.Init].Key() != rootKey {
		c.ignoredC.Inc()
		return nil, false
	}
	for _, raw := range snap.Events {
		e, err := csp.DecodeEvent(raw)
		if err != nil {
			c.ignoredC.Inc()
			return nil, false
		}
		rs.events = append(rs.events, e)
	}
	maxEv := 2 + len(rs.events)
	for id, edges := range snap.Edges {
		if id >= snap.Merged && len(edges) > 0 {
			c.ignoredC.Inc()
			return nil, false
		}
		for _, e := range edges {
			if e.Ev < 0 || e.Ev >= maxEv || e.To < 0 || e.To >= n {
				c.ignoredC.Inc()
				return nil, false
			}
		}
	}
	c.resumesC.Inc()
	return rs, true
}
