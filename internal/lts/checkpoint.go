package lts

import (
	"encoding/json"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"repro/internal/csp"
	"repro/internal/obs"
	"repro/internal/statestore"
)

// CheckpointOptions configures level-granular checkpointing of an
// exploration. After every EveryLevels completed BFS levels (and once
// more on completion, with an empty frontier), Explore writes an atomic
// snapshot of the partial LTS — states, edges, event table, frontier
// terms, elapsed budget — to Dir. A later Explore with the same root and
// bound finds the snapshot, restores it and continues from the saved
// frontier; the level-synchronized merge makes the resumed result
// byte-identical to an uninterrupted run.
type CheckpointOptions struct {
	// Dir is the checkpoint directory (created if missing). One
	// exploration per directory: the snapshot is keyed by root term and
	// state bound, and a mismatched snapshot is ignored, not merged.
	Dir string
	// EveryLevels is the checkpoint cadence in completed BFS levels;
	// <= 0 means 1 (checkpoint after every level).
	EveryLevels int
}

// checkpointFile is the snapshot name inside CheckpointOptions.Dir.
const checkpointFile = "checkpoint.json"

// snapshotVersion guards the snapshot schema; a version bump makes old
// snapshots invalid (ignored, re-explored) instead of misread.
const snapshotVersion = 1

// snapshot is the on-disk checkpoint document. The digest covers the
// JSON encoding of every other field, so a torn or hand-edited file is
// detected and ignored rather than resumed into a corrupt LTS.
type snapshot struct {
	Version   int    `json:"version"`
	RootKey   string `json:"rootKey"`
	MaxStates int    `json:"maxStates"`
	// Levels is the number of completed BFS levels.
	Levels int `json:"levels"`
	// ElapsedNs is exploration wall-clock already spent, restored into
	// the MaxDuration budget so a crash cannot extend a deadline.
	ElapsedNs int64 `json:"elapsedNs"`

	Init int      `json:"init"`
	Keys []string `json:"keys"`
	// Events holds codec-encoded visible events (IDs >= 2; tau and tick
	// are implicit).
	Events []json.RawMessage `json:"events"`
	Edges  [][]Edge          `json:"edges"`
	// Frontier lists the state IDs of the next unexpanded level, and
	// FrontierProcs their codec-encoded terms (interior states never need
	// their terms again, so only the frontier is serialized).
	Frontier      []int             `json:"frontier"`
	FrontierProcs []json.RawMessage `json:"frontierProcs"`

	Digest uint64 `json:"digest"`
}

// digest computes the FNV-64a digest of the snapshot's JSON encoding
// with the Digest field zeroed. Struct encoding is deterministic (no
// maps), so write and load sides agree byte-for-byte.
func (s *snapshot) digest() (uint64, error) {
	saved := s.Digest
	s.Digest = 0
	data, err := json.Marshal(s)
	s.Digest = saved
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64(), nil
}

// checkpointer writes and restores exploration snapshots. All failure
// modes are soft: a checkpoint that cannot be written or parsed costs
// re-exploration, never a wrong result.
type checkpointer struct {
	dir   string
	every int

	writesC  *obs.Counter
	resumesC *obs.Counter
	ignoredC *obs.Counter
	errorsC  *obs.Counter
}

func newCheckpointer(opts *CheckpointOptions, o *obs.Observer) *checkpointer {
	every := opts.EveryLevels
	if every <= 0 {
		every = 1
	}
	return &checkpointer{
		dir:      opts.Dir,
		every:    every,
		writesC:  o.Counter("lts.checkpoint.writes"),
		resumesC: o.Counter("lts.checkpoint.resumes"),
		ignoredC: o.Counter("lts.checkpoint.ignored"),
		errorsC:  o.Counter("lts.checkpoint.errors"),
	}
}

// write snapshots the partial LTS after a completed level. Errors are
// counted and swallowed: a failed checkpoint must not fail the check.
func (c *checkpointer) write(l *LTS, frontier []int, levels int, elapsed time.Duration, rootKey string, maxStates int) {
	snap := snapshot{
		Version:   snapshotVersion,
		RootKey:   rootKey,
		MaxStates: maxStates,
		Levels:    levels,
		ElapsedNs: int64(elapsed),
		Init:      l.Init,
		Keys:      l.Keys,
		Edges:     l.Edges,
		Frontier:  frontier,
	}
	snap.Events = make([]json.RawMessage, 0, len(l.Events)-2)
	for _, e := range l.Events[2:] {
		data, err := csp.EncodeEvent(e)
		if err != nil {
			c.errorsC.Inc()
			return
		}
		snap.Events = append(snap.Events, data)
	}
	snap.FrontierProcs = make([]json.RawMessage, 0, len(frontier))
	for _, id := range frontier {
		data, err := csp.EncodeProcess(l.Procs[id])
		if err != nil {
			c.errorsC.Inc()
			return
		}
		snap.FrontierProcs = append(snap.FrontierProcs, data)
	}
	d, err := snap.digest()
	if err != nil {
		c.errorsC.Inc()
		return
	}
	snap.Digest = d
	data, err := json.Marshal(&snap)
	if err != nil {
		c.errorsC.Inc()
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		c.errorsC.Inc()
		return
	}
	if err := statestore.WriteFileAtomic(filepath.Join(c.dir, checkpointFile), data, 0o644); err != nil {
		c.errorsC.Inc()
		return
	}
	c.writesC.Inc()
}

// load restores a snapshot matching the exploration's root and bound
// into a fresh LTS. It returns the restored LTS, frontier, completed
// level count and already-spent wall clock, or ok=false when no valid
// matching snapshot exists (missing, torn, different root or bound —
// all of which simply mean "explore from scratch").
func (c *checkpointer) load(rootKey string, maxStates int, visited statestore.Store) (l *LTS, frontier []int, levels int, elapsed time.Duration, ok bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, checkpointFile))
	if err != nil {
		if !os.IsNotExist(err) {
			c.ignoredC.Inc()
		}
		return nil, nil, 0, 0, false
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		c.ignoredC.Inc()
		return nil, nil, 0, 0, false
	}
	if snap.Version != snapshotVersion || snap.RootKey != rootKey || snap.MaxStates != maxStates {
		c.ignoredC.Inc()
		return nil, nil, 0, 0, false
	}
	d, err := snap.digest()
	if err != nil || d != snap.Digest {
		c.ignoredC.Inc()
		return nil, nil, 0, 0, false
	}
	if len(snap.Edges) != len(snap.Keys) ||
		len(snap.FrontierProcs) != len(snap.Frontier) ||
		snap.Init < 0 || snap.Init >= len(snap.Keys) {
		c.ignoredC.Inc()
		return nil, nil, 0, 0, false
	}
	l = &LTS{
		Init:     snap.Init,
		Keys:     snap.Keys,
		Procs:    make([]csp.Process, len(snap.Keys)),
		Edges:    snap.Edges,
		Events:   []csp.Event{csp.Tau(), csp.Tick()},
		eventIDs: map[string]int{},
	}
	for _, raw := range snap.Events {
		e, err := csp.DecodeEvent(raw)
		if err != nil {
			c.ignoredC.Inc()
			return nil, nil, 0, 0, false
		}
		l.eventIDs[e.String()] = len(l.Events)
		l.Events = append(l.Events, e)
	}
	for i, raw := range snap.FrontierProcs {
		id := snap.Frontier[i]
		if id < 0 || id >= len(snap.Keys) {
			c.ignoredC.Inc()
			return nil, nil, 0, 0, false
		}
		p, err := csp.DecodeProcess(raw)
		if err != nil || p.Key() != snap.Keys[id] {
			c.ignoredC.Inc()
			return nil, nil, 0, 0, false
		}
		l.Procs[id] = p
	}
	for id, k := range snap.Keys {
		visited.Insert(k, id)
	}
	c.resumesC.Inc()
	return l, snap.Frontier, snap.Levels, time.Duration(snap.ElapsedNs), true
}
