package lts

import (
	"fmt"
	"strings"

	"repro/internal/csp"
)

// DOTOptions configures graph export.
type DOTOptions struct {
	// Name is the digraph name (default "lts").
	Name string
	// MaxStates truncates very large graphs (0 = no limit). Truncated
	// output carries a comment noting the cut.
	MaxStates int
	// HighlightTrace marks the states along the given event sequence
	// from the initial state (e.g. a counterexample) in red.
	HighlightTrace []string
}

// ToDOT renders the transition system in Graphviz DOT format — the
// stand-in for FDR's process-graph visualisation.
func (l *LTS) ToDOT(opts DOTOptions) string {
	name := opts.Name
	if name == "" {
		name = "lts"
	}
	limit := l.NumStates()
	truncated := false
	if opts.MaxStates > 0 && opts.MaxStates < limit {
		limit = opts.MaxStates
		truncated = true
	}

	highlight := map[int]bool{}
	if len(opts.HighlightTrace) > 0 {
		cur := l.Init
		highlight[cur] = true
		for _, evName := range opts.HighlightTrace {
			next := -1
			for _, e := range l.Edges[cur] {
				if e.Ev == TauID {
					continue
				}
				if l.EventByID(e.Ev).String() == evName {
					next = e.To
					break
				}
			}
			if next < 0 {
				break
			}
			cur = next
			highlight[cur] = true
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  rankdir=LR;\n")
	sb.WriteString("  node [shape=circle, fontsize=10];\n")
	fmt.Fprintf(&sb, "  init [shape=point];\n  init -> s%d;\n", l.Init)
	for id := 0; id < limit; id++ {
		attrs := fmt.Sprintf("label=\"%d\"", id)
		if _, omega := l.Procs[id].(csp.OmegaProc); omega {
			attrs += ", shape=doublecircle"
		}
		if highlight[id] {
			attrs += ", color=red, penwidth=2"
		}
		fmt.Fprintf(&sb, "  s%d [%s];\n", id, attrs)
	}
	for from := 0; from < limit; from++ {
		for _, e := range l.Edges[from] {
			if e.To >= limit {
				continue
			}
			label := "τ"
			style := ", style=dashed"
			if e.Ev != TauID {
				label = escapeDOT(l.EventByID(e.Ev).String())
				style = ""
			}
			fmt.Fprintf(&sb, "  s%d -> s%d [label=%q%s];\n", from, e.To, label, style)
		}
	}
	if truncated {
		fmt.Fprintf(&sb, "  // truncated to %d of %d states\n", limit, l.NumStates())
	}
	sb.WriteString("}\n")
	return sb.String()
}

func escapeDOT(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}
