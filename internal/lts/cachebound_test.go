package lts

import (
	"fmt"
	"testing"

	"repro/internal/csp"
	"repro/internal/obs"
)

// boundSem builds a semantics with n distinct chain processes P0..Pn-1,
// each exploring exactly `states` states, so tests can fill a bounded
// cache with entries of known size.
func boundSem(t *testing.T, n, states int) (*csp.Semantics, []csp.Process) {
	t.Helper()
	ctx := csp.NewContext()
	env := csp.NewEnv()
	procs := make([]csp.Process, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("ch%d", i)
		ctx.MustChannel(name, csp.IntRange{Lo: 0, Hi: states})
		def := fmt.Sprintf("B%d", i)
		env.MustDefine(def, []string{"n"},
			csp.Guard(csp.Binary{Op: csp.OpLt, L: csp.V("n"), R: csp.LitInt(states - 1)},
				csp.Prefix(name, []csp.CommField{csp.Out(csp.V("n"))},
					csp.Call(def, csp.Binary{Op: csp.OpAdd, L: csp.V("n"), R: csp.LitInt(1)}))))
		procs[i] = csp.Call(def, csp.LitInt(0))
	}
	return csp.NewSemantics(env, ctx), procs
}

func TestCacheMaxEntriesEvictsLRU(t *testing.T) {
	sem, procs := boundSem(t, 4, 8)
	c := NewCache()
	c.MaxEntries = 2
	c.Obs = obs.New()
	for _, p := range procs[:3] {
		if _, err := c.Explore(sem, p, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries past MaxEntries=2", c.Len())
	}
	st := c.StatsAll()
	if st.SizeEvictions != 1 {
		t.Errorf("SizeEvictions = %d, want 1", st.SizeEvictions)
	}
	if got := c.Obs.Snapshot().Counters["lts.cache.evictions.size"]; got != 1 {
		t.Errorf("evictions.size counter = %d, want 1", got)
	}
	// procs[0] was least recently used and must be gone: re-exploring it
	// is a miss; procs[1] and procs[2] must still hit.
	_, missesBefore := c.Stats()
	for _, p := range procs[1:3] {
		if _, err := c.Explore(sem, p, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, misses := c.Stats(); misses != missesBefore {
		t.Errorf("retained entries missed: misses %d -> %d", missesBefore, misses)
	}
	if _, err := c.Explore(sem, procs[0], Options{}); err != nil {
		t.Fatal(err)
	}
	if _, misses := c.Stats(); misses != missesBefore+1 {
		t.Errorf("evicted entry did not miss on re-explore")
	}
}

func TestCacheLRUOrderFollowsUse(t *testing.T) {
	sem, procs := boundSem(t, 3, 8)
	c := NewCache()
	c.MaxEntries = 2
	if _, err := c.Explore(sem, procs[0], Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Explore(sem, procs[1], Options{}); err != nil {
		t.Fatal(err)
	}
	// Touch procs[0] so procs[1] becomes the LRU victim.
	if _, err := c.Explore(sem, procs[0], Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Explore(sem, procs[2], Options{}); err != nil {
		t.Fatal(err)
	}
	_, missesBefore := c.Stats()
	if _, err := c.Explore(sem, procs[0], Options{}); err != nil {
		t.Fatal(err)
	}
	if _, misses := c.Stats(); misses != missesBefore {
		t.Error("recently-touched entry was evicted instead of the LRU one")
	}
	if _, err := c.Explore(sem, procs[1], Options{}); err != nil {
		t.Fatal(err)
	}
	if _, misses := c.Stats(); misses != missesBefore+1 {
		t.Error("LRU entry survived past the watermark")
	}
}

func TestCacheMaxStatesWatermark(t *testing.T) {
	sem, procs := boundSem(t, 3, 10) // 10 states per entry
	c := NewCache()
	c.MaxStates = 25 // fits two entries, not three
	for _, p := range procs {
		if _, err := c.Explore(sem, p, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.StatsAll()
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2 under the state watermark", st.Entries)
	}
	if st.States > 25 {
		t.Errorf("cached states = %d, exceeds MaxStates=25", st.States)
	}
	if st.SizeEvictions != 1 {
		t.Errorf("SizeEvictions = %d, want 1", st.SizeEvictions)
	}
}

func TestCacheOversizedEntryEvictedImmediately(t *testing.T) {
	sem, procs := boundSem(t, 1, 50)
	c := NewCache()
	c.MaxStates = 10
	l, err := c.Explore(sem, procs[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumStates() != 50 {
		t.Fatalf("exploration returned %d states, want 50", l.NumStates())
	}
	// The result is returned to the caller but not retained: staying
	// under the watermark wins over keeping an oversized entry.
	if c.Len() != 0 {
		t.Errorf("oversized entry retained (%d entries)", c.Len())
	}
	if st := c.StatsAll(); st.States != 0 {
		t.Errorf("cached states = %d, want 0", st.States)
	}
}

// TestCacheUnboundedDefaultKeepsEverything pins the compatibility
// contract: with both limits zero the cache never evicts for size, so
// batch CLI behaviour is unchanged.
func TestCacheUnboundedDefaultKeepsEverything(t *testing.T) {
	sem, procs := boundSem(t, 6, 8)
	c := NewCache()
	for _, p := range procs {
		if _, err := c.Explore(sem, p, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 6 {
		t.Errorf("unbounded cache holds %d entries, want 6", c.Len())
	}
	if st := c.StatsAll(); st.SizeEvictions != 0 {
		t.Errorf("unbounded cache recorded %d size evictions", st.SizeEvictions)
	}
	_, missesBefore := c.Stats()
	for _, p := range procs {
		if _, err := c.Explore(sem, p, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, misses := c.Stats(); misses != missesBefore {
		t.Error("unbounded cache re-explored a cached entry")
	}
}

// TestCacheBoundedNormalizeEvicted verifies eviction also drops the
// memoized normalisation, so an evicted LTS's subset construction is
// not kept alive behind the bound.
func TestCacheBoundedNormalizeEvicted(t *testing.T) {
	sem, procs := boundSem(t, 2, 8)
	c := NewCache()
	c.MaxEntries = 1
	l0, err := c.Explore(sem, procs[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	n0 := c.Normalize(l0)
	if _, err := c.Explore(sem, procs[1], Options{}); err != nil {
		t.Fatal(err)
	}
	// procs[0] is evicted; its normalisation must be recomputed, not
	// returned from the memo.
	if c.Normalize(l0) == n0 {
		t.Error("evicted LTS still served a memoized normalisation")
	}
}
