package lts

import (
	"sort"
)

// NormNode is one state of a normalised (deterministic) LTS: a
// tau-closed set of states of the original system.
type NormNode struct {
	// States is the sorted member set (indices into the original LTS).
	States []int
	// Succ maps a visible label ID (tick included) to the successor node.
	Succ map[int]int
	// MinAcceptances holds the minimal acceptance sets of the node: the
	// minimised collection of initial-event sets of the stable member
	// states. Used for stable-failures refinement. Each acceptance is a
	// sorted list of label IDs.
	MinAcceptances [][]int
}

// Normalized is the result of FDR-style normalisation: a deterministic
// transition structure over subsets of the original states, annotated
// with minimal acceptances.
type Normalized struct {
	L     *LTS
	Init  int
	Nodes []NormNode
}

// subsetDigest hashes a sorted state subset with FNV-64a over the raw
// int values (little-endian, 8 bytes each). The subset interner buckets
// by this digest and verifies membership by comparing the actual
// slices, so a 64-bit collision costs one extra comparison, never a
// wrong node identity. This replaces the old comma-joined decimal
// string keys, which allocated and re-rendered every subset probe.
func subsetDigest(states []int) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range states {
		v := uint64(x)
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	return h
}

func sameSubset(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, x := range a {
		if x != b[i] {
			return false
		}
	}
	return true
}

// Normalize performs tau-closure plus subset construction on the LTS,
// producing the deterministic structure refinement checking runs
// against.
func Normalize(l *LTS) *Normalized {
	n := &Normalized{L: l}
	index := map[uint64][]int{} // digest -> candidate node IDs
	intern := func(states []int) int {
		d := subsetDigest(states)
		for _, id := range index[d] {
			if sameSubset(n.Nodes[id].States, states) {
				return id
			}
		}
		id := len(n.Nodes)
		index[d] = append(index[d], id)
		n.Nodes = append(n.Nodes, NormNode{States: states, Succ: map[int]int{}})
		return id
	}
	init := intern(l.TauClosure([]int{l.Init}))
	n.Init = init
	for id := 0; id < len(n.Nodes); id++ {
		node := &n.Nodes[id]
		// Gather successors per visible label.
		succs := map[int][]int{}
		for _, s := range node.States {
			for _, e := range l.Edges[s] {
				if e.Ev == TauID {
					continue
				}
				succs[e.Ev] = append(succs[e.Ev], e.To)
			}
		}
		labels := make([]int, 0, len(succs))
		for ev := range succs {
			labels = append(labels, ev)
		}
		sort.Ints(labels)
		for _, ev := range labels {
			target := intern(l.TauClosure(succs[ev]))
			// Re-take the pointer: intern may have grown n.Nodes.
			n.Nodes[id].Succ[ev] = target
		}
		node = &n.Nodes[id]
		node.MinAcceptances = minAcceptances(l, node.States)
	}
	return n
}

// Accepts reports whether the node can perform the label.
func (n *Normalized) Accepts(node, label int) (int, bool) {
	to, ok := n.Nodes[node].Succ[label]
	return to, ok
}

// NumNodes returns the number of normalised nodes.
func (n *Normalized) NumNodes() int { return len(n.Nodes) }

// RefusalPossible reports whether the node has a minimal acceptance that
// is a subset of the given offered set, i.e. whether the specification
// allows an implementation state offering exactly `offered` (a sorted
// label list) to refuse everything else.
func (n *Normalized) RefusalPossible(node int, offered []int) bool {
	offSet := make(map[int]bool, len(offered))
	for _, o := range offered {
		offSet[o] = true
	}
	for _, acc := range n.Nodes[node].MinAcceptances {
		ok := true
		for _, a := range acc {
			if !offSet[a] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func minAcceptances(l *LTS, states []int) [][]int {
	var accs [][]int
	for _, s := range states {
		if !l.IsStable(s) {
			continue
		}
		accs = append(accs, l.Initials(s))
	}
	// Minimise: drop any acceptance that is a strict superset of another,
	// and deduplicate. Sorted shortest-first (ties broken by element
	// order) so subsets are kept before their supersets arrive.
	sort.Slice(accs, func(i, j int) bool {
		if len(accs[i]) != len(accs[j]) {
			return len(accs[i]) < len(accs[j])
		}
		for k := range accs[i] {
			if accs[i][k] != accs[j][k] {
				return accs[i][k] < accs[j][k]
			}
		}
		return false
	})
	var out [][]int
	for _, a := range accs {
		redundant := false
		for _, kept := range out {
			if isSubset(kept, a) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, a)
		}
	}
	return out
}

func isSubset(a, b []int) bool {
	set := make(map[int]bool, len(b))
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}
