package lts

import (
	"sort"
	"strconv"
	"strings"
)

// NormNode is one state of a normalised (deterministic) LTS: a
// tau-closed set of states of the original system.
type NormNode struct {
	// States is the sorted member set (indices into the original LTS).
	States []int
	// Succ maps a visible label ID (tick included) to the successor node.
	Succ map[int]int
	// MinAcceptances holds the minimal acceptance sets of the node: the
	// minimised collection of initial-event sets of the stable member
	// states. Used for stable-failures refinement. Each acceptance is a
	// sorted list of label IDs.
	MinAcceptances [][]int
}

// Normalized is the result of FDR-style normalisation: a deterministic
// transition structure over subsets of the original states, annotated
// with minimal acceptances.
type Normalized struct {
	L     *LTS
	Init  int
	Nodes []NormNode
}

// Normalize performs tau-closure plus subset construction on the LTS,
// producing the deterministic structure refinement checking runs
// against.
func Normalize(l *LTS) *Normalized {
	n := &Normalized{L: l}
	index := map[string]int{}
	var intern func(states []int) int
	intern = func(states []int) int {
		key := subsetKey(states)
		if id, ok := index[key]; ok {
			return id
		}
		id := len(n.Nodes)
		index[key] = id
		n.Nodes = append(n.Nodes, NormNode{States: states, Succ: map[int]int{}})
		return id
	}
	init := intern(l.TauClosure([]int{l.Init}))
	n.Init = init
	for id := 0; id < len(n.Nodes); id++ {
		node := &n.Nodes[id]
		// Gather successors per visible label.
		succs := map[int][]int{}
		for _, s := range node.States {
			for _, e := range l.Edges[s] {
				if e.Ev == TauID {
					continue
				}
				succs[e.Ev] = append(succs[e.Ev], e.To)
			}
		}
		labels := make([]int, 0, len(succs))
		for ev := range succs {
			labels = append(labels, ev)
		}
		sort.Ints(labels)
		for _, ev := range labels {
			target := intern(l.TauClosure(succs[ev]))
			// Re-take the pointer: intern may have grown n.Nodes.
			n.Nodes[id].Succ[ev] = target
		}
		node = &n.Nodes[id]
		node.MinAcceptances = minAcceptances(l, node.States)
	}
	return n
}

// Accepts reports whether the node can perform the label.
func (n *Normalized) Accepts(node, label int) (int, bool) {
	to, ok := n.Nodes[node].Succ[label]
	return to, ok
}

// NumNodes returns the number of normalised nodes.
func (n *Normalized) NumNodes() int { return len(n.Nodes) }

// RefusalPossible reports whether the node has a minimal acceptance that
// is a subset of the given offered set, i.e. whether the specification
// allows an implementation state offering exactly `offered` (a sorted
// label list) to refuse everything else.
func (n *Normalized) RefusalPossible(node int, offered []int) bool {
	offSet := make(map[int]bool, len(offered))
	for _, o := range offered {
		offSet[o] = true
	}
	for _, acc := range n.Nodes[node].MinAcceptances {
		ok := true
		for _, a := range acc {
			if !offSet[a] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func minAcceptances(l *LTS, states []int) [][]int {
	var accs [][]int
	for _, s := range states {
		if !l.IsStable(s) {
			continue
		}
		accs = append(accs, l.Initials(s))
	}
	// Minimise: drop any acceptance that is a strict superset of another,
	// and deduplicate.
	sort.Slice(accs, func(i, j int) bool {
		if len(accs[i]) != len(accs[j]) {
			return len(accs[i]) < len(accs[j])
		}
		return intsKey(accs[i]) < intsKey(accs[j])
	})
	var out [][]int
	for _, a := range accs {
		redundant := false
		for _, kept := range out {
			if isSubset(kept, a) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, a)
		}
	}
	return out
}

func isSubset(a, b []int) bool {
	set := make(map[int]bool, len(b))
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

func subsetKey(states []int) string { return intsKey(states) }

func intsKey(xs []int) string {
	var sb strings.Builder
	for i, x := range xs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(x))
	}
	return sb.String()
}
