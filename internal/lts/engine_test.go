// Regression tests against the exploration engine's internals: panic
// attribution under parallel expansion, and the resident-size estimate
// actually covering the event-intern table. Both need package-internal
// access — the transitionSource seam and the size constants.
package lts

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/csp"
	"repro/internal/statestore"
)

// panicSource is a fake operational semantics over a binary tree of
// Call("S", n) terms: state n steps to 2n+1 and 2n+2 below size, leaves
// are silent, and evaluating the term with n == panicAt panics. It
// reproduces the shape that once misattributed worker panics: many
// states per level, exactly one of them poisonous.
type panicSource struct {
	size    int
	panicAt int
	byKey   map[string]int
}

func treeTerm(n int) csp.Process { return csp.Call("S", csp.LitInt(n)) }

func newPanicSource(size, panicAt int) *panicSource {
	s := &panicSource{size: size, panicAt: panicAt, byKey: map[string]int{}}
	for n := 0; n < size; n++ {
		s.byKey[treeTerm(n).Key()] = n
	}
	return s
}

func (s *panicSource) Transitions(p csp.Process) ([]csp.Transition, error) {
	n, ok := s.byKey[p.Key()]
	if !ok {
		return nil, fmt.Errorf("unknown state %q", p.Key())
	}
	if n == s.panicAt {
		panic(fmt.Sprintf("poisoned state %d", n))
	}
	var trs []csp.Transition
	for _, c := range []int{2*n + 1, 2*n + 2} {
		if c < s.size {
			trs = append(trs, csp.Transition{Ev: csp.Event{Chan: "step"}, To: treeTerm(c)})
		}
	}
	return trs, nil
}

// TestWorkerPanicNamesTheFaultingState pins panic attribution: whatever
// worker evaluates the poisoned state, the error must name that state's
// term — not whichever state a stale claim range happened to point at
// (the old parallel expander reused its claim slice across batches
// without resetting it, so a panic could be reported against a state
// from a previous batch).
func TestWorkerPanicNamesTheFaultingState(t *testing.T) {
	const size, panicAt = 127, 37
	wantKey := treeTerm(panicAt).Key()
	for _, workers := range []int{0, 1, 2, 4, 8} {
		src := newPanicSource(size, panicAt)
		_, err := explore(src, treeTerm(0), Options{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: exploration of a panicking semantics succeeded", workers)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("state %q", wantKey)) {
			t.Fatalf("workers=%d: panic attributed to the wrong state:\n  got  %v\n  want mention of state %q",
				workers, err, wantKey)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("poisoned state %d", panicAt)) {
			t.Fatalf("workers=%d: panic payload lost: %v", workers, err)
		}
	}
}

// eventHeavySem builds a 3-level model whose memory is dominated by its
// event table: root offers N distinct events ch.i, all leading to one
// intermediate state D, which steps once more to STOP. 3 states, N+1
// events.
func eventHeavySem(t *testing.T, n int) (*csp.Semantics, csp.Process) {
	t.Helper()
	ctx := csp.NewContext()
	ctx.MustChannel("ch", csp.IntRange{Lo: 0, Hi: n})
	ctx.MustChannel("done", csp.IntRange{Lo: 0, Hi: 1})
	env := csp.NewEnv()
	env.MustDefine("D", nil,
		csp.Prefix("done", []csp.CommField{csp.Out(csp.LitInt(0))}, csp.Stop()))
	branches := make([]csp.Process, n)
	for i := 0; i < n; i++ {
		branches[i] = csp.Prefix("ch", []csp.CommField{csp.Out(csp.LitInt(i))}, csp.Call("D"))
	}
	return csp.NewSemantics(env, ctx), csp.ExtChoice(branches...)
}

// TestMaxMemBytesCountsEventTable pins the resident-size estimate
// against an event-heavy model. The limit is set to everything the
// exploration resides in *except* the event-intern table (rendered
// labels plus per-entry overhead); the watermark must still trip,
// which it only does if events are part of the estimate. The old
// accounting ignored them, so a model with few states but a huge
// alphabet sailed under any watermark.
func TestMaxMemBytesCountsEventTable(t *testing.T) {
	const n = 64
	sem, root := eventHeavySem(t, n)

	// Reference run: capture the store's resident size and the exact
	// LTS shape.
	store := statestore.NewMem()
	ref, err := Explore(sem, root, Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if ref.NumStates() != 3 || len(ref.Events) != 2+n+1 {
		t.Fatalf("model shape drifted: %d states, %d events", ref.NumStates(), len(ref.Events))
	}
	edges := 0
	eventBytes := int64(0)
	for i := 0; i < ref.NumStates(); i++ {
		edges += len(ref.Edges[i])
	}
	for _, ev := range ref.Events[2:] {
		eventBytes += int64(len(ev.String())) + eventEntryOverhead
	}

	// Everything except the event table fits under this limit; the
	// event table alone pushes the estimate over it. The estimate is
	// checked at each level boundary, and all events are interned while
	// merging the root, so the trip lands at the level-1 boundary with
	// Explored == number of states merged so far.
	limit := store.Bytes() + int64(ref.NumStates())*ltsStateOverhead + int64(edges)*ltsEdgeBytes
	_, err = Explore(sem, root, Options{MaxMemBytes: limit})
	var me *MemoryError
	if !errors.As(err, &me) {
		t.Fatalf("event-table bytes not counted: err = %v, want *MemoryError", err)
	}
	if me.EstimatedBytes <= limit {
		t.Fatalf("MemoryError with estimate %d <= limit %d", me.EstimatedBytes, limit)
	}

	// Resume path: a snapshot with only the root merged re-registers the
	// event table on load, so the same limit must trip immediately on
	// resume, too.
	dir := t.TempDir()
	ck := newCheckpointer(&CheckpointOptions{Dir: dir}, nil)
	partial := &LTS{
		Init:     ref.Init,
		Procs:    ref.Procs,
		Events:   ref.Events,
		eventIDs: ref.eventIDs,
		Edges:    make([][]Edge, ref.NumStates()),
	}
	partial.Edges[0] = ref.Edges[0]
	ck.write(partial, 1, 1, 0, root.Key(), DefaultMaxStates)
	_, err = Explore(sem, root, Options{
		MaxMemBytes: limit,
		Checkpoint:  &CheckpointOptions{Dir: dir},
	})
	if !errors.As(err, &me) {
		t.Fatalf("resume path: event-table bytes not counted: err = %v, want *MemoryError", err)
	}
}
