package lts

import (
	"fmt"

	"repro/internal/csp"
)

// ExploreReference builds the LTS reachable from root with the
// original string-keyed sequential engine: states interned by their
// recursively rendered canonical Key() strings, events by their
// String() renders, plain level-ordered BFS. It is deliberately frozen
// — no workers, no stores, no checkpoints — and exists for two
// purposes: the differential safety net proving the interned
// work-stealing engine produces byte-identical results (state
// numbering, edges, event table), and the benchsmoke baseline that pins
// how much the interner buys over string keys. Only maxStates is
// honoured; 0 means DefaultMaxStates.
func ExploreReference(sem *csp.Semantics, root csp.Process, maxStates int) (*LTS, error) {
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	l := &LTS{
		Events:   []csp.Event{csp.Tau(), csp.Tick()},
		eventIDs: map[string]int{},
	}
	visited := map[string]int{}
	add := func(p csp.Process) (int, bool, error) {
		k := p.Key()
		if id, ok := visited[k]; ok {
			return id, false, nil
		}
		if len(l.Procs) >= maxStates {
			return 0, false, &LimitError{Explored: len(l.Procs), Limit: maxStates}
		}
		id := len(l.Procs)
		visited[k] = id
		l.Procs = append(l.Procs, p)
		l.Edges = append(l.Edges, nil)
		return id, true, nil
	}
	rootID, _, err := add(root)
	if err != nil {
		return nil, err
	}
	l.Init = rootID
	for id := 0; id < len(l.Procs); id++ {
		trs, err := sem.Transitions(l.Procs[id])
		if err != nil {
			return nil, fmt.Errorf("state %q: %w", l.Key(id), err)
		}
		edges := make([]Edge, 0, len(trs))
		for _, tr := range trs {
			to, _, err := add(tr.To)
			if err != nil {
				return nil, err
			}
			edges = append(edges, Edge{Ev: l.eventID(tr.Ev), To: to})
		}
		l.Edges[id] = edges
	}
	return l, nil
}
