// Equivalence tests for the parallel frontier expansion: at any worker
// count, Explore must produce a byte-identical LTS — same state
// numbering, same interned keys, same event table, same edge lists —
// because downstream verdicts, counterexamples and reports are rendered
// from those exact indices. The corpus is the case-study itself: every
// assertion term of every OTA system variant, with and without the
// lossy-channel composition.
package lts_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/csp"
	"repro/internal/lts"
	"repro/internal/ota"
	"repro/internal/refine"
)

// corpusSystem names one built System of the OTA corpus.
type corpusSystem struct {
	name string
	sys  *ota.System
}

func otaCorpus(t *testing.T) []corpusSystem {
	t.Helper()
	var out []corpusSystem
	add := func(name string, sys *ota.System, err error) {
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		out = append(out, corpusSystem{name: name, sys: sys})
	}
	sys, err := ota.Build()
	add("naive", sys, err)
	sys, err = ota.BuildFlawed()
	add("flawed", sys, err)
	sys, err = ota.BuildDeadlocked()
	add("deadlocked", sys, err)
	sys, err = ota.BuildLossy(ota.NaiveGateway, ota.DefaultLossBudget)
	add("lossy-naive", sys, err)
	sys, err = ota.BuildLossy(ota.HardenedGateway, ota.DefaultLossBudget)
	add("lossy-hardened", sys, err)
	return out
}

// requireSameLTS fails unless a and b are structurally byte-identical.
func requireSameLTS(t *testing.T, label string, a, b *lts.LTS) {
	t.Helper()
	if a.Init != b.Init {
		t.Fatalf("%s: init %d vs %d", label, a.Init, b.Init)
	}
	if a.NumStates() != b.NumStates() {
		t.Fatalf("%s: %d states vs %d", label, a.NumStates(), b.NumStates())
	}
	for i := 0; i < a.NumStates(); i++ {
		if a.Key(i) != b.Key(i) {
			t.Fatalf("%s: state %d key %q vs %q", label, i, a.Key(i), b.Key(i))
		}
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("%s: %d events vs %d", label, len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i].String() != b.Events[i].String() {
			t.Fatalf("%s: event %d = %s vs %s", label, i, a.Events[i], b.Events[i])
		}
	}
	for s := range a.Edges {
		ea, eb := a.Edges[s], b.Edges[s]
		if len(ea) != len(eb) {
			t.Fatalf("%s: state %d has %d edges vs %d", label, s, len(ea), len(eb))
		}
		for j := range ea {
			if ea[j] != eb[j] {
				t.Fatalf("%s: state %d edge %d = %+v vs %+v", label, s, j, ea[j], eb[j])
			}
		}
	}
}

func TestParallelExploreMatchesSequentialOTACorpus(t *testing.T) {
	for _, cs := range otaCorpus(t) {
		m := cs.sys.Model
		sem := csp.NewSemantics(m.Env, m.Ctx)
		// Collect the distinct terms the assertions actually explore.
		terms := map[string]csp.Process{}
		for _, a := range m.Asserts {
			if a.Spec != nil {
				terms[a.Spec.Key()] = a.Spec
			}
			terms[a.Impl.Key()] = a.Impl
		}
		for key, p := range terms {
			seq, err := lts.Explore(sem, p, lts.Options{Workers: 1})
			if err != nil {
				t.Fatalf("%s: sequential explore %s: %v", cs.name, key, err)
			}
			for _, workers := range []int{0, 2, 4, 8} {
				par, err := lts.Explore(sem, p, lts.Options{Workers: workers})
				if err != nil {
					t.Fatalf("%s: %d-worker explore %s: %v", cs.name, workers, key, err)
				}
				requireSameLTS(t, fmt.Sprintf("%s/%s workers=%d", cs.name, key, workers), seq, par)
			}
		}
	}
}

// TestInternedEngineMatchesStringKeyedReference is the representation
// safety net of the interned-term engine: across the whole OTA corpus,
// the production engine (at several worker counts) must produce exactly
// the LTS the frozen string-keyed reference engine produces — same
// state numbering, same keys, same event table, same edges. Any
// divergence means interned structural identity no longer coincides
// with canonical-key identity.
func TestInternedEngineMatchesStringKeyedReference(t *testing.T) {
	for _, cs := range otaCorpus(t) {
		m := cs.sys.Model
		sem := csp.NewSemantics(m.Env, m.Ctx)
		terms := map[string]csp.Process{}
		for _, a := range m.Asserts {
			if a.Spec != nil {
				terms[a.Spec.Key()] = a.Spec
			}
			terms[a.Impl.Key()] = a.Impl
		}
		for key, p := range terms {
			ref, err := lts.ExploreReference(sem, p, 0)
			if err != nil {
				t.Fatalf("%s: reference explore %s: %v", cs.name, key, err)
			}
			for _, workers := range []int{0, 1, 2, 4} {
				got, err := lts.Explore(sem, p, lts.Options{Workers: workers})
				if err != nil {
					t.Fatalf("%s: interned explore %s (workers=%d): %v", cs.name, key, workers, err)
				}
				requireSameLTS(t, fmt.Sprintf("%s/%s ref-vs-workers=%d", cs.name, key, workers), ref, got)
			}
		}
	}
}

// TestRefineVerdictsIdenticalAcrossWorkers pins that full refinement
// verdicts — outcome, counterexample traces, reasons — are identical at
// any worker count under the interned engine.
func TestRefineVerdictsIdenticalAcrossWorkers(t *testing.T) {
	for _, cs := range otaCorpus(t) {
		m := cs.sys.Model
		for ai, a := range m.Asserts {
			if a.Spec == nil {
				continue
			}
			base := refine.NewChecker(m.Env, m.Ctx)
			base.Workers = 1
			want, wantErr := base.RefinesTraces(a.Spec, a.Impl)
			for _, workers := range []int{0, 2, 4} {
				c := refine.NewChecker(m.Env, m.Ctx)
				c.Workers = workers
				got, gotErr := c.RefinesTraces(a.Spec, a.Impl)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s assert %d workers=%d: err %v vs %v", cs.name, ai, workers, gotErr, wantErr)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s assert %d workers=%d: verdict %+v vs %+v", cs.name, ai, workers, got, want)
				}
			}
		}
	}
}

// TestParallelExploreErrorMatchesSequential pins the error-determinism
// contract: the state bound trips at the same exploration size whether
// the level was expanded by one worker or many.
func TestParallelExploreErrorMatchesSequential(t *testing.T) {
	ctx := csp.NewContext()
	ctx.MustChannel("count", csp.IntRange{Lo: 0, Hi: 5000})
	env := csp.NewEnv()
	env.MustDefine("C", []string{"n"},
		csp.Guard(csp.Binary{Op: csp.OpLt, L: csp.V("n"), R: csp.LitInt(5000)},
			csp.Prefix("count", []csp.CommField{csp.Out(csp.V("n"))},
				csp.Call("C", csp.Binary{Op: csp.OpAdd, L: csp.V("n"), R: csp.LitInt(1)}))))
	sem := csp.NewSemantics(env, ctx)
	p := csp.Call("C", csp.LitInt(0))

	_, seqErr := lts.Explore(sem, p, lts.Options{MaxStates: 100, Workers: 1})
	var seqLim *lts.LimitError
	if !errors.As(seqErr, &seqLim) {
		t.Fatalf("sequential error = %v, want *LimitError", seqErr)
	}
	for _, workers := range []int{2, 4} {
		_, parErr := lts.Explore(sem, p, lts.Options{MaxStates: 100, Workers: workers})
		var parLim *lts.LimitError
		if !errors.As(parErr, &parLim) {
			t.Fatalf("workers=%d error = %v, want *LimitError", workers, parErr)
		}
		if *parLim != *seqLim {
			t.Errorf("workers=%d limit error %+v, sequential %+v", workers, *parLim, *seqLim)
		}
	}
}

// TestExploreMaxStatesBoundIsExact is the regression test for the
// off-by-one: a bound of N must never materialise state N+1, and the
// reported partial size must not exceed the limit.
func TestExploreMaxStatesBoundIsExact(t *testing.T) {
	ctx := csp.NewContext()
	ctx.MustChannel("count", csp.IntRange{Lo: 0, Hi: 1000})
	env := csp.NewEnv()
	env.MustDefine("C", []string{"n"},
		csp.Guard(csp.Binary{Op: csp.OpLt, L: csp.V("n"), R: csp.LitInt(1000)},
			csp.Prefix("count", []csp.CommField{csp.Out(csp.V("n"))},
				csp.Call("C", csp.Binary{Op: csp.OpAdd, L: csp.V("n"), R: csp.LitInt(1)}))))
	sem := csp.NewSemantics(env, ctx)
	p := csp.Call("C", csp.LitInt(0))

	for _, workers := range []int{1, 4} {
		_, err := lts.Explore(sem, p, lts.Options{MaxStates: 10, Workers: workers})
		var le *lts.LimitError
		if !errors.As(err, &le) {
			t.Fatalf("workers=%d: err = %v, want *LimitError", workers, err)
		}
		if le.Explored > le.Limit {
			t.Errorf("workers=%d: Explored=%d exceeds Limit=%d (off-by-one)",
				workers, le.Explored, le.Limit)
		}
	}

	// A process with exactly N states must fit in a bound of N.
	ctx2 := csp.NewContext()
	ctx2.MustChannel("a")
	ctx2.MustChannel("b")
	sem2 := csp.NewSemantics(csp.NewEnv(), ctx2)
	three := csp.DoEvent("a", csp.DoEvent("b", csp.Stop()))
	l, err := lts.Explore(sem2, three, lts.Options{MaxStates: 3})
	if err != nil {
		t.Fatalf("3-state process rejected by MaxStates=3: %v", err)
	}
	if l.NumStates() != 3 {
		t.Fatalf("states = %d, want 3", l.NumStates())
	}
	if _, err := lts.Explore(sem2, three, lts.Options{MaxStates: 2}); err == nil {
		t.Fatal("3-state process accepted by MaxStates=2")
	}
}
