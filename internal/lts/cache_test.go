package lts

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/csp"
)

func TestCacheExploreSharesOneExploration(t *testing.T) {
	sem := testSem(t)
	p := csp.DoEvent("a", csp.DoEvent("b", csp.Stop()))
	c := NewCache()

	l1, err := c.Explore(sem, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := c.Explore(sem, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Error("second Explore returned a different LTS pointer")
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
}

func TestCacheKeysOnEffectiveBound(t *testing.T) {
	sem := testSem(t)
	p := csp.DoEvent("a", csp.Stop())
	c := NewCache()
	if _, err := c.Explore(sem, p, Options{MaxStates: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Explore(sem, p, Options{MaxStates: 32}); err != nil {
		t.Fatal(err)
	}
	// Different bounds are different computations: both must be misses.
	if _, misses := c.Stats(); misses != 2 {
		t.Errorf("misses = %d, want 2 (distinct bounds)", misses)
	}
	// Zero and DefaultMaxStates are the same effective bound.
	if _, err := c.Explore(sem, p, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Explore(sem, p, Options{MaxStates: DefaultMaxStates}); err != nil {
		t.Fatal(err)
	}
	hits, misses := c.Stats()
	if misses != 3 || hits != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/3", hits, misses)
	}
}

func TestCacheErrorIsNotPoisoned(t *testing.T) {
	ctx := csp.NewContext()
	ctx.MustChannel("count", csp.IntRange{Lo: 0, Hi: 100})
	env := csp.NewEnv()
	env.MustDefine("C", []string{"n"},
		csp.Guard(csp.Binary{Op: csp.OpLt, L: csp.V("n"), R: csp.LitInt(100)},
			csp.Prefix("count", []csp.CommField{csp.Out(csp.V("n"))},
				csp.Call("C", csp.Binary{Op: csp.OpAdd, L: csp.V("n"), R: csp.LitInt(1)}))))
	sem := csp.NewSemantics(env, ctx)
	p := csp.Call("C", csp.LitInt(0))

	c := NewCache()
	if _, err := c.Explore(sem, p, Options{MaxStates: 5}); !errors.Is(err, ErrStateLimit) {
		t.Fatalf("err = %v, want ErrStateLimit", err)
	}
	if c.Len() != 0 {
		t.Errorf("failed exploration left %d cache entries", c.Len())
	}
	// The same key must be recomputed, not replay the stale failure.
	if _, err := c.Explore(sem, p, Options{MaxStates: 5}); !errors.Is(err, ErrStateLimit) {
		t.Fatalf("retry err = %v, want ErrStateLimit", err)
	}
	if _, misses := c.Stats(); misses != 2 {
		t.Errorf("misses = %d, want 2 (failures are forgotten)", misses)
	}
	// A larger bound succeeds and is cached.
	if _, err := c.Explore(sem, p, Options{MaxStates: 1 << 10}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
}

func TestCacheNormalizeMemoized(t *testing.T) {
	sem := testSem(t)
	p := csp.IntChoice(csp.DoEvent("a", csp.Stop()), csp.DoEvent("b", csp.Stop()))
	c := NewCache()
	l, err := c.Explore(sem, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n1 := c.Normalize(l)
	n2 := c.Normalize(l)
	if n1 != n2 {
		t.Error("Normalize recomputed for the same LTS")
	}
	if len(n1.Nodes[n1.Init].MinAcceptances) != 2 {
		t.Errorf("memoized normalisation is wrong: %v", n1.Nodes[n1.Init].MinAcceptances)
	}
}

func TestCacheTransitionsMemoized(t *testing.T) {
	sem := testSem(t)
	p := csp.ExtChoice(csp.DoEvent("a", csp.Stop()), csp.DoEvent("b", csp.Stop()))
	c := NewCache()
	ts1, err := c.Transitions(sem, p.Key(), p)
	if err != nil {
		t.Fatal(err)
	}
	ts2, err := c.Transitions(sem, p.Key(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts1) != 2 || len(ts2) != 2 {
		t.Fatalf("transition counts %d/%d, want 2/2", len(ts1), len(ts2))
	}
	if &ts1[0] != &ts2[0] {
		t.Error("Transitions recomputed for the same term")
	}
}

// TestCacheConcurrentExploreSingleFlight hammers one key from many
// goroutines: exactly one exploration must run, and every caller must
// see the same result. Run under -race this also validates the locking.
func TestCacheConcurrentExploreSingleFlight(t *testing.T) {
	sem := testSem(t)
	p := csp.DoEvent("a", csp.DoEvent("b", csp.DoEvent("c", csp.Stop())))
	c := NewCache()
	const goroutines = 16
	results := make([]*LTS, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			l, err := c.Explore(sem, p, Options{})
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			results[g] = l
		}(g)
	}
	wg.Wait()
	_, misses := c.Stats()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (single flight)", misses)
	}
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d saw a different LTS", g)
		}
	}
}
