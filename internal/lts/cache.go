package lts

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/csp"
	"repro/internal/obs"
)

// Cache is a concurrency-safe memo of explored LTSs and their
// normalisations. Campaign-scale checking re-explores the same
// specification and implementation terms once per assertion and once
// per scenario; a shared Cache collapses that to one exploration per
// distinct (semantics, process, bound) triple, and one subset
// construction per distinct LTS.
//
// Entries are keyed by the process's canonical Key() plus the identity
// of the definition environment and channel context (the same textual
// term means different things under different definitions), plus the
// effective state bound. Only successful explorations are cached: a
// budget or semantic error is returned to every concurrent waiter of
// that computation and then forgotten, so a later call with a larger
// wall-clock budget can retry.
//
// The zero value is not usable; construct with NewCache. All methods
// are safe for concurrent use.
type Cache struct {
	// Obs, when set, mirrors the cache statistics to obs counters
	// (lts.cache.hits / misses / coalesces / evictions /
	// evictions.size). It may be assigned once, before the cache is
	// shared across goroutines.
	Obs *obs.Observer

	// MaxEntries, when positive, bounds the number of cached
	// explorations; the least-recently-used entries are evicted past the
	// watermark. Zero (the default) is unbounded — the batch-CLI
	// behaviour, byte-identical to an unbounded cache.
	MaxEntries int
	// MaxStates, when positive, bounds the total number of LTS states
	// held by the cache (the sum of NumStates over cached entries) — the
	// watermark a long-lived server sets so the model store degrades via
	// LRU eviction instead of growing until the process OOMs. A single
	// entry larger than the watermark is itself evicted immediately:
	// staying under the bound wins over keeping an oversized result.
	// Zero (the default) is unbounded. Like Obs, both limits must be
	// assigned before the cache is shared across goroutines.
	MaxStates int

	mu        sync.Mutex
	entries   map[cacheKey]*cacheEntry
	norms     map[*LTS]*normEntry
	lru       *list.List // of cacheKey; front = most recently used
	curStates int64      // sum of states over LRU-tracked entries

	tmu   sync.RWMutex
	trans map[transKey][]csp.Transition

	hits          atomic.Int64
	misses        atomic.Int64
	coalesces     atomic.Int64
	evictions     atomic.Int64
	sizeEvictions atomic.Int64
}

// cacheKey identifies one exploration: the semantic identity (both the
// definition environment and the channel context pointers) plus the
// canonical process term and the effective state bound.
type cacheKey struct {
	env       *csp.Env
	ctx       *csp.Context
	proc      string
	maxStates int
}

type cacheEntry struct {
	once sync.Once
	// done is set at the end of the once.Do body: a caller that finds an
	// existing entry with done still false joined an in-flight
	// exploration (a single-flight coalesce) rather than hitting memory.
	done atomic.Bool
	lts  *LTS
	err  error
	// elem is the entry's LRU node, set under Cache.mu once the entry
	// holds a successful result; nil while in flight, after an error, or
	// on an unbounded cache (which keeps no LRU at all).
	elem *list.Element
	// states is the entry's NumStates, cached for O(1) size accounting.
	states int
}

type normEntry struct {
	once sync.Once
	norm *Normalized
}

// transKey identifies one term's transition list within a semantics.
type transKey struct {
	env  *csp.Env
	ctx  *csp.Context
	proc string
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		entries: make(map[cacheKey]*cacheEntry),
		norms:   make(map[*LTS]*normEntry),
		trans:   make(map[transKey][]csp.Transition),
	}
}

// Explore is a caching front end to Explore: concurrent callers asking
// for the same (semantics, process, bound) share one exploration, and
// later callers reuse its result. Options.MaxDuration and
// Options.Workers only influence how a miss is computed, never whether
// an entry hits.
func (c *Cache) Explore(sem *csp.Semantics, p csp.Process, opts Options) (*LTS, error) {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	key := cacheKey{env: sem.Env, ctx: sem.Ctx, proc: p.Key(), maxStates: maxStates}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	inFlight := ok && !e.done.Load()
	fresh := false
	e.once.Do(func() {
		fresh = true
		c.misses.Add(1)
		c.Obs.Counter("lts.cache.misses").Inc()
		e.lts, e.err = Explore(sem, p, opts)
		e.done.Store(true)
	})
	if !fresh {
		c.hits.Add(1)
		c.Obs.Counter("lts.cache.hits").Inc()
		if inFlight {
			// Joined a computation another goroutine was still running.
			c.coalesces.Add(1)
			c.Obs.Counter("lts.cache.coalesces").Inc()
		}
	}
	if e.err != nil {
		// Do not poison the key: drop the failed flight so a retry (for
		// example with a fresh wall-clock budget, or after a cancelled
		// request) can recompute.
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
			c.evictions.Add(1)
			c.Obs.Counter("lts.cache.evictions").Inc()
		}
		c.mu.Unlock()
		return nil, e.err
	}
	if c.bounded() {
		c.touch(key, e)
	}
	return e.lts, nil
}

// bounded reports whether a size watermark is configured. The unbounded
// default skips all LRU bookkeeping, so batch CLIs pay nothing.
func (c *Cache) bounded() bool { return c.MaxEntries > 0 || c.MaxStates > 0 }

// touch records a successful entry as most-recently used and enforces
// the size watermarks. The entry may have been evicted concurrently —
// then there is nothing to account; the caller still holds its result.
func (c *Cache) touch(key cacheKey, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries[key] != e {
		return
	}
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
		return
	}
	if c.lru == nil {
		c.lru = list.New()
	}
	e.states = e.lts.NumStates()
	e.elem = c.lru.PushFront(key)
	c.curStates += int64(e.states)
	for c.lru.Len() > 0 &&
		((c.MaxEntries > 0 && c.lru.Len() > c.MaxEntries) ||
			(c.MaxStates > 0 && c.curStates > int64(c.MaxStates))) {
		back := c.lru.Back()
		victimKey := back.Value.(cacheKey)
		victim := c.entries[victimKey]
		c.lru.Remove(back)
		delete(c.entries, victimKey)
		if victim != nil {
			c.curStates -= int64(victim.states)
			victim.elem = nil
			// The normalisation of an evicted LTS is unreachable through
			// the cache; drop it too, or the norms map would keep the
			// evicted state space alive and defeat the watermark.
			delete(c.norms, victim.lts)
		}
		c.sizeEvictions.Add(1)
		c.Obs.Counter("lts.cache.evictions.size").Inc()
	}
}

// Normalize memoizes the subset construction per explored LTS. The
// argument is expected to be an LTS returned by this cache's Explore
// (keyed by pointer identity), but any LTS works — an unknown one is
// normalised and remembered.
func (c *Cache) Normalize(l *LTS) *Normalized {
	c.mu.Lock()
	e, ok := c.norms[l]
	if !ok {
		e = &normEntry{}
		c.norms[l] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.norm = Normalize(l) })
	return e.norm
}

// Transitions memoizes one term's transition list across checks — the
// on-the-fly trace checker's analogue of a cached exploration: a
// campaign re-checking traces against the same model re-expands the
// same terms once per schedule otherwise. key must be p.Key() (callers
// always have it already, so it is taken as an argument rather than
// recomputed). The returned slice is shared and must not be mutated.
// Errors are not cached; the semantics is deterministic, so a failing
// term simply fails again on retry.
func (c *Cache) Transitions(sem *csp.Semantics, key string, p csp.Process) ([]csp.Transition, error) {
	tk := transKey{env: sem.Env, ctx: sem.Ctx, proc: key}
	c.tmu.RLock()
	ts, ok := c.trans[tk]
	c.tmu.RUnlock()
	if ok {
		return ts, nil
	}
	ts, err := sem.Transitions(p)
	if err != nil {
		return nil, err
	}
	c.tmu.Lock()
	c.trans[tk] = ts
	c.tmu.Unlock()
	return ts, nil
}

// Stats reports cache effectiveness: hits is the number of Explore
// calls answered from memory, misses the number of fresh explorations
// performed.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// CacheStats is the full effectiveness summary of a Cache.
type CacheStats struct {
	// Hits counts Explore calls answered without a fresh exploration
	// (coalesced joins included).
	Hits int64
	// Misses counts fresh explorations performed.
	Misses int64
	// Coalesces counts the subset of hits that joined an exploration
	// still in flight rather than reading a finished result.
	Coalesces int64
	// Evictions counts failed flights dropped so a retry can recompute.
	Evictions int64
	// SizeEvictions counts entries LRU-evicted past the MaxEntries /
	// MaxStates watermarks.
	SizeEvictions int64
	// Entries is the number of explorations currently cached.
	Entries int
	// States is the total number of LTS states held by size-tracked
	// entries (0 on an unbounded cache, which keeps no size accounting).
	States int64
}

// StatsAll reports the full cache statistics in one snapshot.
func (c *Cache) StatsAll() CacheStats {
	c.mu.Lock()
	entries := len(c.entries)
	states := c.curStates
	c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Coalesces:     c.coalesces.Load(),
		Evictions:     c.evictions.Load(),
		SizeEvictions: c.sizeEvictions.Load(),
		Entries:       entries,
		States:        states,
	}
}

// Len returns the number of cached explorations.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
