package lts

import (
	"sync"
	"sync/atomic"

	"repro/internal/csp"
)

// Cache is a concurrency-safe memo of explored LTSs and their
// normalisations. Campaign-scale checking re-explores the same
// specification and implementation terms once per assertion and once
// per scenario; a shared Cache collapses that to one exploration per
// distinct (semantics, process, bound) triple, and one subset
// construction per distinct LTS.
//
// Entries are keyed by the process's canonical Key() plus the identity
// of the definition environment and channel context (the same textual
// term means different things under different definitions), plus the
// effective state bound. Only successful explorations are cached: a
// budget or semantic error is returned to every concurrent waiter of
// that computation and then forgotten, so a later call with a larger
// wall-clock budget can retry.
//
// The zero value is not usable; construct with NewCache. All methods
// are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	norms   map[*LTS]*normEntry

	tmu   sync.RWMutex
	trans map[transKey][]csp.Transition

	hits   atomic.Int64
	misses atomic.Int64
}

// cacheKey identifies one exploration: the semantic identity (both the
// definition environment and the channel context pointers) plus the
// canonical process term and the effective state bound.
type cacheKey struct {
	env       *csp.Env
	ctx       *csp.Context
	proc      string
	maxStates int
}

type cacheEntry struct {
	once sync.Once
	lts  *LTS
	err  error
}

type normEntry struct {
	once sync.Once
	norm *Normalized
}

// transKey identifies one term's transition list within a semantics.
type transKey struct {
	env  *csp.Env
	ctx  *csp.Context
	proc string
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		entries: make(map[cacheKey]*cacheEntry),
		norms:   make(map[*LTS]*normEntry),
		trans:   make(map[transKey][]csp.Transition),
	}
}

// Explore is a caching front end to Explore: concurrent callers asking
// for the same (semantics, process, bound) share one exploration, and
// later callers reuse its result. Options.MaxDuration and
// Options.Workers only influence how a miss is computed, never whether
// an entry hits.
func (c *Cache) Explore(sem *csp.Semantics, p csp.Process, opts Options) (*LTS, error) {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	key := cacheKey{env: sem.Env, ctx: sem.Ctx, proc: p.Key(), maxStates: maxStates}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	fresh := false
	e.once.Do(func() {
		fresh = true
		c.misses.Add(1)
		e.lts, e.err = Explore(sem, p, opts)
	})
	if !fresh {
		c.hits.Add(1)
	}
	if e.err != nil {
		// Do not poison the key: drop the failed flight so a retry (for
		// example with a fresh wall-clock budget) can recompute.
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		return nil, e.err
	}
	return e.lts, nil
}

// Normalize memoizes the subset construction per explored LTS. The
// argument is expected to be an LTS returned by this cache's Explore
// (keyed by pointer identity), but any LTS works — an unknown one is
// normalised and remembered.
func (c *Cache) Normalize(l *LTS) *Normalized {
	c.mu.Lock()
	e, ok := c.norms[l]
	if !ok {
		e = &normEntry{}
		c.norms[l] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.norm = Normalize(l) })
	return e.norm
}

// Transitions memoizes one term's transition list across checks — the
// on-the-fly trace checker's analogue of a cached exploration: a
// campaign re-checking traces against the same model re-expands the
// same terms once per schedule otherwise. key must be p.Key() (callers
// always have it already, so it is taken as an argument rather than
// recomputed). The returned slice is shared and must not be mutated.
// Errors are not cached; the semantics is deterministic, so a failing
// term simply fails again on retry.
func (c *Cache) Transitions(sem *csp.Semantics, key string, p csp.Process) ([]csp.Transition, error) {
	tk := transKey{env: sem.Env, ctx: sem.Ctx, proc: key}
	c.tmu.RLock()
	ts, ok := c.trans[tk]
	c.tmu.RUnlock()
	if ok {
		return ts, nil
	}
	ts, err := sem.Transitions(p)
	if err != nil {
		return nil, err
	}
	c.tmu.Lock()
	c.trans[tk] = ts
	c.tmu.Unlock()
	return ts, nil
}

// Stats reports cache effectiveness: hits is the number of Explore
// calls answered from memory, misses the number of fresh explorations
// performed.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of cached explorations.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
