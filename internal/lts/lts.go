// Package lts builds explicit labelled transition systems from CSP
// process terms by exhaustive exploration of the operational semantics,
// and provides the normalisation (tau-closure + subset construction)
// needed by the refinement checker, mirroring what FDR does before a
// refinement run.
package lts

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/csp"
	"repro/internal/obs"
	"repro/internal/statestore"
)

// Event label identifiers. Tau and Tick have fixed IDs; visible events
// are interned in order of first appearance.
const (
	TauID  = 0
	TickID = 1
)

// ErrStateLimit is returned when exploration exceeds the configured
// maximum number of states.
var ErrStateLimit = errors.New("state limit exceeded during LTS exploration")

// LimitError is the concrete error returned when exploration exceeds
// its state bound. It matches ErrStateLimit under errors.Is and carries
// the size of the partial exploration, so campaign-scale callers can
// report how far a check got before its budget ran out.
type LimitError struct {
	// Explored is the number of states discovered before the bound hit.
	Explored int
	// Limit is the configured bound.
	Limit int
}

// Error describes the exhausted bound.
func (e *LimitError) Error() string {
	return fmt.Sprintf("%v (explored %d states, limit %d)", ErrStateLimit, e.Explored, e.Limit)
}

// Is makes errors.Is(err, ErrStateLimit) hold.
func (e *LimitError) Is(target error) bool { return target == ErrStateLimit }

// LTS is an explicit-state labelled transition system. States are
// identified by dense integer IDs in discovery (BFS) order; the terms
// themselves are held as interned csp.Process values, and canonical key
// strings are only rendered on demand (Key) for reports and
// counterexamples — the exploration hot path never builds them.
type LTS struct {
	// Init is the index of the initial state.
	Init int
	// Procs holds the process term of each state.
	Procs []csp.Process
	// Edges holds the outgoing transitions of each state.
	Edges [][]Edge
	// Events maps event IDs (>= 2) to events; index 0 and 1 are
	// placeholders for tau and tick.
	Events []csp.Event

	eventIDs map[string]int
}

// Key renders the canonical process term of a state. It is rendered on
// demand: states no longer carry their key strings.
func (l *LTS) Key(id int) string { return l.Procs[id].Key() }

// Edge is a transition to state To labelled with event ID Ev.
type Edge struct {
	Ev int
	To int
}

// Options configures exploration.
type Options struct {
	// MaxStates bounds the exploration; 0 means DefaultMaxStates. The
	// bound is exact: at most MaxStates states are ever materialised, and
	// a *LimitError reports Explored <= Limit.
	MaxStates int
	// MaxDuration bounds the wall-clock time of the exploration; zero
	// means unbounded. Exceeding it returns a *DeadlineError, so a
	// pathological state space cannot hang a campaign-scale caller.
	MaxDuration time.Duration
	// Workers is the number of goroutines evaluating transitions
	// concurrently. 0 means GOMAXPROCS; 1 forces sequential exploration.
	// Workers share the frontier through work-stealing chunked claiming,
	// but all state interning and event-ID assignment happen in a single
	// sequential merge, so the resulting LTS (state numbering, Edges,
	// Events) is byte-identical to the sequential result at any worker
	// count.
	Workers int
	// Ctx, when non-nil, cooperatively cancels the exploration: the BFS
	// checks the context before every state expansion, so a cancelled
	// request (a disconnected client, a fired per-request deadline)
	// aborts mid-level and returns a *CanceledError matching
	// context.Canceled / context.DeadlineExceeded under errors.Is. nil
	// means no cancellation, the batch-CLI default.
	Ctx context.Context
	// Obs receives exploration metrics, a span per Explore call and
	// progress heartbeats. nil (the default) disables instrumentation at
	// the cost of a nil check; measurements never influence the
	// exploration itself.
	Obs *obs.Observer
	// Store, when non-nil, backs the term-interning index — e.g. a
	// statestore.SpillStore that migrates to disk past a soft memory
	// watermark. nil means a plain in-memory map (the historical
	// behaviour, byte-identical). The store never influences state
	// numbering, so the LTS is identical whichever store backs it. The
	// caller owns the store's lifetime (Close).
	Store statestore.Store
	// MaxMemBytes is a hard watermark on the estimated resident size of
	// the exploration (interned-term index + LTS under construction,
	// including the event-intern table), checked once per BFS level.
	// Exceeding it returns a *MemoryError — a structured budget verdict
	// instead of an OOM kill. 0 means unbounded.
	MaxMemBytes int64
	// Checkpoint, when non-nil with a Dir, enables level-granular
	// crash-safe checkpointing: snapshots are written atomically every
	// EveryLevels completed levels, and an Explore finding a valid
	// snapshot for the same root and bound resumes from it instead of
	// starting over, with a byte-identical result.
	Checkpoint *CheckpointOptions
}

// ErrMemoryLimit is returned when exploration exceeds its hard memory
// watermark.
var ErrMemoryLimit = errors.New("memory watermark exceeded during LTS exploration")

// MemoryError is the concrete error returned when the estimated
// resident size of an exploration passes Options.MaxMemBytes. It
// matches ErrMemoryLimit under errors.Is and carries the partial
// exploration size, so servers can degrade to a structured
// budget-exhausted verdict instead of being OOM-killed.
type MemoryError struct {
	// Explored is the number of states discovered before the watermark.
	Explored int
	// EstimatedBytes is the resident-size estimate that tripped.
	EstimatedBytes int64
	// Limit is the configured watermark.
	Limit int64
}

// Error describes the exceeded watermark.
func (e *MemoryError) Error() string {
	return fmt.Sprintf("%v (explored %d states, ~%d bytes resident, limit %d)",
		ErrMemoryLimit, e.Explored, e.EstimatedBytes, e.Limit)
}

// Is makes errors.Is(err, ErrMemoryLimit) hold.
func (e *MemoryError) Is(target error) bool { return target == ErrMemoryLimit }

// ErrDeadline is returned when exploration exceeds its wall-clock
// budget.
var ErrDeadline = errors.New("wall-clock deadline exceeded during LTS exploration")

// DeadlineError is the concrete error returned when exploration runs
// past Options.MaxDuration. It matches ErrDeadline under errors.Is and
// carries the partial exploration size.
type DeadlineError struct {
	// Explored is the number of states discovered before the deadline.
	Explored int
	// Limit is the configured wall-clock budget.
	Limit time.Duration
}

// Error describes the exceeded deadline.
func (e *DeadlineError) Error() string {
	return fmt.Sprintf("%v (explored %d states, limit %v)", ErrDeadline, e.Explored, e.Limit)
}

// Is makes errors.Is(err, ErrDeadline) hold.
func (e *DeadlineError) Is(target error) bool { return target == ErrDeadline }

// CanceledError is the concrete error returned when exploration is
// aborted by Options.Ctx. It unwraps to the context's error, so
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) both work, and carries the partial
// exploration size like the other budget errors.
type CanceledError struct {
	// Explored is the number of states discovered before the abort.
	Explored int
	// Cause is the context's error (context.Canceled or
	// context.DeadlineExceeded).
	Cause error
}

// Error describes the aborted exploration.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("LTS exploration canceled: %v (explored %d states)", e.Cause, e.Explored)
}

// Unwrap exposes the context error to errors.Is.
func (e *CanceledError) Unwrap() error { return e.Cause }

// deadlineCheckInterval is how many states are merged between
// wall-clock checks in the merge loop; a power of two keeps the
// hot-loop test cheap. Workers probe the stop conditions per state
// instead: transition evaluation dominates the probe by orders of
// magnitude, and per-state probing is what bounds deadline overshoot
// and cancellation latency to a single slow state rather than a whole
// level.
const deadlineCheckInterval = 256

// DefaultMaxStates is the exploration bound used when Options.MaxStates
// is zero.
const DefaultMaxStates = 1 << 20

// parallelLevelThreshold is the smallest evaluation backlog worth
// fanning out to a worker pool; below it the goroutine hand-off costs
// more than the transition evaluations it saves. Workers start lazily
// the first time the backlog reaches the threshold and then stay on for
// the rest of the exploration.
const parallelLevelThreshold = 16

// ltsStateOverhead approximates the per-state resident cost of the LTS
// under construction: the Procs/Edges slice slots, the term pointer and
// the interner's state-ID slot.
const ltsStateOverhead = 64

// ltsEdgeBytes is the resident cost of one Edge.
const ltsEdgeBytes = 16

// eventEntryOverhead approximates the per-entry resident cost of the
// event-intern table beyond the rendered key bytes: the Events slice
// slot, the eventIDs map entry and the term-ID index entry.
const eventEntryOverhead = 104

// transitionSource is the evaluation seam of the exploration: anything
// that can produce the outgoing transitions of a process term.
// *csp.Semantics is the production implementation; tests substitute
// failing or panicking fakes to pin worker error handling.
type transitionSource interface {
	Transitions(p csp.Process) ([]csp.Transition, error)
}

// Explore builds the LTS reachable from root under the given semantics.
//
// Exploration is a pipelined BFS: discovered states are published to a
// pool of workers that claim contiguous chunks of the frontier with an
// atomic cursor (work-stealing — no level barrier, so stragglers never
// idle the pool), evaluate their transition lists (the operational
// semantics is pure, so concurrent evaluation is safe) and post them
// into per-state result slots. A single sequential merge consumes the
// slots in state order and performs all term interning and event-ID
// assignment, so the resulting LTS is byte-identical to a sequential
// exploration at any worker count — deterministic reports stay
// deterministic.
func Explore(sem *csp.Semantics, root csp.Process, opts Options) (*LTS, error) {
	return explore(sem, root, opts)
}

// chunk geometry of the shared state tables. Terms and result slots
// live in fixed-size chunks so workers can index them without ever
// racing a slice reallocation in the merge goroutine: a chunk, once its
// pointer is published, never moves. Chunks are small enough that a
// tiny exploration pays for one chunk, not a bound's worth — the chunk
// tables themselves grow dynamically until the first worker launches
// (see fixTables).
const (
	stateChunkShift = 7
	stateChunkSize  = 1 << stateChunkShift
	stateChunkMask  = stateChunkSize - 1
)

type procChunk [stateChunkSize]csp.Process

// resSlot receives one state's evaluated transitions. ready is the
// publication flag: the producer fills trs/err first and then sets
// ready (release); the merger reads them only after observing ready
// (acquire).
type resSlot struct {
	trs   []csp.Transition
	err   error
	ready atomic.Bool
}

type slotChunk [stateChunkSize]resSlot

// errStopped marks a result slot that was skipped because a stop
// condition (deadline or cancellation) had fired. It is written only
// when stopper.fired() returned true; stop conditions are sticky, so
// the merger re-derives the concrete typed error — with an accurate
// explored count — from stop.check when it consumes the slot.
var errStopped = errors.New("lts: stop condition fired before evaluation")

// exploration is the in-flight state of one Explore call: the interner
// and LTS under construction (touched only by the merge goroutine), the
// chunked publish tables shared with workers, and the coordination
// state for work-stealing claiming.
type exploration struct {
	src       transitionSource
	in        *csp.Interner
	visited   statestore.Store
	l         *LTS
	stateOf   []int32 // term ID -> state ID, -1 if the node is not a state
	eventOf   map[csp.TermID]int
	nStates   int
	maxStates int
	ltsBytes  int64
	stop      *stopper

	// Shared chunk tables: written by the merger before publishing,
	// indexed lock-free by workers.
	procTab []*procChunk
	slotTab []*slotChunk
	// seqSlot is the reusable result slot of the sequential fast path,
	// so a worker-free exploration allocates no slot chunks at all.
	seqSlot resSlot

	// published is the number of states whose term and result slot are
	// visible to workers; next is the claim cursor (states [0,next) are
	// claimed). aborted makes idle workers exit and is set on any error
	// path; done is set when the merge completes.
	published atomic.Int64
	next      atomic.Int64
	aborted   atomic.Bool
	done      atomic.Bool

	// Parking: waiters (workers out of work, or the merger awaiting a
	// claimed slot) sleep on cond; producers broadcast only when the
	// waiter counter is nonzero.
	mu      sync.Mutex
	cond    *sync.Cond
	waiters atomic.Int32

	// engineErr records a worker-goroutine failure outside transition
	// evaluation (an engine bug surfacing as a panic); guarded by mu. The
	// merger checks it while parked so a crashed worker can never strand
	// the merge on a slot that will not be filled.
	engineErr error

	workers        int
	workersStarted bool
	wg             sync.WaitGroup
}

func explore(src transitionSource, root csp.Process, opts Options) (lts *LTS, err error) {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Instrumentation: all handles are nil-safe no-ops when opts.Obs is
	// nil, and all updates happen per level, never per state, so the hot
	// interning loop is untouched.
	span := opts.Obs.StartSpan("lts.explore", obs.Int("workers", int64(workers)))
	statesC := opts.Obs.Counter("lts.explore.states")
	transC := opts.Obs.Counter("lts.explore.transitions")
	levelsC := opts.Obs.Counter("lts.explore.levels")
	parLevelsC := opts.Obs.Counter("lts.explore.levels.parallel")
	frontierG := opts.Obs.Gauge("lts.explore.frontier")
	prog := opts.Obs.Progress("lts.explore")
	defer func() {
		explored := int64(0)
		if lts != nil {
			explored = int64(lts.NumStates())
		}
		outcome := "ok"
		var ce *CanceledError
		switch {
		case errors.Is(err, ErrStateLimit):
			outcome = "state-limit"
		case errors.Is(err, ErrDeadline):
			outcome = "deadline"
		case errors.Is(err, ErrMemoryLimit):
			outcome = "memory-limit"
		case errors.As(err, &ce):
			outcome = "canceled"
		case err != nil:
			outcome = "error"
		}
		span.End(obs.Int("states", explored), obs.String("outcome", outcome))
	}()
	visited := opts.Store
	if visited == nil {
		visited = statestore.NewMem()
	}
	e := &exploration{
		src:       src,
		in:        csp.NewInterner(visited),
		visited:   visited,
		l:         &LTS{Events: []csp.Event{csp.Tau(), csp.Tick()}, eventIDs: map[string]int{}},
		eventOf:   map[csp.TermID]int{},
		maxStates: maxStates,
		stop:      &stopper{ctx: opts.Ctx, maxDur: opts.MaxDuration, start: time.Now()},
		workers:   workers,
	}
	e.cond = sync.NewCond(&e.mu)
	// Whatever path we leave by, no worker may outlive the call.
	defer e.shutdown()

	var ck *checkpointer
	merged := 0
	levels := 0
	resumed := false
	rootKey := root.Key()
	if opts.Checkpoint != nil && opts.Checkpoint.Dir != "" {
		ck = newCheckpointer(opts.Checkpoint, opts.Obs)
		if rs, ok := ck.load(rootKey, maxStates); ok {
			// Register every snapshot state into the live interner in state
			// order — the snapshot was validated (including duplicate-term
			// detection) against a throwaway interner, so these adds cannot
			// fail or collide.
			for _, p := range rs.procs {
				if _, _, err := e.add(p); err != nil {
					return nil, err
				}
			}
			e.l.Init = rs.init
			for i, edges := range rs.edges[:rs.merged] {
				e.l.Edges[i] = edges
				e.ltsBytes += int64(len(edges)) * ltsEdgeBytes
			}
			for _, ev := range rs.events {
				e.eventID(ev)
			}
			merged = rs.merged
			levels = rs.levels
			// States below the merge position already have final edges;
			// they are never awaited, so the claim cursor must start past
			// them or the claim invariant (all slots below the merge
			// position are claimed) breaks and the merge parks forever.
			e.next.Store(int64(merged))
			// Wall clock spent before the crash counts against the
			// deadline budget: a crash must never extend a deadline.
			e.stop.start = e.stop.start.Add(-rs.elapsed)
			statesC.Add(int64(e.nStates))
			resumed = true
		}
	}
	if !resumed {
		rootID, _, err := e.add(root)
		if err != nil {
			return nil, err
		}
		e.l.Init = rootID
		statesC.Inc() // the root
	}
	e.publish()

	// The sequential merge: consume result slots in state order. Level
	// boundaries fall exactly where the old level-synchronized BFS had
	// them (merged == levelEnd means every state of the current level has
	// been merged), so per-level metrics, the memory watermark and
	// checkpoint cadence are unchanged.
	levelEnd := merged
	levelStartStates := e.nStates
	levelEdges := 0
	first := true
	expanded := 0
	for merged < e.nStates {
		if merged == levelEnd {
			if !first {
				statesC.Add(int64(e.nStates - levelStartStates))
				transC.Add(int64(levelEdges))
				prog.Tick(int64(e.nStates), obs.Int("frontier", int64(e.nStates-merged)))
				levels++
				if ck != nil && levels%ck.every == 0 {
					ck.write(e.l, merged, levels, time.Since(e.stop.start), rootKey, maxStates)
				}
			}
			first = false
			levelsC.Inc()
			frontierG.Max(int64(e.nStates - merged))
			if opts.MaxMemBytes > 0 {
				if est := visited.Bytes() + e.ltsBytes; est > opts.MaxMemBytes {
					return nil, &MemoryError{Explored: e.nStates, EstimatedBytes: est, Limit: opts.MaxMemBytes}
				}
			}
			if workers > 1 && e.nStates-merged >= parallelLevelThreshold {
				parLevelsC.Inc()
			}
			levelEnd = e.nStates
			levelStartStates = e.nStates
			levelEdges = 0
		}
		slot, err := e.awaitSlot(merged)
		if err != nil {
			return nil, err
		}
		if slot.err != nil {
			if slot.err == errStopped {
				// The worker skipped evaluation because a stop condition had
				// fired; conditions are sticky, so check reproduces the typed
				// error with the accurate explored count.
				return nil, e.stop.check(e.nStates)
			}
			return nil, slot.err
		}
		trs := slot.trs
		slot.trs = nil
		edges := make([]Edge, 0, len(trs))
		for _, tr := range trs {
			to, _, err := e.add(tr.To)
			if err != nil {
				return nil, err
			}
			edges = append(edges, Edge{Ev: e.eventID(tr.Ev), To: to})
		}
		e.l.Edges[merged] = edges
		e.ltsBytes += int64(len(edges)) * ltsEdgeBytes
		levelEdges += len(edges)
		merged++
		expanded++
		if expanded%deadlineCheckInterval == 0 {
			if err := e.stop.check(e.nStates); err != nil {
				return nil, err
			}
		}
		e.publish()
	}
	// Close out the final level's metrics.
	if !first {
		statesC.Add(int64(e.nStates - levelStartStates))
		transC.Add(int64(levelEdges))
		levels++
		if ck != nil && levels%ck.every == 0 {
			ck.write(e.l, merged, levels, time.Since(e.stop.start), rootKey, maxStates)
		}
	}
	if ck != nil {
		// Final snapshot with a fully-merged frontier: a crash after the
		// exploration finished resumes instantly instead of re-exploring.
		ck.write(e.l, merged, levels, time.Since(e.stop.start), rootKey, maxStates)
	}
	prog.Flush(int64(e.nStates))
	return e.l, nil
}

// add interns a state term, enforcing the exact bound: a state beyond
// MaxStates is never materialised, so LimitError.Explored <= Limit.
// Called only from the merge goroutine (the single interning
// authority).
func (e *exploration) add(p csp.Process) (int, bool, error) {
	tid := e.in.Process(p)
	if int(tid) < len(e.stateOf) {
		if s := e.stateOf[tid]; s >= 0 {
			return int(s), false, nil
		}
	}
	for len(e.stateOf) < e.in.Len() {
		e.stateOf = append(e.stateOf, -1)
	}
	if e.nStates >= e.maxStates {
		return 0, false, &LimitError{Explored: e.nStates, Limit: e.maxStates}
	}
	id := e.nStates
	e.nStates++
	e.stateOf[tid] = int32(id)
	ci, cj := id>>stateChunkShift, id&stateChunkMask
	// Pre-worker the tables grow on demand; once workers run they are
	// frozen at full-bound size (fixTables), so this loop is a no-op and
	// the slice headers never change under a concurrent reader.
	for len(e.procTab) <= ci {
		e.procTab = append(e.procTab, nil)
		e.slotTab = append(e.slotTab, nil)
	}
	if e.procTab[ci] == nil {
		e.procTab[ci] = new(procChunk)
		if e.workersStarted {
			e.slotTab[ci] = new(slotChunk)
		}
	}
	e.procTab[ci][cj] = p
	e.l.Procs = append(e.l.Procs, p)
	e.l.Edges = append(e.l.Edges, nil)
	e.ltsBytes += ltsStateOverhead
	return id, true, nil
}

// eventID interns an event label: one integer map hit on the hot path,
// with the canonical string rendered only at first sight (for the
// public EventID lookup API). The rendered table is part of the
// resident-size estimate.
func (e *exploration) eventID(ev csp.Event) int {
	switch {
	case ev.IsTau():
		return TauID
	case ev.IsTick():
		return TickID
	}
	tid := e.in.Event(ev)
	if id, ok := e.eventOf[tid]; ok {
		return id
	}
	id := len(e.l.Events)
	e.l.Events = append(e.l.Events, ev)
	k := ev.String()
	e.l.eventIDs[k] = id
	e.eventOf[tid] = id
	e.ltsBytes += int64(len(k)) + eventEntryOverhead
	return id
}

// proc reads a published state's term (worker-safe: the chunk pointer
// was written before the state was published).
func (e *exploration) proc(id int) csp.Process {
	return e.procTab[id>>stateChunkShift][id&stateChunkMask]
}

func (e *exploration) slot(id int) *resSlot {
	return &e.slotTab[id>>stateChunkShift][id&stateChunkMask]
}

// publish makes every state added so far claimable by workers, starting
// the pool lazily once the backlog is worth it.
func (e *exploration) publish() {
	n := int64(e.nStates)
	if n == e.published.Load() {
		return
	}
	e.published.Store(n)
	if !e.workersStarted && e.workers > 1 && n-e.next.Load() >= parallelLevelThreshold {
		e.workersStarted = true
		e.fixTables()
		for w := 0; w < e.workers-1; w++ {
			e.wg.Add(1)
			go func() {
				defer e.wg.Done()
				defer func() {
					if r := recover(); r != nil {
						// A panic here is an engine bug, not a semantics
						// failure (those are recovered per evaluation);
						// surface it instead of deadlocking the merge.
						e.mu.Lock()
						if e.engineErr == nil {
							e.engineErr = fmt.Errorf("lts: internal: worker panic: %v", r)
						}
						e.mu.Unlock()
						e.aborted.Store(true)
						e.wake()
					}
				}()
				e.runWorker()
			}()
		}
	}
	e.wake()
}

// fixTables freezes the chunk tables at their full-bound size before
// the first worker launches: workers index them concurrently with the
// merger adding states, so from here on the slice headers must never
// change — only nil chunk-pointer cells get filled in, and each chunk
// pointer is written before the states it holds are published. Result
// slots are materialised for the existing chunks here too; the
// sequential path never allocates any.
func (e *exploration) fixTables() {
	maxChunks := (e.maxStates + stateChunkSize - 1) / stateChunkSize
	pt := make([]*procChunk, maxChunks)
	copy(pt, e.procTab)
	st := make([]*slotChunk, maxChunks)
	for i, pc := range pt {
		if pc != nil {
			st[i] = new(slotChunk)
		}
	}
	e.procTab, e.slotTab = pt, st
}

// wake wakes parked goroutines, but only pays for the lock when someone
// is actually parked. The waiter increments waiters before re-checking
// its predicate, so a state change made before this load can never be
// missed.
func (e *exploration) wake() {
	if e.waiters.Load() > 0 {
		e.mu.Lock()
		e.cond.Broadcast()
		e.mu.Unlock()
	}
}

// runWorker claims contiguous chunks of unevaluated states and fills
// their result slots until the exploration completes or aborts.
func (e *exploration) runWorker() {
	for {
		lo, hi := e.claim()
		if lo < 0 {
			return
		}
		e.evalRange(lo, hi)
		e.wake()
	}
}

// claim grabs the next chunk of published, unclaimed states. The chunk
// size adapts to the backlog (1/(4·workers) of it, at most 16) so a
// deep frontier amortises cursor contention while a shallow one still
// spreads across the pool. Returns lo=-1 when the exploration is over.
func (e *exploration) claim() (int, int) {
	for {
		n := e.next.Load()
		p := e.published.Load()
		if n < p {
			c := (p - n + int64(4*e.workers) - 1) / int64(4*e.workers)
			if c < 1 {
				c = 1
			} else if c > 16 {
				c = 16
			}
			hi := n + c
			if hi > p {
				hi = p
			}
			if e.next.CompareAndSwap(n, hi) {
				return int(n), int(hi)
			}
			continue
		}
		if e.done.Load() || e.aborted.Load() {
			return -1, -1
		}
		e.mu.Lock()
		e.waiters.Add(1)
		for e.next.Load() >= e.published.Load() && !e.done.Load() && !e.aborted.Load() {
			e.cond.Wait()
		}
		e.waiters.Add(-1)
		e.mu.Unlock()
	}
}

// evalRange fills the result slots of a claimed range. A claimed slot
// is always filled — with evaluated transitions, an evaluation error,
// or errStopped when a stop condition has fired — never abandoned, so
// the merge can rely on every claimed slot becoming ready and the
// lowest-index failure stays the deterministic one a sequential run
// would report. The range never exceeds the claim chunk cap, which
// bounds post-abort work.
func (e *exploration) evalRange(lo, hi int) {
	stopEnabled := e.stop.enabled()
	for i := lo; i < hi; i++ {
		s := e.slot(i)
		if stopEnabled && e.stop.fired() {
			s.err = errStopped
			s.ready.Store(true)
			e.aborted.Store(true)
			continue
		}
		trs, err := safeTransitions(e.src, e.proc(i))
		if err != nil {
			s.err = err
			e.aborted.Store(true)
		} else {
			s.trs = trs
		}
		s.ready.Store(true)
	}
}

// safeTransitions evaluates one state's transitions, converting a panic
// in the operational semantics into an ordinary error — a long-lived
// server must survive a malformed term that a batch CLI would crash on.
// The key render on the error path is the only place exploration still
// builds a canonical string.
func safeTransitions(src transitionSource, p csp.Process) (trs []csp.Transition, err error) {
	defer func() {
		if r := recover(); r != nil {
			trs = nil
			err = fmt.Errorf("state %q: panic during transition evaluation: %v", p.Key(), r)
		}
	}()
	trs, err = src.Transitions(p)
	if err != nil {
		return nil, fmt.Errorf("state %q: %w", p.Key(), err)
	}
	return trs, nil
}

// awaitSlot returns state id's result slot once it is ready, evaluating
// the state itself when no worker has claimed it (the merger steals
// work rather than idling — this is also the entire evaluation path of
// a sequential exploration). All slots below id are merged and
// therefore claimed, so the claim cursor is exactly at id when the slot
// is unclaimed.
func (e *exploration) awaitSlot(id int) (*resSlot, error) {
	if !e.workersStarted {
		// Sequential fast path: no worker exists, so no slot was or will
		// be filled for id — evaluate in place into the reusable slot,
		// keeping the claim cursor in step so a worker pool launched
		// later starts claiming right after id. The stop probe and the
		// evaluation are exactly the worker path's, so the result — and
		// any error — is byte-identical to a parallel run's.
		e.next.Store(int64(id + 1))
		s := &e.seqSlot
		s.trs, s.err = nil, nil
		if e.stop.enabled() && e.stop.fired() {
			s.err = errStopped
		} else {
			s.trs, s.err = safeTransitions(e.src, e.proc(id))
		}
		return s, nil
	}
	s := e.slot(id)
	for !s.ready.Load() {
		if e.next.CompareAndSwap(int64(id), int64(id+1)) {
			e.evalRange(id, id+1)
			break
		}
		e.mu.Lock()
		e.waiters.Add(1)
		for !s.ready.Load() && e.engineErr == nil {
			e.cond.Wait()
		}
		e.waiters.Add(-1)
		err := e.engineErr
		e.mu.Unlock()
		if err != nil && !s.ready.Load() {
			return nil, err
		}
	}
	return s, nil
}

// shutdown terminates the worker pool and waits it out, so no goroutine
// outlives the Explore call that spawned it.
func (e *exploration) shutdown() {
	e.done.Store(true)
	e.aborted.Store(true)
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

// stopper bundles the two cooperative stop conditions of an exploration
// — the wall-clock budget and the cancellation context — so every loop
// probes them identically. check is cheap relative to a transition
// evaluation (one time.Since plus one atomic context poll), so workers
// probe it per evaluated state: a deadline or cancel can overshoot by
// at most one slow state, never a whole BFS level.
type stopper struct {
	ctx    context.Context
	maxDur time.Duration
	start  time.Time
}

// enabled reports whether any stop condition is configured.
func (s *stopper) enabled() bool { return s.maxDur > 0 || s.ctx != nil }

// fired reports whether a stop condition has fired. Both conditions are
// sticky: once fired, every later probe (and check) observes them too.
func (s *stopper) fired() bool {
	if s.ctx != nil && s.ctx.Err() != nil {
		return true
	}
	return s.maxDur > 0 && time.Since(s.start) > s.maxDur
}

// check returns the typed stop error if a condition has fired, with
// explored recorded as the partial exploration size.
func (s *stopper) check(explored int) error {
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			return &CanceledError{Explored: explored, Cause: err}
		}
	}
	if s.maxDur > 0 && time.Since(s.start) > s.maxDur {
		return &DeadlineError{Explored: explored, Limit: s.maxDur}
	}
	return nil
}

func (l *LTS) eventID(e csp.Event) int {
	switch {
	case e.IsTau():
		return TauID
	case e.IsTick():
		return TickID
	}
	k := e.String()
	if id, ok := l.eventIDs[k]; ok {
		return id
	}
	id := len(l.Events)
	l.Events = append(l.Events, e)
	l.eventIDs[k] = id
	return id
}

// EventByID returns the event with the given label ID.
func (l *LTS) EventByID(id int) csp.Event { return l.Events[id] }

// EventID looks up the label ID for a visible event; ok is false if the
// event never occurs in the LTS.
func (l *LTS) EventID(e csp.Event) (int, bool) {
	switch {
	case e.IsTau():
		return TauID, true
	case e.IsTick():
		return TickID, true
	}
	id, ok := l.eventIDs[e.String()]
	return id, ok
}

// NumStates returns the number of explored states.
func (l *LTS) NumStates() int { return len(l.Procs) }

// NumTransitions returns the total number of edges.
func (l *LTS) NumTransitions() int {
	n := 0
	for _, es := range l.Edges {
		n += len(es)
	}
	return n
}

// IsStable reports whether the state has no outgoing tau transitions.
func (l *LTS) IsStable(id int) bool {
	for _, e := range l.Edges[id] {
		if e.Ev == TauID {
			return false
		}
	}
	return true
}

// Initials returns the sorted set of non-tau label IDs offered by the
// state (tick included).
func (l *LTS) Initials(id int) []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range l.Edges[id] {
		if e.Ev != TauID && !seen[e.Ev] {
			seen[e.Ev] = true
			out = append(out, e.Ev)
		}
	}
	sort.Ints(out)
	return out
}

// TauClosure returns the sorted set of states reachable from the given
// states via tau transitions only (including the states themselves).
func (l *LTS) TauClosure(states []int) []int {
	seen := make(map[int]bool, len(states))
	stack := append([]int(nil), states...)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[s] {
			continue
		}
		seen[s] = true
		for _, e := range l.Edges[s] {
			if e.Ev == TauID && !seen[e.To] {
				stack = append(stack, e.To)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// HasTauCycle reports whether a cycle consisting solely of tau
// transitions is reachable, i.e. the process can diverge. The witness is
// the index of a state on the cycle, or -1.
func (l *LTS) HasTauCycle() (bool, int) {
	// Iterative DFS with colour marking over tau edges only.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make([]byte, len(l.Procs))
	type frame struct {
		state int
		next  int
	}
	for start := range l.Procs {
		if colour[start] != white {
			continue
		}
		stack := []frame{{state: start}}
		colour[start] = grey
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for f.next < len(l.Edges[f.state]) {
				e := l.Edges[f.state][f.next]
				f.next++
				if e.Ev != TauID {
					continue
				}
				switch colour[e.To] {
				case grey:
					return true, e.To
				case white:
					colour[e.To] = grey
					stack = append(stack, frame{state: e.To})
					advanced = true
				}
				if advanced {
					break
				}
			}
			if !advanced {
				colour[f.state] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return false, -1
}
