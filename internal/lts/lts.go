// Package lts builds explicit labelled transition systems from CSP
// process terms by exhaustive exploration of the operational semantics,
// and provides the normalisation (tau-closure + subset construction)
// needed by the refinement checker, mirroring what FDR does before a
// refinement run.
package lts

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/csp"
	"repro/internal/obs"
	"repro/internal/statestore"
)

// Event label identifiers. Tau and Tick have fixed IDs; visible events
// are interned in order of first appearance.
const (
	TauID  = 0
	TickID = 1
)

// ErrStateLimit is returned when exploration exceeds the configured
// maximum number of states.
var ErrStateLimit = errors.New("state limit exceeded during LTS exploration")

// LimitError is the concrete error returned when exploration exceeds
// its state bound. It matches ErrStateLimit under errors.Is and carries
// the size of the partial exploration, so campaign-scale callers can
// report how far a check got before its budget ran out.
type LimitError struct {
	// Explored is the number of states discovered before the bound hit.
	Explored int
	// Limit is the configured bound.
	Limit int
}

// Error describes the exhausted bound.
func (e *LimitError) Error() string {
	return fmt.Sprintf("%v (explored %d states, limit %d)", ErrStateLimit, e.Explored, e.Limit)
}

// Is makes errors.Is(err, ErrStateLimit) hold.
func (e *LimitError) Is(target error) bool { return target == ErrStateLimit }

// LTS is an explicit-state labelled transition system.
type LTS struct {
	// Init is the index of the initial state.
	Init int
	// Keys holds the canonical process term of each state.
	Keys []string
	// Procs holds the process term of each state (same indexing as Keys).
	Procs []csp.Process
	// Edges holds the outgoing transitions of each state.
	Edges [][]Edge
	// Events maps event IDs (>= 2) to events; index 0 and 1 are
	// placeholders for tau and tick.
	Events []csp.Event

	eventIDs map[string]int
}

// Edge is a transition to state To labelled with event ID Ev.
type Edge struct {
	Ev int
	To int
}

// Options configures exploration.
type Options struct {
	// MaxStates bounds the exploration; 0 means DefaultMaxStates. The
	// bound is exact: at most MaxStates states are ever materialised, and
	// a *LimitError reports Explored <= Limit.
	MaxStates int
	// MaxDuration bounds the wall-clock time of the exploration; zero
	// means unbounded. Exceeding it returns a *DeadlineError, so a
	// pathological state space cannot hang a campaign-scale caller.
	MaxDuration time.Duration
	// Workers is the number of goroutines evaluating transitions
	// concurrently. 0 means GOMAXPROCS; 1 forces sequential exploration.
	// Exploration is level-synchronized, so the resulting LTS (state
	// numbering, Keys, Edges, Events) is byte-identical to the
	// sequential result at any worker count.
	Workers int
	// Ctx, when non-nil, cooperatively cancels the exploration: the BFS
	// checks the context before every state expansion, so a cancelled
	// request (a disconnected client, a fired per-request deadline)
	// aborts mid-level and returns a *CanceledError matching
	// context.Canceled / context.DeadlineExceeded under errors.Is. nil
	// means no cancellation, the batch-CLI default.
	Ctx context.Context
	// Obs receives exploration metrics, a span per Explore call and
	// progress heartbeats. nil (the default) disables instrumentation at
	// the cost of a nil check; measurements never influence the
	// exploration itself.
	Obs *obs.Observer
	// Store, when non-nil, backs the visited-state index — e.g. a
	// statestore.SpillStore that migrates to disk past a soft memory
	// watermark. nil means a plain in-memory map (the historical
	// behaviour, byte-identical). The store never influences state
	// numbering, so the LTS is identical whichever store backs it. The
	// caller owns the store's lifetime (Close).
	Store statestore.Store
	// MaxMemBytes is a hard watermark on the estimated resident size of
	// the exploration (visited index + LTS under construction), checked
	// once per BFS level. Exceeding it returns a *MemoryError — a
	// structured budget verdict instead of an OOM kill. 0 means
	// unbounded.
	MaxMemBytes int64
	// Checkpoint, when non-nil with a Dir, enables level-granular
	// crash-safe checkpointing: snapshots are written atomically every
	// EveryLevels completed levels, and an Explore finding a valid
	// snapshot for the same root and bound resumes from it instead of
	// starting over, with a byte-identical result.
	Checkpoint *CheckpointOptions
}

// ErrMemoryLimit is returned when exploration exceeds its hard memory
// watermark.
var ErrMemoryLimit = errors.New("memory watermark exceeded during LTS exploration")

// MemoryError is the concrete error returned when the estimated
// resident size of an exploration passes Options.MaxMemBytes. It
// matches ErrMemoryLimit under errors.Is and carries the partial
// exploration size, so servers can degrade to a structured
// budget-exhausted verdict instead of being OOM-killed.
type MemoryError struct {
	// Explored is the number of states discovered before the watermark.
	Explored int
	// EstimatedBytes is the resident-size estimate that tripped.
	EstimatedBytes int64
	// Limit is the configured watermark.
	Limit int64
}

// Error describes the exceeded watermark.
func (e *MemoryError) Error() string {
	return fmt.Sprintf("%v (explored %d states, ~%d bytes resident, limit %d)",
		ErrMemoryLimit, e.Explored, e.EstimatedBytes, e.Limit)
}

// Is makes errors.Is(err, ErrMemoryLimit) hold.
func (e *MemoryError) Is(target error) bool { return target == ErrMemoryLimit }

// ErrDeadline is returned when exploration exceeds its wall-clock
// budget.
var ErrDeadline = errors.New("wall-clock deadline exceeded during LTS exploration")

// DeadlineError is the concrete error returned when exploration runs
// past Options.MaxDuration. It matches ErrDeadline under errors.Is and
// carries the partial exploration size.
type DeadlineError struct {
	// Explored is the number of states discovered before the deadline.
	Explored int
	// Limit is the configured wall-clock budget.
	Limit time.Duration
}

// Error describes the exceeded deadline.
func (e *DeadlineError) Error() string {
	return fmt.Sprintf("%v (explored %d states, limit %v)", ErrDeadline, e.Explored, e.Limit)
}

// Is makes errors.Is(err, ErrDeadline) hold.
func (e *DeadlineError) Is(target error) bool { return target == ErrDeadline }

// CanceledError is the concrete error returned when exploration is
// aborted by Options.Ctx. It unwraps to the context's error, so
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) both work, and carries the partial
// exploration size like the other budget errors.
type CanceledError struct {
	// Explored is the number of states discovered before the abort.
	Explored int
	// Cause is the context's error (context.Canceled or
	// context.DeadlineExceeded).
	Cause error
}

// Error describes the aborted exploration.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("LTS exploration canceled: %v (explored %d states)", e.Cause, e.Explored)
}

// Unwrap exposes the context error to errors.Is.
func (e *CanceledError) Unwrap() error { return e.Cause }

// deadlineCheckInterval is how many states are expanded between
// wall-clock checks in the merge loop; a power of two keeps the
// hot-loop test cheap. Inside expandLevel the stop conditions are
// probed per state instead: transition evaluation dominates the probe
// by orders of magnitude, and per-state probing is what bounds deadline
// overshoot and cancellation latency to a single slow state rather than
// a whole level.
const deadlineCheckInterval = 256

// DefaultMaxStates is the exploration bound used when Options.MaxStates
// is zero.
const DefaultMaxStates = 1 << 20

// parallelLevelThreshold is the smallest BFS level worth fanning out to
// a worker pool; below it the goroutine hand-off costs more than the
// transition evaluations it saves.
const parallelLevelThreshold = 16

// Explore builds the LTS reachable from root under the given semantics.
//
// Exploration is a level-synchronized BFS: the transition lists of a
// whole frontier level are evaluated concurrently by Options.Workers
// goroutines (the operational semantics is pure, so concurrent
// evaluation is safe), then merged sequentially in level order. The
// merge performs all state interning and event-ID assignment, so the
// resulting LTS is byte-identical to a sequential exploration at any
// worker count — deterministic reports stay deterministic.
func Explore(sem *csp.Semantics, root csp.Process, opts Options) (lts *LTS, err error) {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Instrumentation: all handles are nil-safe no-ops when opts.Obs is
	// nil, and all updates happen per level, never per state, so the hot
	// interning loop is untouched.
	span := opts.Obs.StartSpan("lts.explore", obs.Int("workers", int64(workers)))
	statesC := opts.Obs.Counter("lts.explore.states")
	transC := opts.Obs.Counter("lts.explore.transitions")
	levelsC := opts.Obs.Counter("lts.explore.levels")
	parLevelsC := opts.Obs.Counter("lts.explore.levels.parallel")
	frontierG := opts.Obs.Gauge("lts.explore.frontier")
	prog := opts.Obs.Progress("lts.explore")
	defer func() {
		explored := int64(0)
		if lts != nil {
			explored = int64(lts.NumStates())
		}
		outcome := "ok"
		var ce *CanceledError
		switch {
		case errors.Is(err, ErrStateLimit):
			outcome = "state-limit"
		case errors.Is(err, ErrDeadline):
			outcome = "deadline"
		case errors.Is(err, ErrMemoryLimit):
			outcome = "memory-limit"
		case errors.As(err, &ce):
			outcome = "canceled"
		case err != nil:
			outcome = "error"
		}
		span.End(obs.Int("states", explored), obs.String("outcome", outcome))
	}()
	visited := opts.Store
	if visited == nil {
		visited = statestore.NewMem()
	}
	// ltsBytes is a running estimate of the resident size of the LTS
	// under construction (keys, term pointers, edge slices), combined
	// with visited.Bytes() for the hard-watermark check.
	var ltsBytes int64
	l := &LTS{
		Events:   []csp.Event{csp.Tau(), csp.Tick()},
		eventIDs: map[string]int{},
	}
	// add interns a state, enforcing the exact bound: a state beyond
	// MaxStates is never materialised, so LimitError.Explored <= Limit.
	add := func(p csp.Process) (int, bool, error) {
		k := p.Key()
		if id, ok := visited.Lookup(k); ok {
			return id, false, nil
		}
		if len(l.Keys) >= maxStates {
			return 0, false, &LimitError{Explored: len(l.Keys), Limit: maxStates}
		}
		id := len(l.Keys)
		visited.Insert(k, id)
		l.Keys = append(l.Keys, k)
		l.Procs = append(l.Procs, p)
		l.Edges = append(l.Edges, nil)
		ltsBytes += int64(len(k)) + ltsStateOverhead
		return id, true, nil
	}
	stop := &stopper{ctx: opts.Ctx, maxDur: opts.MaxDuration, start: time.Now()}
	var ck *checkpointer
	var level []int
	levels := 0
	resumed := false
	if opts.Checkpoint != nil && opts.Checkpoint.Dir != "" {
		ck = newCheckpointer(opts.Checkpoint, opts.Obs)
		if rl, frontier, lv, elapsed, ok := ck.load(root.Key(), maxStates, visited); ok {
			l, level, levels = rl, frontier, lv
			for _, k := range l.Keys {
				ltsBytes += int64(len(k)) + ltsStateOverhead
			}
			ltsBytes += int64(l.NumTransitions()) * ltsEdgeBytes
			// Wall clock spent before the crash counts against the
			// deadline budget: a crash must never extend a deadline.
			stop.start = stop.start.Add(-elapsed)
			statesC.Add(int64(len(l.Keys)))
			resumed = true
		}
	}
	if !resumed {
		rootID, _, err := add(root)
		if err != nil {
			return nil, err
		}
		l.Init = rootID
		level = []int{rootID}
		statesC.Inc() // the root
	}
	expanded := 0
	for len(level) > 0 {
		levelsC.Inc()
		frontierG.Max(int64(len(level)))
		if opts.MaxMemBytes > 0 {
			if est := visited.Bytes() + ltsBytes; est > opts.MaxMemBytes {
				return nil, &MemoryError{Explored: len(l.Keys), EstimatedBytes: est, Limit: opts.MaxMemBytes}
			}
		}
		if workers > 1 && len(level) >= parallelLevelThreshold {
			parLevelsC.Inc()
		}
		trs, err := expandLevel(sem, l, level, workers, stop)
		if err != nil {
			return nil, err
		}
		var next []int
		levelEdges := 0
		for i, id := range level {
			expanded++
			if expanded%deadlineCheckInterval == 0 {
				if err := stop.check(len(l.Keys)); err != nil {
					return nil, err
				}
			}
			edges := make([]Edge, 0, len(trs[i]))
			for _, tr := range trs[i] {
				to, fresh, err := add(tr.To)
				if err != nil {
					return nil, err
				}
				if fresh {
					next = append(next, to)
				}
				edges = append(edges, Edge{Ev: l.eventID(tr.Ev), To: to})
			}
			l.Edges[id] = edges
			levelEdges += len(edges)
		}
		statesC.Add(int64(len(next)))
		transC.Add(int64(levelEdges))
		ltsBytes += int64(levelEdges) * ltsEdgeBytes
		prog.Tick(int64(len(l.Keys)), obs.Int("frontier", int64(len(next))))
		level = next
		levels++
		if ck != nil && len(level) > 0 && levels%ck.every == 0 {
			ck.write(l, level, levels, time.Since(stop.start), root.Key(), maxStates)
		}
	}
	if ck != nil {
		// Final snapshot with an empty frontier: a crash after the
		// exploration finished resumes instantly instead of re-exploring.
		ck.write(l, nil, levels, time.Since(stop.start), root.Key(), maxStates)
	}
	prog.Flush(int64(len(l.Keys)))
	return l, nil
}

// ltsStateOverhead approximates the per-state resident cost of the LTS
// under construction beyond the key bytes: the Keys/Procs/Edges slice
// slots plus the term pointer.
const ltsStateOverhead = 64

// ltsEdgeBytes is the resident cost of one Edge.
const ltsEdgeBytes = 16

// stopper bundles the two cooperative stop conditions of an exploration
// — the wall-clock budget and the cancellation context — so every loop
// probes them identically. check is cheap relative to a transition
// evaluation (one time.Since plus one atomic context poll), so the
// exploration loops probe it per expanded state: a deadline or cancel
// can overshoot by at most one slow state, never a whole BFS level.
type stopper struct {
	ctx    context.Context
	maxDur time.Duration
	start  time.Time
}

// enabled reports whether any stop condition is configured.
func (s *stopper) enabled() bool { return s.maxDur > 0 || s.ctx != nil }

// check returns the typed stop error if a condition has fired, with
// explored recorded as the partial exploration size.
func (s *stopper) check(explored int) error {
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			return &CanceledError{Explored: explored, Cause: err}
		}
	}
	if s.maxDur > 0 && time.Since(s.start) > s.maxDur {
		return &DeadlineError{Explored: explored, Limit: s.maxDur}
	}
	return nil
}

// expandLevel evaluates the transition lists of one BFS level,
// concurrently when the level and worker count warrant it. Results are
// slotted by level index, and on error the lowest-index failure is
// returned — exactly the state a sequential exploration would have
// failed on — so parallel runs report identical errors. Stop conditions
// (deadline, cancellation) are probed before every evaluation on both
// the sequential and the parallel path, and a panicking transition
// evaluation in a worker goroutine is recovered into an ordinary error
// instead of killing the process — a long-lived server must survive a
// malformed term that a batch CLI would crash on.
func expandLevel(sem *csp.Semantics, l *LTS, level []int, workers int, stop *stopper) ([][]csp.Transition, error) {
	out := make([][]csp.Transition, len(level))
	if workers > len(level) {
		workers = len(level)
	}
	if workers <= 1 || len(level) < parallelLevelThreshold {
		checked := stop.enabled()
		for i, id := range level {
			if checked {
				if err := stop.check(len(l.Keys)); err != nil {
					return nil, err
				}
			}
			trs, err := sem.Transitions(l.Procs[id])
			if err != nil {
				return nil, fmt.Errorf("state %q: %w", l.Keys[id], err)
			}
			out[i] = trs
		}
		return out, nil
	}
	errs := make([]error, len(level))
	var next atomic.Int64
	var abort atomic.Bool
	var wg sync.WaitGroup
	checked := stop.enabled()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			claimed := -1
			defer func() {
				if r := recover(); r != nil {
					if claimed >= 0 {
						errs[claimed] = fmt.Errorf("state %q: panic during transition evaluation: %v",
							l.Keys[level[claimed]], r)
					}
					abort.Store(true)
				}
			}()
			for {
				if abort.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(level) {
					return
				}
				claimed = i
				if checked {
					if err := stop.check(len(l.Keys)); err != nil {
						abort.Store(true)
						return
					}
				}
				id := level[i]
				trs, err := sem.Transitions(l.Procs[id])
				if err != nil {
					errs[i] = fmt.Errorf("state %q: %w", l.Keys[id], err)
					abort.Store(true)
					return
				}
				out[i] = trs
			}
		}()
	}
	wg.Wait()
	// Indices are claimed monotonically, so any slot skipped after an
	// abort lies beyond every evaluated one: the first recorded error is
	// the error of the lowest failing state.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := stop.check(len(l.Keys)); err != nil {
		return nil, err
	}
	return out, nil
}

func (l *LTS) eventID(e csp.Event) int {
	switch {
	case e.IsTau():
		return TauID
	case e.IsTick():
		return TickID
	}
	k := e.String()
	if id, ok := l.eventIDs[k]; ok {
		return id
	}
	id := len(l.Events)
	l.Events = append(l.Events, e)
	l.eventIDs[k] = id
	return id
}

// EventByID returns the event with the given label ID.
func (l *LTS) EventByID(id int) csp.Event { return l.Events[id] }

// EventID looks up the label ID for a visible event; ok is false if the
// event never occurs in the LTS.
func (l *LTS) EventID(e csp.Event) (int, bool) {
	switch {
	case e.IsTau():
		return TauID, true
	case e.IsTick():
		return TickID, true
	}
	id, ok := l.eventIDs[e.String()]
	return id, ok
}

// NumStates returns the number of explored states.
func (l *LTS) NumStates() int { return len(l.Keys) }

// NumTransitions returns the total number of edges.
func (l *LTS) NumTransitions() int {
	n := 0
	for _, es := range l.Edges {
		n += len(es)
	}
	return n
}

// IsStable reports whether the state has no outgoing tau transitions.
func (l *LTS) IsStable(id int) bool {
	for _, e := range l.Edges[id] {
		if e.Ev == TauID {
			return false
		}
	}
	return true
}

// Initials returns the sorted set of non-tau label IDs offered by the
// state (tick included).
func (l *LTS) Initials(id int) []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range l.Edges[id] {
		if e.Ev != TauID && !seen[e.Ev] {
			seen[e.Ev] = true
			out = append(out, e.Ev)
		}
	}
	sort.Ints(out)
	return out
}

// TauClosure returns the sorted set of states reachable from the given
// states via tau transitions only (including the states themselves).
func (l *LTS) TauClosure(states []int) []int {
	seen := make(map[int]bool, len(states))
	stack := append([]int(nil), states...)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[s] {
			continue
		}
		seen[s] = true
		for _, e := range l.Edges[s] {
			if e.Ev == TauID && !seen[e.To] {
				stack = append(stack, e.To)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// HasTauCycle reports whether a cycle consisting solely of tau
// transitions is reachable, i.e. the process can diverge. The witness is
// the index of a state on the cycle, or -1.
func (l *LTS) HasTauCycle() (bool, int) {
	// Iterative DFS with colour marking over tau edges only.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make([]byte, len(l.Keys))
	type frame struct {
		state int
		next  int
	}
	for start := range l.Keys {
		if colour[start] != white {
			continue
		}
		stack := []frame{{state: start}}
		colour[start] = grey
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for f.next < len(l.Edges[f.state]) {
				e := l.Edges[f.state][f.next]
				f.next++
				if e.Ev != TauID {
					continue
				}
				switch colour[e.To] {
				case grey:
					return true, e.To
				case white:
					colour[e.To] = grey
					stack = append(stack, frame{state: e.To})
					advanced = true
				}
				if advanced {
					break
				}
			}
			if !advanced {
				colour[f.state] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return false, -1
}
