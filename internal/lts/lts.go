// Package lts builds explicit labelled transition systems from CSP
// process terms by exhaustive exploration of the operational semantics,
// and provides the normalisation (tau-closure + subset construction)
// needed by the refinement checker, mirroring what FDR does before a
// refinement run.
package lts

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/csp"
)

// Event label identifiers. Tau and Tick have fixed IDs; visible events
// are interned in order of first appearance.
const (
	TauID  = 0
	TickID = 1
)

// ErrStateLimit is returned when exploration exceeds the configured
// maximum number of states.
var ErrStateLimit = errors.New("state limit exceeded during LTS exploration")

// LimitError is the concrete error returned when exploration exceeds
// its state bound. It matches ErrStateLimit under errors.Is and carries
// the size of the partial exploration, so campaign-scale callers can
// report how far a check got before its budget ran out.
type LimitError struct {
	// Explored is the number of states discovered before the bound hit.
	Explored int
	// Limit is the configured bound.
	Limit int
}

// Error describes the exhausted bound.
func (e *LimitError) Error() string {
	return fmt.Sprintf("%v (explored %d states, limit %d)", ErrStateLimit, e.Explored, e.Limit)
}

// Is makes errors.Is(err, ErrStateLimit) hold.
func (e *LimitError) Is(target error) bool { return target == ErrStateLimit }

// LTS is an explicit-state labelled transition system.
type LTS struct {
	// Init is the index of the initial state.
	Init int
	// Keys holds the canonical process term of each state.
	Keys []string
	// Procs holds the process term of each state (same indexing as Keys).
	Procs []csp.Process
	// Edges holds the outgoing transitions of each state.
	Edges [][]Edge
	// Events maps event IDs (>= 2) to events; index 0 and 1 are
	// placeholders for tau and tick.
	Events []csp.Event

	eventIDs map[string]int
}

// Edge is a transition to state To labelled with event ID Ev.
type Edge struct {
	Ev int
	To int
}

// Options configures exploration.
type Options struct {
	// MaxStates bounds the exploration; 0 means DefaultMaxStates.
	MaxStates int
	// MaxDuration bounds the wall-clock time of the exploration; zero
	// means unbounded. Exceeding it returns a *DeadlineError, so a
	// pathological state space cannot hang a campaign-scale caller.
	MaxDuration time.Duration
}

// ErrDeadline is returned when exploration exceeds its wall-clock
// budget.
var ErrDeadline = errors.New("wall-clock deadline exceeded during LTS exploration")

// DeadlineError is the concrete error returned when exploration runs
// past Options.MaxDuration. It matches ErrDeadline under errors.Is and
// carries the partial exploration size.
type DeadlineError struct {
	// Explored is the number of states discovered before the deadline.
	Explored int
	// Limit is the configured wall-clock budget.
	Limit time.Duration
}

// Error describes the exceeded deadline.
func (e *DeadlineError) Error() string {
	return fmt.Sprintf("%v (explored %d states, limit %v)", ErrDeadline, e.Explored, e.Limit)
}

// Is makes errors.Is(err, ErrDeadline) hold.
func (e *DeadlineError) Is(target error) bool { return target == ErrDeadline }

// deadlineCheckInterval is how many states are expanded between
// wall-clock checks; a power of two keeps the hot-loop test cheap.
const deadlineCheckInterval = 256

// DefaultMaxStates is the exploration bound used when Options.MaxStates
// is zero.
const DefaultMaxStates = 1 << 20

// Explore builds the LTS reachable from root under the given semantics.
func Explore(sem *csp.Semantics, root csp.Process, opts Options) (*LTS, error) {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	l := &LTS{
		Events:   []csp.Event{csp.Tau(), csp.Tick()},
		eventIDs: map[string]int{},
	}
	index := map[string]int{}
	add := func(p csp.Process) (int, bool) {
		k := p.Key()
		if id, ok := index[k]; ok {
			return id, false
		}
		id := len(l.Keys)
		index[k] = id
		l.Keys = append(l.Keys, k)
		l.Procs = append(l.Procs, p)
		l.Edges = append(l.Edges, nil)
		return id, true
	}
	rootID, _ := add(root)
	l.Init = rootID
	queue := []int{rootID}
	start := time.Now()
	expanded := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		expanded++
		if opts.MaxDuration > 0 && expanded%deadlineCheckInterval == 0 &&
			time.Since(start) > opts.MaxDuration {
			return nil, &DeadlineError{Explored: len(l.Keys), Limit: opts.MaxDuration}
		}
		trs, err := sem.Transitions(l.Procs[id])
		if err != nil {
			return nil, fmt.Errorf("state %q: %w", l.Keys[id], err)
		}
		edges := make([]Edge, 0, len(trs))
		for _, tr := range trs {
			to, fresh := add(tr.To)
			if fresh {
				if len(l.Keys) > maxStates {
					return nil, &LimitError{Explored: len(l.Keys), Limit: maxStates}
				}
				queue = append(queue, to)
			}
			edges = append(edges, Edge{Ev: l.eventID(tr.Ev), To: to})
		}
		l.Edges[id] = edges
	}
	return l, nil
}

func (l *LTS) eventID(e csp.Event) int {
	switch {
	case e.IsTau():
		return TauID
	case e.IsTick():
		return TickID
	}
	k := e.String()
	if id, ok := l.eventIDs[k]; ok {
		return id
	}
	id := len(l.Events)
	l.Events = append(l.Events, e)
	l.eventIDs[k] = id
	return id
}

// EventByID returns the event with the given label ID.
func (l *LTS) EventByID(id int) csp.Event { return l.Events[id] }

// EventID looks up the label ID for a visible event; ok is false if the
// event never occurs in the LTS.
func (l *LTS) EventID(e csp.Event) (int, bool) {
	switch {
	case e.IsTau():
		return TauID, true
	case e.IsTick():
		return TickID, true
	}
	id, ok := l.eventIDs[e.String()]
	return id, ok
}

// NumStates returns the number of explored states.
func (l *LTS) NumStates() int { return len(l.Keys) }

// NumTransitions returns the total number of edges.
func (l *LTS) NumTransitions() int {
	n := 0
	for _, es := range l.Edges {
		n += len(es)
	}
	return n
}

// IsStable reports whether the state has no outgoing tau transitions.
func (l *LTS) IsStable(id int) bool {
	for _, e := range l.Edges[id] {
		if e.Ev == TauID {
			return false
		}
	}
	return true
}

// Initials returns the sorted set of non-tau label IDs offered by the
// state (tick included).
func (l *LTS) Initials(id int) []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range l.Edges[id] {
		if e.Ev != TauID && !seen[e.Ev] {
			seen[e.Ev] = true
			out = append(out, e.Ev)
		}
	}
	sort.Ints(out)
	return out
}

// TauClosure returns the sorted set of states reachable from the given
// states via tau transitions only (including the states themselves).
func (l *LTS) TauClosure(states []int) []int {
	seen := make(map[int]bool, len(states))
	stack := append([]int(nil), states...)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[s] {
			continue
		}
		seen[s] = true
		for _, e := range l.Edges[s] {
			if e.Ev == TauID && !seen[e.To] {
				stack = append(stack, e.To)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// HasTauCycle reports whether a cycle consisting solely of tau
// transitions is reachable, i.e. the process can diverge. The witness is
// the index of a state on the cycle, or -1.
func (l *LTS) HasTauCycle() (bool, int) {
	// Iterative DFS with colour marking over tau edges only.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make([]byte, len(l.Keys))
	type frame struct {
		state int
		next  int
	}
	for start := range l.Keys {
		if colour[start] != white {
			continue
		}
		stack := []frame{{state: start}}
		colour[start] = grey
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for f.next < len(l.Edges[f.state]) {
				e := l.Edges[f.state][f.next]
				f.next++
				if e.Ev != TauID {
					continue
				}
				switch colour[e.To] {
				case grey:
					return true, e.To
				case white:
					colour[e.To] = grey
					stack = append(stack, frame{state: e.To})
					advanced = true
				}
				if advanced {
					break
				}
			}
			if !advanced {
				colour[f.state] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return false, -1
}
