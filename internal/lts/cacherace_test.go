package lts

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestCacheEvictionRacesCancellation storms a tightly bounded cache
// with concurrent Explore calls — some completing, some cancelled
// mid-flight, some joining in-flight computations that then fail —
// while LRU eviction churns underneath. Run under -race this pins the
// synchronisation of touch/evict against the single-flight error path;
// functionally it asserts no entry is ever poisoned: a cancelled flight
// must never be served to a later caller, and every post-storm lookup
// must return the reference result.
func TestCacheEvictionRacesCancellation(t *testing.T) {
	const nProcs = 6
	sem, procs := boundSem(t, nProcs, 64)

	refs := make([]*LTS, nProcs)
	for i, p := range procs {
		l, err := Explore(sem, p, Options{})
		if err != nil {
			t.Fatalf("reference %d: %v", i, err)
		}
		refs[i] = l
	}

	c := NewCache()
	c.MaxEntries = 2 // far fewer slots than processes: constant eviction

	const goroutines = 8
	const iters = 150
	errCh := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			for i := 0; i < iters; i++ {
				pi := rng.Intn(nProcs)
				ctx := context.Context(context.Background())
				var cancel context.CancelFunc
				switch rng.Intn(3) {
				case 0:
					// Already dead: fails on the first poll.
					ctx, cancel = context.WithCancel(context.Background())
					cancel()
				case 1:
					// Dies mid-flight (or just after; both are legal).
					ctx, cancel = context.WithCancel(context.Background())
					timer := time.AfterFunc(time.Duration(rng.Intn(300))*time.Microsecond, cancel)
					defer timer.Stop()
				}
				l, err := c.Explore(sem, procs[pi], Options{Ctx: ctx})
				if cancel != nil {
					cancel()
				}
				if err != nil {
					if !errors.Is(err, context.Canceled) {
						errCh <- err
						return
					}
					continue
				}
				// A served result — fresh, coalesced or cached — must match
				// the reference exactly; a poisoned (partially explored)
				// entry shows up here as a size mismatch.
				if l.NumStates() != refs[pi].NumStates() || l.NumTransitions() != refs[pi].NumTransitions() {
					errCh <- errors.New("cache served a partial exploration")
					return
				}
			}
			errCh <- nil
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if err := <-errCh; err != nil {
			t.Fatalf("storm goroutine: %v", err)
		}
	}

	// Quiescent probe: every process must still be computable through the
	// cache and byte-identical to the reference — no key left poisoned by
	// a cancelled or evicted flight.
	for i, p := range procs {
		l, err := c.Explore(sem, p, Options{})
		if err != nil {
			t.Fatalf("post-storm explore %d: %v", i, err)
		}
		if l.NumStates() != refs[i].NumStates() || l.NumTransitions() != refs[i].NumTransitions() {
			t.Fatalf("post-storm explore %d: %d states / %d transitions, want %d / %d",
				i, l.NumStates(), l.NumTransitions(), refs[i].NumStates(), refs[i].NumTransitions())
		}
		for s := 0; s < l.NumStates(); s++ {
			if l.Key(s) != refs[i].Key(s) {
				t.Fatalf("post-storm explore %d: state %d key %q, want %q", i, s, l.Key(s), refs[i].Key(s))
			}
		}
	}
	st := c.StatsAll()
	if st.Entries > c.MaxEntries+1 {
		t.Errorf("cache holds %d entries at quiescence, watermark %d", st.Entries, c.MaxEntries)
	}
}
