package lts

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/csp"
)

func testSem(t *testing.T) *csp.Semantics {
	t.Helper()
	ctx := csp.NewContext()
	for _, name := range []string{"a", "b", "c"} {
		ctx.MustChannel(name)
	}
	msg := csp.EnumType("Msg", "m1", "m2")
	ctx.MustChannel("ch", msg)
	return csp.NewSemantics(csp.NewEnv(), ctx)
}

func TestExploreSimplePrefixChain(t *testing.T) {
	sem := testSem(t)
	p := csp.DoEvent("a", csp.DoEvent("b", csp.Stop()))
	l, err := Explore(sem, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumStates() != 3 {
		t.Errorf("states = %d, want 3", l.NumStates())
	}
	if l.NumTransitions() != 2 {
		t.Errorf("transitions = %d, want 2", l.NumTransitions())
	}
}

func TestExploreRecursionIsFinite(t *testing.T) {
	ctx := csp.NewContext()
	ctx.MustChannel("a")
	env := csp.NewEnv()
	env.MustDefine("P", nil, csp.DoEvent("a", csp.Call("P")))
	sem := csp.NewSemantics(env, ctx)
	l, err := Explore(sem, csp.Call("P"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// P and a->P's continuation P collapse: Call("P") and the state after
	// a step are the same key, so 1 state and a self-loop.
	if l.NumStates() != 1 {
		t.Errorf("states = %d, want 1 (self-loop)", l.NumStates())
	}
	if l.Edges[l.Init][0].To != l.Init {
		t.Error("recursive process did not loop back to itself")
	}
}

func TestExploreStateLimit(t *testing.T) {
	ctx := csp.NewContext()
	ctx.MustChannel("count", csp.IntRange{Lo: 0, Hi: 1000})
	env := csp.NewEnv()
	env.MustDefine("C", []string{"n"},
		csp.Guard(csp.Binary{Op: csp.OpLt, L: csp.V("n"), R: csp.LitInt(1000)},
			csp.Prefix("count", []csp.CommField{csp.Out(csp.V("n"))},
				csp.Call("C", csp.Binary{Op: csp.OpAdd, L: csp.V("n"), R: csp.LitInt(1)}))))
	sem := csp.NewSemantics(env, ctx)
	_, err := Explore(sem, csp.Call("C", csp.LitInt(0)), Options{MaxStates: 10})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("err = %v, want ErrStateLimit", err)
	}
}

func TestTauClosure(t *testing.T) {
	sem := testSem(t)
	// (a->STOP |~| b->STOP): init has two tau successors.
	p := csp.IntChoice(csp.DoEvent("a", csp.Stop()), csp.DoEvent("b", csp.Stop()))
	l, err := Explore(sem, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	closure := l.TauClosure([]int{l.Init})
	if len(closure) != 3 {
		t.Errorf("tau closure size = %d, want 3", len(closure))
	}
}

func TestHasTauCycle(t *testing.T) {
	ctx := csp.NewContext()
	ctx.MustChannel("a")
	env := csp.NewEnv()
	// DIV = a -> DIV hidden on a: a pure tau loop.
	env.MustDefine("DIV", nil, csp.DoEvent("a", csp.Call("DIV")))
	sem := csp.NewSemantics(env, ctx)

	hidden := csp.Hide(csp.Call("DIV"), csp.Events(csp.Ev("a")))
	l, err := Explore(sem, hidden, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cyc, _ := l.HasTauCycle(); !cyc {
		t.Error("hidden recursion should diverge")
	}

	plain, err := Explore(sem, csp.Call("DIV"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cyc, _ := plain.HasTauCycle(); cyc {
		t.Error("visible recursion reported as divergent")
	}
}

func TestIsStableAndInitials(t *testing.T) {
	sem := testSem(t)
	p := csp.ExtChoice(csp.DoEvent("a", csp.Stop()), csp.DoEvent("b", csp.Stop()))
	l, err := Explore(sem, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !l.IsStable(l.Init) {
		t.Error("external choice of prefixes should be stable")
	}
	if got := len(l.Initials(l.Init)); got != 2 {
		t.Errorf("initials = %d, want 2", got)
	}
}

func TestNormalizeDeterminises(t *testing.T) {
	sem := testSem(t)
	// a->b->STOP [] a->c->STOP: nondeterministic on a; the normalised
	// form has a single a-successor node offering both b and c.
	p := csp.ExtChoice(
		csp.DoEvent("a", csp.DoEvent("b", csp.Stop())),
		csp.DoEvent("a", csp.DoEvent("c", csp.Stop())),
	)
	l, err := Explore(sem, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := Normalize(l)
	aID, ok := l.EventID(csp.Ev("a"))
	if !ok {
		t.Fatal("event a not interned")
	}
	after, ok := n.Accepts(n.Init, aID)
	if !ok {
		t.Fatal("normalised process refuses a")
	}
	bID, _ := l.EventID(csp.Ev("b"))
	cID, _ := l.EventID(csp.Ev("c"))
	if _, ok := n.Accepts(after, bID); !ok {
		t.Error("after a, normalised node refuses b")
	}
	if _, ok := n.Accepts(after, cID); !ok {
		t.Error("after a, normalised node refuses c")
	}
}

func TestNormalizeMinAcceptances(t *testing.T) {
	sem := testSem(t)
	// a->STOP |~| b->STOP: the normalised root node must record the two
	// singleton acceptances {a} and {b} (no stable state offers both).
	p := csp.IntChoice(csp.DoEvent("a", csp.Stop()), csp.DoEvent("b", csp.Stop()))
	l, err := Explore(sem, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := Normalize(l)
	accs := n.Nodes[n.Init].MinAcceptances
	if len(accs) != 2 {
		t.Fatalf("min acceptances = %v, want two singletons", accs)
	}
	for _, a := range accs {
		if len(a) != 1 {
			t.Errorf("acceptance %v is not a singleton", a)
		}
	}
}

func TestRefusalPossible(t *testing.T) {
	sem := testSem(t)
	// Deterministic a->STOP [] b->STOP: the only acceptance is {a,b}, so
	// an implementation offering only {a} refuses b, which the spec does
	// not allow.
	p := csp.ExtChoice(csp.DoEvent("a", csp.Stop()), csp.DoEvent("b", csp.Stop()))
	l, err := Explore(sem, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := Normalize(l)
	aID, _ := l.EventID(csp.Ev("a"))
	bID, _ := l.EventID(csp.Ev("b"))
	if n.RefusalPossible(n.Init, []int{aID}) {
		t.Error("deterministic choice cannot refuse b when offered only a")
	}
	if !n.RefusalPossible(n.Init, []int{aID, bID}) {
		t.Error("offering the full acceptance must satisfy the node")
	}
}

func TestToDOT(t *testing.T) {
	sem := testSem(t)
	p := csp.ExtChoice(
		csp.DoEvent("a", csp.DoEvent("b", csp.Skip())),
		csp.DoEvent("c", csp.Stop()),
	)
	l, err := Explore(sem, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dot := l.ToDOT(DOTOptions{Name: "demo", HighlightTrace: []string{"a", "b"}})
	for _, want := range []string{
		"digraph \"demo\"",
		"init -> s0",
		"label=\"a\"",
		"label=\"b\"",
		"color=red",
		"shape=doublecircle", // the terminated state
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	small := l.ToDOT(DOTOptions{MaxStates: 2})
	if !strings.Contains(small, "truncated") {
		t.Error("truncation note missing")
	}
}
