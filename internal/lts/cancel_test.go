package lts

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/csp"
	"repro/internal/leakcheck"
)

// countSem builds a semantics with one counting process C(n) stepping
// count!n for n in [0, hi) — a chain of hi+1 states, handy for bounded
// and cancelled explorations.
func countSem(t *testing.T, hi int) (*csp.Semantics, csp.Process) {
	t.Helper()
	ctx := csp.NewContext()
	ctx.MustChannel("count", csp.IntRange{Lo: 0, Hi: hi})
	env := csp.NewEnv()
	env.MustDefine("C", []string{"n"},
		csp.Guard(csp.Binary{Op: csp.OpLt, L: csp.V("n"), R: csp.LitInt(hi)},
			csp.Prefix("count", []csp.CommField{csp.Out(csp.V("n"))},
				csp.Call("C", csp.Binary{Op: csp.OpAdd, L: csp.V("n"), R: csp.LitInt(1)}))))
	return csp.NewSemantics(env, ctx), csp.Call("C", csp.LitInt(0))
}

func TestExplorePreCancelledContext(t *testing.T) {
	leakcheck.Check(t)
	sem, p := countSem(t, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Explore(sem, p, Options{Ctx: ctx})
	if err == nil {
		t.Fatal("explore with a cancelled context succeeded")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *CanceledError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err %v does not match context.Canceled", err)
	}
	// A pre-cancelled context must be observed at the first state, not
	// after a check interval's worth of work.
	if ce.Explored >= deadlineCheckInterval {
		t.Errorf("explored %d states before noticing cancellation, want < %d",
			ce.Explored, deadlineCheckInterval)
	}
}

// TestExploreCancelMidExplore cancels at randomized points while the
// exploration runs and verifies the abort is cooperative: a
// *CanceledError wrapping context.Canceled, never a hang or a leaked
// worker (the leakcheck covers the parallel expansion goroutines).
func TestExploreCancelMidExplore(t *testing.T) {
	leakcheck.Check(t)
	sem, p := countSem(t, 200000)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		workers := 1 + trial%3
		ctx, cancel := context.WithCancel(context.Background())
		go func(after time.Duration) {
			time.Sleep(after)
			cancel()
		}(time.Duration(rng.Intn(2000)) * time.Microsecond)
		_, err := Explore(sem, p, Options{Ctx: ctx, Workers: workers, MaxStates: 1 << 20})
		cancel()
		if err == nil {
			// The exploration won the race — only plausible for the very
			// shortest delays, and not an error.
			continue
		}
		var ce *CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("trial %d (workers=%d): err = %T %v, want *CanceledError", trial, workers, err, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("trial %d: err %v does not match context.Canceled", trial, err)
		}
	}
}

// TestExploreDeadlineInsideLevel pins the deadline-granularity fix: an
// already-expired MaxDuration must abort inside the first level, even
// on the sequential expansion path. Before the fix the sequential path
// never checked the clock and the merge loop only probed every
// deadlineCheckInterval states, so a model smaller than the interval
// explored to completion and returned success despite the deadline.
func TestExploreDeadlineInsideLevel(t *testing.T) {
	leakcheck.Check(t)
	sem, p := countSem(t, 100) // well under deadlineCheckInterval states
	_, err := Explore(sem, p, Options{MaxDuration: time.Nanosecond, Workers: 1})
	if err == nil {
		t.Fatal("exploration with an expired deadline returned success")
	}
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %T %v, want *DeadlineError", err, err)
	}
	if de.Explored >= deadlineCheckInterval {
		t.Errorf("explored %d states past an expired deadline, want < %d",
			de.Explored, deadlineCheckInterval)
	}
}

// TestExploreDeadlineParallelWorkers does the same through the parallel
// expansion path: the per-worker probes must abort a level mid-flight.
func TestExploreDeadlineParallelWorkers(t *testing.T) {
	leakcheck.Check(t)
	sem, p := countSem(t, 100000)
	_, err := Explore(sem, p, Options{MaxDuration: time.Millisecond, Workers: 4})
	if err == nil {
		t.Skip("machine explored 100k states in under a millisecond")
	}
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %T %v, want *DeadlineError", err, err)
	}
}

// TestExploreUncancelledContextIsByteIdentical pins graceful
// degradation to zero: threading a live context through an exploration
// must not change the result at all relative to the no-context batch
// path.
func TestExploreUncancelledContextIsByteIdentical(t *testing.T) {
	sem, p := countSem(t, 500)
	plain, err := Explore(sem, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sem2, p2 := countSem(t, 500)
	withCtx, err := Explore(sem2, p2, Options{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.NumStates() != withCtx.NumStates() {
		t.Fatalf("state counts diverge: %d vs %d", plain.NumStates(), withCtx.NumStates())
	}
	for i := 0; i < plain.NumStates(); i++ {
		if plain.Key(i) != withCtx.Key(i) {
			t.Fatalf("state %d diverges: %q vs %q", i, plain.Key(i), withCtx.Key(i))
		}
		if len(plain.Edges[i]) != len(withCtx.Edges[i]) {
			t.Fatalf("edge counts at state %d diverge", i)
		}
		for j := range plain.Edges[i] {
			pe, ce := plain.Edges[i][j], withCtx.Edges[i][j]
			if pe.To != ce.To || plain.Events[pe.Ev].String() != withCtx.Events[ce.Ev].String() {
				t.Fatalf("edge %d/%d diverges: %+v vs %+v", i, j, pe, ce)
			}
		}
	}
}

// TestCacheCancelledFlightIsEvicted pins the no-poisoning contract: a
// cancelled single-flight exploration must be evicted so a retry
// recomputes instead of replaying the stale cancellation forever.
func TestCacheCancelledFlightIsEvicted(t *testing.T) {
	leakcheck.Check(t)
	sem, p := countSem(t, 1000)
	c := NewCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Explore(sem, p, Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c.Len() != 0 {
		t.Fatalf("cancelled flight left %d cache entries", c.Len())
	}
	// The retry must recompute (a miss, not a poisoned hit) and succeed.
	l, err := c.Explore(sem, p, Options{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumStates() != 1001 {
		t.Errorf("retry explored %d states, want 1001", l.NumStates())
	}
	if _, misses := c.Stats(); misses != 2 {
		t.Errorf("misses = %d, want 2 (cancelled flight forgotten)", misses)
	}
}
