package refine

import (
	"strings"
	"testing"

	"repro/internal/csp"
)

// otaContext declares the case-study alphabet of the paper: channels
// send and rec carrying the X.1373 message types of Table II.
func otaContext(t *testing.T) (*csp.Context, *csp.Env) {
	t.Helper()
	ctx := csp.NewContext()
	msgs := csp.EnumType("Msgs", "reqSw", "rptSw", "reqApp", "rptUpd")
	if err := ctx.DeclareType("Msgs", msgs); err != nil {
		t.Fatal(err)
	}
	ctx.MustChannel("send", msgs)
	ctx.MustChannel("rec", msgs)
	ctx.MustChannel("other")
	return ctx, csp.NewEnv()
}

// sp02 builds the paper's SP_02 property: every software inventory
// request (send.reqSw) is answered by a report (rec.rptSw).
//
//	SP02 = send.reqSw -> rec.rptSw -> SP02
func sp02(env *csp.Env) csp.Process {
	env.MustDefine("SP02", nil,
		csp.Send("send", csp.Send("rec", csp.Call("SP02"), csp.Sym("rptSw")), csp.Sym("reqSw")))
	return csp.Call("SP02")
}

func TestSP02RefinedByCorrectSystem(t *testing.T) {
	ctx, env := otaContext(t)
	spec := sp02(env)
	// SYSTEM behaves exactly like the spec (the happy path of Fig. 2).
	env.MustDefine("SYSTEM", nil,
		csp.Send("send", csp.Send("rec", csp.Call("SYSTEM"), csp.Sym("rptSw")), csp.Sym("reqSw")))
	c := NewChecker(env, ctx)
	res, err := c.RefinesTraces(spec, csp.Call("SYSTEM"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("SP02 [T= SYSTEM should hold; counterexample %s (%s)",
			res.Counterexample, res.Reason)
	}
}

func TestSP02ViolatedByFlawedSystem(t *testing.T) {
	ctx, env := otaContext(t)
	spec := sp02(env)
	// FLAWED answers a request with rptUpd instead of rptSw: an
	// integrity violation in the sense of section V-B.
	env.MustDefine("FLAWED", nil,
		csp.Send("send", csp.Send("rec", csp.Call("FLAWED"), csp.Sym("rptUpd")), csp.Sym("reqSw")))
	c := NewChecker(env, ctx)
	res, err := c.RefinesTraces(spec, csp.Call("FLAWED"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("flawed system must not refine SP02")
	}
	want := csp.Trace{csp.Ev("send", csp.Sym("reqSw")), csp.Ev("rec", csp.Sym("rptUpd"))}
	if !res.Counterexample.Equal(want) {
		t.Errorf("counterexample = %s, want %s", res.Counterexample, want)
	}
	if res.BadEvent == nil || res.BadEvent.String() != "rec.rptUpd" {
		t.Errorf("bad event = %v, want rec.rptUpd", res.BadEvent)
	}
}

func TestTraceRefinementEverySubsetHolds(t *testing.T) {
	ctx, env := otaContext(t)
	// RUN over {send} trace-refines any process using only send events.
	env.MustDefine("RUN", nil,
		csp.Recv("send", csp.Call("RUN"), "x"))
	env.MustDefine("ONE", nil,
		csp.Send("send", csp.Stop(), csp.Sym("reqApp")))
	c := NewChecker(env, ctx)
	res, err := c.RefinesTraces(csp.Call("RUN"), csp.Call("ONE"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("RUN [T= ONE should hold, got counterexample %s", res.Counterexample)
	}
	// And the reverse direction fails: ONE cannot match RUN's traces.
	res, err = c.RefinesTraces(csp.Call("ONE"), csp.Call("RUN"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("ONE [T= RUN must fail")
	}
}

func TestStopRefinesEverythingInTraces(t *testing.T) {
	ctx, env := otaContext(t)
	env.MustDefine("P", nil, csp.Send("send", csp.Call("P"), csp.Sym("reqSw")))
	c := NewChecker(env, ctx)
	res, err := c.RefinesTraces(csp.Call("P"), csp.Stop())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Error("P [T= STOP must hold (STOP has only the empty trace)")
	}
}

func TestFailuresRefinementDetectsNondeterminism(t *testing.T) {
	ctx, env := otaContext(t)
	// SPEC = deterministic choice; IMPL = internal choice. Traces agree
	// but IMPL can refuse either branch, so SPEC [F= IMPL fails while
	// SPEC [T= IMPL holds.
	env.MustDefine("SPEC", nil, csp.ExtChoice(
		csp.Send("send", csp.Stop(), csp.Sym("reqSw")),
		csp.Send("send", csp.Stop(), csp.Sym("reqApp")),
	))
	env.MustDefine("IMPL", nil, csp.IntChoice(
		csp.Send("send", csp.Stop(), csp.Sym("reqSw")),
		csp.Send("send", csp.Stop(), csp.Sym("reqApp")),
	))
	c := NewChecker(env, ctx)
	resT, err := c.RefinesTraces(csp.Call("SPEC"), csp.Call("IMPL"))
	if err != nil {
		t.Fatal(err)
	}
	if !resT.Holds {
		t.Errorf("SPEC [T= IMPL should hold, counterexample %s", resT.Counterexample)
	}
	resF, err := c.RefinesFailures(csp.Call("SPEC"), csp.Call("IMPL"))
	if err != nil {
		t.Fatal(err)
	}
	if resF.Holds {
		t.Error("SPEC [F= IMPL must fail: IMPL refuses events SPEC accepts")
	}
	if !strings.Contains(resF.Reason, "refuses") {
		t.Errorf("reason = %q, want refusal explanation", resF.Reason)
	}
}

func TestFailuresRefinementHoldsForEqualProcesses(t *testing.T) {
	ctx, env := otaContext(t)
	env.MustDefine("SPEC", nil, csp.Send("send", csp.Call("SPEC"), csp.Sym("reqSw")))
	env.MustDefine("IMPL", nil, csp.Send("send", csp.Call("IMPL"), csp.Sym("reqSw")))
	c := NewChecker(env, ctx)
	res, err := c.RefinesFailures(csp.Call("SPEC"), csp.Call("IMPL"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("identical processes must refine in failures; %s", res.Reason)
	}
}

func TestFailuresStopDoesNotRefineLiveSpec(t *testing.T) {
	ctx, env := otaContext(t)
	env.MustDefine("SPEC", nil, csp.Send("send", csp.Call("SPEC"), csp.Sym("reqSw")))
	c := NewChecker(env, ctx)
	res, err := c.RefinesFailures(csp.Call("SPEC"), csp.Stop())
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("SPEC [F= STOP must fail: STOP refuses everything")
	}
}

func TestDeadlockDetection(t *testing.T) {
	ctx, env := otaContext(t)
	// Two processes insisting on different synchronised events.
	sync := csp.EventsOf("send")
	deadlocked := csp.Par(
		csp.Send("send", csp.Stop(), csp.Sym("reqSw")),
		sync,
		csp.Send("send", csp.Stop(), csp.Sym("reqApp")),
	)
	c := NewChecker(env, ctx)
	res, err := c.DeadlockFree(deadlocked)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("mismatched synchronisation must deadlock")
	}
	if len(res.Counterexample) != 0 {
		t.Errorf("deadlock at the initial state should have empty trace, got %s", res.Counterexample)
	}
}

func TestDeadlockFreeRecursiveProcess(t *testing.T) {
	ctx, env := otaContext(t)
	env.MustDefine("P", nil, csp.Send("send", csp.Call("P"), csp.Sym("reqSw")))
	c := NewChecker(env, ctx)
	res, err := c.DeadlockFree(csp.Call("P"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("recurring process reported deadlocked: %s", res.Reason)
	}
}

func TestTerminationIsNotDeadlock(t *testing.T) {
	ctx, env := otaContext(t)
	c := NewChecker(env, ctx)
	res, err := c.DeadlockFree(csp.Send("send", csp.Skip(), csp.Sym("reqSw")))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("successful termination reported as deadlock: %s", res.Reason)
	}
	// STOP itself deadlocks immediately.
	res, err = c.DeadlockFree(csp.Stop())
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("STOP must be reported as deadlocked")
	}
}

func TestDivergenceDetection(t *testing.T) {
	ctx, env := otaContext(t)
	env.MustDefine("LOOP", nil, csp.DoEvent("other", csp.Call("LOOP")))
	c := NewChecker(env, ctx)
	res, err := c.DivergenceFree(csp.Hide(csp.Call("LOOP"), csp.EventsOf("other")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("hidden loop must diverge")
	}
	res, err = c.DivergenceFree(csp.Call("LOOP"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("visible loop wrongly reported divergent: %s", res.Reason)
	}
}

func TestRefineCounterexampleIsShortest(t *testing.T) {
	ctx, env := otaContext(t)
	// Spec allows only reqSw forever; impl can do reqSw then reqApp.
	env.MustDefine("SPEC", nil, csp.Send("send", csp.Call("SPEC"), csp.Sym("reqSw")))
	env.MustDefine("IMPL", nil,
		csp.Send("send",
			csp.ExtChoice(
				csp.Send("send", csp.Call("IMPL"), csp.Sym("reqSw")),
				csp.Send("send", csp.Stop(), csp.Sym("reqApp")),
			), csp.Sym("reqSw")))
	c := NewChecker(env, ctx)
	res, err := c.RefinesTraces(csp.Call("SPEC"), csp.Call("IMPL"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("refinement should fail")
	}
	if len(res.Counterexample) != 2 {
		t.Errorf("counterexample %s has length %d, want shortest length 2",
			res.Counterexample, len(res.Counterexample))
	}
}

func TestModelString(t *testing.T) {
	if Traces.String() != "[T=" || Failures.String() != "[F=" {
		t.Errorf("model strings = %q / %q", Traces.String(), Failures.String())
	}
}

func TestFDRefinementRejectsDivergentImpl(t *testing.T) {
	ctx, env := otaContext(t)
	env.MustDefine("LIVE", nil, csp.DoEvent("other", csp.Call("LIVE")))
	c := NewChecker(env, ctx)
	divergent := csp.Hide(csp.Call("LIVE"), csp.EventsOf("other"))
	// Any spec: the divergent implementation must be rejected under FD.
	res, err := c.RefinesFD(csp.Call("LIVE"), divergent)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("divergent implementation accepted under [FD=")
	}
	if !strings.Contains(res.Reason, "diverges") {
		t.Errorf("reason = %q", res.Reason)
	}
	// The same pair under plain failures: hiding everything leaves only
	// taus; the divergence is invisible to the stable-failures product
	// only if no stable state misbehaves — either way it must not error.
	if _, err := c.RefinesFailures(csp.Call("LIVE"), divergent); err != nil {
		t.Fatal(err)
	}
}

func TestFDRefinementHoldsForEqualLiveProcesses(t *testing.T) {
	ctx, env := otaContext(t)
	env.MustDefine("P", nil, csp.Send("send", csp.Call("P"), csp.Sym("reqSw")))
	c := NewChecker(env, ctx)
	res, err := c.RefinesFD(csp.Call("P"), csp.Call("P"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("P [FD= P failed: %s", res.Reason)
	}
}

func TestFailuresRefinementRejectsDivergentSpec(t *testing.T) {
	ctx, env := otaContext(t)
	env.MustDefine("LIVE2", nil, csp.DoEvent("other", csp.Call("LIVE2")))
	c := NewChecker(env, ctx)
	divergentSpec := csp.Hide(csp.Call("LIVE2"), csp.EventsOf("other"))
	_, err := c.RefinesFailures(divergentSpec, csp.Stop())
	if err == nil {
		t.Fatal("divergent specification accepted for [F=")
	}
	if !strings.Contains(err.Error(), "divergence-free specification") {
		t.Errorf("err = %v", err)
	}
	// Trace refinement has no such restriction.
	if _, err := c.RefinesTraces(divergentSpec, csp.Stop()); err != nil {
		t.Errorf("trace refinement rejected divergent spec: %v", err)
	}
}
