package refine

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/csp"
)

// TraceCheck is the outcome of an on-the-fly trace-membership check: is
// an observed event sequence a trace of the model? Unlike Refines, the
// check never builds the full LTS of the model — it advances a frontier
// of process terms event by event, so cost is proportional to the trace
// length times the local branching, not to the model's state space.
type TraceCheck struct {
	// Accepted is true when the whole trace is a trace of the process.
	Accepted bool
	// FailedAt is the index of the first event the model could not
	// perform (meaningful when !Accepted). Every shorter prefix was
	// accepted — traces are prefix-closed.
	FailedAt int
	// BadEvent is the event at FailedAt.
	BadEvent *csp.Event
	// Allowed lists the visible events the model offered at the point
	// of failure, the counterexample diagnosis.
	Allowed []csp.Event
	// States is the number of distinct process terms visited.
	States int
}

// AcceptsTrace reports whether t is a trace of p (with arbitrary
// internal activity interleaved): the conformance question "could the
// extracted model have produced this observed event sequence?". The
// checker's MaxStates and MaxDuration budgets apply; exhausting either
// returns a *BudgetError ("trace" / "trace-deadline" phase).
func (c *Checker) AcceptsTrace(p csp.Process, t csp.Trace) (TraceCheck, error) {
	maxStates := c.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	deadline := c.deadline()

	// visited interns process terms across the whole check so a tau-rich
	// model cannot re-expand the same term once per trace event, and
	// trans memoizes each term's transition list — cyclic protocols
	// revisit the same states once per protocol round, and recomputing
	// operational semantics per round dominates the check otherwise.
	// With a shared Cache the memo additionally persists across checks,
	// so a campaign expands each model term once, not once per schedule;
	// the local map stays as a lock-free first level.
	visited := map[string]bool{}
	trans := map[string][]csp.Transition{}
	transitions := func(key string, p csp.Process) ([]csp.Transition, error) {
		if ts, ok := trans[key]; ok {
			return ts, nil
		}
		var ts []csp.Transition
		var err error
		if c.Cache != nil {
			ts, err = c.Cache.Transitions(c.Sem, key, p)
		} else {
			ts, err = c.Sem.Transitions(p)
		}
		if err != nil {
			return nil, fmt.Errorf("transitions of %s: %w", key, err)
		}
		trans[key] = ts
		return ts, nil
	}
	probes := 0
	budgetErr := func(phase string, limit int) *BudgetError {
		return &BudgetError{Phase: phase, Explored: len(visited), Limit: limit}
	}

	// closure expands a set of terms to its tau-closure, returning the
	// stable frontier (every term, whether or not it has tau moves, can
	// also offer visible events).
	type frontierEntry struct {
		key  string
		proc csp.Process
	}
	closure := func(seed []frontierEntry) ([]frontierEntry, error) {
		out := make([]frontierEntry, 0, len(seed))
		seen := map[string]bool{}
		stack := append([]frontierEntry(nil), seed...)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[cur.key] {
				continue
			}
			seen[cur.key] = true
			out = append(out, cur)
			if !visited[cur.key] {
				visited[cur.key] = true
				if len(visited) > maxStates {
					return nil, budgetErr("trace", maxStates)
				}
			}
			probes++
			if !deadline.IsZero() && probes%deadlineCheckInterval == 0 &&
				time.Now().After(deadline) {
				return nil, budgetErr("trace-deadline", int(c.MaxDuration/time.Millisecond))
			}
			trs, err := transitions(cur.key, cur.proc)
			if err != nil {
				return nil, err
			}
			for _, tr := range trs {
				if tr.Ev.IsTau() {
					k := tr.To.Key()
					if !seen[k] {
						stack = append(stack, frontierEntry{key: k, proc: tr.To})
					}
				}
			}
		}
		return out, nil
	}

	frontier, err := closure([]frontierEntry{{key: p.Key(), proc: p}})
	if err != nil {
		return TraceCheck{}, err
	}

	for i, ev := range t {
		var next []frontierEntry
		nextSeen := map[string]bool{}
		allowed := map[string]csp.Event{}
		for _, fe := range frontier {
			// Probe the wall clock here too: a wide tau-free model does
			// all of its work in this loop, and without a probe it would
			// ignore MaxDuration entirely (the closure probe only fires
			// once per frontier entry it pops).
			probes++
			if !deadline.IsZero() && probes%deadlineCheckInterval == 0 &&
				time.Now().After(deadline) {
				return TraceCheck{}, budgetErr("trace-deadline", int(c.MaxDuration/time.Millisecond))
			}
			trs, err := transitions(fe.key, fe.proc)
			if err != nil {
				return TraceCheck{}, err
			}
			for _, tr := range trs {
				if tr.Ev.IsTau() {
					continue
				}
				allowed[tr.Ev.String()] = tr.Ev
				if !tr.Ev.Equal(ev) {
					continue
				}
				k := tr.To.Key()
				if !nextSeen[k] {
					nextSeen[k] = true
					// Charge the state budget at first intern, not at the
					// next closure call: MaxStates then bounds the next
					// frontier as it is built (a huge branching step can
					// no longer materialize unbounded terms before the
					// closure charges them) and Explored stays exact.
					if !visited[k] {
						visited[k] = true
						if len(visited) > maxStates {
							return TraceCheck{}, budgetErr("trace", maxStates)
						}
					}
					next = append(next, frontierEntry{key: k, proc: tr.To})
				}
			}
		}
		if len(next) == 0 {
			bad := ev
			return TraceCheck{
				FailedAt: i,
				BadEvent: &bad,
				Allowed:  sortedEvents(allowed),
				States:   len(visited),
			}, nil
		}
		frontier, err = closure(next)
		if err != nil {
			return TraceCheck{}, err
		}
	}
	return TraceCheck{Accepted: true, FailedAt: -1, States: len(visited)}, nil
}

func sortedEvents(m map[string]csp.Event) []csp.Event {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Deterministic order keeps conformance reports byte-identical.
	sort.Strings(keys)
	out := make([]csp.Event, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}
