// Crash/resume acceptance at the checker level: a refinement check
// interrupted at a randomized point (simulating a kill mid-exploration)
// and re-run over the same checkpoint directory must produce a verdict
// byte-identical to an uninterrupted run, for every assertion of every
// OTA corpus system. This file is the external-package half of the
// refine tests so it can drive the real paper models (internal/ota
// imports refine, so the in-package tests cannot import it back).
package refine_test

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/fdr"
	"repro/internal/obs"
	"repro/internal/ota"
	"repro/internal/refine"
)

// tripCtx is a context that reports cancellation after its Err method
// has been polled n times — a deterministic stand-in for a process
// killed at an arbitrary point, since the exploration and product loops
// poll Err per state.
type tripCtx struct {
	context.Context
	remaining atomic.Int64
}

func newTripCtx(n int) *tripCtx {
	c := &tripCtx{Context: context.Background()}
	c.remaining.Store(int64(n))
	return c
}

func (c *tripCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestCheckpointResumeVerdictByteIdentical(t *testing.T) {
	builds := []struct {
		name  string
		build func() (*ota.System, error)
	}{
		{"ota", ota.Build},
		{"flawed", ota.BuildFlawed},
		{"deadlocked", ota.BuildDeadlocked},
		{"lossy-hardened", func() (*ota.System, error) {
			return ota.BuildLossy(ota.HardenedGateway, ota.DefaultLossBudget)
		}},
	}
	rng := rand.New(rand.NewSource(11))
	for _, b := range builds {
		sys, err := b.build()
		if err != nil {
			t.Fatalf("build %s: %v", b.name, err)
		}
		for ai, a := range sys.Model.Asserts {
			ref, refErr := fdr.RunAssertBudget(sys.Model, a, fdr.Budget{Workers: 1})
			if refErr != nil {
				t.Fatalf("%s assert %d: reference run: %v", b.name, ai, refErr)
			}
			dir := t.TempDir()
			// Interrupt the check up to twice at randomized poll counts,
			// each re-run resuming whatever the previous one managed to
			// checkpoint — the multi-crash schedule a flaky host produces.
			for attempt := 0; attempt < 2; attempt++ {
				trips := 1 + rng.Intn(400)
				_, err := fdr.RunAssertBudget(sys.Model, a, fdr.Budget{
					Workers:       1,
					Ctx:           newTripCtx(trips),
					CheckpointDir: dir,
				})
				if err == nil {
					break // finished before the trip fired
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("%s assert %d: interrupted run: %v", b.name, ai, err)
				}
			}
			hasSnapshot := false
			for _, role := range []string{"spec", "impl"} {
				if _, err := os.Stat(filepath.Join(dir, role, "checkpoint.json")); err == nil {
					hasSnapshot = true
				}
			}
			o := obs.New()
			got, err := fdr.RunAssertBudget(sys.Model, a, fdr.Budget{
				Workers:       1,
				CheckpointDir: dir,
				Obs:           o,
			})
			if err != nil {
				t.Fatalf("%s assert %d: resumed run: %v", b.name, ai, err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("%s assert %d (%s): resumed verdict differs:\nref: %+v\ngot: %+v",
					b.name, ai, a.Text, ref, got)
			}
			if hasSnapshot && o.Counter("lts.checkpoint.resumes").Value() == 0 {
				t.Fatalf("%s assert %d: snapshot on disk but the re-run never resumed from it",
					b.name, ai)
			}
		}
	}
}

// TestCheckpointSpillCombined runs a full check with both the spill
// store and checkpointing active — the configuration a memory-pressured
// server job runs under — and requires the reference verdict.
func TestCheckpointSpillCombined(t *testing.T) {
	sys, err := ota.BuildLossy(ota.HardenedGateway, ota.DefaultLossBudget)
	if err != nil {
		t.Fatal(err)
	}
	for ai, a := range sys.Model.Asserts {
		ref, err := fdr.RunAssertBudget(sys.Model, a, fdr.Budget{Workers: 1})
		if err != nil {
			t.Fatalf("assert %d: reference: %v", ai, err)
		}
		o := obs.New()
		got, err := fdr.RunAssertBudget(sys.Model, a, fdr.Budget{
			Workers:       1,
			CheckpointDir: t.TempDir(),
			SoftMemBytes:  1, // spill almost immediately
			SpillDir:      t.TempDir(),
			Obs:           o,
		})
		if err != nil {
			t.Fatalf("assert %d: spill run: %v", ai, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("assert %d (%s): spill verdict differs:\nref: %+v\ngot: %+v", ai, a.Text, ref, got)
		}
		if o.Counter("statestore.spill.activations").Value() == 0 {
			t.Fatalf("assert %d: spill store never activated", ai)
		}
	}
}

// TestMemoryBudgetIsTypedVerdict pins the memory-pressure degradation
// path: a hard watermark yields a structured BudgetError with phase
// "memory", never a crash.
func TestMemoryBudgetIsTypedVerdict(t *testing.T) {
	sys, err := ota.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = fdr.RunAssertBudget(sys.Model, sys.Model.Asserts[0], fdr.Budget{MaxMemBytes: 1})
	if err == nil {
		t.Fatal("check under a 1-byte watermark succeeded")
	}
	var be *refine.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a *refine.BudgetError", err)
	}
	if be.Phase != "memory" {
		t.Fatalf("budget phase = %q, want memory", be.Phase)
	}
	if be.Explored <= 0 {
		t.Fatalf("memory budget error lost the partial exploration size: %+v", be)
	}
}
