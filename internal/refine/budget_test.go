package refine

import (
	"errors"
	"testing"

	"repro/internal/csp"
)

// counterSystem defines COUNT = send.reqSw -> rec.rptSw -> COUNT — a
// live two-state loop whose product with SP02 is small but non-trivial.
func counterSystem(env *csp.Env) csp.Process {
	env.MustDefine("SYSTEM", nil,
		csp.Send("send", csp.Send("rec", csp.Call("SYSTEM"), csp.Sym("rptSw")), csp.Sym("reqSw")))
	return csp.Call("SYSTEM")
}

func TestStateBudgetExhaustedIsTyped(t *testing.T) {
	ctx, env := otaContext(t)
	spec := sp02(env)
	impl := counterSystem(env)
	c := NewChecker(env, ctx)
	c.MaxStates = 1
	_, err := c.RefinesTraces(spec, impl)
	if err == nil {
		t.Fatal("expected a budget error with MaxStates=1")
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a *BudgetError", err)
	}
	if be.Phase != "explore" {
		t.Errorf("phase = %q, want explore", be.Phase)
	}
	// The bound is exact: the state that would break it is never
	// materialised, so the partial result can at most fill the budget.
	if be.Explored > be.Limit {
		t.Errorf("partial result Explored=%d must not exceed Limit=%d (exact bound)",
			be.Explored, be.Limit)
	}
}

func TestProductBudgetExhaustedIsTyped(t *testing.T) {
	ctx, env := otaContext(t)
	spec := sp02(env)
	impl := counterSystem(env)
	c := NewChecker(env, ctx)
	c.MaxProductStates = 1
	_, err := c.RefinesTraces(spec, impl)
	if err == nil {
		t.Fatal("expected a budget error with MaxProductStates=1")
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a *BudgetError", err)
	}
	if be.Phase != "product" {
		t.Errorf("phase = %q, want product", be.Phase)
	}
	if be.Explored == 0 {
		t.Error("partial exploration size should be non-zero")
	}
	if be.Limit != 1 {
		t.Errorf("limit = %d, want 1", be.Limit)
	}
}

func TestStepBudgetExhaustedIsTyped(t *testing.T) {
	ctx, env := otaContext(t)
	spec := sp02(env)
	impl := counterSystem(env)
	c := NewChecker(env, ctx)
	c.MaxSteps = 1
	_, err := c.RefinesTraces(spec, impl)
	if err == nil {
		t.Fatal("expected a budget error with MaxSteps=1")
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a *BudgetError", err)
	}
	if be.Phase != "product-steps" {
		t.Errorf("phase = %q, want product-steps", be.Phase)
	}
	// Explored counts completed steps: exactly the budget when exhausted.
	if be.Explored != c.MaxSteps {
		t.Errorf("steps explored = %d, want %d (the completed budget)", be.Explored, c.MaxSteps)
	}
}

func TestGenerousBudgetMatchesUnbudgeted(t *testing.T) {
	ctx, env := otaContext(t)
	spec := sp02(env)
	// FLAWED answers with the wrong message type, so the verdict is a
	// genuine failure that must survive budgeting unchanged.
	env.MustDefine("FLAWED", nil,
		csp.Send("send", csp.Send("rec", csp.Call("FLAWED"), csp.Sym("rptUpd")), csp.Sym("reqSw")))
	impl := csp.Call("FLAWED")

	unbudgeted := NewChecker(env, ctx)
	want, err := unbudgeted.RefinesTraces(spec, impl)
	if err != nil {
		t.Fatal(err)
	}
	budgeted := NewChecker(env, ctx)
	budgeted.MaxStates = 1 << 16
	budgeted.MaxProductStates = 1 << 16
	budgeted.MaxSteps = 1 << 20
	got, err := budgeted.RefinesTraces(spec, impl)
	if err != nil {
		t.Fatal(err)
	}
	if got.Holds != want.Holds {
		t.Errorf("budgeted verdict %v != unbudgeted %v", got.Holds, want.Holds)
	}
	if got.Counterexample.String() != want.Counterexample.String() {
		t.Errorf("budgeted counterexample %s != unbudgeted %s", got.Counterexample, want.Counterexample)
	}
}
