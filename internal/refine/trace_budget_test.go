package refine

import (
	"errors"
	"testing"
	"time"

	"repro/internal/csp"
)

// TestAcceptsTraceDeadlineFiresInVisibleExpansion pins the deadline
// probe in the visible-event expansion loop. bigCounter is tau-free, so
// the closure helper pops exactly one entry per trace event; before the
// fix the probe counter advanced only there and a 600-event trace never
// reached the deadlineCheckInterval-th probe, silently ignoring
// MaxDuration. With the expansion loop probing too, the counter crosses
// the interval mid-expansion and the check degrades into the documented
// *BudgetError instead of running to completion. This mirrors the PR 6
// sub-256-state deadline-granularity fix in lts.
func TestAcceptsTraceDeadlineFiresInVisibleExpansion(t *testing.T) {
	ctx, env := otaContext(t)
	impl := bigCounter(t, ctx, env)
	c := NewChecker(env, ctx)
	c.MaxDuration = time.Nanosecond

	long := make(csp.Trace, 0, 600)
	for i := 0; i < 600; i++ {
		long = append(long, csp.Event{Chan: "count", Args: []csp.Value{csp.Int(i)}})
	}
	_, err := c.AcceptsTrace(impl, long)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a *BudgetError (deadline ignored by the visible loop)", err)
	}
	if be.Phase != "trace-deadline" {
		t.Errorf("phase = %q, want trace-deadline", be.Phase)
	}
}

// TestAcceptsTraceStateBudgetChargedAtIntern pins the bound semantics of
// MaxStates: terms reached in a visible step are charged when first
// interned, so a single wide expansion cannot materialize more than
// MaxStates+1 distinct terms and Explored reports exactly the point the
// budget tripped — the same exact-bound contract lts.Explore keeps.
func TestAcceptsTraceStateBudgetChargedAtIntern(t *testing.T) {
	ctx, env := otaContext(t)
	ctx.MustChannel("hop", csp.IntRange{Lo: 0, Hi: 64})
	env.MustDefine("K", []string{"n"},
		csp.Prefix("hop", []csp.CommField{csp.Out(csp.V("n"))}, csp.StopProc{}))
	// WIDE offers the same event hop.0 into twelve distinct continuations:
	// one visible step interns twelve fresh terms at once.
	var branches []csp.Process
	for i := 0; i < 12; i++ {
		branches = append(branches,
			csp.Prefix("hop", []csp.CommField{csp.Out(csp.LitInt(0))}, csp.Call("K", csp.LitInt(i))))
	}
	env.MustDefine("WIDE", nil, csp.ExtChoice(branches...))

	c := NewChecker(env, ctx)
	c.MaxStates = 5
	_, err := c.AcceptsTrace(csp.Call("WIDE"), csp.Trace{{Chan: "hop", Args: []csp.Value{csp.Int(0)}}})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a *BudgetError", err)
	}
	if be.Phase != "trace" {
		t.Errorf("phase = %q, want trace", be.Phase)
	}
	if be.Explored != c.MaxStates+1 {
		t.Errorf("Explored = %d, want exactly MaxStates+1 = %d", be.Explored, c.MaxStates+1)
	}
	if be.Limit != c.MaxStates {
		t.Errorf("Limit = %d, want %d", be.Limit, c.MaxStates)
	}
}
