package refine

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/csp"
)

// bigCounter defines BIG(n) = send.reqSw -> BIG(n+1 mod N) over a large
// modulus, so exploration visits enough states for the periodic
// wall-clock probes to fire.
func bigCounter(t *testing.T, ctx *csp.Context, env *csp.Env) csp.Process {
	t.Helper()
	ctx.MustChannel("count", csp.IntRange{Lo: 0, Hi: 1 << 20})
	env.MustDefine("BIG", []string{"n"},
		csp.Prefix("count", []csp.CommField{csp.Out(csp.V("n"))},
			csp.Call("BIG", csp.Binary{Op: csp.OpAdd, L: csp.V("n"), R: csp.LitInt(1)})))
	return csp.Call("BIG", csp.LitInt(0))
}

// TestTinyDeadlineYieldsBudgetVerdict is the satellite requirement: a
// minuscule wall-clock budget must surface as a typed *BudgetError
// rather than a hang or a panic.
func TestTinyDeadlineYieldsBudgetVerdict(t *testing.T) {
	ctx, env := otaContext(t)
	impl := bigCounter(t, ctx, env)
	c := NewChecker(env, ctx)
	c.MaxDuration = time.Nanosecond

	done := make(chan error, 1)
	go func() {
		_, err := c.DivergenceFree(impl)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected a deadline budget error, got a verdict")
		}
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("error %v is not a *BudgetError", err)
		}
		if !strings.HasSuffix(be.Phase, "-deadline") {
			t.Errorf("phase = %q, want a -deadline phase", be.Phase)
		}
		if be.Explored == 0 {
			t.Error("partial exploration size should be non-zero")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("deadline-bounded check hung")
	}
}

// TestDeadlineBoundsRefinement exercises the deadline through the full
// Refines path (spec + impl exploration and the product search).
func TestDeadlineBoundsRefinement(t *testing.T) {
	ctx, env := otaContext(t)
	spec := sp02(env)
	impl := bigCounter(t, ctx, env)
	c := NewChecker(env, ctx)
	c.MaxDuration = time.Nanosecond
	_, err := c.RefinesTraces(spec, impl)
	if err == nil {
		t.Fatal("expected a deadline budget error")
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a *BudgetError", err)
	}
}

// TestGenerousDeadlineLeavesVerdictAlone: a wall-clock budget far above
// the check's real cost must not perturb the verdict.
func TestGenerousDeadlineLeavesVerdictAlone(t *testing.T) {
	ctx, env := otaContext(t)
	spec := sp02(env)
	impl := counterSystem(env)
	c := NewChecker(env, ctx)
	c.MaxDuration = time.Hour
	res, err := c.RefinesTraces(spec, impl)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("SP02 [T= SYSTEM should hold, got %+v", res)
	}
}
