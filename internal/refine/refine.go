// Package refine is an FDR-style refinement checker for the CSP core:
// trace refinement, stable-failures refinement, deadlock freedom and
// divergence freedom, each producing counterexample traces on failure.
// It plays the role FDR plays in Figure 1 of Heneghan et al. (DSN-W
// 2019): the automation-ready back end that checks implementation models
// against specification models.
package refine

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/csp"
	"repro/internal/lts"
	"repro/internal/obs"
	"repro/internal/statestore"
)

// Model selects the semantic model a refinement check runs in.
type Model int

// Semantic models.
const (
	// Traces is the finite-trace model (the model used in the paper).
	Traces Model = iota + 1
	// Failures is the stable-failures model.
	Failures
	// FailuresDivergences is FDR's flagship model: the implementation
	// must additionally be divergence-free.
	FailuresDivergences
)

// String names the model like FDR's assertion syntax ([T= / [F=).
func (m Model) String() string {
	switch m {
	case Traces:
		return "[T="
	case Failures:
		return "[F="
	case FailuresDivergences:
		return "[FD="
	}
	return "?"
}

// Result reports the outcome of a check.
type Result struct {
	// Holds is true when the property holds.
	Holds bool
	// Counterexample is a witness trace when the property fails: for
	// refinement, the shortest trace after which the implementation
	// behaves outside the specification; for deadlock/divergence, the
	// trace leading to the offending state.
	Counterexample csp.Trace
	// BadEvent is the event the implementation performed that the
	// specification could not (trace refinement), if any.
	BadEvent *csp.Event
	// Reason is a human-readable explanation of a failure.
	Reason string
	// ImplStates and SpecNodes report the sizes explored, for the
	// scalability experiments.
	ImplStates int
	SpecNodes  int
	// ProductStates is the number of (impl, spec) pairs visited.
	ProductStates int
}

// Checker runs refinement checks within one semantics (definition
// environment + channel context).
type Checker struct {
	Sem *csp.Semantics
	// MaxStates bounds each LTS exploration; 0 uses the lts default.
	MaxStates int
	// MaxProductStates bounds the number of (impl, spec) product pairs
	// a refinement check may visit; 0 means unbounded. Exhausting it
	// returns a *BudgetError carrying the partial exploration size, so
	// campaign-scale checking degrades gracefully instead of hanging.
	MaxProductStates int
	// MaxSteps bounds the number of transitions examined during the
	// product search; 0 means unbounded.
	MaxSteps int
	// MaxDuration bounds the wall-clock time of a whole check (all
	// explorations plus the product search); 0 means unbounded.
	// Exceeding it yields a *BudgetError with a "-deadline" phase, so a
	// pathological check degrades into a typed verdict instead of a
	// hang.
	MaxDuration time.Duration
	// Workers is the exploration parallelism handed to lts.Explore; 0
	// means GOMAXPROCS, 1 forces sequential exploration. Results are
	// byte-identical at any worker count.
	Workers int
	// Cache, when non-nil, memoizes explorations and normalisations
	// across checks. Checkers sharing one cache (and one Env/Ctx) reuse
	// each other's spec and impl LTSs — the campaign-scale win: a spec
	// explored for one assertion is free for every later assertion. The
	// cache is safe for concurrent use, so checkers running in parallel
	// may share it.
	Cache *lts.Cache
	// Obs receives per-check spans (one per assertion, with phase child
	// spans) and metrics, and is threaded into the underlying
	// explorations. nil disables instrumentation; measurements never
	// influence verdicts.
	Obs *obs.Observer
	// Ctx, when non-nil, cooperatively cancels the whole check: the
	// explorations and the product search all poll it, so a cancelled
	// request (disconnected client, fired per-request deadline) aborts
	// mid-BFS-level with an error matching context.Canceled /
	// context.DeadlineExceeded under errors.Is. nil means no
	// cancellation, the batch-CLI default. Cancellation never yields a
	// verdict — like a budget exhaustion, the outcome is unknown.
	Ctx context.Context
	// CheckpointDir, when non-empty, makes the check crash-safe: each
	// exploration writes atomic level-granular snapshots into a
	// per-phase subdirectory ("spec", "impl"), and a re-run of the same
	// check over the same directory resumes from them instead of
	// starting over. Normalisation and the product search are
	// recomputed deterministically from the restored LTSs, so the
	// resumed verdict is byte-identical to an uninterrupted one.
	CheckpointDir string
	// CheckpointEveryLevels is the snapshot cadence in completed BFS
	// levels; <= 0 means every level.
	CheckpointEveryLevels int
	// SoftMemBytes, when > 0, backs each exploration's visited index
	// with a disk-spilling store that migrates past the watermark, so a
	// check can exceed RAM instead of dying. The store never changes the
	// result, only where the visited set lives.
	SoftMemBytes int64
	// SpillDir is where spill shards are created (a unique subdirectory
	// per exploration, removed afterwards); empty means os.TempDir().
	SpillDir string
	// MaxMemBytes is a hard per-exploration watermark on estimated
	// resident bytes; exceeding it yields a *BudgetError with phase
	// "memory" — a structured budget-exhausted verdict instead of an
	// OOM kill. 0 means unbounded.
	MaxMemBytes int64
}

// BudgetError reports that a check ran out of its resource budget. The
// verdict is unknown; Explored records how much of the state space was
// covered before the budget was exhausted (a partial result, usable for
// sizing retries). For the product-search phases ("product" and
// "product-deadline") Explored counts fully-visited (dequeued) product
// pairs — discovered-but-unexamined frontier states are excluded — so
// the number means the same thing regardless of which budget fired.
type BudgetError struct {
	// Phase names the stage that ran dry: "explore", "product",
	// "product-steps", "trace", "memory" (hard resident-memory
	// watermark), or a wall-clock phase "explore-deadline" /
	// "product-deadline" / "trace-deadline".
	Phase string
	// Explored is the number of states (or steps, for "product-steps")
	// completed before exhaustion.
	Explored int
	// Limit is the configured budget. For wall-clock phases it is the
	// deadline in milliseconds.
	Limit int
}

// Error describes the exhausted budget.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("refine: %s budget exhausted after %d (limit %d); verdict unknown",
		e.Phase, e.Explored, e.Limit)
}

// deadlineCheckInterval is how many loop iterations pass between
// wall-clock probes in the exploration loops.
const deadlineCheckInterval = 1024

// NewChecker builds a Checker over the given environment and context.
func NewChecker(env *csp.Env, ctx *csp.Context) *Checker {
	return &Checker{Sem: csp.NewSemantics(env, ctx)}
}

// canceled returns the checker context's cancellation error wrapped
// with the phase that observed it, or nil. The wrapped error matches
// context.Canceled / context.DeadlineExceeded under errors.Is.
func (c *Checker) canceled(phase string) error {
	if c.Ctx == nil {
		return nil
	}
	if err := c.Ctx.Err(); err != nil {
		return fmt.Errorf("refine: %s canceled: %w", phase, err)
	}
	return nil
}

// deadline returns the absolute wall-clock deadline of a check starting
// now, or the zero time when the checker is unbounded.
func (c *Checker) deadline() time.Time {
	if c.MaxDuration <= 0 {
		return time.Time{}
	}
	return time.Now().Add(c.MaxDuration)
}

func (c *Checker) explore(p csp.Process) (*lts.LTS, error) {
	return c.exploreWithin(p, c.deadline(), "impl")
}

// exploreWithin explores under the state budget and an absolute
// wall-clock deadline (zero time means unbounded), consulting the
// shared cache when one is configured. role ("spec", "impl") selects
// the checkpoint subdirectory when checkpointing is on, so the two
// explorations of a refinement check never clobber each other's
// snapshots.
func (c *Checker) exploreWithin(p csp.Process, deadline time.Time, role string) (*lts.LTS, error) {
	opts := lts.Options{
		MaxStates:   c.MaxStates,
		Workers:     c.Workers,
		Obs:         c.Obs,
		Ctx:         c.Ctx,
		MaxMemBytes: c.MaxMemBytes,
	}
	if !deadline.IsZero() {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			remaining = time.Nanosecond
		}
		opts.MaxDuration = remaining
	}
	if c.CheckpointDir != "" {
		opts.Checkpoint = &lts.CheckpointOptions{
			Dir:         filepath.Join(c.CheckpointDir, role),
			EveryLevels: c.CheckpointEveryLevels,
		}
	}
	if c.SoftMemBytes > 0 {
		sp := statestore.NewSpill(statestore.SpillConfig{
			Dir:          c.SpillDir,
			SoftMemBytes: c.SoftMemBytes,
			Obs:          c.Obs,
		})
		defer sp.Close()
		opts.Store = sp
	}
	var l *lts.LTS
	var err error
	if c.Cache != nil {
		l, err = c.Cache.Explore(c.Sem, p, opts)
	} else {
		l, err = lts.Explore(c.Sem, p, opts)
	}
	if err != nil {
		var le *lts.LimitError
		if errors.As(err, &le) {
			return nil, &BudgetError{Phase: "explore", Explored: le.Explored, Limit: le.Limit}
		}
		var de *lts.DeadlineError
		if errors.As(err, &de) {
			return nil, &BudgetError{Phase: "explore-deadline", Explored: de.Explored,
				Limit: int(c.MaxDuration / time.Millisecond)}
		}
		var me *lts.MemoryError
		if errors.As(err, &me) {
			return nil, &BudgetError{Phase: "memory", Explored: me.Explored, Limit: int(me.Limit)}
		}
		return nil, err
	}
	return l, nil
}

// Refines checks spec ⊑ impl in the given model, i.e. FDR's
// `assert SPEC [T= IMPL`, `assert SPEC [F= IMPL` or
// `assert SPEC [FD= IMPL`.
func (c *Checker) Refines(spec, impl csp.Process, model Model) (res Result, err error) {
	deadline := c.deadline()
	span := c.Obs.StartSpan("refine.refines", obs.String("model", model.String()))
	checkStart := time.Now()
	defer func() {
		c.Obs.Counter("refine.checks").Inc()
		c.Obs.Counter("refine.product.pairs").Add(int64(res.ProductStates))
		c.Obs.Histogram("refine.check.ns").ObserveSince(checkStart)
		span.End(obs.String("verdict", verdictOf(res, err)),
			obs.Int("implStates", int64(res.ImplStates)),
			obs.Int("productStates", int64(res.ProductStates)))
	}()
	phase := span.Child("refine.explore-spec")
	specLTS, err := c.exploreWithin(spec, deadline, "spec")
	phase.End()
	if err != nil {
		return Result{}, fmt.Errorf("explore specification: %w", err)
	}
	phase = span.Child("refine.explore-impl")
	implLTS, err := c.exploreWithin(impl, deadline, "impl")
	phase.End()
	if err != nil {
		return Result{}, fmt.Errorf("explore implementation: %w", err)
	}
	if model == FailuresDivergences {
		// The implementation must be divergence-free; the failures
		// product is then decisive.
		if diverges, witness := implLTS.HasTauCycle(); diverges {
			return Result{
				Holds:          false,
				Counterexample: shortestTraceTo(implLTS, witness),
				Reason:         "implementation diverges: tau cycle at " + implLTS.Key(witness),
				ImplStates:     implLTS.NumStates(),
			}, nil
		}
		model = Failures
	}
	if model == Failures {
		// Normalisation computes acceptance sets from stable states, so
		// a divergent specification (a node with no stable member) has
		// no meaningful refusals. FDR imposes the same restriction.
		if diverges, witness := specLTS.HasTauCycle(); diverges {
			return Result{}, fmt.Errorf(
				"specification diverges (tau cycle at %s); stable-failures refinement requires a divergence-free specification",
				specLTS.Key(witness))
		}
	}
	phase = span.Child("refine.normalize")
	norm := c.normalize(specLTS)
	phase.End(obs.Int("specNodes", int64(norm.NumNodes())))
	phase = span.Child("refine.product")
	res, err = c.productCheck(specLTS, norm, implLTS, model, deadline)
	phase.End(obs.Int("productStates", int64(res.ProductStates)))
	if err != nil {
		return Result{}, err
	}
	res.ImplStates = implLTS.NumStates()
	res.SpecNodes = norm.NumNodes()
	return res, nil
}

// verdictOf renders a check outcome for span attributes: "holds",
// "fails", or the error class for indeterminate checks.
func verdictOf(res Result, err error) string {
	switch {
	case err == nil && res.Holds:
		return "holds"
	case err == nil:
		return "fails"
	default:
		var be *BudgetError
		if errors.As(err, &be) {
			return "budget:" + be.Phase
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return "canceled"
		}
		return "error"
	}
}

// normalize runs (or, with a cache, reuses) the subset construction.
func (c *Checker) normalize(l *lts.LTS) *lts.Normalized {
	if c.Cache != nil {
		return c.Cache.Normalize(l)
	}
	return lts.Normalize(l)
}

// RefinesFD checks failures-divergences refinement spec ⊑FD impl.
func (c *Checker) RefinesFD(spec, impl csp.Process) (Result, error) {
	return c.Refines(spec, impl, FailuresDivergences)
}

// RefinesTraces checks trace refinement spec ⊑T impl.
func (c *Checker) RefinesTraces(spec, impl csp.Process) (Result, error) {
	return c.Refines(spec, impl, Traces)
}

// RefinesFailures checks stable-failures refinement spec ⊑F impl.
func (c *Checker) RefinesFailures(spec, impl csp.Process) (Result, error) {
	return c.Refines(spec, impl, Failures)
}

// productState pairs an implementation state with a normalised
// specification node.
type productState struct {
	impl int
	spec int
}

type parentEdge struct {
	from productState
	ev   int // implementation label ID; -1 for the root
}

func (c *Checker) productCheck(specLTS *lts.LTS, norm *lts.Normalized, implLTS *lts.LTS, model Model, deadline time.Time) (Result, error) {
	// Map implementation label IDs to specification label IDs. Labels the
	// spec has never heard of map to -1 and immediately fail refinement
	// when performed.
	implToSpec := make([]int, len(implLTS.Events))
	for i, ev := range implLTS.Events {
		switch i {
		case lts.TauID:
			implToSpec[i] = lts.TauID
		case lts.TickID:
			implToSpec[i] = lts.TickID
		default:
			if id, ok := specLTS.EventID(ev); ok {
				implToSpec[i] = id
			} else {
				implToSpec[i] = -1
			}
		}
	}

	start := productState{impl: implLTS.Init, spec: norm.Init}
	visited := map[productState]parentEdge{start: {ev: -1}}
	queue := []productState{start}

	rebuild := func(ps productState, extra *csp.Event) csp.Trace {
		var rev []csp.Event
		cur := ps
		for {
			pe := visited[cur]
			if pe.ev == -1 {
				break
			}
			if pe.ev != lts.TauID {
				rev = append(rev, implLTS.EventByID(pe.ev))
			}
			cur = pe.from
		}
		trace := make(csp.Trace, 0, len(rev)+1)
		for i := len(rev) - 1; i >= 0; i-- {
			trace = append(trace, rev[i])
		}
		if extra != nil {
			trace = append(trace, *extra)
		}
		return trace
	}

	steps := 0
	visitedProduct := 0
	for len(queue) > 0 {
		ps := queue[0]
		queue = queue[1:]
		visitedProduct++
		if visitedProduct%deadlineCheckInterval == 0 {
			if err := c.canceled("product search"); err != nil {
				return Result{}, err
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				return Result{}, &BudgetError{Phase: "product-deadline", Explored: visitedProduct,
					Limit: int(c.MaxDuration / time.Millisecond)}
			}
		}

		if model == Failures && implLTS.IsStable(ps.impl) {
			offered := implLTS.Initials(ps.impl)
			mapped := make([]int, 0, len(offered))
			for _, o := range offered {
				mapped = append(mapped, implToSpec[o])
			}
			if !norm.RefusalPossible(ps.spec, mapped) {
				return Result{
					Holds:          false,
					Counterexample: rebuild(ps, nil),
					Reason: fmt.Sprintf(
						"implementation stable state refuses more than the specification allows (offers %s)",
						labelNames(implLTS, offered)),
					ProductStates: len(visited),
				}, nil
			}
		}

		for _, e := range implLTS.Edges[ps.impl] {
			steps++
			if c.MaxSteps > 0 && steps > c.MaxSteps {
				return Result{}, &BudgetError{Phase: "product-steps", Explored: steps - 1, Limit: c.MaxSteps}
			}
			if e.Ev == lts.TauID {
				next := productState{impl: e.To, spec: ps.spec}
				if _, seen := visited[next]; !seen {
					if c.MaxProductStates > 0 && len(visited) >= c.MaxProductStates {
						return Result{}, &BudgetError{Phase: "product", Explored: visitedProduct, Limit: c.MaxProductStates}
					}
					visited[next] = parentEdge{from: ps, ev: lts.TauID}
					queue = append(queue, next)
				}
				continue
			}
			specLabel := implToSpec[e.Ev]
			var specTo int
			ok := specLabel >= 0
			if ok {
				specTo, ok = norm.Accepts(ps.spec, specLabel)
			}
			if !ok {
				bad := implLTS.EventByID(e.Ev)
				return Result{
					Holds:          false,
					Counterexample: rebuild(ps, &bad),
					BadEvent:       &bad,
					Reason:         fmt.Sprintf("implementation performs %s, which the specification cannot", bad),
					ProductStates:  len(visited),
				}, nil
			}
			next := productState{impl: e.To, spec: specTo}
			if _, seen := visited[next]; !seen {
				if c.MaxProductStates > 0 && len(visited) >= c.MaxProductStates {
					return Result{}, &BudgetError{Phase: "product", Explored: visitedProduct, Limit: c.MaxProductStates}
				}
				visited[next] = parentEdge{from: ps, ev: e.Ev}
				queue = append(queue, next)
			}
		}
	}
	return Result{Holds: true, ProductStates: len(visited)}, nil
}

func labelNames(l *lts.LTS, labels []int) string {
	out := "{"
	for i, id := range labels {
		if i > 0 {
			out += ", "
		}
		out += l.EventByID(id).String()
	}
	return out + "}"
}

// DeadlockFree checks that no reachable state of p is a deadlock: a
// state with no transitions at all that is not the terminated process.
func (c *Checker) DeadlockFree(p csp.Process) (res Result, err error) {
	span := c.Obs.StartSpan("refine.deadlockfree")
	checkStart := time.Now()
	defer func() {
		c.Obs.Counter("refine.checks").Inc()
		c.Obs.Histogram("refine.check.ns").ObserveSince(checkStart)
		span.End(obs.String("verdict", verdictOf(res, err)),
			obs.Int("implStates", int64(res.ImplStates)))
	}()
	l, err := c.explore(p)
	if err != nil {
		return Result{}, err
	}
	// BFS with parent tracking for counterexample reconstruction.
	parents := make([]parentEdge, l.NumStates())
	seen := make([]bool, l.NumStates())
	seen[l.Init] = true
	parents[l.Init] = parentEdge{ev: -1}
	queue := []int{l.Init}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if _, omega := l.Procs[s].(csp.OmegaProc); len(l.Edges[s]) == 0 && !omega {
			return Result{
				Holds:          false,
				Counterexample: rebuildLinear(l, parents, s),
				Reason:         "deadlocked state reached: " + l.Key(s),
				ImplStates:     l.NumStates(),
			}, nil
		}
		for _, e := range l.Edges[s] {
			if !seen[e.To] {
				seen[e.To] = true
				parents[e.To] = parentEdge{from: productState{impl: s}, ev: e.Ev}
				queue = append(queue, e.To)
			}
		}
	}
	return Result{Holds: true, ImplStates: l.NumStates()}, nil
}

// DivergenceFree checks that p has no reachable tau cycle (livelock).
// A failed check carries the shortest trace leading to the divergent
// state as its counterexample.
func (c *Checker) DivergenceFree(p csp.Process) (res Result, err error) {
	span := c.Obs.StartSpan("refine.divergencefree")
	checkStart := time.Now()
	defer func() {
		c.Obs.Counter("refine.checks").Inc()
		c.Obs.Histogram("refine.check.ns").ObserveSince(checkStart)
		span.End(obs.String("verdict", verdictOf(res, err)),
			obs.Int("implStates", int64(res.ImplStates)))
	}()
	l, err := c.explore(p)
	if err != nil {
		return Result{}, err
	}
	if diverges, witness := l.HasTauCycle(); diverges {
		return Result{
			Holds:          false,
			Counterexample: shortestTraceTo(l, witness),
			Reason:         "divergent state (tau cycle) reachable: " + l.Key(witness),
			ImplStates:     l.NumStates(),
		}, nil
	}
	return Result{Holds: true, ImplStates: l.NumStates()}, nil
}

// shortestTraceTo reconstructs the visible-event trace of a shortest
// path from the initial state to the target — the witness trace for
// divergence counterexamples. Every state of an explored LTS is
// reachable from its initial state by construction.
func shortestTraceTo(l *lts.LTS, target int) csp.Trace {
	parents := make([]parentEdge, l.NumStates())
	seen := make([]bool, l.NumStates())
	seen[l.Init] = true
	parents[l.Init] = parentEdge{ev: -1}
	queue := []int{l.Init}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if s == target {
			break
		}
		for _, e := range l.Edges[s] {
			if !seen[e.To] {
				seen[e.To] = true
				parents[e.To] = parentEdge{from: productState{impl: s}, ev: e.Ev}
				queue = append(queue, e.To)
			}
		}
	}
	return rebuildLinear(l, parents, target)
}

func rebuildLinear(l *lts.LTS, parents []parentEdge, state int) csp.Trace {
	var rev []csp.Event
	cur := state
	for {
		pe := parents[cur]
		if pe.ev == -1 {
			break
		}
		if pe.ev != lts.TauID {
			rev = append(rev, l.EventByID(pe.ev))
		}
		cur = pe.from.impl
	}
	trace := make(csp.Trace, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		trace = append(trace, rev[i])
	}
	return trace
}
