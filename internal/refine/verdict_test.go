package refine

import (
	"errors"
	"testing"

	"repro/internal/csp"
	"repro/internal/lts"
)

// divergesAfterReqSw builds send.reqSw -> (LOOP \ {other}): a process
// that diverges only after one visible event, so a correct divergence
// witness trace is exactly {send.reqSw}.
func divergesAfterReqSw(env *csp.Env) csp.Process {
	env.MustDefine("LOOP", nil, csp.DoEvent("other", csp.Call("LOOP")))
	return csp.Send("send",
		csp.Hide(csp.Call("LOOP"), csp.EventsOf("other")), csp.Sym("reqSw"))
}

// TestDivergenceCounterexampleTracesToCycle is the regression test for
// the empty-witness bug: DivergenceFree must return the trace leading
// to the tau cycle, not an empty counterexample.
func TestDivergenceCounterexampleTracesToCycle(t *testing.T) {
	ctx, env := otaContext(t)
	c := NewChecker(env, ctx)
	res, err := c.DivergenceFree(divergesAfterReqSw(env))
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("process diverging after send.reqSw reported divergence-free")
	}
	want := csp.Trace{csp.Ev("send", csp.Sym("reqSw"))}
	if !res.Counterexample.Equal(want) {
		t.Errorf("counterexample = %s, want %s (witness trace to the tau cycle)",
			res.Counterexample, want)
	}
}

// TestFDDivergenceCounterexampleTracesToCycle covers the same bug on
// the [FD= path: when the implementation diverges, the verdict must
// carry the witness trace.
func TestFDDivergenceCounterexampleTracesToCycle(t *testing.T) {
	ctx, env := otaContext(t)
	env.MustDefine("SPEC", nil, csp.Send("send", csp.Call("SPEC"), csp.Sym("reqSw")))
	c := NewChecker(env, ctx)
	res, err := c.RefinesFD(csp.Call("SPEC"), divergesAfterReqSw(env))
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("divergent implementation accepted under [FD=")
	}
	want := csp.Trace{csp.Ev("send", csp.Sym("reqSw"))}
	if !res.Counterexample.Equal(want) {
		t.Errorf("counterexample = %s, want %s (witness trace to the tau cycle)",
			res.Counterexample, want)
	}
}

// TestImmediateDivergenceHasEmptyWitness pins the boundary case: a
// process divergent from its initial state is witnessed by the empty
// trace — legitimately empty, unlike the bug above.
func TestImmediateDivergenceHasEmptyWitness(t *testing.T) {
	ctx, env := otaContext(t)
	env.MustDefine("LOOP0", nil, csp.DoEvent("other", csp.Call("LOOP0")))
	c := NewChecker(env, ctx)
	res, err := c.DivergenceFree(csp.Hide(csp.Call("LOOP0"), csp.EventsOf("other")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("immediately divergent process reported divergence-free")
	}
	if len(res.Counterexample) != 0 {
		t.Errorf("counterexample = %s, want the empty trace", res.Counterexample)
	}
}

// TestProductBudgetExploredCountsVisitedPairs is the regression test
// for the inconsistent BudgetError.Explored: every "product" budget
// trip must report fully-visited (dequeued) pairs, not the discovered
// frontier. The implementation branches at its root, so the frontier
// outgrows the visit count: with a bound of 2, exactly one pair has
// been visited when the second discovery trips the budget.
func TestProductBudgetExploredCountsVisitedPairs(t *testing.T) {
	ctx, env := otaContext(t)
	env.MustDefine("BSPEC", nil, csp.ExtChoice(
		csp.Send("send", csp.Call("BSPEC"), csp.Sym("reqSw")),
		csp.Send("send", csp.Call("BSPEC"), csp.Sym("reqApp"))))
	impl := csp.ExtChoice(
		csp.Send("send", csp.Send("send", csp.Stop(), csp.Sym("reqSw")), csp.Sym("reqSw")),
		csp.Send("send", csp.Stop(), csp.Sym("reqApp")))
	c := NewChecker(env, ctx)
	c.MaxProductStates = 2
	_, err := c.RefinesTraces(csp.Call("BSPEC"), impl)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if be.Phase != "product" {
		t.Fatalf("phase = %q, want product", be.Phase)
	}
	if be.Explored != 1 {
		t.Errorf("Explored = %d, want 1 visited pair (the discovered frontier must not count)",
			be.Explored)
	}
}

// TestRefinesCacheSecondCheckIsFree: with a shared cache, repeating a
// refinement performs zero fresh explorations — the campaign-scale
// contract of the model cache.
func TestRefinesCacheSecondCheckIsFree(t *testing.T) {
	ctx, env := otaContext(t)
	spec := sp02(env)
	env.MustDefine("SYSTEM", nil,
		csp.Send("send", csp.Send("rec", csp.Call("SYSTEM"), csp.Sym("rptSw")), csp.Sym("reqSw")))
	impl := csp.Call("SYSTEM")

	c := NewChecker(env, ctx)
	c.Cache = lts.NewCache()
	first, err := c.RefinesTraces(spec, impl)
	if err != nil {
		t.Fatal(err)
	}
	_, missesAfterFirst := c.Cache.Stats()
	if missesAfterFirst != 2 {
		t.Fatalf("first check performed %d explorations, want 2 (spec + impl)", missesAfterFirst)
	}

	second, err := c.RefinesTraces(spec, impl)
	if err != nil {
		t.Fatal(err)
	}
	hits, missesAfterSecond := c.Cache.Stats()
	if missesAfterSecond != missesAfterFirst {
		t.Errorf("second check performed %d fresh explorations, want 0",
			missesAfterSecond-missesAfterFirst)
	}
	if hits != 2 {
		t.Errorf("hits = %d, want 2 (spec + impl served from cache)", hits)
	}
	if first.Holds != second.Holds || first.Counterexample.String() != second.Counterexample.String() {
		t.Error("cached check changed the verdict")
	}

	// A second checker sharing the cache also pays nothing.
	c2 := NewChecker(env, ctx)
	c2.Cache = c.Cache
	if _, err := c2.RefinesTraces(spec, impl); err != nil {
		t.Fatal(err)
	}
	if _, misses := c.Cache.Stats(); misses != missesAfterFirst {
		t.Error("a second checker sharing the cache re-explored the same terms")
	}
}
