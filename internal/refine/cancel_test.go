package refine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/csp"
	"repro/internal/leakcheck"
)

// bigSystem defines a counting implementation with `states` states and
// a permissive one-event spec, so refinement checks have room to be
// interrupted.
func bigSystem(t *testing.T, states int) (*csp.Env, *csp.Context, csp.Process, csp.Process) {
	t.Helper()
	ctx := csp.NewContext()
	ctx.MustChannel("tick", csp.IntRange{Lo: 0, Hi: states})
	env := csp.NewEnv()
	env.MustDefine("IMPL", []string{"n"},
		csp.Guard(csp.Binary{Op: csp.OpLt, L: csp.V("n"), R: csp.LitInt(states)},
			csp.Prefix("tick", []csp.CommField{csp.Out(csp.V("n"))},
				csp.Call("IMPL", csp.Binary{Op: csp.OpAdd, L: csp.V("n"), R: csp.LitInt(1)}))))
	env.MustDefine("SPEC", nil,
		csp.Prefix("tick", []csp.CommField{csp.In("x")}, csp.Call("SPEC")))
	return env, ctx, csp.Call("SPEC"), csp.Call("IMPL", csp.LitInt(0))
}

func TestCheckerPreCancelledContext(t *testing.T) {
	leakcheck.Check(t)
	env, ctx, spec, impl := bigSystem(t, 5000)
	c := NewChecker(env, ctx)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	c.Ctx = cctx
	_, err := c.RefinesTraces(spec, impl)
	if err == nil {
		t.Fatal("check with a cancelled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled under errors.Is", err)
	}
}

// TestCheckerCancelMidCheck cancels at randomized points during live
// refinement checks; every outcome must be either a clean result (the
// check won the race) or an error matching the context cause, with no
// goroutine left behind.
func TestCheckerCancelMidCheck(t *testing.T) {
	leakcheck.Check(t)
	env, ctx, spec, impl := bigSystem(t, 100000)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		c := NewChecker(env, ctx)
		c.MaxStates = 1 << 20
		c.Workers = 1 + trial%2
		cctx, cancel := context.WithTimeout(context.Background(),
			time.Duration(50+rng.Intn(3000))*time.Microsecond)
		c.Ctx = cctx
		_, err := c.RefinesTraces(spec, impl)
		cancel()
		if err == nil {
			continue // completed before the deadline: legal
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("trial %d: err = %v, want context.DeadlineExceeded", trial, err)
		}
	}
}

// TestCheckerUncancelledContextSameResult pins that a live context
// changes nothing about the verdict.
func TestCheckerUncancelledContextSameResult(t *testing.T) {
	env, ctx, spec, impl := bigSystem(t, 500)
	plain := NewChecker(env, ctx)
	res1, err := plain.RefinesTraces(spec, impl)
	if err != nil {
		t.Fatal(err)
	}
	withCtx := NewChecker(env, ctx)
	withCtx.Ctx = context.Background()
	res2, err := withCtx.RefinesTraces(spec, impl)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Holds != res2.Holds || res1.ImplStates != res2.ImplStates ||
		res1.SpecNodes != res2.SpecNodes || res1.ProductStates != res2.ProductStates ||
		fmt.Sprint(res1.Counterexample) != fmt.Sprint(res2.Counterexample) {
		t.Fatalf("results diverge with a live context:\n%+v\n%+v", res1, res2)
	}
}

// TestCheckerCancelProductSearch drives the cancellation into the
// product-automaton phase: both LTSs are explored in advance through
// the checker's cache, then the context is cancelled, so the only
// cooperative abort point left is the product search itself.
func TestCheckerCancelProductSearch(t *testing.T) {
	leakcheck.Check(t)
	env, ctx, spec, impl := bigSystem(t, 20000)
	c := NewChecker(env, ctx)
	c.MaxStates = 1 << 20
	cctx, cancel := context.WithCancel(context.Background())
	c.Ctx = cctx
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	_, err := c.RefinesTraces(spec, impl)
	cancel()
	if err == nil {
		t.Skip("check completed before the cancel fired")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
