package refine

import (
	"testing"
	"testing/quick"

	"repro/internal/csp"
	"repro/internal/lts"
)

// Property tests on the refinement relation itself, over randomly
// generated finite processes.

func propContext() *csp.Context {
	ctx := csp.NewContext()
	for _, name := range []string{"a", "b", "c"} {
		ctx.MustChannel(name)
	}
	return ctx
}

func genProc(seed uint64, depth int) csp.Process {
	events := []string{"a", "b", "c"}
	pick := seed % 7
	seed /= 7
	if depth <= 0 {
		if pick%2 == 0 {
			return csp.Stop()
		}
		return csp.DoEvent(events[seed%3], csp.Stop())
	}
	l := genProc(seed/3, depth-1)
	r := genProc(seed/5+1, depth-1)
	switch pick {
	case 0:
		return csp.Stop()
	case 1:
		return csp.Skip()
	case 2:
		return csp.DoEvent(events[seed%3], l)
	case 3:
		return csp.ExtChoice(l, r)
	case 4:
		return csp.IntChoice(l, r)
	case 5:
		return csp.Interleave(l, r)
	default:
		return csp.Seq(l, r)
	}
}

func TestRefinementReflexive(t *testing.T) {
	c := NewChecker(csp.NewEnv(), propContext())
	prop := func(seed uint64) bool {
		p := genProc(seed, 3)
		res, err := c.RefinesTraces(p, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Key(), err)
		}
		return res.Holds
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestFailuresRefinementReflexive(t *testing.T) {
	c := NewChecker(csp.NewEnv(), propContext())
	prop := func(seed uint64) bool {
		p := genProc(seed, 3)
		res, err := c.RefinesFailures(p, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Key(), err)
		}
		return res.Holds
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRefinementTransitive(t *testing.T) {
	c := NewChecker(csp.NewEnv(), propContext())
	prop := func(seed uint64) bool {
		p := genProc(seed, 2)
		q := genProc(seed/7+1, 2)
		r := genProc(seed/13+2, 2)
		pq, err := c.RefinesTraces(p, q)
		if err != nil {
			t.Fatal(err)
		}
		qr, err := c.RefinesTraces(q, r)
		if err != nil {
			t.Fatal(err)
		}
		if !pq.Holds || !qr.Holds {
			return true // antecedent false: vacuously true
		}
		pr, err := c.RefinesTraces(p, r)
		if err != nil {
			t.Fatal(err)
		}
		return pr.Holds
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestChoiceRefinesBothBranches(t *testing.T) {
	// P [] Q is trace-refined by P and by Q.
	c := NewChecker(csp.NewEnv(), propContext())
	prop := func(seed uint64) bool {
		p := genProc(seed, 2)
		q := genProc(seed/9+1, 2)
		choice := csp.ExtChoice(p, q)
		left, err := c.RefinesTraces(choice, p)
		if err != nil {
			t.Fatal(err)
		}
		right, err := c.RefinesTraces(choice, q)
		if err != nil {
			t.Fatal(err)
		}
		return left.Holds && right.Holds
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestRefinementAgreesWithTraceEnumeration cross-validates the
// product-automaton checker against direct bounded trace-set inclusion.
func TestRefinementAgreesWithTraceEnumeration(t *testing.T) {
	ctx := propContext()
	env := csp.NewEnv()
	c := NewChecker(env, ctx)
	sem := csp.NewSemantics(env, ctx)
	const bound = 6
	prop := func(seed uint64) bool {
		spec := genProc(seed, 2)
		impl := genProc(seed/11+1, 2)
		res, err := c.RefinesTraces(spec, impl)
		if err != nil {
			t.Fatal(err)
		}
		specT, err := csp.Traces(sem, spec, bound)
		if err != nil {
			t.Fatal(err)
		}
		implT, err := csp.Traces(sem, impl, bound)
		if err != nil {
			t.Fatal(err)
		}
		subset, witness := implT.SubsetOf(specT)
		if res.Holds != subset {
			t.Logf("spec=%s impl=%s checker=%v enumeration=%v witness=%s counterexample=%s",
				spec.Key(), impl.Key(), res.Holds, subset, witness, res.Counterexample)
			return false
		}
		// When refinement fails the counterexample must be a genuine
		// implementation trace that the spec cannot perform.
		if !res.Holds && len(res.Counterexample) <= bound {
			if !implT.Contains(res.Counterexample) {
				t.Logf("counterexample %s is not an impl trace", res.Counterexample)
				return false
			}
			if specT.Contains(res.Counterexample) {
				t.Logf("counterexample %s is allowed by the spec", res.Counterexample)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestNormalizationPreservesTraces checks that the determinised
// specification accepts exactly the original's traces.
func TestNormalizationPreservesTraces(t *testing.T) {
	ctx := propContext()
	env := csp.NewEnv()
	sem := csp.NewSemantics(env, ctx)
	const bound = 5
	prop := func(seed uint64) bool {
		p := genProc(seed, 3)
		l, err := lts.Explore(sem, p, lts.Options{})
		if err != nil {
			t.Fatal(err)
		}
		norm := lts.Normalize(l)
		ts, err := csp.Traces(sem, p, bound)
		if err != nil {
			t.Fatal(err)
		}
		// Every trace of p must be accepted by the DFA.
		for _, tr := range ts.Slice() {
			node := norm.Init
			ok := true
			for _, ev := range tr {
				id, known := l.EventID(ev)
				if !known {
					ok = false
					break
				}
				next, accepted := norm.Accepts(node, id)
				if !accepted {
					ok = false
					break
				}
				node = next
			}
			if !ok {
				t.Logf("process %s: trace %s rejected by normalisation", p.Key(), tr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
