package refine

import (
	"errors"
	"testing"
	"time"

	"repro/internal/csp"
)

func ev(ch, msg string) csp.Event {
	return csp.Event{Chan: ch, Args: []csp.Value{csp.Sym(msg)}}
}

func TestAcceptsTraceMembership(t *testing.T) {
	ctx, env := otaContext(t)
	impl := counterSystem(env)
	c := NewChecker(env, ctx)

	ok := []csp.Trace{
		{},
		{ev("send", "reqSw")},
		{ev("send", "reqSw"), ev("rec", "rptSw")},
		{ev("send", "reqSw"), ev("rec", "rptSw"), ev("send", "reqSw")},
	}
	for _, tr := range ok {
		res, err := c.AcceptsTrace(impl, tr)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Errorf("trace %s should be accepted (failed at %d)", tr, res.FailedAt)
		}
	}

	res, err := c.AcceptsTrace(impl, csp.Trace{ev("send", "reqSw"), ev("rec", "rptUpd")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("wrong reply should be rejected")
	}
	if res.FailedAt != 1 {
		t.Errorf("FailedAt = %d, want 1", res.FailedAt)
	}
	if res.BadEvent == nil || res.BadEvent.String() != "rec.rptUpd" {
		t.Errorf("BadEvent = %v, want rec.rptUpd", res.BadEvent)
	}
	if len(res.Allowed) != 1 || res.Allowed[0].String() != "rec.rptSw" {
		t.Errorf("Allowed = %v, want [rec.rptSw]", res.Allowed)
	}
}

func TestAcceptsTraceThroughHiding(t *testing.T) {
	ctx, env := otaContext(t)
	// HID = SYSTEM with the send direction hidden: only rec.rptSw is
	// visible, preceded by a tau for the hidden send.
	impl := counterSystem(env)
	sendSet := csp.EventsOf("send")
	hidden := csp.Hide(impl, sendSet)
	c := NewChecker(env, ctx)
	res, err := c.AcceptsTrace(hidden, csp.Trace{ev("rec", "rptSw"), ev("rec", "rptSw")})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Errorf("hidden-send trace should be accepted, failed at %d", res.FailedAt)
	}
}

func TestAcceptsTraceBudgets(t *testing.T) {
	ctx, env := otaContext(t)
	impl := bigCounter(t, ctx, env)
	c := NewChecker(env, ctx)
	c.MaxStates = 8
	long := make(csp.Trace, 0, 32)
	for i := 0; i < 32; i++ {
		long = append(long, csp.Event{Chan: "count", Args: []csp.Value{csp.Int(i)}})
	}
	_, err := c.AcceptsTrace(impl, long)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a *BudgetError", err)
	}
	if be.Phase != "trace" {
		t.Errorf("phase = %q, want trace", be.Phase)
	}

	c2 := NewChecker(env, ctx)
	c2.MaxDuration = time.Hour
	res, err := c2.AcceptsTrace(impl, long)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Errorf("counter trace should be accepted, failed at %d", res.FailedAt)
	}
}
