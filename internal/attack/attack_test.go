package attack

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/csp"
)

// sampleTree is the running example: gain access via OBD port or via
// telematics compromise, then (reprogram ECU AND suppress alarms, in any
// order).
func sampleTree() Tree {
	return Seq{Children: []Tree{
		Or{Children: []Tree{
			Leaf{Action: "accessOBD"},
			Seq{Children: []Tree{
				Leaf{Action: "compromiseTCU"},
				Leaf{Action: "pivotToCAN"},
			}},
		}},
		Par{Children: []Tree{
			Leaf{Action: "reprogramECU"},
			Leaf{Action: "suppressAlarm"},
		}},
	}}
}

func TestSequencesSemantics(t *testing.T) {
	seqs := Sequences(sampleTree())
	// 1 OBD-prefix or 1 TCU-prefix, each followed by 2 interleavings of
	// the parallel pair = 4 sequences.
	if len(seqs) != 4 {
		t.Fatalf("sequence count = %d, want 4: %v", len(seqs), seqs)
	}
	want := map[string]bool{
		"accessOBD,reprogramECU,suppressAlarm":                true,
		"accessOBD,suppressAlarm,reprogramECU":                true,
		"compromiseTCU,pivotToCAN,reprogramECU,suppressAlarm": true,
		"compromiseTCU,pivotToCAN,suppressAlarm,reprogramECU": true,
	}
	for _, s := range seqs {
		if !want[strings.Join(s, ",")] {
			t.Errorf("unexpected sequence %v", s)
		}
	}
}

func TestActions(t *testing.T) {
	got := Actions(sampleTree())
	want := []string{"accessOBD", "compromiseTCU", "pivotToCAN", "reprogramECU", "suppressAlarm"}
	if len(got) != len(want) {
		t.Fatalf("actions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("action %d = %s, want %s", i, got[i], want[i])
		}
	}
}

// completedTraces explores the CSP translation and returns the action
// sequences of its maximal (terminating) traces.
func completedTraces(t *testing.T, tree Tree) map[string]bool {
	t.Helper()
	ctx := csp.NewContext()
	if err := DeclareActions(ctx, "action", tree); err != nil {
		t.Fatal(err)
	}
	sem := csp.NewSemantics(csp.NewEnv(), ctx)
	proc := ToCSP(tree, "action")
	maxLen := len(Actions(tree)) + 1
	ts, err := csp.Traces(sem, proc, maxLen)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, tr := range ts.Slice() {
		if len(tr) == 0 || !tr[len(tr)-1].IsTick() {
			continue
		}
		parts := make([]string, 0, len(tr)-1)
		for _, ev := range tr[:len(tr)-1] {
			parts = append(parts, ev.Args[0].String())
		}
		out[strings.Join(parts, ",")] = true
	}
	return out
}

func TestToCSPMatchesSequenceSemantics(t *testing.T) {
	tree := sampleTree()
	got := completedTraces(t, tree)
	want := Sequences(tree)
	if len(got) != len(want) {
		t.Fatalf("CSP completed traces = %d, sequence semantics = %d\n%v", len(got), len(want), got)
	}
	for _, s := range want {
		if !got[strings.Join(s, ",")] {
			t.Errorf("CSP translation missing sequence %v", s)
		}
	}
}

// TestToCSPEquivalenceProperty property-tests the Cheah et al.
// equivalence on randomly generated attack trees.
func TestToCSPEquivalenceProperty(t *testing.T) {
	actions := []string{"a", "b", "c", "d"}
	// genTree builds a bounded random tree from a seed.
	var genTree func(seed int64, depth int, next *int) Tree
	genTree = func(seed int64, depth int, next *int) Tree {
		pick := seed % 4
		seed /= 4
		if depth == 0 || pick == 0 || *next >= len(actions) {
			a := actions[*next%len(actions)]
			*next++
			return Leaf{Action: a}
		}
		l := genTree(seed/2, depth-1, next)
		r := genTree(seed/3+1, depth-1, next)
		switch pick {
		case 1:
			return Seq{Children: []Tree{l, r}}
		case 2:
			return Par{Children: []Tree{l, r}}
		default:
			return Or{Children: []Tree{l, r}}
		}
	}
	prop := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		next := 0
		tree := genTree(seed, 2, &next)
		got := completedTraces(t, tree)
		want := Sequences(tree)
		if len(got) != len(want) {
			return false
		}
		for _, s := range want {
			if !got[strings.Join(s, ",")] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTreeLabels(t *testing.T) {
	if got := sampleTree().Label(); !strings.Contains(got, "accessOBD") {
		t.Errorf("label = %q", got)
	}
}

func TestIntruderLearnsAndReplays(t *testing.T) {
	ctx := csp.NewContext()
	packet := csp.EnumType("Pkt", "secret", "public")
	ctx.MustChannel("hear", packet)
	ctx.MustChannel("say", packet)
	env := csp.NewEnv()
	proc, err := BuildIntruder(BusConfig{
		Hear:     []string{"hear"},
		Say:      "say",
		Universe: packet,
		Forgeable: func(v csp.Value, _ csp.SetValue) bool {
			return v.Equal(csp.Sym("public"))
		},
	}, env)
	if err != nil {
		t.Fatal(err)
	}
	sem := csp.NewSemantics(env, ctx)
	ts, err := csp.Traces(sem, proc, 2)
	if err != nil {
		t.Fatal(err)
	}
	heardSecret := csp.Ev("hear", csp.Sym("secret"))
	saidSecret := csp.Ev("say", csp.Sym("secret"))
	saidPublic := csp.Ev("say", csp.Sym("public"))
	if !ts.Contains(csp.Trace{saidPublic}) {
		t.Error("intruder cannot forge the public packet")
	}
	if ts.Contains(csp.Trace{saidSecret}) {
		t.Error("intruder forged the secret packet without hearing it")
	}
	// After hearing the secret (a victim broadcast), replay works.
	if !ts.Contains(csp.Trace{heardSecret, saidSecret}) {
		t.Error("intruder cannot replay an overheard secret")
	}
}

func TestIntruderKnowledgeStates(t *testing.T) {
	packet := csp.EnumType("Pkt", "s1", "s2", "pub")
	cfg := BusConfig{
		Hear:     []string{"hear"},
		Say:      "say",
		Universe: packet,
		Forgeable: func(v csp.Value, _ csp.SetValue) bool {
			return v.Equal(csp.Sym("pub"))
		},
	}
	n, err := NumKnowledgeStates(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Subsets of {s1, s2}: 4 states.
	if n != 4 {
		t.Errorf("knowledge states = %d, want 4", n)
	}
}

func TestIntruderAlphabet(t *testing.T) {
	cfg := BusConfig{Hear: []string{"hear"}, Say: "say"}
	set := cfg.Alphabet()
	if !set.Contains(csp.Ev("hear", csp.Sym("x"))) || !set.Contains(csp.Ev("say", csp.Sym("x"))) {
		t.Error("alphabet missing hear/say channels")
	}
}

func TestIntruderStateLimit(t *testing.T) {
	syms := make([]csp.Sym, 16)
	for i := range syms {
		syms[i] = csp.Sym(strings.Repeat("x", i+1))
	}
	packet := csp.EnumType("Pkt", syms...)
	cfg := BusConfig{Hear: []string{"hear"}, Say: "say", Universe: packet, MaxStates: 100}
	if _, err := NumKnowledgeStates(cfg); err == nil {
		t.Error("expected knowledge-state explosion to be reported")
	}
}

func TestIntruderConfigValidation(t *testing.T) {
	if _, err := BuildIntruder(BusConfig{}, csp.NewEnv()); err == nil {
		t.Error("empty config accepted")
	}
}
