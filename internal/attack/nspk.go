package attack

import (
	"fmt"

	"repro/internal/csp"
)

// This file models the Needham-Schroeder public-key protocol (NSPK),
// the paper's motivating example for CSP-based security analysis
// (section II-B): the protocol was used for 18 years before Lowe's CSP
// analysis exposed a man-in-the-middle attack. We reproduce exactly
// that analysis with the library's own checker: the original protocol
// admits the attack (B commits to a session with A although A only ever
// talked to the intruder), and Lowe's fix (NSL: adding the responder's
// identity to message 2) eliminates it.
//
// The analysis is bounded in the standard way: one initiator session
// for A, one responder session for B, nonces {na, nb, ni}, and an
// intruder with bounded replay memory. The intruder is the network
// (Ryan & Schneider's construction): honest agents send on `snd` and
// receive on `dlv`, both mediated by the intruder.

// NSPKConfig configures the bounded analysis.
type NSPKConfig struct {
	// Fixed selects the Needham-Schroeder-Lowe variant (message 2 also
	// carries the responder identity).
	Fixed bool
	// MaxStore bounds how many undecryptable packets the intruder can
	// remember for replay (default 3: relaying a full genuine run
	// requires storing all three protocol messages).
	MaxStore int
}

// NSPKModel is the evaluated protocol model.
type NSPKModel struct {
	Cfg NSPKConfig
	Ctx *csp.Context
	Env *csp.Env
	// System hides the network: only initiate and commit are visible.
	System csp.Process
	// SystemVisible keeps snd/dlv visible for trace inspection.
	SystemVisible csp.Process
	// AuthSpec asserts: B never commits to a session with A unless A
	// initiated a session with B.
	AuthSpec csp.Process
	// IntruderStates is the number of generated knowledge states.
	IntruderStates int
}

// Protocol constants.
var (
	agentA = csp.Sym("a")
	agentB = csp.Sym("b")
	agentI = csp.Sym("i")

	nonceNA = csp.Sym("na")
	nonceNB = csp.Sym("nb")
	nonceNI = csp.Sym("ni")

	nspkNonces = []csp.Value{nonceNA, nonceNB, nonceNI}
)

// Packet constructors: the key field names the agent whose public key
// encrypts the payload.
func nspkM1(key, nonce, agent csp.Value) csp.Value {
	return csp.NewDotted("m1", key, nonce, agent)
}
func nspkM2(key, n1, n2 csp.Value) csp.Value {
	return csp.NewDotted("m2", key, n1, n2)
}
func nspkM2f(key, n1, n2, agent csp.Value) csp.Value {
	return csp.NewDotted("m2f", key, n1, n2, agent)
}
func nspkM3(key, nonce csp.Value) csp.Value {
	return csp.NewDotted("m3", key, nonce)
}

// BuildNSPK assembles the bounded NSPK (or NSL) model.
func BuildNSPK(cfg NSPKConfig) (m *NSPKModel, err error) {
	defer csp.RecoverBuild(&err)
	if cfg.MaxStore <= 0 {
		cfg.MaxStore = 3
	}
	ctx := csp.NewContext()
	env := csp.NewEnv()

	agent := csp.EnumType("Agent", "a", "b", "i")
	nonce := csp.EnumType("Nonce", "na", "nb", "ni")
	packet := csp.DataType{
		TypeName: "Packet",
		Ctors: []csp.Ctor{
			{Head: "m1", Fields: []csp.Type{agent, nonce, agent}},
			{Head: "m2", Fields: []csp.Type{agent, nonce, nonce}},
			{Head: "m2f", Fields: []csp.Type{agent, nonce, nonce, agent}},
			{Head: "m3", Fields: []csp.Type{agent, nonce}},
		},
	}
	for _, d := range []struct {
		name string
		ty   csp.Type
	}{{"Agent", agent}, {"Nonce", nonce}, {"Packet", packet}} {
		if err := ctx.DeclareType(d.name, d.ty); err != nil {
			return nil, err
		}
	}
	if err := ctx.DeclareChannel("snd", packet); err != nil {
		return nil, err
	}
	if err := ctx.DeclareChannel("dlv", packet); err != nil {
		return nil, err
	}
	if err := ctx.DeclareChannel("initiate", agent, agent); err != nil {
		return nil, err
	}
	if err := ctx.DeclareChannel("commit", agent, agent); err != nil {
		return nil, err
	}

	defineNSPKAgents(env, cfg.Fixed)

	intruder, states, err := buildNSPKIntruder(env, cfg)
	if err != nil {
		return nil, err
	}

	net := csp.EventsOf("snd", "dlv")
	honest := csp.Interleave(csp.Call("InitA"), csp.Call("RespB"))
	visible := csp.Par(honest, net, intruder)
	system := csp.Hide(visible, net)

	authSpec := defineNSPKAuthSpec(env)

	return &NSPKModel{
		Cfg:            cfg,
		Ctx:            ctx,
		Env:            env,
		System:         system,
		SystemVisible:  visible,
		AuthSpec:       authSpec,
		IntruderStates: states,
	}, nil
}

// defineNSPKAgents installs the honest initiator and responder roles.
func defineNSPKAgents(env *csp.Env, fixed bool) {
	// Initiator A: pick a partner (b or the intruder i), then run the
	// protocol once.
	mkInit := func(partner csp.Value) csp.Process {
		// Step 1: send {na, a} under the partner's key.
		// Step 2: accept {na, y} under a's key (NSL: also check the
		// responder identity equals the partner), then send {y} back.
		var recvBranches []csp.Process
		for _, y := range nspkNonces {
			var m2pkt csp.Value
			if fixed {
				m2pkt = nspkM2f(agentA, nonceNA, y, partner)
			} else {
				m2pkt = nspkM2(agentA, nonceNA, y)
			}
			step3 := csp.Send("snd", csp.Stop(), nspkM3(partner, y))
			recvBranches = append(recvBranches, csp.Send("dlv", step3, m2pkt))
		}
		return csp.Send("snd", csp.ExtChoice(recvBranches...), nspkM1(partner, nonceNA, agentA))
	}
	env.MustDefine("InitA", nil, csp.ExtChoice(
		csp.Send("initiate", mkInit(agentB), agentA, agentB),
		csp.Send("initiate", mkInit(agentI), agentA, agentI),
	))

	// Responder B: accept {n, c} under b's key from any claimed agent c,
	// reply {n, nb} (NSL: {n, nb, b}) under c's key, await {nb}, commit.
	var m1Branches []csp.Process
	for _, claimed := range []csp.Value{agentA, agentI} {
		for _, n := range nspkNonces {
			var reply csp.Value
			if fixed {
				reply = nspkM2f(claimed, n, nonceNB, agentB)
			} else {
				reply = nspkM2(claimed, n, nonceNB)
			}
			step := csp.Send("snd",
				csp.Send("dlv",
					csp.Send("commit", csp.Stop(), agentB, claimed),
					nspkM3(agentB, nonceNB)),
				reply)
			m1Branches = append(m1Branches, csp.Send("dlv", step, nspkM1(agentB, n, claimed)))
		}
	}
	env.MustDefine("RespB", nil, csp.ExtChoice(m1Branches...))
}

// defineNSPKAuthSpec installs the authentication property over the
// visible alphabet {initiate, commit}: commit.b.a may occur only after
// initiate.a.b; all other initiate/commit events are unconstrained.
func defineNSPKAuthSpec(env *csp.Env) csp.Process {
	// AFTER: everything allowed.
	after := csp.ExtChoice(
		csp.Recv("initiate", csp.Call("NSPK_AFTER"), "x1", "x2"),
		csp.Recv("commit", csp.Call("NSPK_AFTER"), "y1", "y2"),
	)
	env.MustDefine("NSPK_AFTER", nil, after)
	// BEFORE: any initiate (initiate.a.b unlocks everything); any commit
	// except commit.b.a, which is exactly the forbidden event.
	isAB := csp.Binary{
		Op: csp.OpAnd,
		L:  csp.Binary{Op: csp.OpEq, L: csp.V("i1"), R: csp.Lit{Val: agentA}},
		R:  csp.Binary{Op: csp.OpEq, L: csp.V("i2"), R: csp.Lit{Val: agentB}},
	}
	before := csp.ExtChoice(
		csp.Prefix("initiate",
			[]csp.CommField{csp.In("i1"), csp.In("i2")},
			csp.If(isAB, csp.Call("NSPK_AFTER"), csp.Call("NSPK_AUTH"))),
		commitExceptBA(),
	)
	env.MustDefine("NSPK_AUTH", nil, before)
	return csp.Call("NSPK_AUTH")
}

// commitExceptBA offers every commit event except commit.b.a, returning
// to the guarded state.
func commitExceptBA() csp.Process {
	var branches []csp.Process
	agents := []csp.Value{agentA, agentB, agentI}
	for _, c1 := range agents {
		for _, c2 := range agents {
			if c1.Equal(agentB) && c2.Equal(agentA) {
				continue
			}
			branches = append(branches, csp.Send("commit", csp.Call("NSPK_AUTH"), c1, c2))
		}
	}
	return csp.ExtChoice(branches...)
}

// --- The bounded NSPK intruder ------------------------------------------

// nspkKnowledge is the intruder's canonical knowledge: known nonces plus
// stored (undecryptable) packets for replay.
type nspkKnowledge struct {
	set csp.SetValue
}

func (k nspkKnowledge) key() string { return k.set.String() }

func (k nspkKnowledge) knowsNonce(n csp.Value) bool { return k.set.Contains(n) }

func (k nspkKnowledge) nonceCount() int {
	cnt := 0
	for _, v := range k.set.Elems() {
		if _, ok := v.(csp.Sym); ok {
			cnt++
		}
	}
	return cnt
}

func (k nspkKnowledge) storedCount() int { return k.set.Len() - k.nonceCount() }

// packetFields decomposes a packet into its key agent and nonce fields.
func packetFields(p csp.Value) (key csp.Value, nonces []csp.Value, ok bool) {
	d, isDotted := p.(csp.Dotted)
	if !isDotted || len(d.Args) < 2 {
		return nil, nil, false
	}
	key = d.Args[0]
	switch d.Head {
	case "m1":
		nonces = []csp.Value{d.Args[1]}
	case "m2":
		nonces = []csp.Value{d.Args[1], d.Args[2]}
	case "m2f":
		nonces = []csp.Value{d.Args[1], d.Args[2]}
	case "m3":
		nonces = []csp.Value{d.Args[1]}
	default:
		return nil, nil, false
	}
	return key, nonces, true
}

// canConstruct reports whether the intruder can build the packet from
// known nonces (public keys are public: it can encrypt anything it can
// assemble).
func (k nspkKnowledge) canConstruct(p csp.Value) bool {
	_, nonces, ok := packetFields(p)
	if !ok {
		return false
	}
	for _, n := range nonces {
		if !k.knowsNonce(n) {
			return false
		}
	}
	return true
}

// canSay reports whether the intruder can put the packet on dlv.
func (k nspkKnowledge) canSay(p csp.Value) bool {
	return k.canConstruct(p) || k.set.Contains(p)
}

// learn returns the knowledge after overhearing p on snd.
func (k nspkKnowledge) learn(p csp.Value, maxStore int) nspkKnowledge {
	key, nonces, ok := packetFields(p)
	if !ok {
		return k
	}
	if key.Equal(agentI) {
		// Encrypted for the intruder: decrypt and learn the nonces.
		out := k.set
		for _, n := range nonces {
			out = out.Add(n)
		}
		return nspkKnowledge{set: out}
	}
	if k.canConstruct(p) || k.set.Contains(p) {
		return k // nothing new
	}
	if k.storedCount() >= maxStore {
		return k // bounded replay memory
	}
	return nspkKnowledge{set: k.set.Add(p)}
}

// buildNSPKIntruder compiles the knowledge-state machine into process
// definitions, returning the initial process and the state count.
func buildNSPKIntruder(env *csp.Env, cfg NSPKConfig) (csp.Process, int, error) {
	hearUniverse := nspkHonestEmissions(cfg.Fixed)
	sayUniverse := nspkHonestExpectations(cfg.Fixed)

	type state struct {
		k    nspkKnowledge
		name string
	}
	index := map[string]*state{}
	var order []*state
	intern := func(k nspkKnowledge) *state {
		key := k.key()
		if s, ok := index[key]; ok {
			return s
		}
		s := &state{k: k, name: fmt.Sprintf("NSPKINT_%d", len(order))}
		index[key] = s
		order = append(order, s)
		return s
	}
	init := intern(nspkKnowledge{set: csp.NewSet(nonceNI)})
	for i := 0; i < len(order); i++ {
		if len(order) > 4096 {
			return nil, 0, fmt.Errorf("nspk intruder: state explosion")
		}
		s := order[i]
		for _, p := range hearUniverse {
			intern(s.k.learn(p, cfg.MaxStore))
		}
	}
	for _, s := range order {
		var branches []csp.Process
		for _, p := range hearUniverse {
			ns := intern(s.k.learn(p, cfg.MaxStore))
			branches = append(branches, csp.Send("snd", csp.Call(ns.name), p))
		}
		for _, p := range sayUniverse {
			if s.k.canSay(p) {
				branches = append(branches, csp.Send("dlv", csp.Call(s.name), p))
			}
		}
		if err := env.Define(s.name, nil, csp.ExtChoice(branches...)); err != nil {
			return nil, 0, err
		}
	}
	return csp.Call(init.name), len(order), nil
}

// nspkHonestEmissions enumerates every packet the honest agents can put
// on snd, the intruder's hearing universe.
func nspkHonestEmissions(fixed bool) []csp.Value {
	var out []csp.Value
	// A's message 1, to either partner.
	for _, partner := range []csp.Value{agentB, agentI} {
		out = append(out, nspkM1(partner, nonceNA, agentA))
	}
	// A's message 3: {y} under the partner's key, any learned y.
	for _, partner := range []csp.Value{agentB, agentI} {
		for _, y := range nspkNonces {
			out = append(out, nspkM3(partner, y))
		}
	}
	// B's message 2 to claimed agent c, echoing nonce n.
	for _, c := range []csp.Value{agentA, agentI} {
		for _, n := range nspkNonces {
			if fixed {
				out = append(out, nspkM2f(c, n, nonceNB, agentB))
			} else {
				out = append(out, nspkM2(c, n, nonceNB))
			}
		}
	}
	return out
}

// nspkHonestExpectations enumerates every packet an honest agent is
// willing to accept from dlv, the intruder's saying universe.
func nspkHonestExpectations(fixed bool) []csp.Value {
	var out []csp.Value
	// A accepts message 2 under its key with its nonce na.
	for _, y := range nspkNonces {
		if fixed {
			for _, partner := range []csp.Value{agentB, agentI} {
				out = append(out, nspkM2f(agentA, nonceNA, y, partner))
			}
		} else {
			out = append(out, nspkM2(agentA, nonceNA, y))
		}
	}
	// B accepts message 1 under its key from any claimed agent.
	for _, c := range []csp.Value{agentA, agentI} {
		for _, n := range nspkNonces {
			out = append(out, nspkM1(agentB, n, c))
		}
	}
	// B accepts message 3 with its nonce.
	out = append(out, nspkM3(agentB, nonceNB))
	return out
}
