package attack

import (
	"fmt"
	"sort"

	"repro/internal/csp"
)

// BusConfig describes a Dolev-Yao-style intruder on a broadcast bus
// (the natural model of a CAN attacker: it overhears every frame and
// may inject frames it can construct).
//
// Channels are directional so that every event has exactly one
// producer — the standard discipline that prevents "ghost" events
// arising from all-input synchronisation: victims produce on the Hear
// channels (the intruder and other receivers input them), and the
// intruder alone produces on the Say channel (victims input it).
//
// The intruder's knowledge grows as it overhears; the reachable
// knowledge states are enumerated at build time and compiled into one
// process definition per state, so the resulting model is finite.
type BusConfig struct {
	// Hear lists the channels the intruder overhears (each with one
	// field of type Universe).
	Hear []string
	// Say is the channel the intruder injects on (one field of type
	// Universe).
	Say string
	// Universe is the finite packet domain.
	Universe csp.Type
	// Initial is the intruder's initial knowledge.
	Initial []csp.Value
	// Forgeable reports whether the intruder can construct the packet
	// from its current knowledge regardless of having overheard it
	// (e.g. any plaintext packet, or any packet MACed with a key the
	// intruder holds). Overheard relevant packets are always replayable.
	Forgeable func(v csp.Value, knowledge csp.SetValue) bool
	// Learn returns the knowledge gained from overhearing a packet
	// (including the packet itself if replay should be possible). A nil
	// Learn defaults to learning the packet itself.
	Learn func(v csp.Value, knowledge csp.SetValue) []csp.Value
	// Relevant filters what is actually recorded in the knowledge set:
	// packets the intruder could forge anyway gain it nothing, so
	// tracking them only blows up the state space. The default keeps
	// exactly the non-forgeable packets. Narrow it further (e.g. to the
	// packets the victim acts on) to keep models small.
	Relevant func(v csp.Value, knowledge csp.SetValue) bool
	// NamePrefix distinguishes multiple intruders in one environment
	// (default "INTRUDER").
	NamePrefix string
	// MaxStates bounds knowledge-state enumeration (default 4096).
	MaxStates int
}

// Alphabet returns the event set the intruder must synchronise on when
// composed with the victim system: all Hear channels plus the Say
// channel.
func (cfg BusConfig) Alphabet() *csp.EventSet {
	set := csp.EventsOf(cfg.Hear...)
	if cfg.Say != "" {
		set.AddChannel(cfg.Say)
	}
	return set
}

// BuildIntruder compiles the intruder into process definitions in env
// and returns the initial process. The intruder is always willing to
// overhear any event on the Hear channels, so composing it synchronised
// on them never blocks the legitimate nodes; it injects on Say only
// packets it can currently produce.
func BuildIntruder(cfg BusConfig, env *csp.Env) (csp.Process, error) {
	if len(cfg.Hear) == 0 || cfg.Say == "" || cfg.Universe == nil {
		return nil, fmt.Errorf("intruder: Hear, Say and Universe must be set")
	}
	prefix := cfg.NamePrefix
	if prefix == "" {
		prefix = "INTRUDER"
	}
	maxStates := cfg.MaxStates
	if maxStates <= 0 {
		maxStates = 4096
	}
	learn := cfg.Learn
	if learn == nil {
		learn = func(v csp.Value, _ csp.SetValue) []csp.Value { return []csp.Value{v} }
	}
	forgeable := cfg.Forgeable
	if forgeable == nil {
		forgeable = func(csp.Value, csp.SetValue) bool { return false }
	}
	relevant := cfg.Relevant
	if relevant == nil {
		relevant = func(v csp.Value, k csp.SetValue) bool { return !forgeable(v, k) }
	}

	universe := cfg.Universe.Values()

	// gain computes the canonical knowledge set after overhearing v.
	gain := func(k csp.SetValue, v csp.Value) csp.SetValue {
		next := k
		for _, g := range learn(v, k) {
			if relevant(g, k) {
				next = next.Add(g)
			}
		}
		return next
	}

	// Enumerate reachable knowledge states.
	type state struct {
		knowledge csp.SetValue
		name      string
	}
	index := map[string]*state{}
	var order []*state
	intern := func(k csp.SetValue) (*state, bool) {
		key := k.String()
		if s, ok := index[key]; ok {
			return s, false
		}
		s := &state{knowledge: k, name: fmt.Sprintf("%s_%d", prefix, len(order))}
		index[key] = s
		order = append(order, s)
		return s, true
	}
	init, _ := intern(csp.NewSet(cfg.Initial...))
	for i := 0; i < len(order); i++ {
		if len(order) > maxStates {
			return nil, fmt.Errorf("intruder: knowledge-state enumeration exceeded %d states", maxStates)
		}
		s := order[i]
		for _, v := range universe {
			intern(gain(s.knowledge, v))
		}
	}

	// Emit one definition per knowledge state.
	for _, s := range order {
		var branches []csp.Process
		// Overhear: accept any packet on any hear channel, moving to the
		// learned state. Group packets by destination state, using a
		// restricted input per group to keep the term small; sort group
		// names so the generated model is deterministic.
		hearTargets := map[string][]csp.Value{}
		hearState := map[string]*state{}
		for _, v := range universe {
			ns, _ := intern(gain(s.knowledge, v))
			hearTargets[ns.name] = append(hearTargets[ns.name], v)
			hearState[ns.name] = ns
		}
		groupNames := make([]string, 0, len(hearTargets))
		for name := range hearTargets {
			groupNames = append(groupNames, name)
		}
		sort.Strings(groupNames)
		for _, ch := range cfg.Hear {
			for _, name := range groupNames {
				packets := hearTargets[name]
				ns := hearState[name]
				pred := csp.MemberExpr{
					Elem: csp.V("x"),
					Set:  csp.Lit{Val: csp.NewSet(packets...)},
				}
				branches = append(branches, csp.Prefix(ch,
					[]csp.CommField{csp.InSuchThat("x", pred)},
					csp.Call(ns.name)))
			}
		}
		// Inject: any packet the intruder can say in this state.
		for _, v := range universe {
			if s.knowledge.Contains(v) || forgeable(v, s.knowledge) {
				branches = append(branches, csp.Send(cfg.Say, csp.Call(s.name), v))
			}
		}
		if err := env.Define(s.name, nil, csp.ExtChoice(branches...)); err != nil {
			return nil, fmt.Errorf("intruder: %w", err)
		}
	}
	return csp.Call(init.name), nil
}

// NumKnowledgeStates reports how many knowledge states BuildIntruder
// would generate for the configuration, without defining anything.
func NumKnowledgeStates(cfg BusConfig) (int, error) {
	probe := csp.NewEnv()
	if _, err := BuildIntruder(cfg, probe); err != nil {
		return 0, err
	}
	return len(probe.Names()), nil
}
