// Package attack implements the attacker-modelling techniques of
// section IV-E of the paper: attack trees translated into semantically
// equivalent CSP processes (after Cheah et al., WISTP 2017), and a
// Dolev-Yao-style intruder process generator for broadcast-bus (CAN)
// networks, for composition with ECU implementation models.
package attack

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/csp"
)

// Tree is a node of an attack tree, interpreted as a series-parallel
// (SP) graph whose sequence-set semantics is defined in the paper:
//
//	(a)         = { <a> }
//	(G1 || G2)  = { s ∈ s1 ||| s2 }          (parallel / AND-concurrent)
//	(G1 · G2)   = { s1 ^ s2 }                (sequential AND)
//	({G1..Gn})  = ∪ (Gi)                     (OR: alternative attacks)
type Tree interface {
	isTree()
	// Label returns a short description for display.
	Label() string
}

// Leaf is a single attack action.
type Leaf struct {
	Action string
}

func (Leaf) isTree() {}

// Label returns the action name.
func (l Leaf) Label() string { return l.Action }

// Seq is sequential conjunction: every child must be completed in
// order (the G1 · G2 composition).
type Seq struct {
	Children []Tree
}

func (Seq) isTree() {}

// Label renders the children joined by "·".
func (s Seq) Label() string { return joinLabels(s.Children, " · ") }

// Par is parallel conjunction: all children must be completed, in any
// interleaving (the G1 || G2 composition).
type Par struct {
	Children []Tree
}

func (Par) isTree() {}

// Label renders the children joined by "||".
func (p Par) Label() string { return joinLabels(p.Children, " || ") }

// Or is disjunction: any one child completes the attack (the set-of-
// graphs generalisation).
type Or struct {
	Children []Tree
}

func (Or) isTree() {}

// Label renders the children joined by "|".
func (o Or) Label() string { return joinLabels(o.Children, " | ") }

func joinLabels(children []Tree, sep string) string {
	parts := make([]string, len(children))
	for i, c := range children {
		parts[i] = "(" + c.Label() + ")"
	}
	return strings.Join(parts, sep)
}

// Actions returns the sorted set of leaf actions in the tree.
func Actions(t Tree) []string {
	set := map[string]bool{}
	var walk func(Tree)
	walk = func(n Tree) {
		switch x := n.(type) {
		case Leaf:
			set[x.Action] = true
		case Seq:
			for _, c := range x.Children {
				walk(c)
			}
		case Par:
			for _, c := range x.Children {
				walk(c)
			}
		case Or:
			for _, c := range x.Children {
				walk(c)
			}
		}
	}
	walk(t)
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Sequences computes the SP-graph sequence-set semantics of the tree:
// the set of action sequences that complete the attack. This is the
// reference against which the CSP translation is property-tested.
func Sequences(t Tree) [][]string {
	switch x := t.(type) {
	case Leaf:
		return [][]string{{x.Action}}
	case Seq:
		out := [][]string{{}}
		for _, c := range x.Children {
			var next [][]string
			for _, prefix := range out {
				for _, suffix := range Sequences(c) {
					seq := make([]string, 0, len(prefix)+len(suffix))
					seq = append(seq, prefix...)
					seq = append(seq, suffix...)
					next = append(next, seq)
				}
			}
			out = next
		}
		return dedupeSeqs(out)
	case Par:
		out := [][]string{{}}
		for _, c := range x.Children {
			var next [][]string
			for _, left := range out {
				for _, right := range Sequences(c) {
					next = append(next, interleavings(left, right)...)
				}
			}
			out = next
		}
		return dedupeSeqs(out)
	case Or:
		var out [][]string
		for _, c := range x.Children {
			out = append(out, Sequences(c)...)
		}
		return dedupeSeqs(out)
	}
	return nil
}

// interleavings enumerates all merges of a and b preserving each side's
// order (the trace-interleaving operator ||| of section IV-A).
func interleavings(a, b []string) [][]string {
	if len(a) == 0 {
		return [][]string{append([]string(nil), b...)}
	}
	if len(b) == 0 {
		return [][]string{append([]string(nil), a...)}
	}
	var out [][]string
	for _, rest := range interleavings(a[1:], b) {
		seq := append([]string{a[0]}, rest...)
		out = append(out, seq)
	}
	for _, rest := range interleavings(a, b[1:]) {
		seq := append([]string{b[0]}, rest...)
		out = append(out, seq)
	}
	return out
}

func dedupeSeqs(in [][]string) [][]string {
	seen := map[string]bool{}
	var out [][]string
	for _, s := range in {
		k := strings.Join(s, "\x00")
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i], "\x00") < strings.Join(out[j], "\x00")
	})
	return out
}

// ToCSP translates the attack tree into a CSP process over the given
// action channel, following the equivalence of Cheah et al.: leaves
// become event prefixes, sequential composition becomes ;, parallel
// composition becomes |||, and alternatives become external choice. The
// resulting process performs exactly the sequence set of the tree and
// then terminates (SKIP).
//
// The channel must be declared with one field whose type contains every
// action symbol; DeclareActions does this.
func ToCSP(t Tree, actionChan string) csp.Process {
	switch x := t.(type) {
	case Leaf:
		return csp.Send(actionChan, csp.Skip(), csp.Sym(x.Action))
	case Seq:
		parts := make([]csp.Process, len(x.Children))
		for i, c := range x.Children {
			parts[i] = ToCSP(c, actionChan)
		}
		return csp.Seq(parts...)
	case Par:
		parts := make([]csp.Process, len(x.Children))
		for i, c := range x.Children {
			parts[i] = ToCSP(c, actionChan)
		}
		return csp.Interleave(parts...)
	case Or:
		parts := make([]csp.Process, len(x.Children))
		for i, c := range x.Children {
			parts[i] = ToCSP(c, actionChan)
		}
		return csp.ExtChoice(parts...)
	}
	return csp.Stop()
}

// DeclareActions declares the action channel for a tree in the context,
// typed by an enumeration of the tree's actions.
func DeclareActions(ctx *csp.Context, actionChan string, t Tree) error {
	syms := make([]csp.Sym, 0)
	for _, a := range Actions(t) {
		syms = append(syms, csp.Sym(a))
	}
	ty := csp.EnumType("Actions_"+actionChan, syms...)
	if err := ctx.DeclareType(ty.TypeName, ty); err != nil {
		return fmt.Errorf("declare action type: %w", err)
	}
	return ctx.DeclareChannel(actionChan, ty)
}
