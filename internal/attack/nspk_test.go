package attack

import (
	"strings"
	"testing"

	"repro/internal/csp"
	"repro/internal/refine"
)

func TestNSPKGenuineRunPossible(t *testing.T) {
	m, err := BuildNSPK(NSPKConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sem := csp.NewSemantics(m.Env, m.Ctx)
	// The honest run must exist: A initiates with B and B commits to A.
	want := csp.Trace{
		csp.Ev("initiate", csp.Sym("a"), csp.Sym("b")),
		csp.Ev("commit", csp.Sym("b"), csp.Sym("a")),
	}
	ok, err := csp.HasTrace(sem, m.System, want)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("the genuine protocol run is not a trace of the system")
	}
}

func TestNSPKLoweAttackFound(t *testing.T) {
	m, err := BuildNSPK(NSPKConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c := refine.NewChecker(m.Env, m.Ctx)
	res, err := c.RefinesTraces(m.AuthSpec, m.System)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("NSPK authentication wrongly verified: Lowe's attack not found")
	}
	// The counterexample is the man-in-the-middle: A talks to the
	// intruder, yet B commits to a session with A.
	got := res.Counterexample.String()
	if !strings.Contains(got, "initiate.a.i") || !strings.Contains(got, "commit.b.a") {
		t.Errorf("attack trace = %s, want A->I initiation followed by B committing to A", got)
	}
	if strings.Contains(got, "initiate.a.b") {
		t.Errorf("attack trace %s should not contain a genuine initiation", got)
	}
}

func TestNSLFixVerified(t *testing.T) {
	m, err := BuildNSPK(NSPKConfig{Fixed: true})
	if err != nil {
		t.Fatal(err)
	}
	c := refine.NewChecker(m.Env, m.Ctx)
	res, err := c.RefinesTraces(m.AuthSpec, m.System)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("NSL wrongly rejected; counterexample %s (%s)", res.Counterexample, res.Reason)
	}
	// And the genuine run still works under the fix.
	sem := csp.NewSemantics(m.Env, m.Ctx)
	want := csp.Trace{
		csp.Ev("initiate", csp.Sym("a"), csp.Sym("b")),
		csp.Ev("commit", csp.Sym("b"), csp.Sym("a")),
	}
	ok, err := csp.HasTrace(sem, m.System, want)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("NSL broke the genuine protocol run")
	}
}

func TestNSPKIntruderIsBounded(t *testing.T) {
	m, err := BuildNSPK(NSPKConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.IntruderStates < 2 || m.IntruderStates > 4096 {
		t.Errorf("intruder states = %d", m.IntruderStates)
	}
}

func TestNSPKKnowledgeSemantics(t *testing.T) {
	k := nspkKnowledge{set: csp.NewSet(nonceNI)}
	// Can construct packets from its own nonce.
	if !k.canConstruct(nspkM1(agentB, nonceNI, agentA)) {
		t.Error("cannot construct m1 with known nonce")
	}
	if k.canConstruct(nspkM1(agentB, nonceNA, agentA)) {
		t.Error("constructed m1 with unknown nonce")
	}
	// Learning a packet encrypted for the intruder reveals the nonce.
	k2 := k.learn(nspkM1(agentI, nonceNA, agentA), 2)
	if !k2.knowsNonce(nonceNA) {
		t.Error("did not decrypt its own traffic")
	}
	// Learning an undecryptable packet stores it for replay (bounded).
	pkt := nspkM2(agentA, nonceNA, nonceNB)
	k3 := k.learn(pkt, 1)
	if !k3.canSay(pkt) {
		t.Error("cannot replay stored packet")
	}
	other := nspkM2(agentA, nonceNB, nonceNB)
	k4 := k3.learn(other, 1)
	if k4.canSay(other) {
		t.Error("replay memory bound not enforced")
	}
}
