// Package core is the library's top-level façade: the paper's concept
// of operations (Figure 1) as a reusable pipeline. A Pipeline takes the
// CAPL sources of one or more ECU network nodes plus a CSPm
// specification section (security-property processes, system
// composition and assertions), extracts an implementation model from
// each node, composes everything into one CSPm script, evaluates it and
// runs the assertions through the FDR-style checker.
//
// It also cross-validates: the same CAPL sources can be executed on the
// simulated CAN bus (the CANoe stand-in) and the observed frame trace
// checked for membership in the extracted CSP model's trace set.
package core

import (
	"fmt"
	"strings"

	"repro/internal/canbus"
	"repro/internal/canoe"
	"repro/internal/capl"
	"repro/internal/csp"
	"repro/internal/cspm"
	"repro/internal/fdr"
	"repro/internal/translate"
)

// NodeSpec describes one ECU node entering the pipeline.
type NodeSpec struct {
	// Name is the CSPm process name for the node (e.g. "ECU").
	Name string
	// Source is the node's CAPL program.
	Source string
	// In and Out are the CSPm channels for received and emitted
	// messages, from this node's perspective.
	In, Out string
	// Rename maps CAPL message variable names to CSPm constructors.
	Rename map[string]string
}

// Pipeline is a configured end-to-end verification run.
type Pipeline struct {
	// Nodes lists the implementation models to extract. All nodes share
	// one message datatype; the first node's translation carries the
	// declarations.
	Nodes []NodeSpec
	// Spec is CSPm source appended after the extracted models:
	// specification processes, the composed SYSTEM, and assert lines.
	Spec string
	// MaxStates bounds each LTS exploration (0 = default).
	MaxStates int
}

// Report is the outcome of a pipeline run.
type Report struct {
	// NodeModels holds the per-node extracted CSPm text, by node name.
	NodeModels map[string]string
	// CombinedSource is the full evaluated script.
	CombinedSource string
	// Model is the evaluated script.
	Model *cspm.Model
	// Results holds one entry per assertion, in script order.
	Results []fdr.AssertResult
	// Warnings aggregates translator abstraction warnings.
	Warnings []string
}

// AllHold reports whether every assertion passed.
func (r *Report) AllHold() bool {
	for _, res := range r.Results {
		if !res.Result.Holds {
			return false
		}
	}
	return true
}

// Failed returns the assertions that did not hold.
func (r *Report) Failed() []fdr.AssertResult {
	var out []fdr.AssertResult
	for _, res := range r.Results {
		if !res.Result.Holds {
			out = append(out, res)
		}
	}
	return out
}

// Run executes the pipeline: parse, extract, compose, evaluate, check.
func (p *Pipeline) Run() (*Report, error) {
	if len(p.Nodes) == 0 {
		return nil, fmt.Errorf("core: pipeline needs at least one node")
	}
	report := &Report{NodeModels: map[string]string{}}

	// First pass: parse every node and collect the shared message and
	// timer universes.
	progs := make([]*capl.Program, len(p.Nodes))
	msgSet := map[string]bool{}
	var allMsgs []string
	timerSet := map[string]bool{}
	var allTimers []string
	for i, spec := range p.Nodes {
		prog, err := capl.Parse(spec.Source)
		if err != nil {
			return nil, fmt.Errorf("core: parse node %s: %w", spec.Name, err)
		}
		progs[i] = prog
		for _, d := range prog.MessageDecls() {
			name := d.Name
			if renamed, ok := spec.Rename[d.Name]; ok {
				name = renamed
			}
			if !msgSet[name] {
				msgSet[name] = true
				allMsgs = append(allMsgs, name)
			}
		}
		for _, v := range prog.Variables {
			if v.Type.Base == capl.TypeMsTimer || v.Type.Base == capl.TypeTimer {
				if !timerSet[v.Name] {
					timerSet[v.Name] = true
					allTimers = append(allTimers, v.Name)
				}
			}
		}
	}

	// Second pass: translate each node; only the first emits
	// declarations.
	var parts []string
	for i, spec := range p.Nodes {
		opts := translate.Options{
			NodeName:      spec.Name,
			InChannel:     spec.In,
			OutChannel:    spec.Out,
			MsgDatatype:   "Msgs",
			MessageRename: spec.Rename,
			ExtraMessages: allMsgs,
			ExtraTimers:   allTimers,
			IncludeTimers: true,
			OmitDecls:     i > 0,
		}
		res, err := translate.Translate(progs[i], opts)
		if err != nil {
			return nil, fmt.Errorf("core: extract model for %s: %w", spec.Name, err)
		}
		report.NodeModels[spec.Name] = res.Text
		report.Warnings = append(report.Warnings, res.Warnings...)
		parts = append(parts, res.Text)
	}
	parts = append(parts, p.Spec)
	report.CombinedSource = strings.Join(parts, "\n")

	model, err := cspm.Load(report.CombinedSource)
	if err != nil {
		return nil, fmt.Errorf("core: evaluate combined model: %w", err)
	}
	report.Model = model

	results, err := fdr.RunAll(model, p.MaxStates)
	if err != nil {
		return nil, fmt.Errorf("core: run assertions: %w", err)
	}
	report.Results = results
	return report, nil
}

// FrameMapping maps CAN identifiers observed on the simulated bus to
// events of the extracted CSP model.
type FrameMapping map[uint32]csp.Event

// CrossValidate executes the pipeline's node programs on the simulated
// CAN bus for the given duration, maps the observed frame trace into
// model events, and checks that the observed trace is a trace of the
// given process (usually the composed SYSTEM). This closes the loop
// between simulation (CANoe) and verification (FDR) in Figure 1.
func (p *Pipeline) CrossValidate(model *cspm.Model, system csp.Process,
	mapping FrameMapping, duration canbus.Time) (csp.Trace, error) {

	sim := canoe.NewSimulation(canbus.Config{})
	for _, spec := range p.Nodes {
		if _, err := sim.AddNode(spec.Name, spec.Source); err != nil {
			return nil, fmt.Errorf("core: simulate: %w", err)
		}
	}
	if err := sim.Start(); err != nil {
		return nil, fmt.Errorf("core: simulate: %w", err)
	}
	if err := sim.Run(duration); err != nil {
		return nil, fmt.Errorf("core: simulate: %w", err)
	}
	observed := make(csp.Trace, 0, len(sim.Trace()))
	for _, tf := range sim.Trace() {
		ev, ok := mapping[tf.Frame.ID]
		if !ok {
			return nil, fmt.Errorf("core: frame id %#x observed on the bus has no event mapping", tf.Frame.ID)
		}
		observed = append(observed, ev)
	}
	sem := csp.NewSemantics(model.Env, model.Ctx)
	ok, err := csp.HasTrace(sem, system, observed)
	if err != nil {
		return nil, fmt.Errorf("core: trace membership: %w", err)
	}
	if !ok {
		return observed, fmt.Errorf("core: simulated trace %s is not a trace of the extracted model", observed)
	}
	return observed, nil
}
