package core

import (
	"strings"
	"testing"

	"repro/internal/canbus"
	"repro/internal/csp"
	"repro/internal/ota"
)

func caseStudyPipeline() *Pipeline {
	return &Pipeline{
		Nodes: []NodeSpec{
			{Name: "ECU", Source: ota.ECUSource, In: "send", Out: "rec", Rename: ota.MessageRename},
			{Name: "VMG", Source: ota.VMGSource, In: "rec", Out: "send", Rename: ota.MessageRename},
		},
		Spec: `
SP02 = send.reqSw -> rec.rptSw -> SP02
SYSTEM = VMG [| {| send, rec |} |] ECU
DIAG = SYSTEM \ {send.reqApp, rec.rptUpd}
assert SP02 [T= DIAG
assert SYSTEM :[deadlock free]
`,
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	report, err := caseStudyPipeline().Run()
	if err != nil {
		t.Fatal(err)
	}
	if !report.AllHold() {
		for _, f := range report.Failed() {
			t.Errorf("failed: %s", f)
		}
	}
	if len(report.Results) != 2 {
		t.Errorf("results = %d, want 2", len(report.Results))
	}
	if !strings.Contains(report.NodeModels["ECU"], "send.reqSw -> rec!rptSw -> ECU") {
		t.Errorf("ECU model unexpected:\n%s", report.NodeModels["ECU"])
	}
	if strings.Contains(report.NodeModels["VMG"], "datatype") {
		t.Error("second node's model should omit declarations")
	}
}

func TestPipelineDetectsFlaw(t *testing.T) {
	p := caseStudyPipeline()
	p.Nodes[0].Source = ota.FlawedECUSource
	report, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.AllHold() {
		t.Fatal("flawed ECU passed all assertions")
	}
	failed := report.Failed()
	if len(failed) == 0 || !strings.Contains(failed[0].Assert.Text, "SP02") {
		t.Errorf("failed asserts = %v", failed)
	}
}

func TestPipelineValidation(t *testing.T) {
	p := &Pipeline{}
	if _, err := p.Run(); err == nil {
		t.Error("empty pipeline accepted")
	}
	p = caseStudyPipeline()
	p.Nodes[0].Source = "not capl at all {"
	if _, err := p.Run(); err == nil {
		t.Error("unparsable CAPL accepted")
	}
}

// otaMapping maps the simulated CAN identifiers (Table II) to the
// extracted model's events.
func otaMapping() FrameMapping {
	return FrameMapping{
		0x101: csp.Ev("send", csp.Sym("reqSw")),
		0x102: csp.Ev("rec", csp.Sym("rptSw")),
		0x103: csp.Ev("send", csp.Sym("reqApp")),
		0x104: csp.Ev("rec", csp.Sym("rptUpd")),
	}
}

func TestCrossValidationSimulationMatchesModel(t *testing.T) {
	p := caseStudyPipeline()
	report, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	system := csp.Call("SYSTEM")
	observed, err := p.CrossValidate(report.Model, system, otaMapping(), 5*canbus.Millisecond)
	if err != nil {
		t.Fatalf("cross-validation failed: %v", err)
	}
	if len(observed) < 4 {
		t.Errorf("simulation produced only %d events: %s", len(observed), observed)
	}
	// The observed exchange must start with the inventory request.
	if !observed[0].Equal(csp.Ev("send", csp.Sym("reqSw"))) {
		t.Errorf("first observed event = %s, want send.reqSw", observed[0])
	}
}

func TestCrossValidationUnknownFrame(t *testing.T) {
	p := caseStudyPipeline()
	report, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	mapping := otaMapping()
	delete(mapping, 0x102)
	_, err = p.CrossValidate(report.Model, csp.Call("SYSTEM"), mapping, 5*canbus.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "no event mapping") {
		t.Errorf("err = %v, want unmapped frame error", err)
	}
}
