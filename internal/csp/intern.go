package csp

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"sort"
)

// TermID is the dense identifier of a hash-consed term node. Two terms
// receive the same TermID exactly when they are structurally equal, so
// exploration dedup becomes an integer comparison instead of a
// canonical-string comparison.
type TermID uint32

// InternTable is the index backing an Interner: a map from a node's
// canonical key bytes to the dense ID the interner assigned at first
// sight. The hash argument is always the FNV-64a of key, precomputed by
// the interner so disk-backed tables (statestore.SpillStore) never
// rehash. statestore.Store satisfies this interface, which is how
// exploration's visited index and the interner share one spillable
// table without csp importing statestore.
type InternTable interface {
	// Lookup returns the ID recorded for key, or ok=false if the key has
	// never been inserted.
	Lookup(hash uint64, key []byte) (id int, ok bool)
	// Insert records key with the given ID. The caller guarantees the
	// key is not already present (it looked it up first).
	Insert(hash uint64, key []byte, id int)
	// Len returns the number of entries.
	Len() int
	// Bytes estimates the resident size of the table.
	Bytes() int64
}

// mapTable is the built-in in-memory InternTable used when NewInterner
// is given nil.
type mapTable struct {
	m     map[string]int
	bytes int64
}

// mapEntryOverhead mirrors statestore's per-entry map cost estimate.
const mapEntryOverhead = 48

func (t *mapTable) Lookup(_ uint64, key []byte) (int, bool) {
	id, ok := t.m[string(key)] // no allocation: the compiler optimises this lookup
	return id, ok
}

func (t *mapTable) Insert(_ uint64, key []byte, id int) {
	t.m[string(key)] = id
	t.bytes += int64(len(key)) + mapEntryOverhead
}

func (t *mapTable) Len() int     { return len(t.m) }
func (t *mapTable) Bytes() int64 { return t.bytes }

// Node tags. Every interned node's key starts with its tag byte; the
// remaining payload is an unambiguous (length-prefixed / counted)
// encoding of the node's own data plus the TermIDs of its children, so
// key equality is exactly structural term equality.
const (
	itagStop byte = iota + 1
	itagSkip
	itagOmega
	itagPrefix
	itagExtChoice
	itagIntChoice
	itagSeq
	itagPar
	itagHide
	itagRename
	itagIf
	itagCall
	itagFieldOut
	itagFieldIn
	itagFieldInRestrict
	itagExprLit
	itagExprVar
	itagExprBinary
	itagExprUnary
	itagExprDot
	itagExprSetAdd
	itagExprMember
	itagValInt
	itagValBool
	itagValSym
	itagValDotted
	itagValSet
	itagEvent
	itagEventSet
	itagMapping
)

// FNV-64a, inlined so hashing the scratch key allocates nothing.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64a(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// Interner hash-conses CSP terms bottom-up: every distinct subterm
// (process, communication field, expression, value, event, event set)
// is assigned a stable dense TermID, and structurally equal terms — the
// state-identity relation of exploration — always map to the same ID.
// Interning a term walks it once and performs one table hit per node
// with no allocation on the hit path, replacing the recursive
// canonical-string rendering (Process.Key) that previously dominated
// state interning.
//
// Equality is structural, which is strictly finer than Key-string
// equality: value kinds that render identically (Sym("5") vs Int(5))
// intern differently. For models whose value spaces do not pun on
// rendered syntax — all models this library builds — the two relations
// coincide.
//
// An Interner is not safe for concurrent use; exploration interns from
// its single sequential merge goroutine only. EventSets and rename
// mappings are memoized by pointer (they are structurally shared across
// Subst), so they must not be mutated once interning has begun — the
// same immutability exploration already requires of them.
type Interner struct {
	table   InternTable
	n       int
	scratch []byte
	sets    map[*EventSet]TermID
	maps    map[uintptr]TermID
}

// NewInterner returns an interner over the given table; nil means a
// fresh built-in in-memory table. The table must be empty (or belong to
// a previous interner whose ID sequence this one continues).
func NewInterner(t InternTable) *Interner {
	if t == nil {
		t = &mapTable{m: map[string]int{}}
	}
	return &Interner{
		table:   t,
		n:       t.Len(),
		scratch: make([]byte, 0, 128),
		sets:    map[*EventSet]TermID{},
		maps:    map[uintptr]TermID{},
	}
}

// Len returns the number of interned nodes (the next TermID to be
// assigned).
func (in *Interner) Len() int { return in.n }

// Table exposes the backing table (for memory accounting).
func (in *Interner) Table() InternTable { return in.table }

// finish interns the node encoded in scratch and returns its ID.
func (in *Interner) finish() TermID {
	h := fnv64a(in.scratch)
	if id, ok := in.table.Lookup(h, in.scratch); ok {
		return TermID(id)
	}
	id := in.n
	in.n++
	in.table.Insert(h, in.scratch, id)
	return TermID(id)
}

func (in *Interner) begin(tag byte) { in.scratch = append(in.scratch[:0], tag) }

func (in *Interner) str(s string) {
	in.scratch = binary.AppendUvarint(in.scratch, uint64(len(s)))
	in.scratch = append(in.scratch, s...)
}

func (in *Interner) id(t TermID) {
	in.scratch = binary.AppendUvarint(in.scratch, uint64(t))
}

func (in *Interner) count(n int) {
	in.scratch = binary.AppendUvarint(in.scratch, uint64(n))
}

func (in *Interner) leaf(tag byte) TermID {
	in.begin(tag)
	return in.finish()
}

// Process interns a process term, hash-consing every subterm.
func (in *Interner) Process(p Process) TermID {
	switch x := p.(type) {
	case StopProc:
		return in.leaf(itagStop)
	case SkipProc:
		return in.leaf(itagSkip)
	case OmegaProc:
		return in.leaf(itagOmega)
	case PrefixProc:
		var arr [8]TermID
		fields := arr[:0]
		for _, f := range x.Fields {
			fields = append(fields, in.field(f))
		}
		cont := in.Process(x.Cont)
		in.begin(itagPrefix)
		in.str(x.Chan)
		in.count(len(fields))
		for _, f := range fields {
			in.id(f)
		}
		in.id(cont)
		return in.finish()
	case ExtChoiceProc:
		return in.binaryProc(itagExtChoice, x.L, x.R)
	case IntChoiceProc:
		return in.binaryProc(itagIntChoice, x.L, x.R)
	case SeqProc:
		return in.binaryProc(itagSeq, x.L, x.R)
	case ParProc:
		l, r, s := in.Process(x.L), in.Process(x.R), in.set(x.Sync)
		in.begin(itagPar)
		in.id(l)
		in.id(r)
		in.id(s)
		return in.finish()
	case HideProc:
		p, s := in.Process(x.P), in.set(x.Set)
		in.begin(itagHide)
		in.id(p)
		in.id(s)
		return in.finish()
	case RenameProc:
		p, m := in.Process(x.P), in.mapping(x.Mapping)
		in.begin(itagRename)
		in.id(p)
		in.id(m)
		return in.finish()
	case IfProc:
		c, t, e := in.expr(x.Cond), in.Process(x.Then), in.Process(x.Else)
		in.begin(itagIf)
		in.id(c)
		in.id(t)
		in.id(e)
		return in.finish()
	case CallProc:
		var arr [8]TermID
		args := arr[:0]
		for _, a := range x.Args {
			args = append(args, in.expr(a))
		}
		in.begin(itagCall)
		in.str(x.Name)
		in.count(len(args))
		for _, a := range args {
			in.id(a)
		}
		return in.finish()
	}
	panic(fmt.Sprintf("csp: interner: unknown process type %T", p))
}

func (in *Interner) binaryProc(tag byte, l, r Process) TermID {
	li, ri := in.Process(l), in.Process(r)
	in.begin(tag)
	in.id(li)
	in.id(ri)
	return in.finish()
}

func (in *Interner) field(f CommField) TermID {
	if !f.IsInput {
		e := in.expr(f.Expr)
		in.begin(itagFieldOut)
		in.id(e)
		return in.finish()
	}
	if f.Restrict == nil {
		in.begin(itagFieldIn)
		in.str(f.Var)
		return in.finish()
	}
	r := in.expr(f.Restrict)
	in.begin(itagFieldInRestrict)
	in.str(f.Var)
	in.id(r)
	return in.finish()
}

func (in *Interner) expr(x Expr) TermID {
	switch e := x.(type) {
	case Lit:
		v := in.value(e.Val)
		in.begin(itagExprLit)
		in.id(v)
		return in.finish()
	case Var:
		in.begin(itagExprVar)
		in.str(e.Name)
		return in.finish()
	case Binary:
		l, r := in.expr(e.L), in.expr(e.R)
		in.begin(itagExprBinary)
		in.scratch = append(in.scratch, byte(e.Op))
		in.id(l)
		in.id(r)
		return in.finish()
	case Unary:
		xi := in.expr(e.X)
		in.begin(itagExprUnary)
		in.scratch = append(in.scratch, byte(e.Op))
		in.id(xi)
		return in.finish()
	case DotExpr:
		var arr [8]TermID
		args := arr[:0]
		for _, a := range e.Args {
			args = append(args, in.expr(a))
		}
		in.begin(itagExprDot)
		in.str(string(e.Head))
		in.count(len(args))
		for _, a := range args {
			in.id(a)
		}
		return in.finish()
	case SetAddExpr:
		b, el := in.expr(e.Base), in.expr(e.Elem)
		in.begin(itagExprSetAdd)
		in.id(b)
		in.id(el)
		return in.finish()
	case MemberExpr:
		el, s := in.expr(e.Elem), in.expr(e.Set)
		in.begin(itagExprMember)
		in.id(el)
		in.id(s)
		return in.finish()
	}
	panic(fmt.Sprintf("csp: interner: unknown expression type %T", x))
}

func (in *Interner) value(v Value) TermID {
	switch x := v.(type) {
	case Int:
		in.begin(itagValInt)
		in.scratch = binary.AppendVarint(in.scratch, int64(x))
		return in.finish()
	case Bool:
		in.begin(itagValBool)
		if x {
			in.scratch = append(in.scratch, 1)
		} else {
			in.scratch = append(in.scratch, 0)
		}
		return in.finish()
	case Sym:
		in.begin(itagValSym)
		in.str(string(x))
		return in.finish()
	case Dotted:
		var arr [8]TermID
		args := arr[:0]
		for _, a := range x.Args {
			args = append(args, in.value(a))
		}
		in.begin(itagValDotted)
		in.str(string(x.Head))
		in.count(len(args))
		for _, a := range args {
			in.id(a)
		}
		return in.finish()
	case SetValue:
		// Elements are already in canonical (sorted, deduplicated) order.
		var arr [8]TermID
		elems := arr[:0]
		for _, e := range x.Elems() {
			elems = append(elems, in.value(e))
		}
		in.begin(itagValSet)
		in.count(len(elems))
		for _, e := range elems {
			in.id(e)
		}
		return in.finish()
	}
	panic(fmt.Sprintf("csp: interner: unknown value type %T", v))
}

// Event interns an event (tau and tick included; their reserved channel
// names keep them distinct from every visible event).
func (in *Interner) Event(e Event) TermID {
	var arr [8]TermID
	args := arr[:0]
	for _, a := range e.Args {
		args = append(args, in.value(a))
	}
	in.begin(itagEvent)
	in.str(e.Chan)
	in.count(len(args))
	for _, a := range args {
		in.id(a)
	}
	return in.finish()
}

// set interns an event set by content. A nil set encodes identically to
// an empty set — the same identification the canonical Key strings have
// always made — and distinct *EventSet pointers with equal content
// intern to the same ID. The per-pointer memo only skips re-encoding.
func (in *Interner) set(s *EventSet) TermID {
	if s != nil {
		if id, ok := in.sets[s]; ok {
			return id
		}
	}
	var chans []string
	var evIDs []TermID
	if s != nil {
		chans = make([]string, 0, len(s.chans))
		for c := range s.chans {
			chans = append(chans, c)
		}
		sort.Strings(chans)
		keys := make([]string, 0, len(s.events))
		for k := range s.events {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			evIDs = append(evIDs, in.Event(s.events[k]))
		}
	}
	in.begin(itagEventSet)
	in.count(len(chans))
	for _, c := range chans {
		in.str(c)
	}
	in.count(len(evIDs))
	for _, e := range evIDs {
		in.id(e)
	}
	id := in.finish()
	if s != nil {
		in.sets[s] = id
	}
	return id
}

// mapping interns a rename mapping by content, memoized by map pointer
// (mappings are shared unchanged across Subst).
func (in *Interner) mapping(m map[string]string) TermID {
	var ptr uintptr
	if m != nil {
		ptr = reflect.ValueOf(m).Pointer()
		if id, ok := in.maps[ptr]; ok {
			return id
		}
	}
	froms := make([]string, 0, len(m))
	for from := range m {
		froms = append(froms, from)
	}
	sort.Strings(froms)
	in.begin(itagMapping)
	in.count(len(froms))
	for _, from := range froms {
		in.str(from)
		in.str(m[from])
	}
	id := in.finish()
	if m != nil {
		in.maps[ptr] = id
	}
	return id
}
