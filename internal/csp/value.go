// Package csp implements the core of Communicating Sequential Processes:
// values, events, channel contexts, a process AST, and Roscoe-style
// operational semantics over finite alphabets. It is the foundation the
// rest of the library (LTS exploration, refinement checking, the CSPm
// front-end and the CAPL model extractor) builds on.
//
// The semantic model implemented is the finite-trace model described in
// section IV-A of Heneghan et al., "Enabling Security Checking of
// Automotive ECUs with Formal CSP Models" (DSN-W 2019), extended with the
// stable-failures information needed by the refinement checker.
package csp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is a datum communicated over a channel or bound to a process
// parameter. Values are immutable and structurally comparable via Equal
// and canonically printable via String.
type Value interface {
	fmt.Stringer
	// Equal reports structural equality with another value.
	Equal(Value) bool
	isValue()
}

// Int is an integer value.
type Int int

func (i Int) String() string { return strconv.Itoa(int(i)) }
func (i Int) isValue()       {}

// Equal reports whether v is an Int with the same numeric value.
func (i Int) Equal(v Value) bool {
	o, ok := v.(Int)
	return ok && o == i
}

// Bool is a boolean value.
type Bool bool

func (b Bool) String() string {
	if b {
		return "true"
	}
	return "false"
}
func (b Bool) isValue() {}

// Equal reports whether v is a Bool with the same truth value.
func (b Bool) Equal(v Value) bool {
	o, ok := v.(Bool)
	return ok && o == b
}

// Sym is an atomic symbol: a nullary datatype constructor such as reqSw,
// or an agent/key name such as Alice.
type Sym string

func (s Sym) String() string { return string(s) }
func (s Sym) isValue()       {}

// Equal reports whether v is a Sym with the same name.
func (s Sym) Equal(v Value) bool {
	o, ok := v.(Sym)
	return ok && o == s
}

// Dotted is a compound value built from a datatype constructor applied to
// argument values, printed in CSPm dotted form, e.g. Enc.k.m.
type Dotted struct {
	Head Sym
	Args []Value
}

// NewDotted constructs a Dotted value, copying args.
func NewDotted(head Sym, args ...Value) Dotted {
	cp := make([]Value, len(args))
	copy(cp, args)
	return Dotted{Head: head, Args: cp}
}

func (d Dotted) String() string {
	var sb strings.Builder
	sb.WriteString(string(d.Head))
	for _, a := range d.Args {
		sb.WriteByte('.')
		sb.WriteString(a.String())
	}
	return sb.String()
}

func (d Dotted) isValue() {}

// Equal reports structural equality with another value.
func (d Dotted) Equal(v Value) bool {
	o, ok := v.(Dotted)
	if !ok || o.Head != d.Head || len(o.Args) != len(d.Args) {
		return false
	}
	for i, a := range d.Args {
		if !a.Equal(o.Args[i]) {
			return false
		}
	}
	return true
}

// SetValue is a finite set of values, usable as a process parameter
// (e.g. an intruder knowledge set). Its canonical form is sorted by the
// element's String, so two sets with the same members are Equal and have
// the same String.
type SetValue struct {
	elems []Value
}

// NewSet builds a SetValue from the given elements, deduplicating them.
func NewSet(elems ...Value) SetValue {
	if len(elems) == 0 {
		return SetValue{}
	}
	sorted := make([]Value, len(elems))
	copy(sorted, elems)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].String() < sorted[j].String() })
	out := sorted[:1]
	for _, e := range sorted[1:] {
		if !e.Equal(out[len(out)-1]) {
			out = append(out, e)
		}
	}
	return SetValue{elems: out}
}

// Add returns a new set that also contains v.
func (s SetValue) Add(v Value) SetValue {
	if s.Contains(v) {
		return s
	}
	out := make([]Value, 0, len(s.elems)+1)
	out = append(out, s.elems...)
	out = append(out, v)
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return SetValue{elems: out}
}

// Contains reports whether v is a member of the set.
func (s SetValue) Contains(v Value) bool {
	for _, e := range s.elems {
		if e.Equal(v) {
			return true
		}
	}
	return false
}

// Elems returns the members in canonical order. The caller must not
// mutate the returned slice.
func (s SetValue) Elems() []Value { return s.elems }

// Len returns the number of members.
func (s SetValue) Len() int { return len(s.elems) }

func (s SetValue) String() string {
	parts := make([]string, len(s.elems))
	for i, e := range s.elems {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func (s SetValue) isValue() {}

// Equal reports whether v is a SetValue with the same members.
func (s SetValue) Equal(v Value) bool {
	o, ok := v.(SetValue)
	if !ok || len(o.elems) != len(s.elems) {
		return false
	}
	for i, e := range s.elems {
		if !e.Equal(o.elems[i]) {
			return false
		}
	}
	return true
}
