package csp

import (
	"fmt"
	"testing"
)

// buildTerm constructs a moderately deep process term exercising every
// node kind, parameterized so distinct n yield structurally distinct
// terms.
func buildTerm(n int) Process {
	sync := NewEventSet()
	sync.AddChannel("update")
	sync.AddEvent(Event{Chan: "fw", Args: []Value{Sym("ok")}})
	ren := RenameProc{
		P:       Call("NODE", Lit{Val: Int(n)}),
		Mapping: map[string]string{"a": "b", "c": "d"},
	}
	inner := ParProc{
		L:    Prefix("update", []CommField{In("x"), Out(Binary{Op: OpAdd, L: Var{Name: "x"}, R: Lit{Val: Int(n)}})}, Stop()),
		R:    HideProc{P: ren, Set: sync},
		Sync: sync,
	}
	cond := IfProc{
		Cond: Binary{Op: OpLt, L: Lit{Val: Int(n)}, R: Lit{Val: Int(100)}},
		Then: SeqProc{L: Skip(), R: inner},
		Else: IntChoiceProc{L: Stop(), R: Skip()},
	}
	return ExtChoiceProc{L: cond, R: Prefix("log", []CommField{Out(Lit{Val: NewSet(Int(1), Sym("s"), Dotted{Head: "pair", Args: []Value{Int(n), Bool(true)}})})}, OmegaProc{})}
}

func TestInternerKeyEquivalence(t *testing.T) {
	// Structural interning must agree with canonical Key strings on the
	// terms this library builds: same Key ⇒ same TermID and different
	// Key ⇒ different TermID.
	in := NewInterner(nil)
	byKey := map[string]TermID{}
	for n := 0; n < 50; n++ {
		for rep := 0; rep < 2; rep++ { // second build: fresh structurally-equal term
			p := buildTerm(n % 25)
			id := in.Process(p)
			k := p.Key()
			if prev, ok := byKey[k]; ok {
				if prev != id {
					t.Fatalf("key %q interned to both %d and %d", k, prev, id)
				}
			} else {
				for k2, id2 := range byKey {
					if id2 == id {
						t.Fatalf("distinct keys %q and %q share TermID %d", k, k2, id)
					}
				}
				byKey[k] = id
			}
		}
	}
}

func TestInternerEventIdentity(t *testing.T) {
	in := NewInterner(nil)
	a := in.Event(Event{Chan: "can", Args: []Value{Sym("tx"), Int(5)}})
	b := in.Event(Event{Chan: "can", Args: []Value{Sym("tx"), Int(5)}})
	c := in.Event(Event{Chan: "can", Args: []Value{Sym("tx"), Int(6)}})
	if a != b {
		t.Fatalf("equal events interned to %d and %d", a, b)
	}
	if a == c {
		t.Fatalf("distinct events share TermID %d", a)
	}
	if in.Event(Tau()) == in.Event(Tick()) {
		t.Fatal("tau and tick interned identically")
	}
}

func TestInternerNilSetEqualsEmptySet(t *testing.T) {
	// A nil sync set and an empty one have the same canonical Key
	// ("{}"), so they must intern identically or state identity would
	// diverge from the reference engine.
	in := NewInterner(nil)
	withNil := in.Process(ParProc{L: Stop(), R: Skip(), Sync: nil})
	withEmpty := in.Process(ParProc{L: Stop(), R: Skip(), Sync: NewEventSet()})
	if withNil != withEmpty {
		t.Fatalf("nil sync set interned to %d, empty to %d", withNil, withEmpty)
	}
}

func TestInternerSharedSetByContent(t *testing.T) {
	// Distinct *EventSet pointers with equal content must intern to the
	// same ID (the pointer memo is only a cache).
	in := NewInterner(nil)
	s1, s2 := NewEventSet(), NewEventSet()
	s1.AddChannel("update")
	s2.AddChannel("update")
	a := in.Process(HideProc{P: Stop(), Set: s1})
	b := in.Process(HideProc{P: Stop(), Set: s2})
	if a != b {
		t.Fatalf("content-equal sets interned to %d and %d", a, b)
	}
}

func TestInternerDenseIDs(t *testing.T) {
	in := NewInterner(nil)
	if in.Len() != 0 {
		t.Fatalf("fresh interner has %d nodes", in.Len())
	}
	in.Process(Stop())
	in.Process(Skip())
	in.Process(Stop())
	if in.Len() != 2 {
		t.Fatalf("expected 2 nodes after STOP,SKIP,STOP; got %d", in.Len())
	}
}

func TestInternerRestrictedInputDistinct(t *testing.T) {
	// "?x" and "?x:pred" must not collide, nor "?x" with "!x".
	in := NewInterner(nil)
	plain := in.Process(Prefix("c", []CommField{In("x")}, Stop()))
	restricted := in.Process(Prefix("c", []CommField{InSuchThat("x", Binary{Op: OpLt, L: Var{Name: "x"}, R: Lit{Val: Int(3)}})}, Stop()))
	out := in.Process(Prefix("c", []CommField{Out(Var{Name: "x"})}, Stop()))
	if plain == restricted || plain == out || restricted == out {
		t.Fatalf("field kinds collided: plain=%d restricted=%d out=%d", plain, restricted, out)
	}
}

func BenchmarkInternProcess(b *testing.B) {
	terms := make([]Process, 64)
	for i := range terms {
		terms[i] = buildTerm(i)
	}
	in := NewInterner(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Process(terms[i%len(terms)])
	}
}

func BenchmarkKeyString(b *testing.B) {
	terms := make([]Process, 64)
	for i := range terms {
		terms[i] = buildTerm(i)
	}
	m := map[string]int{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := terms[i%len(terms)].Key()
		if _, ok := m[k]; !ok {
			m[k] = len(m)
		}
	}
}

func ExampleInterner() {
	in := NewInterner(nil)
	a := in.Process(Prefix("update", []CommField{In("x")}, Stop()))
	b := in.Process(Prefix("update", []CommField{In("x")}, Stop()))
	fmt.Println(a == b)
	// Output: true
}
