package csp

// Convenience constructors for building process terms in Go. These mirror
// the CSPm operators summarised in Table I of the paper.

// Prefix builds c<fields> -> cont.
func Prefix(ch string, fields []CommField, cont Process) Process {
	return PrefixProc{Chan: ch, Fields: fields, Cont: cont}
}

// Send builds the output prefix c!v1!v2... -> cont with literal values.
func Send(ch string, cont Process, vals ...Value) Process {
	fields := make([]CommField, len(vals))
	for i, v := range vals {
		fields[i] = OutVal(v)
	}
	return PrefixProc{Chan: ch, Fields: fields, Cont: cont}
}

// Recv builds the input prefix c?x1?x2... -> cont binding the named
// variables.
func Recv(ch string, cont Process, vars ...string) Process {
	fields := make([]CommField, len(vars))
	for i, v := range vars {
		fields[i] = In(v)
	}
	return PrefixProc{Chan: ch, Fields: fields, Cont: cont}
}

// DoEvent builds the bare-event prefix c -> cont for a channel with no
// fields.
func DoEvent(ch string, cont Process) Process {
	return PrefixProc{Chan: ch, Cont: cont}
}

// ExtChoice folds processes into a right-associated external choice.
// ExtChoice() is STOP, the unit of [].
func ExtChoice(ps ...Process) Process {
	return foldChoice(ps, func(l, r Process) Process { return ExtChoiceProc{L: l, R: r} })
}

// IntChoice folds processes into a right-associated internal choice.
// A single process is returned unchanged; IntChoice() is STOP.
func IntChoice(ps ...Process) Process {
	return foldChoice(ps, func(l, r Process) Process { return IntChoiceProc{L: l, R: r} })
}

func foldChoice(ps []Process, join func(l, r Process) Process) Process {
	switch len(ps) {
	case 0:
		return StopProc{}
	case 1:
		return ps[0]
	}
	out := ps[len(ps)-1]
	for i := len(ps) - 2; i >= 0; i-- {
		out = join(ps[i], out)
	}
	return out
}

// Seq builds sequential composition p1 ; p2 ; ... ; pn. Seq() is SKIP,
// the unit of ;.
func Seq(ps ...Process) Process {
	switch len(ps) {
	case 0:
		return SkipProc{}
	case 1:
		return ps[0]
	}
	out := ps[len(ps)-1]
	for i := len(ps) - 2; i >= 0; i-- {
		out = SeqProc{L: ps[i], R: out}
	}
	return out
}

// Par builds generalised parallel l [| sync |] r.
func Par(l Process, sync *EventSet, r Process) Process {
	return ParProc{L: l, R: r, Sync: sync}
}

// Interleave folds processes into an interleaving composition p1 ||| p2
// ||| ... Interleave() is SKIP (unit of |||).
func Interleave(ps ...Process) Process {
	switch len(ps) {
	case 0:
		return SkipProc{}
	case 1:
		return ps[0]
	}
	out := ps[len(ps)-1]
	empty := NewEventSet()
	for i := len(ps) - 2; i >= 0; i-- {
		out = ParProc{L: ps[i], R: out, Sync: empty}
	}
	return out
}

// Hide builds p \ set.
func Hide(p Process, set *EventSet) Process {
	return HideProc{P: p, Set: set}
}

// Rename builds channel renaming p[[mapping]].
func Rename(p Process, mapping map[string]string) Process {
	cp := make(map[string]string, len(mapping))
	for k, v := range mapping {
		cp[k] = v
	}
	return RenameProc{P: p, Mapping: cp}
}

// If builds the conditional process.
func If(cond Expr, then, els Process) Process {
	return IfProc{Cond: cond, Then: then, Else: els}
}

// Guard builds the guarded process b & P (STOP when the guard is false).
func Guard(cond Expr, p Process) Process {
	return IfProc{Cond: cond, Then: p, Else: StopProc{}}
}

// Call builds a reference to a named process definition.
func Call(name string, args ...Expr) Process {
	return CallProc{Name: name, Args: args}
}
