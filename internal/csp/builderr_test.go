package csp

import (
	"errors"
	"testing"
)

func TestMustDefinePanicsTyped(t *testing.T) {
	err := func() (err error) {
		defer RecoverBuild(&err)
		env := NewEnv()
		env.MustDefine("P", nil, Stop())
		env.MustDefine("P", nil, Stop())
		return nil
	}()
	var be *BuildError
	if !errors.As(err, &be) {
		t.Fatalf("recovered %v (%T), want *BuildError", err, err)
	}
	if be.Op != "define" || be.Name != "P" {
		t.Errorf("BuildError = %+v, want define/P", be)
	}
}

func TestMustChannelPanicsTyped(t *testing.T) {
	err := func() (err error) {
		defer RecoverBuild(&err)
		ctx := NewContext()
		ctx.MustChannel("c")
		ctx.MustChannel("c")
		return nil
	}()
	var be *BuildError
	if !errors.As(err, &be) {
		t.Fatalf("recovered %v (%T), want *BuildError", err, err)
	}
	if be.Op != "channel" || be.Name != "c" {
		t.Errorf("BuildError = %+v, want channel/c", be)
	}
}

func TestRecoverBuildPassesForeignPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("foreign panic %v should have propagated", r)
		}
	}()
	var err error
	func() {
		defer RecoverBuild(&err)
		panic("boom")
	}()
}

func TestRecoverBuildKeepsEarlierError(t *testing.T) {
	sentinel := errors.New("first failure")
	err := func() (err error) {
		defer RecoverBuild(&err)
		err = sentinel
		panic(&BuildError{Op: "define", Name: "Q", Err: errors.New("later")})
	}()
	if err != sentinel {
		t.Fatalf("err = %v, want the earlier explicit error", err)
	}
}

func TestRecoverBuildNoPanicNoop(t *testing.T) {
	var err error
	func() {
		defer RecoverBuild(&err)
	}()
	if err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}
