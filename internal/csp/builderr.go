package csp

import "fmt"

// BuildError is the typed panic value raised by the Must* construction
// helpers (MustDefine, MustChannel). Carrying a dedicated type — rather
// than a bare error — lets API boundaries convert a failed static model
// build back into an ordinary returned error with RecoverBuild, while
// unrelated panics keep propagating.
type BuildError struct {
	// Op is the construction step that failed: "define" or "channel".
	Op string
	// Name is the process or channel name involved.
	Name string
	// Err is the underlying cause.
	Err error
}

func (e *BuildError) Error() string {
	return fmt.Sprintf("csp build: %s %q: %v", e.Op, e.Name, e.Err)
}

func (e *BuildError) Unwrap() error { return e.Err }

// RecoverBuild converts a *BuildError panic into an assignment to
// *errp; any other panic value is re-raised. Use it at API boundaries
// that assemble models with the Must* helpers:
//
//	func Build() (m *Model, err error) {
//	    defer csp.RecoverBuild(&err)
//	    ...
//	}
//
// If *errp is already non-nil it is left in place, so an earlier
// explicit error is not masked by the recovery path.
func RecoverBuild(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	be, ok := r.(*BuildError)
	if !ok {
		panic(r)
	}
	if *errp == nil {
		*errp = be
	}
}
