package csp

import (
	"strings"
	"testing"
)

// testContext declares a small alphabet used across the unit tests:
// channels a, b, c with no fields and ch with one Msg field.
func testContext(t *testing.T) *Context {
	t.Helper()
	ctx := NewContext()
	msg := EnumType("Msg", "m1", "m2", "m3")
	if err := ctx.DeclareType("Msg", msg); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		if err := ctx.DeclareChannel(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctx.DeclareChannel("ch", msg); err != nil {
		t.Fatal(err)
	}
	return ctx
}

func newSem(t *testing.T, ctx *Context) *Semantics {
	t.Helper()
	return NewSemantics(NewEnv(), ctx)
}

func mustTransitions(t *testing.T, sem *Semantics, p Process) []Transition {
	t.Helper()
	trs, err := sem.Transitions(p)
	if err != nil {
		t.Fatalf("Transitions(%s): %v", p.Key(), err)
	}
	return trs
}

func TestStopHasNoTransitions(t *testing.T) {
	sem := newSem(t, testContext(t))
	if trs := mustTransitions(t, sem, Stop()); len(trs) != 0 {
		t.Errorf("STOP has %d transitions, want 0", len(trs))
	}
}

func TestSkipTicks(t *testing.T) {
	sem := newSem(t, testContext(t))
	trs := mustTransitions(t, sem, Skip())
	if len(trs) != 1 || !trs[0].Ev.IsTick() {
		t.Fatalf("SKIP transitions = %v, want single tick", trs)
	}
	if _, ok := trs[0].To.(OmegaProc); !ok {
		t.Errorf("SKIP tick target = %T, want OmegaProc", trs[0].To)
	}
}

func TestPrefixBareEvent(t *testing.T) {
	sem := newSem(t, testContext(t))
	p := DoEvent("a", Stop())
	trs := mustTransitions(t, sem, p)
	if len(trs) != 1 {
		t.Fatalf("got %d transitions, want 1", len(trs))
	}
	if trs[0].Ev.String() != "a" {
		t.Errorf("event = %s, want a", trs[0].Ev)
	}
	if trs[0].To.Key() != "STOP" {
		t.Errorf("continuation = %s, want STOP", trs[0].To.Key())
	}
}

func TestPrefixOutput(t *testing.T) {
	sem := newSem(t, testContext(t))
	p := Send("ch", Stop(), Sym("m2"))
	trs := mustTransitions(t, sem, p)
	if len(trs) != 1 || trs[0].Ev.String() != "ch.m2" {
		t.Fatalf("transitions = %v, want single ch.m2", trs)
	}
}

func TestPrefixOutputOutsideDomainFails(t *testing.T) {
	sem := newSem(t, testContext(t))
	p := Send("ch", Stop(), Sym("bogus"))
	if _, err := sem.Transitions(p); err == nil {
		t.Fatal("expected domain error for ch!bogus")
	}
}

func TestPrefixInputEnumeratesDomain(t *testing.T) {
	sem := newSem(t, testContext(t))
	p := Recv("ch", Stop(), "x")
	trs := mustTransitions(t, sem, p)
	if len(trs) != 3 {
		t.Fatalf("input prefix offers %d events, want 3", len(trs))
	}
	seen := map[string]bool{}
	for _, tr := range trs {
		seen[tr.Ev.String()] = true
	}
	for _, want := range []string{"ch.m1", "ch.m2", "ch.m3"} {
		if !seen[want] {
			t.Errorf("missing input event %s", want)
		}
	}
}

func TestPrefixInputBindsContinuation(t *testing.T) {
	sem := newSem(t, testContext(t))
	// ch?x -> ch!x -> STOP: the echo process.
	p := Recv("ch", Prefix("ch", []CommField{Out(V("x"))}, Stop()), "x")
	trs := mustTransitions(t, sem, p)
	for _, tr := range trs {
		next := mustTransitions(t, sem, tr.To)
		if len(next) != 1 {
			t.Fatalf("echo continuation has %d transitions, want 1", len(next))
		}
		if !next[0].Ev.Equal(tr.Ev) {
			t.Errorf("echoed %s after %s", next[0].Ev, tr.Ev)
		}
	}
}

func TestPrefixRestrictedInput(t *testing.T) {
	sem := newSem(t, testContext(t))
	pred := Binary{Op: OpNe, L: V("x"), R: LitSym("m2")}
	p := Prefix("ch", []CommField{InSuchThat("x", pred)}, Stop())
	trs := mustTransitions(t, sem, p)
	if len(trs) != 2 {
		t.Fatalf("restricted input offers %d events, want 2", len(trs))
	}
	for _, tr := range trs {
		if tr.Ev.String() == "ch.m2" {
			t.Error("restricted input offered excluded value m2")
		}
	}
}

func TestExternalChoiceOffersBoth(t *testing.T) {
	sem := newSem(t, testContext(t))
	p := ExtChoice(DoEvent("a", Stop()), DoEvent("b", Stop()))
	trs := mustTransitions(t, sem, p)
	if len(trs) != 2 {
		t.Fatalf("choice offers %d events, want 2", len(trs))
	}
}

func TestExternalChoiceTauDoesNotResolve(t *testing.T) {
	sem := newSem(t, testContext(t))
	// (a->STOP |~| b->STOP) [] c->STOP: the internal choice contributes
	// taus that must preserve the right branch.
	p := ExtChoice(
		IntChoice(DoEvent("a", Stop()), DoEvent("b", Stop())),
		DoEvent("c", Stop()),
	)
	trs := mustTransitions(t, sem, p)
	tauCount := 0
	for _, tr := range trs {
		if tr.Ev.IsTau() {
			tauCount++
			// After tau the c branch must still be available.
			next := mustTransitions(t, sem, tr.To)
			foundC := false
			for _, n := range next {
				if n.Ev.String() == "c" {
					foundC = true
				}
			}
			if !foundC {
				t.Errorf("tau resolved external choice: %s lost branch c", tr.To.Key())
			}
		}
	}
	if tauCount != 2 {
		t.Errorf("tau transitions = %d, want 2", tauCount)
	}
}

func TestInternalChoiceIsTwoTaus(t *testing.T) {
	sem := newSem(t, testContext(t))
	p := IntChoice(DoEvent("a", Stop()), DoEvent("b", Stop()))
	trs := mustTransitions(t, sem, p)
	if len(trs) != 2 || !trs[0].Ev.IsTau() || !trs[1].Ev.IsTau() {
		t.Fatalf("internal choice transitions = %v, want two taus", trs)
	}
}

func TestSequentialComposition(t *testing.T) {
	sem := newSem(t, testContext(t))
	p := Seq(DoEvent("a", Skip()), DoEvent("b", Skip()))
	ts, err := Traces(sem, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := Trace{Ev("a"), Ev("b"), Tick()}
	if !ts.Contains(want) {
		t.Errorf("traces of a->SKIP;b->SKIP missing %s; got %v", want, ts.Slice())
	}
	// The first component's tick must be internal: <a, tick, ...> never occurs.
	bad := Trace{Ev("a"), Tick()}
	if ts.Contains(bad) {
		t.Errorf("sequential composition leaked intermediate termination %s", bad)
	}
}

func TestParallelSynchronisation(t *testing.T) {
	sem := newSem(t, testContext(t))
	// a->b->SKIP [| {a} |] a->c->SKIP: must sync on a then interleave b,c.
	p := Par(
		DoEvent("a", DoEvent("b", Skip())),
		Events(Ev("a")),
		DoEvent("a", DoEvent("c", Skip())),
	)
	ts, err := Traces(sem, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []Trace{
		{Ev("a"), Ev("b"), Ev("c"), Tick()},
		{Ev("a"), Ev("c"), Ev("b"), Tick()},
	} {
		if !ts.Contains(want) {
			t.Errorf("missing trace %s", want)
		}
	}
	if ts.Contains(Trace{Ev("a"), Ev("a")}) {
		t.Error("synchronised event a occurred twice")
	}
	if ts.Contains(Trace{Ev("b")}) {
		t.Error("b occurred before synchronised a")
	}
}

func TestParallelBlocksWithoutPartner(t *testing.T) {
	sem := newSem(t, testContext(t))
	// a->STOP [| {a,b} |] b->STOP deadlocks immediately.
	p := Par(DoEvent("a", Stop()), Events(Ev("a"), Ev("b")), DoEvent("b", Stop()))
	trs := mustTransitions(t, sem, p)
	if len(trs) != 0 {
		t.Errorf("mismatched sync produced transitions %v, want deadlock", trs)
	}
}

func TestInterleavingAllOrders(t *testing.T) {
	sem := newSem(t, testContext(t))
	p := Interleave(DoEvent("a", Skip()), DoEvent("b", Skip()))
	ts, err := Traces(sem, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []Trace{
		{Ev("a"), Ev("b"), Tick()},
		{Ev("b"), Ev("a"), Tick()},
	} {
		if !ts.Contains(want) {
			t.Errorf("missing interleaving %s", want)
		}
	}
}

func TestDistributedTermination(t *testing.T) {
	sem := newSem(t, testContext(t))
	// SKIP ||| a->SKIP cannot tick until both sides can.
	p := Interleave(Skip(), DoEvent("a", Skip()))
	ts, err := Traces(sem, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Contains(Trace{Tick()}) {
		t.Error("parallel terminated before both components could")
	}
	if !ts.Contains(Trace{Ev("a"), Tick()}) {
		t.Error("missing trace <a, tick>")
	}
}

func TestHidingMakesEventsInternal(t *testing.T) {
	sem := newSem(t, testContext(t))
	p := Hide(DoEvent("a", DoEvent("b", Stop())), Events(Ev("a")))
	trs := mustTransitions(t, sem, p)
	if len(trs) != 1 || !trs[0].Ev.IsTau() {
		t.Fatalf("hidden prefix transitions = %v, want single tau", trs)
	}
	ts, err := Traces(sem, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Contains(Trace{Ev("b")}) {
		t.Error("hiding removed the wrong events")
	}
	if ts.Contains(Trace{Ev("a")}) {
		t.Error("hidden event a still visible")
	}
}

func TestRenaming(t *testing.T) {
	sem := newSem(t, testContext(t))
	p := Rename(DoEvent("a", Stop()), map[string]string{"a": "b"})
	trs := mustTransitions(t, sem, p)
	if len(trs) != 1 || trs[0].Ev.String() != "b" {
		t.Fatalf("renamed transitions = %v, want single b", trs)
	}
}

func TestConditionalProcess(t *testing.T) {
	sem := newSem(t, testContext(t))
	p := If(LitBool(true), DoEvent("a", Stop()), DoEvent("b", Stop()))
	trs := mustTransitions(t, sem, p)
	if len(trs) != 1 || trs[0].Ev.String() != "a" {
		t.Fatalf("if-true transitions = %v, want a", trs)
	}
	p = If(LitBool(false), DoEvent("a", Stop()), DoEvent("b", Stop()))
	trs = mustTransitions(t, sem, p)
	if len(trs) != 1 || trs[0].Ev.String() != "b" {
		t.Fatalf("if-false transitions = %v, want b", trs)
	}
}

func TestGuardFalseIsStop(t *testing.T) {
	sem := newSem(t, testContext(t))
	p := Guard(LitBool(false), DoEvent("a", Stop()))
	if trs := mustTransitions(t, sem, p); len(trs) != 0 {
		t.Errorf("false-guarded process has transitions %v", trs)
	}
}

func TestRecursionViaEnv(t *testing.T) {
	ctx := testContext(t)
	env := NewEnv()
	env.MustDefine("P", nil, DoEvent("a", Call("P")))
	sem := NewSemantics(env, ctx)
	ts, err := Traces(sem, Call("P"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Contains(Trace{Ev("a"), Ev("a"), Ev("a"), Ev("a")}) {
		t.Error("recursive P = a -> P missing trace <a,a,a,a>")
	}
}

func TestParameterisedRecursion(t *testing.T) {
	ctx := NewContext()
	ctx.MustChannel("count", IntRange{Lo: 0, Hi: 5})
	env := NewEnv()
	// COUNT(n) = count!n -> COUNT(n+1), bounded by guard at 3.
	env.MustDefine("COUNT", []string{"n"},
		Guard(Binary{Op: OpLe, L: V("n"), R: LitInt(3)},
			Prefix("count", []CommField{Out(V("n"))},
				Call("COUNT", Binary{Op: OpAdd, L: V("n"), R: LitInt(1)}))))
	sem := NewSemantics(env, ctx)
	ts, err := Traces(sem, Call("COUNT", LitInt(0)), 10)
	if err != nil {
		t.Fatal(err)
	}
	want := Trace{
		Ev("count", Int(0)), Ev("count", Int(1)),
		Ev("count", Int(2)), Ev("count", Int(3)),
	}
	if !ts.Contains(want) {
		t.Errorf("counter missing trace %s; have %d traces", want, ts.Len())
	}
	if ts.Contains(Trace{Ev("count", Int(0)), Ev("count", Int(0))}) {
		t.Error("counter repeated a value")
	}
}

func TestUnguardedRecursionDetected(t *testing.T) {
	ctx := testContext(t)
	env := NewEnv()
	env.MustDefine("P", nil, Call("P"))
	sem := NewSemantics(env, ctx)
	_, err := sem.Transitions(Call("P"))
	if err == nil {
		t.Fatal("expected unguarded recursion error")
	}
	if !strings.Contains(err.Error(), "unguarded recursion") {
		t.Errorf("error = %v, want unguarded recursion", err)
	}
}

func TestUndefinedProcessError(t *testing.T) {
	sem := newSem(t, testContext(t))
	if _, err := sem.Transitions(Call("NoSuch")); err == nil {
		t.Fatal("expected undefined process error")
	}
}

func TestTraceHide(t *testing.T) {
	tr := Trace{Ev("a"), Ev("b"), Ev("a")}
	got := tr.Hide(Events(Ev("a")))
	if !got.Equal(Trace{Ev("b")}) {
		t.Errorf("trace hide = %s, want <b>", got)
	}
}

func TestTracePrefixRelation(t *testing.T) {
	long := Trace{Ev("a"), Ev("b"), Ev("c")}
	if !long.HasPrefix(Trace{Ev("a"), Ev("b")}) {
		t.Error("prefix relation failed on genuine prefix")
	}
	if long.HasPrefix(Trace{Ev("b")}) {
		t.Error("prefix relation accepted non-prefix")
	}
}

func TestEventSetProduction(t *testing.T) {
	ctx := testContext(t)
	set := EventsOf("ch")
	if !set.Contains(Ev("ch", Sym("m1"))) {
		t.Error("production set {|ch|} missing ch.m1")
	}
	if set.Contains(Ev("a")) {
		t.Error("production set {|ch|} contains a")
	}
	evs := set.Enumerate(ctx)
	if len(evs) != 3 {
		t.Errorf("enumerated %d events, want 3", len(evs))
	}
}

func TestContextEnumeration(t *testing.T) {
	ctx := testContext(t)
	all := ctx.AllEvents()
	// a, b, c plus 3 ch.* events.
	if len(all) != 6 {
		t.Errorf("alphabet size = %d, want 6", len(all))
	}
	if err := ctx.DeclareChannel("a"); err == nil {
		t.Error("duplicate channel declaration accepted")
	}
}

func TestDataTypeWithPayload(t *testing.T) {
	key := EnumType("Key", "k1", "k2")
	payload := EnumType("Payload", "p1")
	dt := DataType{
		TypeName: "Packet",
		Ctors: []Ctor{
			{Head: "plain", Fields: []Type{payload}},
			{Head: "mac", Fields: []Type{key, payload}},
		},
	}
	vals := dt.Values()
	if len(vals) != 3 { // plain.p1, mac.k1.p1, mac.k2.p1
		t.Fatalf("datatype has %d values, want 3", len(vals))
	}
	if !dt.Contains(NewDotted("mac", Sym("k1"), Sym("p1"))) {
		t.Error("datatype missing mac.k1.p1")
	}
	if dt.Contains(NewDotted("mac", Sym("p1"), Sym("k1"))) {
		t.Error("datatype accepted ill-typed mac.p1.k1")
	}
}

func TestSubstShadowing(t *testing.T) {
	// (ch?x -> ch!x -> STOP).Subst(x, m1) must not touch the bound x.
	inner := Prefix("ch", []CommField{Out(V("x"))}, Stop())
	p := Recv("ch", inner, "x")
	q := p.Subst("x", Sym("m1"))
	if q.Key() != p.Key() {
		t.Errorf("substitution captured bound variable: %s != %s", q.Key(), p.Key())
	}
}

func TestKeyDeterminism(t *testing.T) {
	mk := func() Process {
		return Par(
			DoEvent("a", Stop()),
			EventsOf("ch").Union(Events(Ev("b"))),
			Hide(DoEvent("b", Skip()), Events(Ev("b"))),
		)
	}
	if mk().Key() != mk().Key() {
		t.Error("Key not deterministic for identical terms")
	}
}
