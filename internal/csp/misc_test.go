package csp

import (
	"strings"
	"testing"
)

func TestValueEquality(t *testing.T) {
	cases := []struct {
		a, b  Value
		equal bool
	}{
		{Int(3), Int(3), true},
		{Int(3), Int(4), false},
		{Int(3), Sym("3"), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Sym("x"), Sym("x"), true},
		{Sym("x"), Sym("y"), false},
		{NewDotted("f", Int(1)), NewDotted("f", Int(1)), true},
		{NewDotted("f", Int(1)), NewDotted("f", Int(2)), false},
		{NewDotted("f", Int(1)), NewDotted("g", Int(1)), false},
		{NewDotted("f", Int(1)), NewDotted("f", Int(1), Int(2)), false},
		{NewSet(Int(1), Int(2)), NewSet(Int(2), Int(1)), true},
		{NewSet(Int(1)), NewSet(Int(1), Int(2)), false},
	}
	for _, tc := range cases {
		if got := tc.a.Equal(tc.b); got != tc.equal {
			t.Errorf("%s.Equal(%s) = %v, want %v", tc.a, tc.b, got, tc.equal)
		}
	}
}

func TestSetValueOperations(t *testing.T) {
	s := NewSet(Sym("b"), Sym("a"), Sym("b"))
	if s.Len() != 2 {
		t.Errorf("len = %d, want 2 (dedup)", s.Len())
	}
	if s.String() != "{a,b}" {
		t.Errorf("canonical form = %s", s.String())
	}
	s2 := s.Add(Sym("a"))
	if s2.Len() != 2 {
		t.Error("re-adding a member grew the set")
	}
	s3 := s.Add(Sym("c"))
	if !s3.Contains(Sym("c")) || s.Contains(Sym("c")) {
		t.Error("Add must be persistent (copy-on-write)")
	}
}

func TestUnionAndExplicitTypes(t *testing.T) {
	u := UnionType{
		TypeName: "U",
		Members:  []Type{EnumType("A", "x", "y"), EnumType("B", "y", "z")},
	}
	vals := u.Values()
	if len(vals) != 3 {
		t.Errorf("union values = %v, want 3 distinct", vals)
	}
	if !u.Contains(Sym("z")) || u.Contains(Sym("w")) {
		t.Error("union membership wrong")
	}
	if u.Name() != "U" {
		t.Errorf("name = %s", u.Name())
	}
	e := ExplicitType{TypeName: "E", Elems: []Value{Int(1), Int(5)}}
	if !e.Contains(Int(5)) || e.Contains(Int(2)) {
		t.Error("explicit membership wrong")
	}
	if got := TypeUnionName([]Type{e, u}); got != "union(E,U)" {
		t.Errorf("TypeUnionName = %s", got)
	}
}

func TestIntRangeEdges(t *testing.T) {
	empty := IntRange{Lo: 5, Hi: 3}
	if len(empty.Values()) != 0 {
		t.Error("inverted range should be empty")
	}
	r := IntRange{Lo: -1, Hi: 1}
	if len(r.Values()) != 3 || !r.Contains(Int(-1)) || r.Contains(Int(2)) {
		t.Errorf("range semantics wrong: %v", r.Values())
	}
	bt := BoolType{}
	if !bt.Contains(Bool(true)) || bt.Contains(Int(0)) {
		t.Error("bool membership wrong")
	}
	if len(bt.Values()) != 2 || bt.Name() != "Bool" {
		t.Error("bool enumeration wrong")
	}
}

func TestEvalErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		e    Expr
		want string
	}{
		{"unbound", V("x"), "unbound variable"},
		{"div0", Binary{Op: OpDiv, L: LitInt(1), R: LitInt(0)}, "division by zero"},
		{"mod0", Binary{Op: OpMod, L: LitInt(1), R: LitInt(0)}, "modulo by zero"},
		{"bool on int", Binary{Op: OpAnd, L: LitInt(1), R: LitBool(true)}, "boolean operator"},
		{"arith on sym", Binary{Op: OpAdd, L: LitSym("a"), R: LitInt(1)}, "arithmetic"},
		{"neg bool", Unary{Op: OpNeg, X: LitBool(true)}, "negate"},
		{"not int", Unary{Op: OpNot, X: LitInt(1)}, "non-boolean"},
		{"member non-set", MemberExpr{Elem: LitInt(1), Set: LitInt(2)}, "non-set"},
		{"union non-set", SetAddExpr{Base: LitInt(1), Elem: LitInt(2)}, "not a set"},
		{"nil", nil, "nil expression"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Eval(tc.e)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// false && <error> must not evaluate the right side.
	bad := Binary{Op: OpDiv, L: LitInt(1), R: LitInt(0)}
	v, err := Eval(Binary{Op: OpAnd, L: LitBool(false), R: bad})
	if err != nil || v != Bool(false) {
		t.Errorf("short-circuit and: %v %v", v, err)
	}
	v, err = Eval(Binary{Op: OpOr, L: LitBool(true), R: bad})
	if err != nil || v != Bool(true) {
		t.Errorf("short-circuit or: %v %v", v, err)
	}
}

func TestEvalCompoundExpressions(t *testing.T) {
	// member(x, S) and set union evaluate correctly.
	set := NewSet(Sym("a"), Sym("b"))
	v, err := Eval(MemberExpr{Elem: LitSym("a"), Set: Lit{Val: set}})
	if err != nil || v != Bool(true) {
		t.Errorf("member = %v %v", v, err)
	}
	grown, err := Eval(SetAddExpr{Base: Lit{Val: set}, Elem: LitSym("c")})
	if err != nil {
		t.Fatal(err)
	}
	if !grown.(SetValue).Contains(Sym("c")) {
		t.Error("SetAdd did not add")
	}
	dotted, err := Eval(DotExpr{Head: "pair", Args: []Expr{LitInt(1), LitSym("a")}})
	if err != nil {
		t.Fatal(err)
	}
	if dotted.String() != "pair.1.a" {
		t.Errorf("dotted = %s", dotted)
	}
	// Nullary DotExpr degrades to the symbol.
	bare, err := Eval(DotExpr{Head: "unit"})
	if err != nil || bare.String() != "unit" {
		t.Errorf("bare dotted = %v %v", bare, err)
	}
}

func TestEventSetOperations(t *testing.T) {
	a := Events(Ev("a"))
	b := EventsOf("ch")
	u := a.Union(b)
	if !u.Contains(Ev("a")) || !u.Contains(Ev("ch", Sym("m1"))) {
		t.Error("union membership wrong")
	}
	if !strings.Contains(u.Key(), "{|ch|}") || !strings.Contains(u.Key(), "a") {
		t.Errorf("key = %s", u.Key())
	}
	var nilSet *EventSet
	if nilSet.Contains(Ev("a")) || !nilSet.IsEmpty() {
		t.Error("nil set semantics wrong")
	}
	if nilSet.Key() != "{}" {
		t.Errorf("nil key = %s", nilSet.Key())
	}
	if u.Contains(Tau()) || u.Contains(Tick()) {
		t.Error("tau/tick must never be set members")
	}
}

func TestEventSetEnumerate(t *testing.T) {
	ctx := testContext(t)
	set := Events(Ev("a"), Ev("ch", Sym("m1"))).AddChannel("b")
	evs := set.Enumerate(ctx)
	if len(evs) != 3 {
		t.Errorf("enumerated %d events, want 3: %v", len(evs), evs)
	}
}

func TestEnvOperations(t *testing.T) {
	env := NewEnv()
	env.MustDefine("P", nil, Stop())
	env.MustDefine("Q", []string{"x"}, Stop())
	if err := env.Define("P", nil, Skip()); err == nil {
		t.Error("redefinition accepted")
	}
	names := env.Names()
	if len(names) != 2 || names[0] != "P" || names[1] != "Q" {
		t.Errorf("names = %v", names)
	}
	if _, ok := env.Lookup("P"); !ok {
		t.Error("lookup failed")
	}
	if _, err := env.Expand(CallProc{Name: "R"}); err == nil {
		t.Error("expanding undefined process accepted")
	}
	if _, err := env.Expand(CallProc{Name: "Q"}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := env.Expand(CallProc{Name: "Q", Args: []Expr{V("free")}}); err == nil {
		t.Error("unbound argument accepted")
	}
}

func TestTraceStateLimit(t *testing.T) {
	ctx := NewContext()
	ctx.MustChannel("n", IntRange{Lo: 0, Hi: 1 << 20})
	env := NewEnv()
	env.MustDefine("UP", []string{"i"},
		Prefix("n", []CommField{Out(V("i"))},
			Call("UP", Binary{Op: OpAdd, L: V("i"), R: LitInt(1)})))
	sem := NewSemantics(env, ctx)
	// Each visible step reaches a new state; the bound keeps it finite.
	ts, err := Traces(sem, Call("UP", LitInt(0)), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Contains(Trace{Ev("n", Int(0)), Ev("n", Int(1)), Ev("n", Int(2))}) {
		t.Error("unbounded counter traces wrong")
	}
}

func TestDataTypeContainsMistyped(t *testing.T) {
	dt := DataType{TypeName: "T", Ctors: []Ctor{
		{Head: "leaf"},
		{Head: "node", Fields: []Type{IntRange{Lo: 0, Hi: 1}}},
	}}
	if dt.Contains(Int(3)) {
		t.Error("datatype contains unrelated int")
	}
	if dt.Contains(NewDotted("node", Int(5))) {
		t.Error("out-of-range payload accepted")
	}
	if dt.Contains(NewDotted("leaf", Int(0))) {
		t.Error("nullary constructor with payload accepted")
	}
	if !dt.Contains(NewDotted("node", Int(1))) || !dt.Contains(Sym("leaf")) {
		t.Error("legitimate members rejected")
	}
}

func TestContextErrors(t *testing.T) {
	ctx := NewContext()
	ctx.MustChannel("a")
	if err := ctx.DeclareType("T", BoolType{}); err != nil {
		t.Fatal(err)
	}
	if err := ctx.DeclareType("T", BoolType{}); err == nil {
		t.Error("duplicate type accepted")
	}
	if _, err := ctx.EventsOf("nope"); err == nil {
		t.Error("events of undeclared channel accepted")
	}
	if _, ok := ctx.Type("T"); !ok {
		t.Error("type lookup failed")
	}
	names := ctx.ChannelNames()
	if len(names) != 1 || names[0] != "a" {
		t.Errorf("channel names = %v", names)
	}
}

func TestSemanticsErrorPaths(t *testing.T) {
	ctx := testContext(t)
	sem := NewSemantics(NewEnv(), ctx)
	// Prefix with wrong field count.
	if _, err := sem.Transitions(Prefix("ch", nil, Stop())); err == nil {
		t.Error("field-count mismatch accepted")
	}
	// Prefix on undeclared channel.
	if _, err := sem.Transitions(DoEvent("zz", Stop())); err == nil {
		t.Error("undeclared channel accepted")
	}
	// Conditional with non-boolean guard.
	if _, err := sem.Transitions(If(LitInt(1), Stop(), Stop())); err == nil {
		t.Error("non-boolean guard accepted")
	}
	// Conditional with unbound guard.
	if _, err := sem.Transitions(If(V("x"), Stop(), Stop())); err == nil {
		t.Error("unbound guard accepted")
	}
	// Restricted input with non-boolean predicate.
	bad := Prefix("ch", []CommField{InSuchThat("x", LitInt(1))}, Stop())
	if _, err := sem.Transitions(bad); err == nil {
		t.Error("non-boolean restriction accepted")
	}
	// Nil process.
	if _, err := sem.Transitions(nil); err == nil {
		t.Error("nil process accepted")
	}
}
