package csp

import (
	"fmt"
	"strings"
)

// Expr is a side-effect-free expression evaluated when a process takes a
// transition: process parameters, prefix guards and output fields are
// expressions. After substitution of all bound variables an expression is
// closed and Eval succeeds.
type Expr interface {
	// Key returns canonical syntax used for state hashing.
	Key() string
	// subst replaces free occurrences of the variable with a literal.
	subst(name string, v Value) Expr
}

// Lit is a literal value.
type Lit struct{ Val Value }

// Key returns the literal's canonical form.
func (l Lit) Key() string              { return l.Val.String() }
func (l Lit) subst(string, Value) Expr { return l }

// Var is a free variable reference, bound by an input prefix or a process
// parameter.
type Var struct{ Name string }

// Key returns the variable name.
func (v Var) Key() string { return v.Name }
func (v Var) subst(name string, val Value) Expr {
	if v.Name == name {
		return Lit{Val: val}
	}
	return v
}

// BinOp enumerates binary operators of the expression language.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota + 1
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "and", OpOr: "or",
}

// String returns the operator's CSPm spelling.
func (op BinOp) String() string { return binOpNames[op] }

// Binary is a binary operation on two sub-expressions.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Key returns canonical parenthesised syntax.
func (b Binary) Key() string {
	return "(" + b.L.Key() + " " + b.Op.String() + " " + b.R.Key() + ")"
}

func (b Binary) subst(name string, v Value) Expr {
	return Binary{Op: b.Op, L: b.L.subst(name, v), R: b.R.subst(name, v)}
}

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNeg UnOp = iota + 1
	OpNot
)

// Unary is a unary operation on a sub-expression.
type Unary struct {
	Op UnOp
	X  Expr
}

// Key returns canonical syntax.
func (u Unary) Key() string {
	if u.Op == OpNeg {
		return "(-" + u.X.Key() + ")"
	}
	return "(not " + u.X.Key() + ")"
}

func (u Unary) subst(name string, v Value) Expr {
	return Unary{Op: u.Op, X: u.X.subst(name, v)}
}

// DotExpr applies a datatype constructor to argument expressions,
// producing a Dotted value, e.g. mac.k.m.
type DotExpr struct {
	Head Sym
	Args []Expr
}

// Key returns canonical dotted syntax.
func (d DotExpr) Key() string {
	parts := make([]string, 0, len(d.Args)+1)
	parts = append(parts, string(d.Head))
	for _, a := range d.Args {
		parts = append(parts, a.Key())
	}
	return strings.Join(parts, ".")
}

func (d DotExpr) subst(name string, v Value) Expr {
	args := make([]Expr, len(d.Args))
	for i, a := range d.Args {
		args[i] = a.subst(name, v)
	}
	return DotExpr{Head: d.Head, Args: args}
}

// SetAddExpr evaluates to base ∪ {elem}: used by learning intruders that
// extend their knowledge set.
type SetAddExpr struct {
	Base Expr
	Elem Expr
}

// Key returns canonical union syntax.
func (s SetAddExpr) Key() string { return "union(" + s.Base.Key() + ",{" + s.Elem.Key() + "})" }

func (s SetAddExpr) subst(name string, v Value) Expr {
	return SetAddExpr{Base: s.Base.subst(name, v), Elem: s.Elem.subst(name, v)}
}

// MemberExpr evaluates to membership of Elem in the SetValue denoted by
// Set (CSPm's `member(x, S)`).
type MemberExpr struct {
	Elem Expr
	Set  Expr
}

// Key returns canonical member syntax.
func (m MemberExpr) Key() string { return "member(" + m.Elem.Key() + "," + m.Set.Key() + ")" }

func (m MemberExpr) subst(name string, v Value) Expr {
	return MemberExpr{Elem: m.Elem.subst(name, v), Set: m.Set.subst(name, v)}
}

// Helper constructors.

// LitInt wraps an int as a literal expression.
func LitInt(i int) Expr { return Lit{Val: Int(i)} }

// LitBool wraps a bool as a literal expression.
func LitBool(b bool) Expr { return Lit{Val: Bool(b)} }

// LitSym wraps a symbol as a literal expression.
func LitSym(s string) Expr { return Lit{Val: Sym(s)} }

// V is shorthand for a variable reference.
func V(name string) Expr { return Var{Name: name} }

// Eval evaluates a closed expression. It returns an error if the
// expression still contains free variables, divides by zero, or applies
// an operator to operands of the wrong kind.
func Eval(e Expr) (Value, error) {
	switch x := e.(type) {
	case Lit:
		return x.Val, nil
	case Var:
		return nil, fmt.Errorf("unbound variable %q", x.Name)
	case Unary:
		v, err := Eval(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case OpNeg:
			i, ok := v.(Int)
			if !ok {
				return nil, fmt.Errorf("negate non-integer %s", v)
			}
			return Int(-i), nil
		case OpNot:
			b, ok := v.(Bool)
			if !ok {
				return nil, fmt.Errorf("not of non-boolean %s", v)
			}
			return Bool(!b), nil
		}
		return nil, fmt.Errorf("unknown unary operator %d", x.Op)
	case Binary:
		return evalBinary(x)
	case DotExpr:
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := Eval(a)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		if len(args) == 0 {
			return x.Head, nil
		}
		return Dotted{Head: x.Head, Args: args}, nil
	case SetAddExpr:
		base, err := Eval(x.Base)
		if err != nil {
			return nil, err
		}
		set, ok := base.(SetValue)
		if !ok {
			return nil, fmt.Errorf("union base is not a set: %s", base)
		}
		el, err := Eval(x.Elem)
		if err != nil {
			return nil, err
		}
		return set.Add(el), nil
	case MemberExpr:
		el, err := Eval(x.Elem)
		if err != nil {
			return nil, err
		}
		sv, err := Eval(x.Set)
		if err != nil {
			return nil, err
		}
		set, ok := sv.(SetValue)
		if !ok {
			return nil, fmt.Errorf("member of non-set %s", sv)
		}
		return Bool(set.Contains(el)), nil
	case nil:
		return nil, fmt.Errorf("nil expression")
	}
	return nil, fmt.Errorf("unknown expression %T", e)
}

func evalBinary(b Binary) (Value, error) {
	lv, err := Eval(b.L)
	if err != nil {
		return nil, err
	}
	// Short-circuit booleans.
	if b.Op == OpAnd || b.Op == OpOr {
		lb, ok := lv.(Bool)
		if !ok {
			return nil, fmt.Errorf("boolean operator on %s", lv)
		}
		if b.Op == OpAnd && !bool(lb) {
			return Bool(false), nil
		}
		if b.Op == OpOr && bool(lb) {
			return Bool(true), nil
		}
		rv, err := Eval(b.R)
		if err != nil {
			return nil, err
		}
		rb, ok := rv.(Bool)
		if !ok {
			return nil, fmt.Errorf("boolean operator on %s", rv)
		}
		return rb, nil
	}
	rv, err := Eval(b.R)
	if err != nil {
		return nil, err
	}
	switch b.Op {
	case OpEq:
		return Bool(lv.Equal(rv)), nil
	case OpNe:
		return Bool(!lv.Equal(rv)), nil
	}
	li, lok := lv.(Int)
	ri, rok := rv.(Int)
	if !lok || !rok {
		return nil, fmt.Errorf("arithmetic on non-integers %s %s %s", lv, b.Op, rv)
	}
	switch b.Op {
	case OpAdd:
		return li + ri, nil
	case OpSub:
		return li - ri, nil
	case OpMul:
		return li * ri, nil
	case OpDiv:
		if ri == 0 {
			return nil, fmt.Errorf("division by zero")
		}
		return li / ri, nil
	case OpMod:
		if ri == 0 {
			return nil, fmt.Errorf("modulo by zero")
		}
		return li % ri, nil
	case OpLt:
		return Bool(li < ri), nil
	case OpLe:
		return Bool(li <= ri), nil
	case OpGt:
		return Bool(li > ri), nil
	case OpGe:
		return Bool(li >= ri), nil
	}
	return nil, fmt.Errorf("unknown binary operator %d", b.Op)
}
