package csp

import (
	"errors"
	"fmt"
)

// Transition is one step of the operational semantics: the process can
// perform Ev and then behave as To.
type Transition struct {
	Ev Event
	To Process
}

// ErrUnguardedRecursion is returned when expanding process calls exceeds
// the expansion budget without reaching a prefix, which indicates an
// unguarded recursive definition such as P = P.
var ErrUnguardedRecursion = errors.New("unguarded recursion: expansion budget exceeded")

// maxExpansions bounds how many CallProc expansions may occur while
// computing the transitions of a single term.
const maxExpansions = 4096

// Semantics computes operational-semantics transitions of process terms
// within a fixed definition environment and channel context.
type Semantics struct {
	Env *Env
	Ctx *Context
}

// NewSemantics pairs a definition environment with a channel context.
func NewSemantics(env *Env, ctx *Context) *Semantics {
	return &Semantics{Env: env, Ctx: ctx}
}

// Transitions returns every transition the term can perform.
func (s *Semantics) Transitions(p Process) ([]Transition, error) {
	budget := maxExpansions
	return s.transitions(p, &budget)
}

func (s *Semantics) transitions(p Process, budget *int) ([]Transition, error) {
	switch t := p.(type) {
	case StopProc, OmegaProc:
		return nil, nil
	case SkipProc:
		return []Transition{{Ev: Tick(), To: OmegaProc{}}}, nil
	case PrefixProc:
		return s.prefixTransitions(t)
	case ExtChoiceProc:
		return s.extChoiceTransitions(t, budget)
	case IntChoiceProc:
		return []Transition{
			{Ev: Tau(), To: t.L},
			{Ev: Tau(), To: t.R},
		}, nil
	case SeqProc:
		return s.seqTransitions(t, budget)
	case ParProc:
		return s.parTransitions(t, budget)
	case HideProc:
		return s.hideTransitions(t, budget)
	case RenameProc:
		return s.renameTransitions(t, budget)
	case IfProc:
		v, err := Eval(t.Cond)
		if err != nil {
			return nil, fmt.Errorf("conditional guard: %w", err)
		}
		b, ok := v.(Bool)
		if !ok {
			return nil, fmt.Errorf("conditional guard is not boolean: %s", v)
		}
		if b {
			return s.transitions(t.Then, budget)
		}
		return s.transitions(t.Else, budget)
	case CallProc:
		if *budget <= 0 {
			return nil, fmt.Errorf("expanding %s: %w", t.Key(), ErrUnguardedRecursion)
		}
		*budget--
		body, err := s.Env.Expand(t)
		if err != nil {
			return nil, err
		}
		return s.transitions(body, budget)
	case nil:
		return nil, errors.New("nil process")
	}
	return nil, fmt.Errorf("unknown process node %T", p)
}

// prefixTransitions enumerates the concrete events a prefix offers. Input
// fields range over the channel's declared field type (filtered by any
// restriction predicate); output fields are evaluated and validated
// against the field type.
func (s *Semantics) prefixTransitions(p PrefixProc) ([]Transition, error) {
	ch, ok := s.Ctx.Channel(p.Chan)
	if !ok {
		return nil, fmt.Errorf("prefix on undeclared channel %q", p.Chan)
	}
	if len(p.Fields) != len(ch.Fields) {
		return nil, fmt.Errorf("channel %q has %d field(s), prefix supplies %d",
			p.Chan, len(ch.Fields), len(p.Fields))
	}
	var out []Transition
	args := make([]Value, len(p.Fields))
	var rec func(i int, cont Process, rest []CommField) error
	rec = func(i int, cont Process, rest []CommField) error {
		if i == len(p.Fields) {
			cp := make([]Value, len(args))
			copy(cp, args)
			out = append(out, Transition{
				Ev: Event{Chan: p.Chan, Args: cp},
				To: cont,
			})
			return nil
		}
		f := rest[0]
		if !f.IsInput {
			v, err := Eval(f.Expr)
			if err != nil {
				return fmt.Errorf("output field %d of channel %q: %w", i, p.Chan, err)
			}
			if !ch.Fields[i].Contains(v) {
				return fmt.Errorf("value %s outside domain %s of channel %q field %d",
					v, ch.Fields[i].Name(), p.Chan, i)
			}
			args[i] = v
			return rec(i+1, cont, rest[1:])
		}
		for _, v := range ch.Fields[i].Values() {
			if f.Restrict != nil {
				rv, err := Eval(f.Restrict.subst(f.Var, v))
				if err != nil {
					return fmt.Errorf("input restriction on %q: %w", f.Var, err)
				}
				b, ok := rv.(Bool)
				if !ok {
					return fmt.Errorf("input restriction on %q is not boolean", f.Var)
				}
				if !b {
					continue
				}
			}
			args[i] = v
			// Bind the input variable in the remaining fields and the
			// continuation.
			nrest := make([]CommField, len(rest)-1)
			for j, rf := range rest[1:] {
				nf := rf
				if rf.IsInput {
					if rf.Restrict != nil && rf.Var != f.Var {
						nf.Restrict = rf.Restrict.subst(f.Var, v)
					}
				} else {
					nf.Expr = rf.Expr.subst(f.Var, v)
				}
				nrest[j] = nf
				if rf.IsInput && rf.Var == f.Var {
					// Shadowed: stop substituting further (copy rest as-is).
					copy(nrest[j+1:], rest[j+2:])
					break
				}
			}
			ncont := cont.Subst(f.Var, v)
			if err := rec(i+1, ncont, nrest); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, p.Cont, p.Fields); err != nil {
		return nil, err
	}
	return out, nil
}

func (s *Semantics) extChoiceTransitions(p ExtChoiceProc, budget *int) ([]Transition, error) {
	lt, err := s.transitions(p.L, budget)
	if err != nil {
		return nil, err
	}
	rt, err := s.transitions(p.R, budget)
	if err != nil {
		return nil, err
	}
	out := make([]Transition, 0, len(lt)+len(rt))
	for _, tr := range lt {
		if tr.Ev.IsTau() {
			// Tau does not resolve external choice.
			out = append(out, Transition{Ev: Tau(), To: ExtChoiceProc{L: tr.To, R: p.R}})
		} else {
			out = append(out, tr)
		}
	}
	for _, tr := range rt {
		if tr.Ev.IsTau() {
			out = append(out, Transition{Ev: Tau(), To: ExtChoiceProc{L: p.L, R: tr.To}})
		} else {
			out = append(out, tr)
		}
	}
	return out, nil
}

func (s *Semantics) seqTransitions(p SeqProc, budget *int) ([]Transition, error) {
	lt, err := s.transitions(p.L, budget)
	if err != nil {
		return nil, err
	}
	out := make([]Transition, 0, len(lt))
	for _, tr := range lt {
		if tr.Ev.IsTick() {
			// Termination of the first component is internal to P;Q.
			out = append(out, Transition{Ev: Tau(), To: p.R})
		} else {
			out = append(out, Transition{Ev: tr.Ev, To: SeqProc{L: tr.To, R: p.R}})
		}
	}
	return out, nil
}

func (s *Semantics) parTransitions(p ParProc, budget *int) ([]Transition, error) {
	lt, err := s.transitions(p.L, budget)
	if err != nil {
		return nil, err
	}
	rt, err := s.transitions(p.R, budget)
	if err != nil {
		return nil, err
	}
	var out []Transition
	leftTick, rightTick := false, false
	for _, tr := range lt {
		switch {
		case tr.Ev.IsTick():
			leftTick = true
		case tr.Ev.IsTau() || !p.Sync.Contains(tr.Ev):
			out = append(out, Transition{Ev: tr.Ev, To: ParProc{L: tr.To, R: p.R, Sync: p.Sync}})
		}
	}
	for _, tr := range rt {
		switch {
		case tr.Ev.IsTick():
			rightTick = true
		case tr.Ev.IsTau() || !p.Sync.Contains(tr.Ev):
			out = append(out, Transition{Ev: tr.Ev, To: ParProc{L: p.L, R: tr.To, Sync: p.Sync}})
		}
	}
	// Synchronised events: both components must agree on the event.
	for _, ltr := range lt {
		if !ltr.Ev.IsVisible() || !p.Sync.Contains(ltr.Ev) {
			continue
		}
		for _, rtr := range rt {
			if rtr.Ev.IsVisible() && p.Sync.Contains(rtr.Ev) && ltr.Ev.Equal(rtr.Ev) {
				out = append(out, Transition{
					Ev: ltr.Ev,
					To: ParProc{L: ltr.To, R: rtr.To, Sync: p.Sync},
				})
			}
		}
	}
	// Distributed termination: the composition terminates when both can.
	if leftTick && rightTick {
		out = append(out, Transition{Ev: Tick(), To: OmegaProc{}})
	}
	return out, nil
}

func (s *Semantics) hideTransitions(p HideProc, budget *int) ([]Transition, error) {
	inner, err := s.transitions(p.P, budget)
	if err != nil {
		return nil, err
	}
	out := make([]Transition, 0, len(inner))
	for _, tr := range inner {
		switch {
		case tr.Ev.IsTick():
			out = append(out, Transition{Ev: Tick(), To: OmegaProc{}})
		case p.Set.Contains(tr.Ev):
			out = append(out, Transition{Ev: Tau(), To: HideProc{P: tr.To, Set: p.Set}})
		default:
			out = append(out, Transition{Ev: tr.Ev, To: HideProc{P: tr.To, Set: p.Set}})
		}
	}
	return out, nil
}

func (s *Semantics) renameTransitions(p RenameProc, budget *int) ([]Transition, error) {
	inner, err := s.transitions(p.P, budget)
	if err != nil {
		return nil, err
	}
	out := make([]Transition, 0, len(inner))
	for _, tr := range inner {
		ev := tr.Ev
		if ev.IsVisible() {
			if to, ok := p.Mapping[ev.Chan]; ok {
				ev = Event{Chan: to, Args: ev.Args}
			}
		}
		if tr.Ev.IsTick() {
			out = append(out, Transition{Ev: Tick(), To: OmegaProc{}})
			continue
		}
		out = append(out, Transition{Ev: ev, To: RenameProc{P: tr.To, Mapping: p.Mapping}})
	}
	return out, nil
}
