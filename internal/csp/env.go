package csp

import (
	"fmt"
	"sort"
)

// Definition is a named, possibly parameterised, process equation
// Name(params...) = Body.
type Definition struct {
	Name   string
	Params []string
	Body   Process
}

// Env is a set of process definitions, the binding environment in which
// CallProc references are resolved. It corresponds to the equation
// section of a CSPm script.
type Env struct {
	defs map[string]Definition
}

// NewEnv returns an empty definition environment.
func NewEnv() *Env {
	return &Env{defs: make(map[string]Definition)}
}

// Define registers a process equation. Redefinition is an error.
func (e *Env) Define(name string, params []string, body Process) error {
	if _, dup := e.defs[name]; dup {
		return fmt.Errorf("process %q already defined", name)
	}
	e.defs[name] = Definition{Name: name, Params: params, Body: body}
	return nil
}

// MustDefine is Define that panics on error; for static model building.
// The panic value is a *BuildError, so builder functions can recover it
// into a returned error with RecoverBuild.
func (e *Env) MustDefine(name string, params []string, body Process) {
	if err := e.Define(name, params, body); err != nil {
		panic(&BuildError{Op: "define", Name: name, Err: err})
	}
}

// Lookup finds a definition by name.
func (e *Env) Lookup(name string) (Definition, bool) {
	d, ok := e.defs[name]
	return d, ok
}

// Names returns the defined process names, sorted.
func (e *Env) Names() []string {
	out := make([]string, 0, len(e.defs))
	for n := range e.defs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Expand resolves a call: it evaluates the argument expressions and
// substitutes them for the definition's parameters in its body.
func (e *Env) Expand(c CallProc) (Process, error) {
	def, ok := e.defs[c.Name]
	if !ok {
		return nil, fmt.Errorf("undefined process %q", c.Name)
	}
	if len(def.Params) != len(c.Args) {
		return nil, fmt.Errorf("process %q expects %d argument(s), got %d",
			c.Name, len(def.Params), len(c.Args))
	}
	body := def.Body
	for i, p := range def.Params {
		v, err := Eval(c.Args[i])
		if err != nil {
			return nil, fmt.Errorf("argument %d of %q: %w", i, c.Name, err)
		}
		body = body.Subst(p, v)
	}
	return body, nil
}
