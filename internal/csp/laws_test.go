package csp

import (
	"testing"
	"testing/quick"
)

// This file property-tests the algebraic laws of the trace semantics
// (section IV-A of the paper) on randomly generated finite processes:
// the laws are stated over traces(P), so two processes are "equal" when
// their bounded trace sets coincide.

const lawBound = 5

// lawContext declares the fixed alphabet the generated processes use.
func lawContext() *Context {
	ctx := NewContext()
	for _, name := range []string{"a", "b", "c", "d"} {
		ctx.MustChannel(name)
	}
	return ctx
}

// genProcess derives a small random process term from a seed.
func genProcess(seed uint64, depth int) Process {
	events := []string{"a", "b", "c", "d"}
	pick := seed % 8
	seed /= 8
	if depth <= 0 {
		switch pick % 3 {
		case 0:
			return Stop()
		case 1:
			return Skip()
		default:
			return DoEvent(events[seed%4], Stop())
		}
	}
	l := genProcess(seed/3, depth-1)
	r := genProcess(seed/7+1, depth-1)
	switch pick {
	case 0:
		return Stop()
	case 1:
		return Skip()
	case 2:
		return DoEvent(events[seed%4], l)
	case 3:
		return ExtChoice(l, r)
	case 4:
		return IntChoice(l, r)
	case 5:
		return Seq(l, r)
	case 6:
		return Interleave(l, r)
	default:
		return Par(l, Events(Ev(events[seed%4])), r)
	}
}

// sameTraces reports whether two processes have identical bounded trace
// sets.
func sameTraces(t *testing.T, sem *Semantics, p, q Process) bool {
	t.Helper()
	tp, err := Traces(sem, p, lawBound)
	if err != nil {
		t.Fatalf("traces of %s: %v", p.Key(), err)
	}
	tq, err := Traces(sem, q, lawBound)
	if err != nil {
		t.Fatalf("traces of %s: %v", q.Key(), err)
	}
	okPQ, _ := tp.SubsetOf(tq)
	okQP, _ := tq.SubsetOf(tp)
	return okPQ && okQP
}

func lawCheck(t *testing.T, law func(p, q, r Process) (Process, Process)) {
	t.Helper()
	sem := NewSemantics(NewEnv(), lawContext())
	prop := func(seed uint64) bool {
		p := genProcess(seed, 2)
		q := genProcess(seed/5+2, 2)
		r := genProcess(seed/11+3, 2)
		lhs, rhs := law(p, q, r)
		return sameTraces(t, sem, lhs, rhs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLawExtChoiceCommutative(t *testing.T) {
	lawCheck(t, func(p, q, _ Process) (Process, Process) {
		return ExtChoice(p, q), ExtChoice(q, p)
	})
}

func TestLawExtChoiceAssociative(t *testing.T) {
	lawCheck(t, func(p, q, r Process) (Process, Process) {
		return ExtChoice(ExtChoice(p, q), r), ExtChoice(p, ExtChoice(q, r))
	})
}

func TestLawExtChoiceIdempotentTraces(t *testing.T) {
	lawCheck(t, func(p, _, _ Process) (Process, Process) {
		return ExtChoice(p, p), p
	})
}

func TestLawExtChoiceUnitStop(t *testing.T) {
	lawCheck(t, func(p, _, _ Process) (Process, Process) {
		return ExtChoice(p, Stop()), p
	})
}

func TestLawIntChoiceEqualsExtChoiceInTraces(t *testing.T) {
	// In the traces model (only), P |~| Q and P [] Q are
	// indistinguishable: traces(P |~| Q) = traces(P) ∪ traces(Q).
	lawCheck(t, func(p, q, _ Process) (Process, Process) {
		return IntChoice(p, q), ExtChoice(p, q)
	})
}

func TestLawInterleaveCommutative(t *testing.T) {
	lawCheck(t, func(p, q, _ Process) (Process, Process) {
		return Interleave(p, q), Interleave(q, p)
	})
}

func TestLawParallelCommutative(t *testing.T) {
	sync := Events(Ev("a"), Ev("b"))
	lawCheck(t, func(p, q, _ Process) (Process, Process) {
		return Par(p, sync, q), Par(q, sync, p)
	})
}

func TestLawSeqUnitSkip(t *testing.T) {
	lawCheck(t, func(p, _, _ Process) (Process, Process) {
		return Seq(Skip(), p), p
	})
}

func TestLawSeqStopAnnihilates(t *testing.T) {
	// STOP ; P never reaches P: traces(STOP;P) = {<>}.
	lawCheck(t, func(p, _, _ Process) (Process, Process) {
		return Seq(Stop(), p), Stop()
	})
}

func TestLawPrefixDistributesOverIntChoiceTraces(t *testing.T) {
	// a -> (P |~| Q) =T (a -> P) |~| (a -> Q).
	lawCheck(t, func(p, q, _ Process) (Process, Process) {
		return DoEvent("a", IntChoice(p, q)),
			IntChoice(DoEvent("a", p), DoEvent("a", q))
	})
}

func TestLawHideNothingIsIdentity(t *testing.T) {
	empty := NewEventSet()
	lawCheck(t, func(p, _, _ Process) (Process, Process) {
		return Hide(p, empty), p
	})
}

func TestLawHideComposition(t *testing.T) {
	// (P \ A) \ B =T P \ (A ∪ B).
	setA := Events(Ev("a"))
	setB := Events(Ev("b"))
	union := setA.Union(setB)
	lawCheck(t, func(p, _, _ Process) (Process, Process) {
		return Hide(Hide(p, setA), setB), Hide(p, union)
	})
}

func TestLawTraceSetsPrefixClosed(t *testing.T) {
	// For every generated process, the bounded trace set is prefix
	// closed (the defining invariant of traces(P) in section IV-A).
	sem := NewSemantics(NewEnv(), lawContext())
	prop := func(seed uint64) bool {
		p := genProcess(seed, 3)
		ts, err := Traces(sem, p, lawBound)
		if err != nil {
			t.Fatalf("traces: %v", err)
		}
		for _, tr := range ts.Slice() {
			if len(tr) == 0 {
				continue
			}
			if !ts.Contains(tr[:len(tr)-1]) {
				return false
			}
		}
		return ts.Contains(Trace{})
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestLawTickIsAlwaysFinal(t *testing.T) {
	// Tick only appears as the last event of a trace.
	sem := NewSemantics(NewEnv(), lawContext())
	prop := func(seed uint64) bool {
		p := genProcess(seed, 3)
		ts, err := Traces(sem, p, lawBound)
		if err != nil {
			t.Fatalf("traces: %v", err)
		}
		for _, tr := range ts.Slice() {
			for i, ev := range tr {
				if ev.IsTick() && i != len(tr)-1 {
					return false
				}
				if ev.IsTau() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestLawRenamingBijective(t *testing.T) {
	// Renaming a->b then b->a over processes that do not use b is the
	// identity.
	mapAB := map[string]string{"a": "b"}
	mapBA := map[string]string{"b": "a"}
	sem := NewSemantics(NewEnv(), lawContext())
	prop := func(seed uint64) bool {
		p := genProcess(seed, 2)
		// Filter: regenerate trace sets and check the law only when b is
		// unused by p (renaming is not injective otherwise).
		tp, err := Traces(sem, p, lawBound)
		if err != nil {
			t.Fatalf("traces: %v", err)
		}
		for _, tr := range tp.Slice() {
			for _, ev := range tr {
				if ev.Chan == "b" {
					return true // vacuously pass
				}
			}
		}
		return sameTraces(t, sem, Rename(Rename(p, mapAB), mapBA), p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLawSubstitutionIdempotentOnClosed(t *testing.T) {
	// Generated processes are closed, so substitution is the identity.
	prop := func(seed uint64) bool {
		p := genProcess(seed, 3)
		return p.Subst("x", Int(1)).Key() == p.Key()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
