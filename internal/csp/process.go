package csp

import (
	"sort"
	"strings"
)

// Process is a CSP process term. Terms are immutable; taking a transition
// produces a new term (input bindings are applied by substitution, so a
// term is always closed and Key returns a canonical state identifier).
type Process interface {
	// Key returns canonical syntax for the term, used to identify LTS
	// states during exploration.
	Key() string
	// Subst replaces free occurrences of a variable with a value.
	Subst(name string, v Value) Process
}

// StopProc is the deadlocked process STOP: it engages in no event.
type StopProc struct{}

// Key returns "STOP".
func (StopProc) Key() string { return "STOP" }

// Subst returns STOP unchanged.
func (s StopProc) Subst(string, Value) Process { return s }

// SkipProc is SKIP: it terminates successfully (performs tick).
type SkipProc struct{}

// Key returns "SKIP".
func (SkipProc) Key() string { return "SKIP" }

// Subst returns SKIP unchanged.
func (s SkipProc) Subst(string, Value) Process { return s }

// OmegaProc is the terminated process reached after tick.
type OmegaProc struct{}

// Key returns "Ω".
func (OmegaProc) Key() string { return "Ω" }

// Subst returns Ω unchanged.
func (o OmegaProc) Subst(string, Value) Process { return o }

// Stop returns the STOP process.
func Stop() Process { return StopProc{} }

// Skip returns the SKIP process.
func Skip() Process { return SkipProc{} }

// CommField is one dotted component of a prefix communication: either an
// output expression (c!e or c.e) or an input binder (c?x), optionally
// restricted by a predicate over the bound variable (c?x:pred).
type CommField struct {
	IsInput  bool
	Var      string // input binder name (IsInput)
	Restrict Expr   // optional boolean predicate mentioning Var (IsInput)
	Expr     Expr   // output expression (!IsInput)
}

// In builds an unrestricted input field c?x.
func In(name string) CommField { return CommField{IsInput: true, Var: name} }

// InSuchThat builds a restricted input field: only values for which pred
// (an expression over the bound variable) evaluates true are offered.
func InSuchThat(name string, pred Expr) CommField {
	return CommField{IsInput: true, Var: name, Restrict: pred}
}

// Out builds an output field c!e.
func Out(e Expr) CommField { return CommField{Expr: e} }

// OutVal builds an output field carrying a literal value.
func OutVal(v Value) CommField { return CommField{Expr: Lit{Val: v}} }

func (f CommField) key() string {
	if f.IsInput {
		if f.Restrict != nil {
			return "?" + f.Var + ":" + f.Restrict.Key()
		}
		return "?" + f.Var
	}
	return "!" + f.Expr.Key()
}

// PrefixProc is the prefix process c<fields> -> P.
type PrefixProc struct {
	Chan   string
	Fields []CommField
	Cont   Process
}

// Key returns canonical prefix syntax.
func (p PrefixProc) Key() string {
	var sb strings.Builder
	sb.WriteString(p.Chan)
	for _, f := range p.Fields {
		sb.WriteString(f.key())
	}
	sb.WriteString(" -> ")
	sb.WriteString(p.Cont.Key())
	return sb.String()
}

// Subst substitutes into output expressions, input restrictions and the
// continuation, respecting shadowing by input binders.
func (p PrefixProc) Subst(name string, v Value) Process {
	fields := make([]CommField, len(p.Fields))
	shadowed := false
	for i, f := range p.Fields {
		nf := f
		if !shadowed {
			if f.IsInput {
				if f.Restrict != nil && f.Var != name {
					nf.Restrict = f.Restrict.subst(name, v)
				}
				if f.Var == name {
					shadowed = true
				}
			} else {
				nf.Expr = f.Expr.subst(name, v)
			}
		}
		fields[i] = nf
	}
	cont := p.Cont
	if !shadowed {
		cont = cont.Subst(name, v)
	}
	return PrefixProc{Chan: p.Chan, Fields: fields, Cont: cont}
}

// ExtChoiceProc is external choice P [] Q.
type ExtChoiceProc struct{ L, R Process }

// Key returns canonical choice syntax.
func (p ExtChoiceProc) Key() string { return "(" + p.L.Key() + " [] " + p.R.Key() + ")" }

// Subst substitutes into both branches.
func (p ExtChoiceProc) Subst(name string, v Value) Process {
	return ExtChoiceProc{L: p.L.Subst(name, v), R: p.R.Subst(name, v)}
}

// IntChoiceProc is internal (nondeterministic) choice P |~| Q.
type IntChoiceProc struct{ L, R Process }

// Key returns canonical choice syntax.
func (p IntChoiceProc) Key() string { return "(" + p.L.Key() + " |~| " + p.R.Key() + ")" }

// Subst substitutes into both branches.
func (p IntChoiceProc) Subst(name string, v Value) Process {
	return IntChoiceProc{L: p.L.Subst(name, v), R: p.R.Subst(name, v)}
}

// SeqProc is sequential composition P ; Q: behaves as P until it
// terminates, then as Q.
type SeqProc struct{ L, R Process }

// Key returns canonical sequence syntax.
func (p SeqProc) Key() string { return "(" + p.L.Key() + " ; " + p.R.Key() + ")" }

// Subst substitutes into both components.
func (p SeqProc) Subst(name string, v Value) Process {
	return SeqProc{L: p.L.Subst(name, v), R: p.R.Subst(name, v)}
}

// ParProc is generalised parallel P [| Sync |] Q: the components
// synchronise on every event in Sync (and on termination); all other
// events interleave. An empty Sync gives pure interleaving P ||| Q.
type ParProc struct {
	L, R Process
	Sync *EventSet
}

// Key returns canonical parallel syntax.
func (p ParProc) Key() string {
	return "(" + p.L.Key() + " [|" + p.Sync.Key() + "|] " + p.R.Key() + ")"
}

// Subst substitutes into both components.
func (p ParProc) Subst(name string, v Value) Process {
	return ParProc{L: p.L.Subst(name, v), R: p.R.Subst(name, v), Sync: p.Sync}
}

// HideProc is hiding P \ A: events in A become internal (tau).
type HideProc struct {
	P   Process
	Set *EventSet
}

// Key returns canonical hiding syntax.
func (p HideProc) Key() string { return "(" + p.P.Key() + " \\ " + p.Set.Key() + ")" }

// Subst substitutes into the hidden process.
func (p HideProc) Subst(name string, v Value) Process {
	return HideProc{P: p.P.Subst(name, v), Set: p.Set}
}

// RenameProc renames channels of P: an event on channel c is presented to
// the environment as the same event on channel Mapping[c]. Channels not
// in the mapping are unchanged. This is functional (one-to-one per
// channel) renaming, sufficient for intruder plumbing.
type RenameProc struct {
	P       Process
	Mapping map[string]string
}

// Key returns canonical renaming syntax.
func (p RenameProc) Key() string {
	pairs := make([]string, 0, len(p.Mapping))
	for from, to := range p.Mapping {
		pairs = append(pairs, from+"<-"+to)
	}
	sort.Strings(pairs)
	return "(" + p.P.Key() + "[[" + strings.Join(pairs, ",") + "]])"
}

// Subst substitutes into the renamed process.
func (p RenameProc) Subst(name string, v Value) Process {
	return RenameProc{P: p.P.Subst(name, v), Mapping: p.Mapping}
}

// IfProc is the conditional process if Cond then Then else Else. The
// condition must be closed by the time the process is explored.
type IfProc struct {
	Cond Expr
	Then Process
	Else Process
}

// Key returns canonical conditional syntax.
func (p IfProc) Key() string {
	return "(if " + p.Cond.Key() + " then " + p.Then.Key() + " else " + p.Else.Key() + ")"
}

// Subst substitutes into the condition and both branches.
func (p IfProc) Subst(name string, v Value) Process {
	return IfProc{
		Cond: p.Cond.subst(name, v),
		Then: p.Then.Subst(name, v),
		Else: p.Else.Subst(name, v),
	}
}

// CallProc is a reference to a named (possibly parameterised) process
// definition resolved in an Env, enabling recursion: P = a -> P.
type CallProc struct {
	Name string
	Args []Expr
}

// Key returns canonical call syntax.
func (p CallProc) Key() string {
	if len(p.Args) == 0 {
		return p.Name
	}
	parts := make([]string, len(p.Args))
	for i, a := range p.Args {
		parts[i] = a.Key()
	}
	return p.Name + "(" + strings.Join(parts, ",") + ")"
}

// Subst substitutes into the argument expressions.
func (p CallProc) Subst(name string, v Value) Process {
	args := make([]Expr, len(p.Args))
	for i, a := range p.Args {
		args[i] = a.subst(name, v)
	}
	return CallProc{Name: p.Name, Args: args}
}

// Compile-time interface checks.
var (
	_ Process = StopProc{}
	_ Process = SkipProc{}
	_ Process = OmegaProc{}
	_ Process = PrefixProc{}
	_ Process = ExtChoiceProc{}
	_ Process = IntChoiceProc{}
	_ Process = SeqProc{}
	_ Process = ParProc{}
	_ Process = HideProc{}
	_ Process = RenameProc{}
	_ Process = IfProc{}
	_ Process = CallProc{}
)
