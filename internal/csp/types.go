package csp

import (
	"fmt"
	"strings"
)

// Type describes a finite domain of values, used to type channel fields
// and to enumerate the possible bindings of an input prefix c?x.
type Type interface {
	// Values enumerates every member of the type in a deterministic order.
	Values() []Value
	// Contains reports whether v is a member of the type.
	Contains(v Value) bool
	// Name returns a printable name for diagnostics.
	Name() string
}

// IntRange is the integer interval {Lo..Hi}, inclusive.
type IntRange struct {
	Lo, Hi int
}

// Values enumerates Lo..Hi.
func (r IntRange) Values() []Value {
	if r.Hi < r.Lo {
		return nil
	}
	out := make([]Value, 0, r.Hi-r.Lo+1)
	for i := r.Lo; i <= r.Hi; i++ {
		out = append(out, Int(i))
	}
	return out
}

// Contains reports whether v is an Int within the interval.
func (r IntRange) Contains(v Value) bool {
	i, ok := v.(Int)
	return ok && int(i) >= r.Lo && int(i) <= r.Hi
}

// Name returns the interval in CSPm set notation.
func (r IntRange) Name() string { return fmt.Sprintf("{%d..%d}", r.Lo, r.Hi) }

// BoolType is the two-element boolean domain.
type BoolType struct{}

// Values enumerates false then true.
func (BoolType) Values() []Value { return []Value{Bool(false), Bool(true)} }

// Contains reports whether v is a Bool.
func (BoolType) Contains(v Value) bool {
	_, ok := v.(Bool)
	return ok
}

// Name returns "Bool".
func (BoolType) Name() string { return "Bool" }

// Ctor is one constructor of a DataType: a head symbol plus the types of
// its dotted arguments (empty for nullary constructors).
type Ctor struct {
	Head   Sym
	Fields []Type
}

// DataType is a CSPm-style datatype: a finite sum of constructors, each
// possibly carrying dotted payload fields, e.g.
// datatype Msg = reqSw | rptSw | mac.Key.Payload.
type DataType struct {
	TypeName string
	Ctors    []Ctor
}

// Values enumerates every value of the datatype: each nullary constructor
// as a Sym, and each payload-carrying constructor applied to every
// combination of its field values.
func (d DataType) Values() []Value {
	var out []Value
	for _, c := range d.Ctors {
		if len(c.Fields) == 0 {
			out = append(out, c.Head)
			continue
		}
		for _, combo := range cartesian(c.Fields) {
			out = append(out, NewDotted(c.Head, combo...))
		}
	}
	return out
}

// Contains reports whether v is a value of this datatype.
func (d DataType) Contains(v Value) bool {
	switch val := v.(type) {
	case Sym:
		for _, c := range d.Ctors {
			if c.Head == val && len(c.Fields) == 0 {
				return true
			}
		}
	case Dotted:
		for _, c := range d.Ctors {
			if c.Head != val.Head || len(c.Fields) != len(val.Args) {
				continue
			}
			ok := true
			for i, f := range c.Fields {
				if !f.Contains(val.Args[i]) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
	}
	return false
}

// Name returns the datatype's declared name.
func (d DataType) Name() string { return d.TypeName }

// EnumType is a convenience for a datatype of nullary constructors only.
func EnumType(name string, syms ...Sym) DataType {
	ctors := make([]Ctor, len(syms))
	for i, s := range syms {
		ctors[i] = Ctor{Head: s}
	}
	return DataType{TypeName: name, Ctors: ctors}
}

// UnionType is the union of several component types.
type UnionType struct {
	TypeName string
	Members  []Type
}

// Values enumerates the members of every component type, deduplicated.
func (u UnionType) Values() []Value {
	var out []Value
	seen := map[string]bool{}
	for _, m := range u.Members {
		for _, v := range m.Values() {
			k := v.String()
			if !seen[k] {
				seen[k] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Contains reports whether any component type contains v.
func (u UnionType) Contains(v Value) bool {
	for _, m := range u.Members {
		if m.Contains(v) {
			return true
		}
	}
	return false
}

// Name returns the union's declared name.
func (u UnionType) Name() string { return u.TypeName }

// ExplicitType is a finite type given by an explicit list of values.
type ExplicitType struct {
	TypeName string
	Elems    []Value
}

// Values returns the explicit member list. Callers must not mutate it.
func (e ExplicitType) Values() []Value { return e.Elems }

// Contains reports whether v is one of the explicit members.
func (e ExplicitType) Contains(v Value) bool {
	for _, m := range e.Elems {
		if m.Equal(v) {
			return true
		}
	}
	return false
}

// Name returns the explicit type's declared name.
func (e ExplicitType) Name() string { return e.TypeName }

// Channel declares a typed channel: events on it are the channel name
// dotted with one value per field.
type Channel struct {
	ChanName string
	Fields   []Type
}

// Context holds the channel and type declarations a process alphabet is
// drawn from. It corresponds to the channel/datatype/nametype declaration
// section of a CSPm script.
type Context struct {
	channels map[string]*Channel
	order    []string
	types    map[string]Type
}

// NewContext returns an empty declaration context.
func NewContext() *Context {
	return &Context{
		channels: make(map[string]*Channel),
		types:    make(map[string]Type),
	}
}

// DeclareChannel registers a channel with the given field types. It
// returns an error if the name is already declared.
func (c *Context) DeclareChannel(name string, fields ...Type) error {
	if _, dup := c.channels[name]; dup {
		return fmt.Errorf("channel %q already declared", name)
	}
	c.channels[name] = &Channel{ChanName: name, Fields: fields}
	c.order = append(c.order, name)
	return nil
}

// MustChannel is DeclareChannel that panics on duplicates; intended for
// static model construction. The panic value is a *BuildError, so
// builder functions can recover it into a returned error with
// RecoverBuild.
func (c *Context) MustChannel(name string, fields ...Type) {
	if err := c.DeclareChannel(name, fields...); err != nil {
		panic(&BuildError{Op: "channel", Name: name, Err: err})
	}
}

// Channel looks up a declared channel.
func (c *Context) Channel(name string) (*Channel, bool) {
	ch, ok := c.channels[name]
	return ch, ok
}

// ChannelNames returns declared channel names in declaration order.
func (c *Context) ChannelNames() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// DeclareType registers a named type (datatype or nametype).
func (c *Context) DeclareType(name string, t Type) error {
	if _, dup := c.types[name]; dup {
		return fmt.Errorf("type %q already declared", name)
	}
	c.types[name] = t
	return nil
}

// Type looks up a declared type by name.
func (c *Context) Type(name string) (Type, bool) {
	t, ok := c.types[name]
	return t, ok
}

// EventsOf enumerates every event of the named channel (the CSPm
// production set {| name |}).
func (c *Context) EventsOf(name string) ([]Event, error) {
	ch, ok := c.channels[name]
	if !ok {
		return nil, fmt.Errorf("channel %q not declared", name)
	}
	if len(ch.Fields) == 0 {
		return []Event{{Chan: name}}, nil
	}
	combos := cartesian(ch.Fields)
	out := make([]Event, 0, len(combos))
	for _, combo := range combos {
		out = append(out, Event{Chan: name, Args: combo})
	}
	return out, nil
}

// AllEvents enumerates the full alphabet Sigma: every event of every
// declared channel, in declaration order.
func (c *Context) AllEvents() []Event {
	var out []Event
	for _, name := range c.order {
		evs, _ := c.EventsOf(name)
		out = append(out, evs...)
	}
	return out
}

// cartesian enumerates the cartesian product of the value domains of the
// given types, in lexicographic order of the component enumerations.
func cartesian(fields []Type) [][]Value {
	if len(fields) == 0 {
		return nil
	}
	domains := make([][]Value, len(fields))
	total := 1
	for i, f := range fields {
		domains[i] = f.Values()
		total *= len(domains[i])
		if total == 0 {
			return nil
		}
	}
	out := make([][]Value, 0, total)
	combo := make([]Value, len(fields))
	var rec func(i int)
	rec = func(i int) {
		if i == len(fields) {
			cp := make([]Value, len(combo))
			copy(cp, combo)
			out = append(out, cp)
			return
		}
		for _, v := range domains[i] {
			combo[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// TypeUnionName builds a stable display name for anonymous unions.
func TypeUnionName(members []Type) string {
	names := make([]string, len(members))
	for i, m := range members {
		names[i] = m.Name()
	}
	return "union(" + strings.Join(names, ",") + ")"
}
