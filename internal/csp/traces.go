package csp

import (
	"fmt"
	"sort"
)

// TraceSet holds the finite set of traces a process can perform up to a
// length bound, in the trace semantics of section IV-A of the paper.
type TraceSet struct {
	traces map[string]Trace
}

// NewTraceSet returns an empty trace set. Callers normally obtain
// TraceSets from Traces.
func NewTraceSet() *TraceSet {
	return &TraceSet{traces: map[string]Trace{}}
}

// Add inserts a trace.
func (ts *TraceSet) Add(t Trace) {
	ts.traces[t.String()] = t
}

// Contains reports whether the exact trace is a member.
func (ts *TraceSet) Contains(t Trace) bool {
	_, ok := ts.traces[t.String()]
	return ok
}

// Len returns the number of distinct traces.
func (ts *TraceSet) Len() int { return len(ts.traces) }

// Slice returns the traces sorted by their canonical string.
func (ts *TraceSet) Slice() []Trace {
	keys := make([]string, 0, len(ts.traces))
	for k := range ts.traces {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Trace, len(keys))
	for i, k := range keys {
		out[i] = ts.traces[k]
	}
	return out
}

// SubsetOf reports whether every trace in ts is also in other, i.e.
// traces(P) ⊆ traces(Q), the trace-refinement condition Q ⊑T P.
// The first missing trace (if any) is returned as a witness.
func (ts *TraceSet) SubsetOf(other *TraceSet) (bool, Trace) {
	keys := make([]string, 0, len(ts.traces))
	for k := range ts.traces {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, ok := other.traces[k]; !ok {
			return false, ts.traces[k]
		}
	}
	return true, nil
}

// traceGraph is the reachable term graph within a visible-depth bound.
type traceGraph struct {
	procs []Process
	edges [][]traceEdge
	dist  []int
}

type traceEdge struct {
	ev Event
	to int
}

// maxTraceStates bounds term-graph exploration in Traces.
const maxTraceStates = 1 << 18

// Traces enumerates every trace of p with at most maxLen visible events
// (a terminating tick counts as one event). The reachable term graph is
// explored breadth-first up to the bound (tau transitions do not consume
// budget), then traces are collected with memoised suffix enumeration,
// so the result is exact for finite-state processes and for
// infinite-state processes it is exact up to the bound.
func Traces(sem *Semantics, p Process, maxLen int) (*TraceSet, error) {
	g, err := exploreBounded(sem, p, maxLen)
	if err != nil {
		return nil, err
	}

	type memoKey struct {
		state, budget int
	}
	memo := map[memoKey][]Trace{}
	var suffixes func(state, budget int) []Trace
	suffixes = func(state, budget int) []Trace {
		mk := memoKey{state, budget}
		if got, ok := memo[mk]; ok {
			return got
		}
		// Collect the visible (and tick) moves available from the tau
		// closure of this state.
		closure := g.tauClosure(state)
		out := []Trace{{}}
		if budget > 0 {
			for _, m := range closure {
				for _, e := range g.edges[m] {
					switch {
					case e.ev.IsTau():
						// Handled by the closure.
					case e.ev.IsTick():
						out = append(out, Trace{Tick()})
					default:
						for _, suf := range suffixes(e.to, budget-1) {
							tr := make(Trace, 0, len(suf)+1)
							tr = append(tr, e.ev)
							tr = append(tr, suf...)
							out = append(out, tr)
						}
					}
				}
			}
		}
		out = dedupeTraces(out)
		memo[mk] = out
		return out
	}

	ts := NewTraceSet()
	for _, tr := range suffixes(0, maxLen) {
		ts.Add(tr)
	}
	return ts, nil
}

func dedupeTraces(in []Trace) []Trace {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, t := range in {
		k := t.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return out
}

// exploreBounded builds the term graph reachable within maxLen visible
// events using 0/1-BFS (tau edges cost 0, visible edges cost 1). State 0
// is the root.
func exploreBounded(sem *Semantics, p Process, maxLen int) (*traceGraph, error) {
	g := &traceGraph{}
	index := map[string]int{}
	add := func(proc Process, d int) (int, bool) {
		k := proc.Key()
		if id, ok := index[k]; ok {
			if d < g.dist[id] {
				g.dist[id] = d
				return id, true // must be re-relaxed
			}
			return id, false
		}
		id := len(g.procs)
		index[k] = id
		g.procs = append(g.procs, proc)
		g.edges = append(g.edges, nil)
		g.dist = append(g.dist, d)
		return id, true
	}
	expanded := make(map[int]bool)
	root, _ := add(p, 0)
	// Deque for 0/1 BFS.
	deque := []int{root}
	for len(deque) > 0 {
		cur := deque[0]
		deque = deque[1:]
		if g.dist[cur] >= maxLen && expanded[cur] {
			continue
		}
		if !expanded[cur] {
			if len(g.procs) > maxTraceStates {
				return nil, fmt.Errorf("trace exploration exceeded %d states", maxTraceStates)
			}
			trs, err := sem.Transitions(g.procs[cur])
			if err != nil {
				return nil, fmt.Errorf("transitions of %s: %w", g.procs[cur].Key(), err)
			}
			es := make([]traceEdge, 0, len(trs))
			for _, tr := range trs {
				// Register target lazily with a provisional distance; it
				// is relaxed below.
				to, _ := add(tr.To, g.dist[cur]+1)
				es = append(es, traceEdge{ev: tr.Ev, to: to})
			}
			g.edges[cur] = es
			expanded[cur] = true
		}
		if g.dist[cur] > maxLen {
			continue
		}
		for _, e := range g.edges[cur] {
			w := 1
			if e.ev.IsTau() {
				w = 0
			}
			nd := g.dist[cur] + w
			if nd < g.dist[e.to] || !expanded[e.to] {
				if nd < g.dist[e.to] {
					g.dist[e.to] = nd
				}
				if g.dist[e.to] <= maxLen {
					if w == 0 {
						deque = append([]int{e.to}, deque...)
					} else {
						deque = append(deque, e.to)
					}
				}
			}
		}
	}
	return g, nil
}

// tauClosure returns the states reachable from s via tau edges only,
// including s, in ascending order.
func (g *traceGraph) tauClosure(s int) []int {
	seen := map[int]bool{}
	stack := []int{s}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		for _, e := range g.edges[cur] {
			if e.ev.IsTau() && !seen[e.to] {
				stack = append(stack, e.to)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// HasTrace reports whether p can perform exactly the given trace (with
// arbitrary taus interleaved).
func HasTrace(sem *Semantics, p Process, t Trace) (bool, error) {
	ts, err := Traces(sem, p, len(t))
	if err != nil {
		return false, err
	}
	return ts.Contains(t), nil
}
