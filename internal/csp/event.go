package csp

import (
	"sort"
	"strings"
)

// Reserved channel names for the two special events of the operational
// semantics: the silent event tau and successful termination tick.
const (
	tauChan  = "τ" // τ
	tickChan = "✓" // ✓
)

// Event is a visible communication (channel name dotted with argument
// values), or one of the two special events Tau and Tick.
type Event struct {
	Chan string
	Args []Value
}

// Tau is the silent internal event.
func Tau() Event { return Event{Chan: tauChan} }

// Tick is the successful-termination event.
func Tick() Event { return Event{Chan: tickChan} }

// IsTau reports whether the event is the silent event.
func (e Event) IsTau() bool { return e.Chan == tauChan }

// IsTick reports whether the event is successful termination.
func (e Event) IsTick() bool { return e.Chan == tickChan }

// IsVisible reports whether the event is an ordinary communication
// (neither tau nor tick).
func (e Event) IsVisible() bool { return !e.IsTau() && !e.IsTick() }

// String renders the event in CSPm dotted notation, e.g. send.reqSw.
func (e Event) String() string {
	if len(e.Args) == 0 {
		return e.Chan
	}
	var sb strings.Builder
	sb.WriteString(e.Chan)
	for _, a := range e.Args {
		sb.WriteByte('.')
		sb.WriteString(a.String())
	}
	return sb.String()
}

// Equal reports structural equality of two events.
func (e Event) Equal(o Event) bool {
	if e.Chan != o.Chan || len(e.Args) != len(o.Args) {
		return false
	}
	for i, a := range e.Args {
		if !a.Equal(o.Args[i]) {
			return false
		}
	}
	return true
}

// Ev builds a concrete event from a channel name and values.
func Ev(ch string, args ...Value) Event {
	return Event{Chan: ch, Args: args}
}

// Trace is a finite sequence of visible events, possibly ending in Tick.
type Trace []Event

// String renders the trace in CSP angle-bracket notation.
func (t Trace) String() string {
	parts := make([]string, len(t))
	for i, e := range t {
		parts[i] = e.String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// Equal reports element-wise equality of two traces.
func (t Trace) Equal(o Trace) bool {
	if len(t) != len(o) {
		return false
	}
	for i, e := range t {
		if !e.Equal(o[i]) {
			return false
		}
	}
	return true
}

// HasPrefix reports whether p is a prefix of t (tr1 <= tr2 in the paper's
// notation).
func (t Trace) HasPrefix(p Trace) bool {
	if len(p) > len(t) {
		return false
	}
	for i, e := range p {
		if !t[i].Equal(e) {
			return false
		}
	}
	return true
}

// Hide returns the trace with every event in set removed (tr \ A).
func (t Trace) Hide(set *EventSet) Trace {
	out := make(Trace, 0, len(t))
	for _, e := range t {
		if !set.Contains(e) {
			out = append(out, e)
		}
	}
	return out
}

// EventSet is a finite set of visible events, described as a union of
// whole channels (the CSPm production set {| c |}) and individual events.
// Membership is decided without enumerating the channel's domain.
type EventSet struct {
	chans  map[string]bool
	events map[string]Event
}

// NewEventSet returns an empty event set.
func NewEventSet() *EventSet {
	return &EventSet{chans: map[string]bool{}, events: map[string]Event{}}
}

// EventsOf builds an event set covering every event of the named
// channels, as in the CSPm production set {| c1, c2 |}.
func EventsOf(channels ...string) *EventSet {
	s := NewEventSet()
	for _, c := range channels {
		s.chans[c] = true
	}
	return s
}

// Events builds an event set from individual events.
func Events(evs ...Event) *EventSet {
	s := NewEventSet()
	for _, e := range evs {
		s.events[e.String()] = e
	}
	return s
}

// AddChannel includes every event of the named channel.
func (s *EventSet) AddChannel(name string) *EventSet {
	s.chans[name] = true
	return s
}

// AddEvent includes a single event.
func (s *EventSet) AddEvent(e Event) *EventSet {
	s.events[e.String()] = e
	return s
}

// Contains reports whether the event is in the set. Tau and tick are
// never members.
func (s *EventSet) Contains(e Event) bool {
	if s == nil || !e.IsVisible() {
		return false
	}
	if s.chans[e.Chan] {
		return true
	}
	_, ok := s.events[e.String()]
	return ok
}

// Union returns a new set containing the members of both sets.
func (s *EventSet) Union(o *EventSet) *EventSet {
	out := NewEventSet()
	for _, src := range []*EventSet{s, o} {
		if src == nil {
			continue
		}
		for c := range src.chans {
			out.chans[c] = true
		}
		for k, e := range src.events {
			out.events[k] = e
		}
	}
	return out
}

// IsEmpty reports whether the set denotes no events.
func (s *EventSet) IsEmpty() bool {
	return s == nil || (len(s.chans) == 0 && len(s.events) == 0)
}

// Key returns a canonical string for the set, used when hashing process
// states that embed sets (hiding, parallel).
func (s *EventSet) Key() string {
	if s == nil {
		return "{}"
	}
	parts := make([]string, 0, len(s.chans)+len(s.events))
	for c := range s.chans {
		parts = append(parts, "{|"+c+"|}")
	}
	for k := range s.events {
		parts = append(parts, k)
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

// Enumerate lists the concrete events the set denotes under the given
// declaration context (channel members require enumeration).
func (s *EventSet) Enumerate(ctx *Context) []Event {
	if s == nil {
		return nil
	}
	var out []Event
	seen := map[string]bool{}
	chans := make([]string, 0, len(s.chans))
	for c := range s.chans {
		chans = append(chans, c)
	}
	sort.Strings(chans)
	for _, c := range chans {
		evs, err := ctx.EventsOf(c)
		if err != nil {
			continue
		}
		for _, e := range evs {
			k := e.String()
			if !seen[k] {
				seen[k] = true
				out = append(out, e)
			}
		}
	}
	keys := make([]string, 0, len(s.events))
	for k := range s.events {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			out = append(out, s.events[k])
		}
	}
	return out
}
