package csp

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// This file is the term codec: a stable, structural serialization of
// process terms, expressions, values and events, built for the
// checkpoint/resume machinery in lts. A checkpoint must persist the BFS
// frontier — live Process terms — across a process death, and a resumed
// exploration must behave byte-identically to an uninterrupted one, so
// the codec guarantees a structural round-trip: Decode(Encode(p)) is
// structurally equal to p, Key() agrees on both sides, and the
// operational semantics produces the same transition lists for both.
//
// The encoding is a tagged JSON tree (one node type covers processes,
// expressions, values, events and event sets), chosen over gob for
// inspectability and because checkpoint files outlive any single binary
// build. Map-shaped members (rename mappings, event-set members) are
// encoded in sorted order so the same term always serializes to the
// same bytes.

// cnode is the one wire node of the codec. T discriminates the term
// kind; the other fields carry the kind's payload and children.
type cnode struct {
	T string `json:"t"`
	// S carries a name: variable, channel, symbol, process call.
	S string `json:"s,omitempty"`
	// N carries an integer payload: Int value, BinOp, UnOp.
	N int64 `json:"n,omitempty"`
	// B carries a boolean payload: Bool value, CommField.IsInput.
	B bool `json:"b,omitempty"`
	// L carries ordered children (sub-terms, field lists, set members).
	L []cnode `json:"l,omitempty"`
	// SS carries string lists: event-set channels, rename pairs.
	SS []string `json:"ss,omitempty"`
}

// Node tags. Kept short: checkpoints serialize whole frontiers.
const (
	tagStop   = "stop"
	tagSkip   = "skip"
	tagOmega  = "omega"
	tagPrefix = "pfx"
	tagExtC   = "ext"
	tagIntC   = "int"
	tagSeq    = "seq"
	tagPar    = "par"
	tagHide   = "hide"
	tagRename = "ren"
	tagIf     = "if"
	tagCall   = "call"

	tagField = "fld"
	tagNil   = "nil"

	tagLit    = "lit"
	tagVar    = "var"
	tagBinary = "bin"
	tagUnary  = "un"
	tagDot    = "dot"
	tagSetAdd = "sadd"
	tagMember = "mem"

	tagInt    = "i"
	tagBool   = "b"
	tagSym    = "sym"
	tagDotted = "dval"
	tagSetVal = "set"

	tagEvent  = "ev"
	tagEvtSet = "evset"
)

// EncodeProcess serializes a process term for a checkpoint.
func EncodeProcess(p Process) ([]byte, error) {
	n, err := encProc(p)
	if err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// DecodeProcess reconstructs a process term from EncodeProcess output.
// The result is structurally equal to the original: same Key(), same
// transitions under the same semantics.
func DecodeProcess(data []byte) (Process, error) {
	var n cnode
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, fmt.Errorf("csp codec: %w", err)
	}
	return decProc(n)
}

// EncodeEvent serializes one event (the LTS event-table entry).
func EncodeEvent(e Event) ([]byte, error) {
	return json.Marshal(encEvent(e))
}

// DecodeEvent reconstructs an event from EncodeEvent output.
func DecodeEvent(data []byte) (Event, error) {
	var n cnode
	if err := json.Unmarshal(data, &n); err != nil {
		return Event{}, fmt.Errorf("csp codec: %w", err)
	}
	return decEvent(n)
}

func encProc(p Process) (cnode, error) {
	switch t := p.(type) {
	case StopProc:
		return cnode{T: tagStop}, nil
	case SkipProc:
		return cnode{T: tagSkip}, nil
	case OmegaProc:
		return cnode{T: tagOmega}, nil
	case PrefixProc:
		kids := make([]cnode, 0, len(t.Fields)+1)
		for _, f := range t.Fields {
			fn, err := encField(f)
			if err != nil {
				return cnode{}, err
			}
			kids = append(kids, fn)
		}
		cont, err := encProc(t.Cont)
		if err != nil {
			return cnode{}, err
		}
		kids = append(kids, cont)
		return cnode{T: tagPrefix, S: t.Chan, L: kids}, nil
	case ExtChoiceProc:
		return encBinProc(tagExtC, t.L, t.R)
	case IntChoiceProc:
		return encBinProc(tagIntC, t.L, t.R)
	case SeqProc:
		return encBinProc(tagSeq, t.L, t.R)
	case ParProc:
		n, err := encBinProc(tagPar, t.L, t.R)
		if err != nil {
			return cnode{}, err
		}
		n.L = append(n.L, encEventSet(t.Sync))
		return n, nil
	case HideProc:
		pn, err := encProc(t.P)
		if err != nil {
			return cnode{}, err
		}
		return cnode{T: tagHide, L: []cnode{pn, encEventSet(t.Set)}}, nil
	case RenameProc:
		pn, err := encProc(t.P)
		if err != nil {
			return cnode{}, err
		}
		pairs := make([]string, 0, len(t.Mapping))
		for from, to := range t.Mapping {
			pairs = append(pairs, from+"="+to)
		}
		sort.Strings(pairs)
		return cnode{T: tagRename, L: []cnode{pn}, SS: pairs}, nil
	case IfProc:
		cond, err := encExpr(t.Cond)
		if err != nil {
			return cnode{}, err
		}
		then, err := encProc(t.Then)
		if err != nil {
			return cnode{}, err
		}
		els, err := encProc(t.Else)
		if err != nil {
			return cnode{}, err
		}
		return cnode{T: tagIf, L: []cnode{cond, then, els}}, nil
	case CallProc:
		kids := make([]cnode, 0, len(t.Args))
		for _, a := range t.Args {
			an, err := encExpr(a)
			if err != nil {
				return cnode{}, err
			}
			kids = append(kids, an)
		}
		return cnode{T: tagCall, S: t.Name, L: kids}, nil
	}
	return cnode{}, fmt.Errorf("csp codec: unknown process type %T", p)
}

func encBinProc(tag string, l, r Process) (cnode, error) {
	ln, err := encProc(l)
	if err != nil {
		return cnode{}, err
	}
	rn, err := encProc(r)
	if err != nil {
		return cnode{}, err
	}
	return cnode{T: tag, L: []cnode{ln, rn}}, nil
}

func encField(f CommField) (cnode, error) {
	restrict := cnode{T: tagNil}
	if f.Restrict != nil {
		var err error
		restrict, err = encExpr(f.Restrict)
		if err != nil {
			return cnode{}, err
		}
	}
	expr := cnode{T: tagNil}
	if f.Expr != nil {
		var err error
		expr, err = encExpr(f.Expr)
		if err != nil {
			return cnode{}, err
		}
	}
	return cnode{T: tagField, S: f.Var, B: f.IsInput, L: []cnode{restrict, expr}}, nil
}

func encExpr(e Expr) (cnode, error) {
	switch t := e.(type) {
	case Lit:
		vn, err := encValue(t.Val)
		if err != nil {
			return cnode{}, err
		}
		return cnode{T: tagLit, L: []cnode{vn}}, nil
	case Var:
		return cnode{T: tagVar, S: t.Name}, nil
	case Binary:
		ln, err := encExpr(t.L)
		if err != nil {
			return cnode{}, err
		}
		rn, err := encExpr(t.R)
		if err != nil {
			return cnode{}, err
		}
		return cnode{T: tagBinary, N: int64(t.Op), L: []cnode{ln, rn}}, nil
	case Unary:
		xn, err := encExpr(t.X)
		if err != nil {
			return cnode{}, err
		}
		return cnode{T: tagUnary, N: int64(t.Op), L: []cnode{xn}}, nil
	case DotExpr:
		kids := make([]cnode, 0, len(t.Args))
		for _, a := range t.Args {
			an, err := encExpr(a)
			if err != nil {
				return cnode{}, err
			}
			kids = append(kids, an)
		}
		return cnode{T: tagDot, S: string(t.Head), L: kids}, nil
	case SetAddExpr:
		bn, err := encExpr(t.Base)
		if err != nil {
			return cnode{}, err
		}
		en, err := encExpr(t.Elem)
		if err != nil {
			return cnode{}, err
		}
		return cnode{T: tagSetAdd, L: []cnode{bn, en}}, nil
	case MemberExpr:
		en, err := encExpr(t.Elem)
		if err != nil {
			return cnode{}, err
		}
		sn, err := encExpr(t.Set)
		if err != nil {
			return cnode{}, err
		}
		return cnode{T: tagMember, L: []cnode{en, sn}}, nil
	}
	return cnode{}, fmt.Errorf("csp codec: unknown expression type %T", e)
}

func encValue(v Value) (cnode, error) {
	switch t := v.(type) {
	case Int:
		return cnode{T: tagInt, N: int64(t)}, nil
	case Bool:
		return cnode{T: tagBool, B: bool(t)}, nil
	case Sym:
		return cnode{T: tagSym, S: string(t)}, nil
	case Dotted:
		kids := make([]cnode, 0, len(t.Args))
		for _, a := range t.Args {
			an, err := encValue(a)
			if err != nil {
				return cnode{}, err
			}
			kids = append(kids, an)
		}
		return cnode{T: tagDotted, S: string(t.Head), L: kids}, nil
	case SetValue:
		kids := make([]cnode, 0, t.Len())
		for _, e := range t.Elems() {
			en, err := encValue(e)
			if err != nil {
				return cnode{}, err
			}
			kids = append(kids, en)
		}
		return cnode{T: tagSetVal, L: kids}, nil
	}
	return cnode{}, fmt.Errorf("csp codec: unknown value type %T", v)
}

func encEvent(e Event) cnode {
	kids := make([]cnode, 0, len(e.Args))
	for _, a := range e.Args {
		// Event args are values produced by Eval; all concrete value
		// kinds encode, so the error path is unreachable, but keep the
		// codec total rather than panicking inside a checkpoint write.
		an, err := encValue(a)
		if err != nil {
			an = cnode{T: tagSym, S: a.String()}
		}
		kids = append(kids, an)
	}
	return cnode{T: tagEvent, S: e.Chan, L: kids}
}

func encEventSet(s *EventSet) cnode {
	if s == nil {
		return cnode{T: tagNil}
	}
	chans := make([]string, 0, len(s.chans))
	for c := range s.chans {
		chans = append(chans, c)
	}
	sort.Strings(chans)
	keys := make([]string, 0, len(s.events))
	for k := range s.events {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]cnode, 0, len(keys))
	for _, k := range keys {
		kids = append(kids, encEvent(s.events[k]))
	}
	return cnode{T: tagEvtSet, SS: chans, L: kids}
}

func decProc(n cnode) (Process, error) {
	switch n.T {
	case tagStop:
		return StopProc{}, nil
	case tagSkip:
		return SkipProc{}, nil
	case tagOmega:
		return OmegaProc{}, nil
	case tagPrefix:
		if len(n.L) < 1 {
			return nil, fmt.Errorf("csp codec: prefix node without continuation")
		}
		fields := make([]CommField, 0, len(n.L)-1)
		for _, fn := range n.L[:len(n.L)-1] {
			f, err := decField(fn)
			if err != nil {
				return nil, err
			}
			fields = append(fields, f)
		}
		cont, err := decProc(n.L[len(n.L)-1])
		if err != nil {
			return nil, err
		}
		return PrefixProc{Chan: n.S, Fields: fields, Cont: cont}, nil
	case tagExtC, tagIntC, tagSeq, tagPar:
		if len(n.L) < 2 {
			return nil, fmt.Errorf("csp codec: %s node needs two children", n.T)
		}
		l, err := decProc(n.L[0])
		if err != nil {
			return nil, err
		}
		r, err := decProc(n.L[1])
		if err != nil {
			return nil, err
		}
		switch n.T {
		case tagExtC:
			return ExtChoiceProc{L: l, R: r}, nil
		case tagIntC:
			return IntChoiceProc{L: l, R: r}, nil
		case tagSeq:
			return SeqProc{L: l, R: r}, nil
		}
		if len(n.L) != 3 {
			return nil, fmt.Errorf("csp codec: par node needs a sync set")
		}
		sync, err := decEventSet(n.L[2])
		if err != nil {
			return nil, err
		}
		return ParProc{L: l, R: r, Sync: sync}, nil
	case tagHide:
		if len(n.L) != 2 {
			return nil, fmt.Errorf("csp codec: hide node needs two children")
		}
		p, err := decProc(n.L[0])
		if err != nil {
			return nil, err
		}
		set, err := decEventSet(n.L[1])
		if err != nil {
			return nil, err
		}
		return HideProc{P: p, Set: set}, nil
	case tagRename:
		if len(n.L) != 1 {
			return nil, fmt.Errorf("csp codec: rename node needs one child")
		}
		p, err := decProc(n.L[0])
		if err != nil {
			return nil, err
		}
		mapping := make(map[string]string, len(n.SS))
		for _, pair := range n.SS {
			from, to, ok := strings.Cut(pair, "=")
			if !ok {
				return nil, fmt.Errorf("csp codec: malformed rename pair %q", pair)
			}
			mapping[from] = to
		}
		return RenameProc{P: p, Mapping: mapping}, nil
	case tagIf:
		if len(n.L) != 3 {
			return nil, fmt.Errorf("csp codec: if node needs three children")
		}
		cond, err := decExpr(n.L[0])
		if err != nil {
			return nil, err
		}
		then, err := decProc(n.L[1])
		if err != nil {
			return nil, err
		}
		els, err := decProc(n.L[2])
		if err != nil {
			return nil, err
		}
		return IfProc{Cond: cond, Then: then, Else: els}, nil
	case tagCall:
		args := make([]Expr, 0, len(n.L))
		for _, an := range n.L {
			a, err := decExpr(an)
			if err != nil {
				return nil, err
			}
			args = append(args, a)
		}
		return CallProc{Name: n.S, Args: args}, nil
	}
	return nil, fmt.Errorf("csp codec: unknown process tag %q", n.T)
}

func decField(n cnode) (CommField, error) {
	if n.T != tagField || len(n.L) != 2 {
		return CommField{}, fmt.Errorf("csp codec: malformed comm field node %q", n.T)
	}
	f := CommField{IsInput: n.B, Var: n.S}
	if n.L[0].T != tagNil {
		r, err := decExpr(n.L[0])
		if err != nil {
			return CommField{}, err
		}
		f.Restrict = r
	}
	if n.L[1].T != tagNil {
		e, err := decExpr(n.L[1])
		if err != nil {
			return CommField{}, err
		}
		f.Expr = e
	}
	return f, nil
}

func decExpr(n cnode) (Expr, error) {
	switch n.T {
	case tagLit:
		if len(n.L) != 1 {
			return nil, fmt.Errorf("csp codec: literal node needs one child")
		}
		v, err := decValue(n.L[0])
		if err != nil {
			return nil, err
		}
		return Lit{Val: v}, nil
	case tagVar:
		return Var{Name: n.S}, nil
	case tagBinary:
		if len(n.L) != 2 {
			return nil, fmt.Errorf("csp codec: binary node needs two children")
		}
		l, err := decExpr(n.L[0])
		if err != nil {
			return nil, err
		}
		r, err := decExpr(n.L[1])
		if err != nil {
			return nil, err
		}
		return Binary{Op: BinOp(n.N), L: l, R: r}, nil
	case tagUnary:
		if len(n.L) != 1 {
			return nil, fmt.Errorf("csp codec: unary node needs one child")
		}
		x, err := decExpr(n.L[0])
		if err != nil {
			return nil, err
		}
		return Unary{Op: UnOp(n.N), X: x}, nil
	case tagDot:
		args := make([]Expr, 0, len(n.L))
		for _, an := range n.L {
			a, err := decExpr(an)
			if err != nil {
				return nil, err
			}
			args = append(args, a)
		}
		return DotExpr{Head: Sym(n.S), Args: args}, nil
	case tagSetAdd:
		if len(n.L) != 2 {
			return nil, fmt.Errorf("csp codec: union node needs two children")
		}
		b, err := decExpr(n.L[0])
		if err != nil {
			return nil, err
		}
		e, err := decExpr(n.L[1])
		if err != nil {
			return nil, err
		}
		return SetAddExpr{Base: b, Elem: e}, nil
	case tagMember:
		if len(n.L) != 2 {
			return nil, fmt.Errorf("csp codec: member node needs two children")
		}
		e, err := decExpr(n.L[0])
		if err != nil {
			return nil, err
		}
		s, err := decExpr(n.L[1])
		if err != nil {
			return nil, err
		}
		return MemberExpr{Elem: e, Set: s}, nil
	}
	return nil, fmt.Errorf("csp codec: unknown expression tag %q", n.T)
}

func decValue(n cnode) (Value, error) {
	switch n.T {
	case tagInt:
		return Int(n.N), nil
	case tagBool:
		return Bool(n.B), nil
	case tagSym:
		return Sym(n.S), nil
	case tagDotted:
		args := make([]Value, 0, len(n.L))
		for _, an := range n.L {
			a, err := decValue(an)
			if err != nil {
				return nil, err
			}
			args = append(args, a)
		}
		return Dotted{Head: Sym(n.S), Args: args}, nil
	case tagSetVal:
		elems := make([]Value, 0, len(n.L))
		for _, en := range n.L {
			e, err := decValue(en)
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		}
		// NewSet re-canonicalizes (sort + dedup), so a decoded set is
		// structurally identical to the encoded one.
		return NewSet(elems...), nil
	}
	return nil, fmt.Errorf("csp codec: unknown value tag %q", n.T)
}

func decEvent(n cnode) (Event, error) {
	if n.T != tagEvent {
		return Event{}, fmt.Errorf("csp codec: expected event node, got %q", n.T)
	}
	args := make([]Value, 0, len(n.L))
	for _, an := range n.L {
		a, err := decValue(an)
		if err != nil {
			return Event{}, err
		}
		args = append(args, a)
	}
	if len(args) == 0 {
		args = nil
	}
	return Event{Chan: n.S, Args: args}, nil
}

func decEventSet(n cnode) (*EventSet, error) {
	if n.T == tagNil {
		return nil, nil
	}
	if n.T != tagEvtSet {
		return nil, fmt.Errorf("csp codec: expected event-set node, got %q", n.T)
	}
	s := NewEventSet()
	for _, c := range n.SS {
		s.AddChannel(c)
	}
	for _, en := range n.L {
		e, err := decEvent(en)
		if err != nil {
			return nil, err
		}
		s.AddEvent(e)
	}
	return s, nil
}
