package csp_test

import (
	"bytes"
	"testing"

	"repro/internal/csp"
	"repro/internal/ota"
)

// exerciseAll builds a term covering every Process, Expr and Value kind
// the codec must round-trip (checkpoint frontiers can contain any of
// them).
func exerciseAll() csp.Process {
	sync := csp.NewEventSet().
		AddChannel("net").
		AddEvent(csp.Event{Chan: "upd", Args: []csp.Value{csp.Sym("fw"), csp.Int(2)}})
	hide := csp.NewEventSet().AddChannel("internal")

	knowledge := csp.Lit{Val: csp.NewSet(csp.Sym("k1"), csp.Dotted{Head: "mac", Args: []csp.Value{csp.Sym("k1"), csp.Int(7)}})}
	cond := csp.Binary{
		Op: csp.OpAnd,
		L:  csp.MemberExpr{Elem: csp.Var{Name: "x"}, Set: knowledge},
		R:  csp.Unary{Op: csp.OpNot, X: csp.LitBool(false)},
	}
	inner := csp.PrefixProc{
		Chan: "net",
		Fields: []csp.CommField{
			csp.In("x"),
			csp.InSuchThat("y", csp.Binary{Op: csp.OpLt, L: csp.Var{Name: "y"}, R: csp.LitInt(3)}),
			csp.Out(csp.DotExpr{Head: "msg", Args: []csp.Expr{csp.Var{Name: "x"}, csp.LitInt(1)}}),
			csp.OutVal(csp.Bool(true)),
		},
		Cont: csp.CallProc{
			Name: "P",
			Args: []csp.Expr{
				csp.Binary{Op: csp.OpAdd, L: csp.Var{Name: "x"}, R: csp.Unary{Op: csp.OpNeg, X: csp.LitInt(4)}},
				csp.SetAddExpr{Base: knowledge, Elem: csp.Var{Name: "x"}},
			},
		},
	}
	return csp.HideProc{
		P: csp.ParProc{
			L: csp.RenameProc{
				P:       csp.SeqProc{L: inner, R: csp.SkipProc{}},
				Mapping: map[string]string{"net": "wire", "upd": "flash"},
			},
			R: csp.ExtChoiceProc{
				L: csp.IntChoiceProc{
					L: csp.IfProc{Cond: cond, Then: csp.StopProc{}, Else: csp.OmegaProc{}},
					R: csp.SkipProc{},
				},
				R: csp.StopProc{},
			},
			Sync: sync,
		},
		Set: hide,
	}
}

func roundTrip(t *testing.T, p csp.Process) csp.Process {
	t.Helper()
	data, err := csp.EncodeProcess(p)
	if err != nil {
		t.Fatalf("EncodeProcess(%s): %v", p.Key(), err)
	}
	got, err := csp.DecodeProcess(data)
	if err != nil {
		t.Fatalf("DecodeProcess(%s): %v", p.Key(), err)
	}
	if got.Key() != p.Key() {
		t.Fatalf("round-trip changed Key:\n  in:  %s\n  out: %s", p.Key(), got.Key())
	}
	// The encoding must be deterministic: re-encoding the decoded term
	// yields the same bytes (checkpoint digests depend on this).
	again, err := csp.EncodeProcess(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("encoding not deterministic for %s", p.Key())
	}
	return got
}

func TestCodecRoundTripAllKinds(t *testing.T) {
	roundTrip(t, exerciseAll())
}

func TestCodecRoundTripEvents(t *testing.T) {
	events := []csp.Event{
		{Chan: "a"},
		{Chan: "upd", Args: []csp.Value{csp.Sym("fw"), csp.Int(-3), csp.Bool(true)}},
		{Chan: "k", Args: []csp.Value{csp.Dotted{Head: "mac", Args: []csp.Value{csp.Sym("k1"), csp.Int(0)}}}},
		{Chan: "s", Args: []csp.Value{csp.NewSet(csp.Int(2), csp.Int(1), csp.Int(2))}},
		csp.Tau(),
		csp.Tick(),
	}
	for _, e := range events {
		data, err := csp.EncodeEvent(e)
		if err != nil {
			t.Fatalf("EncodeEvent(%s): %v", e.String(), err)
		}
		got, err := csp.DecodeEvent(data)
		if err != nil {
			t.Fatalf("DecodeEvent(%s): %v", e.String(), err)
		}
		if got.String() != e.String() {
			t.Fatalf("event round-trip: in %s out %s", e.String(), got.String())
		}
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"t":"nope"}`,
		`{"t":"pfx"}`,
		`{"t":"ren","l":[{"t":"stop"}],"ss":["broken"]}`,
		`{"t":"if","l":[{"t":"stop"}]}`,
	}
	for _, c := range cases {
		if _, err := csp.DecodeProcess([]byte(c)); err == nil {
			t.Errorf("DecodeProcess(%q): want error, got nil", c)
		}
	}
	if _, err := csp.DecodeEvent([]byte(`{"t":"stop"}`)); err == nil {
		t.Error("DecodeEvent on non-event node: want error, got nil")
	}
}

// TestCodecOverOTACorpus walks reachable states of the paper's systems
// and round-trips every frontier term, checking Key fidelity and that
// the decoded term has identical transitions — exactly what a resumed
// exploration relies on.
func TestCodecOverOTACorpus(t *testing.T) {
	builds := map[string]func() (*ota.System, error){
		"ota":         ota.Build,
		"ota-flawed":  ota.BuildFlawed,
		"ota-lossy-hardened": func() (*ota.System, error) {
			return ota.BuildLossy(ota.HardenedGateway, ota.DefaultLossBudget)
		},
	}
	const maxStates = 400
	for name, build := range builds {
		sys, err := build()
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		sem := csp.NewSemantics(sys.Model.Env, sys.Model.Ctx)
		for _, a := range sys.Model.Asserts {
			roots := []csp.Process{a.Impl}
			if a.Spec != nil {
				roots = append(roots, a.Spec)
			}
			for _, root := range roots {
				seen := map[string]bool{}
				frontier := []csp.Process{root}
				for len(frontier) > 0 && len(seen) < maxStates {
					p := frontier[0]
					frontier = frontier[1:]
					if seen[p.Key()] {
						continue
					}
					seen[p.Key()] = true

					got := roundTrip(t, p)
					want, err := sem.Transitions(p)
					if err != nil {
						t.Fatalf("%s: transitions(%s): %v", name, p.Key(), err)
					}
					have, err := sem.Transitions(got)
					if err != nil {
						t.Fatalf("%s: transitions(decoded %s): %v", name, p.Key(), err)
					}
					if len(want) != len(have) {
						t.Fatalf("%s: decoded term has %d transitions, want %d (%s)",
							name, len(have), len(want), p.Key())
					}
					for i := range want {
						if want[i].Ev.String() != have[i].Ev.String() ||
							want[i].To.Key() != have[i].To.Key() {
							t.Fatalf("%s: transition %d differs after round-trip of %s",
								name, i, p.Key())
						}
						frontier = append(frontier, want[i].To)
					}
				}
			}
		}
	}
}
