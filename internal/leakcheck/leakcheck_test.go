package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestSettleQuietProcess(t *testing.T) {
	if err := Settle(2 * time.Second); err != nil {
		t.Fatalf("quiet process reported a leak: %v", err)
	}
}

func TestSettleDetectsLeak(t *testing.T) {
	block := make(chan struct{})
	go func() { <-block }()
	err := Settle(50 * time.Millisecond)
	if err == nil {
		t.Fatal("blocked goroutine not reported")
	}
	if !strings.Contains(err.Error(), "leaked goroutine") {
		t.Errorf("error = %v, want a leak report", err)
	}
	close(block)
	if err := Settle(2 * time.Second); err != nil {
		t.Fatalf("released goroutine still reported: %v", err)
	}
}

func TestCheckIgnoresBaseline(t *testing.T) {
	// A goroutine alive before Check must not be reported by it.
	block := make(chan struct{})
	go func() { <-block }()
	defer close(block)

	rec := &recorder{}
	Check(rec)
	for _, f := range rec.cleanups {
		f()
	}
	if len(rec.errors) != 0 {
		t.Fatalf("baseline goroutine reported: %v", rec.errors)
	}
}

type recorder struct {
	cleanups []func()
	errors   []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, format)
}
func (r *recorder) Cleanup(f func()) { r.cleanups = append(r.cleanups, f) }
