// Package leakcheck is an in-tree goroutine-leak detector in the
// spirit of go.uber.org/goleak (the build environment is offline, so
// the real module cannot be vendored). The cancellation and server
// tests use it to pin the core robustness invariant of
// checking-as-a-service: an aborted request must release every
// goroutine it spawned — a daemon that leaks one goroutine per
// cancelled check dies slowly under exactly the traffic it exists to
// absorb.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// defaultGrace is how long Check waits for goroutines to unwind before
// declaring a leak: worker goroutines observe cancellation
// cooperatively, so a just-cancelled exploration needs a moment to
// drain.
const defaultGrace = 4 * time.Second

// ignored reports whether a goroutine stack belongs to the runtime or
// test infrastructure rather than code under test.
func ignored(stack string) bool {
	for _, frag := range []string{
		"testing.Main(",
		"testing.tRunner(",
		"testing.(*T).Run(",
		"testing.(*F).Fuzz",
		"runtime.goexit",
		"runtime.MHeap_Scavenger",
		"runtime.gc(",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"runtime.forcegchelper",
		"signal.signal_recv",
		"os/signal.loop",
		"os/signal.signal_recv",
		"runtime.ensureSigM",
		"runtime.ReadTrace",
		"leakcheck.Snapshot",
		"leakcheck.interesting",
		// net/http keep-alive and idle-connection machinery parks
		// goroutines briefly after a client round-trip; they retire on
		// their own and are not application leaks.
		"net/http.(*persistConn).readLoop",
		"net/http.(*persistConn).writeLoop",
	} {
		if strings.Contains(stack, frag) {
			return true
		}
	}
	return false
}

// interesting returns the stacks of goroutines that are neither runtime
// infrastructure nor on the ignore list, sorted for stable output.
func interesting() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var out []string
	for _, stanza := range strings.Split(string(buf[:n]), "\n\n") {
		stanza = strings.TrimSpace(stanza)
		if stanza == "" || ignored(stanza) {
			continue
		}
		out = append(out, stanza)
	}
	sort.Strings(out)
	return out
}

// TB is the subset of testing.TB the checker needs.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// Check snapshots the interesting goroutines now and, from the test's
// Cleanup, verifies the set has returned to the snapshot within a
// grace period. Call it first thing in a test:
//
//	func TestX(t *testing.T) {
//	    leakcheck.Check(t)
//	    ...
//	}
func Check(tb TB) {
	tb.Helper()
	before := map[string]bool{}
	for _, s := range interesting() {
		before[firstLine(s)] = true
	}
	tb.Cleanup(func() {
		if err := settle(before, defaultGrace); err != nil {
			tb.Errorf("%v", err)
		}
	})
}

// Settle waits until no interesting goroutines beyond the baseline
// count remain, or the grace period expires — the non-testing entry
// point used by the serveload chaos harness.
func Settle(grace time.Duration) error {
	return settle(nil, grace)
}

func settle(baseline map[string]bool, grace time.Duration) error {
	deadline := time.Now().Add(grace)
	var leaked []string
	for {
		leaked = leaked[:0]
		for _, s := range interesting() {
			if baseline == nil || !baseline[firstLine(s)] {
				leaked = append(leaked, s)
			}
		}
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d leaked goroutine(s) after %v:\n", len(leaked), grace)
	for i, s := range leaked {
		if i == 8 {
			fmt.Fprintf(&b, "... and %d more\n", len(leaked)-i)
			break
		}
		fmt.Fprintf(&b, "--- goroutine ---\n%s\n", s)
	}
	return fmt.Errorf("%s", b.String())
}

// firstLine is the goroutine header ("goroutine N [state]:") minus the
// volatile goroutine ID — the stable identity used to compare
// snapshots.
func firstLine(stack string) string {
	line := stack
	if i := strings.IndexByte(stack, '\n'); i >= 0 {
		// Identity is the creation site plus current function, not the
		// header: use the whole first two frames.
		rest := stack[i+1:]
		if j := strings.IndexByte(rest, '\n'); j >= 0 {
			line = rest[:j]
		} else {
			line = rest
		}
	}
	return line
}
