package canoe

import (
	"errors"
	"fmt"

	"repro/internal/canbus"
	"repro/internal/capl"
)

// Node is one simulated network node: a CAPL program attached to a bus.
type Node struct {
	Name string

	prog    *capl.Program
	bus     *canbus.Bus
	tap     *canbus.Tap
	globals map[string]*cell
	timers  map[string]*timerState

	// Log collects write() output lines.
	Log []string
	// Sent and Received record the node's frame history.
	Sent     []canbus.Frame
	Received []canbus.Frame
	// OutputsRejected counts output() calls refused because the node's
	// controller was bus-off.
	OutputsRejected int

	// MaxSteps bounds statement execution per event procedure call, to
	// catch runaway CAPL loops (default 1 << 20).
	MaxSteps int

	// TimerJitter, when set, perturbs every setTimer duration: it
	// receives the timer name and the programmed delay in milliseconds
	// and returns the delay to use instead. Negative results clamp to
	// zero. Conformance soak harnesses use it to explore schedule
	// interleavings the nominal timings never exhibit.
	TimerJitter func(name string, ms int64) int64

	// firstErr latches the first runtime error raised inside an event
	// callback (callbacks cannot return errors to the scheduler).
	firstErr error
}

// NewNode parses nothing: it takes an already parsed program, attaches
// it to the bus and initialises the variables section.
func NewNode(bus *canbus.Bus, name string, prog *capl.Program) (*Node, error) {
	n := &Node{
		Name:     name,
		prog:     prog,
		bus:      bus,
		globals:  map[string]*cell{},
		timers:   map[string]*timerState{},
		MaxSteps: 1 << 20,
	}
	n.tap = bus.Attach(name, n)
	for _, d := range prog.Variables {
		v, err := n.initialValue(d)
		if err != nil {
			return nil, fmt.Errorf("node %s: variable %s: %w", name, d.Name, err)
		}
		n.globals[d.Name] = &cell{v: v}
		if ts, ok := v.(*timerState); ok {
			n.timers[d.Name] = ts
		}
	}
	return n, nil
}

// NewNodeFromSource parses CAPL source and builds the node.
func NewNodeFromSource(bus *canbus.Bus, name, src string) (*Node, error) {
	prog, err := capl.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("node %s: %w", name, err)
	}
	return NewNode(bus, name, prog)
}

// Err returns the first runtime error raised inside an event handler.
func (n *Node) Err() error { return n.firstErr }

func (n *Node) setErr(err error) {
	if n.firstErr == nil && err != nil {
		n.firstErr = fmt.Errorf("node %s: %w", n.Name, err)
	}
}

func (n *Node) initialValue(d *capl.VarDecl) (any, error) {
	switch d.Type.Base {
	case capl.TypeMessage:
		mv := &MsgVal{DLC: canbus.MaxDataLen}
		if d.MsgID >= 0 {
			mv.ID = uint32(d.MsgID)
		}
		return mv, nil
	case capl.TypeMsTimer, capl.TypeTimer:
		return &timerState{name: d.Name}, nil
	case capl.TypeFloat, capl.TypeDouble:
		if d.Init != nil {
			in := &interp{node: n}
			v, err := in.eval(d.Init, nil)
			if err != nil {
				return nil, err
			}
			switch x := v.(type) {
			case float64:
				return x, nil
			case int64:
				return float64(x), nil
			}
			return nil, fmt.Errorf("bad float initialiser %T", v)
		}
		return float64(0), nil
	case capl.TypeChar:
		if len(d.Type.ArrayDims) > 0 {
			// Character arrays hold strings.
			if d.Init != nil {
				in := &interp{node: n}
				v, err := in.eval(d.Init, nil)
				if err != nil {
					return nil, err
				}
				if s, ok := v.(string); ok {
					return s, nil
				}
			}
			return "", nil
		}
		fallthrough
	default:
		if len(d.Type.ArrayDims) > 0 {
			size := 1
			for _, dim := range d.Type.ArrayDims {
				if dim > 0 {
					size *= dim
				}
			}
			return make([]int64, size), nil
		}
		if d.Init != nil {
			in := &interp{node: n}
			v, err := in.eval(d.Init, nil)
			if err != nil {
				return nil, err
			}
			return v, nil
		}
		return int64(0), nil
	}
}

// Start runs the node's `on start` event procedures.
func (n *Node) Start() error {
	for _, h := range n.prog.HandlersOf(capl.OnStart) {
		if err := n.runHandler(h, nil); err != nil {
			return err
		}
	}
	return nil
}

// OnFrame implements canbus.Receiver: it dispatches matching
// `on message` event procedures.
func (n *Node) OnFrame(_ canbus.Time, f canbus.Frame) {
	n.Received = append(n.Received, f.Clone())
	this := &MsgVal{ID: f.ID, DLC: len(f.Data)}
	copy(this.Data[:], f.Data)
	for _, h := range n.prog.HandlersOf(capl.OnMessage) {
		if !n.handlerMatches(h, f.ID) {
			continue
		}
		if err := n.runHandler(h, this); err != nil {
			n.setErr(err)
			return
		}
	}
}

func (n *Node) handlerMatches(h *capl.Handler, id uint32) bool {
	switch {
	case h.Target == "*":
		return true
	case h.TargetID >= 0:
		return uint32(h.TargetID) == id
	default:
		c, ok := n.globals[h.Target]
		if !ok {
			return false
		}
		mv, ok := c.v.(*MsgVal)
		return ok && mv.ID == id
	}
}

// runHandler executes one event procedure body with `this` bound.
func (n *Node) runHandler(h *capl.Handler, this *MsgVal) error {
	in := &interp{node: n, this: this, limit: n.MaxSteps}
	_, err := in.execBlock(h.Body, newScope(nil))
	return err
}

// fireTimer runs the `on timer` procedures for the named timer.
func (n *Node) fireTimer(name string, gen int) {
	ts, ok := n.timers[name]
	if !ok || !ts.armed || ts.gen != gen {
		return // cancelled or re-armed since scheduling
	}
	ts.armed = false
	for _, h := range n.prog.HandlersOf(capl.OnTimer) {
		if h.Target != name {
			continue
		}
		if err := n.runHandler(h, nil); err != nil {
			n.setErr(err)
			return
		}
	}
}

// setTimer arms the named timer to fire after ms milliseconds.
func (n *Node) setTimer(name string, ms int64) error {
	ts, ok := n.timers[name]
	if !ok {
		return fmt.Errorf("setTimer: %q is not a declared timer", name)
	}
	if n.TimerJitter != nil {
		ms = n.TimerJitter(name, ms)
		if ms < 0 {
			ms = 0
		}
	}
	ts.armed = true
	ts.gen++
	gen := ts.gen
	return n.bus.Schedule(n.bus.Now()+canbus.Time(ms)*canbus.Millisecond, func() {
		n.fireTimer(name, gen)
	})
}

func (n *Node) cancelTimer(name string) error {
	ts, ok := n.timers[name]
	if !ok {
		return fmt.Errorf("cancelTimer: %q is not a declared timer", name)
	}
	ts.armed = false
	ts.gen++
	return nil
}

// output transmits the message variable's current value. A bus-off
// controller silently refuses the frame — CAPL's output() does not
// raise, matching CANoe — and the rejection is counted instead.
func (n *Node) output(mv *MsgVal) error {
	f := mv.Frame()
	err := n.bus.Transmit(n.tap, f)
	if errors.Is(err, canbus.ErrBusOff) {
		n.OutputsRejected++
		return nil
	}
	if err == nil {
		n.Sent = append(n.Sent, f.Clone())
	}
	return err
}

// Tap returns the node's bus attachment, exposing its error-confinement
// state and frame counters.
func (n *Node) Tap() *canbus.Tap { return n.tap }

// Global returns the current value of a node global variable (int64,
// float64, string, []int64, *MsgVal or timer state).
func (n *Node) Global(name string) (any, bool) {
	c, ok := n.globals[name]
	if !ok {
		return nil, false
	}
	return c.v, true
}

// PressKey delivers a keyboard event to the node, running its matching
// `on key` procedures (CANoe's interactive panel keys).
func (n *Node) PressKey(key string) error {
	for _, h := range n.prog.HandlersOf(capl.OnKey) {
		if h.Target != key {
			continue
		}
		if err := n.runHandler(h, nil); err != nil {
			n.setErr(err)
			return n.firstErr
		}
	}
	return nil
}

// StopMeasurement runs the node's `on stopMeasurement` procedures, as
// CANoe does when a measurement ends. A node that already latched a
// runtime error is dead — its handlers do not run (they would execute
// on a faulted interpreter state and could mask the original fault) and
// the latched error is returned unchanged.
func (n *Node) StopMeasurement() error {
	if n.firstErr != nil {
		return n.firstErr
	}
	for _, h := range n.prog.HandlersOf(capl.OnStopMeasurement) {
		if err := n.runHandler(h, nil); err != nil {
			n.setErr(err)
			return n.firstErr
		}
	}
	return nil
}
