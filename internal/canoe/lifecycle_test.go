package canoe

import (
	"strings"
	"testing"

	"repro/internal/canbus"
)

// TestStopIdempotent pins that a second Stop is a no-op returning the
// latched first result: stop handlers run exactly once, so a
// measurement stopped twice cannot double-emit frames or double-count
// cleanup — learner query batches stop thousands of short measurements
// and must be able to call Stop defensively.
func TestStopIdempotent(t *testing.T) {
	const src = `
variables {
  message 0x42 probe;
  int stops = 0;
}
on stopMeasurement { stops = stops + 1; output(probe); }
`
	sim := NewSimulation(canbus.Config{})
	node, err := sim.AddNode("N", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Stop(); err != nil {
		t.Fatalf("second Stop = %v, want latched nil", err)
	}
	if got, _ := node.Global("stops"); got != int64(1) {
		t.Errorf("stop handler ran %v times, want 1", got)
	}
	if err := sim.RunAll(100); err != nil {
		t.Fatal(err)
	}
	if len(node.Sent) != 1 {
		t.Errorf("stop handler emitted %d frames, want 1", len(node.Sent))
	}
}

// TestStopAfterLatchedError pins that a node which already faulted at
// runtime is dead at measurement end: its stop handlers are skipped
// (they would run on a faulted interpreter state and could mask or
// compound the original error) and Stop keeps reporting the first
// fault, on every call.
func TestStopAfterLatchedError(t *testing.T) {
	const src = `
variables {
  message 0x42 probe;
  int d = 0;
  int cleaned = 0;
}
on message 0x100 { d = 1 / d; }
on stopMeasurement { cleaned = 1; output(probe); }
`
	sim := NewSimulation(canbus.Config{})
	node, err := sim.AddNode("N", src)
	if err != nil {
		t.Fatal(err)
	}
	driver := sim.Bus.Attach("driver", canbus.ReceiverFunc(func(canbus.Time, canbus.Frame) {}))
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Bus.Transmit(driver, canbus.Frame{ID: 0x100, Data: []byte{0}}); err != nil {
		t.Fatal(err)
	}
	sim.Bus.RunAll(100)
	runErr := sim.Err()
	if runErr == nil || !strings.Contains(runErr.Error(), "division by zero") {
		t.Fatalf("handler error = %v, want division by zero", runErr)
	}

	stopErr := sim.Stop()
	if stopErr == nil || stopErr.Error() != runErr.Error() {
		t.Errorf("Stop = %v, want the latched run error %v", stopErr, runErr)
	}
	if again := sim.Stop(); again == nil || again.Error() != runErr.Error() {
		t.Errorf("repeated Stop = %v, want the latched run error", again)
	}
	if got, _ := node.Global("cleaned"); got != int64(0) {
		t.Error("stop handler ran on a faulted node")
	}
	if len(node.Sent) != 0 {
		t.Errorf("faulted node emitted %d frames during Stop, want 0", len(node.Sent))
	}
}

// TestStopRunsHealthyNodesAfterFault pins that one faulted node cannot
// leak another node's cleanup: healthy nodes' stop handlers still run.
func TestStopRunsHealthyNodesAfterFault(t *testing.T) {
	const bad = `
variables { int d = 0; }
on message 0x100 { d = 1 / d; }
`
	const good = `
variables { int cleaned = 0; }
on stopMeasurement { cleaned = 1; }
`
	sim := NewSimulation(canbus.Config{})
	if _, err := sim.AddNode("Bad", bad); err != nil {
		t.Fatal(err)
	}
	goodNode, err := sim.AddNode("Good", good)
	if err != nil {
		t.Fatal(err)
	}
	driver := sim.Bus.Attach("driver", canbus.ReceiverFunc(func(canbus.Time, canbus.Frame) {}))
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Bus.Transmit(driver, canbus.Frame{ID: 0x100, Data: []byte{0}}); err != nil {
		t.Fatal(err)
	}
	sim.Bus.RunAll(100)
	if sim.Err() == nil {
		t.Fatal("bad node did not fault")
	}
	if err := sim.Stop(); err == nil {
		t.Error("Stop did not report the faulted node")
	}
	if got, _ := goodNode.Global("cleaned"); got != int64(1) {
		t.Error("healthy node's stop handler did not run after another node faulted")
	}
}

// TestRunLimitedBudgetAndHorizonOnSameEvent pins the edge where the
// event budget is exhausted by the event that also reaches the horizon:
// with nothing further scheduled inside the horizon the run is done
// (the budget was sufficient), while another event pending at the same
// timestamp means the budget genuinely cut the run short and a
// follow-up call finishes it without re-running anything.
func TestRunLimitedBudgetAndHorizonOnSameEvent(t *testing.T) {
	sim := NewSimulation(canbus.Config{})
	fired := 0
	for _, at := range []canbus.Time{100, 200} {
		if err := sim.Bus.Schedule(at, func() { fired++ }); err != nil {
			t.Fatal(err)
		}
	}
	done, err := sim.RunLimited(200, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("budget == events within horizon: run should be done")
	}
	if fired != 2 || sim.Bus.Now() != 200 {
		t.Errorf("fired = %d at t=%d, want 2 at t=200", fired, sim.Bus.Now())
	}

	// Same shape, but a third event shares the horizon timestamp: the
	// budget runs out with work still pending at t <= until.
	sim2 := NewSimulation(canbus.Config{})
	fired2 := 0
	for _, at := range []canbus.Time{100, 200, 200} {
		if err := sim2.Bus.Schedule(at, func() { fired2++ }); err != nil {
			t.Fatal(err)
		}
	}
	done, err = sim2.RunLimited(200, 2)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Error("pending event at the horizon: run must report budget exhaustion")
	}
	if fired2 != 2 {
		t.Errorf("fired = %d, want exactly the budget of 2", fired2)
	}
	done, err = sim2.RunLimited(200, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !done || fired2 != 3 {
		t.Errorf("follow-up run: done=%v fired=%d, want true/3", done, fired2)
	}
}
