package canoe

import (
	"strings"
	"testing"

	"repro/internal/canbus"
)

func TestPingPongNodes(t *testing.T) {
	const pinger = `
variables {
  message 0x100 ping;
  message 0x200 pong;
  int pongs = 0;
}
on start { output(ping); }
on message pong {
  pongs = pongs + 1;
  if (pongs < 3) {
    output(ping);
  }
}
`
	const ponger = `
variables {
  message 0x100 ping;
  message 0x200 pong;
}
on message ping { output(pong); }
`
	sim := NewSimulation(canbus.Config{})
	if _, err := sim.AddNode("Pinger", pinger); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddNode("Ponger", ponger); err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunAll(1000); err != nil {
		t.Fatal(err)
	}
	ids := sim.TraceIDs()
	want := []uint32{0x100, 0x200, 0x100, 0x200, 0x100, 0x200}
	if len(ids) != len(want) {
		t.Fatalf("trace = %#x, want %#x", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("frame %d id = %#x, want %#x", i, ids[i], want[i])
		}
	}
	n, err := sim.Node("Pinger")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := n.globals["pongs"].v.(int64); got != 3 {
		t.Errorf("pongs = %d, want 3", got)
	}
}

func TestTimersDriveTraffic(t *testing.T) {
	const src = `
variables {
  message 0x123 beat;
  msTimer heart;
  int beats = 0;
}
on start { setTimer(heart, 10); }
on timer heart {
  beats = beats + 1;
  output(beat);
  if (beats < 4) {
    setTimer(heart, 10);
  }
}
`
	sim := NewSimulation(canbus.Config{})
	if _, err := sim.AddNode("N", src); err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunAll(1000); err != nil {
		t.Fatal(err)
	}
	trace := sim.Trace()
	if len(trace) != 4 {
		t.Fatalf("beats on bus = %d, want 4", len(trace))
	}
	// Beats at 10, 20, 30, 40 ms (plus transmission time ~<1ms).
	for i, tf := range trace {
		expectAfter := canbus.Time(10*(i+1)) * canbus.Millisecond
		if tf.At < expectAfter || tf.At > expectAfter+canbus.Millisecond {
			t.Errorf("beat %d at %dus, want within 1ms after %dus", i, tf.At, expectAfter)
		}
	}
}

func TestCancelTimer(t *testing.T) {
	const src = `
variables {
  message 0x1 m;
  msTimer tmr;
}
on start {
  setTimer(tmr, 10);
  cancelTimer(tmr);
}
on timer tmr { output(m); }
`
	sim := NewSimulation(canbus.Config{})
	if _, err := sim.AddNode("N", src); err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunAll(100); err != nil {
		t.Fatal(err)
	}
	if len(sim.Trace()) != 0 {
		t.Error("cancelled timer still fired")
	}
}

func TestMessageDataAndThis(t *testing.T) {
	const producer = `
variables { message 0x10 req; }
on start {
  req.byte(0) = 7;
  req.byte(1) = 0x2A;
  output(req);
}
`
	const consumer = `
variables {
  message 0x10 req;
  message 0x20 resp;
}
on message req {
  resp.byte(0) = this.byte(0) + this.byte(1);
  resp.DLC = 1;
  output(resp);
}
`
	sim := NewSimulation(canbus.Config{})
	if _, err := sim.AddNode("P", producer); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddNode("C", consumer); err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunAll(100); err != nil {
		t.Fatal(err)
	}
	trace := sim.Trace()
	if len(trace) != 2 {
		t.Fatalf("trace length = %d, want 2", len(trace))
	}
	resp := trace[1].Frame
	if resp.ID != 0x20 || len(resp.Data) != 1 || resp.Data[0] != 7+0x2A {
		t.Errorf("response frame = %s, want 020#31", resp)
	}
}

func TestFunctionsControlFlowAndWrite(t *testing.T) {
	const src = `
variables {
  message 0x5 m;
  int table[4];
}
on start {
  int i, total;
  for (i = 0; i < 4; i++) {
    table[i] = square(i);
  }
  total = 0;
  i = 0;
  while (i < 4) {
    total += table[i];
    i++;
  }
  switch (total) {
    case 14:
      write("total is %d", total);
      break;
    default:
      write("unexpected");
  }
  m.byte(0) = total;
  m.DLC = 1;
  output(m);
}
int square(int x) { return x * x; }
`
	sim := NewSimulation(canbus.Config{})
	node, err := sim.AddNode("N", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunAll(100); err != nil {
		t.Fatal(err)
	}
	if len(node.Log) != 1 || node.Log[0] != "total is 14" {
		t.Errorf("log = %v", node.Log)
	}
	if len(node.Sent) != 1 || node.Sent[0].Data[0] != 14 {
		t.Errorf("sent = %v", node.Sent)
	}
}

func TestRunawayLoopCaught(t *testing.T) {
	const src = `
variables { message 0x1 m; }
on start {
  while (1) { }
}
`
	sim := NewSimulation(canbus.Config{})
	node, err := sim.AddNode("N", src)
	if err != nil {
		t.Fatal(err)
	}
	node.MaxSteps = 1000
	err = sim.Start()
	if err == nil {
		t.Fatal("runaway loop not detected")
	}
	if !strings.Contains(err.Error(), "steps") {
		t.Errorf("error = %v", err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined var", "on start { x = 1; }", "undefined variable"},
		{"bad output", "on start { output(5); }", "not a message"},
		{"div by zero", "variables { int z = 0; }\non start { z = 1 / z; }", "division by zero"},
		{"bad timer", "on start { setTimer(nope, 10); }", "not a declared timer"},
		{"index range", "variables { int a[2]; }\non start { a[5] = 1; }", "out of range"},
		{"this outside handler", "on start { write(\"%d\", this.byte(0)); }", "outside an on message"},
		{"undefined function", "on start { frob(); }", "undefined function"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim := NewSimulation(canbus.Config{})
			if _, err := sim.AddNode("N", tc.src); err != nil {
				t.Fatalf("parse/init: %v", err)
			}
			err := sim.Start()
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestWildcardAndIDHandlers(t *testing.T) {
	const src = `
variables {
  message 0x300 out1;
  int any = 0;
  int exact = 0;
}
on message * { any = any + 1; }
on message 0x300 { exact = exact + 1; }
`
	sim := NewSimulation(canbus.Config{})
	listener, err := sim.AddNode("L", src)
	if err != nil {
		t.Fatal(err)
	}
	sender, err := sim.AddNode("S", `
variables { message 0x300 m; message 0x301 n; }
on start { output(m); output(n); }
`)
	if err != nil {
		t.Fatal(err)
	}
	_ = sender
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunAll(100); err != nil {
		t.Fatal(err)
	}
	if got, _ := listener.globals["any"].v.(int64); got != 2 {
		t.Errorf("wildcard count = %d, want 2", got)
	}
	if got, _ := listener.globals["exact"].v.(int64); got != 1 {
		t.Errorf("exact count = %d, want 1", got)
	}
}

func TestCompoundAssignAndTernary(t *testing.T) {
	const src = `
variables {
  int a = 10;
  int b = 0;
}
on start {
  a += 5;
  a <<= 1;
  b = a > 20 ? 1 : 2;
}
`
	sim := NewSimulation(canbus.Config{})
	node, err := sim.AddNode("N", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if got, _ := node.globals["a"].v.(int64); got != 30 {
		t.Errorf("a = %d, want 30", got)
	}
	if got, _ := node.globals["b"].v.(int64); got != 1 {
		t.Errorf("b = %d, want 1", got)
	}
}

func TestFloatArithmetic(t *testing.T) {
	const src = `
variables {
  float ratio = 0;
  int whole = 0;
}
on start {
  ratio = 7.5 / 2.5;
  whole = ratio;
}
`
	sim := NewSimulation(canbus.Config{})
	node, err := sim.AddNode("N", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if got, _ := node.globals["ratio"].v.(float64); got != 3.0 {
		t.Errorf("ratio = %v, want 3.0", got)
	}
	if got, _ := node.globals["whole"].v.(int64); got != 3 {
		t.Errorf("whole = %v, want 3", got)
	}
}

func TestDoWhileAndPostfix(t *testing.T) {
	const src = `
variables { int n = 0; }
on start {
  int i;
  i = 0;
  do {
    n++;
    i++;
  } while (i < 3);
}
`
	sim := NewSimulation(canbus.Config{})
	node, err := sim.AddNode("N", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if got, _ := node.globals["n"].v.(int64); got != 3 {
		t.Errorf("n = %d, want 3", got)
	}
}

func TestKeyAndStopMeasurementHandlers(t *testing.T) {
	const src = `
variables {
  message 0x42 probe;
  int stopped = 0;
}
on key 'p' { output(probe); }
on stopMeasurement { stopped = 1; write("bye"); }
`
	sim := NewSimulation(canbus.Config{})
	node, err := sim.AddNode("Panel", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if err := node.PressKey("p"); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunAll(10); err != nil {
		t.Fatal(err)
	}
	if len(node.Sent) != 1 || node.Sent[0].ID != 0x42 {
		t.Errorf("key handler did not send the probe: %v", node.Sent)
	}
	if err := node.PressKey("x"); err != nil {
		t.Fatal(err) // no handler: no-op
	}
	if err := sim.Stop(); err != nil {
		t.Fatal(err)
	}
	if v, _ := node.Global("stopped"); v.(int64) != 1 {
		t.Error("stopMeasurement handler did not run")
	}
	if len(node.Log) != 1 || node.Log[0] != "bye" {
		t.Errorf("log = %v", node.Log)
	}
}

func TestWordAccessAndMsgID(t *testing.T) {
	const src = `
variables {
  message 0x10 m;
  int readBack = 0;
  int theID = 0;
}
on start {
  m.word(0) = 0x1234;
  readBack = m.word(0);
  theID = m.ID;
  m.ID = 0x11;
  output(m);
}
`
	sim := NewSimulation(canbus.Config{})
	node, err := sim.AddNode("N", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunAll(10); err != nil {
		t.Fatal(err)
	}
	if v, _ := node.Global("readBack"); v.(int64) != 0x1234 {
		t.Errorf("word round trip = %#x", v)
	}
	if v, _ := node.Global("theID"); v.(int64) != 0x10 {
		t.Errorf("ID read = %#x", v)
	}
	if node.Sent[0].ID != 0x11 {
		t.Errorf("reassigned ID = %#x", node.Sent[0].ID)
	}
	// Little-endian layout.
	if node.Sent[0].Data[0] != 0x34 || node.Sent[0].Data[1] != 0x12 {
		t.Errorf("payload = % x", node.Sent[0].Data)
	}
}

func TestMsgIndexAddressesBytes(t *testing.T) {
	const src = `
variables {
  message 0x10 m;
  int b = 0;
}
on start {
  m[3] = 0xAB;
  b = m[3];
}
`
	sim := NewSimulation(canbus.Config{})
	node, err := sim.AddNode("N", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if v, _ := node.Global("b"); v.(int64) != 0xAB {
		t.Errorf("m[3] = %#x", v)
	}
}

func TestPrefixIncrementAndContinue(t *testing.T) {
	const src = `
variables { int total = 0; }
on start {
  int i;
  for (i = 0; i < 6; ++i) {
    if (i % 2 == 0) {
      continue;
    }
    total += i;  // 1 + 3 + 5
  }
}
`
	sim := NewSimulation(canbus.Config{})
	node, err := sim.AddNode("N", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if v, _ := node.Global("total"); v.(int64) != 9 {
		t.Errorf("total = %d, want 9", v)
	}
}

func TestCharArrayStringGlobal(t *testing.T) {
	const src = `
variables {
  char label[16] = "ecu-7";
}
on start { write("node %s", label); }
`
	sim := NewSimulation(canbus.Config{})
	node, err := sim.AddNode("N", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if len(node.Log) != 1 || node.Log[0] != "node ecu-7" {
		t.Errorf("log = %v", node.Log)
	}
}

// TestRunLimitedBudgetExhaustion converts a runaway measurement — a
// zero-period timer that re-arms itself on every firing — into a
// verdict: RunLimited must report the horizon was not reached instead
// of spinning forever.
func TestRunLimitedBudgetExhaustion(t *testing.T) {
	const src = `
variables {
  message 0x77 m;
  msTimer tick;
}
on start { setTimer(tick, 0); }
on timer tick {
  output(m);
  setTimer(tick, 0);
}
`
	sim := NewSimulation(canbus.Config{})
	if _, err := sim.AddNode("Runaway", src); err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	done, err := sim.RunLimited(canbus.Time(1)*canbus.Millisecond, 50)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Error("zero-period timer runaway reported as reaching the horizon")
	}
	// The budget bounds the measurement: the re-arming timer kept the
	// clock pinned, so the horizon was never reached and the trace stayed
	// finite (the 50-event budget is spent on timer firings and frame
	// completions, never more).
	if n := len(sim.Trace()); n > 50 {
		t.Errorf("trace length = %d, want <= 50", n)
	}
	if sim.Bus.Now() >= canbus.Time(1)*canbus.Millisecond {
		t.Errorf("clock reached %d despite the runaway timer", sim.Bus.Now())
	}
}

// TestStopReportsFailingNode covers the Stop error path: a node whose
// stopMeasurement handler runs away must surface its step-budget error
// through Stop instead of being swallowed at measurement end.
func TestStopReportsFailingNode(t *testing.T) {
	const src = `
on stopMeasurement {
  while (1) { }
}
`
	sim := NewSimulation(canbus.Config{})
	node, err := sim.AddNode("N", src)
	if err != nil {
		t.Fatal(err)
	}
	node.MaxSteps = 100
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	err = sim.Stop()
	if err == nil {
		t.Fatal("failing stopMeasurement handler not reported")
	}
	if !strings.Contains(err.Error(), "steps") || !strings.Contains(err.Error(), "node N") {
		t.Errorf("error = %v, want step-budget error naming node N", err)
	}
	// The error latches: Err keeps reporting it afterwards.
	if sim.Err() == nil {
		t.Error("node error not latched after Stop")
	}
}

// TestMonitorTapUnderInjectorDrops pins what the trace window records
// when an injector eats frames: dropped frames never reach the monitor
// tap, so the trace holds exactly the delivered traffic.
func TestMonitorTapUnderInjectorDrops(t *testing.T) {
	sim := NewSimulation(canbus.Config{Injector: &canbus.Injector{
		Drop: func(_ canbus.Time, f canbus.Frame) bool { return f.ID == 0x200 },
	}})
	const src = `
variables {
  message 0x100 keep;
  message 0x200 lose;
}
on start {
  output(keep);
  output(lose);
  output(keep);
}
`
	node, err := sim.AddNode("S", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunAll(100); err != nil {
		t.Fatal(err)
	}
	// The sender observed all three transmissions succeed...
	if len(node.Sent) != 3 {
		t.Fatalf("sent = %d frames, want 3", len(node.Sent))
	}
	// ...but the monitor only saw the two delivered frames.
	ids := sim.TraceIDs()
	if len(ids) != 2 || ids[0] != 0x100 || ids[1] != 0x100 {
		t.Errorf("monitored trace = %#x, want [0x100 0x100]", ids)
	}
	if st := sim.Bus.Stats(); st.FramesDropped != 1 || st.FramesDelivered != 2 {
		t.Errorf("stats = %+v, want 1 dropped / 2 delivered", st)
	}
}

func TestGlobalAccessor(t *testing.T) {
	sim := NewSimulation(canbus.Config{})
	node, err := sim.AddNode("N", "variables { int x = 5; }")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := node.Global("x"); !ok || v.(int64) != 5 {
		t.Errorf("Global(x) = %v, %v", v, ok)
	}
	if _, ok := node.Global("nope"); ok {
		t.Error("missing global reported present")
	}
}
