package canoe

import (
	"fmt"
	"strings"

	"repro/internal/capl"
)

// scope is a lexical frame chained to its parent.
type scope struct {
	vars   map[string]*cell
	parent *scope
}

func newScope(parent *scope) *scope {
	return &scope{vars: map[string]*cell{}, parent: parent}
}

func (s *scope) lookup(name string) (*cell, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if c, ok := cur.vars[name]; ok {
			return c, true
		}
	}
	return nil, false
}

// flow is the statement-level control result.
type flow int

const (
	flowNormal flow = iota
	flowBreak
	flowContinue
	flowReturn
)

// interp executes CAPL statements for one event-procedure activation.
type interp struct {
	node  *Node
	this  *MsgVal
	steps int
	limit int
	ret   any
}

func (in *interp) step() error {
	in.steps++
	if in.limit > 0 && in.steps > in.limit {
		return fmt.Errorf("execution exceeded %d steps (runaway loop?)", in.limit)
	}
	return nil
}

func (in *interp) resolve(name string, sc *scope) (*cell, bool) {
	if sc != nil {
		if c, ok := sc.lookup(name); ok {
			return c, true
		}
	}
	c, ok := in.node.globals[name]
	return c, ok
}

// --- Statements -----------------------------------------------------------

func (in *interp) execBlock(b *capl.BlockStmt, sc *scope) (flow, error) {
	inner := newScope(sc)
	for _, s := range b.Stmts {
		fl, err := in.exec(s, inner)
		if err != nil || fl != flowNormal {
			return fl, err
		}
	}
	return flowNormal, nil
}

func (in *interp) exec(s capl.Stmt, sc *scope) (flow, error) {
	if err := in.step(); err != nil {
		return flowNormal, err
	}
	switch x := s.(type) {
	case *capl.BlockStmt:
		return in.execBlock(x, sc)
	case *capl.DeclStmt:
		for _, d := range x.Decls {
			v, err := in.node.initialValue(d)
			if err != nil {
				return flowNormal, err
			}
			// Local initialisers may reference locals; re-evaluate here.
			if d.Init != nil && len(d.Type.ArrayDims) == 0 {
				iv, err := in.eval(d.Init, sc)
				if err != nil {
					return flowNormal, err
				}
				v = iv
			}
			sc.vars[d.Name] = &cell{v: v}
		}
		return flowNormal, nil
	case *capl.ExprStmt:
		_, err := in.eval(x.X, sc)
		return flowNormal, err
	case *capl.IfStmt:
		cond, err := in.evalBool(x.Cond, sc)
		if err != nil {
			return flowNormal, err
		}
		if cond {
			return in.exec(x.Then, sc)
		}
		if x.Else != nil {
			return in.exec(x.Else, sc)
		}
		return flowNormal, nil
	case *capl.WhileStmt:
		for {
			cond, err := in.evalBool(x.Cond, sc)
			if err != nil {
				return flowNormal, err
			}
			if !cond {
				return flowNormal, nil
			}
			fl, err := in.exec(x.Body, sc)
			if err != nil {
				return flowNormal, err
			}
			if fl == flowBreak {
				return flowNormal, nil
			}
			if fl == flowReturn {
				return fl, nil
			}
		}
	case *capl.DoWhileStmt:
		for {
			fl, err := in.exec(x.Body, sc)
			if err != nil {
				return flowNormal, err
			}
			if fl == flowBreak {
				return flowNormal, nil
			}
			if fl == flowReturn {
				return fl, nil
			}
			cond, err := in.evalBool(x.Cond, sc)
			if err != nil {
				return flowNormal, err
			}
			if !cond {
				return flowNormal, nil
			}
		}
	case *capl.ForStmt:
		inner := newScope(sc)
		if x.Init != nil {
			if fl, err := in.exec(x.Init, inner); err != nil || fl != flowNormal {
				return fl, err
			}
		}
		for {
			if x.Cond != nil {
				cond, err := in.evalBool(x.Cond, inner)
				if err != nil {
					return flowNormal, err
				}
				if !cond {
					return flowNormal, nil
				}
			}
			fl, err := in.exec(x.Body, inner)
			if err != nil {
				return flowNormal, err
			}
			if fl == flowBreak {
				return flowNormal, nil
			}
			if fl == flowReturn {
				return fl, nil
			}
			if x.Post != nil {
				if _, err := in.eval(x.Post, inner); err != nil {
					return flowNormal, err
				}
			}
			if err := in.step(); err != nil {
				return flowNormal, err
			}
		}
	case *capl.SwitchStmt:
		return in.execSwitch(x, sc)
	case *capl.BreakStmt:
		return flowBreak, nil
	case *capl.ContinueStmt:
		return flowContinue, nil
	case *capl.ReturnStmt:
		if x.X != nil {
			v, err := in.eval(x.X, sc)
			if err != nil {
				return flowNormal, err
			}
			in.ret = v
		}
		return flowReturn, nil
	}
	return flowNormal, fmt.Errorf("unsupported statement %T", s)
}

func (in *interp) execSwitch(x *capl.SwitchStmt, sc *scope) (flow, error) {
	tag, err := in.eval(x.Tag, sc)
	if err != nil {
		return flowNormal, err
	}
	tagInt, err := asInt(tag)
	if err != nil {
		return flowNormal, err
	}
	matched := -1
	defaultIdx := -1
	for i, c := range x.Cases {
		if c.Value == nil {
			defaultIdx = i
			continue
		}
		v, err := in.eval(c.Value, sc)
		if err != nil {
			return flowNormal, err
		}
		vi, err := asInt(v)
		if err != nil {
			return flowNormal, err
		}
		if vi == tagInt {
			matched = i
			break
		}
	}
	if matched < 0 {
		matched = defaultIdx
	}
	if matched < 0 {
		return flowNormal, nil
	}
	// Execute with C fallthrough until break.
	for i := matched; i < len(x.Cases); i++ {
		for _, s := range x.Cases[i].Stmts {
			fl, err := in.exec(s, sc)
			if err != nil {
				return flowNormal, err
			}
			switch fl {
			case flowBreak:
				return flowNormal, nil
			case flowReturn, flowContinue:
				return fl, nil
			}
		}
	}
	return flowNormal, nil
}

// --- Expressions ------------------------------------------------------------

func (in *interp) evalBool(e capl.Expr, sc *scope) (bool, error) {
	v, err := in.eval(e, sc)
	if err != nil {
		return false, err
	}
	return truthy(v)
}

func (in *interp) eval(e capl.Expr, sc *scope) (any, error) {
	if err := in.step(); err != nil {
		return nil, err
	}
	switch x := e.(type) {
	case *capl.IntLit:
		return x.Val, nil
	case *capl.FloatLit:
		return x.Val, nil
	case *capl.StrLit:
		return x.Val, nil
	case *capl.Ident:
		c, ok := in.resolve(x.Name, sc)
		if !ok {
			return nil, fmt.Errorf("line %d: undefined variable %q", x.Line, x.Name)
		}
		return c.v, nil
	case *capl.ThisExpr:
		if in.this == nil {
			return nil, fmt.Errorf("line %d: `this` outside an on message handler", x.Line)
		}
		return in.this, nil
	case *capl.UnaryExpr:
		return in.evalUnary(x, sc)
	case *capl.PostfixExpr:
		lv, err := in.lvalue(x.X, sc)
		if err != nil {
			return nil, err
		}
		old, err := asInt(lv.get())
		if err != nil {
			return nil, err
		}
		delta := int64(1)
		if x.Op == capl.DEC {
			delta = -1
		}
		if err := lv.set(old + delta); err != nil {
			return nil, err
		}
		return old, nil
	case *capl.BinaryExpr:
		return in.evalBinary(x, sc)
	case *capl.AssignExpr:
		return in.evalAssign(x, sc)
	case *capl.CondExpr:
		cond, err := in.evalBool(x.Cond, sc)
		if err != nil {
			return nil, err
		}
		if cond {
			return in.eval(x.Then, sc)
		}
		return in.eval(x.Else, sc)
	case *capl.CallExpr:
		return in.call(x, sc)
	case *capl.MemberExpr:
		lv, err := in.lvalue(x, sc)
		if err != nil {
			return nil, err
		}
		return lv.get(), nil
	case *capl.IndexExpr:
		lv, err := in.lvalue(x, sc)
		if err != nil {
			return nil, err
		}
		return lv.get(), nil
	}
	return nil, fmt.Errorf("unsupported expression %T", e)
}

func (in *interp) evalUnary(x *capl.UnaryExpr, sc *scope) (any, error) {
	if x.Op == capl.INC || x.Op == capl.DEC {
		lv, err := in.lvalue(x.X, sc)
		if err != nil {
			return nil, err
		}
		old, err := asInt(lv.get())
		if err != nil {
			return nil, err
		}
		delta := int64(1)
		if x.Op == capl.DEC {
			delta = -1
		}
		if err := lv.set(old + delta); err != nil {
			return nil, err
		}
		return old + delta, nil
	}
	v, err := in.eval(x.X, sc)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case capl.MINUS:
		switch n := v.(type) {
		case int64:
			return -n, nil
		case float64:
			return -n, nil
		}
	case capl.BANG:
		b, err := truthy(v)
		if err != nil {
			return nil, err
		}
		if b {
			return int64(0), nil
		}
		return int64(1), nil
	case capl.TILDE:
		n, err := asInt(v)
		if err != nil {
			return nil, err
		}
		return ^n, nil
	}
	return nil, fmt.Errorf("line %d: bad unary operand %T", x.Line, v)
}

func (in *interp) evalBinary(x *capl.BinaryExpr, sc *scope) (any, error) {
	// Short-circuit logical operators.
	if x.Op == capl.ANDAND || x.Op == capl.OROR {
		l, err := in.evalBool(x.L, sc)
		if err != nil {
			return nil, err
		}
		if x.Op == capl.ANDAND && !l {
			return int64(0), nil
		}
		if x.Op == capl.OROR && l {
			return int64(1), nil
		}
		r, err := in.evalBool(x.R, sc)
		if err != nil {
			return nil, err
		}
		if r {
			return int64(1), nil
		}
		return int64(0), nil
	}
	lv, err := in.eval(x.L, sc)
	if err != nil {
		return nil, err
	}
	rv, err := in.eval(x.R, sc)
	if err != nil {
		return nil, err
	}
	lf, lIsF := lv.(float64)
	rf, rIsF := rv.(float64)
	if lIsF || rIsF {
		if !lIsF {
			li, err := asInt(lv)
			if err != nil {
				return nil, err
			}
			lf = float64(li)
		}
		if !rIsF {
			ri, err := asInt(rv)
			if err != nil {
				return nil, err
			}
			rf = float64(ri)
		}
		return floatBinary(x.Op, lf, rf, x.Line)
	}
	li, err := asInt(lv)
	if err != nil {
		return nil, fmt.Errorf("line %d: %w", x.Line, err)
	}
	ri, err := asInt(rv)
	if err != nil {
		return nil, fmt.Errorf("line %d: %w", x.Line, err)
	}
	return intBinary(x.Op, li, ri, x.Line)
}

func intBinary(op capl.Kind, l, r int64, line int) (any, error) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case capl.PLUS:
		return l + r, nil
	case capl.MINUS:
		return l - r, nil
	case capl.STAR:
		return l * r, nil
	case capl.SLASH:
		if r == 0 {
			return nil, fmt.Errorf("line %d: division by zero", line)
		}
		return l / r, nil
	case capl.PERCENT:
		if r == 0 {
			return nil, fmt.Errorf("line %d: modulo by zero", line)
		}
		return l % r, nil
	case capl.AMP:
		return l & r, nil
	case capl.PIPE:
		return l | r, nil
	case capl.CARET:
		return l ^ r, nil
	case capl.SHL:
		return l << uint(r&63), nil
	case capl.SHR:
		return l >> uint(r&63), nil
	case capl.EQ:
		return b2i(l == r), nil
	case capl.NE:
		return b2i(l != r), nil
	case capl.LT:
		return b2i(l < r), nil
	case capl.LE:
		return b2i(l <= r), nil
	case capl.GT:
		return b2i(l > r), nil
	case capl.GE:
		return b2i(l >= r), nil
	}
	return nil, fmt.Errorf("line %d: unsupported integer operator %s", line, op)
}

func floatBinary(op capl.Kind, l, r float64, line int) (any, error) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case capl.PLUS:
		return l + r, nil
	case capl.MINUS:
		return l - r, nil
	case capl.STAR:
		return l * r, nil
	case capl.SLASH:
		if r == 0 {
			return nil, fmt.Errorf("line %d: division by zero", line)
		}
		return l / r, nil
	case capl.EQ:
		return b2i(l == r), nil
	case capl.NE:
		return b2i(l != r), nil
	case capl.LT:
		return b2i(l < r), nil
	case capl.LE:
		return b2i(l <= r), nil
	case capl.GT:
		return b2i(l > r), nil
	case capl.GE:
		return b2i(l >= r), nil
	}
	return nil, fmt.Errorf("line %d: unsupported float operator %s", line, op)
}

var compoundOps = map[capl.Kind]capl.Kind{
	capl.PLUSEQ: capl.PLUS, capl.MINUSEQ: capl.MINUS, capl.STAREQ: capl.STAR,
	capl.SLASHEQ: capl.SLASH, capl.PERCENTEQ: capl.PERCENT,
	capl.AMPEQ: capl.AMP, capl.PIPEEQ: capl.PIPE, capl.CARETEQ: capl.CARET,
	capl.SHLEQ: capl.SHL, capl.SHREQ: capl.SHR,
}

func (in *interp) evalAssign(x *capl.AssignExpr, sc *scope) (any, error) {
	lv, err := in.lvalue(x.L, sc)
	if err != nil {
		return nil, err
	}
	rv, err := in.eval(x.R, sc)
	if err != nil {
		return nil, err
	}
	if x.Op != capl.ASSIGN {
		base, ok := compoundOps[x.Op]
		if !ok {
			return nil, fmt.Errorf("line %d: unsupported assignment %s", x.Line, x.Op)
		}
		old, err := asInt(lv.get())
		if err != nil {
			return nil, err
		}
		ri, err := asInt(rv)
		if err != nil {
			return nil, err
		}
		combined, err := intBinary(base, old, ri, x.Line)
		if err != nil {
			return nil, err
		}
		rv = combined
	}
	if err := lv.set(rv); err != nil {
		return nil, err
	}
	return rv, nil
}

// --- L-values ----------------------------------------------------------------

type lvalue interface {
	get() any
	set(any) error
}

type cellLV struct{ c *cell }

func (l cellLV) get() any { return l.c.v }
func (l cellLV) set(v any) error {
	// Preserve the numeric typing of the slot, as C assignment would.
	switch l.c.v.(type) {
	case float64:
		switch x := v.(type) {
		case int64:
			l.c.v = float64(x)
			return nil
		case float64:
			l.c.v = x
			return nil
		}
	case int64:
		switch x := v.(type) {
		case int64:
			l.c.v = x
			return nil
		case float64:
			l.c.v = int64(x)
			return nil
		}
	}
	l.c.v = v
	return nil
}

type arrayLV struct {
	arr []int64
	idx int
}

func (l arrayLV) get() any { return l.arr[l.idx] }
func (l arrayLV) set(v any) error {
	i, err := asInt(v)
	if err != nil {
		return err
	}
	l.arr[l.idx] = i
	return nil
}

type msgFieldLV struct {
	msg   *MsgVal
	field string
	idx   int
}

func (l msgFieldLV) get() any {
	switch l.field {
	case "ID", "id":
		return int64(l.msg.ID)
	case "DLC", "dlc":
		return int64(l.msg.DLC)
	case "byte":
		return l.msg.Byte(l.idx)
	case "word":
		return l.msg.Word(l.idx)
	}
	return int64(0)
}

func (l msgFieldLV) set(v any) error {
	i, err := asInt(v)
	if err != nil {
		return err
	}
	switch l.field {
	case "ID", "id":
		l.msg.ID = uint32(i)
		return nil
	case "DLC", "dlc":
		l.msg.DLC = int(i)
		return nil
	case "byte":
		return l.msg.SetByte(l.idx, i)
	case "word":
		return l.msg.SetWord(l.idx, i)
	}
	return fmt.Errorf("cannot assign message field %q", l.field)
}

func (in *interp) lvalue(e capl.Expr, sc *scope) (lvalue, error) {
	switch x := e.(type) {
	case *capl.Ident:
		c, ok := in.resolve(x.Name, sc)
		if !ok {
			return nil, fmt.Errorf("line %d: undefined variable %q", x.Line, x.Name)
		}
		return cellLV{c: c}, nil
	case *capl.IndexExpr:
		base, err := in.eval(x.X, sc)
		if err != nil {
			return nil, err
		}
		idxV, err := in.eval(x.Index, sc)
		if err != nil {
			return nil, err
		}
		idx, err := asInt(idxV)
		if err != nil {
			return nil, err
		}
		switch b := base.(type) {
		case []int64:
			if idx < 0 || int(idx) >= len(b) {
				return nil, fmt.Errorf("line %d: index %d out of range (len %d)", x.Line, idx, len(b))
			}
			return arrayLV{arr: b, idx: int(idx)}, nil
		case *MsgVal:
			// msg[i] addresses payload bytes, like msg.byte(i).
			return msgFieldLV{msg: b, field: "byte", idx: int(idx)}, nil
		}
		return nil, fmt.Errorf("line %d: cannot index %T", x.Line, base)
	case *capl.MemberExpr:
		base, err := in.eval(x.X, sc)
		if err != nil {
			return nil, err
		}
		mv, ok := base.(*MsgVal)
		if !ok {
			return nil, fmt.Errorf("line %d: member access on %T", x.Line, base)
		}
		idx := 0
		if x.IsCall {
			if len(x.Args) != 1 {
				return nil, fmt.Errorf("line %d: %s() expects one index", x.Line, x.Field)
			}
			iv, err := in.eval(x.Args[0], sc)
			if err != nil {
				return nil, err
			}
			i, err := asInt(iv)
			if err != nil {
				return nil, err
			}
			idx = int(i)
		}
		switch x.Field {
		case "ID", "id", "DLC", "dlc", "byte", "word":
			return msgFieldLV{msg: mv, field: x.Field, idx: idx}, nil
		}
		return nil, fmt.Errorf("line %d: unknown message selector %q", x.Line, x.Field)
	}
	return nil, fmt.Errorf("invalid assignment target %T", e)
}

// --- Calls --------------------------------------------------------------------

func (in *interp) call(x *capl.CallExpr, sc *scope) (any, error) {
	switch x.Fun {
	case "output":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("line %d: output() expects one argument", x.Line)
		}
		v, err := in.eval(x.Args[0], sc)
		if err != nil {
			return nil, err
		}
		mv, ok := v.(*MsgVal)
		if !ok {
			return nil, fmt.Errorf("line %d: output() argument is not a message", x.Line)
		}
		return int64(0), in.node.output(mv)

	case "setTimer":
		if len(x.Args) != 2 {
			return nil, fmt.Errorf("line %d: setTimer() expects (timer, ms)", x.Line)
		}
		name, err := timerArgName(x.Args[0])
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", x.Line, err)
		}
		msV, err := in.eval(x.Args[1], sc)
		if err != nil {
			return nil, err
		}
		ms, err := asInt(msV)
		if err != nil {
			return nil, err
		}
		return int64(0), in.node.setTimer(name, ms)

	case "cancelTimer":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("line %d: cancelTimer() expects (timer)", x.Line)
		}
		name, err := timerArgName(x.Args[0])
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", x.Line, err)
		}
		return int64(0), in.node.cancelTimer(name)

	case "write", "writeEx", "writeLineEx":
		line, err := in.formatWrite(x.Args, sc)
		if err != nil {
			return nil, err
		}
		in.node.Log = append(in.node.Log, line)
		return int64(0), nil
	}

	fn, ok := in.node.prog.Function(x.Fun)
	if !ok {
		return nil, fmt.Errorf("line %d: call to undefined function %q", x.Line, x.Fun)
	}
	if len(x.Args) != len(fn.Params) {
		return nil, fmt.Errorf("line %d: %s() expects %d argument(s), got %d",
			x.Line, x.Fun, len(fn.Params), len(x.Args))
	}
	callScope := newScope(nil)
	for i, p := range fn.Params {
		v, err := in.eval(x.Args[i], sc)
		if err != nil {
			return nil, err
		}
		// Arrays and messages pass by reference (sharing the backing
		// store), scalars by value — matching CAPL.
		callScope.vars[p.Name] = &cell{v: v}
	}
	sub := &interp{node: in.node, this: in.this, limit: in.limit, steps: in.steps}
	fl, err := sub.execBlock(fn.Body, callScope)
	in.steps = sub.steps
	if err != nil {
		return nil, err
	}
	if fl == flowReturn && sub.ret != nil {
		return sub.ret, nil
	}
	return int64(0), nil
}

func timerArgName(e capl.Expr) (string, error) {
	id, ok := e.(*capl.Ident)
	if !ok {
		return "", fmt.Errorf("timer argument must be a timer variable")
	}
	return id.Name, nil
}

// formatWrite implements CAPL's printf-style write().
func (in *interp) formatWrite(args []capl.Expr, sc *scope) (string, error) {
	if len(args) == 0 {
		return "", nil
	}
	v, err := in.eval(args[0], sc)
	if err != nil {
		return "", err
	}
	format, ok := v.(string)
	if !ok {
		return fmt.Sprint(v), nil
	}
	rest := make([]any, 0, len(args)-1)
	for _, a := range args[1:] {
		av, err := in.eval(a, sc)
		if err != nil {
			return "", err
		}
		rest = append(rest, av)
	}
	if len(rest) == 0 {
		return format, nil
	}
	// CAPL's format verbs are printf-compatible for %d/%x/%s/%f.
	out := fmt.Sprintf(format, rest...)
	// Tidy fmt's error annotations for mismatched verbs.
	if strings.Contains(out, "%!") {
		return out, nil
	}
	return out, nil
}
