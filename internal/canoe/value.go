// Package canoe is a deterministic event-driven runtime for CAPL
// programs over the simulated CAN bus — the stand-in for the CANoe
// simulation environment of section IV-B. Nodes are built from parsed
// CAPL programs; their `on start`, `on message` and `on timer` event
// procedures execute against a virtual clock, with output(), setTimer(),
// cancelTimer() and write() wired to the bus, the scheduler and a
// per-node log. The runtime lets the repository both *execute* the
// CANoe node programs and *verify* them via the extracted CSP models,
// cross-validating simulation traces against the formal model.
package canoe

import (
	"fmt"

	"repro/internal/canbus"
)

// MsgVal is the runtime value of a CAPL message variable.
type MsgVal struct {
	ID   uint32
	DLC  int
	Data [canbus.MaxDataLen]byte
}

// Frame converts the message value to a CAN frame.
func (m *MsgVal) Frame() canbus.Frame {
	dlc := m.DLC
	if dlc < 0 {
		dlc = 0
	}
	if dlc > canbus.MaxDataLen {
		dlc = canbus.MaxDataLen
	}
	data := make([]byte, dlc)
	copy(data, m.Data[:dlc])
	return canbus.Frame{ID: m.ID, Data: data}
}

// Byte returns payload byte i (0 if out of range).
func (m *MsgVal) Byte(i int) int64 {
	if i < 0 || i >= canbus.MaxDataLen {
		return 0
	}
	return int64(m.Data[i])
}

// SetByte writes payload byte i.
func (m *MsgVal) SetByte(i int, v int64) error {
	if i < 0 || i >= canbus.MaxDataLen {
		return fmt.Errorf("canoe: byte index %d out of range", i)
	}
	m.Data[i] = byte(v)
	return nil
}

// Word returns the 16-bit little-endian word at byte offset i.
func (m *MsgVal) Word(i int) int64 {
	return m.Byte(i) | m.Byte(i+1)<<8
}

// SetWord writes the 16-bit little-endian word at byte offset i.
func (m *MsgVal) SetWord(i int, v int64) error {
	if err := m.SetByte(i, v&0xFF); err != nil {
		return err
	}
	return m.SetByte(i+1, (v>>8)&0xFF)
}

// timerState tracks one CAPL timer.
type timerState struct {
	name  string
	armed bool
	gen   int // generation counter implementing cancelTimer
}

// cell is a mutable variable slot.
type cell struct {
	v any // int64, float64, string, []int64, *MsgVal, or *timerState
}

// truthy implements C truthiness for interpreter values.
func truthy(v any) (bool, error) {
	switch x := v.(type) {
	case int64:
		return x != 0, nil
	case float64:
		return x != 0, nil
	case nil:
		return false, nil
	}
	return false, fmt.Errorf("canoe: value %T cannot be used as a condition", v)
}

// asInt coerces a value to int64.
func asInt(v any) (int64, error) {
	switch x := v.(type) {
	case int64:
		return x, nil
	case float64:
		return int64(x), nil
	}
	return 0, fmt.Errorf("canoe: value %T is not numeric", v)
}
