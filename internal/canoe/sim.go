package canoe

import (
	"fmt"

	"repro/internal/canbus"
)

// TimedFrame is one bus frame with its delivery timestamp, as observed
// by the simulation's monitoring tap (CANoe's trace window).
type TimedFrame struct {
	At    canbus.Time
	Frame canbus.Frame
}

// Simulation is a CANoe-style measurement: a bus plus a set of CAPL
// nodes and a monitoring tap recording all traffic.
type Simulation struct {
	Bus   *canbus.Bus
	Nodes []*Node

	trace   []TimedFrame
	stopped bool
	stopErr error
}

// NewSimulation creates a simulation over a fresh bus.
func NewSimulation(cfg canbus.Config) *Simulation {
	sim := &Simulation{Bus: canbus.New(cfg)}
	sim.Bus.Attach("__monitor__", canbus.ReceiverFunc(func(t canbus.Time, f canbus.Frame) {
		sim.trace = append(sim.trace, TimedFrame{At: t, Frame: f})
	}))
	return sim
}

// AddNode parses the CAPL source and attaches the node to the bus.
func (s *Simulation) AddNode(name, src string) (*Node, error) {
	n, err := NewNodeFromSource(s.Bus, name, src)
	if err != nil {
		return nil, err
	}
	s.Nodes = append(s.Nodes, n)
	return n, nil
}

// Start runs every node's `on start` procedures (measurement start).
func (s *Simulation) Start() error {
	for _, n := range s.Nodes {
		if err := n.Start(); err != nil {
			return err
		}
	}
	return nil
}

// Run advances the measurement until the given time, then reports the
// first node runtime error, if any.
func (s *Simulation) Run(until canbus.Time) error {
	s.Bus.Run(until)
	return s.Err()
}

// RunAll drains all pending activity (bounded by maxEvents).
func (s *Simulation) RunAll(maxEvents int) error {
	s.Bus.RunAll(maxEvents)
	return s.Err()
}

// RunLimited advances the measurement until the given time under an
// event budget. It reports whether the horizon was reached within the
// budget, so callers can convert a runaway measurement into a verdict
// instead of hanging.
func (s *Simulation) RunLimited(until canbus.Time, maxEvents int) (bool, error) {
	_, done := s.Bus.RunLimited(until, maxEvents)
	return done, s.Err()
}

// Err returns the first error any node hit during callbacks.
func (s *Simulation) Err() error {
	for _, n := range s.Nodes {
		if err := n.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Trace returns the chronological bus trace.
func (s *Simulation) Trace() []TimedFrame {
	out := make([]TimedFrame, len(s.trace))
	copy(out, s.trace)
	return out
}

// TraceIDs returns just the frame identifiers, in bus order — the raw
// material compared against the extracted CSP model's traces.
func (s *Simulation) TraceIDs() []uint32 {
	out := make([]uint32, len(s.trace))
	for i, tf := range s.trace {
		out[i] = tf.Frame.ID
	}
	return out
}

// Node returns the named node.
func (s *Simulation) Node(name string) (*Node, error) {
	for _, n := range s.Nodes {
		if n.Name == name {
			return n, nil
		}
	}
	return nil, fmt.Errorf("canoe: no node named %q", name)
}

// Stop ends the measurement: every node's `on stopMeasurement`
// procedures run, then the first node error (if any) is reported.
//
// Stop is idempotent — the first call latches its result and later
// calls return it without re-running any handler, so a measurement
// cannot double-emit frames or double-fault when stopped twice. A node
// that already latched a runtime error keeps it: its stop handlers are
// skipped (CANoe kills a node on a runtime error) rather than run on a
// faulted interpreter state, and every healthy node's handlers still
// run even when an earlier node's stop handler fails — learner-style
// batches of thousands of short measurements rely on both edges.
func (s *Simulation) Stop() error {
	if s.stopped {
		return s.stopErr
	}
	s.stopped = true
	for _, n := range s.Nodes {
		// StopMeasurement skips handlers on a faulted node; keep going
		// so one bad node cannot leak another node's cleanup.
		_ = n.StopMeasurement()
	}
	s.stopErr = s.Err()
	return s.stopErr
}
