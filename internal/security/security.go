// Package security provides reusable CSP specification-process builders
// for the security property classes the paper discusses (section IV-A
// and V-B): integrity as request/response sequencing (SP_02-style),
// authentication as event precedence, injective agreement as strict
// alternation, and secrecy as event unreachability. Each builder
// installs recursive definitions into a csp.Env and returns the
// specification process, ready to be the left-hand side of a trace
// refinement check.
package security

import (
	"fmt"

	"repro/internal/csp"
)

// DefineRun installs RUN(A) for the union of the given channels: the
// process that forever accepts every event on them. It is the weakest
// specification over that alphabet.
func DefineRun(env *csp.Env, name string, channels ...string) (csp.Process, error) {
	if len(channels) == 0 {
		return nil, fmt.Errorf("security: RUN needs at least one channel")
	}
	branches := make([]csp.Process, len(channels))
	for i, ch := range channels {
		branches[i] = csp.Recv(ch, csp.Call(name), fmt.Sprintf("x%d", i))
	}
	if err := env.Define(name, nil, csp.ExtChoice(branches...)); err != nil {
		return nil, err
	}
	return csp.Call(name), nil
}

// Response installs the request/response integrity property of the
// paper's SP_02: every occurrence of req is immediately followed (in
// the projected alphabet {req, resp}) by resp. Check it against the
// implementation with all other events hidden.
func Response(env *csp.Env, name string, req, resp csp.Event) (csp.Process, error) {
	body := csp.Send(req.Chan,
		csp.Send(resp.Chan, csp.Call(name), resp.Args...),
		req.Args...)
	if err := env.Define(name, nil, body); err != nil {
		return nil, err
	}
	return csp.Call(name), nil
}

// Precedence installs the non-injective authentication property: the
// `then` event may occur only after at least one `first` event has
// occurred; both events may recur freely afterwards. A trace beginning
// with `then` violates it.
func Precedence(env *csp.Env, name string, first, then csp.Event) (csp.Process, error) {
	runName := name + "_AFTER"
	after := csp.ExtChoice(
		csp.Send(first.Chan, csp.Call(runName), first.Args...),
		csp.Send(then.Chan, csp.Call(runName), then.Args...),
	)
	if err := env.Define(runName, nil, after); err != nil {
		return nil, err
	}
	body := csp.Send(first.Chan, csp.Call(runName), first.Args...)
	if err := env.Define(name, nil, body); err != nil {
		return nil, err
	}
	return csp.Call(name), nil
}

// Alternation installs the injective agreement property: events a and b
// strictly alternate starting with a. A replayed b (two b's for one a)
// violates it.
func Alternation(env *csp.Env, name string, a, b csp.Event) (csp.Process, error) {
	body := csp.Send(a.Chan,
		csp.Send(b.Chan, csp.Call(name), b.Args...),
		a.Args...)
	if err := env.Define(name, nil, body); err != nil {
		return nil, err
	}
	return csp.Call(name), nil
}

// NoOccurrence installs the secrecy/unreachability property over the
// given alphabet channels: any event on them is allowed except the
// forbidden one. Check against the implementation restricted to that
// alphabet; the forbidden event in any trace is a violation.
func NoOccurrence(env *csp.Env, name string, forbidden csp.Event, channels ...string) (csp.Process, error) {
	if len(channels) == 0 {
		return nil, fmt.Errorf("security: NoOccurrence needs the observation alphabet")
	}
	var branches []csp.Process
	for i, ch := range channels {
		v := fmt.Sprintf("x%d", i)
		if ch == forbidden.Chan {
			// Accept everything on the channel except the forbidden
			// event: restrict the input.
			pred := notEqual(csp.V(v), forbidden)
			branches = append(branches, csp.Prefix(ch,
				[]csp.CommField{csp.InSuchThat(v, pred)},
				csp.Call(name)))
			continue
		}
		branches = append(branches, csp.Recv(ch, csp.Call(name), v))
	}
	if err := env.Define(name, nil, csp.ExtChoice(branches...)); err != nil {
		return nil, err
	}
	return csp.Call(name), nil
}

// notEqual builds the predicate x != <event payload>. Only single-field
// channels are supported (sufficient for packet buses).
func notEqual(x csp.Expr, forbidden csp.Event) csp.Expr {
	if len(forbidden.Args) != 1 {
		// Multi-field events compare against the dotted value; callers
		// with multi-field channels should restrict by channel instead.
		return csp.LitBool(true)
	}
	return csp.Binary{Op: csp.OpNe, L: x, R: csp.Lit{Val: forbidden.Args[0]}}
}
