package security

import (
	"testing"

	"repro/internal/csp"
	"repro/internal/refine"
)

func ctx(t *testing.T) *csp.Context {
	t.Helper()
	c := csp.NewContext()
	msg := csp.EnumType("M", "req", "rsp", "other")
	c.MustChannel("a", msg)
	c.MustChannel("b", msg)
	c.MustChannel("evA")
	c.MustChannel("evB")
	return c
}

func TestDefineRunAcceptsEverything(t *testing.T) {
	c := ctx(t)
	env := csp.NewEnv()
	run, err := DefineRun(env, "RUN0", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	checker := refine.NewChecker(env, c)
	// Any process over a/b refines RUN.
	env.MustDefine("ANY", nil, csp.Send("a", csp.Send("b", csp.Call("ANY"), csp.Sym("rsp")), csp.Sym("req")))
	res, err := checker.RefinesTraces(run, csp.Call("ANY"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("RUN [T= ANY failed: %s", res.Counterexample)
	}
	if _, err := DefineRun(env, "RUNx"); err == nil {
		t.Error("RUN with no channels accepted")
	}
}

func TestResponseProperty(t *testing.T) {
	c := ctx(t)
	env := csp.NewEnv()
	spec, err := Response(env, "RESP", csp.Ev("a", csp.Sym("req")), csp.Ev("b", csp.Sym("rsp")))
	if err != nil {
		t.Fatal(err)
	}
	checker := refine.NewChecker(env, c)
	env.MustDefine("GOOD", nil,
		csp.Send("a", csp.Send("b", csp.Call("GOOD"), csp.Sym("rsp")), csp.Sym("req")))
	env.MustDefine("BAD", nil,
		csp.Send("a", csp.Send("a", csp.Call("BAD"), csp.Sym("req")), csp.Sym("req")))
	res, err := checker.RefinesTraces(spec, csp.Call("GOOD"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("good responder rejected: %s", res.Counterexample)
	}
	res, err = checker.RefinesTraces(spec, csp.Call("BAD"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("unanswered request accepted")
	}
}

func TestPrecedenceProperty(t *testing.T) {
	c := ctx(t)
	env := csp.NewEnv()
	spec, err := Precedence(env, "PREC", csp.Ev("evA"), csp.Ev("evB"))
	if err != nil {
		t.Fatal(err)
	}
	checker := refine.NewChecker(env, c)
	// evB before any evA violates; evA then any mix is fine.
	env.MustDefine("OK", nil, csp.DoEvent("evA",
		csp.ExtChoice(csp.DoEvent("evB", csp.Call("OK")), csp.DoEvent("evA", csp.Call("OK")))))
	env.MustDefine("VIOLATION", nil, csp.DoEvent("evB", csp.Stop()))
	res, err := checker.RefinesTraces(spec, csp.Call("OK"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("precedence-respecting process rejected: %s", res.Counterexample)
	}
	res, err = checker.RefinesTraces(spec, csp.Call("VIOLATION"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("evB before evA accepted")
	}
}

func TestAlternationProperty(t *testing.T) {
	c := ctx(t)
	env := csp.NewEnv()
	spec, err := Alternation(env, "ALT", csp.Ev("evA"), csp.Ev("evB"))
	if err != nil {
		t.Fatal(err)
	}
	checker := refine.NewChecker(env, c)
	env.MustDefine("STRICT", nil, csp.DoEvent("evA", csp.DoEvent("evB", csp.Call("STRICT"))))
	env.MustDefine("REPLAYED", nil,
		csp.DoEvent("evA", csp.DoEvent("evB", csp.DoEvent("evB", csp.Stop()))))
	res, err := checker.RefinesTraces(spec, csp.Call("STRICT"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("strict alternation rejected: %s", res.Counterexample)
	}
	res, err = checker.RefinesTraces(spec, csp.Call("REPLAYED"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("double evB accepted by alternation spec")
	}
}

func TestNoOccurrenceProperty(t *testing.T) {
	c := ctx(t)
	env := csp.NewEnv()
	forbidden := csp.Ev("a", csp.Sym("other"))
	spec, err := NoOccurrence(env, "SAFE", forbidden, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	checker := refine.NewChecker(env, c)
	env.MustDefine("CLEAN", nil, csp.Send("a", csp.Call("CLEAN"), csp.Sym("req")))
	env.MustDefine("LEAKY", nil, csp.Send("a", csp.Stop(), csp.Sym("other")))
	res, err := checker.RefinesTraces(spec, csp.Call("CLEAN"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("clean process rejected: %s", res.Counterexample)
	}
	res, err = checker.RefinesTraces(spec, csp.Call("LEAKY"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("forbidden event accepted")
	}
	if _, err := NoOccurrence(env, "SAFE2", forbidden); err == nil {
		t.Error("NoOccurrence without alphabet accepted")
	}
}
