package caplgen

import (
	"encoding/json"
	"strings"
)

// shrinkBudget caps pipeline re-runs per failing program, so a
// pathological case cannot stall the soak.
const shrinkBudget = 200

// copySpec deep-copies a spec through its JSON form (specs are pure
// data, and shrinking must never alias the original's statement
// slices).
func copySpec(s *Spec) *Spec {
	b, err := json.Marshal(s)
	if err != nil {
		return nil
	}
	var out Spec
	if err := json.Unmarshal(b, &out); err != nil {
		return nil
	}
	return &out
}

// Shrink greedily minimises a failing spec while it keeps reproducing
// the same verdict: shorter driver schedules, fewer handlers, fewer
// statements, no timer. It is deterministic — candidates are tried in
// a fixed order — and returns the smallest reproducer found (possibly
// the original). Returns nil only if the input no longer fails.
func Shrink(spec *Spec, cfg Config, verdict string) *Spec {
	if RunOne(spec, cfg).Verdict != verdict {
		return nil
	}
	cur := copySpec(spec)
	runs := 0
	tryAccept := func(cand *Spec) bool {
		if cand == nil || runs >= shrinkBudget {
			return false
		}
		runs++
		if RunOne(cand, cfg).Verdict == verdict {
			cur = cand
			return true
		}
		return false
	}

	for changed := true; changed && runs < shrinkBudget; {
		changed = false
		// Pass 1: drop driver steps, back to front.
		for i := len(cur.Driver) - 1; i >= 0; i-- {
			cand := copySpec(cur)
			cand.Driver = append(cand.Driver[:i:i], cand.Driver[i+1:]...)
			if tryAccept(cand) {
				changed = true
			}
		}
		// Pass 2: drop whole handlers (with the driver steps that feed
		// them, so the schedule never sends an unhandled stimulus).
		for i := len(cur.Handlers) - 1; i >= 0; i-- {
			cand := copySpec(cur)
			h := cand.Handlers[i]
			cand.Handlers = append(cand.Handlers[:i:i], cand.Handlers[i+1:]...)
			if h.Kind == "message" {
				var keep []DriverStep
				for _, st := range cand.Driver {
					if stimName(st.Stim) != h.Target {
						keep = append(keep, st)
					}
				}
				cand.Driver = keep
			}
			if h.Kind == "timer" && cand.Timer != nil {
				cand = removeTimer(cand)
			}
			if tryAccept(cand) {
				changed = true
			}
		}
		// Pass 3: drop the timer entirely.
		if cur.Timer != nil {
			if tryAccept(removeTimer(copySpec(cur))) {
				changed = true
			}
		}
		// Pass 4: drop individual statements, deepest-first.
		for hi := range cur.Handlers {
			for _, path := range stmtPaths(cur.Handlers[hi].Body, nil) {
				cand := copySpec(cur)
				cand.Handlers[hi].Body = removeAt(cand.Handlers[hi].Body, path)
				if tryAccept(cand) {
					changed = true
				}
			}
		}
	}
	return cur
}

// removeTimer strips the timer declaration, its handler and every
// statement that mentions it, keeping the candidate lint-clean.
func removeTimer(s *Spec) *Spec {
	if s == nil || s.Timer == nil {
		return s
	}
	name := s.Timer.Name
	s.Timer = nil
	var hs []Handler
	for _, h := range s.Handlers {
		if h.Kind == "timer" && h.Target == name {
			continue
		}
		h.Body = stripMentions(h.Body, name)
		hs = append(hs, h)
	}
	s.Handlers = hs
	return s
}

// stripMentions removes leaf statements whose text references name.
func stripMentions(body []Stmt, name string) []Stmt {
	var out []Stmt
	for _, st := range body {
		if st.Cond == "" {
			if strings.Contains(st.Line, name) {
				continue
			}
			out = append(out, st)
			continue
		}
		st.Then = stripMentions(st.Then, name)
		st.Else = stripMentions(st.Else, name)
		out = append(out, st)
	}
	return out
}

// stmtPaths enumerates the index path of every statement in the body,
// deepest paths first so inner deletions are attempted before the
// enclosing if disappears.
func stmtPaths(body []Stmt, prefix []int) [][]int {
	var out [][]int
	for i, st := range body {
		p := append(append([]int{}, prefix...), i)
		if st.Cond != "" {
			out = append(out, stmtPaths(st.Then, append(p, 0))...)
			out = append(out, stmtPaths(st.Else, append(p, 1))...)
		}
		out = append(out, p)
	}
	return out
}

// removeAt deletes the statement addressed by path. Paths into an if
// statement alternate (index, branch) pairs: [i, b, j, ...] addresses
// statement j of branch b (0 = Then, 1 = Else) of statement i.
func removeAt(body []Stmt, path []int) []Stmt {
	i := path[0]
	if i >= len(body) {
		return body
	}
	if len(path) == 1 {
		return append(body[:i:i], body[i+1:]...)
	}
	st := body[i]
	branch, rest := path[1], path[2:]
	if branch == 0 {
		st.Then = removeAt(st.Then, rest)
	} else {
		st.Else = removeAt(st.Else, rest)
	}
	out := append([]Stmt{}, body...)
	out[i] = st
	return out
}
