package caplgen

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/canbus"
	"repro/internal/candb"
	"repro/internal/canoe"
)

// simFrame builds a one-frame monitor trace with the given identifier.
func simFrame(id uint32) []canoe.TimedFrame {
	return []canoe.TimedFrame{{At: 0, Frame: canbus.Frame{ID: id}}}
}

var update = flag.Bool("update", false, "rewrite testdata/caplgen_baseline.json")

// TestGenerateDeterministic pins the generator's core contract: the
// same seed renders byte-identical sources, and different seeds
// actually vary the program shape.
func TestGenerateDeterministic(t *testing.T) {
	a := generate(rand.New(rand.NewSource(42)), 0, 42)
	b := generate(rand.New(rand.NewSource(42)), 0, 42)
	if a.NodeSource() != b.NodeSource() || a.DriverSource() != b.DriverSource() || a.DBC() != b.DBC() {
		t.Fatal("same seed produced different programs")
	}
	seen := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		seen[generate(rand.New(rand.NewSource(seed)), 0, seed).NodeSource()] = true
	}
	if len(seen) < 15 {
		t.Errorf("only %d distinct programs from 20 seeds", len(seen))
	}
}

// TestGeneratedProgramsAreClean asserts well-typedness by
// construction: across many seeds, node and driver lint with zero
// warnings and errors. A failure here is a generator bug or a
// typechecker false positive — both worth knowing.
func TestGeneratedProgramsAreClean(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		spec := generate(rand.New(rand.NewSource(seed)), int(seed), seed)
		db, err := candb.Parse(spec.DBC())
		if err != nil {
			t.Fatalf("seed %d: generated dbc does not parse: %v", seed, err)
		}
		if bad, _ := lintGate("gen.can", spec.NodeSource(), db); bad != "" {
			t.Errorf("seed %d: node not clean: %s\n%s", seed, bad, spec.NodeSource())
		}
		if bad, _ := lintGate("drv.can", spec.DriverSource(), db); bad != "" {
			t.Errorf("seed %d: driver not clean: %s\n%s", seed, bad, spec.DriverSource())
		}
	}
}

// TestRunSmallSoak runs a small fixed-seed soak end to end: every
// program must complete the full differential pipeline with verdict
// ok, and the run must be deterministic.
func TestRunSmallSoak(t *testing.T) {
	cfg := Config{Seed: 7, Programs: 25, MaxStates: 50_000, MaxSimEvents: 100_000, Shrink: true}
	rep := Run(cfg)
	for _, r := range rep.Results {
		if r.Verdict != VerdictOK {
			t.Errorf("program %d (seed %d): %s: %s", r.Index, r.Seed, r.Verdict, r.Detail)
		}
		if r.Verdict == VerdictOK && r.Frames == 0 {
			t.Errorf("program %d: ok with zero delivered frames (vacuous run)", r.Index)
		}
	}
	a, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("same config produced different reports")
	}
}

// divergingSpec builds a program whose driver sends a stimulus the
// node has no handler for: the bus delivers it, the model has no
// matching branch, so the conformance check must reject the trace.
func divergingSpec() *Spec {
	return &Spec{
		Index: 0, ProgSeed: 1, NStim: 2, NResp: 1,
		Globals: []Global{{Name: "g0", Type: TLong}},
		Handlers: []Handler{
			{Kind: "message", Target: "stim0", Body: []Stmt{
				{Line: "g0 = g0 + 1;"},
				{Line: "output(resp0);"},
			}},
		},
		Driver: []DriverStep{{Stim: 0}, {Stim: 1}, {Stim: 0}},
	}
}

// TestDivergenceIsDetected proves the oracle is not vacuous: a
// mismatching program must yield a diverges verdict with a diagnosis.
func TestDivergenceIsDetected(t *testing.T) {
	res := RunOne(divergingSpec(), DefaultConfig())
	if res.Verdict != VerdictDiverges {
		t.Fatalf("verdict = %s (%s), want %s", res.Verdict, res.Detail, VerdictDiverges)
	}
	if !strings.Contains(res.Detail, "stim.stim1") {
		t.Errorf("divergence detail %q does not name the unhandled stimulus", res.Detail)
	}
}

// TestShrinkMinimises checks the structural shrinker: the minimised
// diverging program must still diverge and must be no larger than the
// original (fewer driver steps, no surviving extra statements).
func TestShrinkMinimises(t *testing.T) {
	spec := divergingSpec()
	cfg := DefaultConfig()
	min := Shrink(spec, cfg, VerdictDiverges)
	if min == nil {
		t.Fatal("Shrink lost the failure")
	}
	if got := RunOne(min, cfg).Verdict; got != VerdictDiverges {
		t.Fatalf("shrunk program verdict = %s, want %s", got, VerdictDiverges)
	}
	if len(min.Driver) > 1 {
		t.Errorf("shrunk driver schedule has %d steps, want 1", len(min.Driver))
	}
	for _, h := range min.Handlers {
		if len(h.Body) > 0 && h.Kind == "message" && len(h.Body) > 1 {
			t.Errorf("shrunk handler %s still has %d statements", h.Target, len(h.Body))
		}
	}
}

// TestProjectTraceRejectsUnknownID pins the projection's totality
// error path.
func TestProjectTraceRejectsUnknownID(t *testing.T) {
	spec := &Spec{NStim: 1, NResp: 1}
	sim := simFrame(0x7FF)
	if _, err := projectTrace(spec, sim); err == nil {
		t.Error("unknown identifier projected without error")
	}
	if _, err := projectTrace(spec, simFrame(stimBaseID)); err != nil {
		t.Errorf("known identifier rejected: %v", err)
	}
}

// TestBaseline compares a full default-config soak against the
// committed regression baseline byte for byte. Any behaviour change
// anywhere in the pipeline — generator, linter, typechecker,
// translator, CSPm evaluator, LTS exploration, bus timing, trace
// membership — shows up here. Run with -update to accept a change.
func TestBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full 200-program soak skipped in -short mode")
	}
	rep := Run(DefaultConfig())
	got, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "testdata", "caplgen_baseline.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/caplgen -update` to create)", err)
	}
	if string(got) != string(want) {
		t.Errorf("soak report drifted from baseline (run with -update after verifying the change is intended)")
	}
	if rep.Failures != 0 {
		t.Errorf("baseline soak has %d failure(s)", rep.Failures)
	}
	var decoded Report
	if err := json.Unmarshal(want, &decoded); err != nil {
		t.Fatalf("committed baseline is not valid JSON: %v", err)
	}
	if decoded.Programs < 200 {
		t.Errorf("baseline covers %d programs, want >= 200", decoded.Programs)
	}
}
