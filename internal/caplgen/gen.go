package caplgen

import (
	"fmt"
	"math/rand"
)

// genCtx threads the generator state through statement construction.
type genCtx struct {
	r     *rand.Rand
	s     *Spec
	inMsg bool // `this` is available
	mnri  int  // minimum index of the next output(), keeping bursts ID-ordered
	funcs map[string]bool
	depth int
}

// pickGlobal returns a random global satisfying pred, or false.
func (g *genCtx) pickGlobal(pred func(VarType) bool) (Global, bool) {
	var cands []Global
	for _, gl := range g.s.Globals {
		if pred(gl.Type) {
			cands = append(cands, gl)
		}
	}
	if len(cands) == 0 {
		return Global{}, false
	}
	return cands[g.r.Intn(len(cands))], true
}

// constFor picks a small constant representable in dst.
func (g *genCtx) constFor(dst VarType) int64 {
	lo, hi := typeRange(dst)
	v := int64(g.r.Intn(100))
	if v > hi {
		v = hi
	}
	if dst == TInt || dst == TLong {
		if g.r.Intn(4) == 0 {
			v = -v
		}
	}
	if v < lo {
		v = lo
	}
	return v
}

// intExprFor builds a CAPL expression whose checker type fits dst —
// operand variables are restricted to types whose whole range is
// representable in dst, mirroring the typechecker's merge rule so the
// generated program stays warning-free by construction.
func (g *genCtx) intExprFor(dst VarType) string {
	v, ok := g.pickGlobal(func(t VarType) bool {
		if dst == TDouble {
			return true
		}
		return t != TDouble && fitsIn(t, dst)
	})
	if !ok || g.r.Intn(4) == 0 {
		return fmt.Sprintf("%d", g.constFor(dst))
	}
	switch g.r.Intn(4) {
	case 0:
		return v.Name
	case 1:
		op := "+"
		if dst != TDouble && v.Type != TDouble && g.r.Intn(2) == 0 {
			op = []string{"&", "|", "^"}[g.r.Intn(3)]
		}
		return fmt.Sprintf("%s %s %d", v.Name, op, g.constFor(TByte)&63)
	case 2:
		w, ok := g.pickGlobal(func(t VarType) bool {
			if dst == TDouble {
				return true
			}
			return t != TDouble && fitsIn(t, dst)
		})
		if !ok {
			return v.Name
		}
		return fmt.Sprintf("%s + %s", v.Name, w.Name)
	default:
		if dst == TInt || dst == TLong || dst == TDouble {
			return fmt.Sprintf("%s - %d", v.Name, g.constFor(TByte)&31)
		}
		return v.Name
	}
}

// condExpr builds a numeric condition over the globals.
func (g *genCtx) condExpr() string {
	v, ok := g.pickGlobal(func(VarType) bool { return true })
	if !ok {
		return "1"
	}
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("%s > %d", v.Name, g.r.Intn(40))
	case 1:
		return fmt.Sprintf("%s == %d", v.Name, g.r.Intn(8))
	case 2:
		if v.Type == TDouble {
			return fmt.Sprintf("%s < %d", v.Name, g.r.Intn(50))
		}
		return fmt.Sprintf("(%s & %d) != %d", v.Name, 1+g.r.Intn(7), g.r.Intn(4))
	default:
		w, ok := g.pickGlobal(func(VarType) bool { return true })
		if !ok {
			return fmt.Sprintf("%s != %d", v.Name, g.r.Intn(9))
		}
		return fmt.Sprintf("%s < %s", v.Name, w.Name)
	}
}

// plainStmt builds one event-free statement (no output, no setTimer).
func (g *genCtx) plainStmt() Stmt {
	for {
		switch g.r.Intn(8) {
		case 0, 1, 2: // assignment
			if dst, ok := g.pickGlobal(func(VarType) bool { return true }); ok {
				return Stmt{Line: fmt.Sprintf("%s = %s;", dst.Name, g.intExprFor(dst.Type))}
			}
		case 3: // helper function call
			if dst, ok := g.pickGlobal(func(t VarType) bool { return t == TLong || t == TDouble }); ok && g.r.Intn(2) == 0 {
				g.funcs["mix"] = true
				return Stmt{Line: fmt.Sprintf("%s = mix(%s, %s);", dst.Name, g.intExprFor(TLong), g.intExprFor(TLong))}
			}
			if dst, ok := g.pickGlobal(func(t VarType) bool { return fitsIn(TByte, t) }); ok {
				g.funcs["clip"] = true
				return Stmt{Line: fmt.Sprintf("%s = clip(%s);", dst.Name, g.intExprFor(TByte))}
			}
		case 4: // read from the triggering frame
			if !g.inMsg {
				continue
			}
			if dst, ok := g.pickGlobal(func(t VarType) bool { return t == TDword }); ok && g.r.Intn(3) == 0 {
				return Stmt{Line: fmt.Sprintf("%s = this.ID;", dst.Name)}
			}
			if dst, ok := g.pickGlobal(func(t VarType) bool { return fitsIn(TWord, t) }); ok && g.r.Intn(2) == 0 {
				return Stmt{Line: fmt.Sprintf("%s = this.word(%d);", dst.Name, 2*g.r.Intn(4))}
			}
			if dst, ok := g.pickGlobal(func(t VarType) bool { return fitsIn(TByte, t) }); ok {
				return Stmt{Line: fmt.Sprintf("%s = this.byte(%d);", dst.Name, g.r.Intn(8))}
			}
		case 5: // array traffic
			if !g.s.HasArray {
				continue
			}
			if g.r.Intn(2) == 0 {
				idx := fmt.Sprintf("%d", g.r.Intn(8))
				if v, ok := g.pickGlobal(func(t VarType) bool { return t != TDouble }); ok && g.r.Intn(2) == 0 {
					idx = fmt.Sprintf("%s & 7", v.Name)
				}
				return Stmt{Line: fmt.Sprintf("buf[%s] = %s;", idx, g.intExprFor(TByte))}
			}
			if dst, ok := g.pickGlobal(func(t VarType) bool { return fitsIn(TByte, t) }); ok {
				return Stmt{Line: fmt.Sprintf("%s = buf[%d];", dst.Name, g.r.Intn(8))}
			}
		case 6: // payload write into a response buffer
			j := g.r.Intn(g.s.NResp)
			if g.r.Intn(2) == 0 {
				return Stmt{Line: fmt.Sprintf("%s.byte(%d) = %s;", respName(j), g.r.Intn(8), g.intExprFor(TByte))}
			}
			return Stmt{Line: fmt.Sprintf("%s.word(%d) = %s;", respName(j), 2*g.r.Intn(4), g.intExprFor(TWord))}
		default: // cancel the cyclic timer
			if g.inMsg && g.s.Timer != nil && g.r.Intn(3) == 0 {
				return Stmt{Line: fmt.Sprintf("cancelTimer(%s);", g.s.Timer.Name)}
			}
		}
	}
}

// plainStmts builds n event-free statements, folding some into a
// data-dependent if (which the translator abstracts to internal
// choice) when depth allows.
func (g *genCtx) plainStmts(n int) []Stmt {
	var out []Stmt
	for i := 0; i < n; i++ {
		if g.depth < 2 && g.r.Intn(4) == 0 {
			g.depth++
			st := Stmt{Cond: g.condExpr(), Then: g.plainStmts(1 + g.r.Intn(2))}
			if g.r.Intn(2) == 0 {
				st.Else = g.plainStmts(1)
			}
			g.depth--
			out = append(out, st)
			continue
		}
		out = append(out, g.plainStmt())
	}
	return out
}

// outputStmts builds count output() statements with non-decreasing
// response indices (the bus transmits a burst lowest-identifier-first,
// so any other order could be reordered on the wire and falsely
// diverge from the model). Some outputs are guarded by a
// data-dependent if: the model over-approximates those with internal
// choice, so either runtime outcome stays a model trace.
func (g *genCtx) outputStmts(count int) []Stmt {
	var out []Stmt
	for i := 0; i < count; i++ {
		if g.s.NResp > g.mnri {
			g.mnri += g.r.Intn(g.s.NResp - g.mnri)
		}
		j := g.mnri
		if j >= g.s.NResp {
			break
		}
		burst := []Stmt{}
		if g.r.Intn(2) == 0 {
			burst = append(burst, Stmt{Line: fmt.Sprintf("%s.byte(%d) = %s;", respName(j), g.r.Intn(8), g.intExprFor(TByte))})
		}
		burst = append(burst, Stmt{Line: fmt.Sprintf("output(%s);", respName(j))})
		g.mnri = j + 1
		if g.depth < 2 && g.r.Intn(3) == 0 {
			out = append(out, Stmt{Cond: g.condExpr(), Then: burst})
		} else {
			out = append(out, burst...)
		}
	}
	return out
}

// handlerBody interleaves event-free statements with an ordered output
// burst.
func (g *genCtx) handlerBody(maxPlain, maxOut int) []Stmt {
	g.mnri = 0
	body := g.plainStmts(1 + g.r.Intn(maxPlain))
	body = append(body, g.outputStmts(g.r.Intn(maxOut+1))...)
	if len(body) == 0 {
		body = g.plainStmts(1)
	}
	return body
}

// generate builds one random program spec from its dedicated rng.
func generate(r *rand.Rand, idx int, progSeed int64) *Spec {
	s := &Spec{
		Index:    idx,
		ProgSeed: progSeed,
		NStim:    1 + r.Intn(3),
		NResp:    1 + r.Intn(3),
		HasArray: r.Intn(2) == 0,
	}
	allTypes := []VarType{TByte, TWord, TInt, TLong, TDword, TDouble}
	nGlob := 2 + r.Intn(4)
	for i := 0; i < nGlob; i++ {
		s.Globals = append(s.Globals, Global{Name: fmt.Sprintf("g%d", i), Type: allTypes[r.Intn(len(allTypes))]})
	}
	if r.Intn(2) == 0 {
		s.Timer = &TimerSpec{Name: "t0", PeriodMs: 10 * int64(1+r.Intn(3))}
	}

	g := &genCtx{r: r, s: s, funcs: map[string]bool{}}

	// `on start`: seed some state, maybe announce, arm the timer last.
	var start []Stmt
	if r.Intn(2) == 0 || s.Timer != nil {
		g.inMsg = false
		start = g.plainStmts(1 + r.Intn(2))
		g.mnri = 0
		if r.Intn(3) == 0 {
			start = append(start, g.outputStmts(1)...)
		}
		if s.Timer != nil {
			start = append(start, Stmt{Line: fmt.Sprintf("setTimer(%s, %d);", s.Timer.Name, s.Timer.PeriodMs)})
		}
		s.Handlers = append(s.Handlers, Handler{Kind: "start", Body: start})
	}

	// One handler per stimulus: the driver may send any of them.
	for i := 0; i < s.NStim; i++ {
		g.inMsg = true
		s.Handlers = append(s.Handlers, Handler{Kind: "message", Target: stimName(i), Body: g.handlerBody(3, 2)})
	}

	// The cyclic timer handler re-arms itself unconditionally, keeping
	// every firing on the 10 ms grid.
	if s.Timer != nil {
		g.inMsg = false
		body := g.handlerBody(2, 2)
		body = append(body, Stmt{Line: fmt.Sprintf("setTimer(%s, %d);", s.Timer.Name, s.Timer.PeriodMs)})
		s.Handlers = append(s.Handlers, Handler{Kind: "timer", Target: s.Timer.Name, Body: body})
	}

	for fn := range funcDecls {
		if g.funcs[fn] {
			s.Funcs = append(s.Funcs, fn)
		}
	}
	// Map iteration order must not leak into the spec.
	if len(s.Funcs) == 2 && s.Funcs[0] > s.Funcs[1] {
		s.Funcs[0], s.Funcs[1] = s.Funcs[1], s.Funcs[0]
	}

	steps := 4 + r.Intn(5)
	for k := 0; k < steps; k++ {
		st := DriverStep{Stim: r.Intn(s.NStim)}
		for p := r.Intn(3); p > 0; p-- {
			st.Payload = append(st.Payload, fmt.Sprintf("%s.byte(%d) = %d;", stimName(st.Stim), r.Intn(8), r.Intn(256)))
		}
		s.Driver = append(s.Driver, st)
	}
	return s
}
