package caplgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Report is the outcome of a whole soak run. All fields are
// deterministic in the configuration — no timestamps, no wall-clock —
// so a fixed-seed report is byte-identical across runs and machines
// and can be committed as a regression baseline.
type Report struct {
	Seed     int64 `json:"seed"`
	Programs int   `json:"programs"`
	// Verdicts counts programs per verdict class.
	Verdicts map[string]int `json:"verdicts"`
	// Failures is the number of programs with any verdict but "ok".
	Failures int `json:"failures"`
	// TotalFrames and TotalStates aggregate pipeline effort; any change
	// in generator or pipeline behaviour shows up here immediately.
	TotalFrames int             `json:"totalFrames"`
	TotalStates int             `json:"totalStates"`
	Results     []ProgramResult `json:"results"`
}

// Run executes the full differential soak: generate, check, shrink.
// The master rng derives one sub-seed per program, so program i is
// reproducible from its recorded seed alone.
func Run(cfg Config) *Report {
	master := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{Seed: cfg.Seed, Programs: cfg.Programs, Verdicts: map[string]int{}}
	for i := 0; i < cfg.Programs; i++ {
		progSeed := master.Int63()
		spec := generate(rand.New(rand.NewSource(progSeed)), i, progSeed)
		res := RunOne(spec, cfg)
		if res.Verdict != VerdictOK && cfg.Shrink {
			if m := Shrink(spec, cfg, res.Verdict); m != nil {
				res.Shrunk = &ShrunkCase{
					Verdict:      res.Verdict,
					NodeSource:   m.NodeSource(),
					DriverSource: m.DriverSource(),
					DBC:          m.DBC(),
				}
			}
		}
		rep.Verdicts[res.Verdict]++
		if res.Verdict != VerdictOK {
			rep.Failures++
		}
		rep.TotalFrames += res.Frames
		rep.TotalStates += res.ModelStates
		rep.Results = append(rep.Results, res)
	}
	return rep
}

// JSON renders the report as stable, indented JSON (map keys are
// emitted in sorted order by encoding/json).
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Summary is the one-line human digest printed by cmd/caplgen.
func (r *Report) Summary() string {
	classes := make([]string, 0, len(r.Verdicts))
	for k := range r.Verdicts {
		classes = append(classes, k)
	}
	sort.Strings(classes)
	parts := make([]string, 0, len(classes))
	for _, k := range classes {
		parts = append(parts, fmt.Sprintf("%s=%d", k, r.Verdicts[k]))
	}
	return fmt.Sprintf("caplgen: seed %d, %d program(s): %s (%d frames, %d model states)",
		r.Seed, r.Programs, strings.Join(parts, " "), r.TotalFrames, r.TotalStates)
}
