// Package caplgen generates random *well-typed* CAPL programs and
// pushes each one through the entire extraction pipeline — lint +
// typecheck, CSPm translation, model exploration, CANoe-style bus
// simulation and trace-membership conformance — as a deterministic
// differential soak. Because every generated program is well typed by
// construction, any program the typechecker accepts that then crashes
// or diverges downstream is a real bug in the pipeline, not noise; the
// failing program is shrunk structurally and kept in the report.
//
// The generator is careful to emit programs whose concrete bus
// behaviour is a trace of their extracted model *by construction*:
//
//   - Responses use lower CAN identifiers than stimuli, so a node's
//     queued replies always win arbitration over the next stimulus and
//     a handler's burst is never split by a late-delivered trigger.
//   - Within one handler, output() calls appear in non-decreasing
//     identifier order on every execution path, matching the bus's
//     identifier-priority transmission order.
//   - Node timers fire on the 10 ms grid while driver stimuli arrive
//     at 5 ms offsets, so no two handler activations ever coincide.
package caplgen

import (
	"fmt"
	"strings"
)

// Message identifier layout: responses outrank stimuli on the bus.
const (
	respBaseID = 0x110
	stimBaseID = 0x210
)

// VarType enumerates the scalar CAPL types the generator uses.
type VarType int

// The generator's scalar type universe.
const (
	TByte VarType = iota
	TWord
	TInt
	TLong
	TDword
	TDouble
)

// typeName is the CAPL spelling of each VarType.
var typeName = map[VarType]string{
	TByte: "byte", TWord: "word", TInt: "int",
	TLong: "long", TDword: "dword", TDouble: "double",
}

// typeRange returns the representable range of an integer VarType.
// Doubles report the widest range (they accept any numeric RHS).
func typeRange(t VarType) (lo, hi int64) {
	switch t {
	case TByte:
		return 0, 255
	case TWord:
		return 0, 65535
	case TInt:
		return -32768, 32767
	case TLong:
		return -2147483648, 2147483647
	case TDword:
		return 0, 4294967295
	}
	return -1 << 62, 1 << 62
}

// fitsIn reports whether every value of type src is representable in
// dst — the generator's mirror of the typechecker's narrowing rule, so
// generated assignments never trip CAPL0101.
func fitsIn(src, dst VarType) bool {
	if dst == TDouble {
		return true
	}
	if src == TDouble {
		return false
	}
	slo, shi := typeRange(src)
	dlo, dhi := typeRange(dst)
	return slo >= dlo && shi <= dhi
}

// Global is one generated global variable.
type Global struct {
	Name string  `json:"name"`
	Type VarType `json:"type"`
}

// Stmt is one generated statement. Leaf statements carry their exact
// CAPL text; an if-statement carries the condition and branch bodies.
// Storing rendered text keeps shrinking purely structural: passes only
// ever delete statements, never rewrite them.
type Stmt struct {
	Line string `json:"line,omitempty"`
	Cond string `json:"cond,omitempty"`
	Then []Stmt `json:"then,omitempty"`
	Else []Stmt `json:"else,omitempty"`
}

// Handler is one generated event procedure.
type Handler struct {
	// Kind is "start", "message" or "timer".
	Kind string `json:"kind"`
	// Target is the stimulus variable ("message") or timer ("timer").
	Target string `json:"target,omitempty"`
	Body   []Stmt `json:"body"`
}

// TimerSpec is the node's (single) cyclic timer. Its period is a
// multiple of 10 ms so firings stay on the collision-free grid.
type TimerSpec struct {
	Name     string `json:"name"`
	PeriodMs int64  `json:"periodMs"`
}

// DriverStep is one phase of the driver schedule: at 5 ms + k*10 ms the
// driver fills in some payload bytes and outputs one stimulus.
type DriverStep struct {
	Stim    int      `json:"stim"`
	Payload []string `json:"payload,omitempty"`
}

// Spec is a fully-determined generated program: node, driver and CAN
// database all render from it. It is the unit of shrinking.
type Spec struct {
	Index    int          `json:"index"`
	ProgSeed int64        `json:"seed"`
	NStim    int          `json:"nStim"`
	NResp    int          `json:"nResp"`
	Globals  []Global     `json:"globals"`
	HasArray bool         `json:"hasArray,omitempty"`
	Timer    *TimerSpec   `json:"timer,omitempty"`
	Funcs    []string     `json:"funcs,omitempty"`
	Handlers []Handler    `json:"handlers"`
	Driver   []DriverStep `json:"driver"`
}

func stimName(i int) string { return fmt.Sprintf("stim%d", i) }
func respName(j int) string { return fmt.Sprintf("resp%d", j) }

// funcDecls holds the pre-typed helper functions a program may call.
// They are emitted only when referenced, keyed by name.
var funcDecls = map[string]string{
	"mix":  "long mix(long a, long b)\n{\n  return a * 31 + b;\n}",
	"clip": "byte clip(byte v)\n{\n  return v & 15;\n}",
}

// writeStmts renders a statement list at the given indent depth.
func writeStmts(b *strings.Builder, stmts []Stmt, depth int) {
	pad := strings.Repeat("  ", depth)
	for _, s := range stmts {
		if s.Cond == "" {
			b.WriteString(pad)
			b.WriteString(s.Line)
			b.WriteByte('\n')
			continue
		}
		fmt.Fprintf(b, "%sif (%s) {\n", pad, s.Cond)
		writeStmts(b, s.Then, depth+1)
		if len(s.Else) > 0 {
			fmt.Fprintf(b, "%s} else {\n", pad)
			writeStmts(b, s.Else, depth+1)
		}
		fmt.Fprintf(b, "%s}\n", pad)
	}
}

// NodeSource renders the node-under-test CAPL program.
func (s *Spec) NodeSource() string {
	var b strings.Builder
	fmt.Fprintf(&b, "/*@!Encoding:1310*/\n// caplgen program %d (seed %d): generated well-typed node.\nvariables\n{\n", s.Index, s.ProgSeed)
	for i := 0; i < s.NStim; i++ {
		fmt.Fprintf(&b, "  message 0x%X %s;\n", stimBaseID+i, stimName(i))
	}
	for j := 0; j < s.NResp; j++ {
		fmt.Fprintf(&b, "  message 0x%X %s;\n", respBaseID+j, respName(j))
	}
	if s.Timer != nil {
		fmt.Fprintf(&b, "  msTimer %s;\n", s.Timer.Name)
	}
	if s.HasArray {
		b.WriteString("  byte buf[8];\n")
	}
	for _, g := range s.Globals {
		fmt.Fprintf(&b, "  %s %s;\n", typeName[g.Type], g.Name)
	}
	b.WriteString("}\n")
	for _, fn := range s.Funcs {
		b.WriteString("\n")
		b.WriteString(funcDecls[fn])
		b.WriteString("\n")
	}
	for _, h := range s.Handlers {
		b.WriteString("\n")
		switch h.Kind {
		case "start":
			b.WriteString("on start\n{\n")
		case "message":
			fmt.Fprintf(&b, "on message %s\n{\n", h.Target)
		case "timer":
			fmt.Fprintf(&b, "on timer %s\n{\n", h.Target)
		}
		writeStmts(&b, h.Body, 1)
		b.WriteString("}\n")
	}
	return b.String()
}

// DriverSource renders the stimulus-driver CAPL program: a timer that
// fires at 5 ms and then every 10 ms, outputting one scheduled
// stimulus per phase.
func (s *Spec) DriverSource() string {
	var b strings.Builder
	b.WriteString("/*@!Encoding:1310*/\n// caplgen driver: scheduled stimulus source.\nvariables\n{\n")
	for i := 0; i < s.NStim; i++ {
		fmt.Fprintf(&b, "  message 0x%X %s;\n", stimBaseID+i, stimName(i))
	}
	b.WriteString("  msTimer drive;\n  long step;\n}\n\non start\n{\n  setTimer(drive, 5);\n}\n\non timer drive\n{\n  step = step + 1;\n")
	for k, st := range s.Driver {
		fmt.Fprintf(&b, "  if (step == %d) {\n", k+1)
		for _, p := range st.Payload {
			fmt.Fprintf(&b, "    %s\n", p)
		}
		fmt.Fprintf(&b, "    output(%s);\n  }\n", stimName(st.Stim))
	}
	fmt.Fprintf(&b, "  if (step < %d) {\n    setTimer(drive, 10);\n  }\n}\n", len(s.Driver))
	return b.String()
}

// DBC renders the CAN database covering every generated message, so
// the lint pass cross-checks declarations against it (CAPL0013).
func (s *Spec) DBC() string {
	var b strings.Builder
	b.WriteString("VERSION \"caplgen\"\n\nNS_ :\n\nBS_:\n\nBU_: DRV NODE\n\n")
	for i := 0; i < s.NStim; i++ {
		fmt.Fprintf(&b, "BO_ %d Stim%d: 8 DRV\n SG_ Raw : 0|8@1+ (1,0) [0|255] \"\" NODE\n\n", stimBaseID+i, i)
	}
	for j := 0; j < s.NResp; j++ {
		fmt.Fprintf(&b, "BO_ %d Resp%d: 8 NODE\n SG_ Raw : 0|8@1+ (1,0) [0|255] \"\" DRV\n\n", respBaseID+j, j)
	}
	return b.String()
}

// HorizonUs returns the simulation horizon covering the whole driver
// schedule, every in-flight reply and a final grid slot of slack.
func (s *Spec) HorizonUs() int64 {
	return (5 + 10*int64(len(s.Driver)) + 25) * 1000
}
