package caplgen

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/canbus"
	"repro/internal/candb"
	"repro/internal/canoe"
	"repro/internal/capl"
	"repro/internal/caplint"
	"repro/internal/csp"
	"repro/internal/cspm"
	"repro/internal/lts"
	"repro/internal/refine"
	"repro/internal/translate"
)

// Verdict classes of one generated program, ordered from benign to
// fatal. Anything other than VerdictOK on a generated (well-typed)
// program is a pipeline bug: the soak's acceptance bar is all-OK.
const (
	VerdictOK         = "ok"
	VerdictLintReject = "lint-reject"     // generator emitted a program the linter flags
	VerdictParse      = "parse-error"     // generator emitted unparseable CAPL
	VerdictTranslate  = "translate-error" // extraction refused a lint-clean program
	VerdictCSPm       = "cspm-error"      // rendered model does not load
	VerdictExplore    = "explore-error"   // model exploration failed or blew its budget
	VerdictSim        = "sim-error"       // bus simulation failed
	VerdictSimBudget  = "sim-budget"      // simulation event budget exhausted
	VerdictProjection = "projection-error"
	VerdictCheck      = "check-error"  // trace membership errored
	VerdictBudget     = "check-budget" // trace membership blew its budget
	VerdictDiverges   = "diverges"     // observed trace is not a model trace
	VerdictPanic      = "panic"        // contained panic anywhere in the pipeline
)

// Config parameterises a soak run. The zero value is not runnable; use
// DefaultConfig.
type Config struct {
	// Seed feeds the master rng; every per-program seed derives from it.
	Seed int64
	// Programs is the number of generated programs.
	Programs int
	// MaxStates bounds both model exploration and trace membership.
	MaxStates int
	// MaxSimEvents bounds bus-simulation events per program.
	MaxSimEvents int
	// Shrink enables structural minimisation of failing programs.
	Shrink bool
}

// DefaultConfig is the baseline soak configuration; the committed
// regression report in testdata/caplgen_baseline.json uses it.
func DefaultConfig() Config {
	return Config{Seed: 1, Programs: 200, MaxStates: 50_000, MaxSimEvents: 100_000, Shrink: true}
}

// ProgramResult records the pipeline outcome of one generated program.
// Every field is deterministic in (Config.Seed, index) — wall-clock
// never influences a verdict — so whole reports are byte-comparable.
type ProgramResult struct {
	Index   int    `json:"index"`
	Seed    int64  `json:"seed"`
	Verdict string `json:"verdict"`
	Detail  string `json:"detail,omitempty"`
	// Stims/Resps/Handlers summarise the generated program shape.
	Stims    int `json:"stims"`
	Resps    int `json:"resps"`
	Handlers int `json:"handlers"`
	// Infos counts info-level lint findings (applied abstractions).
	Infos int `json:"infos"`
	// ModelStates is the explored size of the hidden extracted model.
	ModelStates int `json:"modelStates"`
	// Frames is the delivered-frame count of the simulation.
	Frames int `json:"frames"`
	// TraceStates is the membership check's visited-term count.
	TraceStates int `json:"traceStates"`
	// Shrunk carries the minimised reproducer for failing programs.
	Shrunk *ShrunkCase `json:"shrunk,omitempty"`
}

// ShrunkCase is a minimised failing program, committed into the report
// so the bug reproduces without re-running the generator.
type ShrunkCase struct {
	Verdict      string `json:"verdict"`
	NodeSource   string `json:"nodeSource"`
	DriverSource string `json:"driverSource"`
	DBC          string `json:"dbc"`
}

// hiddenTimerEvents is the event set abstracted away before comparing
// bus traces against the model: timer bookkeeping is internal to the
// node and invisible on the wire.
func hiddenTimerEvents() *csp.EventSet {
	return csp.EventsOf(translate.SetTimerChan, translate.CancelTimerChan, translate.TimeoutChan)
}

// projectTrace maps delivered frames onto model events by identifier.
func projectTrace(s *Spec, frames []canoe.TimedFrame) (csp.Trace, error) {
	byID := map[uint32]csp.Event{}
	for i := 0; i < s.NStim; i++ {
		byID[uint32(stimBaseID+i)] = csp.Event{Chan: "stim", Args: []csp.Value{csp.Sym(stimName(i))}}
	}
	for j := 0; j < s.NResp; j++ {
		byID[uint32(respBaseID+j)] = csp.Event{Chan: "resp", Args: []csp.Value{csp.Sym(respName(j))}}
	}
	out := make(csp.Trace, 0, len(frames))
	for i, tf := range frames {
		ev, ok := byID[tf.Frame.ID]
		if !ok {
			return nil, fmt.Errorf("frame %d at t=%dus: identifier 0x%03X not generated", i, int64(tf.At), tf.Frame.ID)
		}
		out = append(out, ev)
	}
	return out, nil
}

// lintGate runs the full analyzer and returns the first warning-or-
// worse finding, plus the info count. Generated programs must be
// completely warning-free: a warning here is a generator bug (or a
// typechecker false positive, which is exactly what the soak hunts).
func lintGate(file, src string, db *candb.Database) (string, int) {
	diags := caplint.AnalyzeSource(file, src, caplint.Options{File: file, DB: db})
	infos := 0
	for _, d := range diags {
		if d.Severity >= caplint.SevWarning {
			return d.String(), infos
		}
		infos++
	}
	return "", infos
}

// RunOne pushes one generated program through the whole pipeline.
// Panics anywhere are contained into a VerdictPanic result, so one bad
// program cannot kill a soak.
func RunOne(spec *Spec, cfg Config) (res ProgramResult) {
	res = ProgramResult{
		Index: spec.Index, Seed: spec.ProgSeed, Verdict: VerdictOK,
		Stims: spec.NStim, Resps: spec.NResp, Handlers: len(spec.Handlers),
	}
	defer func() {
		if p := recover(); p != nil {
			res.Verdict = VerdictPanic
			res.Detail = fmt.Sprintf("panic: %v", p)
		}
	}()

	nodeSrc := spec.NodeSource()
	db, err := candb.Parse(spec.DBC())
	if err != nil {
		res.Verdict = VerdictCSPm
		res.Detail = "generated dbc: " + err.Error()
		return res
	}

	// Phase 1: the program must be lint- and typecheck-clean.
	if bad, infos := lintGate("gen.can", nodeSrc, db); bad != "" {
		res.Verdict = VerdictLintReject
		res.Detail = bad
		return res
	} else {
		res.Infos = infos
	}
	drvSrc := spec.DriverSource()
	if bad, _ := lintGate("drv.can", drvSrc, db); bad != "" {
		res.Verdict = VerdictLintReject
		res.Detail = bad
		return res
	}

	// Phase 2: extraction. Strict mode re-runs the analyzer, so a
	// refusal here on a clean program is an extraction bug.
	prog, err := capl.Parse(nodeSrc)
	if err != nil {
		res.Verdict = VerdictParse
		res.Detail = err.Error()
		return res
	}
	tr, err := translate.Translate(prog, translate.Options{
		NodeName:      "NODE",
		InChannel:     "stim",
		OutChannel:    "resp",
		IncludeTimers: true,
		Strict:        true,
		DB:            db,
		SourceFile:    "gen.can",
	})
	if err != nil {
		res.Verdict = VerdictTranslate
		res.Detail = err.Error()
		return res
	}
	model, err := cspm.Load(tr.Text)
	if err != nil {
		res.Verdict = VerdictCSPm
		res.Detail = err.Error()
		return res
	}

	// Phase 3: the hidden model must be finitely explorable.
	hidden := csp.Hide(csp.Call("NODE"), hiddenTimerEvents())
	sem := csp.NewSemantics(model.Env, model.Ctx)
	l, err := lts.Explore(sem, hidden, lts.Options{MaxStates: cfg.MaxStates, Workers: 1})
	if err != nil {
		res.Verdict = VerdictExplore
		res.Detail = err.Error()
		return res
	}
	res.ModelStates = l.NumStates()

	// Phase 4: simulate node + driver on the bus.
	sim := canoe.NewSimulation(canbus.Config{})
	if _, err := sim.AddNode("NODE", nodeSrc); err == nil {
		_, err = sim.AddNode("DRV", drvSrc)
	}
	if err != nil {
		res.Verdict = VerdictSim
		res.Detail = err.Error()
		return res
	}
	if err := sim.Start(); err != nil {
		res.Verdict = VerdictSim
		res.Detail = err.Error()
		return res
	}
	const chunk = 10_000
	for events := 0; ; events += chunk {
		if events >= cfg.MaxSimEvents {
			res.Verdict = VerdictSimBudget
			res.Detail = fmt.Sprintf("sim exceeded %d events", cfg.MaxSimEvents)
			return res
		}
		done, err := sim.RunLimited(canbus.Time(spec.HorizonUs()), chunk)
		if err != nil {
			res.Verdict = VerdictSim
			res.Detail = err.Error()
			return res
		}
		if done {
			break
		}
	}
	frames := sim.Trace()
	res.Frames = len(frames)

	// Phase 5: conformance — the observed trace must be a model trace.
	trace, err := projectTrace(spec, frames)
	if err != nil {
		res.Verdict = VerdictProjection
		res.Detail = err.Error()
		return res
	}
	checker := refine.NewChecker(model.Env, model.Ctx)
	checker.MaxStates = cfg.MaxStates
	tc, err := checker.AcceptsTrace(hidden, trace)
	if err != nil {
		var be *refine.BudgetError
		if errors.As(err, &be) {
			res.Verdict = VerdictBudget
			res.Detail = be.Phase
			return res
		}
		res.Verdict = VerdictCheck
		res.Detail = err.Error()
		return res
	}
	res.TraceStates = tc.States
	if !tc.Accepted {
		res.Verdict = VerdictDiverges
		var allowed []string
		for _, ev := range tc.Allowed {
			allowed = append(allowed, ev.String())
		}
		res.Detail = fmt.Sprintf("event %d (%s) rejected; model offered [%s]",
			tc.FailedAt, tc.BadEvent.String(), strings.Join(allowed, " "))
	}
	return res
}
