package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
)

// ScalabilityPoint is one measurement of the refinement-check sweep.
type ScalabilityPoint struct {
	// MessagePairs is the number of request/response message pairs in
	// the generated ECU application.
	MessagePairs int
	// ImplStates and SpecNodes are the sizes the checker explored.
	ImplStates    int
	SpecNodes     int
	ProductStates int
	// Elapsed is the wall-clock time of the refinement check.
	Elapsed time.Duration
	// Holds confirms the property held (it must, by construction).
	Holds bool
}

// GenerateScaledECU builds a CAPL ECU application with n
// request/response message pairs — the workload generator for the
// scalability sweep (the paper's section VII discussion of scaling to
// real-world component sizes).
func GenerateScaledECU(n int) string {
	var sb strings.Builder
	sb.WriteString("variables\n{\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "  message 0x%03X req%d;\n", 0x100+i, i)
		fmt.Fprintf(&sb, "  message 0x%03X rsp%d;\n", 0x200+i, i)
	}
	sb.WriteString("}\n\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "on message req%d\n{\n  output(rsp%d);\n}\n\n", i, i)
	}
	return sb.String()
}

// GenerateScaledVMG builds the matching gateway that cycles through all
// n request/response pairs.
func GenerateScaledVMG(n int) string {
	var sb strings.Builder
	sb.WriteString("variables\n{\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "  message 0x%03X req%d;\n", 0x100+i, i)
		fmt.Fprintf(&sb, "  message 0x%03X rsp%d;\n", 0x200+i, i)
	}
	sb.WriteString("}\n\n")
	fmt.Fprintf(&sb, "on start\n{\n  output(req0);\n}\n\n")
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		fmt.Fprintf(&sb, "on message rsp%d\n{\n  output(req%d);\n}\n\n", i, next)
	}
	return sb.String()
}

// scaledSpec builds the specification section: every request must be
// answered by its response (checked pairwise under projection), plus
// deadlock freedom.
func scaledSpec(n int) string {
	var sb strings.Builder
	sb.WriteString("SYSTEM = VMG [| {| send, rec |} |] ECU\n")
	// Property for pair 0 under projection of all other messages.
	var others []string
	for i := 1; i < n; i++ {
		others = append(others, fmt.Sprintf("send.req%d", i), fmt.Sprintf("rec.rsp%d", i))
	}
	sb.WriteString("SP = send.req0 -> rec.rsp0 -> SP\n")
	if len(others) > 0 {
		fmt.Fprintf(&sb, "VIEW = SYSTEM \\ {%s}\n", strings.Join(others, ", "))
	} else {
		sb.WriteString("VIEW = SYSTEM\n")
	}
	sb.WriteString("assert SP [T= VIEW\n")
	sb.WriteString("assert SYSTEM :[deadlock free]\n")
	return sb.String()
}

// ScalabilityRun builds and checks the scaled system for one size.
func ScalabilityRun(pairs int) (ScalabilityPoint, error) {
	pipeline := &core.Pipeline{
		Nodes: []core.NodeSpec{
			{Name: "ECU", Source: GenerateScaledECU(pairs), In: "send", Out: "rec"},
			{Name: "VMG", Source: GenerateScaledVMG(pairs), In: "rec", Out: "send"},
		},
		Spec: scaledSpec(pairs),
	}
	start := time.Now()
	report, err := pipeline.Run()
	if err != nil {
		return ScalabilityPoint{}, err
	}
	elapsed := time.Since(start)
	pt := ScalabilityPoint{
		MessagePairs: pairs,
		Elapsed:      elapsed,
		Holds:        report.AllHold(),
	}
	if len(report.Results) > 0 {
		pt.ImplStates = report.Results[0].Result.ImplStates
		pt.SpecNodes = report.Results[0].Result.SpecNodes
		pt.ProductStates = report.Results[0].Result.ProductStates
	}
	return pt, nil
}

// Scalability sweeps the refinement check over system sizes.
func Scalability(sizes []int) ([]ScalabilityPoint, error) {
	if len(sizes) == 0 {
		sizes = []int{2, 4, 8, 16, 32}
	}
	out := make([]ScalabilityPoint, 0, len(sizes))
	for _, n := range sizes {
		pt, err := ScalabilityRun(n)
		if err != nil {
			return nil, fmt.Errorf("size %d: %w", n, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// ScalabilityTable renders the sweep.
func ScalabilityTable(points []ScalabilityPoint) *Table {
	t := &Table{
		Title:  "Scalability — refinement-check cost vs application size (section VII)",
		Header: []string{"message pairs", "impl states", "spec nodes", "product states", "time", "property"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.MessagePairs),
			fmt.Sprintf("%d", p.ImplStates),
			fmt.Sprintf("%d", p.SpecNodes),
			fmt.Sprintf("%d", p.ProductStates),
			p.Elapsed.Round(time.Microsecond).String(),
			check(p.Holds),
		})
	}
	return t
}
