// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the quantitative scalability and attacker experiments
// DESIGN.md adds. Each experiment returns structured results that the
// otacheck command renders and the benchmark harness measures;
// EXPERIMENTS.md records the expected shapes.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render lays the table out as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func check(ok bool) string {
	if ok {
		return "passed"
	}
	return "FAILED"
}

func holdsOrTrace(holds bool, trace fmt.Stringer) string {
	if holds {
		return "holds"
	}
	return "violated: " + trace.String()
}
