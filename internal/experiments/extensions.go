package experiments

import (
	"fmt"

	"repro/internal/capl"
	"repro/internal/csp"
	"repro/internal/cspm"
	"repro/internal/fdr"
	"repro/internal/ota"
	"repro/internal/translate"
)

// ExtensionRow is one future-work extension's verification outcome.
type ExtensionRow struct {
	Name    string
	Detail  string
	Asserts int
	Passed  int
}

// Extensions runs the paper's section VIII-A / VII-B future-work items
// that this reproduction implements: the timer-driven VMG with the
// TIMER(t) lifecycle, the full X.1373 message set with an update
// server, and the tock-CSP timed abstraction.
func Extensions() ([]ExtensionRow, error) {
	var out []ExtensionRow

	// 1. Timer-driven VMG.
	timerSys, err := ota.BuildWithTimers()
	if err != nil {
		return nil, fmt.Errorf("timer variant: %w", err)
	}
	timerRes, err := fdr.RunAll(timerSys.Model, 0)
	if err != nil {
		return nil, err
	}
	out = append(out, countRow("timer-driven VMG",
		"setTimer/timeout abstraction + TIMER(t) lifecycle", timerRes))

	// 2. Full X.1373 stack with update server.
	fullSys, err := ota.BuildFullX1373()
	if err != nil {
		return nil, fmt.Errorf("full X.1373: %w", err)
	}
	fullRes, err := fdr.RunAll(fullSys.Model, 0)
	if err != nil {
		return nil, err
	}
	out = append(out, countRow("update server (full X.1373)",
		"diagnose/update_check/update/update_report end-to-end", fullRes))

	// 3. Tock-CSP timing: a 200 ms timer must take two 100 ms tocks.
	tockRow, err := tockExtension()
	if err != nil {
		return nil, fmt.Errorf("tock time: %w", err)
	}
	out = append(out, tockRow)
	return out, nil
}

func countRow(name, detail string, results []fdr.AssertResult) ExtensionRow {
	row := ExtensionRow{Name: name, Detail: detail, Asserts: len(results)}
	for _, r := range results {
		if r.Result.Holds {
			row.Passed++
		}
	}
	return row
}

func tockExtension() (ExtensionRow, error) {
	const src = `
variables
{
  message 0x1 ping;
  msTimer cycle;
}
on start { setTimer(cycle, 200); }
on timer cycle { output(ping); setTimer(cycle, 100); }
`
	prog, err := capl.Parse(src)
	if err != nil {
		return ExtensionRow{}, err
	}
	opts := translate.DefaultOptions("NODE")
	opts.TockTime = true
	opts.TockMs = 100
	opts.GenerateTimerProcess = true
	res, err := translate.Translate(prog, opts)
	if err != nil {
		return ExtensionRow{}, err
	}
	model, err := cspm.Load(res.Text + `
SYS = NODE [| {| setTimer, cancelTimer, timeout, tock |} |] TIMER(cycle)
`)
	if err != nil {
		return ExtensionRow{}, err
	}
	sem := csp.NewSemantics(model.Env, model.Ctx)
	set2 := csp.Ev("setTimer", csp.Sym("cycle"), csp.Int(2))
	tock := csp.Ev("tock")
	fire := csp.Ev("timeout", csp.Sym("cycle"))

	row := ExtensionRow{
		Name:    "tock-CSP timing",
		Detail:  "200 ms timer fires after exactly two 100 ms tocks",
		Asserts: 2,
	}
	early, err := csp.HasTrace(sem, csp.Call("SYS"), csp.Trace{set2, tock, fire})
	if err != nil {
		return ExtensionRow{}, err
	}
	if !early {
		row.Passed++
	}
	onTime, err := csp.HasTrace(sem, csp.Call("SYS"), csp.Trace{set2, tock, tock, fire})
	if err != nil {
		return ExtensionRow{}, err
	}
	if onTime {
		row.Passed++
	}
	return row, nil
}

// ExtensionsTable renders the future-work outcomes.
func ExtensionsTable(rows []ExtensionRow) *Table {
	t := &Table{
		Title:  "Future-work extensions implemented (paper sections VII-B and VIII-A)",
		Header: []string{"extension", "checks", "passed", "detail"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Name,
			fmt.Sprintf("%d", r.Asserts),
			fmt.Sprintf("%d", r.Passed),
			r.Detail,
		})
	}
	return t
}
