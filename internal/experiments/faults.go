package experiments

import (
	"fmt"
	"strings"

	"repro/internal/canbus"
	"repro/internal/canoe"
)

// The fault-injection experiment exercises the simulation substrate the
// way a CANoe test bench would: the bus drops the first software-
// inventory report, and a retry-equipped VMG recovers while a naive one
// stalls — the class of subtle runtime behaviour that motivates pairing
// simulation with formal checking.

// retryVMGSource retries the inventory request on a timer until it
// gets a report.
const retryVMGSource = `
variables
{
  message 0x101 swInventoryReq;
  message 0x102 swInventoryRpt;
  msTimer retry;
  int gotReport = 0;
  int attempts = 0;
}
on start
{
  attempts = attempts + 1;
  output(swInventoryReq);
  setTimer(retry, 50);
}
on message swInventoryRpt
{
  gotReport = 1;
  cancelTimer(retry);
}
on timer retry
{
  if (gotReport == 0) {
    attempts = attempts + 1;
    output(swInventoryReq);
    setTimer(retry, 50);
  }
}
`

// naiveVMGSource sends the request exactly once.
const naiveVMGSource = `
variables
{
  message 0x101 swInventoryReq;
  message 0x102 swInventoryRpt;
  int gotReport = 0;
}
on start { output(swInventoryReq); }
on message swInventoryRpt { gotReport = 1; }
`

// respondingECUSource answers every inventory request.
const respondingECUSource = `
variables
{
  message 0x101 swInventoryReq;
  message 0x102 swInventoryRpt;
}
on message swInventoryReq { output(swInventoryRpt); }
`

// FaultResult reports one fault-injection run.
type FaultResult struct {
	Variant       string
	GotReport     bool
	Attempts      int64
	FramesDropped int
}

// FaultInjection runs both VMG variants against a bus that drops the
// first inventory report.
func FaultInjection() ([]FaultResult, error) {
	run := func(variant, vmgSrc string) (FaultResult, error) {
		dropped := 0
		cfg := canbus.Config{Injector: &canbus.Injector{
			Drop: func(_ canbus.Time, f canbus.Frame) bool {
				if f.ID == 0x102 && dropped == 0 {
					dropped++
					return true
				}
				return false
			},
		}}
		sim := canoe.NewSimulation(cfg)
		vmg, err := sim.AddNode("VMG", vmgSrc)
		if err != nil {
			return FaultResult{}, err
		}
		if _, err := sim.AddNode("ECU", respondingECUSource); err != nil {
			return FaultResult{}, err
		}
		if err := sim.Start(); err != nil {
			return FaultResult{}, err
		}
		if err := sim.Run(500 * canbus.Millisecond); err != nil {
			return FaultResult{}, err
		}
		res := FaultResult{Variant: variant, FramesDropped: dropped}
		res.GotReport = globalInt(vmg, "gotReport") == 1
		res.Attempts = globalInt(vmg, "attempts")
		return res, nil
	}
	withRetry, err := run("retry VMG", retryVMGSource)
	if err != nil {
		return nil, fmt.Errorf("retry variant: %w", err)
	}
	naive, err := run("naive VMG", naiveVMGSource)
	if err != nil {
		return nil, fmt.Errorf("naive variant: %w", err)
	}
	return []FaultResult{withRetry, naive}, nil
}

// globalInt reads a node's integer global, 0 if absent.
func globalInt(n *canoe.Node, name string) int64 {
	v, ok := n.Global(name)
	if !ok {
		return 0
	}
	i, _ := v.(int64)
	return i
}

// FaultTable renders the experiment.
func FaultTable(rows []FaultResult) *Table {
	t := &Table{
		Title:  "Fault injection — first inventory report dropped on the bus",
		Header: []string{"gateway", "recovered", "request attempts", "frames dropped"},
	}
	for _, r := range rows {
		recovered := "no (stalled)"
		if r.GotReport {
			recovered = "yes"
		}
		attempts := "1"
		if r.Attempts > 0 {
			attempts = fmt.Sprintf("%d", r.Attempts)
		}
		t.Rows = append(t.Rows, []string{r.Variant, recovered, attempts, fmt.Sprintf("%d", r.FramesDropped)})
	}
	t.Notes = append(t.Notes, strings.TrimSpace(
		"the retry gateway re-requests on a 50 ms timer; the naive gateway sends once"))
	return t
}
