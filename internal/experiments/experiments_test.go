package experiments

import (
	"strings"
	"testing"
)

func TestTableI(t *testing.T) {
	tab, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(tableIEntries) {
		t.Errorf("rows = %d, want %d", len(tab.Rows), len(tableIEntries))
	}
	out := tab.Render()
	if !strings.Contains(out, "|~|") || !strings.Contains(out, "passed") {
		t.Errorf("render:\n%s", out)
	}
	if strings.Contains(out, "FAILED") {
		t.Errorf("Table I has failures:\n%s", out)
	}
}

func TestTableII(t *testing.T) {
	tab, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("rows = %d, want 4", len(tab.Rows))
	}
	out := tab.Render()
	for _, want := range []string{"reqSw", "rptSw", "reqApp", "rptUpd", "VMG", "ECU"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q:\n%s", want, out)
		}
	}
}

func TestTableIII(t *testing.T) {
	tab, err := TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (R01..R05)", len(tab.Rows))
	}
	out := tab.Render()
	// Correct system holds everything; the flawed one must violate R02.
	if strings.Count(out, "violated") == 0 {
		t.Errorf("flawed system produced no violation:\n%s", out)
	}
	for _, id := range []string{"R01", "R02", "R03", "R04", "R05"} {
		if !strings.Contains(out, id) {
			t.Errorf("missing requirement %s", id)
		}
	}
}

func TestFigure1EndToEnd(t *testing.T) {
	res, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Asserts {
		if !a.Result.Holds {
			t.Errorf("assertion failed: %s", a)
		}
	}
	if !res.CrossValidated {
		t.Error("simulation trace did not validate against the model")
	}
	if !strings.Contains(res.ECUModel, "ECU = ") {
		t.Errorf("ECU model missing:\n%s", res.ECUModel)
	}
}

func TestFigure2Variants(t *testing.T) {
	res, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	correct, flawed, silent := res.Rows[0], res.Rows[1], res.Rows[2]
	if !correct.SP02Holds || !correct.DeadlockFree {
		t.Error("correct system failed its checks")
	}
	if flawed.SP02Holds {
		t.Error("flawed system passed SP02")
	}
	if silent.DeadlockFree {
		t.Error("silent ECU did not deadlock")
	}
}

func TestFigure3Artifact(t *testing.T) {
	text, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"datatype Msgs = reqSw | rptSw | reqApp | rptUpd",
		"channel send, rec : Msgs",
		"send.reqSw -> rec!rptSw -> ECU",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Figure 3 missing %q:\n%s", want, text)
		}
	}
}

func TestSecureVariantsShape(t *testing.T) {
	rows, err := SecureVariants()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	naive, mac, nonce := rows[0], rows[1], rows[2]
	if naive.AuthHolds {
		t.Error("plaintext variant should be injectable")
	}
	if !mac.AuthHolds || mac.InjHolds {
		t.Error("MAC variant should stop injection but not replay")
	}
	if !nonce.AuthHolds || !nonce.InjHolds {
		t.Error("nonce variant should stop both")
	}
}

func TestAttackTreeEquivalence(t *testing.T) {
	res, err := AttackTree()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Errorf("translation not equivalent: %d sequences vs %d traces",
			res.SequenceCount, res.CSPTraceCount)
	}
	if res.SequenceCount != 4 {
		t.Errorf("sequences = %d, want 4", res.SequenceCount)
	}
}

func TestNeedhamSchroederShape(t *testing.T) {
	res, err := NeedhamSchroeder()
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginalHolds {
		t.Error("NSPK attack not found")
	}
	if !res.FixedHolds {
		t.Error("NSL fix rejected")
	}
	if res.AttackTrace.String() == "<>" {
		t.Error("empty attack trace")
	}
}

func TestScalabilitySmall(t *testing.T) {
	pts, err := Scalability([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if !p.Holds {
			t.Errorf("size %d: property failed", p.MessagePairs)
		}
	}
	if pts[1].ImplStates <= pts[0].ImplStates {
		t.Errorf("state count did not grow with size: %d -> %d",
			pts[0].ImplStates, pts[1].ImplStates)
	}
	out := ScalabilityTable(pts).Render()
	if !strings.Contains(out, "message pairs") {
		t.Errorf("table render:\n%s", out)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"xxxxx", "y"}},
		Notes:  []string{"n"},
	}
	out := tab.Render()
	for _, want := range []string{"T\n", "xxxxx", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFaultInjection(t *testing.T) {
	rows, err := FaultInjection()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	retry, naive := rows[0], rows[1]
	if !retry.GotReport {
		t.Error("retry gateway did not recover from the dropped frame")
	}
	if retry.Attempts < 2 {
		t.Errorf("retry attempts = %d, want >= 2", retry.Attempts)
	}
	if naive.GotReport {
		t.Error("naive gateway recovered without retrying (drop not effective?)")
	}
	if retry.FramesDropped != 1 || naive.FramesDropped != 1 {
		t.Errorf("dropped = %d/%d, want 1/1", retry.FramesDropped, naive.FramesDropped)
	}
	out := FaultTable(rows).Render()
	if !strings.Contains(out, "stalled") {
		t.Errorf("table:\n%s", out)
	}
}

func TestExtensionsAllPass(t *testing.T) {
	rows, err := Extensions()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Passed != r.Asserts {
			t.Errorf("%s: %d/%d checks passed", r.Name, r.Passed, r.Asserts)
		}
	}
	out := ExtensionsTable(rows).Render()
	if !strings.Contains(out, "tock-CSP") {
		t.Errorf("table:\n%s", out)
	}
}
