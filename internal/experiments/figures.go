package experiments

import (
	"fmt"
	"strings"

	"repro/internal/canbus"
	"repro/internal/core"
	"repro/internal/csp"
	"repro/internal/fdr"
	"repro/internal/ota"
)

// Figure1Result traces the whole Figure 1 workflow (IDE -> model
// extractor -> CSP models -> FDR -> counterexamples) end-to-end on the
// case study, including the simulation cross-validation leg.
type Figure1Result struct {
	// Stage artefacts.
	ECUSourceLines int
	VMGSourceLines int
	ECUModel       string
	VMGModel       string
	CombinedLines  int
	// Assertion outcomes in script order.
	Asserts []fdr.AssertResult
	// CrossValidated reports that the simulated CANoe measurement trace
	// is a trace of the extracted model.
	CrossValidated bool
	SimulatedTrace csp.Trace
}

// Figure1 runs the workflow.
func Figure1() (*Figure1Result, error) {
	pipeline := &core.Pipeline{
		Nodes: []core.NodeSpec{
			{Name: "ECU", Source: ota.ECUSource, In: "send", Out: "rec", Rename: ota.MessageRename},
			{Name: "VMG", Source: ota.VMGSource, In: "rec", Out: "send", Rename: ota.MessageRename},
		},
		Spec: `
SP02 = send.reqSw -> rec.rptSw -> SP02
SYSTEM = VMG [| {| send, rec |} |] ECU
DIAG = SYSTEM \ {send.reqApp, rec.rptUpd}
assert SP02 [T= DIAG
assert SYSTEM :[deadlock free]
assert SYSTEM :[divergence free]
`,
	}
	report, err := pipeline.Run()
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{
		ECUSourceLines: strings.Count(ota.ECUSource, "\n"),
		VMGSourceLines: strings.Count(ota.VMGSource, "\n"),
		ECUModel:       report.NodeModels["ECU"],
		VMGModel:       report.NodeModels["VMG"],
		CombinedLines:  strings.Count(report.CombinedSource, "\n"),
		Asserts:        report.Results,
	}
	mapping := core.FrameMapping{
		0x101: csp.Ev("send", csp.Sym("reqSw")),
		0x102: csp.Ev("rec", csp.Sym("rptSw")),
		0x103: csp.Ev("send", csp.Sym("reqApp")),
		0x104: csp.Ev("rec", csp.Sym("rptUpd")),
	}
	observed, err := pipeline.CrossValidate(report.Model, csp.Call("SYSTEM"), mapping, 5*canbus.Millisecond)
	if err != nil {
		return res, err
	}
	res.CrossValidated = true
	res.SimulatedTrace = observed
	return res, nil
}

// Render summarises the workflow run.
func (r *Figure1Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 1 — workflow and toolchain (end-to-end)\n")
	fmt.Fprintf(&sb, "  CAPL sources: ECU %d lines, VMG %d lines\n", r.ECUSourceLines, r.VMGSourceLines)
	fmt.Fprintf(&sb, "  extracted models + specs: %d lines of CSPm\n", r.CombinedLines)
	for _, a := range r.Asserts {
		fmt.Fprintf(&sb, "  %s\n", a)
	}
	fmt.Fprintf(&sb, "  simulation cross-validation: %s (%d bus events)\n",
		check(r.CrossValidated), len(r.SimulatedTrace))
	return sb.String()
}

// Figure2Result captures the case-study scope check (VMG + ECU
// composition) across the three implementation variants.
type Figure2Result struct {
	Rows []Figure2Row
}

// Figure2Row is one variant's outcome.
type Figure2Row struct {
	Variant        string
	SP02Holds      bool
	Counterexample csp.Trace
	DeadlockFree   bool
	ImplStates     int
	ProductStates  int
}

// Figure2 exercises the Figure 2 system scope: the composed VMG/ECU
// model checked against SP02 and deadlock freedom, for the correct,
// flawed and request-swallowing ECUs.
func Figure2() (*Figure2Result, error) {
	out := &Figure2Result{}
	variants := []struct {
		name  string
		build func() (*ota.System, error)
	}{
		{"correct ECU", ota.Build},
		{"flawed ECU (wrong response)", ota.BuildFlawed},
		{"silent ECU (drops requests)", ota.BuildDeadlocked},
	}
	for _, v := range variants {
		sys, err := v.build()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		sp02, err := ota.CheckAssertion(sys, ota.AssertR02, 0)
		if err != nil {
			return nil, err
		}
		dl, err := ota.CheckAssertion(sys, ota.AssertDeadlock, 0)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Figure2Row{
			Variant:        v.name,
			SP02Holds:      sp02.Holds,
			Counterexample: sp02.Counterexample,
			DeadlockFree:   dl.Holds,
			ImplStates:     sp02.ImplStates,
			ProductStates:  sp02.ProductStates,
		})
	}
	return out, nil
}

// Table renders the figure's outcomes as a table.
func (r *Figure2Result) Table() *Table {
	t := &Table{
		Title:  "Figure 2 — case-study system (SYSTEM = VMG [|{|send,rec|}|] ECU)",
		Header: []string{"Implementation", "SP02 [T= DIAG", "deadlock free", "impl states", "product states"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Variant,
			holdsOrTrace(row.SP02Holds, row.Counterexample),
			check(row.DeadlockFree),
			fmt.Sprintf("%d", row.ImplStates),
			fmt.Sprintf("%d", row.ProductStates),
		})
	}
	return t
}

// Figure3 regenerates the Figure 3 artefact: the ECU implementation
// model (CSPm script) automatically extracted from the CAPL application
// code of the simulated CAN network node.
func Figure3() (string, error) {
	sys, err := ota.Build()
	if err != nil {
		return "", err
	}
	return sys.ECUText, nil
}
