package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/csp"
	"repro/internal/ota"
	"repro/internal/refine"
)

// SecureVariantRow is one row of the shared-key (R05) experiment.
type SecureVariantRow struct {
	Variant        ota.SecureVariant
	AuthHolds      bool
	AuthTrace      csp.Trace
	InjHolds       bool
	InjTrace       csp.Trace
	IntruderStates int
}

// SecureVariants runs the R05 experiment: the three protections against
// the Dolev-Yao bus intruder, checked against injection (AUTH) and
// replay (AUTHINJ).
func SecureVariants() ([]SecureVariantRow, error) {
	var out []SecureVariantRow
	for _, v := range []ota.SecureVariant{ota.Naive, ota.MACOnly, ota.MACNonce} {
		m, err := ota.BuildSecure(v)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v, err)
		}
		c := refine.NewChecker(m.Env, m.Ctx)
		auth, err := c.RefinesTraces(m.AuthSpec, m.System)
		if err != nil {
			return nil, err
		}
		inj, err := c.RefinesTraces(m.InjSpec, m.System)
		if err != nil {
			return nil, err
		}
		out = append(out, SecureVariantRow{
			Variant:        v,
			AuthHolds:      auth.Holds,
			AuthTrace:      auth.Counterexample,
			InjHolds:       inj.Holds,
			InjTrace:       inj.Counterexample,
			IntruderStates: m.IntruderStates,
		})
	}
	return out, nil
}

// SecureVariantsTable renders the experiment.
func SecureVariantsTable(rows []SecureVariantRow) *Table {
	t := &Table{
		Title:  "R05 — shared-key protections vs a Dolev-Yao CAN intruder",
		Header: []string{"protection", "injection (AUTH)", "replay (AUTHINJ)", "intruder states"},
		Notes: []string{
			"AUTH: no update applied unless one was requested",
			"AUTHINJ: requests and applied updates strictly alternate",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Variant.String(),
			holdsOrTrace(r.AuthHolds, r.AuthTrace),
			holdsOrTrace(r.InjHolds, r.InjTrace),
			fmt.Sprintf("%d", r.IntruderStates),
		})
	}
	return t
}

// AttackTreeResult verifies the attack-tree-to-CSP equivalence of
// section IV-E on the running automotive example.
type AttackTreeResult struct {
	TreeLabel       string
	SequenceCount   int
	CSPTraceCount   int
	Equivalent      bool
	SampleSequences []string
}

// AttackTree runs the attack-tree experiment.
func AttackTree() (*AttackTreeResult, error) {
	tree := attack.Seq{Children: []attack.Tree{
		attack.Or{Children: []attack.Tree{
			attack.Leaf{Action: "accessOBD"},
			attack.Seq{Children: []attack.Tree{
				attack.Leaf{Action: "compromiseTCU"},
				attack.Leaf{Action: "pivotToCAN"},
			}},
		}},
		attack.Par{Children: []attack.Tree{
			attack.Leaf{Action: "reprogramECU"},
			attack.Leaf{Action: "suppressAlarm"},
		}},
	}}
	sequences := attack.Sequences(tree)

	ctx := csp.NewContext()
	if err := attack.DeclareActions(ctx, "action", tree); err != nil {
		return nil, err
	}
	sem := csp.NewSemantics(csp.NewEnv(), ctx)
	proc := attack.ToCSP(tree, "action")
	ts, err := csp.Traces(sem, proc, len(attack.Actions(tree))+1)
	if err != nil {
		return nil, err
	}
	completed := map[string]bool{}
	for _, tr := range ts.Slice() {
		if len(tr) == 0 || !tr[len(tr)-1].IsTick() {
			continue
		}
		parts := make([]string, 0, len(tr)-1)
		for _, ev := range tr[:len(tr)-1] {
			parts = append(parts, ev.Args[0].String())
		}
		completed[strings.Join(parts, ",")] = true
	}
	equivalent := len(completed) == len(sequences)
	for _, s := range sequences {
		if !completed[strings.Join(s, ",")] {
			equivalent = false
		}
	}
	res := &AttackTreeResult{
		TreeLabel:     tree.Label(),
		SequenceCount: len(sequences),
		CSPTraceCount: len(completed),
		Equivalent:    equivalent,
	}
	for i, s := range sequences {
		if i >= 4 {
			break
		}
		res.SampleSequences = append(res.SampleSequences, strings.Join(s, " -> "))
	}
	return res, nil
}

// Render summarises the attack-tree experiment.
func (r *AttackTreeResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Attack trees — SP-graph semantics vs CSP translation (section IV-E)\n")
	fmt.Fprintf(&sb, "  tree: %s\n", r.TreeLabel)
	fmt.Fprintf(&sb, "  sequence-set size %d, CSP completed traces %d, equivalent: %s\n",
		r.SequenceCount, r.CSPTraceCount, check(r.Equivalent))
	for _, s := range r.SampleSequences {
		fmt.Fprintf(&sb, "  attack: %s\n", s)
	}
	return sb.String()
}

// NSPKResult captures the Needham-Schroeder experiment (the paper's
// section II-B motivation).
type NSPKResult struct {
	OriginalHolds  bool
	AttackTrace    csp.Trace
	FixedHolds     bool
	IntruderStates int
}

// NeedhamSchroeder runs the NSPK/NSL experiment.
func NeedhamSchroeder() (*NSPKResult, error) {
	orig, err := attack.BuildNSPK(attack.NSPKConfig{})
	if err != nil {
		return nil, err
	}
	c := refine.NewChecker(orig.Env, orig.Ctx)
	origRes, err := c.RefinesTraces(orig.AuthSpec, orig.System)
	if err != nil {
		return nil, err
	}
	fixed, err := attack.BuildNSPK(attack.NSPKConfig{Fixed: true})
	if err != nil {
		return nil, err
	}
	cf := refine.NewChecker(fixed.Env, fixed.Ctx)
	fixedRes, err := cf.RefinesTraces(fixed.AuthSpec, fixed.System)
	if err != nil {
		return nil, err
	}
	return &NSPKResult{
		OriginalHolds:  origRes.Holds,
		AttackTrace:    origRes.Counterexample,
		FixedHolds:     fixedRes.Holds,
		IntruderStates: orig.IntruderStates,
	}, nil
}

// Render summarises the NSPK experiment.
func (r *NSPKResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Needham-Schroeder — Lowe's attack reproduced (section II-B)\n")
	fmt.Fprintf(&sb, "  NSPK authentication: %s\n", holdsOrTrace(r.OriginalHolds, r.AttackTrace))
	fmt.Fprintf(&sb, "  NSL (Lowe's fix):    %s\n", map[bool]string{true: "holds", false: "VIOLATED"}[r.FixedHolds])
	fmt.Fprintf(&sb, "  intruder knowledge states: %d\n", r.IntruderStates)
	return sb.String()
}
