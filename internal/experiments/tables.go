package experiments

import (
	"fmt"

	"repro/internal/cspm"
	"repro/internal/ota"
)

// tableIEntry is one CSPm operator of the paper's Table I, with a
// representative script exercising it.
type tableIEntry struct {
	Operator string
	Notation string
	Example  string
}

var tableIEntries = []tableIEntry{
	{"Prefix", "->", "channel a\nP = a -> STOP\n"},
	{"Input", "?x", "channel c : {0..3}\nP = c?x -> STOP\n"},
	{"Output", "!x", "channel c : {0..3}\nP = c!2 -> STOP\n"},
	{"Sequential composition", ";", "channel a, b\nP = (a -> SKIP) ; (b -> SKIP)\n"},
	{"External choice", "[]", "channel a, b\nP = a -> STOP [] b -> STOP\n"},
	{"Internal choice", "|~|", "channel a, b\nP = a -> STOP |~| b -> STOP\n"},
	{"Alphabetised parallel", "[A]", "channel a, b\nP = (a -> STOP) [| {| a |} |] (a -> b -> STOP)\n"},
	{"Interleaving", "|||", "channel a, b\nP = (a -> STOP) ||| (b -> STOP)\n"},
}

// TableI reproduces Table I (CSPm notation): for every operator, the
// front-end must parse a representative script, and printing it back
// must re-parse to a stable form (machine-readability round trip).
func TableI() (*Table, error) {
	t := &Table{
		Title:  "Table I — CSPm notation (operator round-trip through the front-end)",
		Header: []string{"Basic operator", "Notation", "Parse", "Print-parse round-trip"},
	}
	for _, e := range tableIEntries {
		script, err := cspm.Parse(e.Example)
		parsed := err == nil
		stable := false
		if parsed {
			printed := cspm.Print(script)
			second, err2 := cspm.Parse(printed)
			stable = err2 == nil && cspm.Print(second) == printed
		}
		t.Rows = append(t.Rows, []string{e.Operator, e.Notation, check(parsed), check(stable)})
		if !parsed || !stable {
			return t, fmt.Errorf("operator %s failed the round trip", e.Operator)
		}
	}
	return t, nil
}

// TableII reproduces Table II: the X.1373 message types of the case
// study, as carried by the ota package (with the CAN identifiers the
// simulated network assigns).
func TableII() (*Table, error) {
	t := &Table{
		Title:  "Table II — message types and messages used (ITU-T X.1373 subset)",
		Header: []string{"Type", "Id", "From", "To", "Description", "CAN id"},
	}
	for _, row := range ota.TableII {
		t.Rows = append(t.Rows, []string{
			row.Type, row.ID, row.From, row.To, row.Description,
			fmt.Sprintf("0x%03X", row.CANID),
		})
	}
	return t, nil
}

// TableIII reproduces Table III: the secure update system requirements,
// each checked by refinement against the extracted system model — on the
// correct implementation and on the flawed one (which must expose R02).
func TableIII() (*Table, error) {
	correct, err := ota.Build()
	if err != nil {
		return nil, err
	}
	flawed, err := ota.BuildFlawed()
	if err != nil {
		return nil, err
	}
	correctRes, err := ota.CheckRequirements(correct, 0)
	if err != nil {
		return nil, err
	}
	flawedRes, err := ota.CheckRequirements(flawed, 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table III — secure update system requirements (checked by refinement)",
		Header: []string{"ID", "Property", "Correct system", "Flawed system", "Requirement"},
		Notes: []string{
			"flawed system: the ECU answers inventory requests with the wrong message type",
			"R05 is the shared-key assumption; see the secure-variant experiment",
		},
	}
	for i, r := range correctRes {
		text := r.Req.Text
		if len(text) > 60 {
			text = text[:57] + "..."
		}
		t.Rows = append(t.Rows, []string{
			r.Req.ID,
			r.Req.Property,
			holdsOrTrace(r.Holds, r.Result.Counterexample),
			holdsOrTrace(flawedRes[i].Holds, flawedRes[i].Result.Counterexample),
			text,
		})
	}
	return t, nil
}
