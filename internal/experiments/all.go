package experiments

import (
	"fmt"
	"strings"
)

// RunAll executes every experiment and renders a complete report — the
// otacheck command's output and the basis of EXPERIMENTS.md.
func RunAll(scalabilitySizes []int) (string, error) {
	var sb strings.Builder
	sb.WriteString("Reproduction report — Heneghan et al., DSN-W 2019\n")
	sb.WriteString(strings.Repeat("=", 60) + "\n\n")

	t1, err := TableI()
	if err != nil {
		return sb.String(), fmt.Errorf("Table I: %w", err)
	}
	sb.WriteString(t1.Render() + "\n")

	t2, err := TableII()
	if err != nil {
		return sb.String(), fmt.Errorf("Table II: %w", err)
	}
	sb.WriteString(t2.Render() + "\n")

	t3, err := TableIII()
	if err != nil {
		return sb.String(), fmt.Errorf("Table III: %w", err)
	}
	sb.WriteString(t3.Render() + "\n")

	f1, err := Figure1()
	if err != nil {
		return sb.String(), fmt.Errorf("Figure 1: %w", err)
	}
	sb.WriteString(f1.Render() + "\n")

	f2, err := Figure2()
	if err != nil {
		return sb.String(), fmt.Errorf("Figure 2: %w", err)
	}
	sb.WriteString(f2.Table().Render() + "\n")

	f3, err := Figure3()
	if err != nil {
		return sb.String(), fmt.Errorf("Figure 3: %w", err)
	}
	sb.WriteString("Figure 3 — generated ECU implementation model (CSPm):\n")
	for _, line := range strings.Split(strings.TrimRight(f3, "\n"), "\n") {
		sb.WriteString("    " + line + "\n")
	}
	sb.WriteString("\n")

	sec, err := SecureVariants()
	if err != nil {
		return sb.String(), fmt.Errorf("secure variants: %w", err)
	}
	sb.WriteString(SecureVariantsTable(sec).Render() + "\n")

	at, err := AttackTree()
	if err != nil {
		return sb.String(), fmt.Errorf("attack tree: %w", err)
	}
	sb.WriteString(at.Render() + "\n")

	ns, err := NeedhamSchroeder()
	if err != nil {
		return sb.String(), fmt.Errorf("NSPK: %w", err)
	}
	sb.WriteString(ns.Render() + "\n")

	ext, err := Extensions()
	if err != nil {
		return sb.String(), fmt.Errorf("extensions: %w", err)
	}
	sb.WriteString(ExtensionsTable(ext).Render() + "\n")

	fi, err := FaultInjection()
	if err != nil {
		return sb.String(), fmt.Errorf("fault injection: %w", err)
	}
	sb.WriteString(FaultTable(fi).Render() + "\n")

	sc, err := Scalability(scalabilitySizes)
	if err != nil {
		return sb.String(), fmt.Errorf("scalability: %w", err)
	}
	sb.WriteString(ScalabilityTable(sc).Render() + "\n")

	return sb.String(), nil
}
