package experiments

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// RunAll executes every experiment and renders a complete report — the
// otacheck command's output and the basis of EXPERIMENTS.md.
func RunAll(scalabilitySizes []int) (string, error) {
	return RunAllObs(scalabilitySizes, nil)
}

// RunAllObs is RunAll with observability: each report section runs
// under a span named experiments.<section> so a trace shows where a
// full reproduction spends its time. A nil observer disables all
// instrumentation and the output is byte-identical either way.
func RunAllObs(scalabilitySizes []int, o *obs.Observer) (string, error) {
	var sb strings.Builder
	sb.WriteString("Reproduction report — Heneghan et al., DSN-W 2019\n")
	sb.WriteString(strings.Repeat("=", 60) + "\n\n")

	sections := []struct {
		name  string // span suffix
		label string // error prefix, kept identical to the pre-obs report
		run   func(sb *strings.Builder) error
	}{
		{"table1", "Table I", func(sb *strings.Builder) error {
			t, err := TableI()
			if err != nil {
				return err
			}
			sb.WriteString(t.Render() + "\n")
			return nil
		}},
		{"table2", "Table II", func(sb *strings.Builder) error {
			t, err := TableII()
			if err != nil {
				return err
			}
			sb.WriteString(t.Render() + "\n")
			return nil
		}},
		{"table3", "Table III", func(sb *strings.Builder) error {
			t, err := TableIII()
			if err != nil {
				return err
			}
			sb.WriteString(t.Render() + "\n")
			return nil
		}},
		{"figure1", "Figure 1", func(sb *strings.Builder) error {
			f, err := Figure1()
			if err != nil {
				return err
			}
			sb.WriteString(f.Render() + "\n")
			return nil
		}},
		{"figure2", "Figure 2", func(sb *strings.Builder) error {
			f, err := Figure2()
			if err != nil {
				return err
			}
			sb.WriteString(f.Table().Render() + "\n")
			return nil
		}},
		{"figure3", "Figure 3", func(sb *strings.Builder) error {
			f, err := Figure3()
			if err != nil {
				return err
			}
			sb.WriteString("Figure 3 — generated ECU implementation model (CSPm):\n")
			for _, line := range strings.Split(strings.TrimRight(f, "\n"), "\n") {
				sb.WriteString("    " + line + "\n")
			}
			sb.WriteString("\n")
			return nil
		}},
		{"secure-variants", "secure variants", func(sb *strings.Builder) error {
			sec, err := SecureVariants()
			if err != nil {
				return err
			}
			sb.WriteString(SecureVariantsTable(sec).Render() + "\n")
			return nil
		}},
		{"attack-tree", "attack tree", func(sb *strings.Builder) error {
			at, err := AttackTree()
			if err != nil {
				return err
			}
			sb.WriteString(at.Render() + "\n")
			return nil
		}},
		{"needham-schroeder", "NSPK", func(sb *strings.Builder) error {
			ns, err := NeedhamSchroeder()
			if err != nil {
				return err
			}
			sb.WriteString(ns.Render() + "\n")
			return nil
		}},
		{"extensions", "extensions", func(sb *strings.Builder) error {
			ext, err := Extensions()
			if err != nil {
				return err
			}
			sb.WriteString(ExtensionsTable(ext).Render() + "\n")
			return nil
		}},
		{"fault-injection", "fault injection", func(sb *strings.Builder) error {
			fi, err := FaultInjection()
			if err != nil {
				return err
			}
			sb.WriteString(FaultTable(fi).Render() + "\n")
			return nil
		}},
		{"scalability", "scalability", func(sb *strings.Builder) error {
			sc, err := Scalability(scalabilitySizes)
			if err != nil {
				return err
			}
			sb.WriteString(ScalabilityTable(sc).Render() + "\n")
			return nil
		}},
	}

	for _, sec := range sections {
		span := o.StartSpan("experiments." + sec.name)
		err := sec.run(&sb)
		outcome := "ok"
		if err != nil {
			outcome = "error"
		}
		span.End(obs.String("outcome", outcome))
		o.Counter("experiments.sections").Inc()
		if err != nil {
			return sb.String(), fmt.Errorf("%s: %w", sec.label, err)
		}
	}
	return sb.String(), nil
}
