// Package candb parses CAN database files in the de facto standard
// textual .dbc format (section IV-B2 of the paper) and generates CSPm
// declarations from them — the "second parser and model generator" the
// paper's future-work section VIII-A calls for: message formats become
// CSPm datatype, nametype and channel declarations with data ranges.
// It also provides signal encode/decode against raw frame payloads, so
// the simulated network and the CAPL runtime can use real message
// layouts.
package candb

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Database is a parsed .dbc file.
type Database struct {
	Version  string
	Nodes    []string
	Messages []*Message
}

// Message is one BO_ entry.
type Message struct {
	ID      uint32
	Name    string
	DLC     int
	Sender  string
	Signals []*Signal
	Comment string
}

// Signal is one SG_ entry.
type Signal struct {
	Name         string
	StartBit     int
	Length       int
	LittleEndian bool // @1 Intel; @0 Motorola
	Signed       bool // '-' signed, '+' unsigned
	Factor       float64
	Offset       float64
	Min, Max     float64
	Unit         string
	Receivers    []string
	Comment      string
	// Values is the VAL_ table: raw value -> symbolic name.
	Values map[int64]string
}

// MessageByName finds a message by its symbolic name.
func (db *Database) MessageByName(name string) (*Message, bool) {
	for _, m := range db.Messages {
		if m.Name == name {
			return m, true
		}
	}
	return nil, false
}

// MessageByID finds a message by CAN identifier.
func (db *Database) MessageByID(id uint32) (*Message, bool) {
	for _, m := range db.Messages {
		if m.ID == id {
			return m, true
		}
	}
	return nil, false
}

// Signal finds a signal within the message.
func (m *Message) Signal(name string) (*Signal, bool) {
	for _, s := range m.Signals {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// ParseError is a .dbc syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("dbc:%d: %s", e.Line, e.Msg)
}

// Parse reads a .dbc database.
func Parse(src string) (*Database, error) {
	db := &Database{}
	var current *Message
	byID := map[uint32]*Message{}

	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		lineNo := i + 1
		line := strings.TrimSpace(raw)
		if line == "" {
			current = nilIfBare(line, current)
			continue
		}
		errf := func(format string, args ...any) error {
			return &ParseError{Line: lineNo, Msg: fmt.Sprintf(format, args...)}
		}
		switch {
		case strings.HasPrefix(line, "VERSION"):
			db.Version = strings.Trim(strings.TrimSpace(strings.TrimPrefix(line, "VERSION")), `"`)

		case strings.HasPrefix(line, "BU_:"):
			rest := strings.TrimSpace(strings.TrimPrefix(line, "BU_:"))
			if rest != "" {
				db.Nodes = strings.Fields(rest)
			}

		case strings.HasPrefix(line, "BO_ "):
			m, err := parseMessageLine(line)
			if err != nil {
				return nil, errf("%v", err)
			}
			if _, dup := byID[m.ID]; dup {
				return nil, errf("duplicate message id %d", m.ID)
			}
			byID[m.ID] = m
			db.Messages = append(db.Messages, m)
			current = m

		case strings.HasPrefix(line, "SG_ "):
			if current == nil {
				return nil, errf("signal outside a message definition")
			}
			s, err := parseSignalLine(line)
			if err != nil {
				return nil, errf("%v", err)
			}
			current.Signals = append(current.Signals, s)

		case strings.HasPrefix(line, "CM_ "):
			if err := parseComment(line, db); err != nil {
				return nil, errf("%v", err)
			}

		case strings.HasPrefix(line, "VAL_ "):
			if err := parseValTable(line, db); err != nil {
				return nil, errf("%v", err)
			}

		default:
			// NS_, BS_, attribute definitions etc. are tolerated and
			// skipped, as real-world .dbc files carry many sections.
		}
	}
	return db, nil
}

func nilIfBare(line string, cur *Message) *Message {
	if line == "" {
		return nil // blank line ends a message's signal block
	}
	return cur
}

// parseMessageLine parses: BO_ 257 SwInventoryReq: 8 VMG
func parseMessageLine(line string) (*Message, error) {
	fields := strings.Fields(line)
	if len(fields) < 5 {
		return nil, fmt.Errorf("malformed BO_ line %q", line)
	}
	id, err := strconv.ParseUint(fields[1], 10, 32)
	if err != nil {
		return nil, fmt.Errorf("bad message id %q", fields[1])
	}
	name := strings.TrimSuffix(fields[2], ":")
	dlc, err := strconv.Atoi(fields[3])
	if err != nil || dlc < 0 || dlc > 8 {
		return nil, fmt.Errorf("bad DLC %q", fields[3])
	}
	return &Message{ID: uint32(id), Name: name, DLC: dlc, Sender: fields[4]}, nil
}

// parseSignalLine parses:
// SG_ Counter : 0|8@1+ (1,0) [0|255] "" ECU,GW
func parseSignalLine(line string) (*Signal, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "SG_"))
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return nil, fmt.Errorf("malformed SG_ line %q", line)
	}
	name := strings.TrimSpace(rest[:colon])
	// Multiplexer indicators ("m0", "M") after the name are dropped.
	if sp := strings.IndexByte(name, ' '); sp >= 0 {
		name = name[:sp]
	}
	spec := strings.TrimSpace(rest[colon+1:])
	fields := strings.Fields(spec)
	if len(fields) < 4 {
		return nil, fmt.Errorf("malformed signal spec %q", spec)
	}
	s := &Signal{Name: name, Factor: 1}

	// 0|8@1+
	bitSpec := fields[0]
	at := strings.IndexByte(bitSpec, '@')
	pipe := strings.IndexByte(bitSpec, '|')
	if at < 0 || pipe < 0 || at < pipe {
		return nil, fmt.Errorf("malformed bit spec %q", bitSpec)
	}
	start, err := strconv.Atoi(bitSpec[:pipe])
	if err != nil || start < 0 {
		return nil, fmt.Errorf("bad start bit in %q", bitSpec)
	}
	length, err := strconv.Atoi(bitSpec[pipe+1 : at])
	if err != nil || length <= 0 || length > 64 {
		return nil, fmt.Errorf("bad length in %q", bitSpec)
	}
	order := bitSpec[at+1:]
	if len(order) != 2 {
		return nil, fmt.Errorf("bad byte order/sign in %q", bitSpec)
	}
	s.StartBit, s.Length = start, length
	s.LittleEndian = order[0] == '1'
	s.Signed = order[1] == '-'

	// (factor,offset)
	fo := strings.Trim(fields[1], "()")
	parts := strings.Split(fo, ",")
	if len(parts) != 2 {
		return nil, fmt.Errorf("malformed factor/offset %q", fields[1])
	}
	if s.Factor, err = strconv.ParseFloat(parts[0], 64); err != nil {
		return nil, fmt.Errorf("bad factor %q", parts[0])
	}
	if s.Offset, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return nil, fmt.Errorf("bad offset %q", parts[1])
	}

	// [min|max]
	mm := strings.Trim(fields[2], "[]")
	parts = strings.Split(mm, "|")
	if len(parts) != 2 {
		return nil, fmt.Errorf("malformed range %q", fields[2])
	}
	if s.Min, err = strconv.ParseFloat(parts[0], 64); err != nil {
		return nil, fmt.Errorf("bad min %q", parts[0])
	}
	if s.Max, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return nil, fmt.Errorf("bad max %q", parts[1])
	}

	// "unit" receivers
	s.Unit = strings.Trim(fields[3], `"`)
	if len(fields) >= 5 {
		s.Receivers = strings.Split(fields[4], ",")
	}
	return s, nil
}

// parseComment parses CM_ BO_ <id> "text"; and CM_ SG_ <id> <sig> "text";
func parseComment(line string, db *Database) error {
	body := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "CM_")), ";")
	fields := strings.SplitN(body, " ", 4)
	if len(fields) < 3 {
		return nil // global comment; ignore
	}
	switch fields[0] {
	case "BO_":
		id, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return fmt.Errorf("bad comment id %q", fields[1])
		}
		text := strings.Trim(strings.TrimSpace(strings.Join(fields[2:], " ")), `"`)
		if m, ok := db.MessageByID(uint32(id)); ok {
			m.Comment = text
		}
	case "SG_":
		if len(fields) < 4 {
			return fmt.Errorf("malformed signal comment")
		}
		id, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return fmt.Errorf("bad comment id %q", fields[1])
		}
		m, ok := db.MessageByID(uint32(id))
		if !ok {
			return nil
		}
		if s, ok := m.Signal(fields[2]); ok {
			s.Comment = strings.Trim(strings.TrimSpace(fields[3]), `"`)
		}
	}
	return nil
}

// parseValTable parses VAL_ <id> <signal> 0 "idle" 1 "active";
func parseValTable(line string, db *Database) error {
	body := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "VAL_")), ";")
	fields := strings.Fields(body)
	if len(fields) < 2 {
		return fmt.Errorf("malformed VAL_ line")
	}
	id, err := strconv.ParseUint(fields[0], 10, 32)
	if err != nil {
		return fmt.Errorf("bad VAL_ id %q", fields[0])
	}
	m, ok := db.MessageByID(uint32(id))
	if !ok {
		return nil
	}
	s, ok := m.Signal(fields[1])
	if !ok {
		return nil
	}
	s.Values = map[int64]string{}
	rest := strings.TrimSpace(body[len(fields[0])+1+len(fields[1]):])
	for rest != "" {
		rest = strings.TrimSpace(rest)
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			break
		}
		raw, err := strconv.ParseInt(rest[:sp], 10, 64)
		if err != nil {
			return fmt.Errorf("bad VAL_ raw value %q", rest[:sp])
		}
		rest = strings.TrimSpace(rest[sp:])
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("VAL_ name must be quoted")
		}
		end := strings.IndexByte(rest[1:], '"')
		if end < 0 {
			return fmt.Errorf("unterminated VAL_ name")
		}
		s.Values[raw] = rest[1 : 1+end]
		rest = rest[end+2:]
	}
	return nil
}

// --- Signal codec -----------------------------------------------------------

// Decode extracts the signal's physical value from a payload.
func (s *Signal) Decode(data []byte) float64 {
	raw := s.DecodeRaw(data)
	return float64(raw)*s.Factor + s.Offset
}

// DecodeRaw extracts the raw (unscaled) signal value.
func (s *Signal) DecodeRaw(data []byte) int64 {
	var raw uint64
	if s.LittleEndian {
		for i := 0; i < s.Length; i++ {
			bit := s.StartBit + i
			byteIdx, bitIdx := bit/8, bit%8
			// Truncated payloads (and hand-built signals with out-of-range
			// start bits) read as zero bits instead of indexing outside
			// data.
			if byteIdx < 0 || byteIdx >= len(data) {
				break
			}
			if data[byteIdx]&(1<<uint(bitIdx)) != 0 {
				raw |= 1 << uint(i)
			}
		}
	} else {
		// Motorola: start bit is the MSB; walk down within each byte.
		bit := s.StartBit
		for i := 0; i < s.Length; i++ {
			byteIdx, bitIdx := bit/8, bit%8
			if byteIdx >= 0 && byteIdx < len(data) && data[byteIdx]&(1<<uint(bitIdx)) != 0 {
				raw |= 1 << uint(s.Length-1-i)
			}
			if bitIdx == 0 {
				bit += 15 // next byte, MSB
			} else {
				bit--
			}
		}
	}
	if s.Signed && s.Length < 64 && raw&(1<<uint(s.Length-1)) != 0 {
		return int64(raw) - (1 << uint(s.Length))
	}
	return int64(raw)
}

// EncodeRaw writes the raw signal value into the payload.
func (s *Signal) EncodeRaw(data []byte, raw int64) error {
	uraw := uint64(raw)
	if s.Length < 64 {
		uraw &= (1 << uint(s.Length)) - 1
	}
	if s.LittleEndian {
		for i := 0; i < s.Length; i++ {
			bit := s.StartBit + i
			byteIdx, bitIdx := bit/8, bit%8
			if byteIdx < 0 || byteIdx >= len(data) {
				return fmt.Errorf("signal %s exceeds payload length %d", s.Name, len(data))
			}
			if uraw&(1<<uint(i)) != 0 {
				data[byteIdx] |= 1 << uint(bitIdx)
			} else {
				data[byteIdx] &^= 1 << uint(bitIdx)
			}
		}
		return nil
	}
	bit := s.StartBit
	for i := 0; i < s.Length; i++ {
		byteIdx, bitIdx := bit/8, bit%8
		if byteIdx < 0 || byteIdx >= len(data) {
			return fmt.Errorf("signal %s exceeds payload length %d", s.Name, len(data))
		}
		if uraw&(1<<uint(s.Length-1-i)) != 0 {
			data[byteIdx] |= 1 << uint(bitIdx)
		} else {
			data[byteIdx] &^= 1 << uint(bitIdx)
		}
		if bitIdx == 0 {
			bit += 15
		} else {
			bit--
		}
	}
	return nil
}

// Encode writes the physical value into the payload (rounded to the
// nearest raw step).
func (s *Signal) Encode(data []byte, physical float64) error {
	if s.Factor == 0 {
		return fmt.Errorf("signal %s has zero factor", s.Name)
	}
	// math.Round rounds half away from zero; the previous int64(x + 0.5)
	// truncation mis-rounded negative raw values (e.g. -2.4 became -1).
	raw := int64(math.Round((physical - s.Offset) / s.Factor))
	return s.EncodeRaw(data, raw)
}

// --- CSPm generation ---------------------------------------------------------

// CSPmOptions configures declaration generation.
type CSPmOptions struct {
	// MsgDatatype names the generated message datatype (default "Msgs").
	MsgDatatype string
	// Channels lists channel names to declare over the datatype
	// (default send, rec as in the paper's case study).
	Channels []string
	// IncludeSignals also emits a nametype with the raw range of every
	// signal and a datatype for every VAL_ table.
	IncludeSignals bool
}

// GenerateCSPm renders CSPm declarations for the database: the message
// set as a datatype, the communication channels, and (optionally)
// signal ranges as nametypes and value tables as datatypes.
func GenerateCSPm(db *Database, opts CSPmOptions) string {
	if opts.MsgDatatype == "" {
		opts.MsgDatatype = "Msgs"
	}
	if len(opts.Channels) == 0 {
		opts.Channels = []string{"send", "rec"}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "-- CSPm declarations generated from CAN database (version %q)\n", db.Version)
	if len(db.Nodes) > 0 {
		fmt.Fprintf(&sb, "-- Network nodes: %s\n", strings.Join(db.Nodes, ", "))
	}
	names := make([]string, 0, len(db.Messages))
	for _, m := range db.Messages {
		names = append(names, lowerFirst(m.Name))
	}
	fmt.Fprintf(&sb, "datatype %s = %s\n", opts.MsgDatatype, strings.Join(names, " | "))
	fmt.Fprintf(&sb, "channel %s : %s\n", strings.Join(opts.Channels, ", "), opts.MsgDatatype)
	if opts.IncludeSignals {
		for _, m := range db.Messages {
			for _, s := range m.Signals {
				if len(s.Values) > 0 {
					vals := make([]string, 0, len(s.Values))
					for raw := range s.Values {
						vals = append(vals, s.Values[raw])
					}
					sort.Strings(vals)
					fmt.Fprintf(&sb, "datatype %s_%s_Values = %s\n",
						m.Name, s.Name, strings.Join(vals, " | "))
					continue
				}
				hi := int64(1)<<uint(min(s.Length, 30)) - 1
				fmt.Fprintf(&sb, "nametype %s_%s = {0..%d}\n", m.Name, s.Name, hi)
			}
		}
	}
	return sb.String()
}

// CtorName returns the CSPm datatype constructor GenerateCSPm derives
// from a message name (leading letter lowered, matching the CAPL
// message-variable convention). Exported so trace projectors can map
// bus identifiers onto model events with the same rule the generated
// declarations use.
func CtorName(messageName string) string { return lowerFirst(messageName) }

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}
