package candb

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse asserts the DBC frontend is total and that everything
// downstream of a successful parse — CSPm generation and signal
// decoding — is panic-free too, since those run on whatever a parse
// accepts.
func FuzzParse(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.dbc"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no seed files in testdata")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("")
	f.Add("BO_ 1 M: 8\n SG_ S : 0|64@1+ (1,0) [0|0] \"\" X")
	f.Add("BO_ 99999999999999999999 M: 8 N")
	// Short-payload frames: the declared layout reaches past the DLC, so
	// decoding from a DLC-sized buffer exercises the truncation guards in
	// both byte orders.
	f.Add("BO_ 1 M: 1 N\n SG_ S : 0|16@1+ (1,0) [0|0] \"\" X")
	f.Add("BO_ 1 M: 1 N\n SG_ S : 7|16@0- (1,0) [0|0] \"\" X")
	f.Add("BO_ 1 M: 8 N\n SG_ S : -9|8@1+ (1,0) [0|0] \"\" X")
	f.Fuzz(func(t *testing.T, src string) {
		db, err := Parse(src)
		if err != nil {
			return
		}
		if db == nil {
			t.Fatal("Parse returned nil database without error")
		}
		_ = GenerateCSPm(db, CSPmOptions{})
		var zero [8]byte
		for _, m := range db.Messages {
			short := make([]byte, m.DLC)
			for i := range m.Signals {
				_ = m.Signals[i].Decode(zero[:])
				// A payload truncated to the declared DLC must decode
				// without panicking even when the signal layout overruns it.
				_ = m.Signals[i].Decode(short)
			}
		}
	})
}
