package candb

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cspm"
)

// otaDBC is the CAN database of the case-study network (Table II plus
// signal layouts).
const otaDBC = `VERSION "1.0"

NS_ :

BS_:

BU_: VMG ECU

BO_ 257 SwInventoryReq: 8 VMG
 SG_ Counter : 0|8@1+ (1,0) [0|255] "" ECU
 SG_ SessionId : 8|16@1+ (1,0) [0|65535] "" ECU

BO_ 258 SwInventoryRpt: 8 ECU
 SG_ Status : 0|4@1+ (1,0) [0|15] "" VMG
 SG_ SwVersion : 8|16@1+ (0.1,0) [0|6553] "" VMG

BO_ 259 ApplyUpdateReq: 8 VMG
 SG_ PackageId : 0|8@1+ (1,0) [0|255] "" ECU

BO_ 260 UpdateResultRpt: 8 ECU
 SG_ Result : 0|2@1+ (1,0) [0|3] "" VMG

CM_ BO_ 257 "Request diagnose software status";
CM_ SG_ 258 Status "Diagnosis outcome";
VAL_ 260 Result 0 "ok" 1 "failed" 2 "deferred";
`

func parseOTA(t *testing.T) *Database {
	t.Helper()
	db, err := Parse(otaDBC)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestParseStructure(t *testing.T) {
	db := parseOTA(t)
	if db.Version != "1.0" {
		t.Errorf("version = %q", db.Version)
	}
	if len(db.Nodes) != 2 || db.Nodes[0] != "VMG" || db.Nodes[1] != "ECU" {
		t.Errorf("nodes = %v", db.Nodes)
	}
	if len(db.Messages) != 4 {
		t.Fatalf("messages = %d, want 4", len(db.Messages))
	}
	req, ok := db.MessageByName("SwInventoryReq")
	if !ok {
		t.Fatal("SwInventoryReq missing")
	}
	if req.ID != 257 || req.DLC != 8 || req.Sender != "VMG" {
		t.Errorf("message = %+v", req)
	}
	if len(req.Signals) != 2 {
		t.Fatalf("signals = %d, want 2", len(req.Signals))
	}
	if req.Comment != "Request diagnose software status" {
		t.Errorf("comment = %q", req.Comment)
	}
}

func TestSignalAttributes(t *testing.T) {
	db := parseOTA(t)
	rpt, _ := db.MessageByName("SwInventoryRpt")
	ver, ok := rpt.Signal("SwVersion")
	if !ok {
		t.Fatal("SwVersion missing")
	}
	if ver.StartBit != 8 || ver.Length != 16 || !ver.LittleEndian || ver.Signed {
		t.Errorf("signal layout = %+v", ver)
	}
	if ver.Factor != 0.1 || ver.Offset != 0 || ver.Max != 6553 {
		t.Errorf("scaling = %+v", ver)
	}
	status, _ := rpt.Signal("Status")
	if status.Comment != "Diagnosis outcome" {
		t.Errorf("signal comment = %q", status.Comment)
	}
	res, _ := db.MessageByID(260)
	result, _ := res.Signal("Result")
	if len(result.Values) != 3 || result.Values[1] != "failed" {
		t.Errorf("value table = %v", result.Values)
	}
}

func TestSignalRoundTripLittleEndian(t *testing.T) {
	s := &Signal{Name: "S", StartBit: 4, Length: 12, LittleEndian: true, Factor: 1}
	prop := func(raw uint16) bool {
		v := int64(raw & 0xFFF)
		data := make([]byte, 8)
		if err := s.EncodeRaw(data, v); err != nil {
			return false
		}
		return s.DecodeRaw(data) == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSignalRoundTripMotorola(t *testing.T) {
	// Classic Motorola layout: start bit 7, 16 bits spanning two bytes.
	s := &Signal{Name: "S", StartBit: 7, Length: 16, LittleEndian: false, Factor: 1}
	prop := func(raw uint16) bool {
		data := make([]byte, 8)
		if err := s.EncodeRaw(data, int64(raw)); err != nil {
			return false
		}
		return s.DecodeRaw(data) == int64(raw)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSignedSignalDecoding(t *testing.T) {
	s := &Signal{Name: "S", StartBit: 0, Length: 8, LittleEndian: true, Signed: true, Factor: 1}
	data := make([]byte, 8)
	if err := s.EncodeRaw(data, -5); err != nil {
		t.Fatal(err)
	}
	if got := s.DecodeRaw(data); got != -5 {
		t.Errorf("decoded %d, want -5", got)
	}
}

func TestPhysicalScaling(t *testing.T) {
	db := parseOTA(t)
	rpt, _ := db.MessageByName("SwInventoryRpt")
	ver, _ := rpt.Signal("SwVersion")
	data := make([]byte, 8)
	if err := ver.Encode(data, 12.3); err != nil {
		t.Fatal(err)
	}
	got := ver.Decode(data)
	if got < 12.25 || got > 12.35 {
		t.Errorf("physical round-trip = %v, want ~12.3", got)
	}
}

// TestEncodeRoundsToNearest covers the Encode rounding fix: the old
// int64(x + 0.5) truncated toward zero and mis-rounded every negative
// raw value (raw -2.4 became -1).
func TestEncodeRoundsToNearest(t *testing.T) {
	cases := []struct {
		name           string
		factor, offset float64
		signed         bool
		physical       float64
		wantRaw        int64
	}{
		{"positive half up", 1, 0, false, 2.5, 3},
		{"positive below half", 1, 0, false, 2.4, 2},
		{"negative toward nearest", 1, 0, true, -2.4, -2},
		{"negative half away", 1, 0, true, -2.5, -3},
		{"negative near integer", 1, 0, true, -2.6, -3},
		{"negative offset", 1, -10, false, -7.6, 2},
		{"negative factor", -0.5, 0, true, 1.2, -2},
		{"factor and offset", 0.1, -5, true, -5.26, -3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &Signal{Name: "S", StartBit: 0, Length: 8, LittleEndian: true,
				Signed: tc.signed, Factor: tc.factor, Offset: tc.offset}
			data := make([]byte, 8)
			if err := s.Encode(data, tc.physical); err != nil {
				t.Fatal(err)
			}
			if got := s.DecodeRaw(data); got != tc.wantRaw {
				t.Errorf("Encode(%v) raw = %d, want %d", tc.physical, got, tc.wantRaw)
			}
		})
	}
}

// TestDecodeTruncatedPayload is the regression test for decoding
// signals whose layout reaches past a truncated payload: missing bytes
// read as zero bits instead of panicking, in both byte orders.
func TestDecodeTruncatedPayload(t *testing.T) {
	le := &Signal{Name: "S", StartBit: 0, Length: 16, LittleEndian: true, Factor: 1}
	if got := le.DecodeRaw([]byte{0xAB}); got != 0xAB {
		t.Errorf("little-endian truncated decode = %#x, want 0xAB", got)
	}
	mot := &Signal{Name: "S", StartBit: 7, Length: 16, LittleEndian: false, Factor: 1}
	if got := mot.DecodeRaw([]byte{0xAB}); got != 0xAB00 {
		t.Errorf("motorola truncated decode = %#x, want 0xAB00", got)
	}
	if got := le.DecodeRaw(nil); got != 0 {
		t.Errorf("empty payload decode = %d, want 0", got)
	}
}

// TestNegativeStartBitRejected covers the companion parser fix: a
// negative start bit made DecodeRaw index data[-1] before the codec
// guards landed, and no real .dbc ever carries one.
func TestNegativeStartBitRejected(t *testing.T) {
	_, err := Parse("BO_ 1 M: 8 N\n SG_ S : -9|8@1+ (1,0) [0|1] \"\" N\n")
	if err == nil {
		t.Fatal("negative start bit accepted")
	}
	if !strings.Contains(err.Error(), "bad start bit") {
		t.Errorf("error = %v, want 'bad start bit'", err)
	}
	// Hand-built signals bypass the parser; the codec guards must still
	// hold.
	s := &Signal{Name: "S", StartBit: -9, Length: 8, LittleEndian: true, Factor: 1}
	if got := s.DecodeRaw(make([]byte, 8)); got != 0 {
		t.Errorf("negative start bit decode = %d, want 0", got)
	}
	if err := s.EncodeRaw(make([]byte, 8), 1); err == nil {
		t.Error("negative start bit encode accepted")
	}
}

func TestSignalBeyondPayloadRejected(t *testing.T) {
	s := &Signal{Name: "S", StartBit: 60, Length: 8, LittleEndian: true, Factor: 1}
	if err := s.EncodeRaw(make([]byte, 8), 1); err == nil {
		t.Error("encoding past the payload accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"bad message", "BO_ x Name: 8 N\n", "bad message id"},
		{"bad dlc", "BO_ 1 Name: 99 N\n", "bad DLC"},
		{"orphan signal", " SG_ S : 0|8@1+ (1,0) [0|1] \"\" N\n", "signal outside"},
		{"dup id", "BO_ 5 A: 8 N\n\nBO_ 5 B: 8 N\n", "duplicate message id"},
		{"bad bitspec", "BO_ 1 A: 8 N\n SG_ S : zz (1,0) [0|1] \"\" N\n", "malformed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestGenerateCSPm(t *testing.T) {
	db := parseOTA(t)
	out := GenerateCSPm(db, CSPmOptions{})
	for _, want := range []string{
		"datatype Msgs = swInventoryReq | swInventoryRpt | applyUpdateReq | updateResultRpt",
		"channel send, rec : Msgs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("generated CSPm missing %q:\n%s", want, out)
		}
	}
	// The generated declarations must evaluate as CSPm.
	if _, err := cspm.Load(out); err != nil {
		t.Fatalf("generated declarations do not evaluate: %v\n%s", err, out)
	}
}

func TestGenerateCSPmWithSignals(t *testing.T) {
	db := parseOTA(t)
	out := GenerateCSPm(db, CSPmOptions{IncludeSignals: true})
	for _, want := range []string{
		"nametype SwInventoryReq_Counter = {0..255}",
		"datatype UpdateResultRpt_Result_Values = deferred | failed | ok",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("generated CSPm missing %q:\n%s", want, out)
		}
	}
	if _, err := cspm.Load(out); err != nil {
		t.Fatalf("signal declarations do not evaluate: %v\n%s", err, out)
	}
}
