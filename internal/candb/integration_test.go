package candb_test

import (
	"testing"

	"repro/internal/canbus"
	"repro/internal/candb"
	"repro/internal/canoe"
)

// TestSignalsOverSimulatedBus closes the loop between the CANdb layer
// and the CAPL runtime: a sensor node encodes a speed signal into its
// frame payload byte by byte, and the frame observed on the simulated
// bus decodes to the expected physical value through the database's
// signal definition.
func TestSignalsOverSimulatedBus(t *testing.T) {
	const dbcSrc = `VERSION "1"
BU_: Sensor Display

BO_ 512 VehicleSpeed: 8 Sensor
 SG_ Speed : 0|12@1+ (0.25,0) [0|1023] "km/h" Display
 SG_ Valid : 12|1@1+ (1,0) [0|1] "" Display
`
	db, err := candb.Parse(dbcSrc)
	if err != nil {
		t.Fatal(err)
	}
	msg, ok := db.MessageByName("VehicleSpeed")
	if !ok {
		t.Fatal("VehicleSpeed missing")
	}
	speed, _ := msg.Signal("Speed")
	valid, _ := msg.Signal("Valid")

	// The sensor encodes raw 400 (= 100 km/h at factor 0.25) into bits
	// 0..11 and sets the valid flag at bit 12.
	const sensorSrc = `
variables
{
  message 0x200 vehicleSpeed;
}
on start
{
  int raw;
  raw = 400;
  vehicleSpeed.byte(0) = raw & 0xFF;
  vehicleSpeed.byte(1) = ((raw >> 8) & 0x0F) | 0x10;  // valid bit at bit 12
  vehicleSpeed.DLC = 8;
  output(vehicleSpeed);
}
`
	sim := canoe.NewSimulation(canbus.Config{})
	if _, err := sim.AddNode("Sensor", sensorSrc); err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunAll(100); err != nil {
		t.Fatal(err)
	}
	trace := sim.Trace()
	if len(trace) != 1 {
		t.Fatalf("frames on bus = %d, want 1", len(trace))
	}
	frame := trace[0].Frame
	if frame.ID != msg.ID {
		t.Fatalf("frame id = %#x, want %#x", frame.ID, msg.ID)
	}
	if got := speed.Decode(frame.Data); got != 100 {
		t.Errorf("decoded speed = %v km/h, want 100", got)
	}
	if got := valid.DecodeRaw(frame.Data); got != 1 {
		t.Errorf("valid flag = %d, want 1", got)
	}
	// Round trip: encode through the database and compare payloads.
	reencoded := make([]byte, 8)
	if err := speed.Encode(reencoded, 100); err != nil {
		t.Fatal(err)
	}
	if err := valid.EncodeRaw(reencoded, 1); err != nil {
		t.Fatal(err)
	}
	for i := range reencoded {
		if reencoded[i] != frame.Data[i] {
			t.Errorf("byte %d: database encode %#x, CAPL encode %#x", i, reencoded[i], frame.Data[i])
		}
	}
}
