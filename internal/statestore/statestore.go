// Package statestore provides the visited-state index behind
// lts.Explore as a pluggable store with two implementations: the
// in-memory map exploration has always used (the default — byte-for-byte
// identical behaviour), and a hash-sharded disk-spilling store that
// activates past a configurable soft memory watermark, letting a single
// check's visited set exceed RAM instead of dying to the OOM killer.
//
// Keys are opaque byte strings — the interned-term node encodings
// csp.Interner produces — paired with their precomputed FNV-64a hash so
// the store never rehashes. A Store satisfies csp.InternTable, which is
// how exploration's visited set and the term interner share one
// spillable table.
//
// The store is deliberately not thread-safe: lts.Explore interns states
// in its sequential merge loop (that sequencing is what makes the
// LTS byte-identical at any worker count), so the store sees exactly one
// goroutine and synchronisation would be pure overhead.
package statestore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// Store is an interning index: a map from a key's bytes to the dense ID
// the caller assigned at first sight. The hash argument is always the
// FNV-64a of key, computed once by the caller. Implementations trade
// memory for disk; none of them influence ID assignment, so exploration
// results are identical whichever store backs them.
type Store interface {
	// Lookup returns the ID recorded for key, or ok=false if the key has
	// never been inserted.
	Lookup(hash uint64, key []byte) (id int, ok bool)
	// Insert records key with the given ID. The caller guarantees the key
	// is not already present (it looked it up first). The store copies
	// key; the caller may reuse the slice.
	Insert(hash uint64, key []byte, id int)
	// Len returns the number of entries.
	Len() int
	// Bytes estimates the resident (in-memory) size of the store,
	// including per-entry bookkeeping. Spilling stores exclude what lives
	// on disk.
	Bytes() int64
	// Close releases any resources (spill files). The store is unusable
	// afterwards.
	Close() error
}

// MemStore is the default in-memory store: a plain Go map, exactly what
// lts.Explore used before stores were pluggable.
type MemStore struct {
	m     map[string]int
	bytes int64
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore {
	return &MemStore{m: map[string]int{}}
}

// memEntryOverhead approximates the per-entry cost of a Go map[string]int
// beyond the key bytes themselves: the string header (16), the int (8)
// and amortised bucket overhead.
const memEntryOverhead = 48

// Lookup implements Store. The map hash is Go's own; the FNV hash is
// unused here.
func (s *MemStore) Lookup(_ uint64, key []byte) (int, bool) {
	id, ok := s.m[string(key)] // no allocation: the compiler optimises this lookup
	return id, ok
}

// Insert implements Store.
func (s *MemStore) Insert(_ uint64, key []byte, id int) {
	s.m[string(key)] = id
	s.bytes += int64(len(key)) + memEntryOverhead
}

// Len implements Store.
func (s *MemStore) Len() int { return len(s.m) }

// Bytes implements Store.
func (s *MemStore) Bytes() int64 { return s.bytes }

// Close implements Store; an in-memory store holds no resources.
func (s *MemStore) Close() error { return nil }

// SpillConfig configures a disk-spilling store.
type SpillConfig struct {
	// Dir is the directory spill shards are created under (a unique
	// subdirectory per store, removed on Close). Empty means os.TempDir().
	Dir string
	// SoftMemBytes is the resident-size watermark past which the store
	// migrates its keys to disk. 0 means spill immediately (useful in
	// tests); negative disables spilling entirely (the store stays an
	// in-memory map).
	SoftMemBytes int64
	// Shards is the number of append-only key files the spilled keys are
	// hash-partitioned over. 0 means DefaultShards.
	Shards int
	// Obs receives spill counters (activations, spilled keys, disk
	// reads); nil disables instrumentation.
	Obs *obs.Observer
}

// DefaultShards is the shard count used when SpillConfig.Shards is 0.
const DefaultShards = 16

// shardBufSize is the per-shard write buffer. Reads of not-yet-flushed
// keys are served straight from this buffer, so lookups never force a
// flush; the buffer bounds resident overhead at Shards*shardBufSize.
const shardBufSize = 64 << 10

// fnv64a matches the hash csp.Interner precomputes; the spill store
// only needs it when migrating pre-spill map entries whose hashes were
// not retained.
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// loc records where a spilled key lives: shard file, byte offset, key
// length, and the state ID it maps to. ~32 bytes per visited state
// versus the full key bytes (term-node keys of ParProc-heavy
// compositions run to dozens of bytes, legacy string keys to hundreds),
// which is the whole point of spilling.
type loc struct {
	off   int64
	id    int64
	klen  int32
	shard int32
}

// SpillStore is an interning index that starts as an in-memory map and,
// past the soft watermark, migrates keys to hash-sharded append-only
// files, keeping only an FNV-64 → location index in memory. Lookups
// verify candidate entries by reading the key bytes back, so a 64-bit
// hash collision can never alias two distinct states — the
// byte-identical exploration guarantee survives spilling.
type SpillStore struct {
	cfg SpillConfig

	// Pre-spill state.
	mem *MemStore

	// Post-spill state.
	spilled  bool
	dir      string
	files    []*os.File
	bufs     [][]byte // unflushed tail of each shard file
	flushed  []int64  // on-disk length of each shard file
	index    map[uint64][]loc
	count    int
	idxBytes int64

	activC *obs.Counter
	keysC  *obs.Counter
	readsC *obs.Counter
	diskG  *obs.Gauge
}

// spillEntryOverhead approximates the in-memory cost of one spilled
// entry: the loc struct plus amortised map-bucket overhead for the
// hash-keyed slice index.
const spillEntryOverhead = 56

// NewSpill returns a disk-spilling store. No files are created until the
// watermark trips.
func NewSpill(cfg SpillConfig) *SpillStore {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	return &SpillStore{
		cfg:    cfg,
		mem:    NewMem(),
		activC: cfg.Obs.Counter("statestore.spill.activations"),
		keysC:  cfg.Obs.Counter("statestore.spill.keys"),
		readsC: cfg.Obs.Counter("statestore.spill.reads"),
		diskG:  cfg.Obs.Gauge("statestore.spill.disk.bytes"),
	}
}

// Lookup implements Store.
func (s *SpillStore) Lookup(hash uint64, key []byte) (int, bool) {
	if !s.spilled {
		return s.mem.Lookup(hash, key)
	}
	for _, l := range s.index[hash] {
		if int(l.klen) != len(key) {
			continue
		}
		got, err := s.readKey(l)
		if err != nil {
			// A read failure on a file we wrote is a broken spill volume;
			// treating the key as absent would corrupt the exploration
			// (duplicate states, wrong verdicts), so fail loudly instead.
			panic(fmt.Sprintf("statestore: spill read failed: %v", err))
		}
		if bytes.Equal(got, key) {
			return int(l.id), true
		}
	}
	return 0, false
}

// Insert implements Store.
func (s *SpillStore) Insert(hash uint64, key []byte, id int) {
	if !s.spilled {
		s.mem.Insert(hash, key, id)
		if s.cfg.SoftMemBytes >= 0 && s.mem.Bytes() > s.cfg.SoftMemBytes {
			if err := s.activate(); err != nil {
				// Spilling is a capacity upgrade; if the disk is unusable the
				// store keeps working from memory (and the caller's hard
				// watermark, if any, still protects the process).
				s.cfg.SoftMemBytes = -1
			}
		}
		return
	}
	s.put(hash, key, id)
}

// activate migrates every in-memory entry to shard files and switches
// the store to spilled mode.
func (s *SpillStore) activate() error {
	base := s.cfg.Dir
	if base == "" {
		base = os.TempDir()
	}
	dir, err := os.MkdirTemp(base, "statestore-spill-*")
	if err != nil {
		return err
	}
	files := make([]*os.File, s.cfg.Shards)
	for i := range files {
		f, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("shard-%02d.keys", i)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
		if err != nil {
			for _, g := range files[:i] {
				_ = g.Close()
			}
			_ = os.RemoveAll(dir)
			return err
		}
		files[i] = f
	}
	s.dir = dir
	s.files = files
	s.bufs = make([][]byte, s.cfg.Shards)
	s.flushed = make([]int64, s.cfg.Shards)
	s.index = make(map[uint64][]loc, s.mem.Len()*2)
	s.spilled = true
	s.activC.Inc()
	for k, id := range s.mem.m {
		kb := []byte(k)
		s.put(fnv64a(kb), kb, id)
	}
	s.mem = nil
	return nil
}

// put appends the key to its shard and records its location.
func (s *SpillStore) put(hash uint64, key []byte, id int) {
	shard := int32(hash % uint64(s.cfg.Shards))
	off := s.flushed[shard] + int64(len(s.bufs[shard]))
	s.bufs[shard] = append(s.bufs[shard], key...)
	if len(s.bufs[shard]) >= shardBufSize {
		s.flush(shard)
	}
	s.index[hash] = append(s.index[hash], loc{off: off, id: int64(id), klen: int32(len(key)), shard: shard})
	s.count++
	s.idxBytes += spillEntryOverhead
	s.keysC.Inc()
	s.diskG.Add(int64(len(key)))
}

// flush writes the shard's buffered tail to its file.
func (s *SpillStore) flush(shard int32) {
	if len(s.bufs[shard]) == 0 {
		return
	}
	n, err := s.files[shard].WriteAt(s.bufs[shard], s.flushed[shard])
	if err != nil {
		panic(fmt.Sprintf("statestore: spill write failed: %v", err))
	}
	s.flushed[shard] += int64(n)
	s.bufs[shard] = s.bufs[shard][:0]
}

// readKey reads a spilled key back, serving not-yet-flushed bytes from
// the shard's write buffer so lookups don't force flushes.
func (s *SpillStore) readKey(l loc) ([]byte, error) {
	if l.off >= s.flushed[l.shard] {
		start := l.off - s.flushed[l.shard]
		return s.bufs[l.shard][start : start+int64(l.klen)], nil
	}
	s.readsC.Inc()
	buf := make([]byte, l.klen)
	if _, err := s.files[l.shard].ReadAt(buf, l.off); err != nil {
		return nil, err
	}
	return buf, nil
}

// Len implements Store.
func (s *SpillStore) Len() int {
	if !s.spilled {
		return s.mem.Len()
	}
	return s.count
}

// Bytes implements Store.
func (s *SpillStore) Bytes() int64 {
	if !s.spilled {
		return s.mem.Bytes()
	}
	buffered := int64(0)
	for _, b := range s.bufs {
		buffered += int64(len(b))
	}
	return s.idxBytes + buffered
}

// Spilled reports whether the store has migrated to disk.
func (s *SpillStore) Spilled() bool { return s.spilled }

// Close implements Store, removing the spill directory.
func (s *SpillStore) Close() error {
	if !s.spilled {
		s.mem = nil
		return nil
	}
	var first error
	for _, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.files = nil
	if err := os.RemoveAll(s.dir); err != nil && first == nil {
		first = err
	}
	return first
}
