package statestore

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// tLookup/tInsert adapt string keys to the (hash, bytes) interface the
// way csp.Interner does: precomputed FNV-64a over the key bytes.
func tLookup(s Store, key string) (int, bool) {
	kb := []byte(key)
	return s.Lookup(fnv64a(kb), kb)
}

func tInsert(s Store, key string, id int) {
	kb := []byte(key)
	s.Insert(fnv64a(kb), kb, id)
}

// driveStore inserts n keys and checks every lookup both before and
// after each insert, the access pattern lts.Explore produces.
func driveStore(t *testing.T, s Store, n int) {
	t.Helper()
	key := func(i int) string {
		// Variable-length keys of realistic size — canonical keys of
		// ParProc-heavy compositions run to hundreds of bytes.
		return fmt.Sprintf("(P%d [|{|net|}|] Q%s)", i, strings.Repeat("x", 180+i%97))
	}
	for i := 0; i < n; i++ {
		if _, ok := tLookup(s, key(i)); ok {
			t.Fatalf("key %d present before insert", i)
		}
		tInsert(s, key(i), i)
		if got, ok := tLookup(s, key(i)); !ok || got != i {
			t.Fatalf("lookup after insert: got (%d,%v), want (%d,true)", got, ok, i)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	// Re-check everything at the end (spilled entries now on disk).
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if got, ok := tLookup(s, key(i)); !ok || got != i {
			t.Fatalf("final lookup %d: got (%d,%v)", i, got, ok)
		}
	}
	if _, ok := tLookup(s, "never-inserted"); ok {
		t.Fatal("lookup of absent key reported present")
	}
}

func TestMemStore(t *testing.T) {
	s := NewMem()
	driveStore(t, s, 500)
	if s.Bytes() <= 0 {
		t.Fatal("Bytes() not accounted")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestSpillStoreNeverTrips(t *testing.T) {
	s := NewSpill(SpillConfig{Dir: t.TempDir(), SoftMemBytes: 1 << 30})
	driveStore(t, s, 500)
	if s.Spilled() {
		t.Fatal("store spilled below the watermark")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestSpillStoreSpills(t *testing.T) {
	o := obs.New()
	dir := t.TempDir()
	s := NewSpill(SpillConfig{Dir: dir, SoftMemBytes: 4 << 10, Shards: 4, Obs: o})
	driveStore(t, s, 3000)
	if !s.Spilled() {
		t.Fatal("store never spilled past a 4KiB watermark")
	}
	if got := o.Counter("statestore.spill.activations").Value(); got != 1 {
		t.Fatalf("activations counter = %d, want 1", got)
	}
	if got := o.Counter("statestore.spill.keys").Value(); got != 3000 {
		t.Fatalf("spilled-keys counter = %d, want 3000", got)
	}
	if got := o.Gauge("statestore.spill.disk.bytes").Value(); got <= 0 {
		t.Fatal("disk-bytes gauge not accounted")
	}
	// Shard files must exist while open.
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("spill dir entries: %v, %v", ents, err)
	}
	// Resident size must be far below what the raw keys occupy.
	raw := int64(0)
	for i := 0; i < 3000; i++ {
		raw += int64(len(fmt.Sprintf("(P%d [|{|net|}|] Q%s)", i, strings.Repeat("x", 180+i%97))))
	}
	if s.Bytes() > raw {
		t.Fatalf("spilled resident bytes %d not below raw key bytes %d", s.Bytes(), raw)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ents, err = os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir after close: %v", err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not cleaned up: %v", ents)
	}
}

func TestSpillStoreImmediateSpill(t *testing.T) {
	// SoftMemBytes 0 trips on the first insert — the configuration the
	// lts spill-mode tests use to force disk from the start.
	s := NewSpill(SpillConfig{Dir: t.TempDir(), SoftMemBytes: 0})
	driveStore(t, s, 200)
	if !s.Spilled() {
		t.Fatal("watermark 0 did not spill immediately")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestSpillStoreHashCollision(t *testing.T) {
	// Force two distinct keys into the same index bucket by inserting
	// directly with a rigged hash: simulate by checking that same-length
	// different keys with (astronomically unlikely) equal hashes would be
	// disambiguated. We can't manufacture an FNV-64 collision cheaply, so
	// instead verify the verification path: same-length keys sharing a
	// bucket via modulo shard assignment still resolve correctly.
	s := NewSpill(SpillConfig{Dir: t.TempDir(), SoftMemBytes: 0, Shards: 1})
	const n = 2000
	for i := 0; i < n; i++ {
		tInsert(s, fmt.Sprintf("key-%04d", i), i)
	}
	for i := 0; i < n; i++ {
		if got, ok := tLookup(s, fmt.Sprintf("key-%04d", i)); !ok || got != i {
			t.Fatalf("lookup %d: got (%d,%v)", i, got, ok)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestSpillStoreRiggedHashCollision(t *testing.T) {
	// The hash is caller-supplied, so a real collision is now testable:
	// two distinct same-length keys inserted under the same hash must be
	// disambiguated by the byte-verified read path.
	s := NewSpill(SpillConfig{Dir: t.TempDir(), SoftMemBytes: -1})
	s.spilled = false
	// Force spilled mode with a fresh insert below, then rig the hash.
	s.cfg.SoftMemBytes = 0
	tInsert(s, "seed-key", 0)
	if !s.Spilled() {
		t.Fatal("setup: store did not spill")
	}
	const rigged = uint64(0xdeadbeefcafef00d)
	s.Insert(rigged, []byte("collide-A"), 1)
	s.Insert(rigged, []byte("collide-B"), 2)
	if got, ok := s.Lookup(rigged, []byte("collide-A")); !ok || got != 1 {
		t.Fatalf("collide-A: got (%d,%v), want (1,true)", got, ok)
	}
	if got, ok := s.Lookup(rigged, []byte("collide-B")); !ok || got != 2 {
		t.Fatalf("collide-B: got (%d,%v), want (2,true)", got, ok)
	}
	if _, ok := s.Lookup(rigged, []byte("collide-C")); ok {
		t.Fatal("absent key under colliding hash reported present")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("content = %q, want v1", got)
	}
	if err := WriteFileAtomic(path, []byte("v2"), 0o644); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2" {
		t.Fatalf("content = %q, want v2", got)
	}
	// No temp debris left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want 1: %v", len(ents), ents)
	}
	// Missing parent directory errors instead of panicking.
	if err := WriteFileAtomic(filepath.Join(dir, "no-such", "f"), nil, 0o644); err == nil {
		t.Fatal("write into missing directory: want error")
	}
}
