package statestore

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path such that a crash at any point
// leaves either the old content or the new content, never a torn file:
// the bytes go to a temp file in the same directory, are fsynced, and
// the temp file is renamed over the destination. This is the write
// primitive for checkpoints and durable job records — everything the
// resume paths trust after a SIGKILL.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	return nil
}
