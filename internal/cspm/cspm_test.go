package cspm

import (
	"strings"
	"testing"

	"repro/internal/csp"
	"repro/internal/refine"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("channel send, rec : Msgs -- comment\nP = send.reqSw -> P")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokKind, len(toks))
	for i, tk := range toks {
		kinds[i] = tk.Kind
	}
	want := []TokKind{
		TokChannel, TokIdent, TokComma, TokIdent, TokColon, TokIdent,
		TokIdent, TokEquals, TokIdent, TokDot, TokIdent, TokArrow, TokIdent,
		TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestLexCompositeOperators(t *testing.T) {
	src := `[] |~| ||| [| |] [[ ]] <- [T= [F= :[ {| |} -> .. == != <= >=`
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokBox, TokIntCh, TokIleave, TokLPar, TokRPar, TokLRename,
		TokRRename, TokLArrow, TokRefT, TokRefF, TokColLBrack, TokLProd,
		TokRProd, TokArrow, TokDotDot, TokEq, TokNe, TokLe, TokGe, TokEOF,
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexBlockComment(t *testing.T) {
	toks, err := Lex("P {- ignore\nme -} = STOP")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // P = STOP EOF
		t.Errorf("tokens = %v, want 4", toks)
	}
	if _, err := Lex("{- unterminated"); err == nil {
		t.Error("unterminated block comment accepted")
	}
}

func TestLexErrorPosition(t *testing.T) {
	_, err := Lex("P = STOP\n  $")
	if err == nil {
		t.Fatal("expected lex error for $")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T, want *SyntaxError", err)
	}
	if se.Line != 2 || se.Col != 3 {
		t.Errorf("error at %d:%d, want 2:3", se.Line, se.Col)
	}
}

// paperScript is essentially the generated model of Figure 3 plus the
// SP_02 specification and the assertion of section V-B.
const paperScript = `
-- OTA software update case study (ITU-T X.1373 subset).
datatype Msgs = reqSw | rptSw | reqApp | rptUpd
channel send, rec : Msgs

SP02 = send.reqSw -> rec.rptSw -> SP02

VMG = send.reqSw -> rec?resp -> VMG
ECU = send?req -> (if req == reqSw then rec!rptSw -> ECU else rec!rptUpd -> ECU)

SYSTEM = VMG [| {| send, rec |} |] ECU

assert SP02 [T= SYSTEM
assert SYSTEM :[deadlock free]
`

func TestParsePaperScript(t *testing.T) {
	s, err := Parse(paperScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Decls) != 6 {
		t.Errorf("decls = %d, want 6", len(s.Decls))
	}
	if len(s.Asserts) != 2 {
		t.Fatalf("asserts = %d, want 2", len(s.Asserts))
	}
	if s.Asserts[0].Kind != AssertTraceRef {
		t.Errorf("first assertion kind = %v, want [T=", s.Asserts[0].Kind)
	}
	if s.Asserts[1].Kind != AssertDeadlockFree {
		t.Errorf("second assertion kind = %v, want deadlock free", s.Asserts[1].Kind)
	}
}

func TestEvaluateAndCheckPaperScript(t *testing.T) {
	m, err := Load(paperScript)
	if err != nil {
		t.Fatal(err)
	}
	c := refine.NewChecker(m.Env, m.Ctx)
	res, err := c.RefinesTraces(m.Asserts[0].Spec, m.Asserts[0].Impl)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("SP02 [T= SYSTEM failed: %s %s", res.Counterexample, res.Reason)
	}
	resDl, err := c.DeadlockFree(m.Asserts[1].Impl)
	if err != nil {
		t.Fatal(err)
	}
	if !resDl.Holds {
		t.Errorf("SYSTEM deadlocks: %s", resDl.Reason)
	}
}

func TestEvaluateFlawedScriptFindsCounterexample(t *testing.T) {
	flawed := `
datatype Msgs = reqSw | rptSw | reqApp | rptUpd
channel send, rec : Msgs
SP02 = send.reqSw -> rec.rptSw -> SP02
BADECU = send?req -> rec!rptUpd -> BADECU
VMG = send.reqSw -> rec?resp -> VMG
SYSTEM = VMG [| {| send, rec |} |] BADECU
assert SP02 [T= SYSTEM
`
	m, err := Load(flawed)
	if err != nil {
		t.Fatal(err)
	}
	c := refine.NewChecker(m.Env, m.Ctx)
	res, err := c.RefinesTraces(m.Asserts[0].Spec, m.Asserts[0].Impl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("flawed ECU must violate SP02")
	}
	if res.BadEvent == nil || res.BadEvent.String() != "rec.rptUpd" {
		t.Errorf("bad event = %v, want rec.rptUpd", res.BadEvent)
	}
}

func TestParameterisedProcesses(t *testing.T) {
	src := `
channel tick : {0..5}
COUNT(n) = n < 3 & tick!n -> COUNT(n+1)
`
	m, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	sem := csp.NewSemantics(m.Env, m.Ctx)
	ts, err := csp.Traces(sem, csp.Call("COUNT", csp.LitInt(0)), 5)
	if err != nil {
		t.Fatal(err)
	}
	want := csp.Trace{
		csp.Ev("tick", csp.Int(0)), csp.Ev("tick", csp.Int(1)), csp.Ev("tick", csp.Int(2)),
	}
	if !ts.Contains(want) {
		t.Errorf("missing trace %s", want)
	}
	if ts.Contains(csp.Trace{csp.Ev("tick", csp.Int(1))}) {
		t.Error("counter started at wrong value")
	}
}

func TestRestrictedInput(t *testing.T) {
	src := `
datatype M = a | b | c
channel ch : M
P = ch?x:{a, b} -> STOP
`
	m, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	sem := csp.NewSemantics(m.Env, m.Ctx)
	ts, err := csp.Traces(sem, csp.Call("P"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Len() != 3 { // <>, <ch.a>, <ch.b>
		t.Errorf("traces = %v, want 3 entries", ts.Slice())
	}
	if ts.Contains(csp.Trace{csp.Ev("ch", csp.Sym("c"))}) {
		t.Error("restricted input accepted excluded value c")
	}
}

func TestNametypeAndRanges(t *testing.T) {
	src := `
nametype Small = {1..3}
channel n : Small
P = n?x -> P
`
	m, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := m.Ctx.EventsOf("n")
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Errorf("channel n has %d events, want 3", len(evs))
	}
}

func TestDatatypeWithPayloadInScript(t *testing.T) {
	src := `
datatype Key = k1 | k2
datatype Packet = plain.Key | handshake
channel net : Packet
P = net!(plain.k1) -> STOP
Q = net?p -> STOP
`
	m, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	sem := csp.NewSemantics(m.Env, m.Ctx)
	ts, err := csp.Traces(sem, csp.Call("P"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Contains(csp.Trace{csp.Ev("net", csp.NewDotted("plain", csp.Sym("k1")))}) {
		t.Errorf("missing net.plain.k1; have %v", ts.Slice())
	}
	tq, err := csp.Traces(sem, csp.Call("Q"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if tq.Len() != 4 { // <> + 3 packets (plain.k1, plain.k2, handshake)
		t.Errorf("input over Packet gives %d traces, want 4", tq.Len())
	}
}

func TestHidingAndRenamingParse(t *testing.T) {
	src := `
channel a, b, c
P = (a -> b -> STOP) \ {| a |}
Q = (a -> STOP)[[a <- c]]
`
	m, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	sem := csp.NewSemantics(m.Env, m.Ctx)
	ts, err := csp.Traces(sem, csp.Call("P"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Contains(csp.Trace{csp.Ev("b")}) || ts.Contains(csp.Trace{csp.Ev("a")}) {
		t.Errorf("hiding wrong: %v", ts.Slice())
	}
	tq, err := csp.Traces(sem, csp.Call("Q"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tq.Contains(csp.Trace{csp.Ev("c")}) {
		t.Errorf("renaming wrong: %v", tq.Slice())
	}
}

func TestSequentialAndInterleaveParse(t *testing.T) {
	src := `
channel a, b
P = (a -> SKIP) ; (b -> SKIP)
Q = (a -> SKIP) ||| (b -> SKIP)
`
	m, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	sem := csp.NewSemantics(m.Env, m.Ctx)
	tp, err := csp.Traces(sem, csp.Call("P"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Contains(csp.Trace{csp.Ev("a"), csp.Ev("b"), csp.Tick()}) {
		t.Error("sequential composition broken")
	}
	if tp.Contains(csp.Trace{csp.Ev("b")}) {
		t.Error("sequence allowed b first")
	}
	tq, err := csp.Traces(sem, csp.Call("Q"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !tq.Contains(csp.Trace{csp.Ev("b"), csp.Ev("a"), csp.Tick()}) {
		t.Error("interleave missing b-first order")
	}
}

func TestPrefixPrecedenceOverChoice(t *testing.T) {
	// a -> STOP [] b -> STOP must parse as (a->STOP) [] (b->STOP).
	src := "channel a, b\nP = a -> STOP [] b -> STOP\n"
	m, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	sem := csp.NewSemantics(m.Env, m.Ctx)
	ts, err := csp.Traces(sem, csp.Call("P"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Contains(csp.Trace{csp.Ev("a")}) || !ts.Contains(csp.Trace{csp.Ev("b")}) {
		t.Errorf("choice parse wrong: %v", ts.Slice())
	}
}

func TestRoundTripPrintParse(t *testing.T) {
	srcs := []string{
		paperScript,
		"channel a, b\nP = a -> STOP [] b -> SKIP\nassert P :[deadlock free]\n",
		"channel t : {0..3}\nC(n) = n < 3 & t!n -> C(n+1)\n",
		"channel a, b\nP = (a -> SKIP ||| b -> SKIP) \\ {| b |}\n",
		"datatype K = k1 | k2\nchannel e : K\nP = e?x -> (if x == k1 then P else STOP)\n",
		"channel a, b\nP = a -> STOP |~| b -> STOP\nassert P [F= P\n",
	}
	for _, src := range srcs {
		first, err := Parse(src)
		if err != nil {
			t.Fatalf("parse original: %v\n%s", err, src)
		}
		printed := Print(first)
		second, err := Parse(printed)
		if err != nil {
			t.Fatalf("parse printed form: %v\n%s", err, printed)
		}
		if again := Print(second); again != printed {
			t.Errorf("print not stable:\nfirst:\n%s\nsecond:\n%s", printed, again)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined process", "channel a\nP = Q\n", "undefined process"},
		{"undeclared channel", "P = a -> STOP\n", "undeclared channel"},
		{"unknown identifier", "channel c : {0..3}\nP = c!x -> STOP\n", "unknown identifier"},
		{"dup process", "channel a\nP = a -> STOP\nP = STOP\n", "defined twice"},
		{"dup type", "datatype T = x\ndatatype T = y\n", "declared twice"},
		{"ctor arity", "datatype T = f.{0..1}\nchannel c : T\nP = c!f -> STOP\n", "expects 1 argument"},
		{"call arity", "channel a\nP(n) = a -> STOP\nQ = P(1, 2)\n", "expects 1 argument"},
		{"bad rename", "channel a\nP = (a -> STOP)[[a <- zz]]\n", "undeclared channel"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"P = ",
		"channel",
		"P = a ->",
		"assert P",
		"P = a.b", // communication without ->
		"datatype T =",
		"P = (a -> STOP",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseProcessStandalone(t *testing.T) {
	p, err := ParseProcess("a -> STOP [] SKIP")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(BinProcE); !ok {
		t.Errorf("parsed %T, want BinProcE", p)
	}
	if _, err := ParseProcess("a -> STOP trailing"); err == nil {
		t.Error("trailing tokens accepted")
	}
}

func TestAssertTextPreserved(t *testing.T) {
	s, err := Parse(paperScript)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Asserts[0].Text, "[T=") {
		t.Errorf("assertion text = %q, want it to mention [T=", s.Asserts[0].Text)
	}
}

func TestReplicatedExternalChoice(t *testing.T) {
	src := `
datatype M = m1 | m2 | m3
channel ch : M
P = [] x:M @ ch!x -> STOP
`
	m, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	sem := csp.NewSemantics(m.Env, m.Ctx)
	ts, err := csp.Traces(sem, csp.Call("P"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Len() != 4 { // <> plus one trace per member
		t.Errorf("traces = %v, want 4 entries", ts.Slice())
	}
	for _, name := range []string{"m1", "m2", "m3"} {
		if !ts.Contains(csp.Trace{csp.Ev("ch", csp.Sym(name))}) {
			t.Errorf("missing branch for %s", name)
		}
	}
}

func TestReplicatedInterleave(t *testing.T) {
	src := `
channel tick : {0..2}
P = ||| n:{0..2} @ tick!n -> SKIP
`
	m, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	sem := csp.NewSemantics(m.Env, m.Ctx)
	ts, err := csp.Traces(sem, csp.Call("P"), 4)
	if err != nil {
		t.Fatal(err)
	}
	want := csp.Trace{
		csp.Ev("tick", csp.Int(2)), csp.Ev("tick", csp.Int(0)),
		csp.Ev("tick", csp.Int(1)), csp.Tick(),
	}
	if !ts.Contains(want) {
		t.Errorf("interleaving missing permutation %s", want)
	}
}

func TestReplicatedRoundTrip(t *testing.T) {
	src := "datatype M = m1 | m2\nchannel ch : M\nP = [] x:M @ ch!x -> STOP\n"
	first, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(first)
	second, err := Parse(printed)
	if err != nil {
		t.Fatalf("printed form does not parse: %v\n%s", err, printed)
	}
	if Print(second) != printed {
		t.Errorf("replicated print not stable:\n%s", printed)
	}
}

func TestReplicatedErrors(t *testing.T) {
	if _, err := Load("channel a\nP = [] x: @ a -> STOP\n"); err == nil {
		t.Error("missing set accepted")
	}
	if _, err := Load("channel a\nP = [] x:{1..2} a -> STOP\n"); err == nil {
		t.Error("missing @ accepted")
	}
}

func TestFDAssertionParsesAndRuns(t *testing.T) {
	src := `
channel a
P = a -> P
assert P [FD= P
assert P [FD= (P \ {| a |})
`
	m, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Asserts) != 2 || m.Asserts[0].Kind != AssertFDRef {
		t.Fatalf("asserts = %+v", m.Asserts)
	}
	c := refine.NewChecker(m.Env, m.Ctx)
	res, err := c.RefinesFD(m.Asserts[0].Spec, m.Asserts[0].Impl)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Error("P [FD= P failed")
	}
	res, err = c.RefinesFD(m.Asserts[1].Spec, m.Asserts[1].Impl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("hidden loop accepted under [FD=")
	}
}

// TestLoadMalformedIsTotal pins the no-panic contract of the CSPm
// frontend: garbage and truncated inputs must come back as errors, not
// panics — the conformance harness feeds Load whatever the extraction
// pipeline produced and contains failures as interpreter-error verdicts.
func TestLoadMalformedIsTotal(t *testing.T) {
	cases := []string{
		"channel",
		"channel a : ",
		"P = ",
		"P = a -> ",
		"P = (a -> STOP",
		"P = STOP [] ",
		"P Q R",
		"assert",
		"assert P [T=",
		"datatype D =",
		"P = P [[ a <- ]]",
		"\x00\xff\xfe",
		"P = if a then STOP",
		"channel a\nP = a -> P\nassert P [X= P",
	}
	for _, src := range cases {
		if _, err := Load(src); err == nil {
			t.Errorf("Load(%q) succeeded, want error", src)
		}
	}
}
