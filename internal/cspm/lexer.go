package cspm

import (
	"fmt"
	"strconv"
	"unicode"
)

// SyntaxError is a lexical or parse error with source position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("cspm:%d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

// Lex tokenises an entire CSPm source, returning the token stream
// terminated by TokEOF.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var out []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

func (lx *lexer) peek() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peekAt(n int) rune {
	if lx.pos+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+n]
}

func (lx *lexer) advance() rune {
	r := lx.src[lx.pos]
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *lexer) errf(format string, args ...any) error {
	return &SyntaxError{Line: lx.line, Col: lx.col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		r := lx.peek()
		switch {
		case unicode.IsSpace(r):
			lx.advance()
		case r == '-' && lx.peekAt(1) == '-':
			// Line comment. But "->" must not be eaten: '--' is safe.
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case r == '{' && lx.peekAt(1) == '-':
			// Block comment {- ... -}, nesting not supported (as in CSPm).
			startLine, startCol := lx.line, lx.col
			lx.advance()
			lx.advance()
			for {
				if lx.pos >= len(lx.src) {
					return &SyntaxError{Line: startLine, Col: startCol, Msg: "unterminated block comment"}
				}
				if lx.peek() == '-' && lx.peekAt(1) == '}' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || r == '\'' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: lx.line, Col: lx.col}
	if lx.pos >= len(lx.src) {
		tok.Kind = TokEOF
		return tok, nil
	}
	r := lx.peek()

	switch {
	case isIdentStart(r):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentCont(lx.peek()) {
			lx.advance()
		}
		text := string(lx.src[start:lx.pos])
		if kw, ok := keywords[text]; ok {
			tok.Kind = kw
			tok.Text = text
			return tok, nil
		}
		tok.Kind = TokIdent
		tok.Text = text
		return tok, nil

	case unicode.IsDigit(r):
		start := lx.pos
		for lx.pos < len(lx.src) && unicode.IsDigit(lx.peek()) {
			lx.advance()
		}
		text := string(lx.src[start:lx.pos])
		n, err := strconv.Atoi(text)
		if err != nil {
			return Token{}, lx.errf("bad integer literal %q", text)
		}
		tok.Kind = TokInt
		tok.Int = n
		tok.Text = text
		return tok, nil
	}

	two := string(r) + string(lx.peekAt(1))
	three := two + string(lx.peekAt(2))
	four := three + string(lx.peekAt(3))

	consume := func(kind TokKind, n int) (Token, error) {
		for i := 0; i < n; i++ {
			lx.advance()
		}
		tok.Kind = kind
		return tok, nil
	}

	if four == "[FD=" {
		return consume(TokRefFD, 4)
	}
	switch three {
	case "|~|":
		return consume(TokIntCh, 3)
	case "|||":
		return consume(TokIleave, 3)
	case "[T=":
		return consume(TokRefT, 3)
	case "[F=":
		return consume(TokRefF, 3)
	}
	switch two {
	case "->":
		return consume(TokArrow, 2)
	case "{|":
		return consume(TokLProd, 2)
	case "|}":
		return consume(TokRProd, 2)
	case "[]":
		return consume(TokBox, 2)
	case "[|":
		return consume(TokLPar, 2)
	case "|]":
		return consume(TokRPar, 2)
	case "[[":
		return consume(TokLRename, 2)
	case "]]":
		return consume(TokRRename, 2)
	case "<-":
		return consume(TokLArrow, 2)
	case "==":
		return consume(TokEq, 2)
	case "!=":
		return consume(TokNe, 2)
	case "<=":
		return consume(TokLe, 2)
	case ">=":
		return consume(TokGe, 2)
	case "..":
		return consume(TokDotDot, 2)
	case ":[":
		return consume(TokColLBrack, 2)
	}
	switch r {
	case '=':
		return consume(TokEquals, 1)
	case '(':
		return consume(TokLParen, 1)
	case ')':
		return consume(TokRParen, 1)
	case '{':
		return consume(TokLBrace, 1)
	case '}':
		return consume(TokRBrace, 1)
	case ',':
		return consume(TokComma, 1)
	case ':':
		return consume(TokColon, 1)
	case ';':
		return consume(TokSemi, 1)
	case '|':
		return consume(TokBar, 1)
	case '.':
		return consume(TokDot, 1)
	case '?':
		return consume(TokQuestion, 1)
	case '!':
		return consume(TokBang, 1)
	case '\\':
		return consume(TokBackslash, 1)
	case '&':
		return consume(TokAmp, 1)
	case '@':
		return consume(TokAt, 1)
	case '<':
		return consume(TokLt, 1)
	case '>':
		return consume(TokGt, 1)
	case '+':
		return consume(TokPlus, 1)
	case '-':
		return consume(TokMinus, 1)
	case '*':
		return consume(TokStar, 1)
	case '/':
		return consume(TokSlash, 1)
	case '%':
		return consume(TokPercent, 1)
	case ']':
		return consume(TokRBrack, 1)
	}
	return Token{}, lx.errf("unexpected character %q", string(r))
}
