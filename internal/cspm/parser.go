package cspm

import (
	"fmt"
)

// Parse lexes and parses a CSPm source into a Script.
func Parse(src string) (*Script, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseScript()
}

// ParseProcess parses a single process expression, used by tests and by
// tools that accept process expressions on the command line.
func ParseProcess(src string) (ProcExpr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	proc, err := p.parseProc()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errf("unexpected %s after process expression", p.peek())
	}
	return proc, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) peek2() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k TokKind) (Token, bool) {
	if p.peek().Kind == k {
		return p.advance(), true
	}
	return Token{}, false
}

func (p *parser) expect(k TokKind) (Token, error) {
	if p.peek().Kind == k {
		return p.advance(), nil
	}
	return Token{}, p.errf("expected %s, found %s", k, p.peek())
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return &SyntaxError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseScript() (*Script, error) {
	s := &Script{}
	for p.peek().Kind != TokEOF {
		switch p.peek().Kind {
		case TokChannel:
			d, err := p.parseChannelDecl()
			if err != nil {
				return nil, err
			}
			s.Decls = append(s.Decls, d)
		case TokDatatype:
			d, err := p.parseDatatypeDecl()
			if err != nil {
				return nil, err
			}
			s.Decls = append(s.Decls, d)
		case TokNametype:
			d, err := p.parseNametypeDecl()
			if err != nil {
				return nil, err
			}
			s.Decls = append(s.Decls, d)
		case TokAssert:
			a, err := p.parseAssert()
			if err != nil {
				return nil, err
			}
			s.Asserts = append(s.Asserts, a)
		case TokIdent:
			d, err := p.parseProcDef()
			if err != nil {
				return nil, err
			}
			s.Decls = append(s.Decls, d)
		default:
			return nil, p.errf("expected declaration, found %s", p.peek())
		}
	}
	return s, nil
}

func (p *parser) parseChannelDecl() (Decl, error) {
	if _, err := p.expect(TokChannel); err != nil {
		return nil, err
	}
	var names []string
	for {
		id, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		names = append(names, id.Text)
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	var fields []TypeExpr
	if _, ok := p.accept(TokColon); ok {
		for {
			te, err := p.parseTypeExpr()
			if err != nil {
				return nil, err
			}
			fields = append(fields, te)
			if _, ok := p.accept(TokDot); !ok {
				break
			}
		}
	}
	return ChannelDecl{Names: names, Fields: fields}, nil
}

func (p *parser) parseTypeExpr() (TypeExpr, error) {
	switch p.peek().Kind {
	case TokIdent:
		return TypeRef{Name: p.advance().Text}, nil
	case TokLBrace:
		p.advance()
		lo, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokDotDot); err != nil {
			return nil, err
		}
		hi, err := p.expect(TokInt)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
		return TypeRange{Lo: lo.Int, Hi: hi.Int}, nil
	}
	return nil, p.errf("expected type, found %s", p.peek())
}

func (p *parser) parseDatatypeDecl() (Decl, error) {
	if _, err := p.expect(TokDatatype); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokEquals); err != nil {
		return nil, err
	}
	var ctors []CtorDecl
	for {
		c, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		ctor := CtorDecl{Name: c.Text}
		for p.peek().Kind == TokDot {
			p.advance()
			te, err := p.parseTypeExpr()
			if err != nil {
				return nil, err
			}
			ctor.Fields = append(ctor.Fields, te)
		}
		ctors = append(ctors, ctor)
		if _, ok := p.accept(TokBar); !ok {
			break
		}
	}
	return DatatypeDecl{Name: name.Text, Ctors: ctors}, nil
}

func (p *parser) parseNametypeDecl() (Decl, error) {
	if _, err := p.expect(TokNametype); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokEquals); err != nil {
		return nil, err
	}
	set, err := p.parseSet()
	if err != nil {
		return nil, err
	}
	return NametypeDecl{Name: name.Text, Set: set}, nil
}

func (p *parser) parseProcDef() (Decl, error) {
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	var params []string
	if _, ok := p.accept(TokLParen); ok {
		for {
			id, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			params = append(params, id.Text)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokEquals); err != nil {
		return nil, err
	}
	body, err := p.parseProc()
	if err != nil {
		return nil, err
	}
	return ProcDef{Name: name.Text, Params: params, Body: body}, nil
}

func (p *parser) parseAssert() (Assertion, error) {
	start := p.pos
	if _, err := p.expect(TokAssert); err != nil {
		return Assertion{}, err
	}
	lhs, err := p.parseProc()
	if err != nil {
		return Assertion{}, err
	}
	a := Assertion{}
	switch p.peek().Kind {
	case TokRefT, TokRefF, TokRefFD:
		op := p.advance()
		rhs, err := p.parseProc()
		if err != nil {
			return Assertion{}, err
		}
		a.Spec, a.Impl = lhs, rhs
		switch op.Kind {
		case TokRefT:
			a.Kind = AssertTraceRef
		case TokRefF:
			a.Kind = AssertFailRef
		default:
			a.Kind = AssertFDRef
		}
	case TokColLBrack:
		p.advance()
		kind, err := p.expect(TokIdent)
		if err != nil {
			return Assertion{}, err
		}
		free, err := p.expect(TokIdent)
		if err != nil {
			return Assertion{}, err
		}
		if free.Text != "free" {
			return Assertion{}, p.errf("expected 'free' in property assertion")
		}
		if _, err := p.expect(TokRBrack); err != nil {
			return Assertion{}, err
		}
		switch kind.Text {
		case "deadlock":
			a.Kind = AssertDeadlockFree
		case "divergence":
			a.Kind = AssertDivergenceFree
		default:
			return Assertion{}, p.errf("unknown property %q (want deadlock or divergence)", kind.Text)
		}
		a.Impl = lhs
	default:
		return Assertion{}, p.errf("expected [T=, [F=, [FD= or :[ in assertion, found %s", p.peek())
	}
	a.Text = p.sourceRange(start, p.pos)
	return a, nil
}

func (p *parser) sourceRange(from, to int) string {
	out := ""
	for i := from; i < to && i < len(p.toks); i++ {
		t := p.toks[i]
		if out != "" {
			out += " "
		}
		switch t.Kind {
		case TokIdent:
			out += t.Text
		case TokInt:
			out += t.Text
		default:
			out += t.Kind.String()
		}
	}
	return out
}

// --- Process expressions ----------------------------------------------

// parseProc parses at the loosest precedence: internal choice.
func (p *parser) parseProc() (ProcExpr, error) {
	left, err := p.parseExtChoice()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokIntCh {
		p.advance()
		right, err := p.parseExtChoice()
		if err != nil {
			return nil, err
		}
		left = BinProcE{Op: OpIntChoice, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseExtChoice() (ProcExpr, error) {
	left, err := p.parsePar()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokBox {
		p.advance()
		right, err := p.parsePar()
		if err != nil {
			return nil, err
		}
		left = BinProcE{Op: OpExtChoice, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parsePar() (ProcExpr, error) {
	left, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().Kind {
		case TokIleave:
			p.advance()
			right, err := p.parseSeq()
			if err != nil {
				return nil, err
			}
			left = BinProcE{Op: OpInterleave, L: left, R: right}
		case TokLPar:
			p.advance()
			sync, err := p.parseSet()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRPar); err != nil {
				return nil, err
			}
			right, err := p.parseSeq()
			if err != nil {
				return nil, err
			}
			left = BinProcE{Op: OpGenPar, L: left, R: right, Sync: sync}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseSeq() (ProcExpr, error) {
	left, err := p.parseGuard()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokSemi {
		p.advance()
		right, err := p.parseGuard()
		if err != nil {
			return nil, err
		}
		left = BinProcE{Op: OpSeqComp, L: left, R: right}
	}
	return left, nil
}

// parseGuard handles b & P by speculative expression parsing.
func (p *parser) parseGuard() (ProcExpr, error) {
	save := p.pos
	if expr, err := p.parseExpr(); err == nil && p.peek().Kind == TokAmp {
		p.advance()
		body, err := p.parseGuard()
		if err != nil {
			return nil, err
		}
		return GuardE{Cond: expr, P: body}, nil
	}
	p.pos = save
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (ProcExpr, error) {
	proc, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().Kind {
		case TokBackslash:
			p.advance()
			set, err := p.parseSet()
			if err != nil {
				return nil, err
			}
			proc = HideE{P: proc, Set: set}
		case TokLRename:
			p.advance()
			var pairs [][2]string
			for {
				from, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokLArrow); err != nil {
					return nil, err
				}
				to, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				pairs = append(pairs, [2]string{from.Text, to.Text})
				if _, ok := p.accept(TokComma); !ok {
					break
				}
			}
			if _, err := p.expect(TokRRename); err != nil {
				return nil, err
			}
			proc = RenameE{P: proc, Pairs: pairs}
		default:
			return proc, nil
		}
	}
}

func (p *parser) parsePrimary() (ProcExpr, error) {
	switch p.peek().Kind {
	case TokBox, TokIleave:
		return p.parseReplicated()
	case TokStop:
		p.advance()
		return StopE{}, nil
	case TokSkip:
		p.advance()
		return SkipE{}, nil
	case TokIf:
		p.advance()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokThen); err != nil {
			return nil, err
		}
		then, err := p.parseProc()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokElse); err != nil {
			return nil, err
		}
		els, err := p.parseProc()
		if err != nil {
			return nil, err
		}
		return IfE{Cond: cond, Then: then, Else: els}, nil
	case TokLParen:
		p.advance()
		proc, err := p.parseProc()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return proc, nil
	case TokIdent:
		return p.parsePrefixOrCall()
	}
	return nil, p.errf("expected process, found %s", p.peek())
}

// parseReplicated parses [] x:S @ P and ||| x:S @ P.
func (p *parser) parseReplicated() (ProcExpr, error) {
	op := OpExtChoice
	if p.advance().Kind == TokIleave {
		op = OpInterleave
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	set, err := p.parseSet()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAt); err != nil {
		return nil, err
	}
	body, err := p.parseGuard()
	if err != nil {
		return nil, err
	}
	return ReplE{Op: op, Var: name.Text, Set: set, Body: body}, nil
}

// parsePrefixOrCall disambiguates `c.f!g?x -> P` (prefix), `P(args)`
// (parameterised call) and bare `P` (call).
func (p *parser) parsePrefixOrCall() (ProcExpr, error) {
	name := p.advance().Text
	if p.peek().Kind == TokLParen {
		p.advance()
		var args []ExprE
		if p.peek().Kind != TokRParen {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, e)
				if _, ok := p.accept(TokComma); !ok {
					break
				}
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return CallE{Name: name, Args: args}, nil
	}
	var fields []FieldE
	for {
		switch p.peek().Kind {
		case TokDot:
			p.advance()
			e, err := p.parseFieldAtom()
			if err != nil {
				return nil, err
			}
			fields = append(fields, FieldE{Kind: FieldDot, Expr: e})
			continue
		case TokBang:
			p.advance()
			e, err := p.parseFieldAtom()
			if err != nil {
				return nil, err
			}
			fields = append(fields, FieldE{Kind: FieldOut, Expr: e})
			continue
		case TokQuestion:
			p.advance()
			id, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			f := FieldE{Kind: FieldIn, Var: id.Text}
			if p.peek().Kind == TokColon {
				p.advance()
				set, err := p.parseSet()
				if err != nil {
					return nil, err
				}
				f.In = set
			}
			fields = append(fields, f)
			continue
		}
		break
	}
	if p.peek().Kind == TokArrow {
		p.advance()
		cont, err := p.parseGuard()
		if err != nil {
			return nil, err
		}
		return PrefixE{Chan: name, Fields: fields, Cont: cont}, nil
	}
	if len(fields) > 0 {
		return nil, p.errf("expected -> after communication on channel %q", name)
	}
	return CallE{Name: name}, nil
}

// parseFieldAtom parses a single dotted component of a communication:
// an identifier, literal, or parenthesised expression (used for compound
// values such as send.(mac.k.m)).
func (p *parser) parseFieldAtom() (ExprE, error) {
	switch p.peek().Kind {
	case TokIdent:
		return IdentE{Name: p.advance().Text}, nil
	case TokInt:
		return IntE{Val: p.advance().Int}, nil
	case TokTrue:
		p.advance()
		return BoolE{Val: true}, nil
	case TokFalse:
		p.advance()
		return BoolE{Val: false}, nil
	case TokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("expected value in communication, found %s", p.peek())
}

// --- Value expressions -------------------------------------------------

func (p *parser) parseExpr() (ExprE, error) { return p.parseOr() }

func (p *parser) parseOr() (ExprE, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokOr {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = BinE{Op: "or", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (ExprE, error) {
	left, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokAnd {
		p.advance()
		right, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		left = BinE{Op: "and", L: left, R: right}
	}
	return left, nil
}

var cmpOps = map[TokKind]string{
	TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
}

func (p *parser) parseCmp() (ExprE, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.peek().Kind]; ok {
		p.advance()
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return BinE{Op: op, L: left, R: right}, nil
	}
	return left, nil
}

func (p *parser) parseAdd() (ExprE, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().Kind {
		case TokPlus:
			op = "+"
		case TokMinus:
			op = "-"
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = BinE{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMul() (ExprE, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().Kind {
		case TokStar:
			op = "*"
		case TokSlash:
			op = "/"
		case TokPercent:
			op = "%"
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = BinE{Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnary() (ExprE, error) {
	switch p.peek().Kind {
	case TokMinus:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnE{Op: "-", X: x}, nil
	case TokNot:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnE{Op: "not", X: x}, nil
	}
	return p.parseDotted()
}

func (p *parser) parseDotted() (ExprE, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokDot {
		return atom, nil
	}
	head, ok := atom.(IdentE)
	if !ok {
		return nil, p.errf("dotted value must start with a constructor name")
	}
	var args []ExprE
	for p.peek().Kind == TokDot {
		p.advance()
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	return DottedE{Head: head.Name, Args: args}, nil
}

func (p *parser) parseAtom() (ExprE, error) {
	switch p.peek().Kind {
	case TokInt:
		return IntE{Val: p.advance().Int}, nil
	case TokTrue:
		p.advance()
		return BoolE{Val: true}, nil
	case TokFalse:
		p.advance()
		return BoolE{Val: false}, nil
	case TokIdent:
		return IdentE{Name: p.advance().Text}, nil
	case TokMember:
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		elem, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokComma); err != nil {
			return nil, err
		}
		set, err := p.parseSet()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return MemberE{Elem: elem, Set: set}, nil
	case TokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("expected expression, found %s", p.peek())
}

// --- Sets ---------------------------------------------------------------

func (p *parser) parseSet() (SetExpr, error) {
	switch p.peek().Kind {
	case TokLProd:
		p.advance()
		var chans []string
		for {
			id, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			chans = append(chans, id.Text)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
		if _, err := p.expect(TokRProd); err != nil {
			return nil, err
		}
		return ProdSet{Channels: chans}, nil
	case TokLBrace:
		p.advance()
		if p.peek().Kind == TokRBrace {
			p.advance()
			return ExplicitSet{}, nil
		}
		if p.peek().Kind == TokInt && p.peek2().Kind == TokDotDot {
			lo := p.advance().Int
			p.advance() // ..
			hi, err := p.expect(TokInt)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBrace); err != nil {
				return nil, err
			}
			return RangeSet{Lo: lo, Hi: hi.Int}, nil
		}
		var elems []ExprE
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
		return ExplicitSet{Elems: elems}, nil
	case TokUnion:
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		l, err := p.parseSet()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokComma); err != nil {
			return nil, err
		}
		r, err := p.parseSet()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return SetUnion{L: l, R: r}, nil
	case TokIdent:
		return SetRef{Name: p.advance().Text}, nil
	}
	return nil, p.errf("expected set, found %s", p.peek())
}
