// Package cspm implements a front-end for CSPm, the machine-readable
// dialect of CSP accepted by FDR (Scattergood & Armstrong, "CSPm: A
// Reference Manual"). It covers the subset used by the paper: channel,
// datatype and nametype declarations, process equations over the
// operators of Table I, and refinement/deadlock/divergence assertions.
// Scripts are evaluated to csp.Process values plus a csp.Context and
// csp.Env, ready for the refine package.
package cspm

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota + 1
	TokIdent
	TokInt
	TokEquals    // =
	TokLParen    // (
	TokRParen    // )
	TokLBrace    // {
	TokRBrace    // }
	TokLProd     // {|
	TokRProd     // |}
	TokComma     // ,
	TokColon     // :
	TokSemi      // ;
	TokBar       // |
	TokDot       // .
	TokQuestion  // ?
	TokBang      // !
	TokArrow     // ->
	TokBox       // []
	TokIntCh     // |~|
	TokIleave    // |||
	TokLPar      // [|
	TokRPar      // |]
	TokBackslash // \
	TokAmp       // &
	TokLRename   // [[
	TokRRename   // ]]
	TokLArrow    // <-
	TokAt        // @
	TokEq        // ==
	TokNe        // !=
	TokLe        // <=
	TokGe        // >=
	TokLt        // <
	TokGt        // >
	TokPlus      // +
	TokMinus     // -
	TokStar      // *
	TokSlash     // /
	TokPercent   // %
	TokDotDot    // ..
	TokRefT      // [T=
	TokRefF      // [F=
	TokRefFD     // [FD=
	TokColLBrack // :[
	TokRBrack    // ]
	TokAnd       // keyword and
	TokOr        // keyword or
	TokNot       // keyword not
	TokIf
	TokThen
	TokElse
	TokChannel
	TokDatatype
	TokNametype
	TokAssert
	TokStop  // STOP
	TokSkip  // SKIP
	TokTrue  // true
	TokFalse // false
	TokUnion // union
	TokMember
	TokLet
	TokWithin
)

var tokNames = map[TokKind]string{
	TokEOF: "end of input", TokIdent: "identifier", TokInt: "integer",
	TokEquals: "=", TokLParen: "(", TokRParen: ")", TokLBrace: "{",
	TokRBrace: "}", TokLProd: "{|", TokRProd: "|}", TokComma: ",",
	TokColon: ":", TokSemi: ";", TokBar: "|", TokDot: ".",
	TokQuestion: "?", TokBang: "!", TokArrow: "->", TokBox: "[]",
	TokIntCh: "|~|", TokIleave: "|||", TokLPar: "[|", TokRPar: "|]",
	TokBackslash: "\\", TokAmp: "&", TokLRename: "[[", TokRRename: "]]",
	TokLArrow: "<-", TokAt: "@", TokEq: "==", TokNe: "!=", TokLe: "<=",
	TokGe: ">=", TokLt: "<", TokGt: ">", TokPlus: "+", TokMinus: "-",
	TokStar: "*", TokSlash: "/", TokPercent: "%", TokDotDot: "..",
	TokRefT: "[T=", TokRefF: "[F=", TokRefFD: "[FD=", TokColLBrack: ":[", TokRBrack: "]",
	TokAnd: "and", TokOr: "or", TokNot: "not", TokIf: "if",
	TokThen: "then", TokElse: "else", TokChannel: "channel",
	TokDatatype: "datatype", TokNametype: "nametype", TokAssert: "assert",
	TokStop: "STOP", TokSkip: "SKIP", TokTrue: "true", TokFalse: "false",
	TokUnion: "union", TokMember: "member", TokLet: "let", TokWithin: "within",
}

// String returns the token kind's display name.
func (k TokKind) String() string {
	if n, ok := tokNames[k]; ok {
		return n
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Int  int
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TokInt:
		return fmt.Sprintf("integer %d", t.Int)
	}
	return t.Kind.String()
}

var keywords = map[string]TokKind{
	"and": TokAnd, "or": TokOr, "not": TokNot,
	"if": TokIf, "then": TokThen, "else": TokElse,
	"channel": TokChannel, "datatype": TokDatatype,
	"nametype": TokNametype, "assert": TokAssert,
	"STOP": TokStop, "SKIP": TokSkip,
	"true": TokTrue, "false": TokFalse,
	"union": TokUnion, "member": TokMember,
	"let": TokLet, "within": TokWithin,
}
