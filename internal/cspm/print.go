package cspm

import (
	"fmt"
	"strings"
)

// Print renders a Script as CSPm source text. The output parses back to
// an equivalent script (modulo whitespace), which the round-trip tests
// verify.
func Print(s *Script) string {
	var sb strings.Builder
	for i, d := range s.Decls {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(printDecl(d))
		sb.WriteByte('\n')
	}
	if len(s.Asserts) > 0 {
		sb.WriteByte('\n')
	}
	for _, a := range s.Asserts {
		sb.WriteString(printAssert(a))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func printDecl(d Decl) string {
	switch x := d.(type) {
	case ChannelDecl:
		out := "channel " + strings.Join(x.Names, ", ")
		if len(x.Fields) > 0 {
			parts := make([]string, len(x.Fields))
			for i, f := range x.Fields {
				parts[i] = printTypeExpr(f)
			}
			out += " : " + strings.Join(parts, ".")
		}
		return out
	case DatatypeDecl:
		parts := make([]string, len(x.Ctors))
		for i, c := range x.Ctors {
			p := c.Name
			for _, f := range c.Fields {
				p += "." + printTypeExpr(f)
			}
			parts[i] = p
		}
		return "datatype " + x.Name + " = " + strings.Join(parts, " | ")
	case NametypeDecl:
		return "nametype " + x.Name + " = " + printSet(x.Set)
	case ProcDef:
		head := x.Name
		if len(x.Params) > 0 {
			head += "(" + strings.Join(x.Params, ", ") + ")"
		}
		return head + " = " + PrintProc(x.Body)
	}
	return fmt.Sprintf("-- unknown declaration %T", d)
}

func printTypeExpr(t TypeExpr) string {
	switch x := t.(type) {
	case TypeRef:
		return x.Name
	case TypeRange:
		return fmt.Sprintf("{%d..%d}", x.Lo, x.Hi)
	}
	return "?"
}

func printAssert(a Assertion) string {
	switch a.Kind {
	case AssertTraceRef:
		return "assert " + PrintProc(a.Spec) + " [T= " + PrintProc(a.Impl)
	case AssertFailRef:
		return "assert " + PrintProc(a.Spec) + " [F= " + PrintProc(a.Impl)
	case AssertFDRef:
		return "assert " + PrintProc(a.Spec) + " [FD= " + PrintProc(a.Impl)
	case AssertDeadlockFree:
		return "assert " + PrintProc(a.Impl) + " :[deadlock free]"
	case AssertDivergenceFree:
		return "assert " + PrintProc(a.Impl) + " :[divergence free]"
	}
	return "-- unknown assertion"
}

// Operator binding strengths for minimal parenthesisation; larger binds
// tighter, mirroring the parser's precedence levels.
const (
	precIntChoice = iota + 1
	precExtChoice
	precPar
	precSeq
	precGuard
	precPostfix
	precPrimary
)

// PrintProc renders a process expression in CSPm concrete syntax.
func PrintProc(p ProcExpr) string {
	return printProc(p, precIntChoice)
}

func printProc(p ProcExpr, outer int) string {
	var out string
	var prec int
	switch x := p.(type) {
	case StopE:
		return "STOP"
	case SkipE:
		return "SKIP"
	case CallE:
		if len(x.Args) == 0 {
			return x.Name
		}
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = PrintExpr(a)
		}
		return x.Name + "(" + strings.Join(parts, ", ") + ")"
	case PrefixE:
		comm := x.Chan
		for _, f := range x.Fields {
			switch f.Kind {
			case FieldDot:
				comm += "." + printFieldExpr(f.Expr)
			case FieldOut:
				comm += "!" + printFieldExpr(f.Expr)
			case FieldIn:
				comm += "?" + f.Var
				if f.In != nil {
					comm += ":" + printSet(f.In)
				}
			}
		}
		out = comm + " -> " + printProc(x.Cont, precGuard)
		prec = precGuard
	case BinProcE:
		var op string
		switch x.Op {
		case OpExtChoice:
			op, prec = "[]", precExtChoice
		case OpIntChoice:
			op, prec = "|~|", precIntChoice
		case OpSeqComp:
			op, prec = ";", precSeq
		case OpInterleave:
			op, prec = "|||", precPar
		case OpGenPar:
			op, prec = "[| "+printSet(x.Sync)+" |]", precPar
		}
		out = printProc(x.L, prec) + " " + op + " " + printProc(x.R, prec+1)
	case ReplE:
		op := "[]"
		if x.Op == OpInterleave {
			op = "|||"
		}
		out = op + " " + x.Var + ":" + printSet(x.Set) + " @ " + printProc(x.Body, precGuard)
		prec = precGuard
	case HideE:
		out = printProc(x.P, precPostfix) + " \\ " + printSet(x.Set)
		prec = precPostfix
	case RenameE:
		pairs := make([]string, len(x.Pairs))
		for i, pr := range x.Pairs {
			pairs[i] = pr[0] + " <- " + pr[1]
		}
		out = printProc(x.P, precPostfix) + "[[" + strings.Join(pairs, ", ") + "]]"
		prec = precPostfix
	case IfE:
		out = "if " + PrintExpr(x.Cond) + " then " + printProc(x.Then, precIntChoice) +
			" else " + printProc(x.Else, precIntChoice)
		prec = precIntChoice
	case GuardE:
		out = PrintExpr(x.Cond) + " & " + printProc(x.P, precGuard)
		prec = precGuard
	default:
		return fmt.Sprintf("<unknown %T>", p)
	}
	if prec < outer {
		return "(" + out + ")"
	}
	return out
}

// printFieldExpr renders a communication field value, parenthesising
// compound (dotted or operator) expressions as the parser requires.
func printFieldExpr(e ExprE) string {
	switch e.(type) {
	case IntE, BoolE, IdentE:
		return PrintExpr(e)
	}
	return "(" + PrintExpr(e) + ")"
}

// PrintExpr renders a value expression.
func PrintExpr(e ExprE) string {
	switch x := e.(type) {
	case IntE:
		return fmt.Sprintf("%d", x.Val)
	case BoolE:
		if x.Val {
			return "true"
		}
		return "false"
	case IdentE:
		return x.Name
	case DottedE:
		parts := make([]string, 0, len(x.Args)+1)
		parts = append(parts, x.Head)
		for _, a := range x.Args {
			parts = append(parts, printAtomExpr(a))
		}
		return strings.Join(parts, ".")
	case BinE:
		return "(" + PrintExpr(x.L) + " " + x.Op + " " + PrintExpr(x.R) + ")"
	case UnE:
		if x.Op == "-" {
			return "(-" + PrintExpr(x.X) + ")"
		}
		return "(not " + PrintExpr(x.X) + ")"
	case MemberE:
		return "member(" + PrintExpr(x.Elem) + ", " + printSet(x.Set) + ")"
	}
	return fmt.Sprintf("<unknown %T>", e)
}

func printAtomExpr(e ExprE) string {
	switch e.(type) {
	case IntE, BoolE, IdentE:
		return PrintExpr(e)
	}
	return "(" + PrintExpr(e) + ")"
}

func printSet(s SetExpr) string {
	switch x := s.(type) {
	case ProdSet:
		return "{| " + strings.Join(x.Channels, ", ") + " |}"
	case ExplicitSet:
		parts := make([]string, len(x.Elems))
		for i, e := range x.Elems {
			parts[i] = PrintExpr(e)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case RangeSet:
		return fmt.Sprintf("{%d..%d}", x.Lo, x.Hi)
	case SetRef:
		return x.Name
	case SetUnion:
		return "union(" + printSet(x.L) + ", " + printSet(x.R) + ")"
	}
	return "?"
}
