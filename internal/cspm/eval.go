package cspm

import (
	"fmt"

	"repro/internal/csp"
)

// Model is an evaluated CSPm script: the declaration context and
// definition environment ready for the refinement checker, plus the
// resolved assertions.
type Model struct {
	Ctx     *csp.Context
	Env     *csp.Env
	Script  *Script
	Asserts []ResolvedAssert
}

// ResolvedAssert is an assertion with its process expressions evaluated.
type ResolvedAssert struct {
	Kind AssertKind
	Spec csp.Process // nil for property assertions
	Impl csp.Process
	Text string
}

// Load parses and evaluates a CSPm source in one step.
func Load(src string) (*Model, error) {
	script, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Evaluate(script)
}

// Evaluate converts a parsed script into csp declarations, definitions
// and resolved assertions, reporting unresolved names and arity errors.
func Evaluate(script *Script) (*Model, error) {
	ev := &evaluator{
		ctx:     csp.NewContext(),
		env:     csp.NewEnv(),
		ctors:   map[string]ctorInfo{},
		procs:   map[string]int{},
		chans:   map[string]bool{},
		typesBy: map[string]csp.Type{},
	}
	ev.typesBy["Bool"] = csp.BoolType{}

	// Pass 1: collect process names (so forward references work) and
	// declare types/channels in order.
	for _, d := range script.Decls {
		if pd, ok := d.(ProcDef); ok {
			if _, dup := ev.procs[pd.Name]; dup {
				return nil, fmt.Errorf("process %q defined twice", pd.Name)
			}
			ev.procs[pd.Name] = len(pd.Params)
		}
	}
	for _, d := range script.Decls {
		var err error
		switch decl := d.(type) {
		case DatatypeDecl:
			err = ev.declareDatatype(decl)
		case NametypeDecl:
			err = ev.declareNametype(decl)
		case ChannelDecl:
			err = ev.declareChannel(decl)
		}
		if err != nil {
			return nil, err
		}
	}
	// Pass 2: evaluate process bodies.
	for _, d := range script.Decls {
		pd, ok := d.(ProcDef)
		if !ok {
			continue
		}
		scope := map[string]bool{}
		for _, p := range pd.Params {
			scope[p] = true
		}
		body, err := ev.proc(pd.Body, scope)
		if err != nil {
			return nil, fmt.Errorf("in definition of %s: %w", pd.Name, err)
		}
		if err := ev.env.Define(pd.Name, pd.Params, body); err != nil {
			return nil, err
		}
	}
	// Pass 3: assertions.
	m := &Model{Ctx: ev.ctx, Env: ev.env, Script: script}
	for _, a := range script.Asserts {
		ra := ResolvedAssert{Kind: a.Kind, Text: a.Text}
		var err error
		if a.Spec != nil {
			ra.Spec, err = ev.proc(a.Spec, map[string]bool{})
			if err != nil {
				return nil, fmt.Errorf("in assertion %q: %w", a.Text, err)
			}
		}
		ra.Impl, err = ev.proc(a.Impl, map[string]bool{})
		if err != nil {
			return nil, fmt.Errorf("in assertion %q: %w", a.Text, err)
		}
		m.Asserts = append(m.Asserts, ra)
	}
	return m, nil
}

type ctorInfo struct {
	arity    int
	datatype string
}

type evaluator struct {
	ctx     *csp.Context
	env     *csp.Env
	ctors   map[string]ctorInfo
	procs   map[string]int // name -> arity
	chans   map[string]bool
	typesBy map[string]csp.Type
}

func (ev *evaluator) typeExpr(te TypeExpr) (csp.Type, error) {
	switch t := te.(type) {
	case TypeRef:
		if ty, ok := ev.typesBy[t.Name]; ok {
			return ty, nil
		}
		return nil, fmt.Errorf("unknown type %q", t.Name)
	case TypeRange:
		return csp.IntRange{Lo: t.Lo, Hi: t.Hi}, nil
	}
	return nil, fmt.Errorf("unsupported type expression %T", te)
}

func (ev *evaluator) declareDatatype(d DatatypeDecl) error {
	if _, dup := ev.typesBy[d.Name]; dup {
		return fmt.Errorf("type %q declared twice", d.Name)
	}
	dt := csp.DataType{TypeName: d.Name}
	for _, c := range d.Ctors {
		if _, dup := ev.ctors[c.Name]; dup {
			return fmt.Errorf("constructor %q declared twice", c.Name)
		}
		ctor := csp.Ctor{Head: csp.Sym(c.Name)}
		for _, f := range c.Fields {
			ft, err := ev.typeExpr(f)
			if err != nil {
				return fmt.Errorf("datatype %s, constructor %s: %w", d.Name, c.Name, err)
			}
			ctor.Fields = append(ctor.Fields, ft)
		}
		dt.Ctors = append(dt.Ctors, ctor)
		ev.ctors[c.Name] = ctorInfo{arity: len(c.Fields), datatype: d.Name}
	}
	ev.typesBy[d.Name] = dt
	return ev.ctx.DeclareType(d.Name, dt)
}

func (ev *evaluator) declareNametype(d NametypeDecl) error {
	if _, dup := ev.typesBy[d.Name]; dup {
		return fmt.Errorf("type %q declared twice", d.Name)
	}
	set, err := ev.valueSet(d.Set, map[string]bool{})
	if err != nil {
		return fmt.Errorf("nametype %s: %w", d.Name, err)
	}
	ty := csp.ExplicitType{TypeName: d.Name, Elems: set.Elems()}
	ev.typesBy[d.Name] = ty
	return ev.ctx.DeclareType(d.Name, ty)
}

func (ev *evaluator) declareChannel(d ChannelDecl) error {
	var fields []csp.Type
	for _, f := range d.Fields {
		ft, err := ev.typeExpr(f)
		if err != nil {
			return fmt.Errorf("channel %v: %w", d.Names, err)
		}
		fields = append(fields, ft)
	}
	for _, name := range d.Names {
		if err := ev.ctx.DeclareChannel(name, fields...); err != nil {
			return err
		}
		ev.chans[name] = true
	}
	return nil
}

// expr converts a value expression, resolving identifiers against the
// current variable scope and the constructor table.
func (ev *evaluator) expr(e ExprE, scope map[string]bool) (csp.Expr, error) {
	switch x := e.(type) {
	case IntE:
		return csp.LitInt(x.Val), nil
	case BoolE:
		return csp.LitBool(x.Val), nil
	case IdentE:
		if scope[x.Name] {
			return csp.V(x.Name), nil
		}
		if ci, ok := ev.ctors[x.Name]; ok {
			if ci.arity != 0 {
				return nil, fmt.Errorf("constructor %q expects %d argument(s)", x.Name, ci.arity)
			}
			return csp.LitSym(x.Name), nil
		}
		return nil, fmt.Errorf("unknown identifier %q", x.Name)
	case DottedE:
		ci, ok := ev.ctors[x.Head]
		if !ok {
			return nil, fmt.Errorf("unknown constructor %q", x.Head)
		}
		if ci.arity != len(x.Args) {
			return nil, fmt.Errorf("constructor %q expects %d argument(s), got %d",
				x.Head, ci.arity, len(x.Args))
		}
		args := make([]csp.Expr, len(x.Args))
		for i, a := range x.Args {
			ce, err := ev.expr(a, scope)
			if err != nil {
				return nil, err
			}
			args[i] = ce
		}
		return csp.DotExpr{Head: csp.Sym(x.Head), Args: args}, nil
	case BinE:
		l, err := ev.expr(x.L, scope)
		if err != nil {
			return nil, err
		}
		r, err := ev.expr(x.R, scope)
		if err != nil {
			return nil, err
		}
		op, ok := binOpTable[x.Op]
		if !ok {
			return nil, fmt.Errorf("unknown operator %q", x.Op)
		}
		return csp.Binary{Op: op, L: l, R: r}, nil
	case UnE:
		sub, err := ev.expr(x.X, scope)
		if err != nil {
			return nil, err
		}
		if x.Op == "-" {
			return csp.Unary{Op: csp.OpNeg, X: sub}, nil
		}
		return csp.Unary{Op: csp.OpNot, X: sub}, nil
	case MemberE:
		elem, err := ev.expr(x.Elem, scope)
		if err != nil {
			return nil, err
		}
		set, err := ev.valueSet(x.Set, scope)
		if err != nil {
			return nil, err
		}
		return csp.MemberExpr{Elem: elem, Set: csp.Lit{Val: set}}, nil
	}
	return nil, fmt.Errorf("unsupported expression %T", e)
}

var binOpTable = map[string]csp.BinOp{
	"+": csp.OpAdd, "-": csp.OpSub, "*": csp.OpMul, "/": csp.OpDiv,
	"%": csp.OpMod, "==": csp.OpEq, "!=": csp.OpNe, "<": csp.OpLt,
	"<=": csp.OpLe, ">": csp.OpGt, ">=": csp.OpGe,
	"and": csp.OpAnd, "or": csp.OpOr,
}

// valueSet evaluates a set expression to a concrete set of values.
func (ev *evaluator) valueSet(s SetExpr, scope map[string]bool) (csp.SetValue, error) {
	switch x := s.(type) {
	case RangeSet:
		vals := make([]csp.Value, 0, x.Hi-x.Lo+1)
		for i := x.Lo; i <= x.Hi; i++ {
			vals = append(vals, csp.Int(i))
		}
		return csp.NewSet(vals...), nil
	case ExplicitSet:
		var vals []csp.Value
		for _, e := range x.Elems {
			ce, err := ev.expr(e, scope)
			if err != nil {
				return csp.SetValue{}, err
			}
			v, err := csp.Eval(ce)
			if err != nil {
				return csp.SetValue{}, fmt.Errorf("set element: %w", err)
			}
			vals = append(vals, v)
		}
		return csp.NewSet(vals...), nil
	case SetRef:
		ty, ok := ev.typesBy[x.Name]
		if !ok {
			return csp.SetValue{}, fmt.Errorf("unknown set %q", x.Name)
		}
		return csp.NewSet(ty.Values()...), nil
	case SetUnion:
		l, err := ev.valueSet(x.L, scope)
		if err != nil {
			return csp.SetValue{}, err
		}
		r, err := ev.valueSet(x.R, scope)
		if err != nil {
			return csp.SetValue{}, err
		}
		out := l
		for _, v := range r.Elems() {
			out = out.Add(v)
		}
		return out, nil
	case ProdSet:
		return csp.SetValue{}, fmt.Errorf("production set {| ... |} used where a value set is required")
	}
	return csp.SetValue{}, fmt.Errorf("unsupported set expression %T", s)
}

// eventSet evaluates a set expression to a set of events, for use as a
// synchronisation or hiding set.
func (ev *evaluator) eventSet(s SetExpr, scope map[string]bool) (*csp.EventSet, error) {
	switch x := s.(type) {
	case ProdSet:
		set := csp.NewEventSet()
		for _, c := range x.Channels {
			if !ev.chans[c] {
				return nil, fmt.Errorf("production set names undeclared channel %q", c)
			}
			set.AddChannel(c)
		}
		return set, nil
	case ExplicitSet:
		set := csp.NewEventSet()
		for _, e := range x.Elems {
			evnt, err := ev.eventLiteral(e, scope)
			if err != nil {
				return nil, err
			}
			set.AddEvent(evnt)
		}
		return set, nil
	case SetUnion:
		l, err := ev.eventSet(x.L, scope)
		if err != nil {
			return nil, err
		}
		r, err := ev.eventSet(x.R, scope)
		if err != nil {
			return nil, err
		}
		return l.Union(r), nil
	}
	return nil, fmt.Errorf("cannot interpret %T as an event set", s)
}

// eventLiteral converts an expression like send.reqSw (or a bare event
// channel name) into a concrete event.
func (ev *evaluator) eventLiteral(e ExprE, scope map[string]bool) (csp.Event, error) {
	switch x := e.(type) {
	case IdentE:
		if ev.chans[x.Name] {
			return csp.Ev(x.Name), nil
		}
		return csp.Event{}, fmt.Errorf("%q is not a channel", x.Name)
	case DottedE:
		if !ev.chans[x.Head] {
			return csp.Event{}, fmt.Errorf("%q is not a channel", x.Head)
		}
		args := make([]csp.Value, len(x.Args))
		for i, a := range x.Args {
			ce, err := ev.expr(a, scope)
			if err != nil {
				return csp.Event{}, err
			}
			v, err := csp.Eval(ce)
			if err != nil {
				return csp.Event{}, err
			}
			args[i] = v
		}
		return csp.Ev(x.Head, args...), nil
	}
	return csp.Event{}, fmt.Errorf("cannot interpret %T as an event", e)
}

// proc converts a process expression within the given variable scope.
func (ev *evaluator) proc(pe ProcExpr, scope map[string]bool) (csp.Process, error) {
	switch x := pe.(type) {
	case StopE:
		return csp.Stop(), nil
	case SkipE:
		return csp.Skip(), nil
	case CallE:
		arity, ok := ev.procs[x.Name]
		if !ok {
			return nil, fmt.Errorf("undefined process %q", x.Name)
		}
		if arity != len(x.Args) {
			return nil, fmt.Errorf("process %q expects %d argument(s), got %d",
				x.Name, arity, len(x.Args))
		}
		args := make([]csp.Expr, len(x.Args))
		for i, a := range x.Args {
			ce, err := ev.expr(a, scope)
			if err != nil {
				return nil, err
			}
			args[i] = ce
		}
		return csp.Call(x.Name, args...), nil
	case PrefixE:
		if !ev.chans[x.Chan] {
			return nil, fmt.Errorf("prefix on undeclared channel %q", x.Chan)
		}
		fields := make([]csp.CommField, len(x.Fields))
		// Input binders extend the scope for later fields and the
		// continuation.
		inner := scope
		cloned := false
		for i, f := range x.Fields {
			switch f.Kind {
			case FieldDot, FieldOut:
				ce, err := ev.expr(f.Expr, inner)
				if err != nil {
					return nil, err
				}
				fields[i] = csp.Out(ce)
			case FieldIn:
				if !cloned {
					inner = cloneScope(inner)
					cloned = true
				}
				if f.In != nil {
					set, err := ev.valueSet(f.In, inner)
					if err != nil {
						return nil, err
					}
					pred := csp.MemberExpr{Elem: csp.V(f.Var), Set: csp.Lit{Val: set}}
					fields[i] = csp.InSuchThat(f.Var, pred)
				} else {
					fields[i] = csp.In(f.Var)
				}
				inner[f.Var] = true
			default:
				return nil, fmt.Errorf("unknown field kind %d", f.Kind)
			}
		}
		cont, err := ev.proc(x.Cont, inner)
		if err != nil {
			return nil, err
		}
		return csp.Prefix(x.Chan, fields, cont), nil
	case BinProcE:
		l, err := ev.proc(x.L, scope)
		if err != nil {
			return nil, err
		}
		r, err := ev.proc(x.R, scope)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case OpExtChoice:
			return csp.ExtChoice(l, r), nil
		case OpIntChoice:
			return csp.IntChoice(l, r), nil
		case OpSeqComp:
			return csp.Seq(l, r), nil
		case OpInterleave:
			return csp.Interleave(l, r), nil
		case OpGenPar:
			sync, err := ev.eventSet(x.Sync, scope)
			if err != nil {
				return nil, err
			}
			return csp.Par(l, sync, r), nil
		}
		return nil, fmt.Errorf("unknown process operator %d", x.Op)
	case ReplE:
		set, err := ev.valueSet(x.Set, scope)
		if err != nil {
			return nil, err
		}
		inner := cloneScope(scope)
		inner[x.Var] = true
		template, err := ev.proc(x.Body, inner)
		if err != nil {
			return nil, err
		}
		elems := set.Elems()
		branches := make([]csp.Process, len(elems))
		for i, v := range elems {
			branches[i] = template.Subst(x.Var, v)
		}
		if x.Op == OpInterleave {
			return csp.Interleave(branches...), nil
		}
		return csp.ExtChoice(branches...), nil
	case HideE:
		inner, err := ev.proc(x.P, scope)
		if err != nil {
			return nil, err
		}
		set, err := ev.eventSet(x.Set, scope)
		if err != nil {
			return nil, err
		}
		return csp.Hide(inner, set), nil
	case RenameE:
		inner, err := ev.proc(x.P, scope)
		if err != nil {
			return nil, err
		}
		mapping := make(map[string]string, len(x.Pairs))
		for _, pair := range x.Pairs {
			if !ev.chans[pair[0]] || !ev.chans[pair[1]] {
				return nil, fmt.Errorf("renaming %s <- %s involves undeclared channel",
					pair[0], pair[1])
			}
			mapping[pair[0]] = pair[1]
		}
		return csp.Rename(inner, mapping), nil
	case IfE:
		cond, err := ev.expr(x.Cond, scope)
		if err != nil {
			return nil, err
		}
		then, err := ev.proc(x.Then, scope)
		if err != nil {
			return nil, err
		}
		els, err := ev.proc(x.Else, scope)
		if err != nil {
			return nil, err
		}
		return csp.If(cond, then, els), nil
	case GuardE:
		cond, err := ev.expr(x.Cond, scope)
		if err != nil {
			return nil, err
		}
		body, err := ev.proc(x.P, scope)
		if err != nil {
			return nil, err
		}
		return csp.Guard(cond, body), nil
	}
	return nil, fmt.Errorf("unsupported process expression %T", pe)
}

func cloneScope(scope map[string]bool) map[string]bool {
	out := make(map[string]bool, len(scope)+1)
	for k, v := range scope {
		out[k] = v
	}
	return out
}
