package cspm

// Script is a parsed CSPm file: declarations, process equations and
// assertions, in source order.
type Script struct {
	Decls   []Decl
	Asserts []Assertion
}

// Decl is a top-level declaration.
type Decl interface{ isDecl() }

// ChannelDecl declares one or more channels sharing a field signature:
// channel a, b : T1.T2 (or channel done for event channels).
type ChannelDecl struct {
	Names  []string
	Fields []TypeExpr
}

func (ChannelDecl) isDecl() {}

// CtorDecl is one constructor of a datatype declaration.
type CtorDecl struct {
	Name   string
	Fields []TypeExpr
}

// DatatypeDecl declares datatype Name = C1 | C2.T | ...
type DatatypeDecl struct {
	Name  string
	Ctors []CtorDecl
}

func (DatatypeDecl) isDecl() {}

// NametypeDecl declares nametype Name = <set>, e.g. nametype N = {0..3}.
type NametypeDecl struct {
	Name string
	Set  SetExpr
}

func (NametypeDecl) isDecl() {}

// ProcDef is a process equation Name(params) = Body.
type ProcDef struct {
	Name   string
	Params []string
	Body   ProcExpr
}

func (ProcDef) isDecl() {}

// TypeExpr denotes a channel-field or constructor-field type.
type TypeExpr interface{ isTypeExpr() }

// TypeRef names a declared datatype or nametype (or the builtin Bool).
type TypeRef struct{ Name string }

func (TypeRef) isTypeExpr() {}

// TypeRange is the literal integer range {lo..hi}.
type TypeRange struct{ Lo, Hi int }

func (TypeRange) isTypeExpr() {}

// SetExpr denotes a set of events or of plain values.
type SetExpr interface{ isSetExpr() }

// ProdSet is the production set {| c1, c2 |}: every event of the listed
// channels.
type ProdSet struct{ Channels []string }

func (ProdSet) isSetExpr() {}

// ExplicitSet is {e1, e2, ...} with dotted-value elements.
type ExplicitSet struct{ Elems []ExprE }

func (ExplicitSet) isSetExpr() {}

// RangeSet is {lo..hi}.
type RangeSet struct{ Lo, Hi int }

func (RangeSet) isSetExpr() {}

// SetRef names a declared nametype or datatype used as a set.
type SetRef struct{ Name string }

func (SetRef) isSetExpr() {}

// SetUnion is union(S, T).
type SetUnion struct{ L, R SetExpr }

func (SetUnion) isSetExpr() {}

// ExprE is a value expression in the CSPm syntax tree. Identifier
// resolution (constructor vs bound variable) happens at evaluation.
type ExprE interface{ isExprE() }

// IntE is an integer literal.
type IntE struct{ Val int }

func (IntE) isExprE() {}

// BoolE is a boolean literal.
type BoolE struct{ Val bool }

func (BoolE) isExprE() {}

// IdentE is an identifier: a constructor, a bound variable, or (in
// process position) a process name.
type IdentE struct{ Name string }

func (IdentE) isExprE() {}

// DottedE is a constructor application in dotted form: Head.e1.e2.
type DottedE struct {
	Head string
	Args []ExprE
}

func (DottedE) isExprE() {}

// BinE is a binary operation.
type BinE struct {
	Op   string // one of + - * / % == != < <= > >= and or
	L, R ExprE
}

func (BinE) isExprE() {}

// UnE is a unary operation ("-" or "not").
type UnE struct {
	Op string
	X  ExprE
}

func (UnE) isExprE() {}

// MemberE is member(x, S).
type MemberE struct {
	Elem ExprE
	Set  SetExpr
}

func (MemberE) isExprE() {}

// ProcExpr is a process expression.
type ProcExpr interface{ isProcExpr() }

// StopE is STOP.
type StopE struct{}

func (StopE) isProcExpr() {}

// SkipE is SKIP.
type SkipE struct{}

func (SkipE) isProcExpr() {}

// FieldE is one communication field of a prefix.
type FieldE struct {
	Kind FieldKind
	Var  string  // input binder (FieldIn)
	In   SetExpr // optional input restriction c?x:S (FieldIn)
	Expr ExprE   // output value (FieldOut / FieldDot)
}

// FieldKind distinguishes the prefix field syntaxes.
type FieldKind int

// Prefix field kinds.
const (
	FieldDot FieldKind = iota + 1 // .e
	FieldOut                      // !e
	FieldIn                       // ?x or ?x:S
)

// PrefixE is the prefix process c<fields> -> Cont.
type PrefixE struct {
	Chan   string
	Fields []FieldE
	Cont   ProcExpr
}

func (PrefixE) isProcExpr() {}

// CallE references a process equation, possibly with arguments.
type CallE struct {
	Name string
	Args []ExprE
}

func (CallE) isProcExpr() {}

// BinProcE is a binary process operator application.
type BinProcE struct {
	Op   ProcOp
	L, R ProcExpr
	Sync SetExpr // for OpGenPar
}

func (BinProcE) isProcExpr() {}

// ProcOp enumerates binary process operators.
type ProcOp int

// Binary process operators.
const (
	OpExtChoice  ProcOp = iota + 1 // []
	OpIntChoice                    // |~|
	OpSeqComp                      // ;
	OpInterleave                   // |||
	OpGenPar                       // [| A |]
)

// ReplE is a replicated operator: [] x:S @ P (replicated external
// choice) or ||| x:S @ P (replicated interleaving), expanding the body
// over every member of the set.
type ReplE struct {
	Op   ProcOp // OpExtChoice or OpInterleave
	Var  string
	Set  SetExpr
	Body ProcExpr
}

func (ReplE) isProcExpr() {}

// HideE is P \ A.
type HideE struct {
	P   ProcExpr
	Set SetExpr
}

func (HideE) isProcExpr() {}

// RenameE is P[[a <- b, ...]] (channel renaming).
type RenameE struct {
	P     ProcExpr
	Pairs [][2]string
}

func (RenameE) isProcExpr() {}

// IfE is if b then P else Q.
type IfE struct {
	Cond ExprE
	Then ProcExpr
	Else ProcExpr
}

func (IfE) isProcExpr() {}

// GuardE is b & P.
type GuardE struct {
	Cond ExprE
	P    ProcExpr
}

func (GuardE) isProcExpr() {}

// AssertKind enumerates assertion forms.
type AssertKind int

// Assertion kinds.
const (
	AssertTraceRef AssertKind = iota + 1 // SPEC [T= IMPL
	AssertFailRef                        // SPEC [F= IMPL
	AssertFDRef                          // SPEC [FD= IMPL
	AssertDeadlockFree
	AssertDivergenceFree
)

// String names the assertion form using FDR's notation.
func (k AssertKind) String() string {
	switch k {
	case AssertTraceRef:
		return "[T="
	case AssertFailRef:
		return "[F="
	case AssertFDRef:
		return "[FD="
	case AssertDeadlockFree:
		return ":[deadlock free]"
	case AssertDivergenceFree:
		return ":[divergence free]"
	}
	return "?"
}

// Assertion is a checkable claim: a refinement between two process
// expressions, or a deadlock/divergence-freedom property of one.
type Assertion struct {
	Kind AssertKind
	Spec ProcExpr // left-hand side for refinements
	Impl ProcExpr // right-hand side; the subject for property asserts
	// Text is the original source fragment, for reporting.
	Text string
}
