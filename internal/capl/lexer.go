package capl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Error is a lexical or syntax error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("capl:%d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

// Lex tokenises CAPL source, returning the stream terminated by EOF.
// CANoe's `/*@!Encoding:1310*/` pragma and comments are skipped.
func Lex(src string) ([]Token, error) {
	lx := &lexer{src: []rune(src), line: 1, col: 1}
	var out []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

func (lx *lexer) peek() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peekAt(n int) rune {
	if lx.pos+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+n]
}

func (lx *lexer) advance() rune {
	r := lx.src[lx.pos]
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *lexer) errf(format string, args ...any) error {
	return &Error{Line: lx.line, Col: lx.col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) skip() error {
	for lx.pos < len(lx.src) {
		r := lx.peek()
		switch {
		case unicode.IsSpace(r):
			lx.advance()
		case r == '/' && lx.peekAt(1) == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case r == '/' && lx.peekAt(1) == '*':
			line, col := lx.line, lx.col
			lx.advance()
			lx.advance()
			for {
				if lx.pos >= len(lx.src) {
					return &Error{Line: line, Col: col, Msg: "unterminated block comment"}
				}
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func (lx *lexer) next() (Token, error) {
	if err := lx.skip(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: lx.line, Col: lx.col}
	if lx.pos >= len(lx.src) {
		tok.Kind = EOF
		return tok, nil
	}
	r := lx.peek()

	switch {
	case r == '#':
		// #include directive inside an includes section.
		start := lx.pos
		lx.advance()
		for lx.pos < len(lx.src) && unicode.IsLetter(lx.peek()) {
			lx.advance()
		}
		word := string(lx.src[start:lx.pos])
		if word != "#include" {
			return Token{}, lx.errf("unknown directive %q", word)
		}
		tok.Kind = KwHashInclude
		tok.Text = word
		return tok, nil

	case r == '_' || unicode.IsLetter(r):
		start := lx.pos
		for lx.pos < len(lx.src) && (lx.peek() == '_' || unicode.IsLetter(lx.peek()) || unicode.IsDigit(lx.peek())) {
			lx.advance()
		}
		text := string(lx.src[start:lx.pos])
		if kw, ok := keywords[text]; ok {
			tok.Kind = kw
			tok.Text = text
			return tok, nil
		}
		tok.Kind = IDENT
		tok.Text = text
		return tok, nil

	case unicode.IsDigit(r):
		return lx.number()

	case r == '"':
		lx.advance()
		var sb strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return Token{}, lx.errf("unterminated string literal")
			}
			c := lx.advance()
			if c == '"' {
				break
			}
			if c == '\\' {
				if lx.pos >= len(lx.src) {
					return Token{}, lx.errf("unterminated escape")
				}
				e := lx.advance()
				switch e {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case 'r':
					sb.WriteByte('\r')
				case '\\', '"', '\'':
					sb.WriteRune(e)
				case '0':
					sb.WriteByte(0)
				default:
					return Token{}, lx.errf("unknown escape \\%c", e)
				}
				continue
			}
			sb.WriteRune(c)
		}
		tok.Kind = STRING
		tok.Text = sb.String()
		return tok, nil

	case r == '\'':
		lx.advance()
		if lx.pos >= len(lx.src) {
			return Token{}, lx.errf("unterminated character literal")
		}
		c := lx.advance()
		if c == '\\' {
			if lx.pos >= len(lx.src) {
				return Token{}, lx.errf("unterminated escape")
			}
			e := lx.advance()
			switch e {
			case 'n':
				c = '\n'
			case 't':
				c = '\t'
			case '0':
				c = 0
			case '\\', '\'', '"':
				c = e
			default:
				return Token{}, lx.errf("unknown escape \\%c", e)
			}
		}
		if lx.pos >= len(lx.src) || lx.advance() != '\'' {
			return Token{}, lx.errf("unterminated character literal")
		}
		tok.Kind = CHAR
		tok.Text = string(c)
		tok.Int = int64(c)
		return tok, nil
	}

	three := string(r) + string(lx.peekAt(1)) + string(lx.peekAt(2))
	two := string(r) + string(lx.peekAt(1))

	consume := func(kind Kind, n int) (Token, error) {
		for i := 0; i < n; i++ {
			lx.advance()
		}
		tok.Kind = kind
		return tok, nil
	}

	switch three {
	case "<<=":
		return consume(SHLEQ, 3)
	case ">>=":
		return consume(SHREQ, 3)
	}
	switch two {
	case "<=":
		return consume(LE, 2)
	case ">=":
		return consume(GE, 2)
	case "==":
		return consume(EQ, 2)
	case "!=":
		return consume(NE, 2)
	case "&&":
		return consume(ANDAND, 2)
	case "||":
		return consume(OROR, 2)
	case "<<":
		return consume(SHL, 2)
	case ">>":
		return consume(SHR, 2)
	case "++":
		return consume(INC, 2)
	case "--":
		return consume(DEC, 2)
	case "+=":
		return consume(PLUSEQ, 2)
	case "-=":
		return consume(MINUSEQ, 2)
	case "*=":
		return consume(STAREQ, 2)
	case "/=":
		return consume(SLASHEQ, 2)
	case "%=":
		return consume(PERCENTEQ, 2)
	case "&=":
		return consume(AMPEQ, 2)
	case "|=":
		return consume(PIPEEQ, 2)
	case "^=":
		return consume(CARETEQ, 2)
	}
	single := map[rune]Kind{
		'(': LPAREN, ')': RPAREN, '{': LBRACE, '}': RBRACE,
		'[': LBRACKET, ']': RBRACKET, ';': SEMI, ',': COMMA, '.': DOT,
		'=': ASSIGN, '+': PLUS, '-': MINUS, '*': STAR, '/': SLASH,
		'%': PERCENT, '&': AMP, '|': PIPE, '^': CARET, '~': TILDE,
		'!': BANG, '<': LT, '>': GT, '?': QUESTION, ':': COLON,
	}
	if k, ok := single[r]; ok {
		return consume(k, 1)
	}
	return Token{}, lx.errf("unexpected character %q", string(r))
}

func (lx *lexer) number() (Token, error) {
	tok := Token{Line: lx.line, Col: lx.col}
	start := lx.pos
	if lx.peek() == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		lx.advance()
		lx.advance()
		hexStart := lx.pos
		for lx.pos < len(lx.src) && isHexDigit(lx.peek()) {
			lx.advance()
		}
		if lx.pos == hexStart {
			return Token{}, lx.errf("malformed hex literal")
		}
		text := string(lx.src[hexStart:lx.pos])
		n, err := strconv.ParseInt(text, 16, 64)
		if err != nil {
			return Token{}, lx.errf("bad hex literal 0x%s", text)
		}
		tok.Kind = INT
		tok.Int = n
		tok.Text = "0x" + text
		return tok, nil
	}
	for lx.pos < len(lx.src) && unicode.IsDigit(lx.peek()) {
		lx.advance()
	}
	isFloat := false
	if lx.peek() == '.' && unicode.IsDigit(lx.peekAt(1)) {
		isFloat = true
		lx.advance()
		for lx.pos < len(lx.src) && unicode.IsDigit(lx.peek()) {
			lx.advance()
		}
	}
	text := string(lx.src[start:lx.pos])
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, lx.errf("bad float literal %q", text)
		}
		tok.Kind = FLOAT
		tok.Flt = f
		tok.Text = text
		return tok, nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, lx.errf("bad integer literal %q", text)
	}
	tok.Kind = INT
	tok.Int = n
	tok.Text = text
	return tok, nil
}

func isHexDigit(r rune) bool {
	return unicode.IsDigit(r) || (r >= 'a' && r <= 'f') || (r >= 'A' && r <= 'F')
}
