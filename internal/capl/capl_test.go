package capl

import (
	"strings"
	"testing"
)

const ecuSource = `
/*@!Encoding:1310*/
includes
{
  #include "common.cin"
}

variables
{
  message 0x101 swInventoryReq;   // reqSw: VMG -> ECU
  message 0x102 swInventoryRpt;   // rptSw: ECU -> VMG
  message 0x103 applyUpdateReq;   // reqApp
  message 0x104 updateResultRpt;  // rptUpd
  msTimer rebootTimer;
  int updatesApplied = 0;
  byte fwBuffer[8];
}

on start
{
  write("ECU update module ready");
}

on message swInventoryReq
{
  output(swInventoryRpt);
}

on message applyUpdateReq
{
  if (checkPackage(this.byte(0)) == 1) {
    applyUpdate();
    output(updateResultRpt);
  }
}

on timer rebootTimer
{
  write("rebooted");
}

int checkPackage(int first)
{
  int ok;
  ok = 0;
  if (first >= 0 && first < 16) {
    ok = 1;
  }
  return ok;
}

void applyUpdate()
{
  updatesApplied = updatesApplied + 1;
}
`

func TestParseECUProgram(t *testing.T) {
	prog, err := Parse(ecuSource)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Includes) != 1 || prog.Includes[0] != "common.cin" {
		t.Errorf("includes = %v", prog.Includes)
	}
	msgs := prog.MessageDecls()
	if len(msgs) != 4 {
		t.Fatalf("message declarations = %d, want 4", len(msgs))
	}
	if msgs[0].Name != "swInventoryReq" || msgs[0].MsgID != 0x101 {
		t.Errorf("first message = %s/0x%x", msgs[0].Name, msgs[0].MsgID)
	}
	if len(prog.Handlers) != 4 {
		t.Fatalf("handlers = %d, want 4", len(prog.Handlers))
	}
	if got := len(prog.HandlersOf(OnMessage)); got != 2 {
		t.Errorf("on-message handlers = %d, want 2", got)
	}
	if got := len(prog.HandlersOf(OnStart)); got != 1 {
		t.Errorf("on-start handlers = %d, want 1", got)
	}
	if got := len(prog.HandlersOf(OnTimer)); got != 1 {
		t.Errorf("on-timer handlers = %d, want 1", got)
	}
	if len(prog.Functions) != 2 {
		t.Fatalf("functions = %d, want 2", len(prog.Functions))
	}
	if _, ok := prog.Function("checkPackage"); !ok {
		t.Error("checkPackage not found")
	}
}

func TestVariablesSectionDetails(t *testing.T) {
	prog, err := Parse(ecuSource)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*VarDecl{}
	for _, v := range prog.Variables {
		byName[v.Name] = v
	}
	if byName["rebootTimer"].Type.Base != TypeMsTimer {
		t.Error("rebootTimer not an msTimer")
	}
	upd := byName["updatesApplied"]
	if upd.Type.Base != TypeInt {
		t.Error("updatesApplied not an int")
	}
	if lit, ok := upd.Init.(*IntLit); !ok || lit.Val != 0 {
		t.Errorf("updatesApplied init = %#v, want 0", upd.Init)
	}
	buf := byName["fwBuffer"]
	if buf.Type.Base != TypeByte || len(buf.Type.ArrayDims) != 1 || buf.Type.ArrayDims[0] != 8 {
		t.Errorf("fwBuffer type = %s, want byte[8]", buf.Type)
	}
}

func TestOnMessageBodyStructure(t *testing.T) {
	prog, err := Parse(ecuSource)
	if err != nil {
		t.Fatal(err)
	}
	var apply *Handler
	for _, h := range prog.HandlersOf(OnMessage) {
		if h.Target == "applyUpdateReq" {
			apply = h
		}
	}
	if apply == nil {
		t.Fatal("on message applyUpdateReq not found")
	}
	ifStmt, ok := apply.Body.Stmts[0].(*IfStmt)
	if !ok {
		t.Fatalf("first stmt = %T, want IfStmt", apply.Body.Stmts[0])
	}
	cmp, ok := ifStmt.Cond.(*BinaryExpr)
	if !ok || cmp.Op != EQ {
		t.Fatalf("condition = %#v, want == comparison", ifStmt.Cond)
	}
	call, ok := cmp.L.(*CallExpr)
	if !ok || call.Fun != "checkPackage" {
		t.Fatalf("condition lhs = %#v, want checkPackage call", cmp.L)
	}
	member, ok := call.Args[0].(*MemberExpr)
	if !ok || member.Field != "byte" || !member.IsCall {
		t.Fatalf("argument = %#v, want this.byte(0)", call.Args[0])
	}
	if _, ok := member.X.(*ThisExpr); !ok {
		t.Error("member receiver is not `this`")
	}
}

func TestHandlerTargets(t *testing.T) {
	src := `
variables { message 0x200 m; }
on message 0x123 { output(m); }
on message * { write("any"); }
on key 'a' { write("key"); }
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Handlers[0].TargetID != 0x123 {
		t.Errorf("first handler id = %#x, want 0x123", prog.Handlers[0].TargetID)
	}
	if prog.Handlers[1].Target != "*" {
		t.Errorf("second handler target = %q, want *", prog.Handlers[1].Target)
	}
	if prog.Handlers[2].Kind != OnKey || prog.Handlers[2].Target != "a" {
		t.Errorf("third handler = %v %q", prog.Handlers[2].Kind, prog.Handlers[2].Target)
	}
}

func TestControlFlowStatements(t *testing.T) {
	src := `
void loops()
{
  int i, total;
  total = 0;
  for (i = 0; i < 10; i++) {
    total += i;
  }
  while (total > 0) {
    total--;
  }
  do {
    total++;
  } while (total < 3);
  switch (total) {
    case 1:
      total = 10;
      break;
    case 2:
    case 3:
      total = 20;
      break;
    default:
      total = 0;
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Functions[0]
	// int i, total; is one DeclStmt with two declarators.
	if ds, ok := fn.Body.Stmts[0].(*DeclStmt); !ok || len(ds.Decls) != 2 {
		t.Fatalf("first stmt = %#v, want DeclStmt with 2 declarators", fn.Body.Stmts[0])
	}
	kinds := make([]string, len(fn.Body.Stmts))
	for i, s := range fn.Body.Stmts {
		switch s.(type) {
		case *DeclStmt:
			kinds[i] = "block"
		case *ExprStmt:
			kinds[i] = "expr"
		case *ForStmt:
			kinds[i] = "for"
		case *WhileStmt:
			kinds[i] = "while"
		case *DoWhileStmt:
			kinds[i] = "do"
		case *SwitchStmt:
			kinds[i] = "switch"
		default:
			kinds[i] = "other"
		}
	}
	want := []string{"block", "expr", "for", "while", "do", "switch"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("statement kinds = %v, want %v", kinds, want)
	}
	sw := fn.Body.Stmts[5].(*SwitchStmt)
	if len(sw.Cases) != 4 {
		t.Errorf("switch cases = %d, want 4", len(sw.Cases))
	}
	if sw.Cases[3].Value != nil {
		t.Error("last case should be default")
	}
}

func TestExpressionPrecedence(t *testing.T) {
	src := "void f() { x = 1 + 2 * 3 == 7 && 4 < 5 || !0; }"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	stmt := prog.Functions[0].Body.Stmts[0].(*ExprStmt)
	asg, ok := stmt.X.(*AssignExpr)
	if !ok {
		t.Fatalf("stmt = %T, want assignment", stmt.X)
	}
	or, ok := asg.R.(*BinaryExpr)
	if !ok || or.Op != OROR {
		t.Fatalf("top operator = %#v, want ||", asg.R)
	}
	and, ok := or.L.(*BinaryExpr)
	if !ok || and.Op != ANDAND {
		t.Fatalf("left of || = %#v, want &&", or.L)
	}
	eq, ok := and.L.(*BinaryExpr)
	if !ok || eq.Op != EQ {
		t.Fatalf("left of && = %#v, want ==", and.L)
	}
	add, ok := eq.L.(*BinaryExpr)
	if !ok || add.Op != PLUS {
		t.Fatalf("left of == = %#v, want +", eq.L)
	}
	if mul, ok := add.R.(*BinaryExpr); !ok || mul.Op != STAR {
		t.Fatalf("right of + = %#v, want *", add.R)
	}
}

func TestTernaryAndCompoundAssign(t *testing.T) {
	src := "void f() { x += y > 0 ? 1 : 2; }"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	stmt := prog.Functions[0].Body.Stmts[0].(*ExprStmt)
	asg := stmt.X.(*AssignExpr)
	if asg.Op != PLUSEQ {
		t.Errorf("op = %s, want +=", asg.Op)
	}
	if _, ok := asg.R.(*CondExpr); !ok {
		t.Errorf("rhs = %T, want ternary", asg.R)
	}
}

func TestHexAndCharLiterals(t *testing.T) {
	src := "void f() { x = 0xFF; y = 'A'; }"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s0 := prog.Functions[0].Body.Stmts[0].(*ExprStmt).X.(*AssignExpr)
	if lit := s0.R.(*IntLit); lit.Val != 255 {
		t.Errorf("hex literal = %d, want 255", lit.Val)
	}
	s1 := prog.Functions[0].Body.Stmts[1].(*ExprStmt).X.(*AssignExpr)
	if lit := s1.R.(*IntLit); lit.Val != 65 {
		t.Errorf("char literal = %d, want 65", lit.Val)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"bad top level", "output(x);", "expected includes"},
		{"bad handler", "on frobnicate { }", "unknown event procedure"},
		{"missing semi", "void f() { x = 1 }", "expected ;"},
		{"bad assign target", "void f() { 1 = x; }", "invalid assignment target"},
		{"unterminated comment", "/* oops", "unterminated block comment"},
		{"unterminated string", `void f() { write("oops); }`, "unterminated string"},
		{"bad directive", "includes { #import \"x\" }", "unknown directive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("void f() {\n  x = ;\n}")
	if err == nil {
		t.Fatal("expected parse error")
	}
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
}

func TestMessageByDatabaseName(t *testing.T) {
	src := "variables { message EngineData engMsg; }"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Variables[0]
	if d.MsgName != "EngineData" || d.Name != "engMsg" || d.MsgID != -1 {
		t.Errorf("decl = %+v", d)
	}
}

func TestTypeSpecString(t *testing.T) {
	ts := TypeSpec{Base: TypeByte, ArrayDims: []int{8}}
	if ts.String() != "byte[8]" {
		t.Errorf("String() = %q, want byte[8]", ts.String())
	}
}
