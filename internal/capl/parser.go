package capl

import "fmt"

// Parse lexes and parses a CAPL source file.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) peekAt(n int) Token {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k Kind) (Token, bool) {
	if p.peek().Kind == k {
		return p.advance(), true
	}
	return Token{}, false
}

func (p *parser) expect(k Kind) (Token, error) {
	if p.peek().Kind == k {
		return p.advance(), nil
	}
	return Token{}, p.errf("expected %s, found %s", k, p.peek())
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.peek().Kind != EOF {
		switch p.peek().Kind {
		case KwIncludes:
			if err := p.parseIncludes(prog); err != nil {
				return nil, err
			}
		case KwVariables:
			if err := p.parseVariables(prog); err != nil {
				return nil, err
			}
		case KwOn:
			h, err := p.parseHandler()
			if err != nil {
				return nil, err
			}
			prog.Handlers = append(prog.Handlers, h)
		default:
			if TypeKinds(p.peek().Kind) {
				fn, err := p.parseFunc()
				if err != nil {
					return nil, err
				}
				prog.Functions = append(prog.Functions, fn)
				continue
			}
			return nil, p.errf("expected includes, variables, event procedure or function, found %s", p.peek())
		}
	}
	return prog, nil
}

func (p *parser) parseIncludes(prog *Program) error {
	p.advance() // includes
	if _, err := p.expect(LBRACE); err != nil {
		return err
	}
	for p.peek().Kind != RBRACE {
		if _, err := p.expect(KwHashInclude); err != nil {
			return err
		}
		path, err := p.expect(STRING)
		if err != nil {
			return err
		}
		prog.Includes = append(prog.Includes, path.Text)
	}
	_, err := p.expect(RBRACE)
	return err
}

func (p *parser) parseVariables(prog *Program) error {
	p.advance() // variables
	if _, err := p.expect(LBRACE); err != nil {
		return err
	}
	for p.peek().Kind != RBRACE && p.peek().Kind != EOF {
		decls, err := p.parseVarDecl()
		if err != nil {
			return err
		}
		prog.Variables = append(prog.Variables, decls...)
	}
	_, err := p.expect(RBRACE)
	return err
}

// parseTypeSpec parses a base type keyword.
func (p *parser) parseTypeSpec() (TypeSpec, error) {
	t := p.peek()
	if !TypeKinds(t.Kind) {
		return TypeSpec{}, p.errf("expected type, found %s", t)
	}
	p.advance()
	var base BaseType
	switch t.Kind {
	case KwInt:
		base = TypeInt
	case KwLong:
		base = TypeLong
	case KwByte:
		base = TypeByte
	case KwWord:
		base = TypeWord
	case KwDword:
		base = TypeDword
	case KwChar:
		base = TypeChar
	case KwFloat:
		base = TypeFloat
	case KwDouble:
		base = TypeDouble
	case KwVoid:
		base = TypeVoid
	case KwMessage:
		base = TypeMessage
	case KwMsTimer:
		base = TypeMsTimer
	case KwTimer:
		base = TypeTimer
	}
	return TypeSpec{Base: base}, nil
}

// parseVarDecl parses one declaration line, which may declare several
// names: `int a = 1, b;` or `message 0x101 req;`.
func (p *parser) parseVarDecl() ([]*VarDecl, error) {
	first := p.peek()
	ts, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	var msgID int64 = -1
	msgName := ""
	if ts.Base == TypeMessage {
		// `message 0x101 name;` or `message DBName name;` or `message * name;`.
		switch p.peek().Kind {
		case INT:
			msgID = p.advance().Int
		case STAR:
			p.advance()
			msgName = "*"
		case IDENT:
			// Either `message DBName name` (two idents) or `message name`
			// is invalid — peek one ahead.
			if p.peekAt(1).Kind == IDENT {
				msgName = p.advance().Text
			}
		}
	}
	var out []*VarDecl
	for {
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		d := &VarDecl{Type: ts, Name: name.Text, MsgID: msgID, MsgName: msgName, Line: first.Line, Col: first.Col}
		for p.peek().Kind == LBRACKET {
			p.advance()
			dim := 0
			if n, ok := p.accept(INT); ok {
				dim = int(n.Int)
			}
			if _, err := p.expect(RBRACKET); err != nil {
				return nil, err
			}
			d.Type.ArrayDims = append(d.Type.ArrayDims, dim)
		}
		if _, ok := p.accept(ASSIGN); ok {
			init, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		out = append(out, d)
		if _, ok := p.accept(COMMA); !ok {
			break
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseHandler() (*Handler, error) {
	on := p.peek()
	p.advance() // on
	h := &Handler{Line: on.Line, Col: on.Col, TargetID: -1}
	switch p.peek().Kind {
	case KwMessage:
		p.advance()
		h.Kind = OnMessage
		switch p.peek().Kind {
		case STAR:
			p.advance()
			h.Target = "*"
		case INT:
			h.TargetID = p.advance().Int
		case IDENT:
			h.Target = p.advance().Text
		default:
			return nil, p.errf("expected message name, id or * after 'on message'")
		}
	case KwTimer, KwMsTimer:
		p.advance()
		h.Kind = OnTimer
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		h.Target = name.Text
	case IDENT:
		name := p.advance()
		switch name.Text {
		case "start", "preStart":
			h.Kind = OnStart
		case "stopMeasurement":
			h.Kind = OnStopMeasurement
		case "key":
			h.Kind = OnKey
			key, err := p.expect(CHAR)
			if err != nil {
				return nil, err
			}
			h.Target = key.Text
		default:
			return nil, p.errf("unknown event procedure 'on %s'", name.Text)
		}
	default:
		return nil, p.errf("expected event kind after 'on', found %s", p.peek())
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	h.Body = body
	return h, nil
}

func (p *parser) parseFunc() (*FuncDecl, error) {
	first := p.peek()
	ret, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Return: ret, Name: name.Text, Line: first.Line, Col: first.Col}
	if p.peek().Kind != RPAREN {
		for {
			pts, err := p.parseTypeSpec()
			if err != nil {
				return nil, err
			}
			pname, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			pd := &VarDecl{Type: pts, Name: pname.Text, MsgID: -1, Line: pname.Line, Col: pname.Col}
			for p.peek().Kind == LBRACKET {
				p.advance()
				dim := 0
				if n, ok := p.accept(INT); ok {
					dim = int(n.Int)
				}
				if _, err := p.expect(RBRACKET); err != nil {
					return nil, err
				}
				pd.Type.ArrayDims = append(pd.Type.ArrayDims, dim)
			}
			fn.Params = append(fn.Params, pd)
			if _, ok := p.accept(COMMA); !ok {
				break
			}
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// --- Statements ---------------------------------------------------------

func (p *parser) parseBlock() (*BlockStmt, error) {
	brace := p.peek()
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	b := &BlockStmt{Line: brace.Line, Col: brace.Col}
	for p.peek().Kind != RBRACE && p.peek().Kind != EOF {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	if _, err := p.expect(RBRACE); err != nil {
		return nil, err
	}
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch t.Kind {
	case LBRACE:
		return p.parseBlock()
	case KwIf:
		return p.parseIf()
	case KwWhile:
		return p.parseWhile()
	case KwDo:
		return p.parseDoWhile()
	case KwFor:
		return p.parseFor()
	case KwSwitch:
		return p.parseSwitch()
	case KwBreak:
		p.advance()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.Line, Col: t.Col}, nil
	case KwContinue:
		p.advance()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.Line, Col: t.Col}, nil
	case KwReturn:
		p.advance()
		r := &ReturnStmt{Line: t.Line, Col: t.Col}
		if p.peek().Kind != SEMI {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.X = x
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return r, nil
	case SEMI:
		p.advance()
		return &BlockStmt{Line: t.Line, Col: t.Col}, nil
	}
	if TypeKinds(t.Kind) {
		decls, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Decls: decls, Line: t.Line, Col: t.Col}, nil
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &ExprStmt{X: x, Line: t.Line, Col: t.Col}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	kw := p.advance() // if
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then, Line: kw.Line, Col: kw.Col}
	if _, ok := p.accept(KwElse); ok {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	kw := p.advance() // while
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Line: kw.Line, Col: kw.Col}, nil
}

func (p *parser) parseDoWhile() (Stmt, error) {
	kw := p.advance() // do
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &DoWhileStmt{Body: body, Cond: cond, Line: kw.Line, Col: kw.Col}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	kw := p.advance() // for
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	s := &ForStmt{Line: kw.Line, Col: kw.Col}
	if p.peek().Kind != SEMI {
		if TypeKinds(p.peek().Kind) {
			decls, err := p.parseVarDecl() // consumes the semicolon
			if err != nil {
				return nil, err
			}
			s.Init = &DeclStmt{Decls: decls}
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Init = &ExprStmt{X: x, Line: kw.Line, Col: kw.Col}
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
		}
	} else {
		p.advance()
	}
	if p.peek().Kind != SEMI {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if p.peek().Kind != RPAREN {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

func (p *parser) parseSwitch() (Stmt, error) {
	kw := p.advance() // switch
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	s := &SwitchStmt{Tag: tag, Line: kw.Line, Col: kw.Col}
	for p.peek().Kind == KwCase || p.peek().Kind == KwDefault {
		c := &CaseClause{Line: p.peek().Line, Col: p.peek().Col}
		if p.peek().Kind == KwCase {
			p.advance()
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Value = v
		} else {
			p.advance()
		}
		if _, err := p.expect(COLON); err != nil {
			return nil, err
		}
		for p.peek().Kind != KwCase && p.peek().Kind != KwDefault &&
			p.peek().Kind != RBRACE && p.peek().Kind != EOF {
			st, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			c.Stmts = append(c.Stmts, st)
		}
		s.Cases = append(s.Cases, c)
	}
	if _, err := p.expect(RBRACE); err != nil {
		return nil, err
	}
	return s, nil
}

// --- Expressions ---------------------------------------------------------

func (p *parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

var assignOps = map[Kind]bool{
	ASSIGN: true, PLUSEQ: true, MINUSEQ: true, STAREQ: true,
	SLASHEQ: true, PERCENTEQ: true, AMPEQ: true, PIPEEQ: true,
	CARETEQ: true, SHLEQ: true, SHREQ: true,
}

func (p *parser) parseAssignExpr() (Expr, error) {
	left, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if assignOps[p.peek().Kind] {
		op := p.advance()
		switch left.(type) {
		case *Ident, *MemberExpr, *IndexExpr:
		default:
			return nil, p.errf("invalid assignment target")
		}
		right, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{Op: op.Kind, L: left, R: right, Line: op.Line, Col: op.Col}, nil
	}
	return left, nil
}

func (p *parser) parseCond() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != QUESTION {
		return cond, nil
	}
	q := p.advance()
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	els, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: cond, Then: then, Else: els, Line: q.Line, Col: q.Col}, nil
}

// binLevels lists binary operators from loosest to tightest.
var binLevels = [][]Kind{
	{OROR},
	{ANDAND},
	{PIPE},
	{CARET},
	{AMP},
	{EQ, NE},
	{LT, GT, LE, GE},
	{SHL, SHR},
	{PLUS, MINUS},
	{STAR, SLASH, PERCENT},
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	left, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		match := false
		for _, k := range binLevels[level] {
			if p.peek().Kind == k {
				match = true
				break
			}
		}
		if !match {
			return left, nil
		}
		op := p.advance()
		right, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op.Kind, L: left, R: right, Line: op.Line, Col: op.Col}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case BANG, TILDE, MINUS, PLUS, INC, DEC:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if t.Kind == PLUS {
			return x, nil
		}
		return &UnaryExpr{Op: t.Kind, X: x, Line: t.Line, Col: t.Col}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch t.Kind {
		case LBRACKET:
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACKET); err != nil {
				return nil, err
			}
			x = &IndexExpr{X: x, Index: idx, Line: t.Line, Col: t.Col}
		case DOT:
			p.advance()
			var fieldName string
			switch p.peek().Kind {
			case IDENT:
				fieldName = p.advance().Text
			case KwByte, KwWord, KwDword, KwLong, KwInt, KwChar:
				// Selectors like msg.byte(0) reuse type keywords.
				fieldName = p.advance().Text
			default:
				return nil, p.errf("expected member name after '.', found %s", p.peek())
			}
			m := &MemberExpr{X: x, Field: fieldName, Line: t.Line, Col: t.Col}
			if p.peek().Kind == LPAREN {
				p.advance()
				args, err := p.parseArgs()
				if err != nil {
					return nil, err
				}
				m.Args = args
				m.IsCall = true
			}
			x = m
		case INC, DEC:
			p.advance()
			x = &PostfixExpr{Op: t.Kind, X: x, Line: t.Line, Col: t.Col}
		default:
			return x, nil
		}
	}
}

func (p *parser) parseArgs() ([]Expr, error) {
	var args []Expr
	if p.peek().Kind != RPAREN {
		for {
			a, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if _, ok := p.accept(COMMA); !ok {
				break
			}
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case INT:
		p.advance()
		return &IntLit{Val: t.Int, Text: t.Text, Line: t.Line, Col: t.Col}, nil
	case CHAR:
		p.advance()
		return &IntLit{Val: t.Int, Text: "'" + t.Text + "'", Line: t.Line, Col: t.Col}, nil
	case FLOAT:
		p.advance()
		return &FloatLit{Val: t.Flt, Line: t.Line, Col: t.Col}, nil
	case STRING:
		p.advance()
		return &StrLit{Val: t.Text, Line: t.Line, Col: t.Col}, nil
	case KwThis:
		p.advance()
		return &ThisExpr{Line: t.Line, Col: t.Col}, nil
	case IDENT:
		p.advance()
		if p.peek().Kind == LPAREN {
			p.advance()
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Fun: t.Text, Args: args, Line: t.Line, Col: t.Col}, nil
		}
		return &Ident{Name: t.Text, Line: t.Line, Col: t.Col}, nil
	case LPAREN:
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("expected expression, found %s", t)
}
