package capl

import (
	"os"
	"path/filepath"
	"testing"
)

// seedCorpus loads every testdata file into the fuzz corpus (and, via
// the seed-execution pass of plain `go test`, doubles as a regression
// suite over previously found crashers).
func seedCorpus(f *testing.F) {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "*.can"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no seed files in testdata")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
}

// FuzzParse asserts the CAPL frontend is total: any input, however
// malformed, must produce a program or an error — never a panic, and
// never a nil program without an error.
func FuzzParse(f *testing.F) {
	seedCorpus(f)
	f.Add("")
	f.Add("variables { message 0x1 m; }")
	f.Add("on message m { output(m); } }")
	f.Add("void f(int x) { f(x); }")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Fatal("Parse returned nil program without error")
		}
	})
}
