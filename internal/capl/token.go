// Package capl implements a front-end for Vector's Communication Access
// Programming Language (CAPL), the C-based event-driven language used to
// program simulated ECU nodes in the CANoe IDE (section IV-B of the
// paper). The package provides a lexer, a recursive-descent parser and an
// AST; the translate package walks the AST to extract CSP models, and the
// canoe package interprets it against a simulated CAN bus.
//
// The subset covered corresponds to the constructs the paper's grammar
// handles plus the §VIII-A future-work extensions: includes/variables
// sections, message/timer/scalar/array declarations, `on start`,
// `on message`, `on timer` and `on key` event procedures, user-defined
// functions, the full C statement repertoire (if/while/do/for/switch)
// and C expressions, and the built-ins output(), setTimer(),
// cancelTimer() and write().
package capl

import "fmt"

// Kind enumerates CAPL token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota + 1
	IDENT
	INT    // decimal or 0x hex
	FLOAT  // floating literal
	STRING // "..."
	CHAR   // 'a'

	// Punctuation and operators.
	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACKET  // [
	RBRACKET  // ]
	SEMI      // ;
	COMMA     // ,
	DOT       // .
	ASSIGN    // =
	PLUS      // +
	MINUS     // -
	STAR      // *
	SLASH     // /
	PERCENT   // %
	AMP       // &
	PIPE      // |
	CARET     // ^
	TILDE     // ~
	BANG      // !
	LT        // <
	GT        // >
	LE        // <=
	GE        // >=
	EQ        // ==
	NE        // !=
	ANDAND    // &&
	OROR      // ||
	SHL       // <<
	SHR       // >>
	INC       // ++
	DEC       // --
	PLUSEQ    // +=
	MINUSEQ   // -=
	STAREQ    // *=
	SLASHEQ   // /=
	PERCENTEQ // %=
	AMPEQ     // &=
	PIPEEQ    // |=
	CARETEQ   // ^=
	SHLEQ     // <<=
	SHREQ     // >>=
	QUESTION  // ?
	COLON     // :

	// Keywords.
	KwIncludes
	KwVariables
	KwOn
	KwIf
	KwElse
	KwWhile
	KwDo
	KwFor
	KwSwitch
	KwCase
	KwDefault
	KwBreak
	KwContinue
	KwReturn
	KwThis
	KwMessage
	KwMsTimer
	KwTimer
	KwInt
	KwLong
	KwByte
	KwWord
	KwDword
	KwChar
	KwFloat
	KwDouble
	KwVoid
	KwHashInclude // #include
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", INT: "integer",
	FLOAT: "float", STRING: "string", CHAR: "char",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]", SEMI: ";", COMMA: ",", DOT: ".",
	ASSIGN: "=", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/",
	PERCENT: "%", AMP: "&", PIPE: "|", CARET: "^", TILDE: "~",
	BANG: "!", LT: "<", GT: ">", LE: "<=", GE: ">=", EQ: "==",
	NE: "!=", ANDAND: "&&", OROR: "||", SHL: "<<", SHR: ">>",
	INC: "++", DEC: "--", PLUSEQ: "+=", MINUSEQ: "-=", STAREQ: "*=",
	SLASHEQ: "/=", PERCENTEQ: "%=", AMPEQ: "&=", PIPEEQ: "|=",
	CARETEQ: "^=", SHLEQ: "<<=", SHREQ: ">>=", QUESTION: "?", COLON: ":",
	KwIncludes: "includes", KwVariables: "variables", KwOn: "on",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwDo: "do",
	KwFor: "for", KwSwitch: "switch", KwCase: "case",
	KwDefault: "default", KwBreak: "break", KwContinue: "continue",
	KwReturn: "return", KwThis: "this", KwMessage: "message",
	KwMsTimer: "msTimer", KwTimer: "timer", KwInt: "int", KwLong: "long",
	KwByte: "byte", KwWord: "word", KwDword: "dword", KwChar: "char",
	KwFloat: "float", KwDouble: "double", KwVoid: "void",
	KwHashInclude: "#include",
}

// String returns the kind's display name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"includes": KwIncludes, "variables": KwVariables, "on": KwOn,
	"if": KwIf, "else": KwElse, "while": KwWhile, "do": KwDo,
	"for": KwFor, "switch": KwSwitch, "case": KwCase,
	"default": KwDefault, "break": KwBreak, "continue": KwContinue,
	"return": KwReturn, "this": KwThis, "message": KwMessage,
	"msTimer": KwMsTimer, "timer": KwTimer, "int": KwInt, "long": KwLong,
	"byte": KwByte, "word": KwWord, "dword": KwDword, "char": KwChar,
	"float": KwFloat, "double": KwDouble, "void": KwVoid,
}

// Token is a lexical token with position information.
type Token struct {
	Kind Kind
	Text string
	Int  int64
	Flt  float64
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("identifier %q", t.Text)
	case INT:
		return fmt.Sprintf("integer %d", t.Int)
	case FLOAT:
		return fmt.Sprintf("float %g", t.Flt)
	case STRING:
		return fmt.Sprintf("string %q", t.Text)
	case CHAR:
		return fmt.Sprintf("char %q", t.Text)
	}
	return t.Kind.String()
}

// TypeKinds reports whether k begins a type specifier.
func TypeKinds(k Kind) bool {
	switch k {
	case KwInt, KwLong, KwByte, KwWord, KwDword, KwChar, KwFloat,
		KwDouble, KwVoid, KwMessage, KwMsTimer, KwTimer:
		return true
	}
	return false
}
