package capl

import "strconv"

// Program is a parsed CAPL source file: the four block types of a CAPL
// program (section IV-B.1 of the paper) in source order.
type Program struct {
	// Includes lists the #include paths of the includes section.
	Includes []string
	// Variables holds the declarations of the variables section.
	Variables []*VarDecl
	// Handlers holds the event procedures (on start/message/timer/key).
	Handlers []*Handler
	// Functions holds user-defined functions.
	Functions []*FuncDecl
}

// MessageDecls returns the message-variable declarations of the
// variables section, in order — the declarations the model extractor
// turns into CSPm channel/datatype declarations.
func (p *Program) MessageDecls() []*VarDecl {
	var out []*VarDecl
	for _, v := range p.Variables {
		if v.Type.Base == TypeMessage {
			out = append(out, v)
		}
	}
	return out
}

// HandlersOf returns the handlers of the given kind, in order.
func (p *Program) HandlersOf(kind HandlerKind) []*Handler {
	var out []*Handler
	for _, h := range p.Handlers {
		if h.Kind == kind {
			out = append(out, h)
		}
	}
	return out
}

// Function looks up a user-defined function by name.
func (p *Program) Function(name string) (*FuncDecl, bool) {
	for _, f := range p.Functions {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// BaseType enumerates CAPL's primitive and special types.
type BaseType int

// CAPL base types.
const (
	TypeInt BaseType = iota + 1
	TypeLong
	TypeByte
	TypeWord
	TypeDword
	TypeChar
	TypeFloat
	TypeDouble
	TypeVoid
	TypeMessage
	TypeMsTimer
	TypeTimer
)

var baseTypeNames = map[BaseType]string{
	TypeInt: "int", TypeLong: "long", TypeByte: "byte", TypeWord: "word",
	TypeDword: "dword", TypeChar: "char", TypeFloat: "float",
	TypeDouble: "double", TypeVoid: "void", TypeMessage: "message",
	TypeMsTimer: "msTimer", TypeTimer: "timer",
}

// String returns the CAPL spelling of the base type.
func (b BaseType) String() string { return baseTypeNames[b] }

// TypeSpec is a declared type: a base type plus optional array lengths.
type TypeSpec struct {
	Base BaseType
	// ArrayDims holds the declared array dimensions; 0 means unsized [].
	ArrayDims []int
}

// String renders the type in CAPL syntax.
func (t TypeSpec) String() string {
	out := t.Base.String()
	for _, d := range t.ArrayDims {
		if d == 0 {
			out += "[]"
		} else {
			out += "[" + strconv.Itoa(d) + "]"
		}
	}
	return out
}

// VarDecl is one declaration from the variables section or a local
// declaration statement.
type VarDecl struct {
	Type TypeSpec
	Name string
	// Init is the optional initialiser expression.
	Init Expr
	// MsgID is the CAN identifier for message declarations written as
	// `message 0x101 name;`. It is -1 when the message is declared by
	// database name (`message EngineData name;`) or for non-messages.
	MsgID int64
	// MsgName is the database message name for by-name declarations.
	MsgName string
	Line    int
	Col     int
}

// HandlerKind enumerates CAPL event procedure kinds.
type HandlerKind int

// Event procedure kinds.
const (
	OnStart HandlerKind = iota + 1
	OnMessage
	OnTimer
	OnKey
	OnStopMeasurement
)

var handlerKindNames = map[HandlerKind]string{
	OnStart: "start", OnMessage: "message", OnTimer: "timer",
	OnKey: "key", OnStopMeasurement: "stopMeasurement",
}

// String returns the CAPL spelling of the handler kind.
func (k HandlerKind) String() string { return handlerKindNames[k] }

// Handler is an event procedure: `on <kind> <target> { body }`.
type Handler struct {
	Kind HandlerKind
	// Target is the message variable/database name or timer name; "*"
	// for `on message *`; the key character for `on key`; empty for
	// `on start`.
	Target string
	// TargetID is the raw CAN identifier for `on message 0x123`; -1
	// otherwise.
	TargetID int64
	Body     *BlockStmt
	Line     int
	Col      int
}

// FuncDecl is a user-defined CAPL function.
type FuncDecl struct {
	Return TypeSpec
	Name   string
	Params []*VarDecl
	Body   *BlockStmt
	Line   int
	Col    int
}

// Stmt is a CAPL statement.
type Stmt interface{ isStmt() }

// BlockStmt is `{ stmts }`.
type BlockStmt struct {
	Stmts []Stmt
	Line  int
	Col   int
}

func (*BlockStmt) isStmt() {}

// DeclStmt is a local variable declaration line (possibly declaring
// several names, as in `int i, total;`).
type DeclStmt struct {
	Decls []*VarDecl
	Line  int
	Col   int
}

func (*DeclStmt) isStmt() {}

// ExprStmt is an expression evaluated for its side effects.
type ExprStmt struct {
	X    Expr
	Line int
	Col  int
}

func (*ExprStmt) isStmt() {}

// IfStmt is if (Cond) Then [else Else].
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Line int
	Col  int
}

func (*IfStmt) isStmt() {}

// WhileStmt is while (Cond) Body.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Line int
	Col  int
}

func (*WhileStmt) isStmt() {}

// DoWhileStmt is do Body while (Cond);.
type DoWhileStmt struct {
	Body Stmt
	Cond Expr
	Line int
	Col  int
}

func (*DoWhileStmt) isStmt() {}

// ForStmt is for (Init; Cond; Post) Body.
type ForStmt struct {
	Init Stmt // DeclStmt or ExprStmt; may be nil
	Cond Expr // may be nil
	Post Expr // may be nil
	Body Stmt
	Line int
	Col  int
}

func (*ForStmt) isStmt() {}

// SwitchStmt is switch (Tag) { cases }.
type SwitchStmt struct {
	Tag   Expr
	Cases []*CaseClause
	Line  int
	Col   int
}

func (*SwitchStmt) isStmt() {}

// CaseClause is one `case v:` (or `default:`) arm of a switch.
type CaseClause struct {
	// Value is nil for default.
	Value Expr
	Stmts []Stmt
	Line  int
	Col   int
}

// BreakStmt is break;.
type BreakStmt struct{ Line, Col int }

func (*BreakStmt) isStmt() {}

// ContinueStmt is continue;.
type ContinueStmt struct{ Line, Col int }

func (*ContinueStmt) isStmt() {}

// ReturnStmt is return [expr];.
type ReturnStmt struct {
	X    Expr // may be nil
	Line int
	Col  int
}

func (*ReturnStmt) isStmt() {}

// Expr is a CAPL expression.
type Expr interface{ isExpr() }

// IntLit is an integer (or character) literal.
type IntLit struct {
	Val  int64
	Text string
	Line int
	Col  int
}

func (*IntLit) isExpr() {}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Val  float64
	Line int
	Col  int
}

func (*FloatLit) isExpr() {}

// StrLit is a string literal.
type StrLit struct {
	Val  string
	Line int
	Col  int
}

func (*StrLit) isExpr() {}

// Ident is a name reference.
type Ident struct {
	Name string
	Line int
	Col  int
}

func (*Ident) isExpr() {}

// ThisExpr is the `this` keyword: the message that triggered the
// enclosing `on message` handler.
type ThisExpr struct{ Line, Col int }

func (*ThisExpr) isExpr() {}

// BinaryExpr is a binary operation; Op is the token kind of the
// operator.
type BinaryExpr struct {
	Op   Kind
	L, R Expr
	Line int
	Col  int
}

func (*BinaryExpr) isExpr() {}

// UnaryExpr is a prefix unary operation (!, ~, -, ++, --).
type UnaryExpr struct {
	Op   Kind
	X    Expr
	Line int
	Col  int
}

func (*UnaryExpr) isExpr() {}

// PostfixExpr is x++ or x--.
type PostfixExpr struct {
	Op   Kind // INC or DEC
	X    Expr
	Line int
	Col  int
}

func (*PostfixExpr) isExpr() {}

// AssignExpr is an assignment, possibly compound (+= etc.); Op is the
// assignment token kind.
type AssignExpr struct {
	Op   Kind
	L, R Expr
	Line int
	Col  int
}

func (*AssignExpr) isExpr() {}

// CondExpr is the ternary c ? t : f.
type CondExpr struct {
	Cond, Then, Else Expr
	Line             int
	Col              int
}

func (*CondExpr) isExpr() {}

// CallExpr is f(args): a user function or CAPL built-in such as
// output(), setTimer(), cancelTimer() or write().
type CallExpr struct {
	Fun  string
	Args []Expr
	Line int
	Col  int
}

func (*CallExpr) isExpr() {}

// MemberExpr is x.field (e.g. msg.ID) or x.fn(args) (e.g. this.byte(0)).
type MemberExpr struct {
	X     Expr
	Field string
	// Args is non-nil when the member is invoked as a method.
	Args   []Expr
	IsCall bool
	Line   int
	Col    int
}

func (*MemberExpr) isExpr() {}

// IndexExpr is x[i].
type IndexExpr struct {
	X, Index Expr
	Line     int
	Col      int
}

func (*IndexExpr) isExpr() {}
