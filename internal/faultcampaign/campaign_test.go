package faultcampaign

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestMatrixShape(t *testing.T) {
	scenarios := Matrix(Config{Seed: 1})
	if len(scenarios) < 50 {
		t.Fatalf("default matrix has %d scenarios, want >= 50", len(scenarios))
	}
	names := map[string]bool{}
	seeds := map[int64]bool{}
	for _, sc := range scenarios {
		if names[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		names[sc.Name] = true
		if seeds[sc.Seed] {
			t.Errorf("duplicate scenario seed %d (%s)", sc.Seed, sc.Name)
		}
		seeds[sc.Seed] = true
		if sc.Horizon <= 0 || sc.TargetCycles <= 0 {
			t.Errorf("scenario %q missing defaults: %+v", sc.Name, sc)
		}
	}
	// Every fault kind must appear, for both variants.
	for k := Kind(0); k < numKinds; k++ {
		for _, v := range []Variant{Naive, Hardened} {
			found := false
			for _, sc := range scenarios {
				if sc.Kind == k && sc.Variant == v {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("matrix missing kind %v for variant %v", k, v)
			}
		}
	}
}

func TestRunScenarioDeterministic(t *testing.T) {
	scenarios := Matrix(Config{Seed: 7})
	// One representative per kind keeps the test fast while still
	// covering every fault installer.
	seen := map[Kind]bool{}
	for _, sc := range scenarios {
		if seen[sc.Kind] {
			continue
		}
		seen[sc.Kind] = true
		a := RunScenario(sc)
		b := RunScenario(sc)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("scenario %q not deterministic:\n%+v\nvs\n%+v", sc.Name, a, b)
		}
	}
}

func TestCampaignReportByteIdentical(t *testing.T) {
	cfg := Config{Seed: 42, SeedsPerCase: 1}
	r1, r2 := Run(cfg), Run(cfg)
	j1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := r2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("same seed produced different JSON reports")
	}
	if r1.Text() != r2.Text() {
		t.Error("same seed produced different text reports")
	}
	// A different master seed must actually change the scenario seeds.
	r3 := Run(Config{Seed: 43, SeedsPerCase: 1})
	if r1.Outcomes[0].Scenario.Seed == r3.Outcomes[0].Scenario.Seed {
		t.Error("different master seeds produced the same scenario seed")
	}
}

// campaign42 caches the reference campaign shared by the verdict tests.
var campaign42 *Report

func report42(t *testing.T) *Report {
	t.Helper()
	if campaign42 == nil {
		campaign42 = Run(Config{Seed: 42})
	}
	return campaign42
}

func outcomes(r *Report, k Kind, v Variant) []Outcome {
	var out []Outcome
	for _, o := range r.Outcomes {
		if o.Scenario.Kind == k && o.Scenario.Variant == v {
			out = append(out, o)
		}
	}
	return out
}

func TestDropScenariosNeedRetries(t *testing.T) {
	r := report42(t)
	for _, o := range outcomes(r, Drop, Naive) {
		if o.Verdict == Converged {
			t.Errorf("%s: naive gateway converged under random loss", o.Scenario.Name)
		}
		if o.Verdict != Converged && o.DeliveredFrames > 0 && len(o.TailTrace) == 0 {
			t.Errorf("%s: non-converged outcome missing counterexample trace", o.Scenario.Name)
		}
	}
	for _, o := range outcomes(r, Drop, Hardened) {
		if o.Verdict != Converged {
			t.Errorf("%s: hardened gateway did not converge under random loss: %s %s",
				o.Scenario.Name, o.VerdictName, o.Violation)
		}
	}
}

func TestBurstLossScenariosNeedRetries(t *testing.T) {
	r := report42(t)
	for _, o := range outcomes(r, BurstLoss, Naive) {
		if o.Verdict == Converged {
			t.Errorf("%s: naive gateway converged under burst loss", o.Scenario.Name)
		}
	}
	for _, o := range outcomes(r, BurstLoss, Hardened) {
		if o.Verdict != Converged {
			t.Errorf("%s: hardened gateway did not converge under burst loss: %s",
				o.Scenario.Name, o.VerdictName)
		}
	}
}

func TestDuplicateSuppression(t *testing.T) {
	r := report42(t)
	for _, o := range outcomes(r, Duplicate, Naive) {
		if o.Verdict != Violated || !strings.Contains(o.Violation, "applied") {
			t.Errorf("%s: naive ECU should over-apply under duplication, got %s %q",
				o.Scenario.Name, o.VerdictName, o.Violation)
		}
	}
	for _, o := range outcomes(r, Duplicate, Hardened) {
		if o.Verdict != Converged {
			t.Errorf("%s: sequence-bit suppression should absorb duplicates, got %s %q",
				o.Scenario.Name, o.VerdictName, o.Violation)
		}
		if o.UpdatesApplied > o.RequestedUpdates {
			t.Errorf("%s: hardened ECU applied %d > requested %d",
				o.Scenario.Name, o.UpdatesApplied, o.RequestedUpdates)
		}
	}
}

func TestCorruptScenariosUseErrorConfinement(t *testing.T) {
	r := report42(t)
	for _, v := range []Variant{Naive, Hardened} {
		for _, o := range outcomes(r, CorruptDetected, v) {
			if o.Stats.ErrorFrames == 0 {
				t.Errorf("%s: no error frames recorded", o.Scenario.Name)
			}
			if o.Stats.Retransmissions == 0 {
				t.Errorf("%s: no automatic retransmissions recorded", o.Scenario.Name)
			}
		}
	}
	// Detected corruption is absorbed below the application layer: the
	// controller retransmits, so even the naive protocol converges.
	for _, o := range outcomes(r, CorruptDetected, Naive) {
		if o.Verdict != Converged {
			t.Errorf("%s: expected controller-level retransmission to rescue the naive protocol, got %s",
				o.Scenario.Name, o.VerdictName)
		}
	}
}

func TestTamperScenariosViolate(t *testing.T) {
	r := report42(t)
	violated := 0
	for _, v := range []Variant{Naive, Hardened} {
		for _, o := range outcomes(r, TamperUndetected, v) {
			if o.Verdict == Violated {
				violated++
				if !strings.Contains(o.Violation, "identifier") && !strings.Contains(o.Violation, "applied") {
					t.Errorf("%s: unexpected violation %q", o.Scenario.Name, o.Violation)
				}
			}
		}
	}
	if violated == 0 {
		t.Error("no tamper scenario produced a property violation")
	}
}

func TestTargetedDropExhaustsBoundedRetries(t *testing.T) {
	r := report42(t)
	for _, o := range outcomes(r, TargetedDrop, Hardened) {
		if o.Verdict != TimedOut {
			t.Errorf("%s: expected timeout under targeted drop, got %s", o.Scenario.Name, o.VerdictName)
		}
		if !o.GaveUp {
			t.Errorf("%s: hardened gateway should exhaust its bounded retries", o.Scenario.Name)
		}
	}
	for _, o := range outcomes(r, TargetedDrop, Naive) {
		if o.GaveUp {
			t.Errorf("%s: naive gateway has no retry budget to exhaust", o.Scenario.Name)
		}
	}
}

func TestReportTallies(t *testing.T) {
	r := report42(t)
	if r.Scenarios != len(r.Outcomes) {
		t.Errorf("Scenarios=%d but %d outcomes", r.Scenarios, len(r.Outcomes))
	}
	if got := r.Converged + r.TimedOut + r.Violated + r.Errored; got != r.Scenarios {
		t.Errorf("verdict tallies sum to %d, want %d", got, r.Scenarios)
	}
	if r.Errored != 0 {
		for _, o := range r.Outcomes {
			if o.Verdict == Errored {
				t.Errorf("%s: simulation error: %s", o.Scenario.Name, o.Error)
			}
		}
	}
	if !strings.Contains(r.Summary(), "scenarios") {
		t.Errorf("summary %q missing scenario count", r.Summary())
	}
}
