package faultcampaign

import (
	"math/rand"

	"repro/internal/canbus"
	"repro/internal/canoe"
)

// maxInjectedFrames caps how many frames the gremlin may fabricate
// (duplicates, replays), so a re-duplicated duplicate cannot cascade
// unboundedly.
const maxInjectedFrames = 256

// gremlin is the campaign's bus-level attacker: a tap without a CAPL
// program used to fabricate traffic (duplicates, delayed replays,
// babble floods).
type gremlin struct {
	bus      *canbus.Bus
	tap      *canbus.Tap
	injected int
	// onFrame, when set, observes every delivered frame.
	onFrame func(t canbus.Time, f canbus.Frame)
}

func newGremlin(bus *canbus.Bus) *gremlin {
	g := &gremlin{bus: bus}
	g.tap = bus.Attach("__gremlin__", canbus.ReceiverFunc(func(t canbus.Time, f canbus.Frame) {
		if g.onFrame != nil {
			g.onFrame(t, f)
		}
	}))
	return g
}

// replay schedules a fabricated (re)transmission of the frame.
func (g *gremlin) replay(at canbus.Time, f canbus.Frame) {
	if g.injected >= maxInjectedFrames {
		return
	}
	g.injected++
	clone := f.Clone()
	_ = g.bus.Schedule(at, func() {
		_ = g.bus.Transmit(g.tap, clone)
	})
}

// installFault wires the scenario's fault model into the simulation:
// injector hooks for in-flight mutation and loss, and a gremlin tap for
// fabricated traffic.
func installFault(sc Scenario, sim *canoe.Simulation, inj *canbus.Injector, rng *rand.Rand) {
	g := newGremlin(sim.Bus)
	switch sc.Kind {
	case Drop:
		inj.Drop = func(canbus.Time, canbus.Frame) bool {
			return rng.Float64() < sc.Prob
		}
	case CorruptDetected:
		inj.Corrupt = func(_ canbus.Time, f canbus.Frame) canbus.Frame {
			if rng.Float64() < sc.Prob {
				flipPayloadBit(&f, rng)
			}
			return f
		}
	case TamperUndetected:
		inj.Tamper = func(_ canbus.Time, f canbus.Frame) canbus.Frame {
			if rng.Float64() >= sc.Prob {
				return f
			}
			if rng.Intn(2) == 0 {
				// Spoof the identifier: flip one of the low bits, turning
				// e.g. an inventory request into an apply-update request.
				f.ID ^= 1 << uint(rng.Intn(3))
			} else {
				flipPayloadBit(&f, rng)
			}
			return f
		}
	case Duplicate:
		g.onFrame = func(t canbus.Time, f canbus.Frame) {
			if rng.Float64() < sc.Prob {
				g.replay(t+200*canbus.Microsecond, f)
			}
		}
	case Delay:
		inj.Drop = func(t canbus.Time, f canbus.Frame) bool {
			if rng.Float64() < sc.Prob {
				g.replay(t+sc.DelayBy, f)
				return true
			}
			return false
		}
	case BurstLoss:
		inj.Drop = func(t canbus.Time, _ canbus.Frame) bool {
			return sc.Period > 0 && t%sc.Period < sc.Width
		}
	case BabblingIdiot:
		var flood func()
		flood = func() {
			_ = g.bus.Transmit(g.tap, canbus.Frame{ID: sc.TargetID, Data: []byte{0xBB}})
			next := g.bus.Now() + sc.Period
			if next < sc.Width {
				_ = g.bus.Schedule(next, flood)
			}
		}
		_ = g.bus.Schedule(0, flood)
	case TargetedDrop:
		inj.Drop = func(_ canbus.Time, f canbus.Frame) bool {
			return f.ID == sc.TargetID
		}
	}
}

// flipPayloadBit flips one random payload bit in place (or a low ID bit
// for payload-less frames).
func flipPayloadBit(f *canbus.Frame, rng *rand.Rand) {
	if len(f.Data) == 0 {
		f.ID ^= 1
		return
	}
	i := rng.Intn(len(f.Data))
	f.Data[i] ^= 1 << uint(rng.Intn(8))
}
