package faultcampaign

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Report is a full campaign result. It contains no wall-clock times and
// no map-ordered data, so rendering it (JSON or text) is byte-identical
// for identical configurations.
type Report struct {
	// MasterSeed is the campaign seed every scenario seed derives from.
	MasterSeed int64 `json:"masterSeed"`
	// HorizonUs and TargetCycles echo the campaign configuration.
	HorizonUs    int64 `json:"horizonUs"`
	TargetCycles int   `json:"targetCycles"`
	// Scenarios is the number of outcomes.
	Scenarios int `json:"scenarios"`
	// Verdict tallies.
	Converged int `json:"converged"`
	TimedOut  int `json:"timedOut"`
	Violated  int `json:"violated"`
	Errored   int `json:"errored"`
	// Outcomes holds every scenario result in matrix order.
	Outcomes []Outcome `json:"outcomes"`
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Text renders the report as a fixed-width table plus detail lines for
// non-converged scenarios.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault campaign: %d scenarios (seed %d, horizon %dus, target %d cycles)\n",
		r.Scenarios, r.MasterSeed, r.HorizonUs, r.TargetCycles)
	fmt.Fprintf(&b, "verdicts: %d converged, %d timed out, %d violated, %d errored\n\n",
		r.Converged, r.TimedOut, r.Violated, r.Errored)

	nameW := len("scenario")
	for _, o := range r.Outcomes {
		if len(o.Scenario.Name) > nameW {
			nameW = len(o.Scenario.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %-10s  %7s  %7s  %s\n", nameW, "scenario", "verdict", "applied", "req", "detail")
	for _, o := range r.Outcomes {
		detail := ""
		switch o.Verdict {
		case Violated:
			detail = o.Violation
		case Errored:
			detail = o.Error
		case TimedOut:
			if o.GaveUp {
				detail = "gateway exhausted retries"
			}
		}
		fmt.Fprintf(&b, "%-*s  %-10s  %7d  %7d  %s\n",
			nameW, o.Scenario.Name, o.VerdictName, o.UpdatesApplied, o.RequestedUpdates, detail)
	}

	// Per-variant summary: the robustness headline.
	for _, v := range []Variant{Naive, Hardened} {
		conv, total := 0, 0
		for _, o := range r.Outcomes {
			if o.Scenario.Variant != v {
				continue
			}
			total++
			if o.Verdict == Converged {
				conv++
			}
		}
		if total > 0 {
			fmt.Fprintf(&b, "\n%s variant: %d/%d scenarios converged", v, conv, total)
		}
	}
	b.WriteString("\n")
	return b.String()
}

// Summary is a one-line digest for embedding in other reports.
func (r *Report) Summary() string {
	return fmt.Sprintf("%d scenarios: %d converged, %d timed out, %d violated, %d errored",
		r.Scenarios, r.Converged, r.TimedOut, r.Violated, r.Errored)
}
