package faultcampaign

import (
	"bytes"
	"testing"
)

// TestReportByteIdenticalAcrossWorkerCounts pins the parallelism
// contract: the scenario matrix is derived from the seed before any
// worker starts and outcomes are aggregated in matrix order, so the
// report never depends on scheduling.
func TestReportByteIdenticalAcrossWorkerCounts(t *testing.T) {
	base := Config{Seed: 42, SeedsPerCase: 1, Workers: 1}
	ref := Run(base)
	refJSON, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4} {
		cfg := base
		cfg.Workers = workers
		got := Run(cfg)
		gotJSON, err := got.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refJSON, gotJSON) {
			t.Errorf("workers=%d JSON differs from sequential run:\n%s\n----\n%s",
				workers, refJSON, gotJSON)
		}
		if ref.Text() != got.Text() {
			t.Errorf("workers=%d text report differs from sequential run", workers)
		}
	}
}
