package faultcampaign

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// TestReportByteIdenticalWithObservability pins the observability
// contract: obs counters mirror — never replace — the report's own
// statistics, and all instrumentation output stays out of the report,
// so a campaign with metrics, spans and progress fully enabled is
// byte-identical to one with observability off.
func TestReportByteIdenticalWithObservability(t *testing.T) {
	base := Config{Seed: 42, SeedsPerCase: 1, Workers: 2}
	ref := Run(base)
	refJSON, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}

	var trace, progress bytes.Buffer
	o := obs.New(
		obs.WithSpanRing(64),
		obs.WithSpanSink(obs.NewJSONLSink(&trace)),
		obs.WithProgress(obs.TextProgress(&progress), 0),
	)
	cfg := base
	cfg.Obs = o
	got := Run(cfg)
	gotJSON, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, gotJSON) {
		t.Errorf("JSON report differs with observability on:\n%s\n----\n%s", refJSON, gotJSON)
	}
	if ref.Text() != got.Text() {
		t.Error("text report differs with observability on")
	}

	snap := o.Snapshot()
	if snap.Counters["faultcampaign.scenarios"] != int64(len(got.Outcomes)) {
		t.Errorf("scenarios counter = %d, want %d", snap.Counters["faultcampaign.scenarios"], len(got.Outcomes))
	}
	if snap.Counters["canbus.frames.delivered"] == 0 {
		t.Error("bus counters not mirrored into the observer")
	}
	if trace.Len() == 0 {
		t.Error("no spans reached the sink")
	}
	if progress.Len() == 0 {
		t.Error("no progress lines emitted")
	}
}
