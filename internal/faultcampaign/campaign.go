// Package faultcampaign is a deterministic, seeded fault-injection
// campaign engine over the simulated CAN network. It sweeps structured
// fault scenarios — frame loss, CRC-detected corruption, undetected
// tampering, duplication, delay, burst loss, babbling-idiot flooding
// and targeted-identifier attacks — across the OTA case study nodes,
// runs each scenario under the ISO 11898 error-confinement model, and
// judges the outcome: did the update protocol converge, time out, or
// violate a safety property? Every scenario carries its own seed, so a
// campaign report is exactly reproducible, and failed scenarios carry a
// counterexample tail of the delivered bus traffic.
package faultcampaign

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/canbus"
	"repro/internal/canoe"
	"repro/internal/obs"
	"repro/internal/ota"
)

// Kind is a fault-scenario class.
type Kind int

// Fault-scenario classes, the taxonomy of the campaign matrix.
const (
	// Drop loses frames at random with probability Prob (receiver-side
	// loss; the transmitter believes the frame made it).
	Drop Kind = iota
	// CorruptDetected flips wire bits that the CAN CRC catches: the
	// frame is destroyed by an error frame, error counters move, and the
	// controller retransmits (ISO 11898 error confinement).
	CorruptDetected
	// TamperUndetected flips bits that evade the CRC — the mutated
	// frame, possibly with a spoofed identifier, is delivered as-is.
	TamperUndetected
	// Duplicate re-injects delivered frames a short time later, the
	// classic at-least-once delivery fault retransmission layers create.
	Duplicate
	// Delay suppresses a frame and replays it after DelayBy, modelling
	// queueing jitter in a gateway.
	Delay
	// BurstLoss drops every frame inside recurring windows of Width
	// every Period, like an intermittent connector.
	BurstLoss
	// BabblingIdiot floods the bus with a high-priority identifier
	// (TargetID) every Period during the first Width of the run,
	// starving legitimate traffic through arbitration.
	BabblingIdiot
	// TargetedDrop silently kills every frame with identifier TargetID —
	// a selective denial-of-service against one message type.
	TargetedDrop

	numKinds
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case CorruptDetected:
		return "corrupt"
	case TamperUndetected:
		return "tamper"
	case Duplicate:
		return "duplicate"
	case Delay:
		return "delay"
	case BurstLoss:
		return "burst-loss"
	case BabblingIdiot:
		return "babbling-idiot"
	case TargetedDrop:
		return "targeted-drop"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Variant selects which protocol implementation rides the faulty bus.
type Variant int

// Protocol variants under test.
const (
	// Naive is the paper's original VMG/ECU pair: no retransmission, no
	// duplicate suppression.
	Naive Variant = iota
	// Hardened is the retransmission variant: ack timers, bounded retry
	// with backoff, sequence-bit duplicate suppression.
	Hardened
)

// String names the variant.
func (v Variant) String() string {
	if v == Hardened {
		return "hardened"
	}
	return "naive"
}

// Scenario is one cell of the campaign matrix. The zero value is not
// runnable; scenarios come from Matrix or are built explicitly.
type Scenario struct {
	// Name uniquely identifies the scenario inside a campaign.
	Name string `json:"name"`
	// Kind is the fault class.
	Kind Kind `json:"kind"`
	// KindName is Kind.String(), carried for readable reports.
	KindName string `json:"kindName"`
	// Variant is the protocol implementation under test.
	Variant Variant `json:"variant"`
	// VariantName is Variant.String().
	VariantName string `json:"variantName"`
	// Seed drives every random decision of the scenario.
	Seed int64 `json:"seed"`
	// Prob is the per-frame fault probability (probabilistic kinds).
	Prob float64 `json:"prob,omitempty"`
	// TargetID is the attacked identifier (TargetedDrop, BabblingIdiot).
	TargetID uint32 `json:"targetId,omitempty"`
	// DelayBy is the replay delay (Delay).
	DelayBy canbus.Time `json:"delayByUs,omitempty"`
	// Period is the burst recurrence or babble interval.
	Period canbus.Time `json:"periodUs,omitempty"`
	// Width is the burst width or babble window.
	Width canbus.Time `json:"widthUs,omitempty"`
	// Horizon is how long the measurement runs (simulated time).
	Horizon canbus.Time `json:"horizonUs"`
	// TargetCycles is how many applied updates count as convergence.
	TargetCycles int `json:"targetCycles"`
}

// Verdict classifies a scenario outcome.
type Verdict int

// Scenario verdicts.
const (
	// Converged: the ECU applied at least TargetCycles updates.
	Converged Verdict = iota
	// TimedOut: the protocol made insufficient progress within Horizon.
	TimedOut
	// Violated: a monitored safety property failed (spoofed identifier,
	// unsolicited result, or more updates applied than requested).
	Violated
	// Errored: the simulation itself failed.
	Errored
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Converged:
		return "converged"
	case TimedOut:
		return "timed-out"
	case Violated:
		return "violated"
	case Errored:
		return "error"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Outcome is the judged result of one scenario run.
type Outcome struct {
	Scenario Scenario `json:"scenario"`
	Verdict  Verdict  `json:"-"`
	// VerdictName is Verdict.String(), the serialised form.
	VerdictName string `json:"verdict"`
	// UpdatesApplied is the ECU's update counter at the end of the run.
	UpdatesApplied int `json:"updatesApplied"`
	// RequestedUpdates counts apply-update frames the VMG transmitted.
	RequestedUpdates int `json:"requestedUpdates"`
	// GaveUp reports whether the hardened gateway exhausted its retries.
	GaveUp bool `json:"gaveUp,omitempty"`
	// Violation describes the failed property (Violated verdict).
	Violation string `json:"violation,omitempty"`
	// Error is the simulation error (Errored verdict).
	Error string `json:"error,omitempty"`
	// VMGState and ECUState are the final error-confinement states.
	VMGState string `json:"vmgState"`
	ECUState string `json:"ecuState"`
	// Stats is the bus counter snapshot.
	Stats canbus.Stats `json:"stats"`
	// DeliveredFrames is the total delivered-frame count of the trace.
	DeliveredFrames int `json:"deliveredFrames"`
	// TailTrace is the counterexample material: the last delivered
	// frames, rendered candump-style, for non-converged scenarios.
	TailTrace []string `json:"tailTrace,omitempty"`
}

// Config parameterises a campaign.
type Config struct {
	// Seed is the master seed; per-scenario seeds derive from it.
	Seed int64
	// SeedsPerCase replicates each matrix cell with distinct seeds
	// (default 2).
	SeedsPerCase int
	// Horizon bounds each scenario's simulated time (default 3 s).
	Horizon canbus.Time
	// TargetCycles is the convergence threshold (default 3).
	TargetCycles int
	// Variants restricts the protocol variants (default both).
	Variants []Variant
	// Workers is the number of scenarios simulated concurrently; 0 means
	// GOMAXPROCS, 1 forces sequential execution. Each scenario is a pure
	// function of its seed and outcomes are aggregated in matrix order,
	// so the report is byte-identical at any worker count.
	Workers int
	// Obs receives per-scenario spans, verdict counters and progress
	// heartbeats (and is threaded into the simulated bus). nil disables
	// instrumentation; reports are byte-identical either way.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.SeedsPerCase <= 0 {
		c.SeedsPerCase = 2
	}
	if c.Horizon <= 0 {
		c.Horizon = 3 * canbus.Second
	}
	if c.TargetCycles <= 0 {
		c.TargetCycles = 3
	}
	if len(c.Variants) == 0 {
		c.Variants = []Variant{Naive, Hardened}
	}
	return c
}

// matrixCase is one parameter point of the campaign matrix.
type matrixCase struct {
	kind     Kind
	prob     float64
	targetID uint32
	delayBy  canbus.Time
	period   canbus.Time
	width    canbus.Time
}

// matrixCases is the standard sweep: every fault kind at two parameter
// points.
var matrixCases = []matrixCase{
	{kind: Drop, prob: 0.1},
	{kind: Drop, prob: 0.3},
	{kind: CorruptDetected, prob: 0.1},
	{kind: CorruptDetected, prob: 0.3},
	{kind: TamperUndetected, prob: 0.05},
	{kind: TamperUndetected, prob: 0.15},
	{kind: Duplicate, prob: 0.2},
	{kind: Duplicate, prob: 0.4},
	{kind: Delay, prob: 0.3, delayBy: 2 * canbus.Millisecond},
	{kind: Delay, prob: 0.3, delayBy: 10 * canbus.Millisecond},
	{kind: BurstLoss, period: 100 * canbus.Millisecond, width: 20 * canbus.Millisecond},
	{kind: BurstLoss, period: 100 * canbus.Millisecond, width: 50 * canbus.Millisecond},
	{kind: BabblingIdiot, targetID: 0x001, period: canbus.Millisecond, width: 200 * canbus.Millisecond},
	{kind: BabblingIdiot, targetID: 0x001, period: 5 * canbus.Millisecond, width: 200 * canbus.Millisecond},
	{kind: TargetedDrop, targetID: 0x102},
	{kind: TargetedDrop, targetID: 0x104},
}

// scenarioSeed derives a per-scenario seed from the master seed; the
// multiplier is the splitmix64 increment, enough to decorrelate
// neighbouring indices.
func scenarioSeed(master int64, index int) int64 {
	return master + int64(index+1)*-0x61c8864680b583eb
}

// Matrix expands the configuration into the full scenario list:
// every fault case x protocol variant x seed replica.
func Matrix(cfg Config) []Scenario {
	cfg = cfg.withDefaults()
	var out []Scenario
	for _, mc := range matrixCases {
		for _, variant := range cfg.Variants {
			for rep := 0; rep < cfg.SeedsPerCase; rep++ {
				idx := len(out)
				sc := Scenario{
					Kind:         mc.kind,
					KindName:     mc.kind.String(),
					Variant:      variant,
					VariantName:  variant.String(),
					Seed:         scenarioSeed(cfg.Seed, idx),
					Prob:         mc.prob,
					TargetID:     mc.targetID,
					DelayBy:      mc.delayBy,
					Period:       mc.period,
					Width:        mc.width,
					Horizon:      cfg.Horizon,
					TargetCycles: cfg.TargetCycles,
				}
				sc.Name = scenarioName(sc, rep)
				out = append(out, sc)
			}
		}
	}
	return out
}

func scenarioName(sc Scenario, rep int) string {
	detail := ""
	switch sc.Kind {
	case Drop, CorruptDetected, TamperUndetected, Duplicate:
		detail = fmt.Sprintf("-p%g", sc.Prob)
	case Delay:
		detail = fmt.Sprintf("-d%dms", int64(sc.DelayBy/canbus.Millisecond))
	case BurstLoss:
		detail = fmt.Sprintf("-w%dms", int64(sc.Width/canbus.Millisecond))
	case BabblingIdiot:
		detail = fmt.Sprintf("-i%dms", int64(sc.Period/canbus.Millisecond))
	case TargetedDrop:
		detail = fmt.Sprintf("-id%03X", sc.TargetID)
	}
	return fmt.Sprintf("%s%s-%s-r%d", sc.Kind, detail, sc.Variant, rep)
}

// protocol IDs of the OTA case study (Table II).
const (
	idReqSw  = 0x101
	idRptSw  = 0x102
	idReqApp = 0x103
	idRptUpd = 0x104
)

// tailTraceLen bounds the counterexample tail kept per outcome.
const tailTraceLen = 12

// RunScenario executes one scenario and judges it. All randomness comes
// from the scenario seed and all time is simulated, so the outcome is a
// pure function of the scenario.
func RunScenario(sc Scenario) Outcome {
	return runScenario(sc, nil)
}

// runScenario is RunScenario with campaign instrumentation attached: a
// span per scenario (name, seed, kind, variant, verdict) and the bus
// counters, all inert when o is nil.
func runScenario(sc Scenario, o *obs.Observer) (out Outcome) {
	span := o.StartSpan("faultcampaign.scenario",
		obs.String("name", sc.Name),
		obs.Int("seed", sc.Seed),
		obs.String("kind", sc.KindName),
		obs.String("variant", sc.VariantName))
	defer func() {
		o.Counter("faultcampaign.scenarios").Inc()
		o.Counter("faultcampaign.verdict." + out.Verdict.String()).Inc()
		span.End(obs.String("verdict", out.Verdict.String()),
			obs.Int("deliveredFrames", int64(out.DeliveredFrames)))
	}()
	out = Outcome{Scenario: sc}
	rng := rand.New(rand.NewSource(sc.Seed))
	inj := &canbus.Injector{}
	sim := canoe.NewSimulation(canbus.Config{
		Injector:         inj,
		ErrorConfinement: true,
		Obs:              o,
	})
	vmgSrc, ecuSrc := ota.VMGSource, ota.ECUSource
	if sc.Variant == Hardened {
		vmgSrc, ecuSrc = ota.HardenedVMGSource, ota.HardenedECUSource
	}
	vmg, err := sim.AddNode("VMG", vmgSrc)
	if err == nil {
		_, err = sim.AddNode("ECU", ecuSrc)
	}
	if err != nil {
		return judgeError(out, err)
	}
	installFault(sc, sim, inj, rng)
	if err := sim.Start(); err != nil {
		return judgeError(out, err)
	}
	if err := sim.Run(sc.Horizon); err != nil {
		return judgeError(out, err)
	}
	return judge(out, sim, vmg)
}

func judgeError(out Outcome, err error) Outcome {
	out.Verdict = Errored
	out.VerdictName = out.Verdict.String()
	out.Error = err.Error()
	return out
}

// judge inspects the finished measurement and assigns the verdict:
// property violations dominate, then convergence, then timeout.
func judge(out Outcome, sim *canoe.Simulation, vmg *canoe.Node) Outcome {
	ecu, err := sim.Node("ECU")
	if err != nil {
		return judgeError(out, err)
	}
	out.UpdatesApplied = nodeInt(ecu, "updatesApplied")
	for _, f := range vmg.Sent {
		if f.ID == idReqApp {
			out.RequestedUpdates++
		}
	}
	out.GaveUp = nodeInt(vmg, "gaveUp") != 0
	out.Stats = sim.Bus.Stats()
	trace := sim.Trace()
	out.DeliveredFrames = len(trace)
	out.VMGState = tapState(sim, "VMG")
	out.ECUState = tapState(sim, "ECU")

	out.Violation = checkInvariants(out.Scenario, trace, out.UpdatesApplied, out.RequestedUpdates)
	switch {
	case out.Violation != "":
		out.Verdict = Violated
	case out.UpdatesApplied >= out.Scenario.TargetCycles:
		out.Verdict = Converged
	default:
		out.Verdict = TimedOut
	}
	out.VerdictName = out.Verdict.String()
	if out.Verdict != Converged {
		start := len(trace) - tailTraceLen
		if start < 0 {
			start = 0
		}
		for _, tf := range trace[start:] {
			out.TailTrace = append(out.TailTrace, fmt.Sprintf("t=%dus %s", int64(tf.At), tf.Frame))
		}
	}
	return out
}

// checkInvariants evaluates the monitored safety properties over the
// delivered-frame trace:
//
//   - only protocol identifiers (plus the babble identifier, which is
//     overt attack traffic) may be delivered;
//   - an update result must not precede any apply-update request;
//   - the ECU must not apply more updates than the VMG requested.
func checkInvariants(sc Scenario, trace []canoe.TimedFrame, applied, requested int) string {
	allowed := map[uint32]bool{idReqSw: true, idRptSw: true, idReqApp: true, idRptUpd: true}
	if sc.Kind == BabblingIdiot {
		allowed[sc.TargetID] = true
	}
	seenReqApp := false
	for _, tf := range trace {
		id := tf.Frame.ID
		if !allowed[id] {
			return fmt.Sprintf("unknown identifier 0x%03X delivered at t=%dus", id, int64(tf.At))
		}
		if id == idReqApp {
			seenReqApp = true
		}
		if id == idRptUpd && !seenReqApp {
			return fmt.Sprintf("unsolicited update result delivered at t=%dus", int64(tf.At))
		}
	}
	if applied > requested {
		return fmt.Sprintf("ECU applied %d updates but the VMG requested only %d", applied, requested)
	}
	return ""
}

func nodeInt(n *canoe.Node, name string) int {
	v, ok := n.Global(name)
	if !ok {
		return 0
	}
	if i, ok := v.(int64); ok {
		return int(i)
	}
	return 0
}

func tapState(sim *canoe.Simulation, node string) string {
	n, err := sim.Node(node)
	if err != nil {
		return "unknown"
	}
	return n.Tap().State().String()
}

// Run executes every scenario of the configured matrix and assembles
// the campaign report. Identical configurations produce byte-identical
// reports regardless of Workers.
func Run(cfg Config) *Report {
	cfg = cfg.withDefaults()
	scenarios := Matrix(cfg)
	return RunScenarios(cfg, scenarios)
}

// RunScenarios executes an explicit scenario list under the given
// configuration header. Scenarios run on a pool of cfg.Workers
// goroutines; outcomes are slotted by scenario index and tallied in
// list order, so the report is identical to a sequential run.
func RunScenarios(cfg Config, scenarios []Scenario) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{
		MasterSeed:   cfg.Seed,
		HorizonUs:    int64(cfg.Horizon),
		TargetCycles: cfg.TargetCycles,
	}
	rep.Outcomes = runPool(scenarios, cfg.Workers, cfg.Obs)
	for _, out := range rep.Outcomes {
		switch out.Verdict {
		case Converged:
			rep.Converged++
		case TimedOut:
			rep.TimedOut++
		case Violated:
			rep.Violated++
		case Errored:
			rep.Errored++
		}
	}
	rep.Scenarios = len(rep.Outcomes)
	return rep
}

// runPool executes the scenarios on a worker pool and returns their
// outcomes in input order.
func runPool(scenarios []Scenario, workers int, o *obs.Observer) []Outcome {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	prog := o.Progress("faultcampaign.run")
	var done atomic.Int64
	outcomes := make([]Outcome, len(scenarios))
	if workers <= 1 {
		for i, sc := range scenarios {
			outcomes[i] = runScenario(sc, o)
			prog.Tick(done.Add(1), obs.Int("scenarios", int64(len(scenarios))))
		}
		prog.Flush(done.Load())
		return outcomes
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			claimed := -1
			defer func() {
				// Panic isolation: a crashing scenario is judged Errored on
				// its own; the rest of the campaign drains through the other
				// workers instead of dying with the process.
				if r := recover(); r != nil && claimed >= 0 {
					outcomes[claimed] = judgeError(
						Outcome{Scenario: scenarios[claimed]},
						fmt.Errorf("panic in scenario worker: %v", r))
					prog.Tick(done.Add(1), obs.Int("scenarios", int64(len(scenarios))))
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(scenarios) {
					return
				}
				claimed = i
				outcomes[i] = runScenario(scenarios[i], o)
				prog.Tick(done.Add(1), obs.Int("scenarios", int64(len(scenarios))))
			}
		}()
	}
	wg.Wait()
	prog.Flush(done.Load())
	return outcomes
}
