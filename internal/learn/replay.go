package learn

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/csp"
)

// parseEventTrace decodes the witness rendering of a trace: each event
// is the channel followed by dot-separated symbolic arguments, exactly
// as csp.Event.String prints the OTA alphabet.
func parseEventTrace(events []string) (csp.Trace, error) {
	out := make(csp.Trace, 0, len(events))
	for i, s := range events {
		parts := strings.Split(s, ".")
		if parts[0] == "" {
			return nil, fmt.Errorf("learn: event %d: empty channel in %q", i, s)
		}
		ev := csp.Event{Chan: parts[0]}
		for _, p := range parts[1:] {
			if p == "" {
				return nil, fmt.Errorf("learn: event %d: empty argument in %q", i, s)
			}
			ev.Args = append(ev.Args, csp.Sym(p))
		}
		out = append(out, ev)
	}
	return out, nil
}

// DecodeWitness parses a witness reproduction file.
func DecodeWitness(data []byte) (*Witness, error) {
	var w Witness
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("learn: decode witness: %w", err)
	}
	if w.Variant == "" {
		return nil, fmt.Errorf("learn: witness names no variant")
	}
	return &w, nil
}

// ReplayResult re-derives a witness's verdicts from scratch.
type ReplayResult struct {
	Witness *Witness `json:"witness"`
	// ExtractedAccepts and SimAccepts are recomputed against a fresh
	// reference model and a fresh simulated node.
	ExtractedAccepts bool `json:"extractedAccepts"`
	SimAccepts       bool `json:"simAccepts"`
	// Reproduced is true when both recomputed verdicts match the file.
	Reproduced bool `json:"reproduced"`
}

// JSON renders the replay result.
func (r *ReplayResult) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Text renders a human summary.
func (r *ReplayResult) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replay %s (profile %s, seed %d): %s\n",
		r.Witness.Variant, r.Witness.Profile, r.Witness.Seed, strings.Join(r.Witness.Trace, " "))
	fmt.Fprintf(&b, "extracted accepts: %v (recorded %v), simulator accepts: %v (recorded %v)\n",
		r.ExtractedAccepts, r.Witness.ExtractedAccepts, r.SimAccepts, r.Witness.SimAccepts)
	if r.Reproduced {
		b.WriteString("witness reproduced\n")
	} else {
		b.WriteString("witness NOT reproduced\n")
	}
	return b.String()
}

// ReplayWitness re-checks a recorded divergence: the trace is run
// through a fresh extracted reference model and a fresh seeded
// simulation of the variant's node, independent of any learned
// automaton. Budget fields of cfg apply; identity fields (seed,
// profile, variant) come from the witness itself.
func ReplayWitness(w *Witness, cfg CampaignConfig) (*ReplayResult, error) {
	cfg.Seed = w.Seed
	profile, err := ParseProfile(string(w.Profile))
	if err != nil {
		return nil, err
	}
	cfg.Profile = profile
	v := Variant(w.Variant)
	trace, err := parseEventTrace(w.Trace)
	if err != nil {
		return nil, err
	}
	_, checker, err := BuildReference(cfg, v)
	if err != nil {
		return nil, err
	}
	res, err := checker.AcceptsTrace(csp.Call("ECU"), trace)
	if err != nil {
		return nil, err
	}
	teacher, err := NewVariantTeacher(cfg, v)
	if err != nil {
		return nil, err
	}
	simAcc, err := teacher.Membership(trace)
	if err != nil {
		return nil, err
	}
	return &ReplayResult{
		Witness:          w,
		ExtractedAccepts: res.Accepted,
		SimAccepts:       simAcc,
		Reproduced:       res.Accepted == w.ExtractedAccepts && simAcc == w.SimAccepts,
	}, nil
}
