package learn

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"

	"repro/internal/canbus"
	"repro/internal/candb"
	"repro/internal/canoe"
	"repro/internal/csp"
)

// FaultProfile selects the injection behaviour a membership run learns
// under, mirroring the fault kinds of the PR 1 campaign engine. Every
// profile is seeded per query word, so a teacher stays a deterministic
// function of the word — required for the learner to converge on
// anything at all.
type FaultProfile string

const (
	// ProfileNone runs an exact bus.
	ProfileNone FaultProfile = "none"
	// ProfileDrop loses ~30% of delivered frames.
	ProfileDrop FaultProfile = "drop"
	// ProfileCorrupt flips a payload bit in ~30% of frames (a
	// CRC-detectable wire error under error confinement).
	ProfileCorrupt FaultProfile = "corrupt"
	// ProfileTamper spoofs a low identifier bit in ~30% of frames,
	// evading CRC detection.
	ProfileTamper FaultProfile = "tamper"
	// ProfileDuplicate re-delivers ~30% of frames 200us later.
	ProfileDuplicate FaultProfile = "duplicate"
	// ProfileDelay holds ~30% of frames back by 2ms.
	ProfileDelay FaultProfile = "delay"
)

// Profiles lists the selectable fault profiles.
func Profiles() []FaultProfile {
	return []FaultProfile{ProfileNone, ProfileDrop, ProfileCorrupt, ProfileTamper, ProfileDuplicate, ProfileDelay}
}

// ParseProfile resolves a -profile flag value.
func ParseProfile(s string) (FaultProfile, error) {
	for _, p := range Profiles() {
		if string(p) == s {
			return p, nil
		}
	}
	return "", fmt.Errorf("unknown fault profile %q (want none, drop, corrupt, tamper, duplicate or delay)", s)
}

// SimTeacherConfig configures a canoe-backed teacher.
type SimTeacherConfig struct {
	// NodeName and Source are the CAPL node under learning.
	NodeName string
	Source   string
	// DB is the CAN database shared with the extractor; Rename maps
	// CtorName(message) to the model constructor (ota.MessageRename).
	DB     *candb.Database
	Rename map[string]string
	// InChannel carries stimuli (messages the database attributes to
	// InSender); OutChannel carries the node's responses. For the raw
	// extracted ECU these are "send" and "rec".
	InChannel  string
	OutChannel string
	InSender   string
	// Seed feeds the per-query fault randomness.
	Seed int64
	// Profile selects the injection behaviour (default none).
	Profile FaultProfile
	// MaxEventsPerQuery bounds one membership run (default 100_000).
	MaxEventsPerQuery int
}

// SimTeacher answers membership queries by running the node under
// learning on a fresh simulated bus: the word's input events become a
// stimulus schedule delivered one frame per quiescent bus (matching the
// translator's synchronous abstraction, where each handler's outputs
// are emitted atomically per stimulus), the monitor trace is projected
// through the database onto model events, and the word is a trace of
// the node iff it is a prefix of the canonical observed trace.
type SimTeacher struct {
	cfg      SimTeacherConfig
	alphabet []csp.Event
	stimulus map[string]canbus.Frame // input event -> frame to transmit
	byID     map[uint32]csp.Event    // delivered frame -> model event
}

// NewSimTeacher builds the alphabet and projection tables from the
// database. Messages sent by InSender become input events on InChannel
// with a synthesizable stimulus frame; all others become output events
// on OutChannel. The alphabet is sorted by event rendering, so it is
// independent of database declaration order.
func NewSimTeacher(cfg SimTeacherConfig) (*SimTeacher, error) {
	if cfg.Profile == "" {
		cfg.Profile = ProfileNone
	}
	if cfg.MaxEventsPerQuery <= 0 {
		cfg.MaxEventsPerQuery = 100_000
	}
	t := &SimTeacher{
		cfg:      cfg,
		stimulus: map[string]canbus.Frame{},
		byID:     map[uint32]csp.Event{},
	}
	for _, m := range cfg.DB.Messages {
		ctor := candb.CtorName(m.Name)
		if renamed, ok := cfg.Rename[ctor]; ok {
			ctor = renamed
		}
		ch := cfg.OutChannel
		if m.Sender == cfg.InSender {
			ch = cfg.InChannel
		}
		ev := csp.Event{Chan: ch, Args: []csp.Value{csp.Sym(ctor)}}
		if _, dup := t.byID[m.ID]; dup {
			return nil, fmt.Errorf("learn: duplicate identifier 0x%03X in database", m.ID)
		}
		t.byID[m.ID] = ev
		t.alphabet = append(t.alphabet, ev)
		if m.Sender == cfg.InSender {
			dlc := m.DLC
			if dlc < 0 || dlc > canbus.MaxDataLen {
				dlc = canbus.MaxDataLen
			}
			t.stimulus[ev.String()] = canbus.Frame{ID: m.ID, Data: make([]byte, dlc)}
		}
	}
	sort.Slice(t.alphabet, func(i, j int) bool {
		return t.alphabet[i].String() < t.alphabet[j].String()
	})
	return t, nil
}

// Alphabet returns the model-event vocabulary.
func (t *SimTeacher) Alphabet() []csp.Event {
	return append([]csp.Event(nil), t.alphabet...)
}

// rng derives the per-query fault randomness: a pure function of
// (seed, profile, word), so the teacher answers every word the same way
// no matter when, or on which worker, it is asked.
func (t *SimTeacher) rng(w csp.Trace) *rand.Rand {
	h := fnv.New64a()
	_, _ = io.WriteString(h, string(t.cfg.Profile))
	_, _ = io.WriteString(h, "\x00")
	_, _ = io.WriteString(h, w.String())
	return rand.New(rand.NewSource(int64(h.Sum64()) ^ t.cfg.Seed))
}

// installProfile arms the seeded fault hooks on the run's injector,
// mirroring the PR 1 campaign faults. Duplicate and delay replay frames
// through a gremlin tap with a bounded injection budget, so a faulty
// run still terminates.
func (t *SimTeacher) installProfile(bus *canbus.Bus, inj *canbus.Injector, rng *rand.Rand) {
	const prob = 0.3
	switch t.cfg.Profile {
	case ProfileDrop:
		inj.Drop = func(canbus.Time, canbus.Frame) bool { return rng.Float64() < prob }
	case ProfileCorrupt:
		inj.Corrupt = func(_ canbus.Time, f canbus.Frame) canbus.Frame {
			if rng.Float64() < prob && len(f.Data) > 0 {
				f.Data[rng.Intn(len(f.Data))] ^= 1 << uint(rng.Intn(8))
			}
			return f
		}
	case ProfileTamper:
		inj.Tamper = func(_ canbus.Time, f canbus.Frame) canbus.Frame {
			if rng.Float64() < prob {
				f.ID ^= 1 << uint(rng.Intn(3))
			}
			return f
		}
	case ProfileDuplicate, ProfileDelay:
		gremlin := bus.Attach("__gremlin__", canbus.ReceiverFunc(func(canbus.Time, canbus.Frame) {}))
		budget := 64
		replay := func(at canbus.Time, f canbus.Frame) {
			if budget <= 0 {
				return
			}
			budget--
			clone := f.Clone()
			_ = bus.Schedule(at, func() { _ = bus.Transmit(gremlin, clone) })
		}
		if t.cfg.Profile == ProfileDuplicate {
			inj.Observe = func(at canbus.Time, f canbus.Frame) {
				if rng.Float64() < prob {
					replay(at+200*canbus.Microsecond, f)
				}
			}
		} else {
			inj.Drop = func(at canbus.Time, f canbus.Frame) bool {
				if rng.Float64() < prob {
					replay(at+2*canbus.Millisecond, f)
					return true
				}
				return false
			}
		}
	}
}

// Membership runs one seeded deterministic simulation of the node
// against the stimulus subsequence of w and answers whether w is a
// prefix of the observed projected trace.
func (t *SimTeacher) Membership(w csp.Trace) (bool, error) {
	var inj *canbus.Injector
	if t.cfg.Profile != ProfileNone {
		inj = &canbus.Injector{}
	}
	sim := canoe.NewSimulation(canbus.Config{Injector: inj})
	if inj != nil {
		t.installProfile(sim.Bus, inj, t.rng(w))
	}
	if _, err := sim.AddNode(t.cfg.NodeName, t.cfg.Source); err != nil {
		return false, err
	}
	driver := sim.Bus.Attach("__learner__", canbus.ReceiverFunc(func(canbus.Time, canbus.Frame) {}))
	if err := sim.Start(); err != nil {
		return false, err
	}

	remaining := t.cfg.MaxEventsPerQuery
	quiesce := func() error {
		n := sim.Bus.RunAll(remaining)
		remaining -= n
		if remaining <= 0 {
			return fmt.Errorf("learn: membership run exceeded %d bus events", t.cfg.MaxEventsPerQuery)
		}
		return nil
	}
	if err := quiesce(); err != nil {
		return false, err
	}
	for _, ev := range w {
		f, ok := t.stimulus[ev.String()]
		if !ok {
			continue // response event: nothing to inject
		}
		if err := sim.Bus.Transmit(driver, f.Clone()); err != nil {
			return false, err
		}
		if err := quiesce(); err != nil {
			return false, err
		}
	}
	if err := sim.Err(); err != nil {
		return false, fmt.Errorf("learn: node fault during membership run: %w", err)
	}
	observed := t.project(sim.Trace())
	if err := sim.Stop(); err != nil {
		return false, fmt.Errorf("learn: measurement stop: %w", err)
	}
	return observed.HasPrefix(w), nil
}

// project maps the monitor trace onto model events through the
// database dictionary. Frames whose identifier the database cannot
// decode — e.g. tamper-spoofed ones — carry no model event and are
// dropped, exactly as a bus monitor would fail to classify them.
func (t *SimTeacher) project(tfs []canoe.TimedFrame) csp.Trace {
	out := make(csp.Trace, 0, len(tfs))
	for _, tf := range tfs {
		if ev, ok := t.byID[tf.Frame.ID]; ok {
			out = append(out, ev)
		}
	}
	return out
}
