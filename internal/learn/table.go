package learn

import (
	"fmt"

	"repro/internal/csp"
)

// obsTable is the L* observation table: access prefixes S (rows),
// distinguishing suffixes E (columns) and the membership function
// T(u·e) consulted through the query cache. suffixes[0] is always the
// empty word, so the first character of a row key is the row's own
// membership bit.
type obsTable struct {
	c        *queryCache
	alpha    []csp.Event
	prefixes []csp.Trace // S, discovery order; prefixes[0] = ε
	suffixes []csp.Trace // E, discovery order; suffixes[0] = ε
}

func newObsTable(c *queryCache, alpha []csp.Event) *obsTable {
	return &obsTable{c: c, alpha: alpha, prefixes: []csp.Trace{{}}, suffixes: []csp.Trace{{}}}
}

func concat(u, v csp.Trace) csp.Trace {
	out := make(csp.Trace, 0, len(u)+len(v))
	out = append(out, u...)
	return append(out, v...)
}

// rowKey renders the membership vector of u over the current suffix
// set. Queries go through the cache, so re-deriving a row after the
// table grows costs map lookups plus one real query per new column.
func (t *obsTable) rowKey(u csp.Trace) (string, error) {
	b := make([]byte, len(t.suffixes))
	for i, e := range t.suffixes {
		v, err := t.c.membership(concat(u, e))
		if err != nil {
			return "", err
		}
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b), nil
}

// repair drives the table to a closed and consistent fixed point:
// unclosed boundary rows are promoted into S, inconsistencies add the
// separating suffix a·e to E. Iteration is index-ordered throughout,
// so repair is deterministic.
func (t *obsTable) repair() error {
	for {
		moved, err := t.closeOnce()
		if err != nil {
			return err
		}
		if moved {
			continue
		}
		fixed, err := t.consistentOnce()
		if err != nil {
			return err
		}
		if fixed {
			continue
		}
		return nil
	}
}

func (t *obsTable) closeOnce() (bool, error) {
	rows := make(map[string]bool, len(t.prefixes))
	for _, u := range t.prefixes {
		k, err := t.rowKey(u)
		if err != nil {
			return false, err
		}
		rows[k] = true
	}
	moved := false
	// S grows while we scan it; the index loop visits promoted rows'
	// boundaries too, so one call reaches a closed table.
	for i := 0; i < len(t.prefixes); i++ {
		for _, a := range t.alpha {
			ua := concat(t.prefixes[i], csp.Trace{a})
			k, err := t.rowKey(ua)
			if err != nil {
				return false, err
			}
			if !rows[k] {
				rows[k] = true
				t.prefixes = append(t.prefixes, ua)
				moved = true
			}
		}
	}
	return moved, nil
}

func (t *obsTable) consistentOnce() (bool, error) {
	keys := make([]string, len(t.prefixes))
	for i, u := range t.prefixes {
		k, err := t.rowKey(u)
		if err != nil {
			return false, err
		}
		keys[i] = k
	}
	for i := 0; i < len(t.prefixes); i++ {
		for j := i + 1; j < len(t.prefixes); j++ {
			if keys[i] != keys[j] {
				continue
			}
			for _, a := range t.alpha {
				ki, err := t.rowKey(concat(t.prefixes[i], csp.Trace{a}))
				if err != nil {
					return false, err
				}
				kj, err := t.rowKey(concat(t.prefixes[j], csp.Trace{a}))
				if err != nil {
					return false, err
				}
				if ki == kj {
					continue
				}
				for d := range ki {
					if ki[d] != kj[d] {
						t.addSuffix(concat(csp.Trace{a}, t.suffixes[d]))
						return true, nil
					}
				}
			}
		}
	}
	return false, nil
}

func (t *obsTable) addSuffix(e csp.Trace) bool {
	key := e.String()
	for _, have := range t.suffixes {
		if have.String() == key {
			return false
		}
	}
	t.suffixes = append(t.suffixes, e)
	return true
}

// hypothesis builds the table automaton: one state per distinct row of
// S in first-occurrence order, transitions by row lookup (total, since
// the table is closed), acceptance from the ε column.
func (t *obsTable) hypothesis() (*DFA, error) {
	keyOf := map[string]int{}
	var access []csp.Trace
	var accepting []bool
	for _, u := range t.prefixes {
		k, err := t.rowKey(u)
		if err != nil {
			return nil, err
		}
		if _, ok := keyOf[k]; !ok {
			keyOf[k] = len(access)
			access = append(access, u)
			accepting = append(accepting, k[0] == '1')
		}
	}
	d := &DFA{
		Alpha:     t.alpha,
		States:    len(access),
		Accepting: accepting,
		Access:    access,
		Delta:     make([][]int, len(access)),
	}
	rootKey, err := t.rowKey(csp.Trace{})
	if err != nil {
		return nil, err
	}
	d.Initial = keyOf[rootKey]
	for i, u := range access {
		row := make([]int, len(t.alpha))
		for ai, a := range t.alpha {
			k, err := t.rowKey(concat(u, csp.Trace{a}))
			if err != nil {
				return nil, err
			}
			to, ok := keyOf[k]
			if !ok {
				return nil, fmt.Errorf("learn: table not closed at row %s · %s", u, a)
			}
			row[ai] = to
		}
		d.Delta[i] = row
	}
	return d, nil
}

// processCounterexample refines the table from a word the hypothesis
// misclassifies, using Rivest–Schapire binary search: find the index i
// where replacing the already-processed prefix by its hypothesis
// state's access word flips the teacher's answer, and add the suffix
// w[i+1:] as a new distinguishing column. Falls back to adding
// progressively longer suffixes of w if the extracted one is already a
// column (guaranteeing progress regardless of hypothesis conventions).
func (t *obsTable) processCounterexample(hyp *DFA, w csp.Trace) error {
	member := func(i int) (bool, error) {
		st, err := hyp.Walk(w[:i])
		if err != nil {
			return false, err
		}
		return t.c.membership(concat(hyp.Access[st], w[i:]))
	}
	lo, hi := 0, len(w)
	fLo, err := member(lo)
	if err != nil {
		return err
	}
	fHi, err := member(hi)
	if err != nil {
		return err
	}
	if fLo == fHi {
		// Not actually a counterexample under the access-word reading;
		// add all suffixes of w as a (rare) fallback.
		for i := len(w) - 1; i >= 0; i-- {
			if t.addSuffix(w[i:]) {
				return nil
			}
		}
		return fmt.Errorf("learn: counterexample %s produced no new suffix", w)
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		v, err := member(mid)
		if err != nil {
			return err
		}
		if v == fLo {
			lo = mid
		} else {
			hi = mid
		}
	}
	if t.addSuffix(w[hi:]) {
		return nil
	}
	for i := hi - 1; i >= 0; i-- {
		if t.addSuffix(w[i:]) {
			return nil
		}
	}
	return fmt.Errorf("learn: counterexample %s produced no new suffix", w)
}
