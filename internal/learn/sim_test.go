package learn

import (
	"testing"

	"repro/internal/csp"
)

func variantTeacher(t *testing.T, v Variant, cfg CampaignConfig) *SimTeacher {
	t.Helper()
	teacher, err := NewVariantTeacher(cfg, v)
	if err != nil {
		t.Fatal(err)
	}
	return teacher
}

func TestSimTeacherAlphabet(t *testing.T) {
	teacher := variantTeacher(t, VariantNaive, CampaignConfig{})
	got := teacher.Alphabet()
	want := otaAlphabet() // sorted by rendering
	if len(got) != len(want) {
		t.Fatalf("alphabet %v, want %v", got, want)
	}
	for i := range want {
		if got[i].String() != want[i].String() {
			t.Fatalf("alphabet[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestSimTeacherMembershipNaive(t *testing.T) {
	teacher := variantTeacher(t, VariantNaive, CampaignConfig{Seed: 1})
	for _, tc := range []struct {
		w    csp.Trace
		want bool
	}{
		{csp.Trace{}, true},
		{csp.Trace{ev("send", "reqSw")}, true},
		{csp.Trace{ev("send", "reqSw"), ev("rec", "rptSw")}, true},
		// The naive ECU answers an inventory request with rptSw, never
		// rptUpd.
		{csp.Trace{ev("send", "reqSw"), ev("rec", "rptUpd")}, false},
		// A report with no preceding request is not a node trace.
		{csp.Trace{ev("rec", "rptSw")}, false},
		{csp.Trace{ev("send", "reqApp"), ev("rec", "rptUpd"), ev("send", "reqSw"), ev("rec", "rptSw")}, true},
	} {
		got, err := teacher.Membership(tc.w)
		if err != nil {
			t.Fatalf("Membership(%s): %v", tc.w, err)
		}
		if got != tc.want {
			t.Errorf("Membership(%s) = %v, want %v", tc.w, got, tc.want)
		}
	}
}

// TestSimTeacherMembershipFlawed pins the injected defect at the
// simulator level: the flawed gateway's ECU answers a software
// inventory request with an update result report.
func TestSimTeacherMembershipFlawed(t *testing.T) {
	teacher := variantTeacher(t, VariantFlawed, CampaignConfig{Seed: 1})
	got, err := teacher.Membership(csp.Trace{ev("send", "reqSw"), ev("rec", "rptUpd")})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("flawed ECU should answer reqSw with rptUpd")
	}
	got, err = teacher.Membership(csp.Trace{ev("send", "reqSw"), ev("rec", "rptSw")})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("flawed ECU should not answer reqSw with rptSw")
	}
}

// TestSimTeacherDeterministicUnderFaults pins the teacher contract the
// learner depends on: under every fault profile, the same word gets the
// same answer on every ask.
func TestSimTeacherDeterministicUnderFaults(t *testing.T) {
	words := []csp.Trace{
		{},
		{ev("send", "reqSw")},
		{ev("send", "reqSw"), ev("rec", "rptSw")},
		{ev("send", "reqApp"), ev("rec", "rptUpd")},
		{ev("send", "reqSw"), ev("rec", "rptSw"), ev("send", "reqApp"), ev("rec", "rptUpd")},
	}
	for _, p := range Profiles() {
		teacher := variantTeacher(t, VariantNaive, CampaignConfig{Seed: 99, Profile: p})
		for _, w := range words {
			first, err := teacher.Membership(w)
			if err != nil {
				t.Fatalf("profile %s, word %s: %v", p, w, err)
			}
			for i := 0; i < 3; i++ {
				again, err := teacher.Membership(w)
				if err != nil {
					t.Fatalf("profile %s, word %s: %v", p, w, err)
				}
				if again != first {
					t.Fatalf("profile %s, word %s: answer flipped %v -> %v", p, w, first, again)
				}
			}
		}
	}
}

// TestSimTeacherDropLosesTraffic sanity-checks that fault profiles
// actually change behaviour: under a dropping bus, some request/report
// word the exact bus accepts must be rejected.
func TestSimTeacherDropLosesTraffic(t *testing.T) {
	exact := variantTeacher(t, VariantNaive, CampaignConfig{Seed: 5})
	lossy := variantTeacher(t, VariantNaive, CampaignConfig{Seed: 5, Profile: ProfileDrop})
	w := csp.Trace{ev("send", "reqSw"), ev("rec", "rptSw")}
	diverged := false
	for i := 0; i < 32 && !diverged; i++ {
		// Vary the word by prefixing completed exchanges so the per-word
		// fault seed changes.
		got1, err := exact.Membership(w)
		if err != nil {
			t.Fatal(err)
		}
		got2, err := lossy.Membership(w)
		if err != nil {
			t.Fatal(err)
		}
		if got1 != got2 {
			diverged = true
		}
		w = append(csp.Trace{ev("send", "reqApp"), ev("rec", "rptUpd")}, w...)
	}
	if !diverged {
		t.Fatal("drop profile never changed any answer over 32 words")
	}
}
