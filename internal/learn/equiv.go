package learn

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/csp"
)

// seedStride decorrelates per-round equivalence seeds from the master
// seed (same splitmix64 odd constant the conformance scheduler uses).
const seedStride = -0x61c8864680b583eb

// equivSuite generates the bounded equivalence-query suite for one
// round: a W-method-style sweep (every hypothesis state's access word ×
// all middles up to length 2 × the table's distinguishing suffixes and
// single events) plus seeded random walks. The suite is a deterministic
// function of (hypothesis, suffixes, seed, round); workers only decide
// who evaluates which word, never which words exist.
func equivSuite(hyp *DFA, suffixes []csp.Trace, seed int64, round, depth, walks int) []csp.Trace {
	var words []csp.Trace
	seen := map[string]bool{}
	add := func(w csp.Trace) {
		k := w.String()
		if !seen[k] {
			seen[k] = true
			words = append(words, w)
		}
	}

	middles := []csp.Trace{{}}
	for _, a := range hyp.Alpha {
		middles = append(middles, csp.Trace{a})
	}
	for _, a := range hyp.Alpha {
		for _, b := range hyp.Alpha {
			middles = append(middles, csp.Trace{a, b})
		}
	}
	var suff []csp.Trace
	suff = append(suff, suffixes...)
	for _, a := range hyp.Alpha {
		suff = append(suff, csp.Trace{a})
	}
	for st := 0; st < hyp.States; st++ {
		for _, m := range middles {
			for _, e := range suff {
				add(concat(concat(hyp.Access[st], m), e))
			}
		}
	}

	rng := rand.New(rand.NewSource(seed + int64(round+1)*seedStride))
	for i := 0; i < walks; i++ {
		n := 1 + rng.Intn(depth)
		w := make(csp.Trace, n)
		for j := range w {
			w[j] = hyp.Alpha[rng.Intn(len(hyp.Alpha))]
		}
		add(w)
	}
	return words
}

// findCounterexample evaluates the whole suite on a worker pool and
// returns the lowest-indexed word the teacher and the hypothesis
// disagree on. Every word is always evaluated (no early exit): the
// per-round query counts and therefore the report are byte-identical at
// any worker count, and the returned counterexample is the suite-order
// minimum regardless of which worker found it first.
func findCounterexample(hyp *DFA, c *queryCache, words []csp.Trace, workers int) (csp.Trace, bool, error) {
	type outcome struct {
		disagree bool
		err      error
	}
	results := make([]outcome, len(words))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(words) {
		workers = len(words)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(words) {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							results[i] = outcome{err: fmt.Errorf("learn: equivalence query %s panicked: %v", words[i], r)}
						}
					}()
					got, err := c.membership(words[i])
					if err != nil {
						results[i] = outcome{err: err}
						return
					}
					if got != hyp.Accepts(words[i]) {
						results[i] = outcome{disagree: true}
					}
				}()
			}
		}()
	}
	wg.Wait()

	// A tripped query budget masks later outcomes nondeterministically
	// (which in-flight query hit the limit depends on scheduling), so it
	// wins over everything; otherwise the first disagreement or error in
	// suite order decides.
	for _, r := range results {
		var qe *QueryBudgetError
		if errors.As(r.err, &qe) {
			return nil, false, qe
		}
	}
	for i, r := range results {
		if r.err != nil {
			return nil, false, r.err
		}
		if r.disagree {
			return words[i], true, nil
		}
	}
	return nil, false, nil
}
