package learn

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/csp"
	"repro/internal/refine"
)

// otaContext declares the case-study alphabet (Table II of the paper).
func otaContext(t *testing.T) (*csp.Context, *csp.Env) {
	t.Helper()
	ctx := csp.NewContext()
	msgs := csp.EnumType("Msgs", "reqSw", "rptSw", "reqApp", "rptUpd")
	if err := ctx.DeclareType("Msgs", msgs); err != nil {
		t.Fatal(err)
	}
	ctx.MustChannel("send", msgs)
	ctx.MustChannel("rec", msgs)
	return ctx, csp.NewEnv()
}

func ev(ch, msg string) csp.Event {
	return csp.Event{Chan: ch, Args: []csp.Value{csp.Sym(msg)}}
}

func otaAlphabet() []csp.Event {
	return []csp.Event{ev("rec", "rptSw"), ev("rec", "rptUpd"), ev("send", "reqApp"), ev("send", "reqSw")}
}

// defineECU installs the extracted naive ECU:
//
//	ECU = send.reqSw -> rec!rptSw -> ECU [] send.reqApp -> rec!rptUpd -> ECU
func defineECU(t *testing.T, env *csp.Env) csp.Process {
	t.Helper()
	env.MustDefine("ECU", nil, csp.ExtChoice(
		csp.Send("send", csp.Send("rec", csp.Call("ECU"), csp.Sym("rptSw")), csp.Sym("reqSw")),
		csp.Send("send", csp.Send("rec", csp.Call("ECU"), csp.Sym("rptUpd")), csp.Sym("reqApp"))))
	return csp.Call("ECU")
}

func modelTeacher(t *testing.T) (*ModelTeacher, *refine.Checker, *csp.Env) {
	t.Helper()
	ctx, env := otaContext(t)
	proc := defineECU(t, env)
	checker := refine.NewChecker(env, ctx)
	return &ModelTeacher{Checker: checker, Proc: proc, Events: otaAlphabet()}, checker, env
}

func TestLearnECUFromModelTeacher(t *testing.T) {
	teacher, _, _ := modelTeacher(t)
	dfa, stats, err := Learn(Config{Teacher: teacher, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Minimal complete DFA: initial, post-reqSw, post-reqApp, reject sink.
	if dfa.States != 4 {
		t.Fatalf("learned %d states, want 4\n%s", dfa.States, mustJSON(t, dfa.JSON()))
	}
	accepting := 0
	for _, a := range dfa.Accepting {
		if a {
			accepting++
		}
	}
	if accepting != 3 {
		t.Fatalf("learned %d accepting states, want 3", accepting)
	}
	for _, tc := range []struct {
		w    csp.Trace
		want bool
	}{
		{csp.Trace{}, true},
		{csp.Trace{ev("send", "reqSw")}, true},
		{csp.Trace{ev("send", "reqSw"), ev("rec", "rptSw")}, true},
		{csp.Trace{ev("send", "reqSw"), ev("rec", "rptUpd")}, false},
		{csp.Trace{ev("send", "reqApp"), ev("rec", "rptUpd"), ev("send", "reqSw")}, true},
		{csp.Trace{ev("rec", "rptSw")}, false},
	} {
		if got := dfa.Accepts(tc.w); got != tc.want {
			t.Errorf("Accepts(%s) = %v, want %v", tc.w, got, tc.want)
		}
	}
	if stats.MembershipQueries == 0 || stats.EquivalenceRounds == 0 {
		t.Fatalf("implausible stats: %+v", stats)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestLearnDeterministicAcrossWorkerCounts pins the PR's core
// determinism claim at the learner level: the automaton AND the query
// statistics are byte-identical at any equivalence-pool width.
func TestLearnDeterministicAcrossWorkerCounts(t *testing.T) {
	var want []byte
	for _, workers := range []int{0, 1, 2, 4} {
		teacher, _, _ := modelTeacher(t)
		dfa, stats, err := Learn(Config{Teacher: teacher, Seed: 42, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		blob, err := json.Marshal(struct {
			DFA   *DFAJSON
			Stats Stats
		}{dfa.JSON(), stats})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = blob
			continue
		}
		if !bytes.Equal(blob, want) {
			t.Fatalf("workers=%d diverged:\n%s\nwant:\n%s", workers, blob, want)
		}
	}
}

// TestLoweredLearnedProcessIsTraceEquivalent closes the loop inside the
// model world: lowering the learned DFA back to CSP yields a process
// trace-equivalent to the one the teacher answered for.
func TestLoweredLearnedProcessIsTraceEquivalent(t *testing.T) {
	teacher, checker, env := modelTeacher(t)
	dfa, _, err := Learn(Config{Teacher: teacher, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	learned, err := dfa.Lower(env, "LEARNED")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []struct {
		name       string
		spec, impl csp.Process
	}{
		{"learned refines extracted", teacher.Proc, learned},
		{"extracted refines learned", learned, teacher.Proc},
	} {
		res, err := checker.RefinesTraces(dir.spec, dir.impl)
		if err != nil {
			t.Fatalf("%s: %v", dir.name, err)
		}
		if !res.Holds {
			t.Fatalf("%s fails: counterexample %s", dir.name, res.Counterexample)
		}
	}
}

// TestQueryBudgetAborts checks the budget error path: an impossibly
// small budget must surface a *QueryBudgetError, not hang or succeed.
func TestQueryBudgetAborts(t *testing.T) {
	teacher, _, _ := modelTeacher(t)
	_, _, err := Learn(Config{Teacher: teacher, Seed: 1, MaxQueries: 5})
	var qe *QueryBudgetError
	if !errors.As(err, &qe) {
		t.Fatalf("error %v is not a *QueryBudgetError", err)
	}
	if qe.Limit != 5 {
		t.Fatalf("budget limit %d, want 5", qe.Limit)
	}
}
