package learn

import (
	"bytes"
	"testing"
)

func campaignConfig(seed int64, workers int) CampaignConfig {
	// Reduced walk count keeps the corpus campaign fast in tests; the
	// committed learncheck baseline runs the full defaults.
	return CampaignConfig{Seed: seed, Workers: workers, Walks: 16, Depth: 4}
}

// TestCampaignOTACorpus is the PR's acceptance scenario: the naive and
// hardened gateways learn automata trace-equivalent to their extracted
// models, while the flawed gateway diverges from the correct reference
// with a shrunk, replayable witness.
func TestCampaignOTACorpus(t *testing.T) {
	rep, err := Run(campaignConfig(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Variants) != 3 {
		t.Fatalf("got %d variant reports, want 3", len(rep.Variants))
	}
	byName := map[Variant]VariantReport{}
	for _, vr := range rep.Variants {
		if vr.Error != "" {
			t.Fatalf("%s: %s", vr.Variant, vr.Error)
		}
		byName[vr.Variant] = vr
	}

	for _, v := range []Variant{VariantNaive, VariantHardened} {
		vr := byName[v]
		if !vr.EquivalentToExtracted {
			t.Errorf("%s: learned automaton should be trace-equivalent to the extracted model\n%+v", v, vr.Checks)
		}
		if vr.Witness != nil {
			t.Errorf("%s: unexpected witness %+v", v, vr.Witness)
		}
		if !vr.Checks.SpecDiag.Holds || !vr.Checks.SpecUpdate.Holds {
			t.Errorf("%s: per-protocol specs should hold on the learned automaton: %+v", v, vr.Checks)
		}
	}

	fl := byName[VariantFlawed]
	if fl.EquivalentToExtracted {
		t.Fatal("flawed: learned automaton should diverge from the correct reference model")
	}
	if fl.Witness == nil {
		t.Fatal("flawed: divergence must carry a witness")
	}
	w := fl.Witness
	if w.ExtractedAccepts == w.LearnedAccepts {
		t.Fatalf("witness does not witness a disagreement: %+v", w)
	}
	// The simulator is ground truth: the learned automaton models the
	// simulated (flawed) node, so on the witness the simulator must side
	// with the learner against the reference extraction.
	if w.SimAccepts != w.LearnedAccepts {
		t.Fatalf("simulator contradicts the learned automaton on its own behaviour: %+v", w)
	}
	if len(w.Trace) == 0 || len(w.Trace) > 2 {
		// The defect is a one-exchange confusion (reqSw answered by
		// rptUpd); the shrunk witness must be at most one exchange long.
		t.Fatalf("witness not shrunk: %v", w.Trace)
	}
	// The flawed node violates the diagnosis spec (it never reports
	// rptSw) one way or another; at minimum the refinement triangle
	// must have flagged the direction named in the witness.
	if w.Check != "learnedRefinesExtracted" && w.Check != "extractedRefinesLearned" {
		t.Fatalf("witness names unknown check %q", w.Check)
	}
}

// TestCampaignByteIdenticalAcrossWorkerCounts locks the scenario-pool
// determinism contract end to end: the rendered campaign report is
// byte-identical at every worker count.
func TestCampaignByteIdenticalAcrossWorkerCounts(t *testing.T) {
	var want []byte
	for _, workers := range []int{0, 2, 4} {
		rep, err := Run(campaignConfig(2, workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		blob, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = blob
			continue
		}
		if !bytes.Equal(blob, want) {
			t.Fatalf("workers=%d report diverged:\n%s\nwant:\n%s", workers, blob, want)
		}
	}
}

// TestCampaignFaultProfileStillDeterministic runs a variant under an
// aggressive fault profile. A fault-injected teacher need not describe
// any automaton at all, so the learner may legitimately report
// non-convergence — but whatever the outcome, the rendered report must
// be byte-identical at every worker count.
func TestCampaignFaultProfileStillDeterministic(t *testing.T) {
	cfg := campaignConfig(3, 0)
	cfg.Profile = ProfileDuplicate
	cfg.Variants = []Variant{VariantNaive}
	cfg.MaxRounds = 4
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := first.JSON()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 3
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := second.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("fault-profile campaign diverged:\n%s\nvs\n%s", b1, b2)
	}
}
