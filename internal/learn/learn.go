// Package learn closes the paper's pipeline into a Learn–Check–Test
// loop (ROADMAP item 3, after Marksteiner et al.): an L*-style active
// learner drives the canoe interpreter + simulated CAN bus as the
// system under learning, producing an automaton of the *actual* ECU
// behaviour, which is then lowered to a CSP process and
// refinement-checked against the CAPL-extracted model and the paper's
// security specs. Divergence between the learned and extracted models
// is exactly a translation-soundness bug, delta-shrunk to a replayable
// witness.
//
// Membership queries are seeded deterministic simulator runs;
// equivalence queries are bounded (seeded random walks plus a
// W-method-style sweep) and fan out over a scenario worker pool with
// seed-ordered results, so a learning campaign is byte-identical at any
// worker count.
package learn

import (
	"fmt"

	"repro/internal/csp"
	"repro/internal/obs"
)

// Config drives one Learn call.
type Config struct {
	// Teacher answers membership queries; its alphabet fixes the
	// hypothesis vocabulary.
	Teacher Teacher
	// Seed feeds the equivalence random walks.
	Seed int64
	// Depth bounds random-walk length (default 6).
	Depth int
	// Walks is the number of random equivalence words per round
	// (default 64).
	Walks int
	// Workers is the equivalence-pool size (0: all cores). Results are
	// byte-identical at any worker count.
	Workers int
	// MaxQueries bounds teacher-level membership queries (default
	// 50_000); exhausting it aborts with a *QueryBudgetError.
	MaxQueries int
	// MaxRounds bounds equivalence rounds (default 32).
	MaxRounds int
	// Obs receives learn.* metrics and spans; nil disables.
	Obs *obs.Observer
}

// Stats summarizes the query workload of one Learn call. All fields are
// deterministic for a given (teacher, seed, depth, walks) regardless of
// worker count.
type Stats struct {
	// MembershipQueries counts teacher-level (cache-miss) queries.
	MembershipQueries int64 `json:"membershipQueries"`
	// CacheHits counts queries answered from the memo.
	CacheHits int64 `json:"cacheHits"`
	// EquivalenceWords counts words evaluated across all equivalence
	// rounds (including cache hits).
	EquivalenceWords int64 `json:"equivalenceWords"`
	// EquivalenceRounds is the number of equivalence queries asked.
	EquivalenceRounds int `json:"equivalenceRounds"`
	// TableRows and TableSuffixes are the final observation-table size
	// (|S| and |E|).
	TableRows     int `json:"tableRows"`
	TableSuffixes int `json:"tableSuffixes"`
}

// Learn runs L* against the teacher until a bounded equivalence round
// finds no counterexample, returning the canonical learned automaton.
func Learn(cfg Config) (*DFA, Stats, error) {
	depth := cfg.Depth
	if depth <= 0 {
		depth = 6
	}
	walks := cfg.Walks
	if walks <= 0 {
		walks = 64
	}
	maxQueries := cfg.MaxQueries
	if maxQueries <= 0 {
		maxQueries = 50_000
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 32
	}

	alpha := append([]csp.Event(nil), cfg.Teacher.Alphabet()...)
	var stats Stats
	if len(alpha) == 0 {
		return nil, stats, fmt.Errorf("learn: teacher has an empty alphabet")
	}
	cache := newQueryCache(cfg.Teacher, maxQueries, cfg.Obs)
	tbl := newObsTable(cache, alpha)

	span := cfg.Obs.StartSpan("learn.run", obs.Int("alphabet", int64(len(alpha))))
	defer span.End()

	fill := func() {
		stats.MembershipQueries, stats.CacheHits = cache.stats()
		stats.TableRows = len(tbl.prefixes)
		stats.TableSuffixes = len(tbl.suffixes)
		cfg.Obs.Gauge("learn.table.rows").Set(int64(len(tbl.prefixes)))
		cfg.Obs.Gauge("learn.table.suffixes").Set(int64(len(tbl.suffixes)))
	}
	defer fill()

	for round := 0; round < maxRounds; round++ {
		if err := tbl.repair(); err != nil {
			return nil, stats, err
		}
		hyp, err := tbl.hypothesis()
		if err != nil {
			return nil, stats, err
		}
		words := equivSuite(hyp, tbl.suffixes, cfg.Seed, round, depth, walks)
		stats.EquivalenceWords += int64(len(words))
		stats.EquivalenceRounds = round + 1
		cfg.Obs.Counter("learn.queries.equivalence").Add(int64(len(words)))
		rspan := span.Child("learn.round",
			obs.Int("round", int64(round)), obs.Int("states", int64(hyp.States)), obs.Int("suite", int64(len(words))))
		cex, found, err := findCounterexample(hyp, cache, words, cfg.Workers)
		rspan.End(obs.Bool("counterexample", found))
		if err != nil {
			return nil, stats, err
		}
		if !found {
			fill()
			return hyp.Canonical(), stats, nil
		}
		if err := tbl.processCounterexample(hyp, cex); err != nil {
			return nil, stats, err
		}
	}
	return nil, stats, fmt.Errorf("learn: no convergence after %d equivalence rounds", maxRounds)
}
