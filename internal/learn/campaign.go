package learn

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/csp"
	"repro/internal/lts"
	"repro/internal/obs"
	"repro/internal/ota"
	"repro/internal/refine"
)

// Variant selects a gateway variant of the OTA corpus, mirroring the
// conformance harness: the flawed ECU is simulated but checked against
// the reference model extracted from the *correct* sources, so a
// learned/extracted divergence on it is the expected finding, not an
// error.
type Variant string

// The OTA corpus variants.
const (
	VariantNaive    Variant = "naive"
	VariantHardened Variant = "hardened"
	VariantFlawed   Variant = "flawed"
)

// Variants lists the whole corpus in campaign order.
var Variants = []Variant{VariantNaive, VariantHardened, VariantFlawed}

// ecuSource returns the CAPL program the simulated teacher runs.
func (v Variant) ecuSource() (string, error) {
	switch v {
	case VariantNaive:
		return ota.ECUSource, nil
	case VariantHardened:
		return ota.HardenedECUSource, nil
	case VariantFlawed:
		return ota.FlawedECUSource, nil
	}
	return "", fmt.Errorf("learn: unknown variant %q", v)
}

// referenceConfig returns the observed-model build whose extracted ECU
// the learned automaton is checked against.
func (v Variant) referenceConfig() (ota.ObservedConfig, error) {
	switch v {
	case VariantNaive, VariantFlawed:
		// The flawed ECU is checked against the correct reference model.
		return ota.ObservedConfigFor(ota.NaiveGateway, ota.ChannelBudgets{}), nil
	case VariantHardened:
		return ota.ObservedConfigFor(ota.HardenedGateway, ota.ChannelBudgets{}), nil
	}
	return ota.ObservedConfig{}, fmt.Errorf("learn: unknown variant %q", v)
}

// CampaignConfig drives a Learn–Check–Test campaign over the OTA
// corpus.
type CampaignConfig struct {
	Seed     int64
	Variants []Variant // nil: all
	Profile  FaultProfile

	Depth      int
	Walks      int
	MaxQueries int
	MaxRounds  int
	// Workers sizes the equivalence-query pool; reports are
	// byte-identical at any worker count.
	Workers int

	// MaxStates / MaxDuration budget each refinement and membership
	// check (0: checker defaults / unbounded).
	MaxStates   int
	MaxDuration time.Duration
	// SimEventsPerQuery bounds one membership simulation.
	SimEventsPerQuery int

	Obs *obs.Observer
}

// CheckOutcome is one leg of the triangle.
type CheckOutcome struct {
	Holds bool `json:"holds"`
	// Counterexample is the offending trace when the leg fails.
	Counterexample []string `json:"counterexample,omitempty"`
}

// Checks is the refinement triangle over one learned automaton: both
// trace-refinement directions against the extracted model, plus the
// paper-style per-protocol specs (SP02's diagnosis request/report
// alternation and SP034's update alternation) checked on the learned
// process with the other protocol hidden.
type Checks struct {
	LearnedRefinesExtracted CheckOutcome `json:"learnedRefinesExtracted"`
	ExtractedRefinesLearned CheckOutcome `json:"extractedRefinesLearned"`
	SpecDiag                CheckOutcome `json:"specDiag"`
	SpecUpdate              CheckOutcome `json:"specUpdate"`
}

// Witness is a delta-shrunk, replayable learned/extracted divergence:
// a minimal word on which the extracted model and the learned automaton
// disagree, with the simulator's own verdict as ground truth
// (learncheck -replay re-derives ExtractedAccepts and SimAccepts).
type Witness struct {
	Variant string   `json:"variant"`
	Profile string   `json:"profile"`
	Seed    int64    `json:"seed"`
	Check   string   `json:"check"`
	Trace   []string `json:"trace"`
	// ExtractedAccepts / LearnedAccepts disagree by construction.
	ExtractedAccepts bool `json:"extractedAccepts"`
	LearnedAccepts   bool `json:"learnedAccepts"`
	// SimAccepts arbitrates: it matches LearnedAccepts when the
	// extraction is unsound and ExtractedAccepts when the learner
	// under-converged.
	SimAccepts bool `json:"simAccepts"`
}

// VariantReport is the campaign result for one gateway variant.
type VariantReport struct {
	Variant Variant  `json:"variant"`
	Learned *DFAJSON `json:"learned,omitempty"`
	Queries Stats    `json:"queries"`
	// EquivalentToExtracted is true when both refinement directions
	// hold: the learned automaton is trace-equivalent to the extracted
	// model.
	EquivalentToExtracted bool     `json:"equivalentToExtracted"`
	Checks                *Checks  `json:"checks,omitempty"`
	Witness               *Witness `json:"witness,omitempty"`
	Error                 string   `json:"error,omitempty"`
}

// Report is a whole campaign, JSON-rendered byte-identically at any
// worker count (no wall-clock data).
type Report struct {
	Seed     int64           `json:"seed"`
	Profile  FaultProfile    `json:"profile"`
	Depth    int             `json:"depth"`
	Walks    int             `json:"walks"`
	Variants []VariantReport `json:"variants"`
}

// JSON renders the report deterministically.
func (r *Report) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Text renders a human summary.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "learncheck: seed %d, profile %s, depth %d, %d walks/round\n",
		r.Seed, r.Profile, r.Depth, r.Walks)
	for _, vr := range r.Variants {
		if vr.Error != "" {
			fmt.Fprintf(&b, "%-9s ERROR: %s\n", vr.Variant, vr.Error)
			continue
		}
		verdict := "diverges from extracted model"
		if vr.EquivalentToExtracted {
			verdict = "trace-equivalent to extracted model"
		}
		fmt.Fprintf(&b, "%-9s %d states, %d membership queries (%d cached), %d equivalence words in %d rounds: %s\n",
			vr.Variant, vr.Learned.States, vr.Queries.MembershipQueries, vr.Queries.CacheHits,
			vr.Queries.EquivalenceWords, vr.Queries.EquivalenceRounds, verdict)
		if vr.Checks != nil {
			fmt.Fprintf(&b, "          checks: learned⊑extracted=%v extracted⊑learned=%v specDiag=%v specUpdate=%v\n",
				vr.Checks.LearnedRefinesExtracted.Holds, vr.Checks.ExtractedRefinesLearned.Holds,
				vr.Checks.SpecDiag.Holds, vr.Checks.SpecUpdate.Holds)
		}
		if vr.Witness != nil {
			fmt.Fprintf(&b, "          witness (%s): %s [extracted=%v learned=%v sim=%v]\n",
				vr.Witness.Check, strings.Join(vr.Witness.Trace, " "),
				vr.Witness.ExtractedAccepts, vr.Witness.LearnedAccepts, vr.Witness.SimAccepts)
		}
	}
	return b.String()
}

// Run learns every requested variant and closes the triangle on each.
func Run(cfg CampaignConfig) (*Report, error) {
	if cfg.Profile == "" {
		cfg.Profile = ProfileNone
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 6
	}
	if cfg.Walks <= 0 {
		cfg.Walks = 64
	}
	variants := cfg.Variants
	if len(variants) == 0 {
		variants = Variants
	}
	rep := &Report{Seed: cfg.Seed, Profile: cfg.Profile, Depth: cfg.Depth, Walks: cfg.Walks}
	for _, v := range variants {
		rep.Variants = append(rep.Variants, runVariant(cfg, v))
	}
	return rep, nil
}

// NewVariantTeacher builds the simulated-bus teacher for a variant —
// shared by the campaign and learncheck -replay.
func NewVariantTeacher(cfg CampaignConfig, v Variant) (*SimTeacher, error) {
	src, err := v.ecuSource()
	if err != nil {
		return nil, err
	}
	db, err := ota.Database()
	if err != nil {
		return nil, err
	}
	return NewSimTeacher(SimTeacherConfig{
		NodeName:          "ECU",
		Source:            src,
		DB:                db,
		Rename:            ota.MessageRename,
		InChannel:         "send",
		OutChannel:        "rec",
		InSender:          "VMG",
		Seed:              cfg.Seed,
		Profile:           cfg.Profile,
		MaxEventsPerQuery: cfg.SimEventsPerQuery,
	})
}

// BuildReference builds the variant's reference system and a checker
// over its environment; the extracted ECU process is csp.Call("ECU").
func BuildReference(cfg CampaignConfig, v Variant) (*ota.System, *refine.Checker, error) {
	ocfg, err := v.referenceConfig()
	if err != nil {
		return nil, nil, err
	}
	sys, err := ota.BuildObserved(ocfg)
	if err != nil {
		return nil, nil, fmt.Errorf("learn: build %s reference: %w", v, err)
	}
	checker := refine.NewChecker(sys.Model.Env, sys.Model.Ctx)
	checker.MaxStates = cfg.MaxStates
	checker.MaxDuration = cfg.MaxDuration
	checker.Cache = lts.NewCache()
	checker.Obs = cfg.Obs
	return sys, checker, nil
}

func runVariant(cfg CampaignConfig, v Variant) (vr VariantReport) {
	vr.Variant = v
	defer func() {
		if r := recover(); r != nil {
			vr.Error = fmt.Sprintf("panic: %v", r)
		}
	}()
	span := cfg.Obs.StartSpan("learn.variant", obs.String("variant", string(v)))
	defer span.End()

	sys, checker, err := BuildReference(cfg, v)
	if err != nil {
		vr.Error = err.Error()
		return vr
	}
	teacher, err := NewVariantTeacher(cfg, v)
	if err != nil {
		vr.Error = err.Error()
		return vr
	}
	dfa, stats, err := Learn(Config{
		Teacher:    teacher,
		Seed:       cfg.Seed,
		Depth:      cfg.Depth,
		Walks:      cfg.Walks,
		Workers:    cfg.Workers,
		MaxQueries: cfg.MaxQueries,
		MaxRounds:  cfg.MaxRounds,
		Obs:        cfg.Obs,
	})
	vr.Queries = stats
	if err != nil {
		vr.Error = err.Error()
		return vr
	}
	vr.Learned = dfa.JSON()

	learned, err := dfa.Lower(sys.Model.Env, "LEARNED")
	if err != nil {
		vr.Error = err.Error()
		return vr
	}
	extracted := csp.Call("ECU")
	checks, witness, err := closeTriangle(checker, sys, extracted, learned, dfa, teacher, v, cfg)
	if err != nil {
		vr.Error = err.Error()
		return vr
	}
	vr.Checks = checks
	vr.Witness = witness
	vr.EquivalentToExtracted = checks.LearnedRefinesExtracted.Holds && checks.ExtractedRefinesLearned.Holds
	return vr
}

func eventStrings(t csp.Trace) []string {
	out := make([]string, len(t))
	for i, ev := range t {
		out[i] = ev.String()
	}
	return out
}

// closeTriangle runs the three-way check: learned ⊑T extracted,
// extracted ⊑T learned, and the learned process against the
// per-protocol specs. The first failing refinement direction is
// delta-shrunk into a replayable witness.
func closeTriangle(checker *refine.Checker, sys *ota.System, extracted, learned csp.Process,
	dfa *DFA, teacher Teacher, v Variant, cfg CampaignConfig) (*Checks, *Witness, error) {
	refinement := func(spec, impl csp.Process) (CheckOutcome, csp.Trace, error) {
		res, err := checker.RefinesTraces(spec, impl)
		if err != nil {
			return CheckOutcome{}, nil, err
		}
		if res.Holds {
			return CheckOutcome{Holds: true}, nil, nil
		}
		// Counterexample already ends with the offending event.
		bad := append(csp.Trace{}, res.Counterexample...)
		return CheckOutcome{Counterexample: eventStrings(bad)}, bad, nil
	}

	var checks Checks
	var err error
	var cex1, cex2 csp.Trace
	checks.LearnedRefinesExtracted, cex1, err = refinement(extracted, learned)
	if err != nil {
		return nil, nil, fmt.Errorf("learn: learned ⊑ extracted: %w", err)
	}
	checks.ExtractedRefinesLearned, cex2, err = refinement(learned, extracted)
	if err != nil {
		return nil, nil, fmt.Errorf("learn: extracted ⊑ learned: %w", err)
	}

	// Per-protocol specs on the learned behaviour, mirroring the
	// paper's SP02/SP034 request/report alternation: hide the other
	// protocol and require strict alternation of this one.
	env := sys.Model.Env
	if err := env.Define("LSPEC_DIAG", nil,
		csp.Send("send", csp.Send("rec", csp.Call("LSPEC_DIAG"), csp.Sym("rptSw")), csp.Sym("reqSw"))); err != nil {
		return nil, nil, err
	}
	if err := env.Define("LSPEC_UPD", nil,
		csp.Send("send", csp.Send("rec", csp.Call("LSPEC_UPD"), csp.Sym("rptUpd")), csp.Sym("reqApp"))); err != nil {
		return nil, nil, err
	}
	updEvents := csp.Events(
		csp.Event{Chan: "send", Args: []csp.Value{csp.Sym("reqApp")}},
		csp.Event{Chan: "rec", Args: []csp.Value{csp.Sym("rptUpd")}})
	diagEvents := csp.Events(
		csp.Event{Chan: "send", Args: []csp.Value{csp.Sym("reqSw")}},
		csp.Event{Chan: "rec", Args: []csp.Value{csp.Sym("rptSw")}})
	checks.SpecDiag, _, err = refinement(csp.Call("LSPEC_DIAG"), csp.Hide(learned, updEvents))
	if err != nil {
		return nil, nil, fmt.Errorf("learn: spec diag: %w", err)
	}
	checks.SpecUpdate, _, err = refinement(csp.Call("LSPEC_UPD"), csp.Hide(learned, diagEvents))
	if err != nil {
		return nil, nil, fmt.Errorf("learn: spec update: %w", err)
	}

	var witness *Witness
	name, cex := "learnedRefinesExtracted", cex1
	if cex == nil && cex2 != nil {
		name, cex = "extractedRefinesLearned", cex2
	}
	if cex != nil {
		w, werr := shrinkWitness(checker, extracted, dfa, cex)
		if werr != nil {
			return nil, nil, werr
		}
		extAcc, werr := checker.AcceptsTrace(extracted, w)
		if werr != nil {
			return nil, nil, werr
		}
		simAcc, werr := teacher.Membership(w)
		if werr != nil {
			return nil, nil, werr
		}
		witness = &Witness{
			Variant:          string(v),
			Profile:          string(cfg.Profile),
			Seed:             cfg.Seed,
			Check:            name,
			Trace:            eventStrings(w),
			ExtractedAccepts: extAcc.Accepted,
			LearnedAccepts:   dfa.Accepts(w),
			SimAccepts:       simAcc,
		}
	}
	return &checks, witness, nil
}

// shrinkWitness greedily delta-shrinks a divergence word: drop any
// event whose removal preserves the extracted/learned disagreement,
// to a fixed point. BFS counterexamples are already shortest, but
// subsequences can disagree even more simply.
func shrinkWitness(checker *refine.Checker, extracted csp.Process, dfa *DFA, w csp.Trace) (csp.Trace, error) {
	disagree := func(t csp.Trace) (bool, error) {
		res, err := checker.AcceptsTrace(extracted, t)
		if err != nil {
			return false, err
		}
		return res.Accepted != dfa.Accepts(t), nil
	}
	ok, err := disagree(w)
	if err != nil {
		return nil, err
	}
	if !ok {
		// The refinement counterexample should disagree by
		// construction; keep it unshrunk if the membership view differs.
		return w, nil
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(w); i++ {
			cand := append(append(csp.Trace{}, w[:i]...), w[i+1:]...)
			ok, err := disagree(cand)
			if err != nil {
				return nil, err
			}
			if ok {
				w = cand
				changed = true
				break
			}
		}
	}
	return w, nil
}
