package learn

import (
	"fmt"
	"sync"

	"repro/internal/csp"
	"repro/internal/obs"
	"repro/internal/refine"
)

// Teacher answers the membership side of an active-learning dialogue:
// is a word over the model-event alphabet a trace of the system under
// learning? Implementations must be deterministic (the same word always
// gets the same answer) and safe for concurrent queries — equivalence
// sweeps fan membership queries out over a worker pool.
type Teacher interface {
	// Alphabet is the event vocabulary of the language, in a fixed
	// deterministic order.
	Alphabet() []csp.Event
	// Membership reports whether w is a trace of the system under
	// learning.
	Membership(w csp.Trace) (bool, error)
}

// QueryBudgetError reports that the membership-query budget ran out
// before the learner converged. The message carries no query-specific
// detail on purpose: under a concurrent equivalence sweep the exact
// query that trips the budget depends on scheduling, and reports must
// stay byte-identical at any worker count.
type QueryBudgetError struct {
	Limit int
}

func (e *QueryBudgetError) Error() string {
	return fmt.Sprintf("learn: membership query budget exhausted (limit %d)", e.Limit)
}

// queryCache wraps a teacher with a concurrency-safe memo and a query
// budget. Observation-table refills re-ask the same words once per new
// suffix column and equivalence suites overlap across rounds, so the
// memo turns the quadratic re-asking into map hits; the underlying
// teacher (a full simulator run per query) is only consulted once per
// distinct word.
type queryCache struct {
	t     Teacher
	limit int
	o     *obs.Observer

	mu      sync.Mutex
	memo    map[string]bool
	queries int64
	hits    int64
}

func newQueryCache(t Teacher, limit int, o *obs.Observer) *queryCache {
	return &queryCache{t: t, limit: limit, o: o, memo: map[string]bool{}}
}

func (c *queryCache) membership(w csp.Trace) (bool, error) {
	key := w.String()
	c.mu.Lock()
	if v, ok := c.memo[key]; ok {
		c.hits++
		c.mu.Unlock()
		c.o.Counter("learn.cache.hits").Inc()
		return v, nil
	}
	if c.limit > 0 && c.queries >= int64(c.limit) {
		limit := c.limit
		c.mu.Unlock()
		return false, &QueryBudgetError{Limit: limit}
	}
	c.queries++
	c.mu.Unlock()

	v, err := c.t.Membership(w)
	if err != nil {
		return false, fmt.Errorf("learn: membership %s: %w", key, err)
	}
	c.mu.Lock()
	c.memo[key] = v
	c.mu.Unlock()
	c.o.Counter("learn.queries.membership").Inc()
	c.o.Counter("learn.cache.misses").Inc()
	return v, nil
}

func (c *queryCache) stats() (queries, hits int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queries, c.hits
}

// ModelTeacher answers membership against a CSP process term via
// refine.AcceptsTrace — the simulator-free teacher used to
// differentially test the learner itself: learning a known model and
// checking the result is trace-equivalent to it exercises every part of
// the learner except the simulator harness.
type ModelTeacher struct {
	Checker *refine.Checker
	Proc    csp.Process
	Events  []csp.Event
}

// Alphabet returns the configured event vocabulary.
func (t *ModelTeacher) Alphabet() []csp.Event { return t.Events }

// Membership runs the on-the-fly trace-membership check.
func (t *ModelTeacher) Membership(w csp.Trace) (bool, error) {
	res, err := t.Checker.AcceptsTrace(t.Proc, w)
	if err != nil {
		return false, err
	}
	return res.Accepted, nil
}
