package learn

import (
	"fmt"

	"repro/internal/csp"
)

// DFA is a complete deterministic automaton over a fixed event
// alphabet — the learner's hypothesis. For the trace languages learned
// here (prefix-closed by construction) the non-accepting states form a
// reject region; they are kept explicit so the automaton stays total
// and W-method access strings cover every row of the observation table.
type DFA struct {
	// Alpha is the event alphabet, fixed order.
	Alpha []csp.Event
	// States is the state count; states are 0..States-1.
	States int
	// Initial is the start state.
	Initial int
	// Accepting marks the states whose access words are in the language.
	Accepting []bool
	// Delta is the total transition function Delta[state][symbol].
	Delta [][]int
	// Access holds one access word per state (how the learner reaches
	// it from the initial state); after Canonical these are the
	// BFS-shortest access words.
	Access []csp.Trace

	symIdx map[string]int
}

func (d *DFA) index() map[string]int {
	if d.symIdx == nil {
		d.symIdx = make(map[string]int, len(d.Alpha))
		for i, a := range d.Alpha {
			d.symIdx[a.String()] = i
		}
	}
	return d.symIdx
}

// Walk returns the state reached from the initial state on w. Events
// outside the alphabet report an error — the learner never generates
// them, so one appearing means a caller projected a foreign trace.
func (d *DFA) Walk(w csp.Trace) (int, error) {
	idx := d.index()
	st := d.Initial
	for _, ev := range w {
		a, ok := idx[ev.String()]
		if !ok {
			return 0, fmt.Errorf("learn: event %s not in the learned alphabet", ev)
		}
		st = d.Delta[st][a]
	}
	return st, nil
}

// Accepts reports whether w is in the hypothesis language.
func (d *DFA) Accepts(w csp.Trace) bool {
	st, err := d.Walk(w)
	if err != nil {
		return false
	}
	return d.Accepting[st]
}

// Canonical renumbers the states in breadth-first order from the
// initial state (alphabet order per level) and recomputes shortest
// access words, dropping unreachable states. Two runs that learn the
// same language at different worker counts therefore render the same
// automaton byte for byte.
func (d *DFA) Canonical() *DFA {
	order := make([]int, 0, d.States)
	newIdx := make([]int, d.States)
	for i := range newIdx {
		newIdx[i] = -1
	}
	newIdx[d.Initial] = 0
	order = append(order, d.Initial)
	access := []csp.Trace{{}}
	for qi := 0; qi < len(order); qi++ {
		old := order[qi]
		for a := range d.Alpha {
			to := d.Delta[old][a]
			if newIdx[to] >= 0 {
				continue
			}
			newIdx[to] = len(order)
			order = append(order, to)
			step := append(append(csp.Trace{}, access[qi]...), d.Alpha[a])
			access = append(access, step)
		}
	}
	out := &DFA{
		Alpha:     d.Alpha,
		States:    len(order),
		Initial:   0,
		Accepting: make([]bool, len(order)),
		Delta:     make([][]int, len(order)),
		Access:    access,
	}
	for ni, old := range order {
		out.Accepting[ni] = d.Accepting[old]
		row := make([]int, len(d.Alpha))
		for a := range d.Alpha {
			row[a] = newIdx[d.Delta[old][a]]
		}
		out.Delta[ni] = row
	}
	return out
}

// Lower registers the accepting part of the automaton as process
// definitions in env (one per accepting state, named prefix_S<n>) and
// returns the root process. Transitions into rejecting states are
// simply not offered — the language is prefix-closed, so the lowered
// process's trace set is exactly the accepted language — and an
// accepting state with no live successors lowers to STOP.
func (d *DFA) Lower(env *csp.Env, prefix string) (csp.Process, error) {
	name := func(i int) string { return fmt.Sprintf("%s_S%d", prefix, i) }
	for i := 0; i < d.States; i++ {
		if !d.Accepting[i] {
			continue
		}
		var branches []csp.Process
		for a, ev := range d.Alpha {
			j := d.Delta[i][a]
			if j < 0 || !d.Accepting[j] {
				continue
			}
			branches = append(branches, csp.Send(ev.Chan, csp.Call(name(j)), ev.Args...))
		}
		if err := env.Define(name(i), nil, csp.ExtChoice(branches...)); err != nil {
			return nil, fmt.Errorf("learn: lower state %d: %w", i, err)
		}
	}
	if d.States == 0 || !d.Accepting[d.Initial] {
		// The empty language: no teacher produces it (the empty word is
		// always a trace), but lower it total anyway.
		return csp.Stop(), nil
	}
	return csp.Call(name(d.Initial)), nil
}

// DFAEdge is one rendered transition.
type DFAEdge struct {
	From  int    `json:"from"`
	Event string `json:"event"`
	To    int    `json:"to"`
}

// DFAJSON is the canonical wire rendering of a learned automaton,
// stable across runs and worker counts.
type DFAJSON struct {
	Alphabet  []string  `json:"alphabet"`
	States    int       `json:"states"`
	Initial   int       `json:"initial"`
	Accepting []int     `json:"accepting"`
	Edges     []DFAEdge `json:"edges"`
}

// JSON renders the automaton. Call on a Canonical automaton for a
// deterministic baseline rendering.
func (d *DFA) JSON() *DFAJSON {
	out := &DFAJSON{States: d.States, Initial: d.Initial}
	for _, a := range d.Alpha {
		out.Alphabet = append(out.Alphabet, a.String())
	}
	for i := 0; i < d.States; i++ {
		if d.Accepting[i] {
			out.Accepting = append(out.Accepting, i)
		}
	}
	for i := 0; i < d.States; i++ {
		for a, ev := range d.Alpha {
			out.Edges = append(out.Edges, DFAEdge{From: i, Event: ev.String(), To: d.Delta[i][a]})
		}
	}
	return out
}
