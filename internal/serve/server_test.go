package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/leakcheck"
)

const tinyModel = `
channel a, b
SPEC = a -> SPEC
GOOD = a -> GOOD
assert SPEC [T= GOOD
assert GOOD :[deadlock free]
`

// heavySource builds a fresh 2^k-state interleave model; unique names
// keep it out of the shared cache across tests.
func heavySource(id, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "channel h%d, t%d\n", id, id)
	fmt.Fprintf(&b, "P%d = h%d -> t%d -> P%d\n", id, id, id, id)
	fmt.Fprintf(&b, "SYS%d = ", id)
	for i := 0; i < k; i++ {
		if i > 0 {
			b.WriteString(" ||| ")
		}
		fmt.Fprintf(&b, "P%d", id)
	}
	fmt.Fprintf(&b, "\nassert SYS%d :[deadlock free]\n", id)
	return b.String()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	// Stop the job dispatcher so leakcheck sees a quiet process even in
	// tests that never drain.
	t.Cleanup(srv.Kill)
	return srv, ts
}

func postCheck(t *testing.T, ctx context.Context, base string, req CheckRequest, hdr map[string]string) (int, *CheckResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/check", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("POST /v1/check: %v", err)
	}
	defer resp.Body.Close()
	var out CheckResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, &out
}

func TestCheckEndToEnd(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Workers: 2})
	status, resp := postCheck(t, context.Background(), ts.URL, CheckRequest{CSPM: tinyModel}, nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%+v)", status, resp)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d verdicts, want 2", len(resp.Results))
	}
	for _, v := range resp.Results {
		if !v.Holds || v.Error != "" {
			t.Errorf("verdict %+v, want holds with no error", v)
		}
	}
}

func TestRejectShapes(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 4096})
	cases := []struct {
		name   string
		method string
		body   string
		want   int
	}{
		{"malformed json", http.MethodPost, `{"cspm": nope`, http.StatusBadRequest},
		{"empty cspm", http.MethodPost, `{"cspm": ""}`, http.StatusBadRequest},
		{"bad cspm", http.MethodPost, `{"cspm": "P = [] ->"}`, http.StatusBadRequest},
		{"oversized", http.MethodPost, `{"cspm": "` + strings.Repeat("x", 8192) + `"}`, http.StatusRequestEntityTooLarge},
		{"wrong method", http.MethodGet, "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+"/v1/check", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAdmissionOverload(t *testing.T) {
	leakcheck.Check(t)
	srv, ts := newTestServer(t, Config{Workers: 1, MaxQueue: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Fill the single worker slot and the single queue position with
	// heavy checks that we cancel on exit.
	errc := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			body, _ := json.Marshal(CheckRequest{CSPM: heavySource(9000+i, 18)})
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/check", bytes.NewReader(body))
			if err != nil {
				errc <- err
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if resp != nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			errc <- err
		}(i)
	}
	waitFor(t, "worker busy and queue full", 10*time.Second, func() bool {
		return srv.inflight.Load() == 1 && srv.waiting.Load() == 1
	})

	status, resp := postCheck(t, context.Background(), ts.URL, CheckRequest{CSPM: tinyModel}, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%+v)", status, resp)
	}
	if !strings.Contains(resp.Error, "overloaded") {
		t.Errorf("429 body = %q, want an overloaded error", resp.Error)
	}

	cancel()
	for i := 0; i < 2; i++ {
		<-errc
	}
	waitFor(t, "slots released", 10*time.Second, func() bool {
		return srv.inflight.Load() == 0 && srv.waiting.Load() == 0
	})
}

func TestOverloadResponseCarriesRetryAfter(t *testing.T) {
	leakcheck.Check(t)
	srv, ts := newTestServer(t, Config{Workers: 1, MaxQueue: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		body, _ := json.Marshal(CheckRequest{CSPM: heavySource(9100, 18)})
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/check", bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	go func() {
		body, _ := json.Marshal(CheckRequest{CSPM: heavySource(9101, 18)})
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/check", bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitFor(t, "queue full", 10*time.Second, func() bool {
		return srv.inflight.Load() == 1 && srv.waiting.Load() == 1
	})
	body, _ := json.Marshal(CheckRequest{CSPM: tinyModel})
	resp, err := http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	cancel()
	waitFor(t, "slots released", 10*time.Second, func() bool {
		return srv.inflight.Load() == 0 && srv.waiting.Load() == 0
	})
}

// TestCancelFreesWorkerAndEvictsFlight is the pinned acceptance test:
// cancelling a request mid-check must (a) free its worker slot promptly
// — within one BFS level of cooperative checking, not after the full
// exploration — and (b) evict the in-flight cache entry, so a retry
// recomputes instead of replaying a cancellation error.
func TestCancelFreesWorkerAndEvictsFlight(t *testing.T) {
	leakcheck.Check(t)
	srv, ts := newTestServer(t, Config{Workers: 1})
	src := heavySource(9200, 20) // ~1M states: far slower than the test budget

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		body, _ := json.Marshal(CheckRequest{CSPM: src})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/check", bytes.NewReader(body))
		if err != nil {
			done <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()
	waitFor(t, "check in flight", 10*time.Second, func() bool {
		return srv.inflight.Load() == 1
	})
	// Let the exploration get some real work in flight before pulling
	// the plug.
	time.Sleep(50 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled request completed successfully")
	}

	// (a) The worker is freed: a fresh small check on the single-worker
	// server completes far sooner than the heavy exploration would have.
	freed := make(chan struct{})
	go func() {
		defer close(freed)
		status, resp := postCheck(t, context.Background(), ts.URL, CheckRequest{CSPM: tinyModel}, nil)
		if status != http.StatusOK {
			t.Errorf("follow-up check status = %d (%+v)", status, resp)
		}
	}()
	select {
	case <-freed:
	case <-time.After(15 * time.Second):
		t.Fatal("worker not freed within 15s of cancellation")
	}

	// (b) The in-flight entry is evicted, not poisoned: the store holds
	// only the follow-up model's explorations, and re-checking the heavy
	// model recomputes (misses grow) rather than replaying the abort.
	_, missesBefore := srv.Cache().Stats()
	cctx, ccancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer ccancel()
	body, _ := json.Marshal(CheckRequest{CSPM: src})
	req, _ := http.NewRequestWithContext(cctx, http.MethodPost, ts.URL+"/v1/check", bytes.NewReader(body))
	if resp, err := http.DefaultClient.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	waitFor(t, "retry recomputes the evicted flight", 10*time.Second, func() bool {
		_, misses := srv.Cache().Stats()
		return misses > missesBefore
	})
	waitFor(t, "in-flight entry evicted", 10*time.Second, func() bool {
		return srv.inflight.Load() == 0
	})
}

func TestPanicIsolation(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Workers: 1, EnableChaos: true})
	status, resp := postCheck(t, context.Background(), ts.URL,
		CheckRequest{CSPM: tinyModel}, map[string]string{"X-Chaos-Panic": "1"})
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", status)
	}
	if !strings.Contains(resp.Error, "panicked") {
		t.Errorf("error = %q, want a structured panic message", resp.Error)
	}
	// The process survived; the very next check works.
	status, resp = postCheck(t, context.Background(), ts.URL, CheckRequest{CSPM: tinyModel}, nil)
	if status != http.StatusOK || len(resp.Results) != 2 {
		t.Fatalf("post-panic check: status %d, %d results", status, len(resp.Results))
	}
}

func TestBudgetClampAndErrorKind(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Workers: 1, MaxStates: 64})
	// The request asks for far more than the server cap; the clamp must
	// win and the exhaustion surface as a structured budget error.
	status, resp := postCheck(t, context.Background(), ts.URL, CheckRequest{
		CSPM:   heavySource(9300, 12),
		Budget: &BudgetSpec{MaxStates: 1 << 20},
	}, nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 with per-assert errors", status)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("got %d verdicts, want 1", len(resp.Results))
	}
	v := resp.Results[0]
	if v.Error == "" || !strings.HasPrefix(v.ErrorKind, "budget:") {
		t.Errorf("verdict = %+v, want a budget:<phase> error", v)
	}
}

func TestDrainLifecycle(t *testing.T) {
	leakcheck.Check(t)
	srv, ts := newTestServer(t, Config{Workers: 1})

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("readyz before drain = %d", resp.StatusCode)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}

	// Ready flips to 503 with a hint; liveness stays 200; new checks are
	// rejected with 503.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining readyz without Retry-After")
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("healthz after drain = %d, want 200", resp.StatusCode)
		}
	}
	status, _ := postCheck(t, context.Background(), ts.URL, CheckRequest{CSPM: tinyModel}, nil)
	if status != http.StatusServiceUnavailable {
		t.Errorf("check after drain = %d, want 503", status)
	}
}

func TestDrainWaitsForInflight(t *testing.T) {
	leakcheck.Check(t)
	srv, ts := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		body, _ := json.Marshal(CheckRequest{CSPM: heavySource(9400, 19)})
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/check", bytes.NewReader(body))
		if resp, err := http.DefaultClient.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitFor(t, "check in flight", 10*time.Second, func() bool {
		return srv.inflight.Load() == 1
	})

	// Drain with a short deadline must report the straggler.
	shortCtx, shortCancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer shortCancel()
	if err := srv.Drain(shortCtx); err == nil {
		t.Fatal("drain returned while a check was in flight")
	}
	// Release the straggler; the drain then completes.
	cancel()
	<-done
	fullCtx, fullCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer fullCancel()
	if err := srv.Drain(fullCtx); err != nil {
		t.Fatalf("drain after release: %v", err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Workers: 1})
	if status, _ := postCheck(t, context.Background(), ts.URL, CheckRequest{CSPM: tinyModel}, nil); status != http.StatusOK {
		t.Fatalf("warm-up check failed: %d", status)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	for _, want := range []string{"serve.accepted", "serve.completed", "serve.cache.entries", "fdr.asserts"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
