package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/statestore"
)

// The durable-job layer: POST /v1/jobs submits a check that runs
// detached from the submitting connection, under the server's lifetime
// rather than the request's. Job IDs are content-addressed (a digest of
// the canonical request), so resubmitting the same model is idempotent
// and a job survives its client. With Config.DataDir set, job records
// persist to disk with atomic writes and explorations checkpoint under
// per-assertion directories — a server killed outright (SIGKILL, OOM)
// re-enqueues its unfinished jobs at the next boot and resumes their
// explorations from the last checkpointed BFS level, producing verdicts
// byte-identical to an uninterrupted run.

// Job states reported by the API.
const (
	JobPending = "pending"
	JobRunning = "running"
	JobDone    = "done"
)

// JobStatus is the wire form of a job: the submit response and the
// GET /v1/jobs/{id} body.
type JobStatus struct {
	// ID is the content-addressed job identifier.
	ID string `json:"id"`
	// State is "pending", "running" or "done".
	State string `json:"state"`
	// Response carries the check outcome once State is "done".
	Response *CheckResponse `json:"response,omitempty"`
}

// job is the in-memory job record; state transitions are guarded by
// Server.jobsMu.
type job struct {
	id    string
	req   CheckRequest
	state string
	resp  *CheckResponse
}

// jobRecord is the on-disk job document, written atomically so a crash
// leaves either the previous record or the new one, never a torn file.
type jobRecord struct {
	ID       string         `json:"id"`
	Request  CheckRequest   `json:"request"`
	Done     bool           `json:"done"`
	Response *CheckResponse `json:"response,omitempty"`
}

// jobID derives the content-addressed identifier of a request. Struct
// JSON encoding is deterministic, so equal requests (model + budget)
// always map to the same job.
func jobID(req *CheckRequest) string {
	data, err := json.Marshal(req)
	if err != nil {
		// CheckRequest is strings and ints; Marshal cannot fail. Guard
		// anyway so a future field keeps submission total.
		data = []byte(req.CSPM)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:12])
}

func (s *Server) jobsDir() string { return filepath.Join(s.cfg.DataDir, "jobs") }
func (s *Server) jobPath(id string) string {
	return filepath.Join(s.jobsDir(), id+".json")
}

// jobCheckpointRoot is the directory a job's explorations checkpoint
// under (one subdirectory per assertion).
func (s *Server) jobCheckpointRoot(id string) string {
	if s.cfg.DataDir == "" {
		return ""
	}
	return filepath.Join(s.jobsDir(), id+".cp")
}

// persistJob writes the job's disk record; no-op without a DataDir.
func (s *Server) persistJob(j *job, done bool) error {
	if s.cfg.DataDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.jobsDir(), 0o755); err != nil {
		return err
	}
	rec := jobRecord{ID: j.id, Request: j.req, Done: done, Response: j.resp}
	data, err := json.Marshal(&rec)
	if err != nil {
		return err
	}
	return statestore.WriteFileAtomic(s.jobPath(j.id), data, 0o644)
}

// statusOf snapshots a job for the wire; callers hold jobsMu.
func statusOf(j *job) JobStatus {
	return JobStatus{ID: j.id, State: j.state, Response: j.resp}
}

// handleJobSubmit is POST /v1/jobs: parse, dedup by content address,
// persist as pending, enqueue for the dispatcher, answer 202. A
// resubmission of a known job answers 200 with its current status — the
// retry loop a crashed client runs is naturally idempotent.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter("serve.requests").Inc()
	if r.Method != http.MethodPost {
		s.reject(w, http.StatusMethodNotAllowed, false, "POST required")
		return
	}
	if s.draining.Load() {
		s.obs.Counter("serve.rejected.draining").Inc()
		s.reject(w, http.StatusServiceUnavailable, true, "draining")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req CheckRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.obs.Counter("serve.rejected.oversized").Inc()
			s.reject(w, http.StatusRequestEntityTooLarge, false,
				fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		s.obs.Counter("serve.rejected.malformed").Inc()
		s.reject(w, http.StatusBadRequest, false, "malformed request: "+err.Error())
		return
	}
	if req.CSPM == "" {
		s.obs.Counter("serve.rejected.malformed").Inc()
		s.reject(w, http.StatusBadRequest, false, "empty cspm")
		return
	}

	id := jobID(&req)
	s.jobsMu.Lock()
	if j, ok := s.jobs[id]; ok {
		st := statusOf(j)
		s.jobsMu.Unlock()
		writeJSON(w, http.StatusOK, st)
		return
	}
	j := &job{id: id, req: req, state: JobPending}
	s.jobs[id] = j
	s.jobsMu.Unlock()

	if err := s.persistJob(j, false); err != nil {
		s.jobsMu.Lock()
		delete(s.jobs, id)
		s.jobsMu.Unlock()
		s.obs.Counter("serve.jobs.persist.errors").Inc()
		s.reject(w, http.StatusInternalServerError, false, "persist job: "+err.Error())
		return
	}
	select {
	case s.jobQueue <- j:
	default:
		s.jobsMu.Lock()
		delete(s.jobs, id)
		s.jobsMu.Unlock()
		if s.cfg.DataDir != "" {
			_ = os.Remove(s.jobPath(id))
		}
		s.obs.Counter("serve.rejected.overload").Inc()
		s.reject(w, http.StatusTooManyRequests, true, "job queue full")
		return
	}
	s.obs.Counter("serve.jobs.submitted").Inc()
	writeJSON(w, http.StatusAccepted, JobStatus{ID: id, State: JobPending})
}

// handleJobGet is GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.reject(w, http.StatusMethodNotAllowed, false, "GET required")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		s.reject(w, http.StatusBadRequest, false, "malformed job id")
		return
	}
	s.jobsMu.Lock()
	j, ok := s.jobs[id]
	var st JobStatus
	if ok {
		st = statusOf(j)
	}
	s.jobsMu.Unlock()
	if !ok {
		s.reject(w, http.StatusNotFound, false, "unknown job "+id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// dispatch is the job scheduler: one long-lived goroutine pulling
// pending jobs and handing each to a worker goroutine once a shared
// admission slot frees up — jobs and synchronous /v1/check requests
// compete for the same worker pool, so the concurrency cap holds across
// both paths. It stops on drain (pending jobs stay pending, and durable
// ones re-enqueue at next boot) and on Kill.
func (s *Server) dispatch() {
	defer s.jobWg.Done()
	defer func() {
		// The dispatcher must never take the daemon down; if it dies the
		// sync path still works and pending jobs recover at next boot.
		if r := recover(); r != nil {
			s.obs.Counter("serve.panics").Inc()
		}
	}()
	for {
		var j *job
		select {
		case <-s.baseCtx.Done():
			return
		case <-s.drainCh:
			return
		case j = <-s.jobQueue:
		}
		select {
		case <-s.baseCtx.Done():
			return
		case <-s.drainCh:
			return
		case s.sem <- struct{}{}:
		}
		s.wg.Add(1)
		s.jobWg.Add(1)
		go func(j *job) {
			defer s.jobWg.Done()
			defer s.wg.Done()
			defer func() { <-s.sem }()
			defer func() {
				if r := recover(); r != nil {
					// runCheck recovers check panics itself; this boundary
					// guards the job bookkeeping.
					s.obs.Counter("serve.panics").Inc()
				}
			}()
			s.runJob(j)
		}(j)
	}
}

// runJob executes one job to completion under the server's lifetime
// context. If the server is killed mid-run the verdict is discarded —
// the job record on disk still says pending, so the next boot re-runs
// it, resuming from its exploration checkpoints.
func (s *Server) runJob(j *job) {
	s.jobsMu.Lock()
	j.state = JobRunning
	s.jobsMu.Unlock()
	s.obs.Gauge("serve.jobs.running").Add(1)
	defer s.obs.Gauge("serve.jobs.running").Add(-1)

	resp, _ := s.runCheck(s.baseCtx, &j.req, false, s.jobCheckpointRoot(j.id))
	if s.baseCtx.Err() != nil {
		// Killed mid-run: the response may be a partial cancellation
		// artifact, never a verdict. Leave the job pending on disk.
		s.jobsMu.Lock()
		j.state = JobPending
		s.jobsMu.Unlock()
		return
	}
	s.jobsMu.Lock()
	j.resp = &resp
	j.state = JobDone
	s.jobsMu.Unlock()
	if err := s.persistJob(j, true); err != nil {
		s.obs.Counter("serve.jobs.persist.errors").Inc()
	} else if root := s.jobCheckpointRoot(j.id); root != "" {
		// The verdict is durable; the exploration checkpoints have served
		// their purpose.
		_ = os.RemoveAll(root)
	}
	s.obs.Counter("serve.jobs.completed").Inc()
}

// recoverJobs loads the DataDir job records at boot: done jobs become
// queryable immediately, unfinished ones re-enqueue in ID order. Called
// from New before the dispatcher starts consuming.
func (s *Server) recoverJobs() []*job {
	if s.cfg.DataDir == "" {
		return nil
	}
	ents, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return nil // no jobs dir yet: fresh DataDir
	}
	var pending []*job
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.jobsDir(), ent.Name()))
		if err != nil {
			s.obs.Counter("serve.jobs.corrupt").Inc()
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil || rec.ID == "" {
			s.obs.Counter("serve.jobs.corrupt").Inc()
			continue
		}
		j := &job{id: rec.ID, req: rec.Request, state: JobPending, resp: rec.Response}
		if rec.Done {
			j.state = JobDone
		}
		s.jobs[rec.ID] = j
		if !rec.Done {
			pending = append(pending, j)
		}
	}
	sort.Slice(pending, func(i, k int) bool { return pending[i].id < pending[k].id })
	s.obs.Counter("serve.jobs.recovered").Add(int64(len(pending)))
	return pending
}

// enqueueRecovered feeds recovered pending jobs to the dispatcher from
// its own goroutine, so a backlog larger than the queue buffer cannot
// block server construction.
func (s *Server) enqueueRecovered(pending []*job) {
	defer s.jobWg.Done()
	defer func() {
		if r := recover(); r != nil {
			s.obs.Counter("serve.panics").Inc()
		}
	}()
	for _, j := range pending {
		select {
		case s.jobQueue <- j:
		case <-s.baseCtx.Done():
			return
		case <-s.drainCh:
			return
		}
	}
}

// Kill simulates abrupt process death for crash tests: it cancels the
// server's lifetime context — aborting running jobs mid-BFS-level with
// their verdicts discarded — and waits for the job machinery to
// quiesce. Unlike Drain, nothing is flushed or finished: durable jobs
// stay pending on disk, exactly as a SIGKILL would leave them, and a
// new Server over the same DataDir picks them up.
func (s *Server) Kill() {
	s.baseCancel()
	s.jobWg.Wait()
}
