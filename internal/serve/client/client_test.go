package client

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// flakyServer answers with the scripted status codes in order, then
// 200s with a one-verdict response.
func flakyServer(t *testing.T, script []int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1)) - 1
		if n < len(script) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(script[n])
			_ = json.NewEncoder(w).Encode(serve.CheckResponse{Error: "scripted failure"})
			return
		}
		_ = json.NewEncoder(w).Encode(serve.CheckResponse{
			Results: []serve.AssertVerdict{{Assert: "assert P :[deadlock free]", Holds: true}},
		})
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// fastClient returns a client with a compressed backoff schedule so
// retry tests run in milliseconds.
func fastClient(base string) *Client {
	c := New(base)
	c.BaseDelay = time.Millisecond
	c.MaxDelay = 4 * time.Millisecond
	c.Rand = rand.New(rand.NewSource(1))
	return c
}

func TestCheckRetriesOverloadThenSucceeds(t *testing.T) {
	ts, calls := flakyServer(t, []int{429, 429, 503}, "0")
	c := fastClient(ts.URL)
	resp, err := c.Check(context.Background(), serve.CheckRequest{CSPM: "P = STOP"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || !resp.Results[0].Holds {
		t.Fatalf("response = %+v", resp)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("server saw %d attempts, want 4 (three rejections, one success)", got)
	}
}

func TestCheckDoesNotRetryClientErrors(t *testing.T) {
	ts, calls := flakyServer(t, []int{400, 400, 400, 400}, "")
	c := fastClient(ts.URL)
	_, err := c.Check(context.Background(), serve.CheckRequest{CSPM: "broken"})
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T %v, want *StatusError", err, err)
	}
	if se.Status != 400 || se.Attempts != 1 {
		t.Errorf("StatusError = %+v, want status 400 after 1 attempt", se)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1 (400s are the caller's bug)", got)
	}
	if se.Message != "scripted failure" {
		t.Errorf("message = %q, want the structured error body", se.Message)
	}
}

func TestCheckExhaustsRetries(t *testing.T) {
	ts, calls := flakyServer(t, []int{429, 429, 429, 429, 429, 429, 429, 429}, "0")
	c := fastClient(ts.URL)
	c.MaxRetries = 2
	_, err := c.Check(context.Background(), serve.CheckRequest{CSPM: "P = STOP"})
	if err == nil {
		t.Fatal("check succeeded past permanent overload")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Status != 429 {
		t.Fatalf("err = %v, want wrapped 429 StatusError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3 (1 + MaxRetries)", got)
	}
}

func TestCheckContextCancelsRetryLoop(t *testing.T) {
	ts, _ := flakyServer(t, []int{429, 429, 429, 429, 429, 429}, "1")
	c := fastClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Check(ctx, serve.CheckRequest{CSPM: "P = STOP"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The Retry-After hint is 1s; the context must cut the sleep short.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("retry loop ran %v past a 50ms context", elapsed)
	}
}

func TestRetryAfterHintForms(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	httpDate := func(d time.Duration) string {
		return time.Now().Add(d).UTC().Format(http.TimeFormat)
	}
	cases := []struct {
		name     string
		value    string
		min, max time.Duration
	}{
		{"absent", "", 0, 0},
		{"delta-seconds", "2", 2 * time.Second, 2 * time.Second},
		{"negative-delta", "-3", 0, 0},
		{"garbage", "soon", 0, 0},
		{"partial-date", "Mon, 02 Jan", 0, 0},
		// A date resolves to the remaining wait, so allow scheduling slack.
		{"http-date-future", httpDate(10 * time.Second), 8 * time.Second, 10 * time.Second},
		{"http-date-past", httpDate(-time.Hour), 0, 0},
		{"http-date-far-future", httpDate(48 * time.Hour), time.Minute, time.Minute},
	}
	for _, tc := range cases {
		got := retryAfterHint(mk(tc.value))
		if got < tc.min || got > tc.max {
			t.Errorf("%s: retryAfterHint(%q) = %v, want in [%v, %v]",
				tc.name, tc.value, got, tc.min, tc.max)
		}
	}
}

func TestCheckHonoursHTTPDateRetryAfter(t *testing.T) {
	// The server hints a date ~80ms out; the retry must wait for it (the
	// overall run takes at least the hint) and then succeed.
	hint := time.Now().Add(80 * time.Millisecond).UTC().Format(http.TimeFormat)
	ts, calls := flakyServer(t, []int{429}, hint)
	c := fastClient(ts.URL)
	resp, err := c.Check(context.Background(), serve.CheckRequest{CSPM: "P = STOP"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("response = %+v", resp)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d attempts, want 2", got)
	}
}

func TestCheckRetriesTransportErrors(t *testing.T) {
	// A server that dies after the first response: the client must retry
	// the connection refusal until retries exhaust.
	ts, _ := flakyServer(t, nil, "")
	base := ts.URL
	ts.Close()
	c := fastClient(base)
	c.MaxRetries = 2
	_, err := c.Check(context.Background(), serve.CheckRequest{CSPM: "P = STOP"})
	if err == nil {
		t.Fatal("check against a dead server succeeded")
	}
	var se *StatusError
	if errors.As(err, &se) {
		t.Fatalf("err = %v, want a transport error, not a status", err)
	}
}
