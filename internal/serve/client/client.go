// Package client is the fdrserve HTTP client: one Check call with
// retry, exponential backoff and jitter. Overload (429) and drain (503)
// responses are retried after the server's Retry-After hint (or the
// backoff schedule, whichever is longer); transport errors are retried
// on the schedule; other statuses are returned to the caller — a 400 is
// the caller's bug, and retrying it would only add load.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"repro/internal/serve"
)

// Client talks to one fdrserve base URL. The zero value is not usable;
// construct with New.
type Client struct {
	// Base is the server URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client (default http.DefaultClient).
	HTTP *http.Client
	// MaxRetries is how many times a retryable request is re-sent after
	// the first attempt (default 5).
	MaxRetries int
	// BaseDelay seeds the exponential backoff schedule (default 100ms);
	// attempt n waits BaseDelay * 2^n, capped at MaxDelay (default 5s),
	// plus up to 50% jitter.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Rand supplies the jitter; a seeded source makes retry schedules
	// reproducible in tests. nil means no jitter.
	Rand *rand.Rand
}

// New builds a client with the default retry policy.
func New(base string) *Client {
	return &Client{
		Base:       base,
		HTTP:       http.DefaultClient,
		MaxRetries: 5,
		BaseDelay:  100 * time.Millisecond,
		MaxDelay:   5 * time.Second,
	}
}

// StatusError reports a non-retryable (or retries-exhausted) HTTP
// failure, carrying the server's structured error body when present.
type StatusError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error field, or the raw body.
	Message string
	// Attempts is how many requests were sent in total.
	Attempts int
}

// Error renders the failure.
func (e *StatusError) Error() string {
	return fmt.Sprintf("server returned %d after %d attempt(s): %s", e.Status, e.Attempts, e.Message)
}

// Check posts the request and decodes the response, retrying overload
// and transport failures with exponential backoff and jitter. The
// context bounds the whole retry loop, not just one attempt.
func (c *Client) Check(ctx context.Context, req serve.CheckRequest) (*serve.CheckResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	attempts := c.MaxRetries + 1
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, attempt-1, lastErr); err != nil {
				return nil, err
			}
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/check", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		hresp, err := httpc.Do(hreq)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			continue
		}
		rbody, rerr := io.ReadAll(io.LimitReader(hresp.Body, 16<<20))
		hresp.Body.Close()
		if rerr != nil {
			lastErr = rerr
			continue
		}
		switch {
		case hresp.StatusCode == http.StatusOK:
			var out serve.CheckResponse
			if err := json.Unmarshal(rbody, &out); err != nil {
				return nil, fmt.Errorf("decode response: %w", err)
			}
			return &out, nil
		case hresp.StatusCode == http.StatusTooManyRequests ||
			hresp.StatusCode == http.StatusServiceUnavailable:
			lastErr = &StatusError{
				Status:   hresp.StatusCode,
				Message:  errorBody(rbody),
				Attempts: attempt + 1,
			}
			if ra := retryAfterHint(hresp); ra > 0 {
				if err := sleepCtx(ctx, ra); err != nil {
					return nil, err
				}
			}
			continue
		default:
			return nil, &StatusError{
				Status:   hresp.StatusCode,
				Message:  errorBody(rbody),
				Attempts: attempt + 1,
			}
		}
	}
	return nil, fmt.Errorf("retries exhausted: %w", lastErr)
}

// sleep waits out the exponential backoff for the given (0-based)
// retry, adding up to 50% jitter when a Rand is configured so a fleet
// of clients does not retry in lockstep.
func (c *Client) sleep(ctx context.Context, retry int, _ error) error {
	base := c.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxd := c.MaxDelay
	if maxd <= 0 {
		maxd = 5 * time.Second
	}
	d := base << uint(retry)
	if d > maxd || d <= 0 {
		d = maxd
	}
	if c.Rand != nil {
		d += time.Duration(c.Rand.Int63n(int64(d)/2 + 1))
	}
	return sleepCtx(ctx, d)
}

// sleepCtx sleeps for d or until the context dies.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfterHint parses the Retry-After header in both RFC 9110 forms:
// delta-seconds ("2") and HTTP-date ("Mon, 02 Jan 2006 15:04:05 GMT").
// Unparseable values, negative deltas and dates already in the past all
// yield 0 — the caller falls back to the backoff schedule, so a
// misbehaving proxy can delay a retry but never wedge or rush it.
func retryAfterHint(resp *http.Response) time.Duration {
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		return 0
	}
	if secs, err := strconv.Atoi(ra); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	when, err := http.ParseTime(ra)
	if err != nil {
		return 0
	}
	d := time.Until(when)
	if d < 0 {
		return 0
	}
	// An HTTP-date far in the future is almost certainly clock skew, not
	// a real hint; clamp so one bad header cannot stall a client.
	const maxHint = time.Minute
	if d > maxHint {
		return maxHint
	}
	return d
}

// errorBody extracts the structured error field, falling back to the
// raw body text.
func errorBody(body []byte) string {
	var cr serve.CheckResponse
	if err := json.Unmarshal(body, &cr); err == nil && cr.Error != "" {
		return cr.Error
	}
	if len(body) > 200 {
		body = body[:200]
	}
	return string(bytes.TrimSpace(body))
}
