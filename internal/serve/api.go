// Package serve is the checking-as-a-service layer: a hardened HTTP/
// JSON front end over the cspm/fdr/refine check core, built for a
// process that runs for weeks under untrusted, bursty request traffic.
// Robustness is the headline feature:
//
//   - Cooperative cancellation: every check runs under the request's
//     context plus a per-request deadline, threaded through
//     lts.Explore / refine.Checker / fdr.Budget, so a disconnected
//     client or a fired deadline frees the worker mid-BFS-level.
//   - Admission control: a fixed worker-slot pool with a bounded wait
//     queue. Past the queue watermark the server answers 429 with a
//     Retry-After hint instead of collapsing under load.
//   - Panic isolation: a panic anywhere in a check is recovered into a
//     structured error verdict; the process survives.
//   - Graceful degradation: the shared model store is a size-bounded
//     lts.Cache with LRU eviction, so the daemon trades hit-rate for
//     memory instead of OOMing.
//   - Graceful shutdown: Drain stops admitting work, lets in-flight
//     checks finish, and leaves observability sinks flushable.
package serve

import (
	"context"
	"errors"
	"time"

	"repro/internal/refine"
)

// CheckRequest is the POST /v1/check body: a CSPm script whose
// assertions are all checked, under optional per-request budgets.
type CheckRequest struct {
	// CSPM is the model source, assertions included.
	CSPM string `json:"cspm"`
	// Budget optionally tightens the per-request resource budgets. Each
	// field is clamped to the server's configured cap — a request may
	// ask for less than the cap, never more.
	Budget *BudgetSpec `json:"budget,omitempty"`
}

// BudgetSpec is the wire form of fdr.Budget. Zero fields mean "use the
// server cap".
type BudgetSpec struct {
	// MaxStates bounds each LTS exploration.
	MaxStates int `json:"maxStates,omitempty"`
	// MaxProductStates bounds the (impl, spec) pairs a refinement visits.
	MaxProductStates int `json:"maxProductStates,omitempty"`
	// MaxSteps bounds the transitions examined during a product search.
	MaxSteps int `json:"maxSteps,omitempty"`
	// MaxDurationMs bounds the wall-clock time of the whole request.
	MaxDurationMs int64 `json:"maxDurationMs,omitempty"`
}

// AssertVerdict is the outcome of one assertion. Exactly one of the
// verdict fields (Holds plus its witnesses) or Error is meaningful:
// when Error is non-empty the verdict is unknown and ErrorKind
// classifies why.
type AssertVerdict struct {
	// Assert is the assertion text as written in the script.
	Assert string `json:"assert"`
	// Holds reports the verdict (only meaningful when Error is empty).
	Holds bool `json:"holds"`
	// Counterexample is the witness trace of a failed assertion.
	Counterexample []string `json:"counterexample,omitempty"`
	// Reason explains a failed assertion.
	Reason string `json:"reason,omitempty"`
	// ImplStates / SpecNodes / ProductStates report explored sizes.
	ImplStates    int `json:"implStates,omitempty"`
	SpecNodes     int `json:"specNodes,omitempty"`
	ProductStates int `json:"productStates,omitempty"`
	// Error is set when the check produced no verdict: a budget
	// exhaustion, a cancellation, a recovered panic, or a semantic error.
	Error string `json:"error,omitempty"`
	// ErrorKind classifies Error: "budget:<phase>", "canceled", "panic"
	// or "error".
	ErrorKind string `json:"errorKind,omitempty"`
}

// CheckResponse is the POST /v1/check response body. Error is the
// request-level failure (malformed body, unparseable CSPm, internal
// panic); Results carries per-assertion outcomes when the model loaded.
type CheckResponse struct {
	// Results holds one verdict per assertion, in script order.
	Results []AssertVerdict `json:"results,omitempty"`
	// Error is the request-level error, if any.
	Error string `json:"error,omitempty"`
}

// errorKind classifies a check error for AssertVerdict.ErrorKind.
func errorKind(err error) string {
	var be *refine.BudgetError
	if errors.As(err, &be) {
		return "budget:" + be.Phase
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return "canceled"
	}
	return "error"
}

// retryAfter is the hint returned with 429/503 responses: long enough
// that a backlogged server is not hammered, short enough that a burst
// drains promptly.
const retryAfter = 1 * time.Second
