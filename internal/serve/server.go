package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cspm"
	"repro/internal/fdr"
	"repro/internal/lts"
	"repro/internal/obs"
)

// Config tunes the server. The zero value is usable: every field has a
// production-safe default applied by New.
type Config struct {
	// Workers is the number of checks that may run concurrently; 0
	// means GOMAXPROCS.
	Workers int
	// MaxQueue is how many admitted-but-waiting requests may queue for
	// a worker slot before new work is rejected with 429; 0 means 64.
	MaxQueue int
	// MaxBodyBytes caps the request body (the CSPm model); 0 means
	// 1 MiB. Oversized bodies are rejected with 413.
	MaxBodyBytes int64
	// MaxStates / MaxProductStates / MaxSteps cap the per-request
	// budgets; requests may tighten them, never exceed them. Zero
	// MaxStates means lts.DefaultMaxStates; zero MaxProductStates /
	// MaxSteps mean 4 * MaxStates, so a single pathological product
	// search cannot hold a worker hostage.
	MaxStates        int
	MaxProductStates int
	MaxSteps         int
	// MaxDuration caps the wall-clock time of one check request; 0
	// means 30s.
	MaxDuration time.Duration
	// ExploreWorkers is the lts exploration parallelism per check; 0
	// means 1 — request-level parallelism is the server's concern, so
	// one check keeps to one core by default.
	ExploreWorkers int
	// CacheEntries / CacheStates bound the shared model store (see
	// lts.Cache.MaxEntries / MaxStates); 0 CacheStates means
	// 8 * MaxStates, so the store holds a handful of full-size models
	// and degrades by LRU eviction instead of OOMing. CacheEntries 0
	// means entry count is bounded by CacheStates alone.
	CacheEntries int
	CacheStates  int
	// DataDir, when non-empty, makes jobs durable: job records persist
	// under DataDir/jobs with atomic writes, job explorations checkpoint
	// under per-assertion directories, and a server rebuilt over the same
	// DataDir after a crash re-enqueues unfinished jobs and resumes them.
	// Empty means jobs live in memory only and die with the process.
	DataDir string
	// SoftMemBytes, when > 0, spills each exploration's visited index to
	// disk once it crosses the watermark (see statestore.SpillConfig);
	// 0 keeps everything in RAM.
	SoftMemBytes int64
	// MaxMemBytes is a hard per-exploration resident-memory watermark;
	// past it a check degrades to a structured "budget:memory" verdict
	// instead of growing without bound. 0 means unbounded.
	MaxMemBytes int64
	// CheckpointEveryLevels is the exploration snapshot cadence in BFS
	// levels for durable jobs; <= 0 means every level.
	CheckpointEveryLevels int
	// Obs receives the server's metrics, exposed at /metrics; nil gets
	// a fresh enabled Observer (a server without metrics is blind).
	Obs *obs.Observer
	// EnableChaos honours the X-Chaos-Panic request header by panicking
	// inside the worker path — the hook the serveload harness uses to
	// prove panic isolation. Never enable it on a real deployment.
	EnableChaos bool
}

// Server is the checking service. Construct with New, mount Handler on
// an http.Server, and call Drain on shutdown.
type Server struct {
	cfg   Config
	obs   *obs.Observer
	cache *lts.Cache
	mux   *http.ServeMux

	sem      chan struct{}
	waiting  atomic.Int64
	inflight atomic.Int64
	draining atomic.Bool
	drainCh  chan struct{}
	wg       sync.WaitGroup

	// baseCtx is the server's lifetime: jobs run under it rather than
	// under the submitting request, and Kill cancels it.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	jobsMu     sync.Mutex
	jobs       map[string]*job
	jobQueue   chan *job
	jobWg      sync.WaitGroup
}

// New builds a Server, applying Config defaults.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = lts.DefaultMaxStates
	}
	if cfg.MaxProductStates <= 0 {
		cfg.MaxProductStates = 4 * cfg.MaxStates
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 4 * cfg.MaxStates
	}
	if cfg.MaxDuration <= 0 {
		cfg.MaxDuration = 30 * time.Second
	}
	if cfg.ExploreWorkers <= 0 {
		cfg.ExploreWorkers = 1
	}
	if cfg.CacheStates <= 0 {
		cfg.CacheStates = 8 * cfg.MaxStates
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	s := &Server{
		cfg:      cfg,
		obs:      cfg.Obs,
		cache:    lts.NewCache(),
		mux:      http.NewServeMux(),
		sem:      make(chan struct{}, cfg.Workers),
		drainCh:  make(chan struct{}),
		jobs:     make(map[string]*job),
		jobQueue: make(chan *job, 4*(cfg.Workers+cfg.MaxQueue)),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if cfg.DataDir != "" {
		// Best-effort: a spill dir that cannot be created degrades each
		// exploration to its in-memory store, it does not fail checks.
		_ = os.MkdirAll(filepath.Join(cfg.DataDir, "spill"), 0o755)
	}
	s.cache.Obs = s.obs
	s.cache.MaxEntries = cfg.CacheEntries
	s.cache.MaxStates = cfg.CacheStates
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/check", s.handleCheck)
	s.mux.HandleFunc("/v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("/v1/jobs/", s.handleJobGet)
	pending := s.recoverJobs()
	s.jobWg.Add(1)
	go s.dispatch()
	if len(pending) > 0 {
		s.jobWg.Add(1)
		go s.enqueueRecovered(pending)
	}
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the shared model store (for tests and stats).
func (s *Server) Cache() *lts.Cache { return s.cache }

// Workers reports the resolved worker-slot count.
func (s *Server) Workers() int { return s.cfg.Workers }

// Drain initiates graceful shutdown: readiness flips to 503, queued
// waiters and new requests are rejected, and Drain blocks until every
// in-flight check has finished or ctx expires. It is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		<-s.drainCh // already draining; fall through to the wait
	} else {
		close(s.drainCh)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// wg.Wait panics only on counter misuse, but a drain helper must
		// never take the daemon down: report the drain as done (the
		// deferred close still runs) and let the caller's timeout govern.
		defer func() { _ = recover() }()
		s.wg.Wait()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain: %d check(s) still in flight: %w", s.inflight.Load(), ctx.Err())
	}
}

// Draining reports whether shutdown has been initiated.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// Liveness: the process is up and serving. Stays 200 while
	// draining — a draining server is alive, just not ready.
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Mirror the cache and admission state into gauges so one snapshot
	// carries the whole picture.
	cs := s.cache.StatsAll()
	s.obs.Gauge("serve.cache.entries").Set(int64(cs.Entries))
	s.obs.Gauge("serve.cache.states").Set(cs.States)
	s.obs.Gauge("serve.inflight").Set(s.inflight.Load())
	s.obs.Gauge("serve.queue").Set(s.waiting.Load())
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.obs.Snapshot().WriteText(w)
}

// writeJSON sends a structured JSON response; encode errors are
// ignored (the client is gone or broken, and the verdict is lost with
// the connection either way).
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// reject sends a structured error with an optional Retry-After hint.
func (s *Server) reject(w http.ResponseWriter, status int, hint bool, msg string) {
	if hint {
		w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)))
	}
	writeJSON(w, status, CheckResponse{Error: msg})
}

// admit acquires a worker slot, queueing up to cfg.MaxQueue waiters.
// It returns the release function on success, or an HTTP status to
// reject with. Admission never blocks past the request context or a
// drain: overload turns into a prompt 429, not a pile of stuck
// connections.
func (s *Server) admit(ctx context.Context) (release func(), status int) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0
	default:
	}
	if s.waiting.Add(1) > int64(s.cfg.MaxQueue) {
		s.waiting.Add(-1)
		return nil, http.StatusTooManyRequests
	}
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0
	case <-ctx.Done():
		return nil, 499 // client gone; nobody reads the response
	case <-s.drainCh:
		return nil, http.StatusServiceUnavailable
	}
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter("serve.requests").Inc()
	if r.Method != http.MethodPost {
		s.reject(w, http.StatusMethodNotAllowed, false, "POST required")
		return
	}
	if s.draining.Load() {
		s.obs.Counter("serve.rejected.draining").Inc()
		s.reject(w, http.StatusServiceUnavailable, true, "draining")
		return
	}

	// Parse before admission: malformed and oversized requests must be
	// rejected cheaply without consuming a worker slot.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req CheckRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.obs.Counter("serve.rejected.oversized").Inc()
			s.reject(w, http.StatusRequestEntityTooLarge, false,
				fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		s.obs.Counter("serve.rejected.malformed").Inc()
		s.reject(w, http.StatusBadRequest, false, "malformed request: "+err.Error())
		return
	}
	if req.CSPM == "" {
		s.obs.Counter("serve.rejected.malformed").Inc()
		s.reject(w, http.StatusBadRequest, false, "empty cspm")
		return
	}

	release, status := s.admit(r.Context())
	if release == nil {
		switch status {
		case http.StatusTooManyRequests:
			s.obs.Counter("serve.rejected.overload").Inc()
			s.reject(w, status, true, "overloaded: queue full")
		case http.StatusServiceUnavailable:
			s.obs.Counter("serve.rejected.draining").Inc()
			s.reject(w, status, true, "draining")
		default:
			s.obs.Counter("serve.canceled").Inc()
		}
		return
	}
	defer release()

	// The admission slot is now held: register as in-flight, then
	// re-check the drain gate. The order matters — a drain that began
	// after the first check either sees this request's wg registration
	// (and waits for it) or this re-check sees the drain (and bails), so
	// no check can slip past a completed Drain.
	s.wg.Add(1)
	defer s.wg.Done()
	if s.draining.Load() {
		s.obs.Counter("serve.rejected.draining").Inc()
		s.reject(w, http.StatusServiceUnavailable, true, "draining")
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	s.obs.Counter("serve.accepted").Inc()

	start := time.Now()
	resp, status := s.runRequest(r, &req)
	s.obs.Histogram("serve.check.ns").ObserveSince(start)
	if r.Context().Err() != nil {
		// Client went away mid-check; the write below is best-effort
		// and the cancellation already freed the check core.
		s.obs.Counter("serve.canceled").Inc()
	}
	writeJSON(w, status, resp)
}

// runRequest is the synchronous /v1/check path: the check runs under
// the request's own context, with no durability.
func (s *Server) runRequest(r *http.Request, req *CheckRequest) (CheckResponse, int) {
	chaos := s.cfg.EnableChaos && r.Header.Get("X-Chaos-Panic") != ""
	return s.runCheck(r.Context(), req, chaos, "")
}

// runCheck loads the model and checks every assertion under the
// request budget, with panic isolation: a panic anywhere inside —
// parser, evaluator, exploration, product search — is recovered into a
// structured 500 response and the process survives. A non-empty
// ckptRoot makes each assertion's explorations checkpoint under its own
// subdirectory, so a re-run (a recovered job) resumes instead of
// restarting. The wall-clock budget is per run: a resumed job gets a
// fresh timer but inherits the explored levels, so crash loops converge
// instead of starving.
func (s *Server) runCheck(ctx context.Context, req *CheckRequest, chaosPanic bool, ckptRoot string) (resp CheckResponse, status int) {
	status = http.StatusOK
	defer func() {
		if rec := recover(); rec != nil {
			s.obs.Counter("serve.panics").Inc()
			resp = CheckResponse{Error: fmt.Sprintf("internal: check panicked: %v", rec)}
			status = http.StatusInternalServerError
		}
	}()
	if chaosPanic {
		panic("chaos: injected handler panic")
	}

	model, err := cspm.Load(req.CSPM)
	if err != nil {
		s.obs.Counter("serve.rejected.malformed").Inc()
		return CheckResponse{Error: "cspm: " + err.Error()}, http.StatusBadRequest
	}

	bgt := s.budgetFor(req.Budget)
	cctx, cancel := context.WithTimeout(ctx, bgt.MaxDuration)
	defer cancel()
	bgt.Ctx = cctx

	results := make([]AssertVerdict, 0, len(model.Asserts))
	for i, a := range model.Asserts {
		if ckptRoot != "" {
			bgt.CheckpointDir = filepath.Join(ckptRoot, fmt.Sprintf("a%03d", i))
		}
		results = append(results, s.runAssert(model, a, bgt))
		if cctx.Err() != nil && len(results) < len(model.Asserts) {
			// The request is dead; stamp the remaining assertions as
			// canceled rather than burning the worker on them.
			for _, rest := range model.Asserts[len(results):] {
				results = append(results, AssertVerdict{
					Assert:    rest.Text,
					Error:     "canceled before start: " + cctx.Err().Error(),
					ErrorKind: "canceled",
				})
			}
			break
		}
	}
	s.obs.Counter("serve.completed").Inc()
	return CheckResponse{Results: results}, http.StatusOK
}

// budgetFor clamps the requested budgets to the server caps.
func (s *Server) budgetFor(spec *BudgetSpec) fdr.Budget {
	bgt := fdr.Budget{
		MaxStates:        s.cfg.MaxStates,
		MaxProductStates: s.cfg.MaxProductStates,
		MaxSteps:         s.cfg.MaxSteps,
		MaxDuration:      s.cfg.MaxDuration,
		Workers:          s.cfg.ExploreWorkers,
		Cache:            s.cache,
		Obs:              s.obs,

		SoftMemBytes:          s.cfg.SoftMemBytes,
		MaxMemBytes:           s.cfg.MaxMemBytes,
		CheckpointEveryLevels: s.cfg.CheckpointEveryLevels,
	}
	if s.cfg.DataDir != "" {
		bgt.SpillDir = filepath.Join(s.cfg.DataDir, "spill")
	}
	if spec == nil {
		return bgt
	}
	clamp := func(req, cap int) int {
		if req > 0 && req < cap {
			return req
		}
		return cap
	}
	bgt.MaxStates = clamp(spec.MaxStates, bgt.MaxStates)
	bgt.MaxProductStates = clamp(spec.MaxProductStates, bgt.MaxProductStates)
	bgt.MaxSteps = clamp(spec.MaxSteps, bgt.MaxSteps)
	if d := time.Duration(spec.MaxDurationMs) * time.Millisecond; d > 0 && d < bgt.MaxDuration {
		bgt.MaxDuration = d
	}
	return bgt
}

// runAssert checks one assertion, isolating panics to this assertion:
// the rest of the request still gets verdicts.
func (s *Server) runAssert(model *cspm.Model, a cspm.ResolvedAssert, bgt fdr.Budget) (v AssertVerdict) {
	v = AssertVerdict{Assert: a.Text}
	defer func() {
		if rec := recover(); rec != nil {
			s.obs.Counter("serve.panics").Inc()
			v.Error = fmt.Sprintf("panic: %v", rec)
			v.ErrorKind = "panic"
		}
	}()
	res, err := fdr.RunAssertBudget(model, a, bgt)
	if err != nil {
		v.Error = err.Error()
		v.ErrorKind = errorKind(err)
		return v
	}
	v.Holds = res.Holds
	v.Reason = res.Reason
	v.ImplStates = res.ImplStates
	v.SpecNodes = res.SpecNodes
	v.ProductStates = res.ProductStates
	for _, ev := range res.Counterexample {
		v.Counterexample = append(v.Counterexample, ev.String())
	}
	return v
}
