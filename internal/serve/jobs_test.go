package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/leakcheck"
)

func postJob(t *testing.T, base string, req CheckRequest) (int, *JobStatus) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode job status: %v", err)
	}
	return resp.StatusCode, &st
}

func getJob(t *testing.T, base, id string) (int, *JobStatus) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /v1/jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode job status: %v", err)
	}
	return resp.StatusCode, &st
}

// waitJobDone polls until the job reports done or the deadline passes.
func waitJobDone(t *testing.T, base, id string, timeout time.Duration) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		code, st := getJob(t, base, id)
		if code == http.StatusOK && st.State == JobDone {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never completed within %v", id, timeout)
	return nil
}

// TestJobsMatchSyncVerdicts submits the same model both synchronously
// and as a job; the verdicts must agree, and resubmission must dedup to
// the same job instead of re-running it.
func TestJobsMatchSyncVerdicts(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Workers: 2})
	req := CheckRequest{CSPM: tinyModel}

	_, syncResp := postCheck(t, context.Background(), ts.URL, req, nil)
	if syncResp.Error != "" {
		t.Fatalf("sync check error: %s", syncResp.Error)
	}

	code, st := postJob(t, ts.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	if st.ID == "" || st.State != JobPending {
		t.Fatalf("submit status = %+v", st)
	}
	done := waitJobDone(t, ts.URL, st.ID, 10*time.Second)
	if done.Response == nil {
		t.Fatal("done job carries no response")
	}
	if !reflect.DeepEqual(done.Response.Results, syncResp.Results) {
		t.Fatalf("job verdicts differ from sync check:\njob:  %+v\nsync: %+v",
			done.Response.Results, syncResp.Results)
	}

	// Resubmission of the identical request is idempotent: 200, same id,
	// already done.
	code, again := postJob(t, ts.URL, req)
	if code != http.StatusOK || again.ID != st.ID || again.State != JobDone {
		t.Fatalf("resubmit = %d %+v, want 200 done %s", code, again, st.ID)
	}

	if _, bad := getJob(t, ts.URL, "no-such-job"); bad.State == JobDone {
		t.Fatal("unknown job reported done")
	}
}

// TestJobsSurviveKill is the in-process half of the crash acceptance
// criterion: a server killed mid-job leaves the job pending on disk,
// and a new server over the same DataDir resumes and finishes it with
// verdicts identical to an undisturbed baseline — including the job
// that was still queued and the one already done.
func TestJobsSurviveKill(t *testing.T) {
	leakcheck.Check(t)
	dataDir := t.TempDir()
	cfg := Config{
		Workers:               1,
		DataDir:               dataDir,
		CheckpointEveryLevels: 1,
	}

	// Baseline verdicts from a plain sync server.
	_, baseTS := newTestServer(t, Config{Workers: 1})
	reqs := []CheckRequest{
		{CSPM: tinyModel},
		{CSPM: heavySource(7001, 10)},
		{CSPM: heavySource(7002, 10)},
	}
	want := make([]*CheckResponse, len(reqs))
	for i, r := range reqs {
		_, want[i] = postCheck(t, context.Background(), baseTS.URL, r, nil)
		if want[i].Error != "" {
			t.Fatalf("baseline %d: %s", i, want[i].Error)
		}
	}

	// First life: submit everything, let the first job land, then kill
	// the server with the heavy jobs in flight or queued.
	srv1, ts1 := newTestServer(t, cfg)
	ids := make([]string, len(reqs))
	for i, r := range reqs {
		code, st := postJob(t, ts1.URL, r)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, code)
		}
		ids[i] = st.ID
	}
	waitJobDone(t, ts1.URL, ids[0], 10*time.Second)
	srv1.Kill()
	ts1.Close()
	_ = srv1

	// Second life over the same DataDir: recovery must re-enqueue the
	// unfinished jobs and every verdict must match the baseline.
	_, ts2 := newTestServer(t, cfg)
	for i, id := range ids {
		st := waitJobDone(t, ts2.URL, id, 30*time.Second)
		if st.Response == nil {
			t.Fatalf("job %d: done without response", i)
		}
		if !reflect.DeepEqual(st.Response.Results, want[i].Results) {
			t.Fatalf("job %d: post-crash verdicts differ:\ngot:  %+v\nwant: %+v",
				i, st.Response.Results, want[i].Results)
		}
	}
}

// TestJobsSpillAndMemoryWatermarks runs a job under an immediate spill
// watermark (verdict must not change) and a sync check under a 1-byte
// hard watermark (must degrade to a structured budget:memory verdict).
func TestJobsSpillAndMemoryWatermarks(t *testing.T) {
	leakcheck.Check(t)

	_, plainTS := newTestServer(t, Config{Workers: 1})
	req := CheckRequest{CSPM: tinyModel}
	_, want := postCheck(t, context.Background(), plainTS.URL, req, nil)

	_, spillTS := newTestServer(t, Config{
		Workers:      1,
		DataDir:      t.TempDir(),
		SoftMemBytes: 1,
	})
	code, st := postJob(t, spillTS.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	done := waitJobDone(t, spillTS.URL, st.ID, 10*time.Second)
	if !reflect.DeepEqual(done.Response.Results, want.Results) {
		t.Fatalf("spill-mode verdicts differ:\ngot:  %+v\nwant: %+v",
			done.Response.Results, want.Results)
	}

	_, hardTS := newTestServer(t, Config{Workers: 1, MaxMemBytes: 1})
	status, resp := postCheck(t, context.Background(), hardTS.URL, req, nil)
	if status != http.StatusOK {
		t.Fatalf("hard-watermark check = %d, want 200 with typed verdicts", status)
	}
	for _, v := range resp.Results {
		if v.ErrorKind != "budget:memory" {
			t.Fatalf("verdict %+v: ErrorKind = %q, want budget:memory", v, v.ErrorKind)
		}
	}
}
