package fdr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cspm"
	"repro/internal/leakcheck"
	"repro/internal/lts"
)

// campaignScript builds a model whose assertions each explore 2^k
// states — big enough that a whole campaign takes real time and can be
// cancelled partway through.
func campaignScript(t *testing.T, k, asserts int) *cspm.Model {
	t.Helper()
	var b strings.Builder
	b.WriteString("channel h, t\n")
	b.WriteString("P = h -> t -> P\n")
	b.WriteString("SYS = ")
	for i := 0; i < k; i++ {
		if i > 0 {
			b.WriteString(" ||| ")
		}
		b.WriteString("P")
	}
	b.WriteString("\n")
	for i := 0; i < asserts; i++ {
		b.WriteString("assert SYS :[deadlock free]\n")
	}
	m, err := cspm.Load(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunAllBudgetPreCancelled(t *testing.T) {
	leakcheck.Check(t)
	m := campaignScript(t, 4, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunAllBudget(m, Budget{Ctx: ctx})
	if err == nil {
		t.Fatal("cancelled campaign succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunAllBudgetCancelMidCampaign cancels while a multi-assertion
// campaign is in flight: the run must stop at the in-flight assertion
// with an error naming it, rather than finishing the sweep.
func TestRunAllBudgetCancelMidCampaign(t *testing.T) {
	leakcheck.Check(t)
	m := campaignScript(t, 14, 6)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunAllBudget(m, Budget{Ctx: ctx, Cache: lts.NewCache(), MaxStates: 1 << 20})
	if err == nil {
		t.Skip("campaign completed before the deadline fired")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "assertion") {
		t.Errorf("campaign error does not name the assertion: %v", err)
	}
	// Cooperative abort must be prompt: well under what the remaining
	// assertions would have cost.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancelled campaign still ran %v", elapsed)
	}
}

// TestRunAllBudgetCancelDoesNotPoisonCache pins the retry path at
// campaign level: after a cancelled run, rerunning with the same shared
// cache must recompute the aborted exploration and produce the same
// results as a fresh-cache run.
func TestRunAllBudgetCancelDoesNotPoisonCache(t *testing.T) {
	leakcheck.Check(t)
	m := campaignScript(t, 12, 2)
	shared := lts.NewCache()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	_, err := RunAllBudget(m, Budget{Ctx: ctx, Cache: shared, MaxStates: 1 << 20})
	cancel()
	if err == nil {
		t.Skip("campaign completed before the deadline fired")
	}
	got, err := RunAllBudget(m, Budget{Cache: shared, MaxStates: 1 << 20})
	if err != nil {
		t.Fatalf("retry on the shared cache failed: %v", err)
	}
	want, err := RunAllBudget(m, Budget{Cache: lts.NewCache(), MaxStates: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("result counts diverge: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if fmt.Sprintf("%+v", got[i].Result) != fmt.Sprintf("%+v", want[i].Result) {
			t.Errorf("assertion %d diverges after cancelled warm-up:\n%+v\n%+v",
				i, got[i].Result, want[i].Result)
		}
	}
}
