// Package fdr runs the assertions of an evaluated CSPm script through
// the refinement checker — the "FDR" step of the paper's workflow
// (Figure 1). It is the library behind the fdrlite command.
package fdr

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cspm"
	"repro/internal/lts"
	"repro/internal/obs"
	"repro/internal/refine"
)

// AssertResult pairs an assertion with its check outcome.
type AssertResult struct {
	Assert cspm.ResolvedAssert
	Result refine.Result
}

// String renders the result in FDR-like pass/fail form.
func (r AssertResult) String() string {
	status := "✔ passed"
	if !r.Result.Holds {
		status = "✘ FAILED"
		if len(r.Result.Counterexample) > 0 || r.Result.Reason != "" {
			status += fmt.Sprintf(" — %s %s", r.Result.Counterexample, r.Result.Reason)
		}
	}
	return fmt.Sprintf("%s: %s", r.Assert.Text, status)
}

// Budget carries the checker resource limits for campaign-scale runs;
// zero fields mean the package defaults (MaxStates) or unbounded
// (MaxProductStates, MaxSteps).
type Budget struct {
	// MaxStates bounds each LTS exploration.
	MaxStates int
	// MaxProductStates bounds the (impl, spec) pairs a refinement visits.
	MaxProductStates int
	// MaxSteps bounds the transitions examined during the product search.
	MaxSteps int
	// MaxDuration bounds the wall-clock time of one assertion check;
	// zero means unbounded. Exceeding it yields a *refine.BudgetError
	// with a "-deadline" phase.
	MaxDuration time.Duration
	// Workers is the exploration parallelism (0: GOMAXPROCS, 1:
	// sequential). Verdicts and counterexamples are identical at any
	// worker count.
	Workers int
	// Cache, when non-nil, shares explored LTSs and normalisations
	// across assertions and across checkers — campaign runs should pass
	// one cache for the whole campaign so each distinct spec/impl term
	// is explored exactly once.
	Cache *lts.Cache
	// Obs receives a span per assertion (fdr.assert, carrying the
	// assertion text and verdict) plus the checker's and explorer's own
	// instrumentation. nil disables it.
	Obs *obs.Observer
	// Ctx, when non-nil, cooperatively cancels the checks: a cancelled
	// context aborts the in-flight exploration or product search
	// mid-BFS-level with an error matching context.Canceled /
	// context.DeadlineExceeded under errors.Is. nil (the default) means
	// no cancellation.
	Ctx context.Context
	// CheckpointDir, when non-empty, makes the check crash-safe: the
	// explorations write atomic level-granular snapshots under it and a
	// re-run over the same directory resumes from them with a
	// byte-identical verdict. Callers checking several assertions should
	// pass a distinct directory per assertion.
	CheckpointDir string
	// CheckpointEveryLevels is the snapshot cadence in completed BFS
	// levels; <= 0 means every level.
	CheckpointEveryLevels int
	// SoftMemBytes, when > 0, spills each exploration's visited index to
	// disk past the watermark instead of holding it in RAM.
	SoftMemBytes int64
	// SpillDir is where spill shards live; empty means os.TempDir().
	SpillDir string
	// MaxMemBytes is a hard per-exploration resident-memory watermark;
	// exceeding it yields a *refine.BudgetError with phase "memory". 0
	// means unbounded.
	MaxMemBytes int64
}

// RunAssert checks a single resolved assertion.
func RunAssert(m *cspm.Model, a cspm.ResolvedAssert, maxStates int) (refine.Result, error) {
	return RunAssertBudget(m, a, Budget{MaxStates: maxStates})
}

// RunAssertBudget checks a single resolved assertion under explicit
// resource budgets. Exhausting a budget returns a *refine.BudgetError
// (via errors.As) carrying the partial exploration size.
func RunAssertBudget(m *cspm.Model, a cspm.ResolvedAssert, bgt Budget) (res refine.Result, err error) {
	span := bgt.Obs.StartSpan("fdr.assert", obs.String("assert", a.Text))
	defer func() {
		bgt.Obs.Counter("fdr.asserts").Inc()
		verdict := "passed"
		switch {
		case err != nil:
			verdict = "error"
		case !res.Holds:
			verdict = "failed"
		}
		span.End(obs.String("verdict", verdict))
	}()
	c := refine.NewChecker(m.Env, m.Ctx)
	c.MaxStates = bgt.MaxStates
	c.MaxProductStates = bgt.MaxProductStates
	c.MaxSteps = bgt.MaxSteps
	c.MaxDuration = bgt.MaxDuration
	c.Workers = bgt.Workers
	c.Cache = bgt.Cache
	c.Obs = bgt.Obs
	c.Ctx = bgt.Ctx
	c.CheckpointDir = bgt.CheckpointDir
	c.CheckpointEveryLevels = bgt.CheckpointEveryLevels
	c.SoftMemBytes = bgt.SoftMemBytes
	c.SpillDir = bgt.SpillDir
	c.MaxMemBytes = bgt.MaxMemBytes
	switch a.Kind {
	case cspm.AssertTraceRef:
		return c.RefinesTraces(a.Spec, a.Impl)
	case cspm.AssertFailRef:
		return c.RefinesFailures(a.Spec, a.Impl)
	case cspm.AssertFDRef:
		return c.RefinesFD(a.Spec, a.Impl)
	case cspm.AssertDeadlockFree:
		return c.DeadlockFree(a.Impl)
	case cspm.AssertDivergenceFree:
		return c.DivergenceFree(a.Impl)
	}
	return refine.Result{}, fmt.Errorf("unknown assertion kind %v", a.Kind)
}

// RunAll checks every assertion of the model in order. The assertions
// share one LTS cache, so a process term referenced by several
// assertions (the usual shape: one SYSTEM against many specs) is
// explored once.
func RunAll(m *cspm.Model, maxStates int) ([]AssertResult, error) {
	return RunAllBudget(m, Budget{MaxStates: maxStates})
}

// RunAllBudget checks every assertion of the model in order under the
// given budgets. When the budget carries no cache, a fresh one is
// created for the run so assertions still share explorations.
func RunAllBudget(m *cspm.Model, bgt Budget) ([]AssertResult, error) {
	if bgt.Cache == nil {
		bgt.Cache = lts.NewCache()
		bgt.Cache.Obs = bgt.Obs
	}
	out := make([]AssertResult, 0, len(m.Asserts))
	for _, a := range m.Asserts {
		res, err := RunAssertBudget(m, a, bgt)
		if err != nil {
			return nil, fmt.Errorf("assertion %q: %w", a.Text, err)
		}
		out = append(out, AssertResult{Assert: a, Result: res})
	}
	return out, nil
}
