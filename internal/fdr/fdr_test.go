package fdr

import (
	"strings"
	"testing"

	"repro/internal/cspm"
)

const script = `
channel a, b
SPEC = a -> SPEC
GOOD = a -> GOOD
BAD = a -> b -> BAD
DET = a -> DET [] b -> DET
NDET = a -> NDET |~| b -> NDET

assert SPEC [T= GOOD
assert SPEC [T= BAD
assert DET [F= NDET
assert GOOD :[deadlock free]
assert STOP :[deadlock free]
assert GOOD :[divergence free]
`

func load(t *testing.T) *cspm.Model {
	t.Helper()
	m, err := cspm.Load(script)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunAllOutcomes(t *testing.T) {
	m := load(t)
	results, err := RunAll(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, false, true, false, true}
	if len(results) != len(want) {
		t.Fatalf("results = %d, want %d", len(results), len(want))
	}
	for i, w := range want {
		if results[i].Result.Holds != w {
			t.Errorf("assertion %d (%s): holds=%v, want %v",
				i, results[i].Assert.Text, results[i].Result.Holds, w)
		}
	}
}

func TestRunAssertKinds(t *testing.T) {
	m := load(t)
	// The failures assertion must fail while the same processes
	// trace-refine each other.
	res, err := RunAssert(m, m.Asserts[2], 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("DET [F= NDET should fail")
	}
	traceVersion := m.Asserts[2]
	traceVersion.Kind = cspm.AssertTraceRef
	res, err = RunAssert(m, traceVersion, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Error("DET [T= NDET should hold")
	}
}

func TestResultString(t *testing.T) {
	m := load(t)
	results, err := RunAll(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(results[0].String(), "passed") {
		t.Errorf("pass rendering: %s", results[0])
	}
	failed := results[1].String()
	if !strings.Contains(failed, "FAILED") || !strings.Contains(failed, "b") {
		t.Errorf("failure rendering: %s", failed)
	}
}

func TestRunAssertUnknownKind(t *testing.T) {
	m := load(t)
	bogus := m.Asserts[0]
	bogus.Kind = 0
	if _, err := RunAssert(m, bogus, 0); err == nil {
		t.Error("unknown assertion kind accepted")
	}
}
