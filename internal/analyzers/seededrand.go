package analyzers

import (
	"go/ast"
	"strconv"
	"strings"
)

// SeededRand enforces reproducibility in the stochastic subsystems:
// conformance soaks and fault-injection campaigns must replay exactly
// from a recorded seed (the shrinking loop and CI triage depend on it),
// so drawing from the implicitly seeded global math/rand source is
// forbidden there. Constructing an explicit source with
// rand.New(rand.NewSource(seed)) remains allowed.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "conformance and fault-campaign randomness must be reproducible " +
		"from a recorded seed; use rand.New(rand.NewSource(seed)) instead " +
		"of the global math/rand functions.",
	AppliesTo: func(pkgDir string) bool {
		return strings.HasPrefix(pkgDir, "internal/conformance") ||
			strings.HasPrefix(pkgDir, "internal/faultcampaign") ||
			// The chaos soak's request schedule must replay from its -seed
			// flag for CI triage, same as the campaign engines.
			pkgDir == "cmd/serveload"
	},
	// Test files draw schedules too; a flaky test that cannot be
	// replayed is exactly the failure mode this pass exists to prevent.
	IncludeTests: true,
	Run:          runSeededRand,
}

// globalRandFuncs are the package-level math/rand functions that draw
// from (or mutate) the shared global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
}

func runSeededRand(p *Pass) {
	for _, f := range p.Files {
		pkgName, ok := mathRandName(f)
		if !ok {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != pkgName || !globalRandFuncs[sel.Sel.Name] {
				return true
			}
			p.Reportf(call.Pos(),
				"%s.%s draws from the implicitly seeded global source; use a rand.New(rand.NewSource(seed)) instance so runs replay from a recorded seed",
				pkgName, sel.Sel.Name)
			return true
		})
	}
}

// mathRandName returns the local name under which the file imports
// math/rand, and whether it imports it at all. Dot and blank imports
// are ignored (a dot import of math/rand does not occur in this repo).
func mathRandName(f *ast.File) (string, bool) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != "math/rand" {
			continue
		}
		if imp.Name == nil {
			return "rand", true
		}
		if imp.Name.Name == "_" || imp.Name.Name == "." {
			return "", false
		}
		return imp.Name.Name, true
	}
	return "", false
}
