package analyzers

import (
	"go/ast"
	"strings"
)

// MustRecover enforces the repo's panic-boundary convention in command
// binaries: the Must* construction helpers (csp.MustDefine,
// csp.MustChannel, st.MustRender, ...) panic with a typed error that is
// only converted back into an ordinary error by a deferred Recover*
// helper (csp.RecoverBuild, st.RecoverRender). A cmd/ function that
// calls Must* without such a boundary anywhere on the synchronous call
// path turns a model-build failure into a bare stack trace for the
// user, so every Must* call site there must be guarded.
var MustRecover = &Analyzer{
	Name: "mustrecover",
	Doc: "Must* construction helpers panic with a typed error; in cmd/ " +
		"binaries every function calling one must install a deferred " +
		"Recover* boundary (e.g. `defer csp.RecoverBuild(&err)`) so a " +
		"failed model build exits as an error, not a stack trace.",
	AppliesTo: func(pkgDir string) bool {
		return pkgDir == "cmd" || strings.HasPrefix(pkgDir, "cmd/")
	},
	Run: runMustRecover,
}

func runMustRecover(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMustScope(p, fn.Body, hasRecoverDefer(fn.Body))
		}
	}
}

// checkMustScope walks one function body. A nested function literal is
// a new scope that inherits the guard: a panic raised inside it still
// unwinds through the enclosing (synchronous) caller's defers.
func checkMustScope(p *Pass, body *ast.BlockStmt, guarded bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			checkMustScope(p, x.Body, guarded || hasRecoverDefer(x.Body))
			return false
		case *ast.CallExpr:
			name := calleeName(x.Fun)
			if strings.HasPrefix(name, "Must") && !guarded {
				p.Reportf(x.Pos(),
					"%s call is not guarded by a deferred Recover* boundary in this function", name)
			}
		}
		return true
	})
}

// hasRecoverDefer reports whether the body directly installs a recovery
// boundary: either `defer <pkg>.Recover*(...)` or a deferred function
// literal that calls recover().
func hasRecoverDefer(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		d, ok := s.(*ast.DeferStmt)
		if !ok {
			continue
		}
		if strings.HasPrefix(calleeName(d.Call.Fun), "Recover") {
			return true
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok && callsRecover(lit.Body) {
			return true
		}
	}
	return false
}

func callsRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "recover" {
				found = true
			}
		}
		return !found
	})
	return found
}

// calleeName extracts the bare function or method name of a call
// target: `Must`, `csp.MustChannel` and `g.MustRender` all resolve to
// their final identifier.
func calleeName(fun ast.Expr) string {
	switch x := fun.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}
