package analyzers

import (
	"strings"
	"testing"
)

func TestCloseCheckFlagsBareClose(t *testing.T) {
	src := `package statestore
import "os"
func write(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	f.Sync()
	f.Close()
	return nil
}`
	diags := runOn(t, CloseCheck, "internal/statestore", src, false)
	if len(diags) != 2 {
		t.Fatalf("diags = %v, want bare Sync and Close flagged", diags)
	}
	if !strings.Contains(diags[0].Msg, "f.Sync()") || !strings.Contains(diags[1].Msg, "f.Close()") {
		t.Fatalf("diags = %v, want Sync then Close findings", diags)
	}
}

func TestCloseCheckFlagsDeferredClose(t *testing.T) {
	src := `package lts
import "os"
func checkpoint(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write([]byte("snapshot"))
	return err
}`
	diags := runOn(t, CloseCheck, "internal/lts", src, false)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "deferred") {
		t.Fatalf("diags = %v, want one deferred-Close finding", diags)
	}
}

func TestCloseCheckAcceptsCheckedAndExplicitDiscard(t *testing.T) {
	// The WriteFileAtomic shape: checked Close/Sync on the success path,
	// `_ =` discard on cleanup paths whose write error is already
	// reported — including inside a closure capturing the file.
	src := `package statestore
import "os"
func write(path string, data []byte) error {
	tmp, err := os.CreateTemp(".", "x-*")
	if err != nil {
		return err
	}
	cleanup := func() {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}`
	if diags := runOn(t, CloseCheck, "internal/statestore", src, false); len(diags) != 0 {
		t.Fatalf("compliant atomic-write shape flagged: %v", diags)
	}
}

func TestCloseCheckIgnoresReadOnlyFiles(t *testing.T) {
	// os.Open handles are read-only: a dropped Close error loses nothing
	// durable, and the repo closes them with plain defers everywhere.
	src := `package serve
import "os"
func read(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return buf, err
}`
	if diags := runOn(t, CloseCheck, "internal/serve", src, false); len(diags) != 0 {
		t.Fatalf("read-only handle flagged: %v", diags)
	}
}

func TestCloseCheckScope(t *testing.T) {
	// Outside the persistence packages a sloppy Close is not a recovery
	// hazard; the pass must stay quiet there.
	src := `package translate
import "os"
func dump(path string) {
	f, _ := os.Create(path)
	f.Close()
}`
	if diags := runOn(t, CloseCheck, "internal/translate", src, false); len(diags) != 0 {
		t.Fatalf("out-of-scope package flagged: %v", diags)
	}
	if diags := runOn(t, CloseCheck, "internal/obs", src, false); len(diags) != 1 {
		t.Fatalf("internal/obs not covered: %v", diags)
	}
}
