package analyzers

import (
	"go/ast"
	"strconv"
)

// CloseCheck enforces durable-write hygiene in the persistence paths:
// for a writable *os.File (os.Create / os.OpenFile / os.CreateTemp),
// the error from Close or Sync is the only notification the kernel
// gives that buffered bytes did not reach the disk. Checkpoints, spill
// shards and durable job records are exactly the files the resume paths
// trust after a SIGKILL, so silently discarding that error turns a
// failed write into a corrupt recovery. A bare `f.Close()` statement or
// `defer f.Close()` drops the error; `_ = f.Close()` is the explicit
// opt-out for cleanup paths where the write error has already been
// reported.
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc: "Close/Sync errors on writable *os.File values must be checked in " +
		"persistence packages: they are the only signal that a checkpoint, " +
		"spill shard or job record did not reach the disk. Discard " +
		"explicitly with `_ = f.Close()` only on cleanup paths whose write " +
		"error is already reported.",
	AppliesTo: func(pkgDir string) bool {
		switch pkgDir {
		case "internal/statestore", "internal/lts", "internal/serve",
			"internal/obs", "cmd/fdrserve":
			return true
		}
		return false
	},
	Run: runCloseCheck,
}

// writableOpenFuncs are the os package functions returning a *os.File
// opened for writing. os.Open is read-only and deliberately absent: a
// dropped Close error on a read handle loses nothing durable.
var writableOpenFuncs = map[string]bool{
	"Create": true, "CreateTemp": true, "OpenFile": true,
}

func runCloseCheck(p *Pass) {
	for _, f := range p.Files {
		osName, ok := osPkgName(f)
		if !ok {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCloseInBody(p, fn.Body, osName)
		}
	}
}

// checkCloseInBody runs the pass over one function body. The walk spans
// nested function literals too, so a file opened in the function and
// closed inside a closure (the cleanup-func idiom) is still tracked.
func checkCloseInBody(p *Pass, body *ast.BlockStmt, osName string) {
	files := writableFileIdents(body, osName)
	if len(files) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if name, meth, ok := closeOrSyncOn(s.X, files); ok {
				p.Reportf(s.Pos(),
					"error from %s.%s() on a writable file is silently discarded; check it, or make the discard explicit with `_ = %s.%s()`",
					name, meth, name, meth)
			}
		case *ast.DeferStmt:
			if name, meth, ok := closeOrSyncOn(s.Call, files); ok {
				p.Reportf(s.Pos(),
					"deferred %s.%s() drops the write error; check Close explicitly on the success path and use `defer func() { _ = %s.%s() }()` for cleanup",
					name, meth, name, meth)
			}
		}
		return true
	})
}

// writableFileIdents collects the names assigned from a writable os
// open call anywhere in the body (including inside nested literals).
// The pass is purely syntactic — no go/types — so tracking is by name
// within one top-level function; re-binding the name to something else
// later in the body is not modelled, which is acceptable for the short
// open-write-close functions the persistence packages contain.
func writableFileIdents(body *ast.BlockStmt, osName string) map[string]bool {
	files := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isWritableOpen(call, osName) {
				continue
			}
			// Either f, err := os.Create(...) (one call, two results) or a
			// parallel assignment; the file is the LHS slot matching the call.
			li := 0
			if len(as.Lhs) == len(as.Rhs) {
				li = i
			}
			if li >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[li].(*ast.Ident); ok && id.Name != "_" {
				files[id.Name] = true
			}
		}
		return true
	})
	return files
}

// isWritableOpen reports whether call is os.Create / os.CreateTemp /
// os.OpenFile under the file's local name for the os import.
func isWritableOpen(call *ast.CallExpr, osName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == osName && writableOpenFuncs[sel.Sel.Name]
}

// closeOrSyncOn reports whether expr is `f.Close()` or `f.Sync()` for a
// tracked file ident f, returning the ident and method names.
func closeOrSyncOn(expr ast.Expr, files map[string]bool) (name, meth string, ok bool) {
	call, isCall := expr.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || (sel.Sel.Name != "Close" && sel.Sel.Name != "Sync") {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent || !files[id.Name] {
		return "", "", false
	}
	return id.Name, sel.Sel.Name, true
}

// osPkgName returns the local name under which the file imports the os
// package, and whether it imports it at all.
func osPkgName(f *ast.File) (string, bool) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != "os" {
			continue
		}
		if imp.Name == nil {
			return "os", true
		}
		if imp.Name.Name == "_" || imp.Name.Name == "." {
			return "", false
		}
		return imp.Name.Name, true
	}
	return "", false
}
