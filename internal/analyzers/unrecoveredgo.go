package analyzers

import (
	"go/ast"
	"strings"
)

// UnrecoveredGo enforces panic isolation in the long-lived server and
// worker-pool packages: a panic inside a bare `go func(){...}()` crashes
// the whole process — there is no enclosing request handler to recover
// it — so every goroutine launched in those packages must install its
// own deferred recover() (or delegate to a Recover* helper) as its first
// line of defence. Batch CLIs may legitimately crash on a bug; a daemon
// absorbing untrusted traffic may not.
var UnrecoveredGo = &Analyzer{
	Name: "unrecoveredgo",
	Doc: "goroutines in server and worker-pool packages must start with a " +
		"deferred recover() boundary: a panic in a bare `go func(){...}()` " +
		"has no request-scoped handler above it and kills the process, so " +
		"each launched goroutine must contain its own isolation.",
	AppliesTo: func(pkgDir string) bool {
		switch pkgDir {
		case "internal/serve", "internal/serve/client",
			"internal/lts", "internal/faultcampaign", "internal/conformance",
			"cmd/fdrserve", "cmd/serveload":
			return true
		}
		return false
	},
	Run: runUnrecoveredGo,
}

func runUnrecoveredGo(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				// `go method()` launches named code; the convention is
				// enforced where the body is written, and helpers invoked
				// this way are expected to carry their own boundary.
				return true
			}
			if !hasRecoverBoundary(lit.Body) {
				p.Reportf(g.Pos(),
					"goroutine function literal lacks a deferred recover() boundary")
			}
			return true
		})
	}
}

// hasRecoverBoundary reports whether the goroutine body installs panic
// isolation among its top-level defers: a deferred literal calling
// recover(), a deferred Recover* helper, or a deferred method whose
// name signals recovery handling.
func hasRecoverBoundary(body *ast.BlockStmt) bool {
	if hasRecoverDefer(body) {
		return true
	}
	for _, s := range body.List {
		d, ok := s.(*ast.DeferStmt)
		if !ok {
			continue
		}
		if strings.Contains(strings.ToLower(calleeName(d.Call.Fun)), "recover") {
			return true
		}
	}
	return false
}
