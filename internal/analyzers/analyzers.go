// Package analyzers holds the repo's custom Go static-analysis passes
// in the style of golang.org/x/tools/go/analysis, rebuilt on the
// standard library's go/ast and go/token only (the build environment is
// offline, so the x/tools module cannot be vendored). Each Analyzer
// declares the repo-relative package paths it applies to; cmd/repolint
// is the driver that parses packages and runs the applicable passes,
// and scripts/check.sh wires it into CI next to `go vet`.
//
// The passes encode project invariants that ordinary vet cannot see:
//
//   - mustrecover: the csp/st Must* construction helpers panic with a
//     typed error; command binaries must convert that panic back into
//     an ordinary error with a deferred Recover* boundary.
//   - seededrand: conformance, fault-campaign and chaos-soak runs must
//     be reproducible from a recorded seed, so the implicitly seeded
//     global math/rand functions are forbidden there.
//   - unrecoveredgo: goroutines launched in the server and worker-pool
//     packages must install a deferred recover() boundary — a panic in
//     a bare goroutine has no request handler above it and kills the
//     daemon.
//   - closecheck: the persistence packages must not discard Close/Sync
//     errors on writable files — they are the only signal a checkpoint
//     or job record never reached the disk.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
)

// Diagnostic is one finding from an analyzer pass.
type Diagnostic struct {
	// Pos is the resolved source position of the finding.
	Pos token.Position
	// Analyzer names the pass that produced the finding.
	Analyzer string
	// Msg is the human-readable finding.
	Msg string
}

// String renders the conventional file:line:col: msg (analyzer) form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Msg, d.Analyzer)
}

// Analyzer is one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and -run filters.
	Name string
	// Doc is the one-paragraph rationale shown by `repolint -help`.
	Doc string
	// AppliesTo reports whether the pass runs for the package at the
	// given repo-relative directory (e.g. "cmd/caplcheck").
	AppliesTo func(pkgDir string) bool
	// IncludeTests selects whether _test.go files are analyzed.
	IncludeTests bool
	// Run inspects the files of one package and reports findings.
	Run func(*Pass)
}

// Pass is the per-package invocation of an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// PkgDir is the repo-relative directory of the package.
	PkgDir string
	// Files are the parsed files the pass may inspect (already filtered
	// by IncludeTests).
	Files []*ast.File

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// All returns every registered analyzer.
func All() []*Analyzer {
	return []*Analyzer{MustRecover, SeededRand, UnrecoveredGo, CloseCheck, DiagReg}
}

// RunPackage runs each applicable analyzer over one parsed package and
// returns the combined findings. testFiles must hold the package's
// _test.go files and files the rest; both may be nil.
func RunPackage(fset *token.FileSet, pkgDir string, files, testFiles []*ast.File, passes []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range passes {
		if a.AppliesTo != nil && !a.AppliesTo(pkgDir) {
			continue
		}
		selected := files
		if a.IncludeTests {
			selected = append(append([]*ast.File{}, files...), testFiles...)
		}
		if len(selected) == 0 {
			continue
		}
		a.Run(&Pass{Analyzer: a, Fset: fset, PkgDir: pkgDir, Files: selected, diags: &diags})
	}
	return diags
}
