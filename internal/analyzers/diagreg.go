package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// DiagReg cross-checks the caplint diagnostic-code registry. The
// CAPLnnnn codes are a public, append-only contract: CI gates key on
// them, EXPERIMENTS.md renders the catalog table, and suppressions in
// user projects reference them by string. Three invariants keep that
// contract honest, and each has been broken at least once by hand
// before this pass existed:
//
//  1. every code string is declared by exactly one constant (a copy-
//     pasted declaration silently aliases two meanings onto one code);
//  2. every code constant is registered in Catalog(), in ascending
//     code order (an unregistered code renders no docs row and falls
//     back to a default severity);
//  3. every code constant is referenced by at least one emit site —
//     in internal/caplint itself or in a sibling emitter package
//     (internal/translate emits the abstraction-info codes). A code
//     nobody emits is dead registry weight or, worse, a pass that was
//     meant to be wired up and never was.
//
// The pass is syntactic like the rest of this package: a code constant
// is any string constant whose value matches CAPL followed by four
// digits. Cross-package emit sites are found by parsing the sibling
// emitter directories directly (the driver is per-package, so the
// translate sources are not otherwise visible here).
var DiagReg = &Analyzer{
	Name: "diagreg",
	Doc: "caplint diagnostic codes must be unique, registered in Catalog() " +
		"in ascending order, and emitted by at least one site in " +
		"internal/caplint or a sibling emitter package (internal/translate).",
	AppliesTo: func(pkgDir string) bool {
		return pkgDir == "internal/caplint" || strings.HasSuffix(pkgDir, "/internal/caplint")
	},
	Run: runDiagReg,
}

// diagEmitterSiblings are the sibling packages (relative to the
// analyzed package's parent directory) whose sources also emit caplint
// codes via the exported constants.
var diagEmitterSiblings = []string{"translate"}

// codeConst is one declared CAPLnnnn constant.
type codeConst struct {
	name  string
	value string
	pos   token.Pos
}

// isDiagCode reports whether s has the CAPLnnnn shape.
func isDiagCode(s string) bool {
	if len(s) != 8 || !strings.HasPrefix(s, "CAPL") {
		return false
	}
	for _, r := range s[4:] {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

func runDiagReg(p *Pass) {
	consts, declIdents := diagCodeConsts(p.Files)
	if len(consts) == 0 {
		return
	}
	byName := map[string]*codeConst{}
	for i := range consts {
		byName[consts[i].name] = &consts[i]
	}

	// Invariant 1: one constant per code string.
	byValue := map[string]string{}
	for _, c := range consts {
		if prev, dup := byValue[c.value]; dup {
			p.Reportf(c.pos, "diagnostic code %s is declared by both %s and %s; codes must be unique", c.value, prev, c.name)
			continue
		}
		byValue[c.value] = c.name
	}

	// Invariant 2: Catalog() registers every code, in ascending order.
	catalog := findFuncDecl(p.Files, "Catalog")
	if catalog == nil {
		p.Reportf(consts[0].pos, "package declares %d diagnostic codes but has no Catalog() function", len(consts))
		return
	}
	registered := map[string]int{}
	var order []*codeConst
	ast.Inspect(catalog.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if c, isCode := byName[id.Name]; isCode {
			registered[id.Name]++
			order = append(order, c)
			if registered[id.Name] == 2 {
				p.Reportf(id.Pos(), "code constant %s appears more than once in Catalog()", id.Name)
			}
		}
		return true
	})
	for i := 1; i < len(order); i++ {
		if order[i].value < order[i-1].value {
			p.Reportf(catalog.Pos(), "Catalog() lists %s (%s) after %s (%s); entries must be in ascending code order",
				order[i].name, order[i].value, order[i-1].name, order[i-1].value)
			break
		}
	}
	for _, c := range consts {
		if registered[c.name] == 0 {
			p.Reportf(c.pos, "code constant %s (%s) is not registered in Catalog(); it would render no docs row and default to warning severity", c.name, c.value)
		}
	}

	// Invariant 3: at least one emit site references each constant.
	emitted := map[string]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// The catalog is registration, not emission.
			if fd, ok := n.(*ast.FuncDecl); ok && fd == catalog {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok || declIdents[id.Pos()] {
				return true
			}
			if _, isCode := byName[id.Name]; isCode {
				emitted[id.Name] = true
			}
			return true
		})
	}
	var missing []*codeConst
	for i := range consts {
		if !emitted[consts[i].name] {
			missing = append(missing, &consts[i])
		}
	}
	if len(missing) == 0 {
		return
	}
	for name := range siblingEmitRefs(p, missingNames(missing)) {
		emitted[name] = true
	}
	for _, c := range missing {
		if !emitted[c.name] {
			p.Reportf(c.pos, "code constant %s (%s) has no emit site in this package or in sibling emitter package(s) %s",
				c.name, c.value, strings.Join(diagEmitterSiblings, ", "))
		}
	}
}

func missingNames(cs []*codeConst) map[string]bool {
	out := make(map[string]bool, len(cs))
	for _, c := range cs {
		out[c.name] = true
	}
	return out
}

// diagCodeConsts collects every string constant with a CAPLnnnn value,
// plus the positions of the declaring idents (so reference counting can
// exclude the declarations themselves).
func diagCodeConsts(files []*ast.File) ([]codeConst, map[token.Pos]bool) {
	var out []codeConst
	decls := map[token.Pos]bool{}
	for _, f := range files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					val, err := strconv.Unquote(lit.Value)
					if err != nil || !isDiagCode(val) {
						continue
					}
					out = append(out, codeConst{name: name.Name, value: val, pos: name.Pos()})
					decls[name.Pos()] = true
				}
			}
		}
	}
	return out, decls
}

// findFuncDecl returns the named top-level function, if declared.
func findFuncDecl(files []*ast.File, name string) *ast.FuncDecl {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// siblingEmitRefs scans the sibling emitter packages on disk for
// selector references (caplint.CodeX) to the given constants. The scan
// is best-effort: an unreadable or absent sibling contributes no
// references, and parse errors there are left for the compiler — this
// pass only cares about identifier usage.
func siblingEmitRefs(p *Pass, names map[string]bool) map[string]bool {
	refs := map[string]bool{}
	if len(p.Files) == 0 {
		return refs
	}
	pkgPath := p.Fset.Position(p.Files[0].Pos()).Filename
	parent := filepath.Dir(filepath.Dir(pkgPath))
	for _, sib := range diagEmitterSiblings {
		dir := filepath.Join(parent, sib)
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		fset := token.NewFileSet()
		for _, e := range entries {
			fname := e.Name()
			if e.IsDir() || !strings.HasSuffix(fname, ".go") || strings.HasSuffix(fname, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, fname), nil, parser.SkipObjectResolution)
			if err != nil {
				continue
			}
			local, ok := caplintPkgName(f)
			if !ok {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !names[sel.Sel.Name] {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == local {
					refs[sel.Sel.Name] = true
				}
				return true
			})
		}
	}
	return refs
}

// caplintPkgName returns the local name under which the file imports
// the caplint package, and whether it imports it at all.
func caplintPkgName(f *ast.File) (string, bool) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || !strings.HasSuffix(path, "/internal/caplint") {
			continue
		}
		if imp.Name == nil {
			return "caplint", true
		}
		if imp.Name.Name == "_" || imp.Name.Name == "." {
			return "", false
		}
		return imp.Name.Name, true
	}
	return "", false
}
