package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cleanRegistry is a minimal well-formed registry: unique codes, an
// ordered catalog, and an in-package emit site for every constant.
const cleanRegistry = `package caplint
const (
	CodeParse   = "CAPL0000"
	CodeNarrow  = "CAPL0101"
)
type CatalogEntry struct{ Code, Title string }
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{CodeParse, "source does not parse"},
		{CodeNarrow, "implicit narrowing"},
	}
}
func emit() []string { return []string{CodeParse, CodeNarrow} }
`

// runDiagRegOn parses src at a real or fake path and runs DiagReg.
func runDiagRegOn(t *testing.T, path, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return RunPackage(fset, "internal/caplint", []*ast.File{f}, nil, []*Analyzer{DiagReg})
}

func TestDiagRegClean(t *testing.T) {
	if diags := runDiagRegOn(t, "diag.go", cleanRegistry); len(diags) != 0 {
		t.Fatalf("clean registry flagged: %v", diags)
	}
}

func TestDiagRegDuplicateCode(t *testing.T) {
	src := `package caplint
const (
	CodeParse = "CAPL0000"
	CodeAlias = "CAPL0000"
)
func Catalog() []struct{ Code, Title string } {
	return []struct{ Code, Title string }{{CodeParse, "x"}, {CodeAlias, "y"}}
}
func emit() []string { return []string{CodeParse, CodeAlias} }
`
	diags := runDiagRegOn(t, "diag.go", src)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "declared by both CodeParse and CodeAlias") {
		t.Fatalf("diags = %v, want one duplicate-code finding", diags)
	}
}

func TestDiagRegUnregisteredCode(t *testing.T) {
	src := `package caplint
const (
	CodeParse  = "CAPL0000"
	CodeOrphan = "CAPL0001"
)
func Catalog() []struct{ Code, Title string } {
	return []struct{ Code, Title string }{{CodeParse, "x"}}
}
func emit() []string { return []string{CodeParse, CodeOrphan} }
`
	diags := runDiagRegOn(t, "diag.go", src)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "CodeOrphan (CAPL0001) is not registered in Catalog()") {
		t.Fatalf("diags = %v, want one unregistered-code finding", diags)
	}
}

func TestDiagRegCatalogOrder(t *testing.T) {
	src := `package caplint
const (
	CodeA = "CAPL0000"
	CodeB = "CAPL0001"
)
func Catalog() []struct{ Code, Title string } {
	return []struct{ Code, Title string }{{CodeB, "y"}, {CodeA, "x"}}
}
func emit() []string { return []string{CodeA, CodeB} }
`
	diags := runDiagRegOn(t, "diag.go", src)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "ascending code order") {
		t.Fatalf("diags = %v, want one catalog-order finding", diags)
	}
}

func TestDiagRegDuplicateCatalogEntry(t *testing.T) {
	src := `package caplint
const CodeA = "CAPL0000"
func Catalog() []struct{ Code, Title string } {
	return []struct{ Code, Title string }{{CodeA, "x"}, {CodeA, "x again"}}
}
func emit() string { return CodeA }
`
	diags := runDiagRegOn(t, "diag.go", src)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "more than once in Catalog()") {
		t.Fatalf("diags = %v, want one duplicate-entry finding", diags)
	}
}

// TestDiagRegNoEmitSite covers invariant 3 without a sibling package on
// disk: a constant referenced only by Catalog() is dead registry weight.
func TestDiagRegNoEmitSite(t *testing.T) {
	src := `package caplint
const (
	CodeLive = "CAPL0000"
	CodeDead = "CAPL0001"
)
func Catalog() []struct{ Code, Title string } {
	return []struct{ Code, Title string }{{CodeLive, "x"}, {CodeDead, "y"}}
}
func emit() string { return CodeLive }
`
	diags := runDiagRegOn(t, filepath.Join(t.TempDir(), "caplint", "diag.go"), src)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "CodeDead (CAPL0001) has no emit site") {
		t.Fatalf("diags = %v, want one no-emit-site finding", diags)
	}
}

// TestDiagRegSiblingEmitSite proves the cross-package path: a code
// emitted only from the sibling translate package is not flagged, and
// the sibling's local import alias is honoured.
func TestDiagRegSiblingEmitSite(t *testing.T) {
	root := t.TempDir()
	caplintDir := filepath.Join(root, "caplint")
	translateDir := filepath.Join(root, "translate")
	for _, dir := range []string{caplintDir, translateDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	sibling := `package translate
import cl "repro/internal/caplint"
func emit() string { return cl.CodeRemote }
`
	if err := os.WriteFile(filepath.Join(translateDir, "emit.go"), []byte(sibling), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package caplint
const CodeRemote = "CAPL0016"
func Catalog() []struct{ Code, Title string } {
	return []struct{ Code, Title string }{{CodeRemote, "abstracted"}}
}
`
	if diags := runDiagRegOn(t, filepath.Join(caplintDir, "diag.go"), src); len(diags) != 0 {
		t.Fatalf("sibling-emitted code flagged: %v", diags)
	}
}

// TestDiagRegScope pins the pass to the caplint package directory.
func TestDiagRegScope(t *testing.T) {
	if !DiagReg.AppliesTo("internal/caplint") {
		t.Error("pass does not apply to internal/caplint")
	}
	if DiagReg.AppliesTo("internal/translate") || DiagReg.AppliesTo("internal/caplgen") {
		t.Error("pass applies outside internal/caplint")
	}
}

// TestDiagRegRealRegistry runs the pass over the repository's actual
// caplint package: the live registry must be clean.
func TestDiagRegRealRegistry(t *testing.T) {
	dir := filepath.Join("..", "caplint")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if diags := RunPackage(fset, "internal/caplint", files, nil, []*Analyzer{DiagReg}); len(diags) != 0 {
		t.Fatalf("live caplint registry has findings:\n%v", diags)
	}
}
