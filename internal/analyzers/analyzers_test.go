package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// runOn parses src as one package file and runs a single analyzer over
// it for the given package directory.
func runOn(t *testing.T, a *Analyzer, pkgDir, src string, asTest bool) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	name := "src.go"
	if asTest {
		name = "src_test.go"
	}
	f, err := parser.ParseFile(fset, name, src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	if asTest {
		return RunPackage(fset, pkgDir, nil, []*ast.File{f}, []*Analyzer{a})
	}
	return RunPackage(fset, pkgDir, []*ast.File{f}, nil, []*Analyzer{a})
}

func TestMustRecoverUnguarded(t *testing.T) {
	src := `package main
import "repro/internal/csp"
func build(ctx *csp.Context) {
	ctx.MustChannel("send")
}`
	diags := runOn(t, MustRecover, "cmd/otacheck", src, false)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "MustChannel") {
		t.Fatalf("diags = %v, want one MustChannel finding", diags)
	}
}

func TestMustRecoverGuarded(t *testing.T) {
	src := `package main
import "repro/internal/csp"
func build(ctx *csp.Context) (err error) {
	defer csp.RecoverBuild(&err)
	ctx.MustChannel("send")
	f := func() { ctx.MustDefine("P", nil, nil) } // inherits the boundary
	f()
	return nil
}
func plain(ctx *csp.Context) (err error) {
	defer func() { _ = recover() }()
	ctx.MustChannel("send")
	return nil
}`
	if diags := runOn(t, MustRecover, "cmd/otacheck", src, false); len(diags) != 0 {
		t.Fatalf("guarded code flagged: %v", diags)
	}
}

func TestMustRecoverFuncLitOwnGuard(t *testing.T) {
	src := `package main
import "repro/internal/st"
func render(g *st.Group) {
	go func() {
		g.MustRender("hdr", nil) // unguarded: goroutine escapes the caller's defers
	}()
}`
	diags := runOn(t, MustRecover, "cmd/x", src, false)
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want one finding", diags)
	}
}

func TestMustRecoverScope(t *testing.T) {
	src := `package conformance
import "repro/internal/csp"
func build(ctx *csp.Context) { ctx.MustChannel("send") }`
	if diags := runOn(t, MustRecover, "internal/conformance", src, false); len(diags) != 0 {
		t.Fatalf("pass ran outside cmd/: %v", diags)
	}
	if !MustRecover.AppliesTo("cmd/otacheck") || MustRecover.AppliesTo("internal/ota") {
		t.Error("AppliesTo scoping wrong")
	}
}

func TestSeededRandGlobalUse(t *testing.T) {
	src := `package conformance
import "math/rand"
func pick(n int) int { return rand.Intn(n) }
func seedIt() { rand.Seed(42) }`
	diags := runOn(t, SeededRand, "internal/conformance", src, false)
	if len(diags) != 2 {
		t.Fatalf("diags = %v, want Intn and Seed findings", diags)
	}
}

func TestSeededRandExplicitSourceAllowed(t *testing.T) {
	src := `package faultcampaign
import "math/rand"
func pick(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}`
	if diags := runOn(t, SeededRand, "internal/faultcampaign", src, false); len(diags) != 0 {
		t.Fatalf("seeded source flagged: %v", diags)
	}
}

func TestSeededRandAliasedImport(t *testing.T) {
	src := `package conformance
import mrand "math/rand"
func pick(n int) int { return mrand.Intn(n) }`
	diags := runOn(t, SeededRand, "internal/conformance", src, false)
	if len(diags) != 1 {
		t.Fatalf("aliased import not tracked: %v", diags)
	}
}

func TestSeededRandCoversTests(t *testing.T) {
	src := `package conformance
import "math/rand"
func helper(n int) int { return rand.Intn(n) }`
	diags := runOn(t, SeededRand, "internal/conformance", src, true)
	if len(diags) != 1 {
		t.Fatalf("test file not analyzed: %v", diags)
	}
	if diags := runOn(t, SeededRand, "internal/csp", src, false); len(diags) != 0 {
		t.Fatalf("pass ran outside its scope: %v", diags)
	}
}

func TestSeededRandOtherPackageNamedRand(t *testing.T) {
	src := `package conformance
import "repro/internal/notrand"
func pick(n int) int { return rand.Intn(n) }` // rand is not math/rand here
	if diags := runOn(t, SeededRand, "internal/conformance", src, false); len(diags) != 0 {
		t.Fatalf("non-math/rand identifier flagged: %v", diags)
	}
}
