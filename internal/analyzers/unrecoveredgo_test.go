package analyzers

import (
	"strings"
	"testing"
)

func TestUnrecoveredGoFlagsBareGoroutine(t *testing.T) {
	src := `package serve
func spawn(work func()) {
	go func() {
		work()
	}()
}`
	diags := runOn(t, UnrecoveredGo, "internal/serve", src, false)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "recover") {
		t.Fatalf("diags = %v, want one unrecovered-goroutine finding", diags)
	}
}

func TestUnrecoveredGoAcceptsRecoverBoundary(t *testing.T) {
	src := `package serve
func spawn(work func()) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				_ = r
			}
		}()
		work()
	}()
	go func() {
		defer func() { _ = recover() }()
		work()
	}()
}`
	if diags := runOn(t, UnrecoveredGo, "internal/serve", src, false); len(diags) != 0 {
		t.Fatalf("guarded goroutines flagged: %v", diags)
	}
}

func TestUnrecoveredGoAcceptsRecoverHelper(t *testing.T) {
	src := `package fc
import "repro/internal/csp"
func spawn(work func() error) {
	go func() {
		var err error
		defer csp.RecoverBuild(&err)
		_ = work()
	}()
}`
	if diags := runOn(t, UnrecoveredGo, "internal/faultcampaign", src, false); len(diags) != 0 {
		t.Fatalf("Recover*-helper goroutine flagged: %v", diags)
	}
}

func TestUnrecoveredGoIgnoresNamedCalls(t *testing.T) {
	// `go method()` launches named code that carries its own boundary;
	// the convention is enforced where the body is written.
	src := `package serve
type w struct{}
func (w) run() {}
func spawn() {
	var x w
	go x.run()
}`
	if diags := runOn(t, UnrecoveredGo, "internal/serve", src, false); len(diags) != 0 {
		t.Fatalf("named goroutine call flagged: %v", diags)
	}
}

func TestUnrecoveredGoScope(t *testing.T) {
	// Batch CLIs and libraries outside the server/worker set may crash
	// on a bug; the pass must not fire there.
	src := `package ota
func spawn(work func()) {
	go func() { work() }()
}`
	if diags := runOn(t, UnrecoveredGo, "internal/ota", src, false); len(diags) != 0 {
		t.Fatalf("out-of-scope package flagged: %v", diags)
	}
	if diags := runOn(t, UnrecoveredGo, "cmd/fdrserve", `package main
func spawn(work func()) { go func() { work() }() }`, false); len(diags) != 1 {
		t.Fatalf("cmd/fdrserve not covered: %v", diags)
	}
}

func TestSeededRandCoversServeload(t *testing.T) {
	src := `package main
import "math/rand"
func pick() int { return rand.Intn(8) }`
	diags := runOn(t, SeededRand, "cmd/serveload", src, false)
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want one global-rand finding in cmd/serveload", diags)
	}
}
