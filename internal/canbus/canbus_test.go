package canbus

import (
	"testing"
)

// collector records delivered frames with their timestamps.
type collector struct {
	frames []Frame
	times  []Time
}

func (c *collector) OnFrame(t Time, f Frame) {
	c.frames = append(c.frames, f)
	c.times = append(c.times, t)
}

func TestBroadcastDelivery(t *testing.T) {
	bus := New(Config{})
	var a, b, c collector
	tapA := bus.Attach("A", &a)
	bus.Attach("B", &b)
	bus.Attach("C", &c)

	if err := bus.Transmit(tapA, Frame{ID: 0x101, Data: []byte{1, 2}}); err != nil {
		t.Fatal(err)
	}
	bus.RunAll(100)

	if len(a.frames) != 0 {
		t.Errorf("sender received its own frame")
	}
	if len(b.frames) != 1 || len(c.frames) != 1 {
		t.Fatalf("delivery counts = %d/%d, want 1/1", len(b.frames), len(c.frames))
	}
	if b.frames[0].ID != 0x101 || b.frames[0].Data[1] != 2 {
		t.Errorf("frame mangled: %s", b.frames[0])
	}
}

func TestArbitrationByPriority(t *testing.T) {
	bus := New(Config{})
	var rx collector
	tapA := bus.Attach("A", ReceiverFunc(func(Time, Frame) {}))
	tapB := bus.Attach("B", ReceiverFunc(func(Time, Frame) {}))
	bus.Attach("RX", &rx)

	// Queue high-ID first; the low-ID frame must still win arbitration.
	if err := bus.Transmit(tapA, Frame{ID: 0x700}); err != nil {
		t.Fatal(err)
	}
	if err := bus.Transmit(tapB, Frame{ID: 0x100}); err != nil {
		t.Fatal(err)
	}
	// 0x700 already started transmitting (bus was idle), so it finishes
	// first; but queue two more while busy and check ordering of the
	// remainder.
	tapC := bus.Attach("C", ReceiverFunc(func(Time, Frame) {}))
	if err := bus.Transmit(tapC, Frame{ID: 0x400}); err != nil {
		t.Fatal(err)
	}
	bus.RunAll(100)

	if len(rx.frames) != 3 {
		t.Fatalf("delivered %d frames, want 3", len(rx.frames))
	}
	// First out is 0x700 (it seized the idle bus), then priority order.
	wantOrder := []uint32{0x700, 0x100, 0x400}
	for i, want := range wantOrder {
		if rx.frames[i].ID != want {
			t.Errorf("frame %d id = %#x, want %#x", i, rx.frames[i].ID, want)
		}
	}
}

func TestFIFOAmongEqualIDs(t *testing.T) {
	bus := New(Config{})
	var rx collector
	tapA := bus.Attach("A", ReceiverFunc(func(Time, Frame) {}))
	bus.Attach("RX", &rx)
	for i := byte(0); i < 3; i++ {
		if err := bus.Transmit(tapA, Frame{ID: 0x123, Data: []byte{i}}); err != nil {
			t.Fatal(err)
		}
	}
	bus.RunAll(100)
	for i := byte(0); i < 3; i++ {
		if rx.frames[i].Data[0] != i {
			t.Errorf("frame %d payload = %d, want %d (FIFO violated)", i, rx.frames[i].Data[0], i)
		}
	}
}

func TestTransmissionTiming(t *testing.T) {
	bus := New(Config{BitRate: 500_000})
	var rx collector
	tap := bus.Attach("A", ReceiverFunc(func(Time, Frame) {}))
	bus.Attach("RX", &rx)
	f := Frame{ID: 1, Data: []byte{0, 0, 0, 0, 0, 0, 0, 0}}
	if err := bus.Transmit(tap, f); err != nil {
		t.Fatal(err)
	}
	bus.RunAll(10)
	// 47 overhead + 64 payload + (34+64-1)/4 = 24 stuff bits = 135 bits
	// at 500 kbit/s = 270 us.
	want := Time(int64(f.bits()) * int64(Second) / 500_000)
	if rx.times[0] != want {
		t.Errorf("delivery at %d us, want %d us", rx.times[0], want)
	}
	if bus.Load() <= 0 {
		t.Error("bus load not accounted")
	}
}

func TestTimersViaSchedule(t *testing.T) {
	bus := New(Config{})
	fired := []Time{}
	if err := bus.Schedule(5*Millisecond, func() { fired = append(fired, bus.Now()) }); err != nil {
		t.Fatal(err)
	}
	if err := bus.Schedule(2*Millisecond, func() { fired = append(fired, bus.Now()) }); err != nil {
		t.Fatal(err)
	}
	bus.RunAll(10)
	if len(fired) != 2 || fired[0] != 2*Millisecond || fired[1] != 5*Millisecond {
		t.Errorf("timers fired at %v", fired)
	}
	if err := bus.Schedule(1*Millisecond, func() {}); err == nil {
		t.Error("scheduling in the past accepted")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	bus := New(Config{})
	bus.Run(3 * Millisecond)
	if bus.Now() != 3*Millisecond {
		t.Errorf("now = %d, want 3ms", bus.Now())
	}
}

func TestValidation(t *testing.T) {
	bus := New(Config{})
	tap := bus.Attach("A", ReceiverFunc(func(Time, Frame) {}))
	if err := bus.Transmit(tap, Frame{ID: 1, Data: make([]byte, 9)}); err != ErrTooLong {
		t.Errorf("oversize frame error = %v, want ErrTooLong", err)
	}
	other := New(Config{})
	if err := other.Transmit(tap, Frame{ID: 1}); err != ErrDetached {
		t.Errorf("foreign tap error = %v, want ErrDetached", err)
	}
}

func TestDropInjection(t *testing.T) {
	dropped := 0
	bus := New(Config{Injector: &Injector{
		Drop: func(_ Time, f Frame) bool {
			if f.ID == 0x200 {
				dropped++
				return true
			}
			return false
		},
	}})
	var rx collector
	tap := bus.Attach("A", ReceiverFunc(func(Time, Frame) {}))
	bus.Attach("RX", &rx)
	if err := bus.Transmit(tap, Frame{ID: 0x200}); err != nil {
		t.Fatal(err)
	}
	if err := bus.Transmit(tap, Frame{ID: 0x100}); err != nil {
		t.Fatal(err)
	}
	bus.RunAll(100)
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if len(rx.frames) != 1 || rx.frames[0].ID != 0x100 {
		t.Errorf("surviving frames = %v", rx.frames)
	}
	if bus.Stats().FramesDropped != 1 {
		t.Errorf("stats dropped = %d", bus.Stats().FramesDropped)
	}
}

func TestCorruptInjection(t *testing.T) {
	bus := New(Config{Injector: &Injector{
		Corrupt: func(_ Time, f Frame) Frame {
			if len(f.Data) > 0 {
				f.Data[0] ^= 0xFF
			}
			return f
		},
	}})
	var rx collector
	tap := bus.Attach("A", ReceiverFunc(func(Time, Frame) {}))
	bus.Attach("RX", &rx)
	if err := bus.Transmit(tap, Frame{ID: 1, Data: []byte{0x0F}}); err != nil {
		t.Fatal(err)
	}
	bus.RunAll(10)
	if rx.frames[0].Data[0] != 0xF0 {
		t.Errorf("payload = %#x, want corrupted 0xF0", rx.frames[0].Data[0])
	}
	if bus.Stats().FramesCorrupted != 1 {
		t.Errorf("stats corrupted = %d", bus.Stats().FramesCorrupted)
	}
}

func TestStatsCounters(t *testing.T) {
	bus := New(Config{})
	var rx collector
	tapA := bus.Attach("A", ReceiverFunc(func(Time, Frame) {}))
	bus.Attach("RX", &rx)
	for i := 0; i < 5; i++ {
		if err := bus.Transmit(tapA, Frame{ID: uint32(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	bus.RunAll(100)
	st := bus.Stats()
	if st.FramesRequested != 5 || st.FramesDelivered != 5 {
		t.Errorf("stats = %+v", st)
	}
	if tapA.TxCount != 5 {
		t.Errorf("tx count = %d", tapA.TxCount)
	}
}

func TestFrameString(t *testing.T) {
	f := Frame{ID: 0x101, Data: []byte{0xAB}}
	if got := f.String(); got != "101#AB" {
		t.Errorf("String() = %q", got)
	}
	// Extended 29-bit identifiers render candump-style as 8 hex digits.
	ext := Frame{ID: 0x18DAF110, Data: []byte{0x01, 0x02}, Extended: true}
	if got := ext.String(); got != "18DAF110#01 02" {
		t.Errorf("extended String() = %q", got)
	}
	small := Frame{ID: 0x42, Extended: true}
	if got := small.String(); got != "00000042#" {
		t.Errorf("extended small-ID String() = %q", got)
	}
}

// TestFrameBits pins the wire-size estimate: fixed overhead plus payload
// plus worst-case stuffing over the SOF..CRC region (ISO 11898 stuffs
// the whole region, not the payload alone).
func TestFrameBits(t *testing.T) {
	cases := []struct {
		name string
		f    Frame
		want int
	}{
		// standard, empty: 47 + 0 + (34-1)/4 = 55
		{"std empty", Frame{ID: 1}, 55},
		// standard, 8 bytes: 47 + 64 + (98-1)/4 = 135
		{"std full", Frame{ID: 1, Data: make([]byte, 8)}, 135},
		// extended, empty: 67 + 0 + (54-1)/4 = 80
		{"ext empty", Frame{ID: 1, Extended: true}, 80},
		// extended, 8 bytes: 67 + 64 + (118-1)/4 = 160
		{"ext full", Frame{ID: 1, Data: make([]byte, 8), Extended: true}, 160},
	}
	for _, tc := range cases {
		if got := tc.f.bits(); got != tc.want {
			t.Errorf("%s: bits() = %d, want %d", tc.name, got, tc.want)
		}
	}
}
