package canbus

import (
	"errors"
	"reflect"
	"testing"
)

func TestCloneNilDataStaysNil(t *testing.T) {
	f := Frame{ID: 0x101, Extended: true}
	c := f.Clone()
	if c.Data != nil {
		t.Errorf("Clone of nil payload produced non-nil Data %v", c.Data)
	}
	if !reflect.DeepEqual(f, c) {
		t.Errorf("clone %+v not deep-equal to original %+v", c, f)
	}
}

func TestCloneCopiesPayload(t *testing.T) {
	f := Frame{ID: 0x101, Data: []byte{1, 2, 3}}
	c := f.Clone()
	if !reflect.DeepEqual(f, c) {
		t.Errorf("clone %+v not deep-equal to original %+v", c, f)
	}
	c.Data[0] = 99
	if f.Data[0] != 1 {
		t.Error("clone shares backing array with original")
	}
}

// TestDropHookDirect drives the Drop hook without any CAPL machinery:
// the hook sees every frame with its delivery timestamp and may
// selectively lose it.
func TestDropHookDirect(t *testing.T) {
	var seen []Frame
	inj := &Injector{Drop: func(_ Time, f Frame) bool {
		seen = append(seen, f.Clone())
		return f.ID == 0x2
	}}
	bus := New(Config{Injector: inj})
	tx := bus.Attach("TX", ReceiverFunc(func(Time, Frame) {}))
	var delivered []uint32
	bus.Attach("RX", ReceiverFunc(func(_ Time, f Frame) { delivered = append(delivered, f.ID) }))

	for _, id := range []uint32{1, 2, 3} {
		if err := bus.Transmit(tx, Frame{ID: id, Data: []byte{byte(id)}}); err != nil {
			t.Fatal(err)
		}
	}
	bus.RunAll(100)
	if len(seen) != 3 {
		t.Errorf("drop hook saw %d frames, want 3", len(seen))
	}
	if !reflect.DeepEqual(delivered, []uint32{1, 3}) {
		t.Errorf("delivered %v, want [1 3]", delivered)
	}
	if s := bus.Stats(); s.FramesDropped != 1 {
		t.Errorf("FramesDropped = %d, want 1", s.FramesDropped)
	}
}

// TestCorruptHookDirect checks the legacy (no error confinement)
// corrupt path: the mutation is delivered as-is and counted.
func TestCorruptHookDirect(t *testing.T) {
	inj := &Injector{Corrupt: func(_ Time, f Frame) Frame {
		f.Data[0] ^= 0x80
		return f
	}}
	bus := New(Config{Injector: inj})
	tx := bus.Attach("TX", ReceiverFunc(func(Time, Frame) {}))
	var got []byte
	bus.Attach("RX", ReceiverFunc(func(_ Time, f Frame) { got = append([]byte(nil), f.Data...) }))
	if err := bus.Transmit(tx, Frame{ID: 1, Data: []byte{0x01}}); err != nil {
		t.Fatal(err)
	}
	bus.RunAll(100)
	if !reflect.DeepEqual(got, []byte{0x81}) {
		t.Errorf("delivered payload %v, want [0x81]", got)
	}
	if s := bus.Stats(); s.FramesCorrupted != 1 {
		t.Errorf("FramesCorrupted = %d, want 1", s.FramesCorrupted)
	}
}

// TestCorruptHookChangesFrameLength mutates the payload length in both
// directions: growing past the CAN limit is clamped to MaxDataLen,
// shrinking is delivered verbatim.
func TestCorruptHookChangesFrameLength(t *testing.T) {
	grow := true
	inj := &Injector{Corrupt: func(_ Time, f Frame) Frame {
		if grow {
			f.Data = append(f.Data, make([]byte, 8)...) // 12 bytes
		} else {
			f.Data = f.Data[:1]
		}
		return f
	}}
	bus := New(Config{Injector: inj})
	tx := bus.Attach("TX", ReceiverFunc(func(Time, Frame) {}))
	var lens []int
	bus.Attach("RX", ReceiverFunc(func(_ Time, f Frame) { lens = append(lens, len(f.Data)) }))

	if err := bus.Transmit(tx, Frame{ID: 1, Data: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	bus.RunAll(100)
	grow = false
	if err := bus.Transmit(tx, Frame{ID: 2, Data: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	bus.RunAll(100)

	if !reflect.DeepEqual(lens, []int{MaxDataLen, 1}) {
		t.Errorf("delivered payload lengths %v, want [%d 1]", lens, MaxDataLen)
	}
}

// TestInjectorInstalledMidSimulation starts a measurement with an empty
// injector and arms the fault hooks only after traffic has flowed.
func TestInjectorInstalledMidSimulation(t *testing.T) {
	inj := &Injector{}
	bus := New(Config{Injector: inj})
	tx := bus.Attach("TX", ReceiverFunc(func(Time, Frame) {}))
	var delivered []uint32
	bus.Attach("RX", ReceiverFunc(func(_ Time, f Frame) { delivered = append(delivered, f.ID) }))

	if err := bus.Transmit(tx, Frame{ID: 1}); err != nil {
		t.Fatal(err)
	}
	bus.RunAll(100)

	// Mid-simulation: arm a drop-everything hook.
	inj.Drop = func(Time, Frame) bool { return true }
	if err := bus.Transmit(tx, Frame{ID: 2}); err != nil {
		t.Fatal(err)
	}
	bus.RunAll(100)

	// Disarm again: traffic resumes.
	inj.Drop = nil
	if err := bus.Transmit(tx, Frame{ID: 3}); err != nil {
		t.Fatal(err)
	}
	bus.RunAll(100)

	if !reflect.DeepEqual(delivered, []uint32{1, 3}) {
		t.Errorf("delivered %v, want [1 3]", delivered)
	}
	if s := bus.Stats(); s.FramesDropped != 1 {
		t.Errorf("FramesDropped = %d, want 1", s.FramesDropped)
	}
}

// TestTamperHookEvadesConfinement: tampered mutations are delivered
// even with error confinement on (they model CRC-evading attacks), in
// contrast to Corrupt which the CRC catches.
func TestTamperHookEvadesConfinement(t *testing.T) {
	inj := &Injector{Tamper: func(_ Time, f Frame) Frame {
		f.ID ^= 0x200
		return f
	}}
	bus := New(Config{Injector: inj, ErrorConfinement: true})
	tx := bus.Attach("TX", ReceiverFunc(func(Time, Frame) {}))
	var got []uint32
	bus.Attach("RX", ReceiverFunc(func(_ Time, f Frame) { got = append(got, f.ID) }))
	if err := bus.Transmit(tx, Frame{ID: 0x101, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	bus.RunAll(100)
	if !reflect.DeepEqual(got, []uint32{0x301}) {
		t.Errorf("delivered IDs %v, want [0x301]", got)
	}
	if s := bus.Stats(); s.ErrorFrames != 0 {
		t.Errorf("tampering raised %d error frames, want 0", s.ErrorFrames)
	}
	if errors.Is(bus.Transmit(tx, Frame{ID: 1}), ErrBusOff) {
		t.Error("tampering must not degrade the transmitter")
	}
}
