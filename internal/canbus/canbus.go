// Package canbus is a deterministic discrete-event simulator of a CAN
// bus: the substrate standing in for the physical network of the
// paper's CANoe environment (section IV-B). It models broadcast
// delivery, identifier-priority arbitration, transmission timing from
// the configured bit rate, and hook-based fault injection, all under a
// virtual clock so simulations are exactly reproducible.
package canbus

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Time is simulated time in microseconds.
type Time int64

// Millisecond and friends convert to simulated time.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * Millisecond
)

// MaxDataLen is the classic CAN payload limit.
const MaxDataLen = 8

// Frame is a classic CAN data frame.
type Frame struct {
	// ID is the 11-bit (or 29-bit extended) identifier; lower wins
	// arbitration.
	ID uint32
	// Data is the payload, at most 8 bytes.
	Data []byte
	// Extended marks a 29-bit identifier frame.
	Extended bool
}

// Clone returns a deep copy of the frame. A nil payload stays nil so
// cloned frames compare deep-equal to their originals.
func (f Frame) Clone() Frame {
	if f.Data == nil {
		return Frame{ID: f.ID, Extended: f.Extended}
	}
	data := make([]byte, len(f.Data))
	copy(data, f.Data)
	return Frame{ID: f.ID, Data: data, Extended: f.Extended}
}

// String renders the frame like a candump line: three hex digits for a
// standard 11-bit identifier, eight for an extended 29-bit one.
func (f Frame) String() string {
	if f.Extended {
		return fmt.Sprintf("%08X#% X", f.ID, f.Data)
	}
	return fmt.Sprintf("%03X#% X", f.ID, f.Data)
}

// bits returns the nominal frame size on the wire: fixed frame overhead
// plus payload plus a worst-case bit-stuffing estimate. ISO 11898 stuffs
// the region from SOF through the CRC sequence — not the payload alone —
// so the estimate covers SOF, arbitration, control, data and CRC bits
// (34 + payload for standard frames, 54 + payload for extended), at the
// worst case of one stuff bit per four stuffable bits after the first.
func (f Frame) bits() int {
	payload := 8 * len(f.Data)
	overhead, stuffable := 47, 34+payload
	if f.Extended {
		overhead, stuffable = 67, 54+payload
	}
	return overhead + payload + (stuffable-1)/4
}

// Receiver consumes frames delivered by the bus.
type Receiver interface {
	// OnFrame is called for every frame another node transmitted.
	OnFrame(t Time, f Frame)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(t Time, f Frame)

// OnFrame calls the function.
func (fn ReceiverFunc) OnFrame(t Time, f Frame) { fn(t, f) }

// Injector mutates or drops frames in flight, for failure-injection
// experiments. All hooks may be nil.
type Injector struct {
	// Observe is called for every frame whose transmission completes,
	// before any drop/corrupt/tamper decision. It is a pure observation
	// hook: conformance harnesses use it to key scheduled perturbations
	// off a deterministic per-bus transmission sequence number.
	Observe func(t Time, f Frame)
	// Drop returns true to lose the frame entirely (a receiver-side
	// loss: the transmitter still sees a successful transmission).
	Drop func(t Time, f Frame) bool
	// Corrupt may return a modified frame (e.g. flipped payload bits).
	// Without error confinement the mutated frame is delivered as-is;
	// with Config.ErrorConfinement the mutation models a wire error the
	// CRC catches, so the frame is destroyed by an error frame, error
	// counters move, and the transmitter retransmits.
	Corrupt func(t Time, f Frame) Frame
	// Tamper may return a modified frame that evades CRC detection
	// (targeted bit flips, spoofed identifiers). The mutation is always
	// delivered, even under error confinement.
	Tamper func(t Time, f Frame) Frame
}

// Config configures a bus.
type Config struct {
	// BitRate in bits/second; default 500 kbit/s, the common automotive
	// high-speed CAN rate.
	BitRate int
	// Injector optionally injects faults.
	Injector *Injector
	// ErrorConfinement enables the ISO 11898 error-confinement state
	// machine: per-node TEC/REC counters, error-active -> error-passive
	// -> bus-off transitions, automatic retransmission of frames
	// destroyed by detected errors, and bus-off recovery.
	ErrorConfinement bool
	// BusOffRecovery is the simulated time a bus-off node waits before
	// rejoining as error-active. Zero selects the ISO 11898 default of
	// 128 occurrences of 11 consecutive recessive bits at the
	// configured bit rate.
	BusOffRecovery Time
	// Obs receives bus counters (frames, arbitration losses, error
	// frames, retransmissions). nil disables them; the counters mirror —
	// never replace — the Stats the simulation itself reports, so report
	// bytes are identical with or without an observer.
	Obs *obs.Observer
}

// Stats accumulates bus counters.
type Stats struct {
	FramesRequested int
	FramesDelivered int
	FramesDropped   int
	FramesCorrupted int
	// ErrorFrames counts detected wire errors (error confinement).
	ErrorFrames int
	// Retransmissions counts automatic retransmissions after detected
	// errors (error confinement).
	Retransmissions int
	// BusOffEvents counts nodes entering bus-off (error confinement).
	BusOffEvents int
	// FramesRejected counts transmit requests refused because the
	// requesting node was bus-off.
	FramesRejected int
	BusBusy        Time
}

// Errors returned by bus operations.
var (
	ErrTooLong    = errors.New("canbus: frame payload exceeds 8 bytes")
	ErrDetached   = errors.New("canbus: tap does not belong to this bus")
	ErrTimeTravel = errors.New("canbus: cannot schedule in the past")
	// ErrBusOff is returned by Transmit when the sending node is in the
	// bus-off state; its controller cannot drive the bus until recovery.
	ErrBusOff = errors.New("canbus: node is bus-off")
)

// Tap is one node's attachment point to the bus.
type Tap struct {
	name string
	bus  *Bus
	recv Receiver
	// TxCount and RxCount are per-node frame counters.
	TxCount int
	RxCount int

	// Error-confinement state (meaningful when Config.ErrorConfinement
	// is set; a node without it stays error-active with zero counters).
	tec      int
	rec      int
	state    NodeState
	busOffAt Time
}

// Name returns the node name given at Attach time.
func (t *Tap) Name() string { return t.name }

// TEC returns the node's transmit error counter.
func (t *Tap) TEC() int { return t.tec }

// REC returns the node's receive error counter.
func (t *Tap) REC() int { return t.rec }

// State returns the node's ISO 11898 error-confinement state.
func (t *Tap) State() NodeState { return t.state }

// busMetrics holds the bus's obs counter handles, resolved once at New
// so the hot paths pay only the nil check of a disabled handle.
type busMetrics struct {
	framesRequested *obs.Counter
	framesDelivered *obs.Counter
	framesDropped   *obs.Counter
	framesCorrupted *obs.Counter
	arbLosses       *obs.Counter
	errorFrames     *obs.Counter
	retransmissions *obs.Counter
	busOffEvents    *obs.Counter
}

// Bus is a simulated CAN segment.
type Bus struct {
	cfg   Config
	now   Time
	taps  []*Tap
	stats Stats
	m     busMetrics

	// events is the time-ordered queue of pending simulation actions.
	events eventQueue
	seq    int64

	// pending holds frames queued for transmission, competing in
	// arbitration whenever the bus goes idle.
	pending []pendingFrame
	// busyUntil is when the current transmission completes.
	busyUntil Time
}

type pendingFrame struct {
	from  *Tap
	frame Frame
	seq   int64 // FIFO tie-break among equal IDs
}

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

// New creates a bus.
func New(cfg Config) *Bus {
	if cfg.BitRate <= 0 {
		cfg.BitRate = 500_000
	}
	o := cfg.Obs // nil-safe: nil Observer hands out nil no-op handles
	return &Bus{cfg: cfg, m: busMetrics{
		framesRequested: o.Counter("canbus.frames.requested"),
		framesDelivered: o.Counter("canbus.frames.delivered"),
		framesDropped:   o.Counter("canbus.frames.dropped"),
		framesCorrupted: o.Counter("canbus.frames.corrupted"),
		arbLosses:       o.Counter("canbus.arbitration.losses"),
		errorFrames:     o.Counter("canbus.error.frames"),
		retransmissions: o.Counter("canbus.retransmissions"),
		busOffEvents:    o.Counter("canbus.busoff.events"),
	}}
}

// Now returns the current simulated time.
func (b *Bus) Now() Time { return b.now }

// Stats returns a copy of the counters.
func (b *Bus) Stats() Stats { return b.stats }

// Attach registers a receiver and returns its tap.
func (b *Bus) Attach(name string, r Receiver) *Tap {
	tap := &Tap{name: name, bus: b, recv: r}
	b.taps = append(b.taps, tap)
	return tap
}

// Schedule runs fn at the given absolute simulated time. It underpins
// CAPL timers.
func (b *Bus) Schedule(at Time, fn func()) error {
	if at < b.now {
		return fmt.Errorf("%w: at=%d now=%d", ErrTimeTravel, at, b.now)
	}
	b.push(at, fn)
	return nil
}

func (b *Bus) push(at Time, fn func()) {
	b.seq++
	b.events = append(b.events, event{at: at, seq: b.seq, fn: fn})
	// Keep the queue sorted; a heap would be asymptotically better but
	// simulations here are small and sorted-insert keeps replay order
	// obvious.
	sort.Sort(b.events)
}

// Transmit queues a frame for transmission from the given tap. The
// frame enters arbitration; delivery happens when it wins and its
// transmission time elapses.
func (b *Bus) Transmit(tap *Tap, f Frame) error {
	if tap == nil || tap.bus != b {
		return ErrDetached
	}
	if len(f.Data) > MaxDataLen {
		return ErrTooLong
	}
	if tap.state == BusOff {
		b.stats.FramesRejected++
		return ErrBusOff
	}
	b.stats.FramesRequested++
	b.m.framesRequested.Inc()
	b.seq++
	b.pending = append(b.pending, pendingFrame{from: tap, frame: f.Clone(), seq: b.seq})
	b.tryArbitrate()
	return nil
}

// tryArbitrate starts the highest-priority pending frame if the bus is
// idle.
func (b *Bus) tryArbitrate() {
	if len(b.pending) == 0 || b.busyUntil > b.now {
		return
	}
	// Lowest identifier wins; FIFO among equal identifiers.
	best := 0
	for i := 1; i < len(b.pending); i++ {
		p, q := b.pending[i], b.pending[best]
		if p.frame.ID < q.frame.ID || (p.frame.ID == q.frame.ID && p.seq < q.seq) {
			best = i
		}
	}
	winner := b.pending[best]
	b.pending = append(b.pending[:best], b.pending[best+1:]...)
	// Every frame still pending lost this arbitration round.
	b.m.arbLosses.Add(int64(len(b.pending)))

	duration := Time(int64(winner.frame.bits()) * int64(Second) / int64(b.cfg.BitRate))
	if duration <= 0 {
		duration = 1
	}
	done := b.now + duration
	b.busyUntil = done
	b.stats.BusBusy += duration
	b.push(done, func() { b.completeTransmission(winner) })
}

func (b *Bus) completeTransmission(p pendingFrame) {
	f := p.frame
	dropped := false
	if inj := b.cfg.Injector; inj != nil {
		if inj.Observe != nil {
			inj.Observe(b.now, f.Clone())
		}
		switch {
		case inj.Drop != nil && inj.Drop(b.now, f):
			dropped = true
			b.stats.FramesDropped++
			b.m.framesDropped.Inc()
		case inj.Corrupt != nil:
			mutated := clampFrame(inj.Corrupt(b.now, f.Clone()))
			if !framesEqual(mutated, f) {
				b.stats.FramesCorrupted++
				b.m.framesCorrupted.Inc()
				if b.cfg.ErrorConfinement {
					// A CRC-detected wire error: the frame is destroyed
					// by an error frame and never delivered.
					b.wireError(p)
					return
				}
				f = mutated
			}
		}
		if inj.Tamper != nil && !dropped {
			mutated := clampFrame(inj.Tamper(b.now, f.Clone()))
			if !framesEqual(mutated, f) {
				b.stats.FramesCorrupted++
				b.m.framesCorrupted.Inc()
			}
			f = mutated
		}
	}
	if !dropped {
		p.from.TxCount++
		b.recordTxSuccess(p.from)
		for _, tap := range b.taps {
			if tap == p.from {
				continue
			}
			tap.RxCount++
			b.stats.FramesDelivered++
			b.m.framesDelivered.Inc()
			b.recordRxSuccess(tap)
			tap.recv.OnFrame(b.now, f.Clone())
		}
	}
	// Bus is idle again: next arbitration round.
	b.tryArbitrate()
}

// clampFrame bounds an injector-mutated payload to the classic CAN
// limit, so fault hooks cannot fabricate frames the wire could not
// carry.
func clampFrame(f Frame) Frame {
	if len(f.Data) > MaxDataLen {
		f.Data = f.Data[:MaxDataLen]
	}
	return f
}

func framesEqual(a, b Frame) bool {
	if a.ID != b.ID || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// Step processes the next queued event, advancing the clock to it.
// It reports whether an event was processed.
func (b *Bus) Step() bool {
	if len(b.events) == 0 {
		return false
	}
	ev := b.events[0]
	b.events = b.events[1:]
	b.now = ev.at
	ev.fn()
	return true
}

// Run processes events until the queue drains or the clock passes
// `until`. It returns the number of events processed.
func (b *Bus) Run(until Time) int {
	n := 0
	for len(b.events) > 0 && b.events[0].at <= until {
		b.Step()
		n++
	}
	if b.now < until {
		b.now = until
	}
	return n
}

// RunAll drains the event queue completely (with a safety cap) and
// returns the number of events processed.
func (b *Bus) RunAll(maxEvents int) int {
	n := 0
	for n < maxEvents && b.Step() {
		n++
	}
	return n
}

// RunLimited processes events until the clock passes `until`, the queue
// drains, or maxEvents events have been processed — whichever comes
// first. It returns the number of events processed and whether the run
// reached `until` (or drained) within the event budget, so soak
// harnesses can stop a runaway measurement (e.g. a zero-period timer
// rearming itself at a fixed timestamp) instead of spinning forever.
func (b *Bus) RunLimited(until Time, maxEvents int) (n int, done bool) {
	for len(b.events) > 0 && b.events[0].at <= until {
		if n >= maxEvents {
			return n, false
		}
		b.Step()
		n++
	}
	if b.now < until {
		b.now = until
	}
	return n, true
}

// Load returns the fraction of elapsed time the bus spent transmitting.
// Committed transmissions extending past the current clock count in
// full, so the elapsed basis includes them.
func (b *Bus) Load() float64 {
	elapsed := b.now
	if b.busyUntil > elapsed {
		elapsed = b.busyUntil
	}
	if elapsed == 0 {
		return 0
	}
	return float64(b.stats.BusBusy) / float64(elapsed)
}
