// ISO 11898 error confinement: every CAN controller keeps a transmit
// error counter (TEC) and a receive error counter (REC) and moves
// between three fault-confinement states. Detected errors destroy the
// frame on the wire (error frame), raise the transmitter's TEC by 8 and
// every receiver's REC by 1, and trigger automatic retransmission;
// successful traffic decays the counters. A node whose TEC exceeds 127
// becomes error-passive, and past 255 it disconnects (bus-off) until it
// has observed 128 occurrences of 11 consecutive recessive bits —
// modelled here as a recovery delay at the configured bit rate. This
// gives injected corruption realistic consequences: a persistently
// disturbed node degrades and eventually silences itself instead of
// silently delivering mutated payloads.

package canbus

// NodeState is a node's ISO 11898 fault-confinement state.
type NodeState int

// Fault-confinement states.
const (
	// ErrorActive nodes participate normally and signal errors with
	// active (dominant) error flags.
	ErrorActive NodeState = iota
	// ErrorPassive nodes (TEC or REC above 127) may only signal passive
	// error flags and back off after transmissions.
	ErrorPassive
	// BusOff nodes (TEC above 255) are disconnected from the bus until
	// the recovery sequence completes.
	BusOff
)

// String names the state like the standard does.
func (s NodeState) String() string {
	switch s {
	case ErrorActive:
		return "error-active"
	case ErrorPassive:
		return "error-passive"
	case BusOff:
		return "bus-off"
	}
	return "unknown"
}

// Error-confinement thresholds and counter steps of ISO 11898-1 §12.1.4.
const (
	tecErrorStep     = 8   // TEC increment on a transmit error
	recErrorStep     = 1   // REC increment on a receive error
	passiveThreshold = 127 // above this, error-passive
	busOffThreshold  = 255 // above this, bus-off
	// busOffRecoveryBits is the ISO 11898 recovery sequence length: 128
	// occurrences of 11 consecutive recessive bits.
	busOffRecoveryBits = 128 * 11
)

// recoveryDelay returns the simulated duration of the bus-off recovery
// sequence at the configured bit rate.
func (b *Bus) recoveryDelay() Time {
	if b.cfg.BusOffRecovery > 0 {
		return b.cfg.BusOffRecovery
	}
	d := Time(int64(busOffRecoveryBits) * int64(Second) / int64(b.cfg.BitRate))
	if d <= 0 {
		d = 1
	}
	return d
}

// wireError handles a CRC-detected error on the frame in flight: error
// counters move on every node, the transmitter retransmits unless the
// accumulated errors have driven it to bus-off.
func (b *Bus) wireError(p pendingFrame) {
	b.stats.ErrorFrames++
	b.m.errorFrames.Inc()
	tx := p.from
	tx.tec += tecErrorStep
	for _, tap := range b.taps {
		if tap != tx {
			tap.rec += recErrorStep
		}
		b.updateState(tap)
	}
	if tx.state != BusOff {
		// Automatic retransmission: the frame re-enters arbitration with
		// its original queue position.
		b.stats.Retransmissions++
		b.m.retransmissions.Inc()
		b.pending = append(b.pending, p)
	}
	b.tryArbitrate()
}

// recordTxSuccess decays the transmitter's error counter after a
// successful transmission.
func (b *Bus) recordTxSuccess(tap *Tap) {
	if !b.cfg.ErrorConfinement {
		return
	}
	if tap.tec > 0 {
		tap.tec--
	}
	b.updateState(tap)
}

// recordRxSuccess decays a receiver's error counter after a successful
// reception.
func (b *Bus) recordRxSuccess(tap *Tap) {
	if !b.cfg.ErrorConfinement {
		return
	}
	if tap.rec > 0 {
		tap.rec--
	}
	b.updateState(tap)
}

// updateState applies the ISO 11898 state transitions for the node's
// current counter values, entering bus-off (and scheduling recovery)
// when the TEC passes 255.
func (b *Bus) updateState(tap *Tap) {
	switch {
	case tap.state == BusOff:
		// Only the recovery sequence leaves bus-off.
	case tap.tec > busOffThreshold:
		tap.state = BusOff
		tap.busOffAt = b.now
		b.stats.BusOffEvents++
		b.m.busOffEvents.Inc()
		b.purgePending(tap)
		at := b.now + b.recoveryDelay()
		b.push(at, func() { b.recoverBusOff(tap) })
	case tap.tec > passiveThreshold || tap.rec > passiveThreshold:
		tap.state = ErrorPassive
	default:
		tap.state = ErrorActive
	}
}

// purgePending removes a bus-off node's queued frames: its controller
// can no longer drive the bus, so they are lost.
func (b *Bus) purgePending(tap *Tap) {
	kept := b.pending[:0]
	for _, p := range b.pending {
		if p.from == tap {
			b.stats.FramesRejected++
			continue
		}
		kept = append(kept, p)
	}
	b.pending = kept
}

// recoverBusOff completes the bus-off recovery sequence: the node
// rejoins error-active with cleared counters.
func (b *Bus) recoverBusOff(tap *Tap) {
	if tap.state != BusOff {
		return
	}
	tap.state = ErrorActive
	tap.tec = 0
	tap.rec = 0
	b.tryArbitrate()
}
